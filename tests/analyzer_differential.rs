//! Differential tests for the whole-policy static analyzer.
//!
//! The analyzer's contract is soundness: a *guaranteed* decision-table
//! cell (allow/deny, or any singleton sign set) must agree with the
//! concrete `label_document` run on **every** DTD-valid instance. These
//! properties generate random authorization sets (2–8 rules, instance
//! and schema level, all four types, predicates included) over a
//! non-recursive and a recursive DTD, random conforming instances, and
//! check every element and attribute of every instance against the
//! analyzer's cells for the concrete requester's subject.

use proptest::prelude::*;
use std::collections::BTreeMap;
use xmlsec::authz::{AuthType, Authorization, ObjectSpec, Sign};
use xmlsec::core::{
    analyze_policy, compile, compute_view_engine, label_document, Cell, EngineOptions, Parallelism,
    ResourceLimits, SchemaNode, Verdict,
};
use xmlsec::prelude::*;
use xmlsec::xml::NodeData;

/// Subject pool: comparable and incomparable pairs, one location-bound.
const SUBJECTS: [(&str, &str, &str); 5] = [
    ("Staff", "*", "*"),
    ("Public", "*", "*"),
    ("tom", "*", "*"),
    ("All", "*", "*"),
    ("Staff", "10.0.*", "*"),
];

fn directory() -> Directory {
    let mut d = Directory::new();
    for u in ["tom", "ann"] {
        d.add_user(u).expect("fresh user");
    }
    for g in ["Staff", "Public", "All"] {
        d.add_group(g).expect("fresh group");
    }
    d.add_member("tom", "Staff").expect("edge");
    d.add_member("ann", "Public").expect("edge");
    d.add_member("Staff", "All").expect("edge");
    d.add_member("Public", "All").expect("edge");
    d
}

fn requesters() -> Vec<Requester> {
    vec![
        Requester::new("tom", "10.0.1.2", "a.lab.com").expect("requester"),
        Requester::new("ann", "93.10.2.7", "b.pub.org").expect("requester"),
    ]
}

fn policies() -> [PolicyConfig; 3] {
    [
        PolicyConfig::paper_default(),
        PolicyConfig { completeness: CompletenessPolicy::Open, ..Default::default() },
        PolicyConfig {
            conflict: ConflictResolution::PermissionsTakePrecedence,
            ..Default::default()
        },
    ]
}

/// Non-recursive DTD: optional child, starred lists, attributes.
const DOC_DTD: &str = r#"<!ELEMENT doc (meta?, sec*)>
<!ATTLIST doc id CDATA #IMPLIED>
<!ELEMENT meta (#PCDATA)>
<!ELEMENT sec (title, note*)>
<!ATTLIST sec level CDATA #IMPLIED>
<!ELEMENT title (#PCDATA)>
<!ELEMENT note (#PCDATA)>"#;

const DOC_PATHS: [Option<&str>; 8] = [
    None,
    Some("/doc"),
    Some("//sec"),
    Some("//sec/title"),
    Some("//note"),
    Some("/doc/meta"),
    Some(r#"//sec[./@level="1"]"#),
    Some("//sec/@level"),
];

/// Recursive DTD: `part` nests under itself without bound.
const PART_DTD: &str = r#"<!ELEMENT part (label, part*)>
<!ATTLIST part id CDATA #IMPLIED>
<!ELEMENT label (#PCDATA)>"#;

const PART_PATHS: [Option<&str>; 7] = [
    None,
    Some("/part"),
    Some("//part"),
    Some("//label"),
    Some("/part/part"),
    Some(r#"//part[./@id="p"]"#),
    Some("//part/label"),
];

/// One generated authorization: indices into the pools.
type AuthSpec = (usize, usize, usize, bool, usize);

fn build_auths(specs: &[AuthSpec], paths: &[Option<&str>]) -> Vec<Authorization> {
    specs
        .iter()
        .map(|&(si, uri_pick, pi, plus, ti)| {
            let (ug, ip, sym) = SUBJECTS[si % SUBJECTS.len()];
            let uri = if uri_pick % 2 == 0 { "d.xml" } else { "d.dtd" };
            let object = match paths[pi % paths.len()] {
                Some(p) => ObjectSpec::with_path(uri, p).expect("pool path parses"),
                None => ObjectSpec::whole(uri),
            };
            let ty = [
                AuthType::Local,
                AuthType::Recursive,
                AuthType::LocalWeak,
                AuthType::RecursiveWeak,
            ][ti % 4];
            Authorization::new(
                Subject::new(ug, ip, sym).expect("pool subject"),
                object,
                if plus { Sign::Plus } else { Sign::Minus },
                ty,
            )
        })
        .collect()
}

/// Builds a DTD-valid `doc` instance from shape bytes.
fn doc_instance(shape: &[u8]) -> String {
    let first = shape.first().copied().unwrap_or(0);
    let mut s = String::from(if first & 2 != 0 { r#"<doc id="d1">"# } else { "<doc>" });
    if first & 1 != 0 {
        s.push_str("<meta>m</meta>");
    }
    for b in shape.iter().skip(1).take(3) {
        match b % 3 {
            1 => s.push_str(r#"<sec level="1">"#),
            2 => s.push_str(r#"<sec level="2">"#),
            _ => s.push_str("<sec>"),
        }
        s.push_str("<title>t</title>");
        for _ in 0..((b >> 2) % 3) {
            s.push_str("<note>n</note>");
        }
        s.push_str("</sec>");
    }
    s.push_str("</doc>");
    s
}

/// Builds a DTD-valid recursive `part` instance from shape bytes.
fn part_instance(shape: &[u8]) -> String {
    fn build(shape: &[u8], pos: &mut usize, depth: usize, out: &mut String) {
        let b = shape.get(*pos).copied().unwrap_or(0);
        *pos += 1;
        out.push_str(if b & 1 != 0 { r#"<part id="p">"# } else { "<part>" });
        out.push_str("<label>x</label>");
        let kids = if depth >= 3 { 0 } else { (b >> 1) % 3 };
        for _ in 0..kids {
            build(shape, pos, depth + 1, out);
        }
        out.push_str("</part>");
    }
    let mut out = String::new();
    build(shape, &mut 0, 0, &mut out);
    out
}

/// The completeness rule the engine's prune step applies.
fn allowed(policy: PolicyConfig, s: Sign3) -> bool {
    s == Sign3::Plus || (policy.completeness == CompletenessPolicy::Open && s == Sign3::Eps)
}

/// Checks one scenario: every guaranteed cell must agree with the
/// concrete labeling, and every concrete final sign must be inside its
/// cell's possible-sign set (soundness of the abstraction itself).
fn check_case(dtd_text: &str, root: &str, xml: &str, auths: &[Authorization]) {
    let dtd = parse_dtd(dtd_text).expect("test DTD parses");
    let doc = parse(xml).expect("generated instance parses");
    let violations = xmlsec::dtd::Validator::new(&dtd).validate(&doc);
    assert!(violations.is_empty(), "generator must emit valid instances: {violations:?}");
    let dir = directory();
    for policy in policies() {
        for requester in requesters() {
            let subject = requester.as_subject();
            let report = analyze_policy(
                &dtd,
                root,
                "d.dtd",
                auths,
                &dir,
                policy,
                std::slice::from_ref(&subject),
            );
            let cells: BTreeMap<&SchemaNode, &Cell> =
                report.subjects[0].cells.iter().map(|c| (&c.node, c)).collect();
            let axml: Vec<&Authorization> = auths
                .iter()
                .filter(|a| a.object.uri == "d.xml" && requester.is_covered_by(&a.subject, &dir))
                .collect();
            let adtd: Vec<&Authorization> = auths
                .iter()
                .filter(|a| a.object.uri == "d.dtd" && requester.is_covered_by(&a.subject, &dir))
                .collect();
            let labeling = label_document(&doc, &axml, &adtd, &dir, policy);

            let mut stack = vec![doc.root()];
            while let Some(n) = stack.pop() {
                let Some(name) = doc.element_name(n) else { continue };
                let check = |node: SchemaNode, id| {
                    let concrete = labeling.final_sign(id);
                    let cell = cells
                        .get(&node)
                        .unwrap_or_else(|| panic!("no cell for reachable node {node}"));
                    assert!(
                        cell.signs.contains(concrete.symbol()),
                        "{node} for {subject}: concrete sign {} outside abstract set {} \
                         (policy {policy:?}, doc {xml})",
                        concrete.symbol(),
                        cell.signs,
                    );
                    match &cell.verdict {
                        Verdict::Allow => assert!(
                            allowed(policy, concrete),
                            "{node} for {subject}: guaranteed-allow but concrete sign {} denies \
                             (policy {policy:?}, doc {xml})",
                            concrete.symbol(),
                        ),
                        Verdict::Deny => assert!(
                            !allowed(policy, concrete),
                            "{node} for {subject}: guaranteed-deny but concrete sign {} allows \
                             (policy {policy:?}, doc {xml})",
                            concrete.symbol(),
                        ),
                        Verdict::Instance { .. } => {}
                    }
                };
                check(SchemaNode::Element(name.to_string()), n);
                for &a in doc.attributes(n) {
                    if let NodeData::Attr { name: attr, .. } = &doc.node(a).data {
                        check(
                            SchemaNode::Attribute {
                                element: name.to_string(),
                                attribute: attr.clone(),
                            },
                            a,
                        );
                    }
                }
                stack.extend(doc.children(n));
            }
        }
    }
}

/// Compiled-vs-interpreted: compiling the applicable policy and handing
/// the table to the engine must not change a single byte of any view,
/// nor any stat, on any conforming instance — and a tight node budget
/// must classify identically, except on the whole-document fast path,
/// which skips authorization evaluation entirely and therefore can only
/// turn budget failures into successes (never the reverse).
fn check_compiled_case(dtd_text: &str, root: &str, xml: &str, auths: &[Authorization]) {
    let dtd = parse_dtd(dtd_text).expect("test DTD parses");
    let doc = parse(xml).expect("generated instance parses");
    let violations = xmlsec::dtd::Validator::new(&dtd).validate(&doc);
    assert!(violations.is_empty(), "generator must emit valid instances: {violations:?}");
    let dir = directory();
    for policy in policies() {
        for requester in requesters() {
            let axml: Vec<&Authorization> = auths
                .iter()
                .filter(|a| a.object.uri == "d.xml" && requester.is_covered_by(&a.subject, &dir))
                .collect();
            let adtd: Vec<&Authorization> = auths
                .iter()
                .filter(|a| a.object.uri == "d.dtd" && requester.is_covered_by(&a.subject, &dir))
                .collect();
            let cp = compile(&dtd, root, &axml, &adtd, &dir, policy).expect("root is declared");

            let interpreted = EngineOptions {
                limits: ResourceLimits::default_limits().xpath,
                parallelism: Parallelism::sequential(),
                decisions: None,
                compiled: None,
                cancel: None,
            };
            let compiled = EngineOptions {
                limits: ResourceLimits::default_limits().xpath,
                parallelism: Parallelism::sequential(),
                decisions: None,
                compiled: Some(&cp),
                cancel: None,
            };
            let (vi, si) = compute_view_engine(&doc, &axml, &adtd, &dir, policy, &interpreted)
                .expect("default limits fit the generated instances");
            let (vc, sc) = compute_view_engine(&doc, &axml, &adtd, &dir, policy, &compiled)
                .expect("default limits fit the generated instances");
            assert_eq!(
                serialize(&vi, &SerializeOptions::canonical()),
                serialize(&vc, &SerializeOptions::canonical()),
                "compiled view diverges for {requester} (policy {policy:?}, doc {xml}, \
                 fast_path {})",
                cp.fast_path,
            );
            assert_eq!(
                si, sc,
                "compiled stats diverge for {requester} (policy {policy:?}, doc {xml})"
            );

            // Budget classification. 12 visits is small enough that
            // multi-authorization cases trip it on these instances.
            let mut tight = ResourceLimits::default_limits().xpath;
            tight.max_node_visits = 12;
            let tight_interp = EngineOptions {
                limits: tight,
                parallelism: Parallelism::sequential(),
                decisions: None,
                compiled: None,
                cancel: None,
            };
            let tight_comp = EngineOptions {
                limits: tight,
                parallelism: Parallelism::sequential(),
                decisions: None,
                compiled: Some(&cp),
                cancel: None,
            };
            let ti = compute_view_engine(&doc, &axml, &adtd, &dir, policy, &tight_interp);
            let tc = compute_view_engine(&doc, &axml, &adtd, &dir, policy, &tight_comp);
            if cp.fast_path {
                // The table answers without evaluating a single object
                // expression, so no budget can trip it.
                let (v, s) = tc.expect("fast path must not consume the node budget");
                assert_eq!(
                    serialize(&v, &SerializeOptions::canonical()),
                    serialize(&vi, &SerializeOptions::canonical())
                );
                assert_eq!(s, si);
            } else {
                // Residual cells mean the engine evaluates the same
                // authorization set either way: identical classification.
                match (ti, tc) {
                    (Ok((va, sa)), Ok((vb, sb))) => {
                        assert_eq!(
                            serialize(&va, &SerializeOptions::canonical()),
                            serialize(&vb, &SerializeOptions::canonical())
                        );
                        assert_eq!(sa, sb);
                    }
                    (Err(ea), Err(eb)) => assert_eq!(
                        ea, eb,
                        "budget errors diverge for {requester} (policy {policy:?}, doc {xml})"
                    ),
                    (a, b) => panic!(
                        "budget classification diverges for {requester}: interpreted {a:?} vs \
                         compiled {b:?} (policy {policy:?}, doc {xml})"
                    ),
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Non-recursive DTD: guaranteed cells match the engine on every
    /// generated instance, under three policy configurations.
    #[test]
    fn analyzer_sound_on_nonrecursive_dtd(
        specs in prop::collection::vec(
            (0..5usize, 0..2usize, 0..DOC_PATHS.len(), any::<bool>(), 0..4usize), 2..=8),
        shape in prop::collection::vec(0u8..64, 1..=4),
    ) {
        let auths = build_auths(&specs, &DOC_PATHS);
        check_case(DOC_DTD, "doc", &doc_instance(&shape), &auths);
    }

    /// Recursive DTD: same property where propagation must reach a
    /// fixpoint over the cyclic schema graph.
    #[test]
    fn analyzer_sound_on_recursive_dtd(
        specs in prop::collection::vec(
            (0..5usize, 0..2usize, 0..PART_PATHS.len(), any::<bool>(), 0..4usize), 2..=8),
        shape in prop::collection::vec(0u8..64, 1..=8),
    ) {
        let auths = build_auths(&specs, &PART_PATHS);
        check_case(PART_DTD, "part", &part_instance(&shape), &auths);
    }

    /// Non-recursive DTD: the compiled verdict table is invisible in the
    /// output — byte-identical views, identical stats, and identical
    /// node-budget classification (one-sided on the fast path).
    #[test]
    fn compiled_matches_interpreted_on_nonrecursive_dtd(
        specs in prop::collection::vec(
            (0..5usize, 0..2usize, 0..DOC_PATHS.len(), any::<bool>(), 0..4usize), 2..=8),
        shape in prop::collection::vec(0u8..64, 1..=4),
    ) {
        let auths = build_auths(&specs, &DOC_PATHS);
        check_compiled_case(DOC_DTD, "doc", &doc_instance(&shape), &auths);
    }

    /// Recursive DTD: same property where the verdict table comes out of
    /// a fixpoint over the cyclic schema graph.
    #[test]
    fn compiled_matches_interpreted_on_recursive_dtd(
        specs in prop::collection::vec(
            (0..5usize, 0..2usize, 0..PART_PATHS.len(), any::<bool>(), 0..4usize), 2..=8),
        shape in prop::collection::vec(0u8..64, 1..=8),
    ) {
        let auths = build_auths(&specs, &PART_PATHS);
        check_compiled_case(PART_DTD, "part", &part_instance(&shape), &auths);
    }
}
