//! End-to-end robustness: the malicious corpus from the issue — depth
//! bombs, entity bombs, oversized request lines, slow-loris clients,
//! hostile queries, and injected faults — must each produce a *typed*
//! 4xx/5xx answer, and the server must keep serving afterwards.
//!
//! These tests talk to the demo server over real sockets, exactly as a
//! hostile client would.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};
use xmlsec::core::ResourceLimits;
use xmlsec::server::{ClientRequest, HttpConfig, HttpDemo, SecureServer};
use xmlsec::xml::Limits;
use xmlsec::xpath::EvalLimits;
use xmlsec_authz::{AuthType, Authorization, AuthorizationBase, ObjectSpec, Sign};
use xmlsec_subjects::{Directory, Subject};

/// A server with one public document and one user (tom/pw).
fn base_server() -> SecureServer {
    let mut dir = Directory::new();
    dir.add_user("tom").expect("add user");
    let mut base = AuthorizationBase::new();
    base.add(Authorization::new(
        Subject::new("tom", "*", "*").expect("subject"),
        ObjectSpec::with_path("doc.xml", "/d").expect("object"),
        Sign::Plus,
        AuthType::Recursive,
    ));
    let mut s = SecureServer::new(dir, base);
    s.register_credentials("tom", "pw");
    s.repository_mut().put_document("doc.xml", "<d><pub>hello</pub></d>", None);
    s
}

fn get(demo: &HttpDemo, target: &str) -> (u16, String) {
    let mut conn = TcpStream::connect(demo.addr()).expect("connect");
    write!(conn, "GET {target} HTTP/1.0\r\nHost: t\r\n\r\n").expect("write");
    let mut buf = String::new();
    conn.read_to_string(&mut buf).expect("read");
    let code = buf.split_whitespace().nth(1).and_then(|c| c.parse().ok()).unwrap_or(0);
    let body = buf.split_once("\r\n\r\n").map(|(_, b)| b.to_string()).unwrap_or_default();
    (code, body)
}

const OK_TARGET: &str = "/doc.xml?user=tom&pass=pw&ip=1.2.3.4&host=h.x.org";

fn nested(depth: usize) -> String {
    let mut s = String::with_capacity(depth * 7);
    for _ in 0..depth {
        s.push_str("<d>");
    }
    for _ in 0..depth {
        s.push_str("</d>");
    }
    s
}

#[test]
fn depth_bomb_document_is_422_and_server_keeps_serving() {
    let mut s = base_server();
    // 2000 levels exceeds the default 1024-level parse cap.
    s.repository_mut().put_document("bomb.xml", &nested(2000), None);
    let demo = HttpDemo::start(s, "127.0.0.1:0").expect("bind");

    let (code, body) = get(&demo, "/bomb.xml?user=tom&pass=pw&ip=1.2.3.4&host=h.x.org");
    assert_eq!(code, 422, "{body}");
    assert!(body.contains("resource limit exceeded"), "{body}");

    // The rejection is recoverable: the same server still answers.
    let (code2, body2) = get(&demo, OK_TARGET);
    assert_eq!(code2, 200, "{body2}");
    assert!(body2.contains("hello"), "{body2}");

    // The rejection shows up in the shared limits counter family.
    let (mcode, metrics) = get(&demo, "/metrics");
    assert_eq!(mcode, 200);
    assert!(metrics.contains(r#"xmlsec_limits_rejected_total{kind="depth"}"#), "{metrics}");
}

#[test]
fn entity_bomb_document_is_422() {
    let limits = ResourceLimits {
        xml: Limits { max_entity_expansion: 16, ..Limits::default() },
        ..ResourceLimits::default()
    };
    let mut s = base_server().with_limits(limits);
    let mut bomb = String::from("<d>");
    for _ in 0..64 {
        bomb.push_str("&amp;");
    }
    bomb.push_str("</d>");
    s.repository_mut().put_document("entities.xml", &bomb, None);
    let demo = HttpDemo::start(s, "127.0.0.1:0").expect("bind");

    let (code, body) = get(&demo, "/entities.xml?user=tom&pass=pw&ip=1.2.3.4&host=h.x.org");
    assert_eq!(code, 422, "{body}");
    // Documents under the cap are untouched by the tightened limit.
    let (code2, _) = get(&demo, OK_TARGET);
    assert_eq!(code2, 200);
}

#[test]
fn hostile_query_is_422_under_a_small_eval_budget() {
    // A budget that comfortably covers labeling this document (the
    // authorization object path is a short absolute path) but not a
    // quadratic double-descendant scan over a few hundred nodes.
    let limits = ResourceLimits {
        xpath: EvalLimits { max_node_visits: 500, ..EvalLimits::default() },
        ..ResourceLimits::default()
    };
    let mut s = base_server().with_limits(limits);
    let mut wide = String::from("<d>");
    for i in 0..200 {
        wide.push_str(&format!("<item n=\"{i}\"/>"));
    }
    wide.push_str("</d>");
    s.repository_mut().put_document("doc.xml", &wide, None);
    let demo = HttpDemo::start(s, "127.0.0.1:0").expect("bind");
    // The whole-view path is fine under the budget...
    let (code2, body2) = get(&demo, OK_TARGET);
    assert_eq!(code2, 200, "{body2}");
    // ...but the hostile requester-supplied query is a typed 422.
    let (code, body) = get(&demo, &format!("{OK_TARGET}&q=%2F%2F*%2F%2F*"));
    assert_eq!(code, 422, "{body}");
    // And the server still serves afterwards.
    let (code3, _) = get(&demo, OK_TARGET);
    assert_eq!(code3, 200);
}

#[test]
fn oversized_request_line_is_431() {
    let demo = HttpDemo::start(base_server(), "127.0.0.1:0").expect("bind");
    let long = "x".repeat(16 * 1024);
    let (code, _) = get(&demo, &format!("/doc.xml?user={long}"));
    assert_eq!(code, 431);
    let (code2, _) = get(&demo, OK_TARGET);
    assert_eq!(code2, 200);
}

#[test]
fn slow_loris_is_reaped_by_the_read_timeout() {
    let cfg = HttpConfig { read_timeout: Duration::from_millis(300), ..Default::default() };
    let demo = HttpDemo::start_with(base_server(), "127.0.0.1:0", cfg).expect("bind");

    // Hold a connection open, dribbling no further bytes.
    let mut conn = TcpStream::connect(demo.addr()).expect("connect");
    write!(conn, "GET /doc").expect("write");
    conn.flush().expect("flush");
    let t = Instant::now();
    let mut buf = String::new();
    let _ = conn.read_to_string(&mut buf);
    assert!(t.elapsed() < Duration::from_secs(3), "stalled connection was not reaped");
    assert!(buf.is_empty() || buf.starts_with("HTTP/1.0 408"), "{buf}");

    // The worker the loris occupied is free again.
    let (code, _) = get(&demo, OK_TARGET);
    assert_eq!(code, 200);
}

/// All fault-injection scenarios live in ONE sequential test: arming is
/// process-global, so concurrent tests would race on the registry.
#[test]
fn injected_faults_are_isolated_and_observable() {
    use xmlsec::server::faults::{arm, clear, FaultAction};

    clear();
    // A tiny pool makes queue behavior deterministic: one worker, one
    // backlog slot.
    let cfg = HttpConfig { workers: 1, backlog: 1, ..Default::default() };
    let demo = HttpDemo::start_with(base_server(), "127.0.0.1:0", cfg).expect("bind");

    // --- 1. A panic inside request processing answers 500; the worker
    // (the only one!) survives to serve the next request.
    arm("process.request", FaultAction::Panic, 1);
    let (code, body) = get(&demo, OK_TARGET);
    assert_eq!(code, 500, "{body}");
    assert!(body.contains("panic"), "{body}");
    let (code2, _) = get(&demo, OK_TARGET);
    assert_eq!(code2, 200, "worker died with the panic");

    // --- 2. A mid-stream disconnect before the response write: the
    // client sees a clean close with no bytes, the server moves on.
    arm("respond.write", FaultAction::Disconnect, 1);
    let mut conn = TcpStream::connect(demo.addr()).expect("connect");
    write!(conn, "GET {OK_TARGET} HTTP/1.0\r\n\r\n").expect("write");
    let mut buf = String::new();
    let _ = conn.read_to_string(&mut buf);
    assert!(buf.is_empty(), "disconnect should write nothing: {buf}");
    let (code3, _) = get(&demo, OK_TARGET);
    assert_eq!(code3, 200);

    // --- 3. Load shedding: stall the single worker, fill the single
    // backlog slot, and the next arrivals bounce with 503 + Retry-After.
    arm("handle.start", FaultAction::SleepMs(400), 2);
    let mut held: Vec<TcpStream> = Vec::new();
    let mut shed_seen = 0;
    for _ in 0..5 {
        let mut c = TcpStream::connect(demo.addr()).expect("connect");
        write!(c, "GET {OK_TARGET} HTTP/1.0\r\n\r\n").expect("write");
        // Give the pool a moment to pull the first connection so the
        // later ones deterministically find worker busy + queue full.
        std::thread::sleep(Duration::from_millis(50));
        c.set_read_timeout(Some(Duration::from_millis(100))).expect("timeout");
        let mut peek = [0u8; 512];
        match c.read(&mut peek) {
            Ok(n) if n > 0 => {
                let head = String::from_utf8_lossy(&peek[..n]).into_owned();
                if head.starts_with("HTTP/1.0 503") {
                    // The hint must be a well-formed integer-seconds
                    // value a client can feed straight to a backoff
                    // timer, priced within the advertised clamp.
                    let secs: u64 = head
                        .lines()
                        .find_map(|l| l.strip_prefix("Retry-After: "))
                        .expect("503 must carry Retry-After")
                        .trim()
                        .parse()
                        .expect("Retry-After must be integer seconds");
                    assert!((1..=30).contains(&secs), "{head}");
                    shed_seen += 1;
                }
            }
            _ => held.push(c), // still queued or in flight
        }
    }
    assert!(shed_seen >= 1, "expected at least one 503 from a full queue");
    drop(held);
    // Let the stalled requests finish so the pool is quiet again.
    std::thread::sleep(Duration::from_millis(900));
    let (code4, _) = get(&demo, OK_TARGET);
    assert_eq!(code4, 200);

    // --- 4. A panic before the request is even parsed exercises the
    // worker-level backstop: connection dropped, worker still alive.
    arm("handle.start", FaultAction::Panic, 1);
    let mut conn = TcpStream::connect(demo.addr()).expect("connect");
    write!(conn, "GET {OK_TARGET} HTTP/1.0\r\n\r\n").expect("write");
    let mut buf = String::new();
    let _ = conn.read_to_string(&mut buf);
    let (code5, _) = get(&demo, OK_TARGET);
    assert_eq!(code5, 200, "worker did not survive the backstop panic");

    // --- 5. Everything above is observable: panics and sheds are
    // counted, and the queue gauge is registered (and back to zero).
    let (mcode, metrics) = get(&demo, "/metrics");
    assert_eq!(mcode, 200);
    let value = |name: &str| -> i64 {
        metrics
            .lines()
            .find(|l| l.starts_with(name) && !l.starts_with('#'))
            .and_then(|l| l.rsplit(' ').next())
            .and_then(|v| v.parse().ok())
            .unwrap_or(-1)
    };
    assert!(value("xmlsec_server_panics_caught_total") >= 2, "{metrics}");
    assert!(value("xmlsec_server_shed_total") >= 1, "{metrics}");
    // The gauge is process-global and other tests in this binary run
    // concurrently, so assert registration and sanity, not emptiness.
    assert!(value("xmlsec_server_queue_depth") >= 0, "{metrics}");

    // --- 6. The same full-queue shed on the epoll transport (here, not
    // a separate test: fault arming is process-global). One worker and
    // one backlog slot, the worker stalled; the event loop's try_send
    // fails and the 503 is rendered inline with a priced Retry-After.
    #[cfg(target_os = "linux")]
    {
        let cfg = HttpConfig { workers: 1, backlog: 1, ..Default::default() };
        let edemo = xmlsec::server::EpollDemo::start_with(base_server(), "127.0.0.1:0", cfg)
            .expect("bind epoll");
        arm("handle.start", FaultAction::SleepMs(400), 2);
        let mut held: Vec<TcpStream> = Vec::new();
        let mut shed_seen = 0;
        for _ in 0..5 {
            let mut c = TcpStream::connect(edemo.addr()).expect("connect");
            // Queries always miss the cache, so every one needs a worker.
            write!(c, "GET {OK_TARGET}&q=%2Fd%2Fpub HTTP/1.0\r\n\r\n").expect("write");
            std::thread::sleep(Duration::from_millis(50));
            c.set_read_timeout(Some(Duration::from_millis(100))).expect("timeout");
            let mut peek = [0u8; 512];
            match c.read(&mut peek) {
                Ok(n) if n > 0 => {
                    let head = String::from_utf8_lossy(&peek[..n]).into_owned();
                    if head.starts_with("HTTP/1.0 503") {
                        let secs: u64 = head
                            .lines()
                            .find_map(|l| l.strip_prefix("Retry-After: "))
                            .expect("503 must carry Retry-After")
                            .trim()
                            .parse()
                            .expect("Retry-After must be integer seconds");
                        assert!((1..=30).contains(&secs), "{head}");
                        shed_seen += 1;
                    }
                }
                _ => held.push(c),
            }
        }
        assert!(shed_seen >= 1, "expected at least one 503 from the event loop");
        drop(held);
        std::thread::sleep(Duration::from_millis(900));
        let mut conn = TcpStream::connect(edemo.addr()).expect("connect");
        write!(conn, "GET {OK_TARGET} HTTP/1.0\r\n\r\n").expect("write");
        let mut buf = String::new();
        conn.read_to_string(&mut buf).expect("read");
        assert!(buf.starts_with("HTTP/1.0 200"), "loop did not recover: {buf}");
    }
    clear();
}

/// Keep-alive + slow-loris interaction on a single-worker pool. A
/// client that asks for keep-alive and pipelines a second request gets
/// exactly one response (the demo speaks strict one-shot HTTP/1.0, and
/// the disconnect watchdog silently drains the pipelined leftovers),
/// and a loris reaped mid-request right after it must leave the worker
/// clean: the next request on that same worker is served untainted.
#[test]
fn keepalive_pipelining_and_loris_do_not_poison_the_worker() {
    let cfg =
        HttpConfig { workers: 1, read_timeout: Duration::from_millis(300), ..Default::default() };
    let demo = HttpDemo::start_with(base_server(), "127.0.0.1:0", cfg).expect("bind");

    // 1. Keep-alive request with a pipelined follow-up in the same
    // segment: exactly one response, then a clean close. The trailing
    // bytes must be discarded, never parsed as a second request.
    let mut conn = TcpStream::connect(demo.addr()).expect("connect");
    write!(
        conn,
        "GET {OK_TARGET} HTTP/1.0\r\nHost: t\r\nConnection: keep-alive\r\n\r\n\
         GET {OK_TARGET} HTTP/1.0\r\nHost: t\r\n\r\n"
    )
    .expect("write");
    let mut buf = String::new();
    conn.read_to_string(&mut buf).expect("read");
    assert!(buf.starts_with("HTTP/1.0 200"), "{buf}");
    assert!(buf.contains("hello"), "{buf}");
    assert_eq!(
        buf.matches("HTTP/1.0 ").count(),
        1,
        "pipelined bytes must be discarded, not answered: {buf}"
    );

    // 2. A slow loris on the same (only) worker, reaped by the read
    // timeout mid-request-line.
    let mut loris = TcpStream::connect(demo.addr()).expect("connect");
    write!(loris, "GET /doc.xml?user=to").expect("write");
    loris.flush().expect("flush");
    let t = Instant::now();
    let mut lbuf = String::new();
    let _ = loris.read_to_string(&mut lbuf);
    assert!(t.elapsed() < Duration::from_secs(3), "loris was not reaped");
    assert!(lbuf.is_empty() || lbuf.starts_with("HTTP/1.0 408"), "{lbuf}");

    // 3. The worker that just serviced both misbehaving connections
    // serves a fresh request with no leftover state.
    let (code, body) = get(&demo, OK_TARGET);
    assert_eq!(code, 200, "{body}");
    assert!(body.contains("hello"), "{body}");
}

/// Cache churn under adversarial conditions: content mutated every
/// round with **no invalidation call at all**, on both an unbounded and
/// a capacity-bounded cache. The content-addressed key plus the lazy
/// stale sweep must keep the cache (and its insertion-order list)
/// bounded by live entries while every response stays fresh.
#[test]
fn cache_churn_stays_bounded_without_explicit_invalidation() {
    let req = ClientRequest {
        user: Some(("tom".into(), "pw".into())),
        ip: "1.2.3.4".into(),
        sym: "h.x.org".into(),
        uri: "doc.xml".into(),
    };
    let mut s = base_server();
    for round in 0..200 {
        // Mutate the stored bytes directly — the hostile-operator path
        // that bypasses every invalidation hook.
        s.repository_mut()
            .put_document("doc.xml", &format!("<d><pub>v{round}</pub></d>"), None);
        let fresh = s.handle(&req).expect("serve");
        assert!(!fresh.cached, "round {round}: stale hit");
        assert!(fresh.xml.contains(&format!("v{round}")), "round {round}: {}", fresh.xml);
        assert!(s.handle(&req).expect("serve").cached, "round {round}: rewarm");
        assert!(s.cache_len() <= 1, "round {round}: stale twins accumulate: {}", s.cache_len());
    }
    assert!(s.cache_stale_rejected() >= 199, "sweeps: {}", s.cache_stale_rejected());

    // Same churn against a bounded cache across several documents, with
    // grant/revoke mixed in: capacity holds and the server keeps serving.
    let mut s = base_server().with_cache_capacity(4);
    for uri in ["a.xml", "b.xml", "c.xml", "d.xml", "e.xml", "f.xml"] {
        s.grant(Authorization::new(
            Subject::new("tom", "*", "*").expect("subject"),
            ObjectSpec::with_path(uri, "/d").expect("object"),
            Sign::Plus,
            AuthType::Recursive,
        ));
    }
    for round in 0..50 {
        for uri in ["a.xml", "b.xml", "c.xml", "d.xml", "e.xml", "f.xml"] {
            s.repository_mut()
                .put_document(uri, &format!("<d><pub>{uri}-{round}</pub></d>"), None);
            let mut r = req.clone();
            r.uri = uri.into();
            let resp = s.handle(&r).expect("serve");
            assert!(resp.xml.contains(&format!("{uri}-{round}")));
            assert!(s.cache_len() <= 4, "round {round}: capacity breached: {}", s.cache_len());
        }
    }
}

// ---------------------------------------------------------------------
// The same malicious corpus, pointed at the epoll event-loop transport.
// The pool above stays as the oracle; these tests assert the event loop
// honors the identical robustness contract (431/408/503 + recovery),
// plus the one sanctioned behavioral difference: the event loop answers
// pipelined keep-alive requests instead of discarding them.
// ---------------------------------------------------------------------

#[cfg(target_os = "linux")]
mod epoll_transport {
    use super::*;
    use std::net::SocketAddr;
    use xmlsec::server::EpollDemo;

    fn get_at(addr: SocketAddr, target: &str) -> (u16, String) {
        let mut conn = TcpStream::connect(addr).expect("connect");
        write!(conn, "GET {target} HTTP/1.0\r\nHost: t\r\n\r\n").expect("write");
        let mut buf = String::new();
        conn.read_to_string(&mut buf).expect("read");
        let code = buf.split_whitespace().nth(1).and_then(|c| c.parse().ok()).unwrap_or(0);
        let body = buf.split_once("\r\n\r\n").map(|(_, b)| b.to_string()).unwrap_or_default();
        (code, body)
    }

    #[test]
    fn oversized_request_line_is_431_and_loop_keeps_serving() {
        let demo = EpollDemo::start(base_server(), "127.0.0.1:0").expect("bind");
        let long = "x".repeat(16 * 1024);
        let (code, _) = get_at(demo.addr(), &format!("/doc.xml?user={long}"));
        assert_eq!(code, 431);
        let (code2, body2) = get_at(demo.addr(), OK_TARGET);
        assert_eq!(code2, 200, "{body2}");
        assert!(body2.contains("hello"), "{body2}");
    }

    #[test]
    fn slow_loris_is_reaped_by_the_read_deadline() {
        let cfg = HttpConfig { read_timeout: Duration::from_millis(300), ..Default::default() };
        let demo = EpollDemo::start_with(base_server(), "127.0.0.1:0", cfg).expect("bind");

        let mut conn = TcpStream::connect(demo.addr()).expect("connect");
        write!(conn, "GET /doc").expect("write");
        conn.flush().expect("flush");
        let t = Instant::now();
        let mut buf = String::new();
        let _ = conn.read_to_string(&mut buf);
        assert!(t.elapsed() < Duration::from_secs(3), "stalled connection was not reaped");
        assert!(buf.is_empty() || buf.starts_with("HTTP/1.0 408"), "{buf}");

        let (code, _) = get_at(demo.addr(), OK_TARGET);
        assert_eq!(code, 200);
    }

    /// Where the pool discards pipelined bytes after its one-shot
    /// response, the event loop parses and answers them in order: a
    /// keep-alive request with a pipelined follow-up gets BOTH
    /// responses on the one connection.
    #[test]
    fn keep_alive_pipelining_answers_both_requests() {
        let demo = EpollDemo::start(base_server(), "127.0.0.1:0").expect("bind");
        let mut conn = TcpStream::connect(demo.addr()).expect("connect");
        write!(
            conn,
            "GET {OK_TARGET} HTTP/1.0\r\nHost: t\r\nConnection: keep-alive\r\n\r\n\
             GET {OK_TARGET} HTTP/1.0\r\nHost: t\r\n\r\n"
        )
        .expect("write");
        let mut buf = String::new();
        conn.read_to_string(&mut buf).expect("read");
        assert_eq!(buf.matches("HTTP/1.0 200").count(), 2, "{buf}");
        // First response keeps the connection, the second (HTTP/1.0, no
        // Connection header) closes it.
        assert!(buf.contains("Connection: keep-alive"), "{buf}");
        assert!(buf.contains("Connection: close"), "{buf}");
    }

    /// Differential oracle: a fixed request script must produce
    /// byte-identical responses on both transports. Every response the
    /// demo renders is deterministic (no Date header; the ETag is a
    /// content hash), and with plain HTTP/1.0 requests both transports
    /// resolve keep-alive to `close`, so even the Connection header
    /// agrees.
    #[test]
    fn transports_agree_byte_for_byte_on_a_fixed_script() {
        fn raw(addr: SocketAddr, request: &str) -> Vec<u8> {
            let mut conn = TcpStream::connect(addr).expect("connect");
            conn.write_all(request.as_bytes()).expect("write");
            let mut buf = Vec::new();
            conn.read_to_end(&mut buf).expect("read");
            buf
        }

        let script: Vec<String> = vec![
            // Cold view, then the warm cache hit.
            format!("GET {OK_TARGET} HTTP/1.0\r\nHost: t\r\n\r\n"),
            format!("GET {OK_TARGET} HTTP/1.0\r\nHost: t\r\n\r\n"),
            // Wrong password, missing document, malformed request line.
            "GET /doc.xml?user=tom&pass=nope&ip=1.2.3.4&host=h.x.org HTTP/1.0\r\n\r\n".to_string(),
            "GET /missing.xml?user=tom&pass=pw&ip=1.2.3.4&host=h.x.org HTTP/1.0\r\n\r\n"
                .to_string(),
            "NONSENSE\r\n\r\n".to_string(),
            // A secure query (%2Fd%2Fpub = /d/pub).
            format!("GET {OK_TARGET}&q=%2Fd%2Fpub HTTP/1.0\r\nHost: t\r\n\r\n"),
        ];

        let pool = HttpDemo::start(base_server(), "127.0.0.1:0").expect("bind pool");
        let epoll = EpollDemo::start(base_server(), "127.0.0.1:0").expect("bind epoll");

        let mut etag = None;
        for (i, req) in script.iter().enumerate() {
            let a = raw(pool.addr(), req);
            let b = raw(epoll.addr(), req);
            assert_eq!(
                a,
                b,
                "script step {i} diverged:\n--- pool ---\n{}\n--- epoll ---\n{}",
                String::from_utf8_lossy(&a),
                String::from_utf8_lossy(&b)
            );
            if etag.is_none() {
                let text = String::from_utf8_lossy(&a).into_owned();
                etag = text.lines().find_map(|l| l.strip_prefix("ETag: ").map(str::to_string));
            }
        }

        // Conditional revalidation with the (identical) captured tag:
        // both transports answer 304 with the same bytes.
        let tag = etag.expect("view response carries an ETag");
        let cond = format!("GET {OK_TARGET} HTTP/1.0\r\nHost: t\r\nIf-None-Match: {tag}\r\n\r\n");
        let a = raw(pool.addr(), &cond);
        let b = raw(epoll.addr(), &cond);
        assert!(String::from_utf8_lossy(&a).starts_with("HTTP/1.0 304"), "{a:?}");
        assert_eq!(a, b, "304 revalidation diverged");
    }
}

/// Graceful shutdown drains queued work before returning.
#[test]
fn shutdown_drains_in_flight_requests() {
    let cfg = HttpConfig { drain_timeout: Duration::from_secs(5), ..Default::default() };
    let mut demo = HttpDemo::start_with(base_server(), "127.0.0.1:0", cfg).expect("bind");
    let addr = demo.addr();
    let client = std::thread::spawn(move || {
        let mut conn = TcpStream::connect(addr).expect("connect");
        write!(conn, "GET {OK_TARGET} HTTP/1.0\r\n\r\n").expect("write");
        let mut buf = String::new();
        let _ = conn.read_to_string(&mut buf);
        buf
    });
    // Make it likely the request is accepted before the stop flag flips;
    // drain must then finish it rather than abandon it.
    std::thread::sleep(Duration::from_millis(100));
    demo.shutdown();
    let buf = client.join().expect("client thread");
    assert!(buf.starts_with("HTTP/1.0 200"), "{buf}");
}

#[test]
fn concurrent_readers_and_writers_interleave_without_torn_views() {
    // Readers hammer the view path while writers commit update batches
    // over real sockets. Every reader must see a *committed* revision —
    // the seed text or some writer's value, never a torn mix, never a
    // 5xx — and every write must commit (the repository write lock
    // serializes them; the transports queue, they do not fail).
    let mut dir = Directory::new();
    dir.add_user("tom").expect("add user");
    dir.add_user("ed").expect("add user");
    let mut base = AuthorizationBase::new();
    for user in ["tom", "ed"] {
        base.add(Authorization::new(
            Subject::new(user, "*", "*").expect("subject"),
            ObjectSpec::with_path("doc.xml", "/d").expect("object"),
            Sign::Plus,
            AuthType::Recursive,
        ));
    }
    base.add(
        Authorization::new(
            Subject::new("ed", "*", "*").expect("subject"),
            ObjectSpec::with_path("doc.xml", "/d").expect("object"),
            Sign::Plus,
            AuthType::Recursive,
        )
        .with_action(xmlsec::authz::Action::Write),
    );
    let mut s = SecureServer::new(dir, base);
    s.register_credentials("tom", "pw");
    s.register_credentials("ed", "pw");
    s.repository_mut().put_document("doc.xml", "<d><pub>seed</pub></d>", None);
    // Generous shed target so the burst below is never load-shed; the
    // test is about interleaving, not overload.
    let cfg = HttpConfig { shed_target: Duration::from_secs(5), ..Default::default() };
    let mut demo = HttpDemo::start_with(s, "127.0.0.1:0", cfg).expect("bind");
    let addr = demo.addr();

    const WRITERS: usize = 2;
    const WRITES_EACH: usize = 8;
    const READERS: usize = 4;
    const READS_EACH: usize = 25;

    let reader_bodies = std::thread::scope(|scope| {
        let mut writer_handles = Vec::new();
        for w in 0..WRITERS {
            writer_handles.push(scope.spawn(move || {
                let mut answers = Vec::new();
                for i in 0..WRITES_EACH {
                    let body = format!("settext /d/pub\tw{w}-{i}\n");
                    let mut conn = TcpStream::connect(addr).expect("connect");
                    write!(
                        conn,
                        "POST /update?doc=doc.xml&user=ed&pass=pw&ip=1.2.3.4&host=h.x.org \
                         HTTP/1.0\r\nHost: t\r\nContent-Length: {}\r\n\r\n{body}",
                        body.len()
                    )
                    .expect("write");
                    let mut buf = String::new();
                    conn.read_to_string(&mut buf).expect("read");
                    answers.push(buf);
                }
                answers
            }));
        }
        let mut reader_handles = Vec::new();
        for _ in 0..READERS {
            reader_handles.push(scope.spawn(move || {
                let mut bodies = Vec::new();
                for _ in 0..READS_EACH {
                    let mut conn = TcpStream::connect(addr).expect("connect");
                    write!(conn, "GET {OK_TARGET} HTTP/1.0\r\nHost: t\r\n\r\n").expect("write");
                    let mut buf = String::new();
                    conn.read_to_string(&mut buf).expect("read");
                    bodies.push(buf);
                }
                bodies
            }));
        }
        for h in writer_handles {
            for resp in h.join().expect("writer thread") {
                assert!(resp.starts_with("HTTP/1.0 200"), "every write commits: {resp}");
                assert!(resp.contains("updated 1"), "{resp}");
            }
        }
        let mut all = Vec::new();
        for h in reader_handles {
            all.extend(h.join().expect("reader thread"));
        }
        all
    });

    for resp in &reader_bodies {
        assert!(resp.starts_with("HTTP/1.0 200"), "readers never see an error: {resp}");
        let body = resp.split_once("\r\n\r\n").map(|(_, b)| b).unwrap_or("");
        // A committed revision is exactly one <pub> holding the seed
        // text or one writer value — anything else is a torn view.
        let inner = body
            .split_once("<pub>")
            .and_then(|(_, rest)| rest.split_once("</pub>"))
            .map(|(v, _)| v)
            .unwrap_or_else(|| panic!("view shape: {body}"));
        let committed = inner == "seed"
            || (inner.starts_with('w') && inner.contains('-') && inner.len() <= 8);
        assert!(committed, "torn or invented revision {inner:?} in {body}");
    }

    // The last committed revision is one of the writers' final values,
    // and the server is still healthy afterwards.
    let mut conn = TcpStream::connect(addr).expect("connect");
    write!(conn, "GET {OK_TARGET} HTTP/1.0\r\nHost: t\r\n\r\n").expect("write");
    let mut last = String::new();
    conn.read_to_string(&mut last).expect("read");
    assert!(last.starts_with("HTTP/1.0 200"), "{last}");
    let final_i = format!("-{}", WRITES_EACH - 1);
    assert!(
        last.contains(&final_i),
        "the final revision is some writer's last value: {last}"
    );
    demo.shutdown();
}
