//! Non-element content (text, comments, processing instructions) in
//! views: such nodes carry no label of their own — they follow their
//! parent element's final sign, and never leak through structure-only
//! shells.

use xmlsec::authz::Authorization;
use xmlsec::prelude::*;

fn view(doc_text: &str, auths: &[Authorization]) -> String {
    let doc = parse(doc_text).unwrap();
    let refs: Vec<&Authorization> = auths.iter().collect();
    let (v, _) = compute_view(&doc, &refs, &[], &Directory::new(), PolicyConfig::paper_default());
    serialize(&v, &SerializeOptions::canonical())
}

fn grant(path: &str) -> Authorization {
    Authorization::new(
        Subject::new("u", "*", "*").unwrap(),
        ObjectSpec::with_path("d.xml", path).unwrap(),
        Sign::Plus,
        AuthType::Recursive,
    )
}

#[test]
fn comments_follow_their_element() {
    let doc = r#"<a><!--top--><b><!--inner-->text</b></a>"#;
    // Only b granted: a is a shell, so a's comment goes; b's stays.
    let v = view(doc, &[grant("/a/b")]);
    assert_eq!(v, "<a><b><!--inner-->text</b></a>");
    // Whole tree granted: both stay.
    let v2 = view(doc, &[grant("/a")]);
    assert_eq!(v2, doc);
}

#[test]
fn processing_instructions_follow_their_element() {
    let doc = "<a><?style sheet?><b><?render fast?>t</b></a>";
    let v = view(doc, &[grant("/a/b")]);
    assert_eq!(v, "<a><b><?render fast?>t</b></a>");
}

#[test]
fn mixed_content_of_shells_is_hidden() {
    // a has text around its children; a is only a shell, so its text
    // (which could leak information) is pruned while the granted child
    // survives.
    let doc = "<a>confidential preamble<b>visible</b>confidential epilogue</a>";
    let v = view(doc, &[grant("/a/b")]);
    assert_eq!(v, "<a><b>visible</b></a>");
}

#[test]
fn text_of_denied_child_under_granted_parent_is_gone() {
    let doc = "<a>keep<b>drop</b></a>";
    let deny = Authorization::new(
        Subject::new("u", "*", "*").unwrap(),
        ObjectSpec::with_path("d.xml", "/a/b").unwrap(),
        Sign::Minus,
        AuthType::Recursive,
    );
    let v = view(doc, &[grant("/a"), deny]);
    assert_eq!(v, "<a>keep</a>");
}

#[test]
fn whitespace_free_round_trip_of_partially_visible_mixed_content() {
    // Multiple text nodes interleaved with elements; only some elements
    // visible. The kept element order is preserved.
    let doc = "<p>one<b>two</b>three<i>four</i>five</p>";
    let v = view(doc, &[grant("/p/i")]);
    assert_eq!(v, "<p><i>four</i></p>");
    let v2 = view(doc, &[grant("/p")]);
    assert_eq!(v2, doc);
}

#[test]
fn processor_drops_prolog_but_keeps_doctype_linkage() {
    // Comments/PIs outside the document element are legal and dropped by
    // the parser; the DOCTYPE still drives schema lookup.
    let doc =
        parse("<?xml version=\"1.0\"?><!--hdr--><!DOCTYPE a SYSTEM \"a.dtd\"><a>t</a>").unwrap();
    assert_eq!(doc.doctype.as_ref().unwrap().system_id.as_deref(), Some("a.dtd"));
    assert_eq!(doc.children(doc.root()).len(), 1);
}
