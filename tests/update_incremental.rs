//! Differential property tests for the incremental secure-update path.
//!
//! Random op batches over random DTD-conforming documents, committed
//! through [`SecureServer::update`]. The server patches warm cached
//! views in place (incremental relabel + re-prune + new ETag) instead
//! of recomputing them from the stored bytes — so the property that
//! keeps it honest is *byte identity with the cold path*: for every
//! committed batch, the patched view a warm reader is served must equal,
//! byte for byte, the view a fresh cache-less server computes from the
//! committed document. Denied batches must leave document, cache, and
//! entity tags exactly as they were.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use xmlsec::authz::Action;
use xmlsec::core::update::UpdateOp;
use xmlsec::prelude::*;
use xmlsec::workload::{conforming_doc, random_dtd, DtdConfig, GEN_ROOT};
use xmlsec::xml::serialize_node;

const DOC_URI: &str = "doc.xml";
const DTD_URI: &str = "doc.dtd";

/// Builds a positional path (`/e0/e3[2]/e1[1]`) for a concrete element,
/// so an op targets exactly the node the generator chose regardless of
/// same-name siblings.
fn concrete_path(doc: &Document, node: xmlsec::xml::NodeId) -> String {
    let mut segments = Vec::new();
    let mut cur = node;
    loop {
        let name = doc.element_name(cur).expect("path nodes are elements");
        match doc.parent(cur) {
            None => {
                segments.push(format!("/{name}"));
                break;
            }
            Some(p) => {
                let position = doc
                    .child_elements(p)
                    .filter(|&sib| doc.element_name(sib) == Some(name))
                    .position(|sib| sib == cur)
                    .expect("node is among its parent's children")
                    + 1;
                segments.push(format!("/{name}[{position}]"));
                cur = p;
            }
        }
    }
    segments.reverse();
    segments.concat()
}

/// Draws a random batch of 1–4 ops against concrete nodes of `doc`.
/// Some batches will be denied (DTD-invalid result, unauthorized
/// target): that is part of the property — denial must change nothing.
fn random_ops(doc: &Document, seed: u64) -> Vec<UpdateOp> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let elements: Vec<_> = doc.preorder(doc.root()).filter(|&n| doc.is_element(n)).collect();
    let count = rng.gen_range(1usize..=4);
    (0..count)
        .map(|_| {
            let node = elements[rng.gen_range(0..elements.len())];
            let path = concrete_path(doc, node);
            match rng.gen_range(0u32..6) {
                0 => UpdateOp::SetText { target: path, text: format!("t{}", rng.gen_range(0..100)) },
                1 => UpdateOp::SetAttribute {
                    target: path,
                    name: format!("a{}", rng.gen_range(0..3)),
                    value: format!("v{}", rng.gen_range(0..100)),
                },
                2 => {
                    // Append a copy of an existing child element, which
                    // conforms whenever the content model is starred.
                    let child = doc.child_elements(node).next();
                    match child {
                        Some(c) => UpdateOp::InsertSubtree {
                            parent: path,
                            xml: serialize_node(doc, c),
                        },
                        None => UpdateOp::SetText { target: path, text: "leaf".into() },
                    }
                }
                3 => {
                    // Replace a subtree with its own serialization: a
                    // structurally identical, always-conforming rewrite.
                    UpdateOp::ReplaceSubtree { target: path.clone(), xml: serialize_node(doc, node) }
                }
                4 => UpdateOp::InsertElement {
                    parent: path,
                    name: format!("e{}", rng.gen_range(0..6)),
                },
                _ => UpdateOp::Delete { target: path },
            }
        })
        .collect()
}

struct Fixture {
    server: SecureServer,
    dtd_text: String,
    doc_text: String,
    deny_seed: u64,
}

/// The principal directory and authorization base, deterministic in
/// `deny_seed` so the warm server and its cold twin share one policy.
fn build_world(deny_seed: u64) -> (Directory, AuthorizationBase) {
    let mut dir = Directory::new();
    dir.add_user("editor").unwrap();
    dir.add_user("reader").unwrap();
    let mut base = AuthorizationBase::new();
    for user in ["editor", "reader"] {
        base.add(Authorization::new(
            Subject::new(user, "*", "*").unwrap(),
            ObjectSpec::with_path(DOC_URI, &format!("/{GEN_ROOT}")).unwrap(),
            Sign::Plus,
            AuthType::Recursive,
        ));
    }
    base.add(
        Authorization::new(
            Subject::new("editor", "*", "*").unwrap(),
            ObjectSpec::with_path(DOC_URI, &format!("/{GEN_ROOT}")).unwrap(),
            Sign::Plus,
            AuthType::Recursive,
        )
        .with_action(Action::Write),
    );
    // Seeded denials over the generated tag space prune the reader's
    // view below the document.
    let mut rng = SmallRng::seed_from_u64(deny_seed);
    for _ in 0..rng.gen_range(0usize..3) {
        let tag = format!("e{}", rng.gen_range(1..6));
        if let Ok(obj) = ObjectSpec::with_path(DOC_URI, &format!("//{tag}")) {
            base.add(Authorization::new(
                Subject::new("reader", "*", "*").unwrap(),
                obj,
                Sign::Minus,
                AuthType::Recursive,
            ));
        }
    }
    (dir, base)
}

/// A server with an all-powerful editor, a reader whose view is pruned
/// by a couple of seeded denials, a DTD-typed document, and the cache
/// on. The denials make the patched view a *strict* subset of the
/// document in most runs, so byte identity is not vacuous.
fn fixture(dtd_seed: u64, doc_seed: u64, deny_seed: u64, elements: usize) -> Fixture {
    let dtd = random_dtd(&DtdConfig { elements, ..Default::default() }, dtd_seed);
    let mut doc = conforming_doc(&dtd, doc_seed);
    xmlsec::dtd::normalize(&dtd, &mut doc);
    let dtd_text = serialize_dtd(&dtd);
    let doc_text = serialize(&doc, &SerializeOptions::default());

    let (dir, base) = build_world(deny_seed);
    let mut server = SecureServer::new(dir, base);
    server.register_credentials("editor", "pw");
    server.register_credentials("reader", "pw");
    server.repository_mut().put_dtd(DTD_URI, &dtd_text);
    server.repository_mut().put_document(DOC_URI, &doc_text, Some(DTD_URI));
    Fixture { server, dtd_text, doc_text, deny_seed }
}

fn request(user: &str) -> ClientRequest {
    ClientRequest {
        user: Some((user.to_string(), "pw".to_string())),
        ip: "10.0.0.1".into(),
        sym: "ws.lab.org".into(),
        uri: DOC_URI.into(),
    }
}

/// A cache-less twin of the fixture, loaded with whatever bytes the
/// warm server currently stores: its views are always full recomputes.
fn cold_twin(f: &Fixture) -> SecureServer {
    let warm_repo = f.server.repository();
    let committed = warm_repo.document(DOC_URI).expect("document exists").xml.clone();
    drop(warm_repo);
    let (dir, base) = build_world(f.deny_seed);
    let mut cold = SecureServer::new(dir, base).without_cache();
    cold.register_credentials("reader", "pw");
    cold.repository_mut().put_dtd(DTD_URI, &f.dtd_text);
    cold.repository_mut().put_document(DOC_URI, &committed, Some(DTD_URI));
    cold
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// For every committed batch the patched warm view equals the cold
    /// full recompute byte for byte (xml, loosened DTD, and entity
    /// tag); for every denied batch nothing changes at all.
    #[test]
    fn patched_views_are_byte_identical_to_full_recomputes(
        dtd_seed in 0u64..100_000,
        doc_seed in 0u64..100_000,
        deny_seed in 0u64..100_000,
        ops_seed in 0u64..100_000,
        elements in 2usize..10,
    ) {
        let f = fixture(dtd_seed, doc_seed, deny_seed, elements);
        let s = &f.server;

        // Warm the reader's view so there is an entry to patch.
        let before = s.handle(&request("reader")).expect("reader view");
        prop_assert!(s.handle(&request("reader")).expect("warm").cached);
        let entries_before = s.cache_len();

        let parsed = parse(&f.doc_text).expect("stored doc parses");
        let ops = random_ops(&parsed, ops_seed);
        match s.update(&request("editor"), &ops) {
            Ok(touched) => {
                prop_assert!(touched >= 1, "a committed batch touches at least one node");
                // Patch-in-place: the next read is a warm hit already
                // carrying the committed content.
                let after = s.handle(&request("reader")).expect("post-commit view");
                prop_assert!(after.cached, "the reader's warm view was patched, not dropped");
                prop_assert_eq!(
                    s.cache_len(), entries_before,
                    "patching replaces entries; it must not grow or shrink the cache"
                );
                // Byte identity against the cold full recompute.
                let cold = cold_twin(&f);
                let recomputed = cold.handle(&request("reader")).expect("cold view");
                prop_assert_eq!(&after.xml, &recomputed.xml, "patched view != full recompute");
                prop_assert_eq!(&after.loosened_dtd, &recomputed.loosened_dtd);
                prop_assert_eq!(
                    &after.etag, &recomputed.etag,
                    "the entity tag is content-derived and must match the cold path"
                );
                // The patched entry keeps serving stable bytes.
                let again = s.handle(&request("reader")).expect("steady view");
                prop_assert!(again.cached);
                prop_assert_eq!(&again.xml, &after.xml);
                prop_assert_eq!(&again.etag, &after.etag);
            }
            Err(ServerError::UpdateDenied(_))
            | Err(ServerError::UpdateDeniedStatic { .. })
            | Err(ServerError::LimitExceeded(_)) => {
                // Denied: document bytes, warm entry, and tag unchanged.
                {
                    let repo = s.repository();
                    prop_assert_eq!(
                        &repo.document(DOC_URI).expect("doc").xml, &f.doc_text,
                        "a denied batch must not commit"
                    );
                }
                let after = s.handle(&request("reader")).expect("view after denial");
                prop_assert!(after.cached, "denial must not disturb the warm view");
                prop_assert_eq!(&after.xml, &before.xml);
                prop_assert_eq!(&after.etag, &before.etag);
                prop_assert_eq!(s.cache_len(), entries_before);
            }
            Err(e) => prop_assert!(false, "unexpected update error: {e}"),
        }
    }

    /// A chain of committed batches stays byte-identical to the cold
    /// path at every step — patched state never drifts, even when each
    /// patch builds on the previous incremental labeling.
    #[test]
    fn successive_batches_never_drift(
        dtd_seed in 0u64..100_000,
        doc_seed in 0u64..100_000,
        ops_seed in 0u64..100_000,
        elements in 2usize..8,
    ) {
        let f = fixture(dtd_seed, doc_seed, doc_seed, elements);
        let s = &f.server;
        let _ = s.handle(&request("reader")).expect("warm");
        let mut committed = 0;
        for round in 0..4u64 {
            let current = {
                let repo = s.repository();
                repo.document(DOC_URI).expect("doc").xml.clone()
            };
            let parsed = parse(&current).expect("committed bytes parse");
            let ops = random_ops(&parsed, ops_seed.wrapping_add(round));
            if s.update(&request("editor"), &ops).is_ok() {
                committed += 1;
                let warm = s.handle(&request("reader")).expect("warm view");
                let cold = cold_twin(&f);
                let recomputed = cold.handle(&request("reader")).expect("cold view");
                prop_assert_eq!(&warm.xml, &recomputed.xml, "drift after {} commits", committed);
                prop_assert_eq!(&warm.etag, &recomputed.etag);
            }
        }
    }
}
