//! Monotonicity and security-order properties of view computation.

use proptest::prelude::*;
use xmlsec::authz::Authorization;
use xmlsec::prelude::*;
use xmlsec::workload::{random_auths, AuthConfig, TreeConfig};

fn positive_only(auths: Vec<Authorization>) -> Vec<Authorization> {
    auths.into_iter().filter(|a| a.sign == Sign::Plus).collect()
}

/// Set of reachable node ids of a view (prune preserves NodeIds).
fn visible_ids(view: &Document) -> std::collections::BTreeSet<xmlsec::xml::NodeId> {
    let mut out = std::collections::BTreeSet::new();
    let mut stack = vec![view.root()];
    while let Some(n) = stack.pop() {
        out.insert(n);
        for &a in view.attributes(n) {
            out.insert(a);
        }
        for &c in view.children(n) {
            if view.is_element(c) {
                stack.push(c);
            } else {
                out.insert(c);
            }
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// With only positive authorizations, adding one more grant never
    /// shrinks the view (no denials means no overriding conflicts).
    #[test]
    fn adding_grants_grows_positive_views(
        doc_seed in 0u64..1_000_000,
        auth_seed in 0u64..1_000_000,
        elements in 5usize..60,
    ) {
        let doc = xmlsec::workload::random_tree(
            &TreeConfig { elements, ..Default::default() }, doc_seed);
        let dir = Directory::new();
        let (inst, _) = random_auths(
            &AuthConfig { count: 12, ..Default::default() }, "d.xml", "d.dtd", auth_seed);
        let grants = positive_only(inst);
        let policy = PolicyConfig::paper_default();
        let mut prev = std::collections::BTreeSet::new();
        for k in 0..=grants.len() {
            let subset: Vec<&Authorization> = grants[..k].iter().collect();
            let (view, _) = compute_view(&doc, &subset, &[], &dir, policy);
            let now = visible_ids(&view);
            prop_assert!(
                prev.is_subset(&now),
                "view shrank when adding grant #{k}"
            );
            prev = now;
        }
    }

    /// The closed-policy view is always a subset of the open-policy view
    /// for the same authorizations.
    #[test]
    fn closed_view_subset_of_open_view(
        doc_seed in 0u64..1_000_000,
        auth_seed in 0u64..1_000_000,
        elements in 5usize..60,
        count in 0usize..16,
    ) {
        let doc = xmlsec::workload::random_tree(
            &TreeConfig { elements, ..Default::default() }, doc_seed);
        let dir = xmlsec::workload::random_directory(6, 4, auth_seed);
        let (inst, schema) = random_auths(
            &AuthConfig { count, ..Default::default() }, "d.xml", "d.dtd", auth_seed);
        let ax: Vec<&Authorization> = inst.iter().collect();
        let ad: Vec<&Authorization> = schema.iter().collect();
        let closed = PolicyConfig::paper_default();
        let open = PolicyConfig { completeness: CompletenessPolicy::Open, ..closed };
        let (vc, _) = compute_view(&doc, &ax, &ad, &dir, closed);
        let (vo, _) = compute_view(&doc, &ax, &ad, &dir, open);
        prop_assert!(visible_ids(&vc).is_subset(&visible_ids(&vo)));
    }

    /// Denials-take-precedence never reveals more than
    /// permissions-take-precedence.
    #[test]
    fn denial_policy_view_subset_of_permission_policy_view(
        doc_seed in 0u64..1_000_000,
        auth_seed in 0u64..1_000_000,
        count in 0usize..16,
    ) {
        let doc = xmlsec::workload::random_tree(&TreeConfig::default(), doc_seed);
        let dir = xmlsec::workload::random_directory(6, 4, auth_seed);
        let (inst, schema) = random_auths(
            &AuthConfig { count, ..Default::default() }, "d.xml", "d.dtd", auth_seed);
        let ax: Vec<&Authorization> = inst.iter().collect();
        let ad: Vec<&Authorization> = schema.iter().collect();
        let deny = PolicyConfig {
            conflict: ConflictResolution::DenialsTakePrecedence, ..Default::default() };
        let allow = PolicyConfig {
            conflict: ConflictResolution::PermissionsTakePrecedence, ..Default::default() };
        let (vd, _) = compute_view(&doc, &ax, &ad, &dir, deny);
        let (va, _) = compute_view(&doc, &ax, &ad, &dir, allow);
        prop_assert!(visible_ids(&vd).is_subset(&visible_ids(&va)));
    }

    /// A view never contains text that the source document did not
    /// contain (no fabrication), and the root element name is preserved.
    #[test]
    fn views_never_fabricate_content(
        doc_seed in 0u64..1_000_000,
        auth_seed in 0u64..1_000_000,
        count in 0usize..16,
    ) {
        let doc = xmlsec::workload::random_tree(&TreeConfig::default(), doc_seed);
        let dir = xmlsec::workload::random_directory(6, 4, auth_seed);
        let (inst, schema) = random_auths(
            &AuthConfig { count, ..Default::default() }, "d.xml", "d.dtd", auth_seed);
        let ax: Vec<&Authorization> = inst.iter().collect();
        let ad: Vec<&Authorization> = schema.iter().collect();
        let (view, _) = compute_view(&doc, &ax, &ad, &dir, PolicyConfig::paper_default());
        prop_assert_eq!(view.element_name(view.root()), doc.element_name(doc.root()));
        // Every surviving arena id existed in the source with the same
        // name/value content (child lists legitimately shrink in views).
        use xmlsec::xml::NodeData;
        for n in visible_ids(&view) {
            match (&view.node(n).data, &doc.node(n).data) {
                (
                    NodeData::Element { name: a, .. },
                    NodeData::Element { name: b, .. },
                ) => prop_assert_eq!(a, b),
                (a, b) => prop_assert_eq!(a, b),
            }
        }
    }
}
