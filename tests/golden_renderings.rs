//! Golden tests pinning the figure renderings — the exact text the
//! `figures` binary and the `laboratory` example print for the paper's
//! Figure 1(b) and Figure 3. If a rendering change is intentional,
//! update the goldens deliberately.

use xmlsec::prelude::*;
use xmlsec::workload::laboratory::*;

#[test]
fn golden_figure1_dtd_tree() {
    let dtd = parse_dtd(LAB_DTD).unwrap();
    let tree = xmlsec::dtd::dtd_tree(&dtd, "laboratory").unwrap();
    let got = xmlsec::dtd::render_dtd_tree(&tree);
    let want = "\
(laboratory)
  |-- [name]
  `-- (project)+
      |-- [name]
      |-- [type]
      |-- (manager)
      |   |-- (flname)
      |   |   `-- #PCDATA
      |   `-- (email)?
      |       `-- #PCDATA
      |-- (member)*
      |   |-- (flname)
      |   |   `-- #PCDATA
      |   `-- (email)?
      |       `-- #PCDATA
      |-- (fund)*
      |   |-- [type]?
      |   |-- (sponsor)
      |   |   `-- #PCDATA
      |   `-- (amount)?
      |       `-- #PCDATA
      `-- (paper)*
          |-- [category]
          |-- [type]?
          |-- (title)
          |   `-- #PCDATA
          `-- (authors)?
              `-- #PCDATA
";
    assert_eq!(got, want, "got:\n{got}");
}

#[test]
fn golden_toms_view_xml() {
    let processor = SecurityProcessor::new(lab_directory(), lab_authorization_base());
    let out = processor
        .process(
            &AccessRequest { requester: tom(), uri: CSLAB_URI.to_string() },
            &DocumentSource { xml: CSLAB_XML, dtd: Some(LAB_DTD), dtd_uri: Some(LAB_DTD_URI) },
        )
        .unwrap();
    assert_eq!(out.xml, TOM_VIEW_XML);
}

#[test]
fn golden_loosened_laboratory_dtd() {
    let dtd = parse_dtd(LAB_DTD).unwrap();
    let got = serialize_dtd(&loosen(&dtd));
    let want = "\
<!ELEMENT laboratory (project*)>
<!ATTLIST laboratory
    name CDATA #IMPLIED>
<!ELEMENT project (manager?,member*,fund*,paper*)?>
<!ATTLIST project
    name CDATA #IMPLIED
    type (internal|public) #IMPLIED>
<!ELEMENT manager (flname?,email?)?>
<!ELEMENT member (flname?,email?)?>
<!ELEMENT flname (#PCDATA)>
<!ELEMENT email (#PCDATA)>
<!ELEMENT fund (sponsor?,amount?)?>
<!ATTLIST fund
    type CDATA #IMPLIED>
<!ELEMENT sponsor (#PCDATA)>
<!ELEMENT amount (#PCDATA)>
<!ELEMENT paper (title?,authors?)?>
<!ATTLIST paper
    category (private|public) #IMPLIED
    type CDATA #IMPLIED>
<!ELEMENT title (#PCDATA)>
<!ELEMENT authors (#PCDATA)>
";
    assert_eq!(got, want, "got:\n{got}");
}

#[test]
fn golden_labeled_tree_excerpt() {
    let dir = lab_directory();
    let base = lab_authorization_base();
    let doc = parse(CSLAB_XML).unwrap();
    let axml = base.applicable(CSLAB_URI, &tom(), &dir);
    let adtd = base.applicable(LAB_DTD_URI, &tom(), &dir);
    let labeling =
        xmlsec::core::label_document(&doc, &axml, &adtd, &dir, PolicyConfig::paper_default());
    let rendered = xmlsec::core::render_labeled(&doc, &labeling);
    // Signs the paper's Figure 3(b) encodes: root undefined, private
    // papers minus, public papers plus, public-project manager plus.
    for needle in [
        "(laboratory) [ε]",
        "(paper) [-]",
        "(paper) [+]",
        "(manager) [+]",
        "(manager) [ε]",
        "(fund) [ε]",
    ] {
        assert!(rendered.contains(needle), "missing {needle:?} in:\n{rendered}");
    }
}
