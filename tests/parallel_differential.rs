//! Differential properties of the parallel compute-view engine.
//!
//! The sequential engine is already pinned against the naive declarative
//! oracle (`tests/differential.rs`); here the parallel engine is pinned
//! against **both**: for random DTD-conforming documents, random trees,
//! random authorization sets and random thread counts, the fanned-out
//! engine must produce byte-identical views, identical statistics, and —
//! because the node-visit budget is one request-wide pool drawn exactly
//! — identical `LimitExceeded` classification when the budget trips,
//! regardless of how work landed on threads.
//!
//! Thread counts are forced with `Parallelism::exact` so real workers
//! run even on single-core CI containers.

use proptest::prelude::*;
use xmlsec::authz::Authorization;
use xmlsec::core::{
    compute_view_engine, compute_view_naive, EngineOptions, Parallelism, ViewStats,
};
use xmlsec::prelude::*;
use xmlsec::workload::{
    conforming_doc, random_auths, random_directory, random_dtd, random_requester, AuthConfig,
    DtdConfig, TreeConfig,
};
use xmlsec::xpath::{EvalError, EvalLimits};

/// One fully-specified random scenario.
struct Scenario {
    doc: Document,
    dir: Directory,
    axml: Vec<Authorization>,
    adtd: Vec<Authorization>,
}

/// A random scenario over an arbitrary tree (the shape family the
/// sequential differential suite uses).
fn tree_scenario(doc_seed: u64, auth_seed: u64, elements: usize, auth_count: usize) -> Scenario {
    let doc =
        xmlsec::workload::random_tree(&TreeConfig { elements, ..Default::default() }, doc_seed);
    with_auths(doc, auth_seed, auth_count)
}

/// A random scenario over a document conforming to a random DTD — the
/// generator family the issue calls for, with grammar-shaped nesting.
fn dtd_scenario(dtd_seed: u64, doc_seed: u64, auth_seed: u64, auth_count: usize) -> Scenario {
    let dtd = random_dtd(&DtdConfig::default(), dtd_seed);
    let doc = conforming_doc(&dtd, doc_seed);
    with_auths(doc, auth_seed, auth_count)
}

fn with_auths(doc: Document, auth_seed: u64, auth_count: usize) -> Scenario {
    let dir = random_directory(6, 4, auth_seed);
    let requester = random_requester(6, auth_seed);
    let (axml_all, adtd_all) = random_auths(
        &AuthConfig { count: auth_count, ..Default::default() },
        "d.xml",
        "d.dtd",
        auth_seed,
    );
    let axml = axml_all
        .into_iter()
        .filter(|a| requester.is_covered_by(&a.subject, &dir))
        .collect();
    let adtd = adtd_all
        .into_iter()
        .filter(|a| requester.is_covered_by(&a.subject, &dir))
        .collect();
    Scenario { doc, dir, axml, adtd }
}

fn engine_opts(threads: usize, limits: EvalLimits) -> EngineOptions<'static> {
    let parallelism = if threads <= 1 {
        Parallelism::sequential()
    } else {
        Parallelism::threads(threads).with_seq_threshold(0).exact()
    };
    EngineOptions { limits, parallelism, decisions: None, compiled: None, cancel: None }
}

fn run(
    s: &Scenario,
    policy: PolicyConfig,
    threads: usize,
    limits: EvalLimits,
) -> Result<(String, ViewStats), EvalError> {
    let ax: Vec<&Authorization> = s.axml.iter().collect();
    let ad: Vec<&Authorization> = s.adtd.iter().collect();
    compute_view_engine(&s.doc, &ax, &ad, &s.dir, policy, &engine_opts(threads, limits))
        .map(|(view, stats)| (serialize(&view, &SerializeOptions::canonical()), stats))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Parallel output is byte-identical to the sequential engine — and
    /// to the naive oracle — for random trees, auth sets and thread
    /// counts.
    #[test]
    fn parallel_equals_sequential(
        doc_seed in 0u64..1_000_000,
        auth_seed in 0u64..1_000_000,
        elements in 5usize..120,
        auth_count in 0usize..24,
        threads in 2usize..8,
    ) {
        let s = tree_scenario(doc_seed, auth_seed, elements, auth_count);
        let policy = PolicyConfig::paper_default();
        let limits = EvalLimits::default_limits();
        let (seq_xml, seq_stats) = run(&s, policy, 1, limits).expect("within default limits");
        let (par_xml, par_stats) = run(&s, policy, threads, limits).expect("within default limits");
        prop_assert_eq!(
            &par_xml, &seq_xml,
            "parallel view must be byte-identical (doc_seed={}, auth_seed={}, threads={})",
            doc_seed, auth_seed, threads
        );
        prop_assert_eq!(par_stats, seq_stats);

        // The oracle agrees too (structure, not serialization, since the
        // naive evaluator builds its own tree).
        let ax: Vec<&Authorization> = s.axml.iter().collect();
        let ad: Vec<&Authorization> = s.adtd.iter().collect();
        let (naive, _) = compute_view_naive(&s.doc, &ax, &ad, &s.dir, policy);
        prop_assert_eq!(
            serialize(&naive, &SerializeOptions::canonical()), seq_xml,
            "oracle mismatch (doc_seed={}, auth_seed={})", doc_seed, auth_seed
        );
    }

    /// The same property over DTD-conforming documents from the grammar
    /// generator, across the policy matrix.
    #[test]
    fn parallel_equals_sequential_on_dtd_conforming_docs(
        dtd_seed in 0u64..1_000_000,
        doc_seed in 0u64..1_000_000,
        auth_seed in 0u64..1_000_000,
        auth_count in 0usize..20,
        threads in 2usize..8,
    ) {
        let s = dtd_scenario(dtd_seed, doc_seed, auth_seed, auth_count);
        for policy in [
            PolicyConfig::paper_default(),
            PolicyConfig { completeness: CompletenessPolicy::Open, ..Default::default() },
            PolicyConfig {
                conflict: ConflictResolution::PermissionsTakePrecedence,
                ..Default::default()
            },
        ] {
            let limits = EvalLimits::default_limits();
            let seq = run(&s, policy, 1, limits).expect("within default limits");
            let par = run(&s, policy, threads, limits).expect("within default limits");
            prop_assert_eq!(
                par, seq,
                "parallel/sequential divergence (dtd_seed={}, doc_seed={}, auth_seed={}, \
                 threads={}, policy={:?})",
                dtd_seed, doc_seed, auth_seed, threads, policy
            );
        }
    }

    /// When the shared node-visit pool trips, it trips identically:
    /// sequential and parallel runs classify every budget the same way
    /// (same `Ok`/`Err`, same error), because the pool is drawn exactly
    /// and the trip depends only on total demand, never on scheduling.
    #[test]
    fn budget_trips_identically_in_parallel(
        doc_seed in 0u64..1_000_000,
        auth_seed in 0u64..1_000_000,
        elements in 20usize..100,
        auth_count in 2usize..16,
        threads in 2usize..8,
        budget in 1u64..4_000,
    ) {
        let s = tree_scenario(doc_seed, auth_seed, elements, auth_count);
        let policy = PolicyConfig::paper_default();
        let limits = EvalLimits { max_node_visits: budget, ..EvalLimits::default_limits() };
        let seq = run(&s, policy, 1, limits);
        let par = run(&s, policy, threads, limits);
        prop_assert_eq!(
            par, seq,
            "LimitExceeded classification diverged (doc_seed={}, auth_seed={}, threads={}, \
             budget={})",
            doc_seed, auth_seed, threads, budget
        );
    }
}

/// Directed check: a budget exactly at the sequential trip point trips
/// the parallel engine too, and one node less of slack flips both.
#[test]
fn budget_boundary_is_schedule_independent() {
    let s = tree_scenario(42, 99, 80, 12);
    let policy = PolicyConfig::paper_default();
    // Find the smallest budget where the sequential engine succeeds.
    let mut lo = 1u64;
    let mut hi = 10_000_000u64;
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        let limits = EvalLimits { max_node_visits: mid, ..EvalLimits::default_limits() };
        if run(&s, policy, 1, limits).is_ok() {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    for threads in [2usize, 4, 8] {
        let at = EvalLimits { max_node_visits: lo, ..EvalLimits::default_limits() };
        assert!(run(&s, policy, threads, at).is_ok(), "{threads} threads at the boundary");
        if lo > 1 {
            let under = EvalLimits { max_node_visits: lo - 1, ..EvalLimits::default_limits() };
            assert_eq!(
                run(&s, policy, threads, under).unwrap_err(),
                run(&s, policy, 1, under).unwrap_err(),
                "{threads} threads one below the boundary"
            );
        }
    }
}
