//! The channel (CDF-style) corpus through the full server: tiered
//! subscriptions, secure queries, and the §6.2 loosening guarantee on a
//! third domain schema.

use xmlsec::prelude::*;
use xmlsec::workload::channel::*;

fn server() -> SecureServer {
    let mut s = SecureServer::new(channel_directory(), channel_authorization_base());
    for u in ["fred", "petra", "edna"] {
        s.register_credentials(u, "pw");
    }
    s.repository_mut().put_dtd(CHANNEL_DTD_URI, CHANNEL_DTD);
    s.repository_mut().put_document(CHANNEL_URI, CHANNEL_XML, Some(CHANNEL_DTD_URI));
    s
}

fn req(user: &str) -> ClientRequest {
    ClientRequest {
        user: Some((user.to_string(), "pw".to_string())),
        ip: "10.2.3.4".into(),
        sym: "reader.example.net".into(),
        uri: CHANNEL_URI.into(),
    }
}

#[test]
fn tiers_get_tiered_views() {
    let s = server();
    let free = s.handle(&req("fred")).unwrap();
    let premium = s.handle(&req("petra")).unwrap();
    let editor = s.handle(&req("edna")).unwrap();

    assert!(free.xml.contains("Full story text A"));
    assert!(!free.xml.contains("Full story text B"));
    assert!(premium.xml.contains("Full story text B"));
    assert!(!free.xml.contains("schedule"));
    assert!(!premium.xml.contains("schedule"));
    assert!(editor.xml.contains("schedule"));

    // Every tier's view validates against the loosened DTD that shipped
    // with it.
    for resp in [&free, &premium, &editor] {
        let view = parse(&resp.xml).unwrap();
        let loosened = parse_dtd(resp.loosened_dtd.as_deref().unwrap()).unwrap();
        assert_eq!(xmlsec::dtd::validate(&loosened, &view), vec![]);
    }
}

#[test]
fn queries_respect_tiers() {
    let s = server();
    // Titles of items whose body is visible: existential predicate on
    // the view.
    let q = "//item[body]/title";
    let free = s.query(&req("fred"), q).unwrap();
    let premium = s.query(&req("petra"), q).unwrap();
    assert_eq!(free.matches, vec!["<title>XML 1.0 ships</title>"]);
    assert_eq!(premium.matches.len(), 2);

    // Free subscribers can still see (and query) premium *abstracts*.
    let abstracts = s.query(&req("fred"), r#"//item[@tier="premium"]/abstract"#).unwrap();
    assert_eq!(abstracts.matches.len(), 1);
}

#[test]
fn schema_level_rules_cover_every_pushed_document() {
    // Push a second channel instance: the same DTD-level XACL governs it
    // with no per-document configuration.
    let mut s = server();
    s.repository_mut().put_document(
        "sports.xml",
        r#"<!DOCTYPE channel SYSTEM "channel.dtd"><channel self="http://sports.example"><title>Sports</title><item href="/s1" tier="premium"><title>Finals recap</title><abstract>Who won.</abstract><body>Premium analysis.</body></item></channel>"#,
        Some(CHANNEL_DTD_URI),
    );
    let mut r = req("fred");
    r.uri = "sports.xml".into();
    let free = s.handle(&r).unwrap();
    assert!(free.xml.contains("Who won."));
    assert!(!free.xml.contains("Premium analysis."));
    let mut r2 = req("petra");
    r2.uri = "sports.xml".into();
    assert!(s.handle(&r2).unwrap().xml.contains("Premium analysis."));
}

#[test]
fn majority_sign_policy_end_to_end() {
    // The §5 "larger number" policy on a server: two grants vs one
    // denial on the same node for the same requester.
    let mut dir = Directory::new();
    dir.add_user("kim").unwrap();
    for g in ["A", "B", "C"] {
        dir.add_group(g).unwrap();
        dir.add_member("kim", g).unwrap();
    }
    let mut base = AuthorizationBase::new();
    for (g, sign) in [("A", Sign::Plus), ("B", Sign::Plus), ("C", Sign::Minus)] {
        base.add(Authorization::new(
            Subject::new(g, "*", "*").unwrap(),
            ObjectSpec::with_path("d.xml", "/d").unwrap(),
            sign,
            AuthType::Recursive,
        ));
    }
    let policy = PolicyConfig { conflict: ConflictResolution::MajoritySign, ..Default::default() };
    let mut s = SecureServer::new(dir, base).with_policy(policy);
    s.register_credentials("kim", "pw");
    s.repository_mut().put_document("d.xml", "<d>content</d>", None);
    let resp = s
        .handle(&ClientRequest {
            user: Some(("kim".into(), "pw".into())),
            ip: "1.2.3.4".into(),
            sym: "h.x.org".into(),
            uri: "d.xml".into(),
        })
        .unwrap();
    assert_eq!(resp.xml, "<d>content</d>", "2 plus votes beat 1 minus");
}
