//! The §5 policy matrix, end to end: the same document and authorization
//! set under every supported conflict-resolution and completeness policy.

use xmlsec::authz::Authorization;
use xmlsec::prelude::*;

/// Document: a report with two sections.
const DOC: &str = r#"<report><summary>sum</summary><detail>det</detail></report>"#;

fn dir() -> Directory {
    let mut d = Directory::new();
    d.add_user("kim").unwrap();
    d.add_group("Readers").unwrap();
    d.add_group("Writers").unwrap();
    d.add_member("kim", "Readers").unwrap();
    d.add_member("kim", "Writers").unwrap();
    d
}

fn auth(subj: &str, path: &str, sign: Sign, ty: AuthType) -> Authorization {
    Authorization::new(
        Subject::new(subj, "*", "*").unwrap(),
        ObjectSpec::with_path("r.xml", path).unwrap(),
        sign,
        ty,
    )
}

fn view(auths: &[Authorization], policy: PolicyConfig) -> String {
    let doc = parse(DOC).unwrap();
    let refs: Vec<&Authorization> = auths.iter().collect();
    let (v, _) = compute_view(&doc, &refs, &[], &dir(), policy);
    serialize(&v, &SerializeOptions::canonical())
}

/// Conflicting grants from two incomparable groups kim belongs to.
fn conflicting() -> Vec<Authorization> {
    vec![
        auth("Readers", "/report", Sign::Plus, AuthType::Recursive),
        auth("Writers", "/report", Sign::Minus, AuthType::Recursive),
    ]
}

#[test]
fn denials_take_precedence_on_unresolved_conflicts() {
    // The paper's default: incomparable subjects → denial wins.
    let v = view(&conflicting(), PolicyConfig::paper_default());
    assert_eq!(v, "<report/>");
}

#[test]
fn permissions_take_precedence_flips_the_outcome() {
    let v = view(
        &conflicting(),
        PolicyConfig {
            conflict: ConflictResolution::MostSpecificThenPermissions,
            ..Default::default()
        },
    );
    assert_eq!(v, "<report><summary>sum</summary><detail>det</detail></report>");
}

#[test]
fn nothing_takes_precedence_leaves_epsilon() {
    // Conflict cancels; closed policy then hides, open policy reveals.
    let closed = view(
        &conflicting(),
        PolicyConfig {
            conflict: ConflictResolution::NothingTakesPrecedence,
            completeness: CompletenessPolicy::Closed,
        },
    );
    assert_eq!(closed, "<report/>");
    let open = view(
        &conflicting(),
        PolicyConfig {
            conflict: ConflictResolution::NothingTakesPrecedence,
            completeness: CompletenessPolicy::Open,
        },
    );
    assert_eq!(open, "<report><summary>sum</summary><detail>det</detail></report>");
}

#[test]
fn most_specific_subject_overrides_before_sign_policy() {
    // kim (user) beats Readers (group) regardless of sign policy.
    let auths = vec![
        auth("Readers", "/report", Sign::Minus, AuthType::Recursive),
        auth("kim", "/report", Sign::Plus, AuthType::Recursive),
    ];
    for conflict in [
        ConflictResolution::MostSpecificThenDenials,
        ConflictResolution::MostSpecificThenPermissions,
    ] {
        let v = view(&auths, PolicyConfig { conflict, ..Default::default() });
        assert_eq!(v, "<report><summary>sum</summary><detail>det</detail></report>");
    }
    // The flat policies ignore specificity: denial still wins.
    let v = view(
        &auths,
        PolicyConfig { conflict: ConflictResolution::DenialsTakePrecedence, ..Default::default() },
    );
    assert_eq!(v, "<report/>");
}

#[test]
fn flat_permissions_policy() {
    let auths = vec![
        auth("kim", "/report", Sign::Minus, AuthType::Recursive),
        auth("Readers", "/report", Sign::Plus, AuthType::Recursive),
    ];
    let v = view(
        &auths,
        PolicyConfig {
            conflict: ConflictResolution::PermissionsTakePrecedence,
            ..Default::default()
        },
    );
    assert_eq!(v, "<report><summary>sum</summary><detail>det</detail></report>");
}

#[test]
fn open_policy_with_partial_denials() {
    // Open completeness: everything visible except what is denied.
    let auths = vec![auth("kim", "/report/detail", Sign::Minus, AuthType::Recursive)];
    let v =
        view(&auths, PolicyConfig { completeness: CompletenessPolicy::Open, ..Default::default() });
    assert_eq!(v, "<report><summary>sum</summary></report>");
}

#[test]
fn one_policy_per_document_but_many_per_server() {
    // The paper allows different policies on different documents of the
    // same server: run two processors side by side.
    use xmlsec::core::{AccessRequest, DocumentSource, ProcessorOptions, SecurityProcessor};
    let mut base = AuthorizationBase::new();
    for a in conflicting() {
        base.add(a);
    }
    let closed = SecurityProcessor {
        directory: dir(),
        authorizations: base.clone(),
        options: ProcessorOptions { policy: PolicyConfig::paper_default(), ..Default::default() },
        decisions: None,
        compiled: None,
    };
    let permissive = SecurityProcessor {
        directory: dir(),
        authorizations: base,
        options: ProcessorOptions {
            policy: PolicyConfig {
                conflict: ConflictResolution::PermissionsTakePrecedence,
                ..Default::default()
            },
            ..Default::default()
        },
        decisions: None,
        compiled: None,
    };
    let req = AccessRequest {
        requester: Requester::new("kim", "1.2.3.4", "h.x.org").unwrap(),
        uri: "r.xml".to_string(),
    };
    let src = DocumentSource { xml: DOC, dtd: None, dtd_uri: None };
    assert_eq!(closed.process(&req, &src).unwrap().xml, "<report/>");
    assert!(permissive.process(&req, &src).unwrap().xml.contains("sum"));
}
