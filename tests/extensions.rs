//! The paper's §8 extensions, end to end: secure queries and
//! write/update operations.

use xmlsec::authz::Action;
use xmlsec::core::update::UpdateOp;
use xmlsec::prelude::*;

fn server() -> SecureServer {
    let mut dir = Directory::new();
    dir.add_user("editor").unwrap();
    dir.add_user("reader").unwrap();
    dir.add_group("Team").unwrap();
    dir.add_member("editor", "Team").unwrap();
    dir.add_member("reader", "Team").unwrap();

    let mut base = AuthorizationBase::new();
    // Everyone on the team reads the wiki...
    base.add(Authorization::new(
        Subject::new("Team", "*", "*").unwrap(),
        ObjectSpec::with_path("wiki.xml", "/wiki").unwrap(),
        Sign::Plus,
        AuthType::Recursive,
    ));
    // ...except the drafts section.
    base.add(Authorization::new(
        Subject::new("Team", "*", "*").unwrap(),
        ObjectSpec::with_path("wiki.xml", "/wiki/drafts").unwrap(),
        Sign::Minus,
        AuthType::Recursive,
    ));
    // The editor also reads drafts and may write the pages section.
    base.add(Authorization::new(
        Subject::new("editor", "*", "*").unwrap(),
        ObjectSpec::with_path("wiki.xml", "/wiki/drafts").unwrap(),
        Sign::Plus,
        AuthType::Recursive,
    ));
    base.add(
        Authorization::new(
            Subject::new("editor", "*", "*").unwrap(),
            ObjectSpec::with_path("wiki.xml", "/wiki/pages").unwrap(),
            Sign::Plus,
            AuthType::Recursive,
        )
        .with_action(Action::Write),
    );

    let mut s = SecureServer::new(dir, base);
    s.register_credentials("editor", "pw");
    s.register_credentials("reader", "pw");
    s.repository_mut().put_document(
        "wiki.xml",
        r#"<wiki><pages><page title="Home">welcome</page></pages><drafts><page title="Secret plan">shh</page></drafts></wiki>"#,
        None,
    );
    s
}

fn req(user: &str) -> ClientRequest {
    ClientRequest {
        user: Some((user.to_string(), "pw".to_string())),
        ip: "10.0.0.1".into(),
        sym: "ws.team.org".into(),
        uri: "wiki.xml".into(),
    }
}

// --- queries ------------------------------------------------------------

#[test]
fn queries_run_against_the_view_not_the_document() {
    let s = server();
    // The reader queries all page titles: drafts are invisible, so only
    // the public page comes back.
    let resp = s.query(&req("reader"), "//page/@title").unwrap();
    assert_eq!(resp.matches, vec!["Home"]);
    // The editor sees both.
    let resp2 = s.query(&req("editor"), "//page/@title").unwrap();
    assert_eq!(resp2.matches, vec!["Home", "Secret plan"]);
}

#[test]
fn query_conditions_cannot_probe_hidden_content() {
    let s = server();
    // Existence probing through a predicate: the draft's text is not in
    // the reader's view, so the condition matches nothing.
    let probe = s.query(&req("reader"), r#"//page[text() = "shh"]"#).unwrap();
    assert!(probe.matches.is_empty());
    let probe2 = s.query(&req("editor"), r#"//page[text() = "shh"]"#).unwrap();
    assert_eq!(probe2.matches.len(), 1);
}

#[test]
fn query_returns_serialized_fragments() {
    let s = server();
    let resp = s.query(&req("reader"), "//page").unwrap();
    assert_eq!(resp.matches, vec![r#"<page title="Home">welcome</page>"#]);
}

#[test]
fn bad_query_rejected() {
    let s = server();
    assert!(matches!(s.query(&req("reader"), "///["), Err(ServerError::BadQuery(_))));
}

// --- updates --------------------------------------------------------------

#[test]
fn editor_can_update_pages() {
    let s = server();
    let touched = s
        .update(
            &req("editor"),
            &[
                UpdateOp::SetText {
                    target: r#"//pages/page[@title="Home"]"#.into(),
                    text: "hello".into(),
                },
                UpdateOp::InsertElement { parent: "/wiki/pages".into(), name: "page".into() },
            ],
        )
        .unwrap();
    assert_eq!(touched, 2);
    // Changes visible through subsequent reads.
    let view = s.handle(&req("editor")).unwrap();
    assert!(view.xml.contains("hello"), "{}", view.xml);
    assert!(s.query(&req("editor"), "count(//pages/page)").is_err()); // count() alone is not a path
    let pages = s.query(&req("editor"), "//pages/page").unwrap();
    assert_eq!(pages.matches.len(), 2);
}

#[test]
fn reader_cannot_update_anything() {
    let s = server();
    let e = s
        .update(
            &req("reader"),
            &[UpdateOp::SetText { target: "//pages/page".into(), text: "defaced".into() }],
        )
        .unwrap_err();
    assert!(matches!(e, ServerError::UpdateDenied(_)));
    let view = s.handle(&req("reader")).unwrap();
    assert!(view.xml.contains("welcome"), "unchanged: {}", view.xml);
}

#[test]
fn editor_cannot_update_outside_grant() {
    let s = server();
    let e = s
        .update(
            &req("editor"),
            &[UpdateOp::SetText { target: "/wiki/drafts/page".into(), text: "x".into() }],
        )
        .unwrap_err();
    assert!(matches!(e, ServerError::UpdateDenied(_)));
}

#[test]
fn updates_patch_cached_views_in_place() {
    let s = server();
    let r1 = s.handle(&req("reader")).unwrap();
    assert!(!r1.cached);
    let r2 = s.handle(&req("reader")).unwrap();
    assert!(r2.cached);
    s.update(
        &req("editor"),
        &[UpdateOp::SetText { target: r#"//pages/page[@title="Home"]"#.into(), text: "v2".into() }],
    )
    .unwrap();
    // The commit patches the reader's warm view in place: the very next
    // read is a cache hit that already carries the new content.
    let r3 = s.handle(&req("reader")).unwrap();
    assert!(r3.cached);
    assert!(r3.xml.contains("v2"));
    assert!(!r3.xml.contains("welcome"));
    assert_ne!(r3.etag, r2.etag, "entity tag follows the content identity");
}

#[test]
fn updates_preserve_dtd_validity() {
    let mut dir = Directory::new();
    dir.add_user("ed").unwrap();
    let mut base = AuthorizationBase::new();
    base.add(
        Authorization::new(
            Subject::new("ed", "*", "*").unwrap(),
            ObjectSpec::with_path("doc.xml", "/list").unwrap(),
            Sign::Plus,
            AuthType::Recursive,
        )
        .with_action(Action::Write),
    );
    let mut s = SecureServer::new(dir, base);
    s.register_credentials("ed", "pw");
    s.repository_mut()
        .put_dtd("list.dtd", "<!ELEMENT list (item+)><!ELEMENT item (#PCDATA)>");
    s.repository_mut()
        .put_document("doc.xml", "<list><item>a</item></list>", Some("list.dtd"));
    let rq = ClientRequest {
        user: Some(("ed".into(), "pw".into())),
        ip: "1.2.3.4".into(),
        sym: "h.x.org".into(),
        uri: "doc.xml".into(),
    };
    // Deleting the only item would leave <list/> — invalid (item+).
    let e = s.update(&rq, &[UpdateOp::Delete { target: "/list/item".into() }]).unwrap_err();
    assert!(matches!(e, ServerError::UpdateDenied(_)), "{e}");
    // Inserting a new item first, then deleting one, is fine.
    s.update(&rq, &[UpdateOp::InsertElement { parent: "/list".into(), name: "item".into() }])
        .unwrap();
    s.update(&rq, &[UpdateOp::Delete { target: "/list/item[1]".into() }]).unwrap();
}

#[test]
fn write_conditions_on_defaulted_attributes_match() {
    // The write grant is conditioned on @status, which only the DTD
    // default supplies; normalization before write-labeling makes it
    // match, mirroring the read path.
    let mut dir = Directory::new();
    dir.add_user("ed").unwrap();
    let mut base = AuthorizationBase::new();
    base.add(
        Authorization::new(
            Subject::new("ed", "*", "*").unwrap(),
            ObjectSpec::with_path("doc.xml", r#"/list/item[./@status="open"]"#).unwrap(),
            Sign::Plus,
            AuthType::Recursive,
        )
        .with_action(Action::Write),
    );
    let mut s = SecureServer::new(dir, base);
    s.register_credentials("ed", "pw");
    s.repository_mut().put_dtd(
        "list.dtd",
        r#"<!ELEMENT list (item+)><!ELEMENT item (#PCDATA)>
           <!ATTLIST item status CDATA "open">"#,
    );
    s.repository_mut().put_document(
        "doc.xml",
        r#"<!DOCTYPE list SYSTEM "list.dtd"><list><item>a</item><item status="closed">b</item></list>"#,
        Some("list.dtd"),
    );
    let rq = ClientRequest {
        user: Some(("ed".into(), "pw".into())),
        ip: "1.2.3.4".into(),
        sym: "h.x.org".into(),
        uri: "doc.xml".into(),
    };
    // The defaulted-open first item is writable...
    s.update(&rq, &[UpdateOp::SetText { target: "/list/item[1]".into(), text: "done".into() }])
        .expect("defaulted @status=open grants the write");
    // ...the explicitly closed one is not.
    let e = s
        .update(&rq, &[UpdateOp::SetText { target: "/list/item[2]".into(), text: "nope".into() }])
        .unwrap_err();
    assert!(matches!(e, ServerError::UpdateDenied(_)));
}

#[test]
fn write_grants_do_not_leak_into_read_views() {
    // A user with *only* a write grant still sees nothing when reading.
    let mut dir = Directory::new();
    dir.add_user("bot").unwrap();
    let mut base = AuthorizationBase::new();
    base.add(
        Authorization::new(
            Subject::new("bot", "*", "*").unwrap(),
            ObjectSpec::with_path("doc.xml", "/d").unwrap(),
            Sign::Plus,
            AuthType::Recursive,
        )
        .with_action(Action::Write),
    );
    let mut s = SecureServer::new(dir, base);
    s.register_credentials("bot", "pw");
    s.repository_mut().put_document("doc.xml", "<d><x>1</x></d>", None);
    let rq = ClientRequest {
        user: Some(("bot".into(), "pw".into())),
        ip: "1.2.3.4".into(),
        sym: "h.x.org".into(),
        uri: "doc.xml".into(),
    };
    let view = s.handle(&rq).unwrap();
    assert_eq!(view.xml, "<d/>", "write-only principals read nothing");
    // Yet the update works.
    s.update(&rq, &[UpdateOp::SetText { target: "/d/x".into(), text: "2".into() }])
        .unwrap();
}
