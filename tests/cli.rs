//! End-to-end tests of the `xmlsec-cli` binary: every subcommand driven
//! through a real process with files on disk.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_xmlsec-cli"))
}

fn run(args: &[&str]) -> Output {
    cli().args(args).output().expect("binary runs")
}

struct Fixture {
    dir: PathBuf,
}

impl Fixture {
    fn new(name: &str) -> Fixture {
        let dir =
            std::env::temp_dir().join(format!("xmlsec-cli-test-{name}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let f = Fixture { dir };
        f.write(
            "doc.xml",
            r#"<laboratory name="CSlab"><project name="P1" type="public"><manager><flname>Bob</flname></manager><paper category="public"><title>T1</title></paper><paper category="private"><title>T2</title></paper></project></laboratory>"#,
        );
        f.write(
            "lab.dtd",
            r#"<!ELEMENT laboratory (project+)>
<!ATTLIST laboratory name CDATA #REQUIRED>
<!ELEMENT project (manager, paper*)>
<!ATTLIST project name CDATA #REQUIRED type CDATA #REQUIRED>
<!ELEMENT manager (flname)>
<!ELEMENT flname (#PCDATA)>
<!ELEMENT paper (title)>
<!ATTLIST paper category CDATA #REQUIRED>
<!ELEMENT title (#PCDATA)>"#,
        );
        f.write(
            "acl.xml",
            r#"<xacl>
  <authorization sign="+" type="RW">
    <subject user-group="Public"/>
    <object uri="doc.xml" path="//paper[./@category=&quot;public&quot;]"/>
    <action>read</action>
  </authorization>
</xacl>"#,
        );
        f.write("dir.txt", "user Tom\ngroup Public\nmember Tom Public\n");
        f
    }

    fn write(&self, name: &str, content: &str) {
        std::fs::write(self.dir.join(name), content).expect("write fixture");
    }

    fn path(&self, name: &str) -> String {
        self.dir.join(name).to_string_lossy().into_owned()
    }
}

impl Drop for Fixture {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

fn stdout(o: &Output) -> String {
    String::from_utf8_lossy(&o.stdout).into_owned()
}

fn stderr(o: &Output) -> String {
    String::from_utf8_lossy(&o.stderr).into_owned()
}

#[test]
fn view_prunes_by_xacl() {
    let f = Fixture::new("view");
    let out = run(&[
        "view",
        "--doc",
        &f.path("doc.xml"),
        "--uri",
        "doc.xml",
        "--user",
        "Tom",
        "--ip",
        "1.2.3.4",
        "--host",
        "a.b.it",
        "--xacl",
        &f.path("acl.xml"),
        "--dir",
        &f.path("dir.txt"),
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    let s = stdout(&out);
    assert!(s.contains("T1"), "{s}");
    assert!(!s.contains("T2"), "{s}");
}

#[test]
fn view_open_policy_flag() {
    let f = Fixture::new("open");
    let out = run(&[
        "view",
        "--doc",
        &f.path("doc.xml"),
        "--uri",
        "doc.xml",
        "--user",
        "Tom",
        "--ip",
        "1.2.3.4",
        "--host",
        "a.b.it",
        "--open",
    ]);
    assert!(out.status.success());
    assert!(stdout(&out).contains("T2"), "open policy reveals everything");
}

#[test]
fn validate_reports_valid_and_violations() {
    let f = Fixture::new("validate");
    let ok = run(&["validate", "--doc", &f.path("doc.xml"), "--dtd", &f.path("lab.dtd")]);
    assert!(ok.status.success(), "{}", stderr(&ok));
    assert!(stdout(&ok).contains("valid"));

    f.write("bad.xml", "<laboratory><project/></laboratory>");
    let bad = run(&["validate", "--doc", &f.path("bad.xml"), "--dtd", &f.path("lab.dtd")]);
    assert!(!bad.status.success());
    assert!(stdout(&bad).contains("required attribute"), "{}", stdout(&bad));
}

#[test]
fn validate_strict_reports_nondeterministic_models() {
    let f = Fixture::new("strict");
    f.write(
        "ambi.dtd",
        "<!ELEMENT a ((b, c) | (b, d))><!ELEMENT b EMPTY><!ELEMENT c EMPTY><!ELEMENT d EMPTY>",
    );
    f.write("ambi.xml", "<a><b/><c/></a>");
    // Default: the document matches (subset simulation tolerates ambiguity).
    let ok = run(&["validate", "--doc", &f.path("ambi.xml"), "--dtd", &f.path("ambi.dtd")]);
    assert!(ok.status.success(), "{}", stdout(&ok));
    // Strict: the 1-ambiguous model is reported.
    let strict =
        run(&["validate", "--doc", &f.path("ambi.xml"), "--dtd", &f.path("ambi.dtd"), "--strict"]);
    assert!(!strict.status.success());
    assert!(stdout(&strict).contains("nondeterministic"), "{}", stdout(&strict));
}

#[test]
fn loosen_emits_optionalized_dtd() {
    let f = Fixture::new("loosen");
    let out = run(&["loosen", "--dtd", &f.path("lab.dtd")]);
    assert!(out.status.success());
    let s = stdout(&out);
    assert!(s.contains("(project*)"), "{s}");
    assert!(!s.contains("#REQUIRED"), "{s}");
}

#[test]
fn tree_renders_doc_and_dtd() {
    let f = Fixture::new("tree");
    let doc_tree = run(&["tree", "--doc", &f.path("doc.xml")]);
    assert!(doc_tree.status.success());
    assert!(stdout(&doc_tree).contains("(laboratory)"));
    let dtd_tree = run(&["tree", "--dtd", &f.path("lab.dtd")]);
    assert!(dtd_tree.status.success());
    assert!(stdout(&dtd_tree).contains("(project)+"), "{}", stdout(&dtd_tree));
}

#[test]
fn xpath_prints_matches() {
    let f = Fixture::new("xpath");
    let out = run(&["xpath", "--doc", &f.path("doc.xml"), "--expr", "//paper/@category"]);
    assert!(out.status.success());
    assert_eq!(stdout(&out), "public\nprivate\n");
}

#[test]
fn xacl_checks_and_echoes() {
    let f = Fixture::new("xacl");
    let out = run(&["xacl", "--xacl", &f.path("acl.xml")]);
    assert!(out.status.success());
    assert!(stdout(&out).contains("1 authorizations"));
    assert!(stdout(&out).contains("⟨Public, *, *⟩"));
}

#[test]
fn analyze_flags_dead_paths() {
    let f = Fixture::new("analyze");
    let live = run(&["analyze", "--dtd", &f.path("lab.dtd"), "--xacl", &f.path("acl.xml")]);
    assert!(live.status.success(), "{}", stdout(&live));
    assert!(stdout(&live).contains("covers <paper>"), "{}", stdout(&live));

    f.write(
        "dead.xml",
        r#"<xacl><authorization sign="+" type="R">
            <subject user-group="Public"/>
            <object uri="doc.xml" path="//budget"/>
            <action>read</action></authorization></xacl>"#,
    );
    let dead = run(&["analyze", "--dtd", &f.path("lab.dtd"), "--xacl", &f.path("dead.xml")]);
    assert!(!dead.status.success());
    assert!(stdout(&dead).contains("DEAD PATH"), "{}", stdout(&dead));
}

/// Path to a shipped example-policy corpus file.
fn corpus(name: &str) -> String {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("examples/policies")
        .join(name)
        .to_string_lossy()
        .into_owned()
}

#[test]
fn analyze_hospital_corpus_matches_goldens() {
    let human = run(&[
        "analyze",
        &corpus("hospital.dtd"),
        &corpus("hospital.xacl"),
        "--dir",
        &corpus("hospital.dir"),
    ]);
    assert!(human.status.success(), "{}", stderr(&human));
    assert_eq!(stdout(&human), include_str!("golden/analyze_hospital.txt"));

    let json = run(&[
        "analyze",
        &corpus("hospital.dtd"),
        &corpus("hospital.xacl"),
        "--dir",
        &corpus("hospital.dir"),
        "--format",
        "json",
    ]);
    assert!(json.status.success(), "{}", stderr(&json));
    assert_eq!(
        stdout(&json),
        include_str!("golden/analyze_hospital.json"),
        "the analyze JSON schema is a contract; update the golden deliberately"
    );
}

#[test]
fn analyze_financial_corpus_matches_goldens() {
    let args = |fmt: &'static str| {
        vec![
            "analyze".to_string(),
            corpus("financial.dtd"),
            corpus("financial.xacl"),
            "--dir".to_string(),
            corpus("financial.dir"),
            "--dtd-uri".to_string(),
            "statements.dtd".to_string(),
            "--format".to_string(),
            fmt.to_string(),
        ]
    };
    let human = cli().args(args("human")).output().expect("binary runs");
    assert!(human.status.success(), "{}", stderr(&human));
    assert_eq!(stdout(&human), include_str!("golden/analyze_financial.txt"));

    let json = cli().args(args("json")).output().expect("binary runs");
    assert!(json.status.success(), "{}", stderr(&json));
    assert_eq!(stdout(&json), include_str!("golden/analyze_financial.json"));
}

#[test]
fn analyze_writes_hospital_corpus_matches_goldens() {
    let args = |fmt: &'static str| {
        vec![
            "analyze".to_string(),
            corpus("hospital.dtd"),
            corpus("hospital.xacl"),
            "--dir".to_string(),
            corpus("hospital.dir"),
            "--writes".to_string(),
            "--format".to_string(),
            fmt.to_string(),
        ]
    };
    let human = cli().args(args("human")).output().expect("binary runs");
    assert!(human.status.success(), "{}", stderr(&human));
    assert_eq!(stdout(&human), include_str!("golden/analyze_writes_hospital.txt"));

    let json = cli().args(args("json")).output().expect("binary runs");
    assert!(json.status.success(), "{}", stderr(&json));
    assert_eq!(
        stdout(&json),
        include_str!("golden/analyze_writes_hospital.json"),
        "the analyze --writes JSON schema is a contract; update the golden deliberately"
    );
}

#[test]
fn analyze_writes_financial_corpus_matches_goldens() {
    let args = |fmt: &'static str| {
        vec![
            "analyze".to_string(),
            corpus("financial.dtd"),
            corpus("financial.xacl"),
            "--dir".to_string(),
            corpus("financial.dir"),
            "--dtd-uri".to_string(),
            "statements.dtd".to_string(),
            "--writes".to_string(),
            "--format".to_string(),
            fmt.to_string(),
        ]
    };
    // The tellers' transaction grant is write-only (they read only
    // owners and balances), so the analyzer flags a write-only region —
    // a warning, not an error: the command still exits zero.
    let human = cli().args(args("human")).output().expect("binary runs");
    assert!(human.status.success(), "{}", stderr(&human));
    assert_eq!(stdout(&human), include_str!("golden/analyze_writes_financial.txt"));

    let json = cli().args(args("json")).output().expect("binary runs");
    assert!(json.status.success(), "{}", stderr(&json));
    assert_eq!(stdout(&json), include_str!("golden/analyze_writes_financial.json"));
}

#[test]
fn compile_hospital_corpus_matches_golden() {
    let args = |fmt: &'static str| {
        vec![
            "compile".to_string(),
            corpus("hospital.dtd"),
            corpus("hospital.xacl"),
            "--dir".to_string(),
            corpus("hospital.dir"),
            "--user".to_string(),
            "omar".to_string(),
            "--ip".to_string(),
            "10.0.0.9".to_string(),
            "--host".to_string(),
            "admin.hospital.org".to_string(),
            "--format".to_string(),
            fmt.to_string(),
        ]
    };
    // Administration's two predicate-free schema grants compile to an
    // all-guaranteed table: the whole-document fast path.
    let human = cli().args(args("human")).output().expect("binary runs");
    assert!(human.status.success(), "{}", stderr(&human));
    let s = stdout(&human);
    assert!(s.contains("fast path: yes"), "{s}");
    assert!(s.contains("<billing>"), "{s}");

    let json = cli().args(args("json")).output().expect("binary runs");
    assert!(json.status.success(), "{}", stderr(&json));
    assert_eq!(
        stdout(&json),
        include_str!("golden/compile_hospital.json"),
        "the compile JSON schema is a contract; update the golden deliberately"
    );
}

#[test]
fn compile_financial_corpus_matches_golden() {
    let args = |fmt: &'static str| {
        vec![
            "compile".to_string(),
            corpus("financial.dtd"),
            corpus("financial.xacl"),
            "--dir".to_string(),
            corpus("financial.dir"),
            "--user".to_string(),
            "axel".to_string(),
            "--ip".to_string(),
            "10.9.9.9".to_string(),
            "--host".to_string(),
            "hq.bank.com".to_string(),
            "--dtd-uri".to_string(),
            "statements.dtd".to_string(),
            "--doc-uri".to_string(),
            "statements.xml".to_string(),
            "--format".to_string(),
            fmt.to_string(),
        ]
    };
    // The auditors' flagged-memo denial carries a predicate, so one cell
    // stays instance-dependent: a residual check, no fast path.
    let human = cli().args(args("human")).output().expect("binary runs");
    assert!(human.status.success(), "{}", stderr(&human));
    let s = stdout(&human);
    assert!(s.contains("fast path: no"), "{s}");
    assert!(s.contains("residual instance checks:"), "{s}");

    let json = cli().args(args("json")).output().expect("binary runs");
    assert!(json.status.success(), "{}", stderr(&json));
    assert_eq!(stdout(&json), include_str!("golden/compile_financial.json"));
}

#[test]
fn analyze_subject_list_and_flag_errors() {
    // Explicit subject list: only the requested table is produced.
    let out = run(&[
        "analyze",
        &corpus("hospital.dtd"),
        &corpus("hospital.xacl"),
        "--dir",
        &corpus("hospital.dir"),
        "--subjects",
        "list",
        "--subject",
        "omar",
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    let s = stdout(&out);
    assert!(s.contains("decision table ⟨omar, *, *⟩"), "{s}");
    assert!(!s.contains("decision table ⟨Clinical"), "{s}");

    // list mode without --subject is a usage error.
    let none =
        run(&["analyze", &corpus("hospital.dtd"), &corpus("hospital.xacl"), "--subjects", "list"]);
    assert!(!none.status.success());
    assert!(stderr(&none).contains("--subject"), "{}", stderr(&none));
}

#[test]
fn lint_reports_findings() {
    let f = Fixture::new("lint");
    let clean = run(&["lint", "--xacl", &f.path("acl.xml"), "--dir", &f.path("dir.txt")]);
    assert!(clean.status.success(), "{}", stdout(&clean));
    assert!(stdout(&clean).contains("clean"));

    // A duplicated authorization plus an unknown subject.
    f.write(
        "messy.xml",
        r#"<xacl>
  <authorization sign="+" type="R">
    <subject user-group="Public"/><object uri="d.xml" path="/a"/>
    <action>read</action></authorization>
  <authorization sign="+" type="R">
    <subject user-group="Public"/><object uri="d.xml" path="/a"/>
    <action>read</action></authorization>
  <authorization sign="+" type="R">
    <subject user-group="Nobody"/><object uri="d.xml" path="/a"/>
    <action>read</action></authorization>
</xacl>"#,
    );
    let messy = run(&["lint", "--xacl", &f.path("messy.xml"), "--dir", &f.path("dir.txt")]);
    assert!(!messy.status.success());
    let s = stdout(&messy);
    assert!(s.contains("duplicates"), "{s}");
    assert!(s.contains("Nobody"), "{s}");
}

#[test]
fn explain_prints_labels() {
    let f = Fixture::new("explain");
    let out = run(&[
        "explain",
        "--doc",
        &f.path("doc.xml"),
        "--uri",
        "doc.xml",
        "--user",
        "Tom",
        "--ip",
        "1.2.3.4",
        "--host",
        "a.b.it",
        "--xacl",
        &f.path("acl.xml"),
        "--dir",
        &f.path("dir.txt"),
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    let s = stdout(&out);
    assert!(s.contains("(paper) [+]"), "{s}");
    assert!(s.contains("(laboratory) [ε]"), "{s}");
}

#[test]
fn bad_usage_exits_nonzero_with_usage() {
    let none = cli().output().expect("runs");
    assert_eq!(none.status.code(), Some(2));
    assert!(stderr(&none).contains("usage"));

    let unknown = run(&["frobnicate"]);
    assert!(!unknown.status.success());

    let missing = run(&["view", "--doc"]);
    assert_eq!(missing.status.code(), Some(2));
    assert!(stderr(&missing).contains("--doc needs a value"));

    let f = Fixture::new("badfile");
    let nofile = run(&["validate", "--doc", &f.path("nope.xml"), "--dtd", &f.path("lab.dtd")]);
    assert!(!nofile.status.success());
    assert!(stderr(&nofile).contains("cannot read"));
}

#[test]
fn serve_robustness_flags_are_validated_before_binding() {
    // Malformed deadline/shedding flags must fail fast with a typed
    // message, before the server ever binds a socket.
    let bad_deadline = run(&["serve", "--deadline-ms", "soon"]);
    assert!(!bad_deadline.status.success());
    assert!(stderr(&bad_deadline).contains("--deadline-ms must be a number"));

    let bad_shed = run(&["serve", "--shed-adaptive", "maybe"]);
    assert!(!bad_shed.status.success());
    assert!(stderr(&bad_shed).contains("--shed-adaptive must be on or off"));

    let bad_target = run(&["serve", "--shed-target-ms", "fast"]);
    assert!(!bad_target.status.success());
    assert!(stderr(&bad_target).contains("--shed-target-ms must be a number"));

    let bad_transport = run(&["serve", "--transport", "iocp"]);
    assert!(!bad_transport.status.success());
    assert!(stderr(&bad_transport).contains("unknown transport \"iocp\" (expected pool|epoll)"));
}

#[test]
fn fixture_paths_are_absolute() {
    // Sanity: fixtures must not depend on the CWD of the test runner.
    let f = Fixture::new("abs");
    assert!(Path::new(&f.path("doc.xml")).is_absolute());
}
