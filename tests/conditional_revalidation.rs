//! Conditional revalidation end to end, pinned against the pipeline-run
//! counter: an `If-None-Match` hit answers 304 **without invoking
//! compute-view at all** — `xmlsec_pipeline_runs_total` must not move.
//!
//! This file contains exactly one test function on purpose: the
//! assertion reads a process-global telemetry counter, and sibling tests
//! running on other threads of the same binary would race it. A separate
//! integration-test file is a separate process.

use xmlsec::prelude::*;
use xmlsec::telemetry;

fn pipeline_runs() -> u64 {
    telemetry::global()
        .render_prometheus()
        .lines()
        .find(|l| l.starts_with("xmlsec_pipeline_runs_total") && !l.starts_with('#'))
        .and_then(|l| l.rsplit(' ').next())
        .and_then(|v| v.parse().ok())
        .unwrap_or(0)
}

#[test]
fn if_none_match_hit_skips_the_pipeline_entirely() {
    use xmlsec::workload::laboratory::*;
    let mut s = SecureServer::new(lab_directory(), lab_authorization_base());
    s.register_credentials("Tom", "pw-tom");
    s.repository_mut().put_dtd(LAB_DTD_URI, LAB_DTD);
    s.repository_mut().put_document(CSLAB_URI, CSLAB_XML, Some(LAB_DTD_URI));
    let req = ClientRequest {
        user: Some(("Tom".into(), "pw-tom".into())),
        ip: "130.100.50.8".into(),
        sym: "infosys.bld1.it".into(),
        uri: CSLAB_URI.into(),
    };

    // First request renders: exactly one pipeline run.
    let runs0 = pipeline_runs();
    let first = match s.handle_conditional(&req, None).unwrap() {
        ConditionalOutcome::Full(resp) => resp,
        other => panic!("expected a full response, got {other:?}"),
    };
    assert!(!first.cached);
    assert!(!first.etag.is_empty());
    assert_eq!(pipeline_runs(), runs0 + 1);

    // Revalidation with the current tag: 304, zero pipeline runs.
    let quoted = format!("\"{}\"", first.etag);
    let runs1 = pipeline_runs();
    match s.handle_conditional(&req, Some(&quoted)).unwrap() {
        ConditionalOutcome::NotModified { etag } => assert_eq!(etag, first.etag),
        other => panic!("expected 304, got {other:?}"),
    }
    assert_eq!(pipeline_runs(), runs1, "a 304 must not invoke compute-view");

    // A stale client tag gets the cached body — still no pipeline run.
    match s.handle_conditional(&req, Some("\"stale\"")).unwrap() {
        ConditionalOutcome::Full(resp) => {
            assert!(resp.cached);
            assert_eq!(resp.etag, first.etag);
        }
        other => panic!("expected a full cached response, got {other:?}"),
    }
    assert_eq!(pipeline_runs(), runs1, "a cache hit must not invoke compute-view");

    // Mutating the content retires the tag: the old tag now misses and
    // the pipeline runs exactly once for the re-render.
    let mutated = CSLAB_XML.replace("Querying XML", "Indexing XML");
    assert_ne!(mutated, CSLAB_XML);
    s.repository_mut().put_document(CSLAB_URI, &mutated, Some(LAB_DTD_URI));
    let runs2 = pipeline_runs();
    match s.handle_conditional(&req, Some(&quoted)).unwrap() {
        ConditionalOutcome::Full(resp) => {
            assert!(!resp.cached);
            assert_ne!(resp.etag, first.etag);
            assert!(resp.xml.contains("Indexing XML"));
        }
        other => panic!("expected a fresh full response, got {other:?}"),
    }
    assert_eq!(pipeline_runs(), runs2 + 1);
}
