//! Differential cancellation property over the full processor pipeline.
//!
//! For random documents, directories and authorization sets, a request
//! whose token trips after a random number of cooperative polls must be
//! **all-or-nothing**: either the typed `Cancelled` error comes back, or
//! the view is byte-identical to the uncancelled baseline — never a
//! partial or corrupt view. Afterwards no shared state may be poisoned:
//! the core-lease and fan-out queue gauges are back at their baseline
//! (a cancelled parallel run returned every leased core), and the same
//! processor re-run with a fresh token reproduces the full view.
//!
//! Thread counts are forced with `Parallelism::exact` so the
//! cancellation path of the real worker pool runs even on single-core
//! CI containers.

use proptest::prelude::*;
use xmlsec::core::{
    AccessRequest, CancelReason, CancelToken, DocumentSource, Parallelism, ProcessError,
    SecurityProcessor,
};
use xmlsec::workload::{
    random_auths, random_directory, random_requester, random_tree, AuthConfig, TreeConfig,
};
use xmlsec::xml::{serialize, SerializeOptions};
use xmlsec_authz::AuthorizationBase;

/// Current value of one of the worker-pool gauges (process-global; this
/// test owns its binary, so reads are not racing other tests).
fn gauge(name: &'static str, help: &'static str) -> i64 {
    xmlsec::telemetry::global().gauge(name, help, &[]).get()
}

fn cores_leased() -> i64 {
    gauge("xmlsec_par_cores_leased", "Extra cores currently leased from the global core budget.")
}

fn queue_depth() -> i64 {
    gauge("xmlsec_par_queue_depth", "Tasks currently waiting in the compute-view work queue.")
}

/// A fully-specified random scenario: document text, processor (with
/// the requester-independent authorization base) and the request.
fn scenario(
    doc_seed: u64,
    auth_seed: u64,
    elements: usize,
    auth_count: usize,
) -> (String, SecurityProcessor, AccessRequest) {
    let doc = random_tree(&TreeConfig { elements, ..Default::default() }, doc_seed);
    let xml = serialize(&doc, &SerializeOptions::default());
    let dir = random_directory(6, 4, auth_seed);
    let requester = random_requester(6, auth_seed);
    let (axml, _adtd) = random_auths(
        &AuthConfig { count: auth_count, ..Default::default() },
        "d.xml",
        "d.dtd",
        auth_seed,
    );
    let mut base = AuthorizationBase::new();
    for a in axml {
        base.add(a);
    }
    let processor = SecurityProcessor::new(dir, base);
    (xml, processor, AccessRequest { requester, uri: "d.xml".into() })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn cancelled_requests_are_all_or_nothing(
        doc_seed in 0u64..1_000_000,
        auth_seed in 0u64..1_000_000,
        elements in 8usize..120,
        auth_count in 1usize..10,
        polls in 0u64..4_000,
        threads in 1usize..4,
    ) {
        let (xml, mut p, req) = scenario(doc_seed, auth_seed, elements, auth_count);
        if threads > 1 {
            p.options.parallelism =
                Parallelism::threads(threads).with_seq_threshold(0).exact();
        }
        let src = DocumentSource { xml: &xml, dtd: None, dtd_uri: None };
        let want = p.process(&req, &src).expect("uncancelled baseline");
        let leased0 = cores_leased();
        let queued0 = queue_depth();

        // Cancel after a random number of cooperative polls: the run
        // either dies with the typed error or finishes byte-identical.
        p.options.cancel = CancelToken::cancel_after_polls(polls);
        match p.process(&req, &src) {
            Err(ProcessError::Cancelled(CancelReason::Explicit)) => {}
            Ok(out) => prop_assert_eq!(
                &out.xml, &want.xml,
                "a run surviving its poll budget must be the full view"
            ),
            other => prop_assert!(false, "poll budget {}: {:?}", polls, other),
        }

        // Nothing leaked: every leased core returned, no queued task
        // stranded, regardless of where in the pipeline the run died.
        prop_assert_eq!(cores_leased(), leased0, "leaked core lease");
        prop_assert_eq!(queue_depth(), queued0, "stranded fan-out task");

        // Nothing poisoned: a fresh token on the same processor (and
        // the same shared caches) recomputes the identical full view.
        p.options.cancel = CancelToken::never();
        let again = p.process(&req, &src).expect("restart after cancellation");
        prop_assert_eq!(&again.xml, &want.xml);
        prop_assert_eq!(&again.stats, &want.stats);
    }
}
