//! Systematic matrix of authorization-type interactions on a two-level
//! document: an authorization of each type/level on the root (`/a`, sign
//! varies) against an authorization of each type/level on the child
//! (`/a/b`). Documents the §5/§6 override semantics exhaustively, with
//! the final sign of `<b>` checked against hand-derived expectations.
//!
//! Legend: parent auth propagates only if recursive; the child's final
//! sign is `first_def(L, R, LD, RD, LW, RW)` after propagation, where an
//! instance recursive (strong *or* weak) on the child stops the parent's
//! instance propagation, and `RD` propagates independently.

use xmlsec::authz::Authorization;
use xmlsec::prelude::*;

const DOC: &str = "<a><b>t</b></a>";

/// Where an authorization lives.
#[derive(Clone, Copy, Debug, PartialEq)]
enum Level {
    Instance,
    Schema,
}

fn auth(path: &str, sign: Sign, ty: AuthType, level: Level) -> (Level, Authorization) {
    let uri = match level {
        Level::Instance => "d.xml",
        Level::Schema => "d.dtd",
    };
    (
        level,
        Authorization::new(
            Subject::new("u", "*", "*").unwrap(),
            ObjectSpec::with_path(uri, path).unwrap(),
            sign,
            ty,
        ),
    )
}

/// Final sign of `<b>` under the given authorizations.
fn sign_of_b(auths: &[(Level, Authorization)]) -> Sign3 {
    let doc = parse(DOC).unwrap();
    let dir = Directory::new();
    let axml: Vec<&Authorization> =
        auths.iter().filter(|(l, _)| *l == Level::Instance).map(|(_, a)| a).collect();
    let adtd: Vec<&Authorization> =
        auths.iter().filter(|(l, _)| *l == Level::Schema).map(|(_, a)| a).collect();
    let labeling =
        xmlsec::core::label_document(&doc, &axml, &adtd, &dir, PolicyConfig::paper_default());
    let b = select(&doc, &parse_path("/a/b").unwrap())[0];
    labeling.final_sign(b)
}

#[test]
fn parent_only_matrix() {
    use AuthType::*;
    use Level::*;
    // (type, level, expected sign of b when parent has a '+' auth)
    let cases = [
        (Local, Instance, Sign3::Eps),      // local does not reach sub-elements
        (Recursive, Instance, Sign3::Plus), // propagates
        (LocalWeak, Instance, Sign3::Eps),  // local, weak or not
        (RecursiveWeak, Instance, Sign3::Plus),
        (Local, Schema, Sign3::Eps),      // LD on parent does not reach b
        (Recursive, Schema, Sign3::Plus), // RD propagates
        (LocalWeak, Schema, Sign3::Eps),  // weak folds into strong at schema level
        (RecursiveWeak, Schema, Sign3::Plus),
    ];
    for (ty, level, expected) in cases {
        let auths = [auth("/a", Sign::Plus, ty, level)];
        assert_eq!(sign_of_b(&auths), expected, "parent-only: type {ty:?} at {level:?}");
    }
}

#[test]
fn child_vs_parent_within_instance_level() {
    use AuthType::*;
    // A conflicting authorization on b against a propagated recursive
    // parent grant: L wins (first in first_def), R and RW win (they stop
    // the propagation), but a *Local Weak* on the child does NOT — the
    // parent's strong recursive propagates into the R slot, which sits
    // before LW in the priority sequence.
    let cases = [
        (Local, Sign3::Minus),
        (Recursive, Sign3::Minus),
        (LocalWeak, Sign3::Plus),
        (RecursiveWeak, Sign3::Minus),
    ];
    for (child_ty, expected) in cases {
        let auths = [
            auth("/a", Sign::Plus, Recursive, Level::Instance),
            auth("/a/b", Sign::Minus, child_ty, Level::Instance),
        ];
        assert_eq!(sign_of_b(&auths), expected, "child {child_ty:?} vs parent R+");
    }
}

#[test]
fn instance_vs_schema_priority_on_the_same_node() {
    use AuthType::*;
    // Strong instance beats schema; weak instance loses to schema.
    let strong = [
        auth("/a/b", Sign::Plus, Recursive, Level::Instance),
        auth("/a/b", Sign::Minus, Recursive, Level::Schema),
    ];
    assert_eq!(sign_of_b(&strong), Sign3::Plus, "strong instance beats schema");

    let weak = [
        auth("/a/b", Sign::Plus, RecursiveWeak, Level::Instance),
        auth("/a/b", Sign::Minus, Recursive, Level::Schema),
    ];
    assert_eq!(sign_of_b(&weak), Sign3::Minus, "weak instance loses to schema");

    let weak_alone = [auth("/a/b", Sign::Plus, RecursiveWeak, Level::Instance)];
    assert_eq!(sign_of_b(&weak_alone), Sign3::Plus, "weak holds absent schema");
}

#[test]
fn propagated_schema_beats_weak_on_child() {
    // RD propagated from the parent outranks the child's own weak signs.
    let auths = [
        auth("/a", Sign::Minus, AuthType::Recursive, Level::Schema),
        auth("/a/b", Sign::Plus, AuthType::LocalWeak, Level::Instance),
    ];
    assert_eq!(sign_of_b(&auths), Sign3::Minus);
    // ...but the child's own *strong* local wins over propagated RD.
    let auths2 = [
        auth("/a", Sign::Minus, AuthType::Recursive, Level::Schema),
        auth("/a/b", Sign::Plus, AuthType::Local, Level::Instance),
    ];
    assert_eq!(sign_of_b(&auths2), Sign3::Plus);
}

#[test]
fn weak_recursive_on_child_stops_strong_propagation() {
    // The propagation rule: an instance recursive authorization on the
    // node — strong or weak — stops the parent's instance propagation
    // entirely (both R and RW).
    let auths = [
        auth("/a", Sign::Plus, AuthType::Recursive, Level::Instance),
        auth("/a/b", Sign::Minus, AuthType::RecursiveWeak, Level::Instance),
    ];
    assert_eq!(sign_of_b(&auths), Sign3::Minus);
    // A *local* weak denial on b also beats the propagated R in the
    // child's first_def? No: L_b=ε, R_b inherits '+' (local does not stop
    // propagation), and R comes before LW. Plus wins.
    let auths2 = [
        auth("/a", Sign::Plus, AuthType::Recursive, Level::Instance),
        auth("/a/b", Sign::Minus, AuthType::LocalWeak, Level::Instance),
    ];
    assert_eq!(sign_of_b(&auths2), Sign3::Plus);
}

#[test]
fn local_on_child_beats_everything_else_there() {
    use AuthType::*;
    use Level::*;
    let auths = [
        auth("/a/b", Sign::Plus, Local, Instance),
        auth("/a/b", Sign::Minus, Recursive, Instance),
        auth("/a/b", Sign::Minus, Recursive, Schema),
        auth("/a/b", Sign::Minus, RecursiveWeak, Instance),
        auth("/a", Sign::Minus, Recursive, Instance),
    ];
    assert_eq!(sign_of_b(&auths), Sign3::Plus, "L is first in first_def");
}

#[test]
fn grandchild_inheritance_depth() {
    // Three levels: /a R+, /a/b RW-, check <c> under b inherits the weak
    // minus (propagation carries RW down once it stopped R).
    let doc = parse("<a><b><c>t</c></b></a>").unwrap();
    let dir = Directory::new();
    let auths = [
        Authorization::new(
            Subject::new("u", "*", "*").unwrap(),
            ObjectSpec::with_path("d.xml", "/a").unwrap(),
            Sign::Plus,
            AuthType::Recursive,
        ),
        Authorization::new(
            Subject::new("u", "*", "*").unwrap(),
            ObjectSpec::with_path("d.xml", "/a/b").unwrap(),
            Sign::Minus,
            AuthType::RecursiveWeak,
        ),
    ];
    let refs: Vec<&Authorization> = auths.iter().collect();
    let labeling =
        xmlsec::core::label_document(&doc, &refs, &[], &dir, PolicyConfig::paper_default());
    let c = select(&doc, &parse_path("/a/b/c").unwrap())[0];
    assert_eq!(labeling.final_sign(c), Sign3::Minus);
}
