//! The §6.2 guarantee, as a property over *random schemas*:
//!
//! > for any DTD, any valid instance, any authorization set, and any
//! > requester, the pruned view validates against the loosened DTD.
//!
//! This is the load-bearing claim behind shipping the loosened DTD with
//! the view ("the DTD loosening prevents users from detecting whether
//! information was hidden by the security enforcement or simply missing
//! in the original document") — if it ever failed, the view would be
//! rejected by a validating client and reveal that pruning happened.

use proptest::prelude::*;
use xmlsec::authz::Authorization;
use xmlsec::prelude::*;
use xmlsec::workload::{conforming_doc, random_auths, random_dtd, AuthConfig, DtdConfig, GEN_ROOT};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn pruned_views_validate_against_loosened_random_dtds(
        dtd_seed in 0u64..1_000_000,
        doc_seed in 0u64..1_000_000,
        auth_seed in 0u64..1_000_000,
        elements in 2usize..12,
        auth_count in 0usize..16,
    ) {
        let dtd = random_dtd(&DtdConfig { elements, ..Default::default() }, dtd_seed);
        let mut doc = conforming_doc(&dtd, doc_seed);
        xmlsec::dtd::normalize(&dtd, &mut doc);
        prop_assert_eq!(xmlsec::dtd::validate(&dtd, &doc), vec![], "generator soundness");

        // Random authorizations over the generated tag space (`e{i}`);
        // reuse the generic generator with matching vocabulary by
        // rewriting its `t{i}` paths to `e{i}` and `/root` to `/e0`.
        let (inst, schema) = random_auths(
            &AuthConfig { count: auth_count, ..Default::default() },
            "d.xml", "d.dtd", auth_seed);
        let rewrite = |a: &Authorization| -> Option<Authorization> {
            let text = a.object.path_text.as_deref()?;
            let rewritten = text.replace("/root", &format!("/{GEN_ROOT}")).replace('t', "e");
            let object = ObjectSpec::with_path(&a.object.uri, &rewritten).ok()?;
            Some(Authorization { object, ..a.clone() })
        };
        let inst: Vec<Authorization> = inst.iter().filter_map(rewrite).collect();
        let schema: Vec<Authorization> = schema.iter().filter_map(rewrite).collect();
        let ax: Vec<&Authorization> = inst.iter().collect();
        let ad: Vec<&Authorization> = schema.iter().collect();

        let dir = xmlsec::workload::random_directory(6, 4, auth_seed);
        for policy in [
            PolicyConfig::paper_default(),
            PolicyConfig { completeness: CompletenessPolicy::Open, ..Default::default() },
        ] {
            let (view, _) = compute_view(&doc, &ax, &ad, &dir, policy);
            let loosened = loosen(&dtd);
            let errs = xmlsec::dtd::validate(&loosened, &view);
            prop_assert!(
                errs.is_empty(),
                "loosening guarantee violated ({policy:?}): {errs:?}\nview: {}\nloosened:\n{}",
                serialize(&view, &SerializeOptions::canonical()),
                serialize_dtd(&loosened)
            );
        }
    }

    /// The loosened DTD also keeps accepting the *original* document —
    /// loosening only ever widens the language.
    #[test]
    fn loosening_widens_the_language(
        dtd_seed in 0u64..1_000_000,
        doc_seed in 0u64..1_000_000,
        elements in 2usize..12,
    ) {
        let dtd = random_dtd(&DtdConfig { elements, ..Default::default() }, dtd_seed);
        let mut doc = conforming_doc(&dtd, doc_seed);
        xmlsec::dtd::normalize(&dtd, &mut doc);
        prop_assert_eq!(xmlsec::dtd::validate(&dtd, &doc), vec![]);
        prop_assert_eq!(xmlsec::dtd::validate(&loosen(&dtd), &doc), vec![]);
    }
}
