//! HTTP demonstrator protocol details: loosened-DTD delivery, encoded
//! queries, and location parameters feeding the subject hierarchy.

use std::io::{Read, Write};
use std::net::TcpStream;
use xmlsec::prelude::*;
use xmlsec::workload::laboratory::*;

fn demo() -> xmlsec::server::HttpDemo {
    let mut s = SecureServer::new(lab_directory(), lab_authorization_base());
    s.register_credentials("Tom", "pw");
    s.repository_mut().put_dtd(LAB_DTD_URI, LAB_DTD);
    s.repository_mut().put_document(CSLAB_URI, CSLAB_XML, Some(LAB_DTD_URI));
    xmlsec::server::HttpDemo::start(s, "127.0.0.1:0").expect("bind")
}

fn get(demo: &xmlsec::server::HttpDemo, target: &str) -> (u16, String) {
    let mut conn = TcpStream::connect(demo.addr()).expect("connect");
    write!(conn, "GET {target} HTTP/1.0\r\nHost: t\r\n\r\n").expect("write");
    let mut buf = String::new();
    conn.read_to_string(&mut buf).expect("read");
    let code = buf.split_whitespace().nth(1).and_then(|c| c.parse().ok()).unwrap_or(0);
    let body = buf.split_once("\r\n\r\n").map(|(_, b)| b.to_string()).unwrap_or_default();
    (code, body)
}

#[test]
fn loosened_dtd_travels_with_the_view() {
    let demo = demo();
    let (code, body) =
        get(&demo, "/CSlab.xml?user=Tom&pass=pw&ip=130.100.50.8&host=infosys.bld1.it");
    assert_eq!(code, 200);
    let (view_part, dtd_part) =
        body.split_once("<!-- loosened DTD -->").expect("DTD marker present");
    let view = parse(view_part.trim()).expect("view is well-formed");
    let loosened = parse_dtd(dtd_part).expect("loosened DTD parses");
    assert_eq!(xmlsec::dtd::validate(&loosened, &view), vec![]);
    assert!(!dtd_part.contains("#REQUIRED"));
}

#[test]
fn location_parameters_drive_the_subject_hierarchy() {
    let demo = demo();
    // Same credentials, different declared host: the *.it grant flips.
    let (_, from_it) =
        get(&demo, "/CSlab.xml?user=Tom&pass=pw&ip=130.100.50.8&host=infosys.bld1.it");
    let (_, from_com) = get(&demo, "/CSlab.xml?user=Tom&pass=pw&ip=130.100.50.8&host=pc.lab.com");
    assert!(from_it.contains("Bob Keen"));
    assert!(!from_com.contains("Bob Keen"));
}

#[test]
fn percent_encoded_queries_with_conditions() {
    let demo = demo();
    // q = //paper[./@category="public"]/title
    let q = "%2F%2Fpaper%5B.%2F%40category%3D%22public%22%5D%2Ftitle";
    let (code, body) = get(
        &demo,
        &format!("/CSlab.xml?user=Tom&pass=pw&ip=130.100.50.8&host=infosys.bld1.it&q={q}"),
    );
    assert_eq!(code, 200);
    assert!(body.contains("<title>An Access Control Model for XML</title>"), "{body}");
    assert!(body.contains("<title>Querying XML</title>"), "{body}");
    assert!(!body.contains("Engine Internals"), "{body}");
}

#[test]
fn conditional_revalidation_over_the_wire() {
    let demo = demo();
    let target = "/CSlab.xml?user=Tom&pass=pw&ip=130.100.50.8&host=infosys.bld1.it";

    // First GET: 200 with a strong ETag and revalidation directives.
    let mut conn = TcpStream::connect(demo.addr()).expect("connect");
    write!(conn, "GET {target} HTTP/1.0\r\nHost: t\r\n\r\n").expect("write");
    let mut buf = String::new();
    conn.read_to_string(&mut buf).expect("read");
    assert!(buf.starts_with("HTTP/1.0 200"), "{buf}");
    let (head, body) = buf.split_once("\r\n\r\n").expect("header block");
    assert!(head.contains("Cache-Control: private, no-cache"), "{head}");
    let etag = head
        .lines()
        .find_map(|l| l.strip_prefix("ETag: "))
        .expect("view response carries an ETag")
        .trim()
        .to_string();
    assert!(etag.starts_with('"') && etag.ends_with('"'), "{etag}");
    assert!(body.contains("<!-- loosened DTD -->"), "{body}");

    // Replay with If-None-Match: 304, empty body, tag restated.
    let mut conn = TcpStream::connect(demo.addr()).expect("connect");
    write!(conn, "GET {target} HTTP/1.0\r\nHost: t\r\nIf-None-Match: {etag}\r\n\r\n")
        .expect("write");
    let mut buf = String::new();
    conn.read_to_string(&mut buf).expect("read");
    assert!(buf.starts_with("HTTP/1.0 304"), "{buf}");
    let (head304, body304) = buf.split_once("\r\n\r\n").expect("header block");
    assert!(body304.is_empty(), "a 304 carries no body: {body304:?}");
    assert!(head304.contains(&format!("ETag: {etag}")), "{head304}");

    // A different requester class gets a different view, hence a
    // different tag — the old tag must NOT revalidate for it.
    let anon = "/CSlab.xml?ip=130.100.50.8&host=pc.lab.com";
    let mut conn = TcpStream::connect(demo.addr()).expect("connect");
    write!(conn, "GET {anon} HTTP/1.0\r\nHost: t\r\nIf-None-Match: {etag}\r\n\r\n").expect("write");
    let mut buf = String::new();
    conn.read_to_string(&mut buf).expect("read");
    assert!(buf.starts_with("HTTP/1.0 200"), "another class must re-render: {buf}");
}

#[test]
fn malformed_ip_parameter_is_bad_request() {
    let demo = demo();
    let (code, _) = get(&demo, "/CSlab.xml?user=Tom&pass=pw&ip=not-an-ip&host=a.b.it");
    assert_eq!(code, 400);
}

#[test]
fn metrics_endpoint_exposes_pipeline_cache_and_request_series() {
    let demo = demo();
    // Two identical requests: the second is served from the view cache,
    // so both the full pipeline and the cache-hit path have run.
    let target = "/CSlab.xml?user=Tom&pass=pw&ip=130.100.50.8&host=infosys.bld1.it";
    let (code1, _) = get(&demo, target);
    let (code2, _) = get(&demo, target);
    assert_eq!((code1, code2), (200, 200));

    let mut conn = TcpStream::connect(demo.addr()).expect("connect");
    write!(conn, "GET /metrics HTTP/1.0\r\nHost: t\r\n\r\n").expect("write");
    let mut buf = String::new();
    conn.read_to_string(&mut buf).expect("read");
    assert!(buf.starts_with("HTTP/1.0 200"), "{buf}");
    assert!(buf.contains("Content-Type: text/plain; version=0.0.4"), "{buf}");
    let body = buf.split_once("\r\n\r\n").map(|(_, b)| b.to_string()).unwrap_or_default();

    // Prometheus exposition structure.
    assert!(body.contains("# HELP xmlsec_requests_total"), "{body}");
    assert!(body.contains("# TYPE xmlsec_requests_total counter"), "{body}");
    assert!(body.contains("# TYPE xmlsec_pipeline_stage_duration_seconds histogram"), "{body}");

    let counter = |name: &str| -> u64 {
        body.lines()
            .find(|l| l.starts_with(name) && !l.starts_with('#'))
            .and_then(|l| l.rsplit(' ').next())
            .and_then(|v| v.parse().ok())
            .unwrap_or(0)
    };
    // Request counters by outcome: one full serve, one cached serve.
    assert!(counter(r#"xmlsec_requests_total{outcome="served"}"#) >= 1, "{body}");
    assert!(counter(r#"xmlsec_requests_total{outcome="served_cached"}"#) >= 1, "{body}");
    // Per-stage pipeline histograms, with le-bucket series in seconds.
    for stage in ["parse", "label", "prune", "loosen", "serialize"] {
        assert!(
            counter(&format!(r#"xmlsec_pipeline_stage_duration_seconds_count{{stage="{stage}"}}"#))
                >= 1,
            "stage {stage} missing from:\n{body}"
        );
    }
    assert!(
        body.contains(r#"xmlsec_pipeline_stage_duration_seconds_bucket{stage="parse",le="+Inf"}"#),
        "{body}"
    );
    // Cache hit/miss counters.
    assert!(counter("xmlsec_view_cache_hits_total") >= 1, "{body}");
    assert!(counter("xmlsec_view_cache_misses_total") >= 1, "{body}");
    // Content-hash lifecycle: registrations rehash, pipelines are counted.
    assert!(counter(r#"xmlsec_repo_rehash_total{kind="document"}"#) >= 1, "{body}");
    assert!(counter(r#"xmlsec_repo_rehash_total{kind="dtd"}"#) >= 1, "{body}");
    assert!(counter("xmlsec_pipeline_runs_total") >= 1, "{body}");
    // Parser and XPath substrate counters fed by the same requests.
    assert!(counter("xmlsec_xml_parse_documents_total") >= 1, "{body}");
    assert!(counter("xmlsec_xpath_evaluations_total") >= 1, "{body}");
}
