//! End-to-end server scenarios over the three corpora: the full request
//! cycle — authenticate, resolve groups, compute the view, loosen the
//! DTD, cache, audit.

use xmlsec::prelude::*;
use xmlsec::server::AuditOutcome;

fn lab_server() -> SecureServer {
    use xmlsec::workload::laboratory::*;
    let mut s = SecureServer::new(lab_directory(), lab_authorization_base());
    s.register_credentials("Tom", "pw-tom");
    s.register_credentials("Alice", "pw-alice");
    s.repository_mut().put_dtd(LAB_DTD_URI, LAB_DTD);
    s.repository_mut().put_document(CSLAB_URI, CSLAB_XML, Some(LAB_DTD_URI));
    s
}

fn request(user: Option<(&str, &str)>, ip: &str, sym: &str, uri: &str) -> ClientRequest {
    ClientRequest {
        user: user.map(|(u, p)| (u.to_string(), p.to_string())),
        ip: ip.into(),
        sym: sym.into(),
        uri: uri.into(),
    }
}

#[test]
fn tom_gets_figure3_view_through_the_server() {
    use xmlsec::workload::laboratory::*;
    let s = lab_server();
    let resp = s
        .handle(&request(Some(("Tom", "pw-tom")), "130.100.50.8", "infosys.bld1.it", CSLAB_URI))
        .unwrap();
    let got = parse(&resp.xml).unwrap();
    let want = parse(TOM_VIEW_XML).unwrap();
    assert!(got.structurally_equal(&want), "got {}", resp.xml);
    // The loosened DTD travels with the view.
    let loosened = parse_dtd(resp.loosened_dtd.as_deref().unwrap()).unwrap();
    assert_eq!(xmlsec::dtd::validate(&loosened, &got), vec![]);
}

#[test]
fn views_differ_by_location_for_the_same_user() {
    use xmlsec::workload::laboratory::*;
    let s = lab_server();
    // Tom from Italy sees managers of public projects (the *.it grant)…
    let from_it = s
        .handle(&request(Some(("Tom", "pw-tom")), "130.100.50.8", "infosys.bld1.it", CSLAB_URI))
        .unwrap();
    assert!(from_it.xml.contains("Bob Keen"));
    // …Tom from a .com host does not.
    let from_com = s
        .handle(&request(Some(("Tom", "pw-tom")), "130.100.50.8", "pc.lab.com", CSLAB_URI))
        .unwrap();
    assert!(!from_com.xml.contains("Bob Keen"), "{}", from_com.xml);
    // Both still see public papers.
    assert!(from_it.xml.contains("Querying XML"));
    assert!(from_com.xml.contains("Querying XML"));
}

#[test]
fn hospital_scenario_through_the_server() {
    use xmlsec::workload::hospital::*;
    let mut s = SecureServer::new(hospital_directory(), hospital_authorization_base());
    s.register_credentials("nina", "pw");
    s.register_credentials("weiss", "pw");
    s.register_credentials("omar", "pw");
    s.repository_mut().put_dtd(HOSPITAL_DTD_URI, HOSPITAL_DTD);
    s.repository_mut().put_document(WARD_URI, WARD_XML, Some(HOSPITAL_DTD_URI));

    let nurse = s
        .handle(&request(Some(("nina", "pw")), "10.0.0.7", "ws1.hospital.org", WARD_URI))
        .unwrap();
    assert!(nurse.xml.contains("Fracture healing"));
    assert!(!nurse.xml.contains("Anxiety"));

    let shrink = s
        .handle(&request(Some(("weiss", "pw")), "10.0.0.9", "ws2.hospital.org", WARD_URI))
        .unwrap();
    assert!(shrink.xml.contains("Anxiety"));

    let admin = s
        .handle(&request(Some(("omar", "pw")), "10.0.1.1", "adm.hospital.org", WARD_URI))
        .unwrap();
    assert!(admin.xml.contains("X-ray"));
    assert!(!admin.xml.contains("Anxiety"));

    // Three distinct views, three audit records, no cache hits (all
    // fingerprints differ).
    assert_eq!(s.audit.len(), 3);
    assert_eq!(s.cache_stats(), (0, 3));
}

#[test]
fn bank_scenario_location_gates_through_the_server() {
    use xmlsec::workload::financial::*;
    let mut s = SecureServer::new(bank_directory(), bank_authorization_base());
    s.register_credentials("tina", "pw");
    s.repository_mut().put_dtd(BANK_DTD_URI, BANK_DTD);
    s.repository_mut()
        .put_document(STATEMENTS_URI, STATEMENTS_XML, Some(BANK_DTD_URI));

    let at_branch = s
        .handle(&request(Some(("tina", "pw")), "10.1.4.20", "t1.branch.bank.com", STATEMENTS_URI))
        .unwrap();
    assert!(at_branch.xml.contains("2450.10"));

    let at_home = s
        .handle(&request(Some(("tina", "pw")), "89.12.3.4", "home.example.net", STATEMENTS_URI))
        .unwrap();
    assert_eq!(at_home.xml, "<statements/>");
}

#[test]
fn cache_hits_for_equivalent_requesters_and_misses_across() {
    use xmlsec::workload::laboratory::*;
    let s = lab_server();
    // Two different Public-only users from .com hosts share a view.
    let r1 = s.handle(&request(None, "1.2.3.4", "a.example.com", CSLAB_URI)).unwrap();
    let r2 = s.handle(&request(Some(("Alice", "pw-alice")), "5.6.7.8", "b.example.com", CSLAB_URI));
    // Alice's applicable set from a non-Admin host == anonymous's
    // (both just the Public weak grant).
    let r2 = r2.unwrap();
    assert!(!r1.cached);
    assert!(r2.cached);
    assert_eq!(r1.xml, r2.xml);
    // Tom from .it has an extra applicable grant → miss.
    let r3 = s
        .handle(&request(Some(("Tom", "pw-tom")), "130.100.50.8", "infosys.bld1.it", CSLAB_URI))
        .unwrap();
    assert!(!r3.cached);
}

#[test]
fn audit_trail_records_every_outcome_kind() {
    use xmlsec::workload::laboratory::*;
    let s = lab_server();
    let _ = s.handle(&request(Some(("Tom", "wrong")), "1.2.3.4", "a.b.it", CSLAB_URI));
    let _ = s.handle(&request(None, "1.2.3.4", "a.b.it", "missing.xml"));
    let _ = s.handle(&request(None, "1.2.3.4", "a.b.it", CSLAB_URI));
    let records = s.audit.records();
    assert_eq!(records.len(), 3);
    assert!(matches!(records[0].outcome, AuditOutcome::AuthenticationFailed));
    assert!(matches!(records[1].outcome, AuditOutcome::NotFound));
    assert!(matches!(records[2].outcome, AuditOutcome::Served { cached: false, .. }));
}

#[test]
fn granting_at_runtime_changes_views() {
    use xmlsec::workload::laboratory::*;
    let mut s = lab_server();
    let before = s.handle(&request(None, "1.2.3.4", "x.example.com", CSLAB_URI)).unwrap();
    assert!(!before.xml.contains("MURST"));
    s.grant(Authorization::new(
        Subject::new("Public", "*", "*").unwrap(),
        ObjectSpec::with_path(CSLAB_URI, "//fund").unwrap(),
        Sign::Plus,
        AuthType::Recursive,
    ));
    let after = s.handle(&request(None, "1.2.3.4", "x.example.com", CSLAB_URI)).unwrap();
    assert!(!after.cached, "grant must invalidate the cache");
    assert!(after.xml.contains("MURST"), "{}", after.xml);
}

#[test]
fn xacl_driven_setup_matches_programmatic_setup() {
    use xmlsec::workload::laboratory::*;
    // Serialize Example 1 to XACL text, parse it back, and serve with it.
    let text = serialize_xacl(&example1_authorizations());
    let mut base = AuthorizationBase::new();
    base.extend(parse_xacl(&text).unwrap());
    let mut s = SecureServer::new(lab_directory(), base);
    s.register_credentials("Tom", "pw");
    s.repository_mut().put_dtd(LAB_DTD_URI, LAB_DTD);
    s.repository_mut().put_document(CSLAB_URI, CSLAB_XML, Some(LAB_DTD_URI));
    let resp = s
        .handle(&request(Some(("Tom", "pw")), "130.100.50.8", "infosys.bld1.it", CSLAB_URI))
        .unwrap();
    let got = parse(&resp.xml).unwrap();
    assert!(got.structurally_equal(&parse(TOM_VIEW_XML).unwrap()), "{}", resp.xml);
}
