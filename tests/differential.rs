//! Differential and invariant property tests for the compute-view
//! algorithm, on randomly generated documents, directories,
//! authorization sets and requesters.
//!
//! The oracle is `xmlsec_core::naive` — an independent declarative
//! restatement of §6's semantics. Any divergence between the propagation
//! engine and the oracle fails the property.

use proptest::prelude::*;
use xmlsec::authz::Authorization;
use xmlsec::core::{compute_view, compute_view_naive, label_document, naive_final_sign};
use xmlsec::prelude::*;
use xmlsec::workload::{random_auths, random_directory, random_requester, AuthConfig, TreeConfig};

/// One fully-specified random scenario.
struct Scenario {
    doc: Document,
    dir: Directory,
    axml: Vec<Authorization>,
    adtd: Vec<Authorization>,
}

fn scenario(doc_seed: u64, auth_seed: u64, elements: usize, auth_count: usize) -> Scenario {
    let doc =
        xmlsec::workload::random_tree(&TreeConfig { elements, ..Default::default() }, doc_seed);
    let dir = random_directory(6, 4, auth_seed);
    let requester = random_requester(6, auth_seed);
    let (axml_all, adtd_all) = random_auths(
        &AuthConfig { count: auth_count, ..Default::default() },
        "d.xml",
        "d.dtd",
        auth_seed,
    );
    // Filter to the requester's applicable sets, as the processor would.
    let axml: Vec<Authorization> = axml_all
        .into_iter()
        .filter(|a| requester.is_covered_by(&a.subject, &dir))
        .collect();
    let adtd: Vec<Authorization> = adtd_all
        .into_iter()
        .filter(|a| requester.is_covered_by(&a.subject, &dir))
        .collect();
    Scenario { doc, dir, axml, adtd }
}

fn policies() -> [PolicyConfig; 4] {
    [
        PolicyConfig::paper_default(),
        PolicyConfig { completeness: CompletenessPolicy::Open, ..Default::default() },
        PolicyConfig {
            conflict: ConflictResolution::PermissionsTakePrecedence,
            ..Default::default()
        },
        PolicyConfig { conflict: ConflictResolution::NothingTakesPrecedence, ..Default::default() },
    ]
}

fn extra_policies() -> [PolicyConfig; 2] {
    [
        PolicyConfig { conflict: ConflictResolution::MajoritySign, ..Default::default() },
        PolicyConfig {
            conflict: ConflictResolution::MostSpecificThenPermissions,
            completeness: CompletenessPolicy::Open,
        },
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The propagation engine and the naive oracle agree on every node's
    /// final sign and on the pruned view.
    #[test]
    fn engine_matches_naive_oracle(
        doc_seed in 0u64..1_000_000,
        auth_seed in 0u64..1_000_000,
        elements in 5usize..80,
        auth_count in 0usize..24,
    ) {
        let s = scenario(doc_seed, auth_seed, elements, auth_count);
        let ax: Vec<&Authorization> = s.axml.iter().collect();
        let ad: Vec<&Authorization> = s.adtd.iter().collect();
        for policy in policies().into_iter().chain(extra_policies()) {
            let labeling = label_document(&s.doc, &ax, &ad, &s.dir, policy);
            for n in s.doc.preorder(s.doc.root()) {
                let naive = naive_final_sign(&s.doc, n, &ax, &ad, &s.dir, policy);
                prop_assert_eq!(
                    labeling.final_sign(n), naive,
                    "sign mismatch at {} (doc_seed={}, auth_seed={}, policy={:?})",
                    xmlsec::xpath::describe_node(&s.doc, n), doc_seed, auth_seed, policy
                );
            }
            let (fast, _) = compute_view(&s.doc, &ax, &ad, &s.dir, policy);
            let (slow, _) = compute_view_naive(&s.doc, &ax, &ad, &s.dir, policy);
            prop_assert!(
                fast.structurally_equal(&slow),
                "view mismatch (doc_seed={}, auth_seed={}, policy={:?})\nfast: {}\nslow: {}",
                doc_seed, auth_seed, policy,
                serialize(&fast, &SerializeOptions::canonical()),
                serialize(&slow, &SerializeOptions::canonical())
            );
        }
    }

    /// Prune invariants: the view is a projection of the original (every
    /// kept element existed, order preserved), no denied node survives,
    /// and every kept element has a granted descendant-or-self.
    #[test]
    fn view_is_a_sound_projection(
        doc_seed in 0u64..1_000_000,
        auth_seed in 0u64..1_000_000,
        elements in 5usize..60,
        auth_count in 1usize..20,
    ) {
        let s = scenario(doc_seed, auth_seed, elements, auth_count);
        let ax: Vec<&Authorization> = s.axml.iter().collect();
        let ad: Vec<&Authorization> = s.adtd.iter().collect();
        let policy = PolicyConfig::paper_default();
        let labeling = label_document(&s.doc, &ax, &ad, &s.dir, policy);
        let (view, stats) = compute_view(&s.doc, &ax, &ad, &s.dir, policy);

        // The view never grows.
        prop_assert!(view.count_reachable() <= s.doc.count_reachable());
        prop_assert_eq!(
            view.count_reachable() + stats.pruned_nodes,
            s.doc.count_reachable()
        );

        // NodeIds are preserved by pruning (clone + detach), so labels
        // can be checked directly on the view's surviving nodes.
        let mut stack = vec![view.root()];
        while let Some(n) = stack.pop() {
            let mut has_granted = labeling.final_sign(n) == Sign3::Plus;
            for &a in view.attributes(n) {
                prop_assert_eq!(labeling.final_sign(a), Sign3::Plus,
                    "surviving attribute must be granted");
                // A granted attribute keeps its element's shell alive.
                has_granted = true;
            }
            for d in view.descendant_elements(n) {
                if labeling.final_sign(d) == Sign3::Plus {
                    has_granted = true;
                }
                for &a in view.attributes(d) {
                    if labeling.final_sign(a) == Sign3::Plus {
                        has_granted = true;
                    }
                }
            }
            prop_assert!(
                has_granted || view.parent(n).is_none(),
                "kept element without granted descendant-or-self"
            );
            for c in view.child_elements(n) {
                stack.push(c);
            }
        }
    }

    /// Computing the view of a view with the same authorizations is a
    /// no-op when the original object paths still select the same nodes
    /// — guaranteed here by using only recursive whole-subtree grants.
    #[test]
    fn idempotence_for_recursive_grants(
        doc_seed in 0u64..1_000_000,
        elements in 5usize..60,
    ) {
        let doc = xmlsec::workload::random_tree(
            &TreeConfig { elements, ..Default::default() }, doc_seed);
        let dir = Directory::new();
        let grant = Authorization::new(
            Subject::new("u0", "*", "*").unwrap(),
            ObjectSpec::with_path("d.xml", "//t1").unwrap(),
            Sign::Plus,
            AuthType::Recursive,
        );
        let policy = PolicyConfig::paper_default();
        let (v1, _) = compute_view(&doc, &[&grant], &[], &dir, policy);
        let (v2, _) = compute_view(&v1, &[&grant], &[], &dir, policy);
        prop_assert!(
            v1.structurally_equal(&v2),
            "v1: {}\nv2: {}",
            serialize(&v1, &SerializeOptions::canonical()),
            serialize(&v2, &SerializeOptions::canonical())
        );
    }

    /// With no authorizations: closed policy yields the bare root,
    /// open policy yields the whole document.
    #[test]
    fn empty_auth_extremes(doc_seed in 0u64..1_000_000, elements in 2usize..50) {
        let doc = xmlsec::workload::random_tree(
            &TreeConfig { elements, ..Default::default() }, doc_seed);
        let dir = Directory::new();
        let (closed, _) = compute_view(&doc, &[], &[], &dir, PolicyConfig::paper_default());
        prop_assert_eq!(closed.count_reachable(), 1); // root shell only
        let open_policy = PolicyConfig {
            completeness: CompletenessPolicy::Open, ..Default::default() };
        let (open, _) = compute_view(&doc, &[], &[], &dir, open_policy);
        prop_assert!(open.structurally_equal(&doc));
    }

    /// A single recursive denial on the root hides everything, whatever
    /// else is in the (weaker or equal) authorization set at schema level.
    #[test]
    fn root_denial_dominates_schema(doc_seed in 0u64..1_000_000, auth_seed in 0u64..1_000_000) {
        let doc = xmlsec::workload::random_tree(&TreeConfig::default(), doc_seed);
        let dir = random_directory(6, 4, auth_seed);
        let deny = Authorization::new(
            Subject::new("u0", "*", "*").unwrap(),
            ObjectSpec::with_path("d.xml", "/root").unwrap(),
            Sign::Minus,
            AuthType::Recursive,
        );
        let (_, adtd) = random_auths(&AuthConfig::default(), "d.xml", "d.dtd", auth_seed);
        // Schema auths cannot override a strong instance denial... unless
        // they hit a node with its own instance authorization. With only
        // the root denial as instance auth, nothing else is strong.
        let ad: Vec<&Authorization> = adtd.iter().collect();
        let (view, _) = compute_view(&doc, &[&deny], &ad, &dir, PolicyConfig::paper_default());
        // Any visible node must owe its visibility to a schema grant on a
        // node... which the propagation rules allow only when LD/RD beat
        // R at that node — impossible: R propagates everywhere and sits
        // before LD/RD only when defined. R(-) is defined everywhere, so
        // only L-class schema signs can never win. Check: no element is
        // granted except via... nothing. View must be the bare root.
        prop_assert_eq!(view.count_reachable(), 1,
            "{}", serialize(&view, &SerializeOptions::canonical()));
    }
}

/// Directed regression: NodeId stability assumption used above.
#[test]
fn prune_preserves_node_ids() {
    let doc = parse(r#"<a><b x="1">t</b><c/></a>"#).unwrap();
    let dir = Directory::new();
    let grant = Authorization::new(
        Subject::new("u", "*", "*").unwrap(),
        ObjectSpec::with_path("d.xml", "/a/b").unwrap(),
        Sign::Plus,
        AuthType::Recursive,
    );
    let (view, _) = compute_view(&doc, &[&grant], &[], &dir, PolicyConfig::paper_default());
    // b survived under the same NodeId.
    let b_orig = select(&doc, &parse_path("/a/b").unwrap())[0];
    let b_view = select(&view, &parse_path("/a/b").unwrap())[0];
    assert_eq!(b_orig, b_view);
}
