//! End-to-end reproductions of the paper's figures and worked examples.
//!
//! - **F1** (Figure 1): the laboratory DTD parses and its tree
//!   representation has the figure's shape;
//! - **F3** (Figure 3 + Examples 1–2): Tom's view of CSlab.xml computed
//!   through the full security processor matches the expected document;
//! - **E1** (§3): the worked subject/location-pattern examples;
//! - **E2** (§6.2): loosening makes the pruned view valid.

use xmlsec::prelude::*;
use xmlsec::workload::laboratory::*;

#[test]
fn f1_laboratory_dtd_parses_and_has_figure_shape() {
    let dtd = parse_dtd(LAB_DTD).expect("Figure 1(a) DTD parses");
    // The figure's tree: laboratory → project+ → {@name, @type, manager,
    // member*, fund*, paper*}.
    assert_eq!(dtd.element("laboratory").unwrap().content.to_string(), "(project+)");
    assert_eq!(
        dtd.element("project").unwrap().content.to_string(),
        "(manager,member*,fund*,paper*)"
    );
    let tree = xmlsec::dtd::dtd_tree(&dtd, "laboratory").expect("root declared");
    let drawn = xmlsec::dtd::render_dtd_tree(&tree);
    for marker in ["(laboratory)", "(project)+", "[name]", "[type]", "(manager)", "(paper)*"] {
        assert!(drawn.contains(marker), "missing {marker} in:\n{drawn}");
    }
    // root detection
    assert_eq!(dtd.root_candidates(), vec!["laboratory"]);
}

#[test]
fn f3_toms_view_matches_expected_document() {
    let processor = SecurityProcessor::new(lab_directory(), lab_authorization_base());
    let request = AccessRequest { requester: tom(), uri: CSLAB_URI.to_string() };
    let source = DocumentSource { xml: CSLAB_XML, dtd: Some(LAB_DTD), dtd_uri: Some(LAB_DTD_URI) };
    let out = processor.process(&request, &source).expect("pipeline runs");

    let expected = parse(TOM_VIEW_XML).unwrap();
    assert!(
        out.view.structurally_equal(&expected),
        "view mismatch:\n got: {}\n want: {}",
        out.xml,
        TOM_VIEW_XML
    );

    // The narrative checks from Example 2: private papers hidden
    // (Foreign denial at the schema level), public papers and the public
    // project's manager visible.
    assert!(!out.xml.contains("Security Processor Design"));
    assert!(!out.xml.contains("Engine Internals"));
    assert!(out.xml.contains("An Access Control Model for XML"));
    assert!(out.xml.contains("Querying XML"));
    assert!(out.xml.contains("Bob Keen"));
    // Sam Marlow manages the *internal* project: not granted to Tom.
    assert!(!out.xml.contains("Sam Marlow"));
    // Funds and members were never granted.
    assert!(!out.xml.contains("MURST"));
    assert!(!out.xml.contains("Ann Eager"));
}

#[test]
fn f3_view_is_valid_against_loosened_dtd_only() {
    let processor = SecurityProcessor::new(lab_directory(), lab_authorization_base());
    let request = AccessRequest { requester: tom(), uri: CSLAB_URI.to_string() };
    let source = DocumentSource { xml: CSLAB_XML, dtd: Some(LAB_DTD), dtd_uri: Some(LAB_DTD_URI) };
    let out = processor.process(&request, &source).unwrap();

    let original = parse_dtd(LAB_DTD).unwrap();
    // The view dropped required attributes (e.g. project/@name): invalid
    // against the original DTD...
    assert!(!xmlsec::dtd::validate(&original, &out.view).is_empty());
    // ... but valid against the loosened DTD the processor shipped.
    let loosened = parse_dtd(out.loosened_dtd.as_deref().unwrap()).unwrap();
    assert_eq!(xmlsec::dtd::validate(&loosened, &out.view), vec![]);
}

#[test]
fn f3_admin_from_authorized_host_sees_internal_projects() {
    // The third Example 1 authorization: Alice ∈ Admin from 130.89.56.8.
    let processor = SecurityProcessor::new(lab_directory(), lab_authorization_base());
    let request = AccessRequest {
        requester: Requester::new("Alice", "130.89.56.8", "admin.lab.com").unwrap(),
        uri: CSLAB_URI.to_string(),
    };
    let source = DocumentSource { xml: CSLAB_XML, dtd: Some(LAB_DTD), dtd_uri: Some(LAB_DTD_URI) };
    let out = processor.process(&request, &source).unwrap();
    // Internal project fully visible (including its private paper: Alice
    // is not in Foreign, so the schema denial does not apply).
    assert!(out.xml.contains("Sam Marlow"), "{}", out.xml);
    assert!(out.xml.contains("Security Processor Design"), "{}", out.xml);
    assert!(out.xml.contains("MURST"), "{}", out.xml);
    // The public project's paper is granted via the Public weak grant.
    assert!(out.xml.contains("Querying XML"), "{}", out.xml);

    // Same user from a different host loses the Admin grant.
    let request2 = AccessRequest {
        requester: Requester::new("Alice", "130.89.56.9", "admin.lab.com").unwrap(),
        uri: CSLAB_URI.to_string(),
    };
    let out2 = processor.process(&request2, &source).unwrap();
    assert!(!out2.xml.contains("Sam Marlow"), "{}", out2.xml);
    assert!(!out2.xml.contains("MURST"), "{}", out2.xml);
}

#[test]
fn e1_section3_location_pattern_examples() {
    use xmlsec::subjects::{IpPattern, SymPattern};
    // "151.100.*.*, or equivalently 151.100.*, denotes all the machines
    // belonging to network 151.100"
    let a: IpPattern = "151.100.*.*".parse().unwrap();
    let b: IpPattern = "151.100.*".parse().unwrap();
    assert_eq!(a, b);
    assert!(a.matches(&"151.100.7.9".parse().unwrap()));
    // "*.mil, *.com, and *.it denote all the machines in the Military,
    // Company, and Italy domains"
    for (pat, host) in
        [("*.mil", "x.army.mil"), ("*.com", "tweety.lab.com"), ("*.it", "infosys.bld1.it")]
    {
        let p: SymPattern = pat.parse().unwrap();
        assert!(p.matches(&host.parse().unwrap()), "{pat} should match {host}");
    }
    // Interleaved wildcards are rejected.
    assert!("151.*.30".parse::<IpPattern>().is_err());
    assert!("lab.*.com".parse::<SymPattern>().is_err());
}

#[test]
fn e1_section3_subject_hierarchy_examples() {
    // ⟨Alice, *, *⟩, ⟨Public, 150.100.30.8, *⟩, ⟨Sam, *, *.lab.com⟩
    let dir = lab_directory();
    let alice_any = Subject::new("Alice", "*", "*").unwrap();
    let public_host = Subject::new("Public", "150.100.30.8", "*").unwrap();
    let sam_lab = Subject::new("Sam", "*", "*.lab.com").unwrap();

    let alice_here = Requester::new("Alice", "150.100.30.8", "pc1.lab.com").unwrap();
    assert!(alice_here.is_covered_by(&alice_any, &dir));
    assert!(alice_here.is_covered_by(&public_host, &dir));
    assert!(!alice_here.is_covered_by(&sam_lab, &dir));

    let sam_here = Requester::new("Sam", "1.2.3.4", "pc2.lab.com").unwrap();
    assert!(sam_here.is_covered_by(&sam_lab, &dir));
    let sam_elsewhere = Requester::new("Sam", "1.2.3.4", "pc.other.org").unwrap();
    assert!(!sam_elsewhere.is_covered_by(&sam_lab, &dir));
}

#[test]
fn e2_loosening_of_the_laboratory_dtd() {
    let dtd = parse_dtd(LAB_DTD).unwrap();
    let loosened = loosen(&dtd);
    // required markers gone
    let text = serialize_dtd(&loosened);
    assert!(!text.contains("#REQUIRED"), "{text}");
    // cardinalities optionalized
    assert_eq!(loosened.element("laboratory").unwrap().content.to_string(), "(project*)");
    assert_eq!(
        loosened.element("project").unwrap().content.to_string(),
        "(manager?,member*,fund*,paper*)?"
    );
    // An empty laboratory is now valid — requesters cannot tell pruning
    // from absence.
    let empty = parse("<laboratory/>").unwrap();
    assert_eq!(xmlsec::dtd::validate(&loosened, &empty), vec![]);
    assert!(!xmlsec::dtd::validate(&dtd, &empty).is_empty());
}

#[test]
fn figure2_algorithm_signs_on_the_example() {
    // Check individual label signs on the CSlab tree for Tom (the values
    // the paper's Figure 3(b) visualizes).
    let dir = lab_directory();
    let base = lab_authorization_base();
    let doc = parse(CSLAB_XML).unwrap();
    let axml = base.applicable(CSLAB_URI, &tom(), &dir);
    let adtd = base.applicable(LAB_DTD_URI, &tom(), &dir);
    let labeling =
        xmlsec::core::label_document(&doc, &axml, &adtd, &dir, PolicyConfig::paper_default());

    let private_papers = select(&doc, &parse_path(r#"//paper[./@category="private"]"#).unwrap());
    for p in private_papers {
        assert_eq!(labeling.final_sign(p), Sign3::Minus);
    }
    let public_papers = select(&doc, &parse_path(r#"//paper[./@category="public"]"#).unwrap());
    for p in public_papers {
        assert_eq!(labeling.final_sign(p), Sign3::Plus);
    }
    let root = doc.root();
    assert_eq!(labeling.final_sign(root), Sign3::Eps);
    let managers = select(&doc, &parse_path(r#"project[./@type="public"]/manager"#).unwrap());
    assert_eq!(managers.len(), 1);
    assert_eq!(labeling.final_sign(managers[0]), Sign3::Plus);
}
