//! Processor integration: DOCTYPE internal-subset schemas and
//! attribute-default normalization interacting with conditions.

use xmlsec::prelude::*;

#[test]
fn internal_subset_serves_as_schema() {
    // No external DTD: the DOCTYPE's internal subset is the schema, so
    // the loosened DTD still ships and validation still applies.
    let xml = r#"<!DOCTYPE memo [
        <!ELEMENT memo (body)>
        <!ELEMENT body (#PCDATA)>
        <!ATTLIST memo class CDATA "public">
    ]><memo><body>hi</body></memo>"#;

    let mut dir = Directory::new();
    dir.add_user("u").unwrap();
    let mut base = AuthorizationBase::new();
    base.add(Authorization::new(
        Subject::new("u", "*", "*").unwrap(),
        ObjectSpec::with_path("memo.xml", r#"/memo[./@class="public"]"#).unwrap(),
        Sign::Plus,
        AuthType::Recursive,
    ));
    let mut processor = SecurityProcessor::new(dir, base);
    processor.options.validate_input = true;

    let out = processor
        .process(
            &AccessRequest {
                requester: Requester::new("u", "1.2.3.4", "h.x.org").unwrap(),
                uri: "memo.xml".to_string(),
            },
            &DocumentSource { xml, dtd: None, dtd_uri: None },
        )
        .unwrap();

    // The defaulted @class was injected, so the condition matched and the
    // memo is visible — including the now-materialized attribute.
    assert!(out.xml.contains("hi"), "{}", out.xml);
    assert!(out.xml.contains(r#"class="public""#), "{}", out.xml);
    // The loosened internal-subset DTD ships with the view.
    let loosened = parse_dtd(out.loosened_dtd.as_deref().unwrap()).unwrap();
    assert!(loosened.element("memo").is_some());
}

#[test]
fn conditions_on_defaulted_attributes_match_uniformly() {
    // Two projects: one spells status="active" out, one relies on the
    // DTD default. An authorization conditioned on @status must treat
    // them identically.
    let dtd_text = r#"<!ELEMENT lab (project*)>
        <!ELEMENT project (#PCDATA)>
        <!ATTLIST project status CDATA "active">"#;
    let xml = r#"<lab><project status="active">a</project><project>b</project><project status="done">c</project></lab>"#;

    let mut dir = Directory::new();
    dir.add_user("u").unwrap();
    let mut base = AuthorizationBase::new();
    base.add(Authorization::new(
        Subject::new("u", "*", "*").unwrap(),
        ObjectSpec::with_path("lab.xml", r#"/lab/project[./@status="active"]"#).unwrap(),
        Sign::Plus,
        AuthType::Recursive,
    ));
    let processor = SecurityProcessor::new(dir, base);
    let out = processor
        .process(
            &AccessRequest {
                requester: Requester::new("u", "1.2.3.4", "h.x.org").unwrap(),
                uri: "lab.xml".to_string(),
            },
            &DocumentSource { xml, dtd: Some(dtd_text), dtd_uri: Some("lab.dtd") },
        )
        .unwrap();
    assert!(out.xml.contains(">a<"), "{}", out.xml);
    assert!(out.xml.contains(">b<"), "explicit and defaulted must match: {}", out.xml);
    assert!(!out.xml.contains(">c<"), "{}", out.xml);
}

#[test]
fn external_dtd_takes_precedence_over_internal_subset() {
    let xml = r#"<!DOCTYPE a [<!ELEMENT a (#PCDATA)>]><a>t</a>"#;
    // External DTD disagrees (a must be EMPTY): validation follows it.
    let mut processor = SecurityProcessor::default();
    processor.options.validate_input = true;
    let req = AccessRequest {
        requester: Requester::new("u", "1.2.3.4", "h.x.org").unwrap(),
        uri: "a.xml".to_string(),
    };
    let err = processor
        .process(&req, &DocumentSource { xml, dtd: Some("<!ELEMENT a EMPTY>"), dtd_uri: None })
        .unwrap_err();
    assert!(matches!(err, xmlsec::core::ProcessError::Invalid(_)));
    // With only the internal subset, the document is fine.
    assert!(processor
        .process(&req, &DocumentSource { xml, dtd: None, dtd_uri: None })
        .is_ok());
}
