//! End-to-end tests for the static write pre-flight on `POST /update`:
//! guaranteed-denied batches answer a fast 403 that points at the
//! offending op's source line, strict op-grammar violations answer 400
//! with their line, and guaranteed-allow batches commit byte-identically
//! with and without the pre-flight — on both transports.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use xmlsec::server::{EpollDemo, HttpDemo, SecureServer};
use xmlsec_authz::{Action, AuthType, Authorization, AuthorizationBase, ObjectSpec, Sign};
use xmlsec_subjects::{Directory, Subject};

const DTD: &str = "<!ELEMENT d (pub)>\n<!ELEMENT pub (#PCDATA)>";

/// A server with one DTD-backed document; `tom` can read, `ed` holds a
/// whole-schema recursive write grant (the blanket-allow shape).
fn server() -> SecureServer {
    let mut dir = Directory::new();
    dir.add_user("tom").expect("add user");
    dir.add_user("ed").expect("add user");
    let mut base = AuthorizationBase::new();
    for user in ["tom", "ed"] {
        base.add(Authorization::new(
            Subject::new(user, "*", "*").expect("subject"),
            ObjectSpec::with_path("doc.xml", "/d").expect("object"),
            Sign::Plus,
            AuthType::Recursive,
        ));
    }
    base.add(
        Authorization::new(
            Subject::new("ed", "*", "*").expect("subject"),
            ObjectSpec::whole("d.dtd"),
            Sign::Plus,
            AuthType::Recursive,
        )
        .with_action(Action::Write),
    );
    let mut s = SecureServer::new(dir, base);
    s.register_credentials("tom", "pw");
    s.register_credentials("ed", "pw");
    s.repository_mut().put_dtd("d.dtd", DTD);
    s.repository_mut().put_document("doc.xml", "<d><pub>hello</pub></d>", Some("d.dtd"));
    s
}

fn post_update(addr: SocketAddr, user: &str, body: &str) -> (u16, String) {
    let mut conn = TcpStream::connect(addr).expect("connect");
    write!(
        conn,
        "POST /update?doc=doc.xml&user={user}&pass=pw&ip=1.2.3.4&host=h.x.org HTTP/1.0\r\n\
         Content-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .expect("write");
    let mut buf = String::new();
    conn.read_to_string(&mut buf).expect("read");
    let code = buf.split_whitespace().nth(1).and_then(|c| c.parse().ok()).unwrap_or(0);
    let resp = buf.split_once("\r\n\r\n").map(|(_, b)| b.to_string()).unwrap_or_default();
    (code, resp)
}

fn get_view(addr: SocketAddr, user: &str) -> String {
    let mut conn = TcpStream::connect(addr).expect("connect");
    write!(conn, "GET /doc.xml?user={user}&pass=pw&ip=1.2.3.4&host=h.x.org HTTP/1.0\r\n\r\n")
        .expect("write");
    let mut buf = String::new();
    conn.read_to_string(&mut buf).expect("read");
    buf.split_once("\r\n\r\n").map(|(_, b)| b.to_string()).unwrap_or_default()
}

/// `tom` holds no write authorization at all, so his write table is
/// unwritable: the pre-flight refuses the batch before parsing or
/// labeling anything, and the 403 names the op's line in the batch the
/// client sent (line 1 is a comment).
#[test]
fn guaranteed_denied_batch_is_403_with_line_number_on_both_transports() {
    let pool = HttpDemo::start(server(), "127.0.0.1:0").expect("bind pool");
    let epoll = EpollDemo::start(server(), "127.0.0.1:0").expect("bind epoll");
    let body = "# harmless comment\nsettext /d/pub\tstolen\n";
    let (pc, pb) = post_update(pool.addr(), "tom", body);
    let (ec, eb) = post_update(epoll.addr(), "tom", body);
    assert_eq!(pc, 403, "{pb}");
    assert!(pb.starts_with("update denied: line 2:"), "{pb}");
    assert_eq!((pc, pb), (ec, eb), "transports diverged");
}

/// Strict op arity: trailing tab-separated garbage on `setattr`,
/// `insert`, and `delete` is a 400 naming the offending line, not a
/// silently mangled op — identically on both transports.
#[test]
fn trailing_garbage_in_op_batch_is_400_with_line_number_on_both_transports() {
    let pool = HttpDemo::start(server(), "127.0.0.1:0").expect("bind pool");
    let epoll = EpollDemo::start(server(), "127.0.0.1:0").expect("bind epoll");
    for (lineno, body) in [
        (2, "settext /d/pub\tok\nsetattr /d\ta\tb\textra\n"),
        (1, "insert /d\tpub\tmore\n"),
        (3, "# c\n\ndelete /d/pub\tjunk\n"),
    ] {
        let (pc, pb) = post_update(pool.addr(), "ed", body);
        let (ec, eb) = post_update(epoll.addr(), "ed", body);
        assert_eq!(pc, 400, "{pb}");
        assert!(
            pb.starts_with(&format!("line {lineno}:")) && pb.contains("trailing fields"),
            "{pb}"
        );
        assert_eq!((pc, pb), (ec, eb), "transports diverged on {body:?}");
    }
}

/// `ed`'s whole-schema recursive write grant makes every batch
/// guaranteed-allow: the pre-flight skips write-labeling, and the
/// committed document and response are byte-identical to a server with
/// the pre-flight disabled.
#[test]
fn guaranteed_allowed_batch_commits_identically_with_and_without_preflight() {
    let fast = HttpDemo::start(server(), "127.0.0.1:0").expect("bind fast");
    let slow =
        HttpDemo::start(server().without_static_preflight(), "127.0.0.1:0").expect("bind slow");
    let body = "settext /d/pub\tpatched\n";
    let (fc, fb) = post_update(fast.addr(), "ed", body);
    let (sc, sb) = post_update(slow.addr(), "ed", body);
    assert_eq!(fc, 200, "{fb}");
    assert_eq!((fc, fb), (sc, sb), "pre-flight changed the update response");
    let fv = get_view(fast.addr(), "tom");
    let sv = get_view(slow.addr(), "tom");
    assert!(fv.contains("patched"), "{fv}");
    assert_eq!(fv, sv, "pre-flight changed the committed document");
}

/// The pre-flight's verdicts are observable in `/metrics`.
#[test]
fn static_verdicts_are_counted() {
    let demo = HttpDemo::start(server(), "127.0.0.1:0").expect("bind");
    let (dc, _) = post_update(demo.addr(), "tom", "delete /d/pub\n");
    assert_eq!(dc, 403);
    let (ac, _) = post_update(demo.addr(), "ed", "settext /d/pub\tnew\n");
    assert_eq!(ac, 200);
    let metrics = get_view(demo.addr(), "tom"); // warm-up read, ignored
    drop(metrics);
    let mut conn = TcpStream::connect(demo.addr()).expect("connect");
    write!(conn, "GET /metrics HTTP/1.0\r\n\r\n").expect("write");
    let mut buf = String::new();
    conn.read_to_string(&mut buf).expect("read");
    assert!(buf.contains(r#"xmlsec_update_static_verdicts_total{verdict="deny"}"#), "{buf}");
    assert!(buf.contains(r#"xmlsec_update_static_verdicts_total{verdict="allow"}"#), "{buf}");
}
