//! Substrate round-trip and cross-crate consistency properties.

use proptest::prelude::*;
use xmlsec::prelude::*;
use xmlsec::workload::{laboratory_scaled, random_tree, TreeConfig};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// serialize ∘ parse = identity (structurally) on generated documents.
    #[test]
    fn xml_round_trip(seed in 0u64..1_000_000, elements in 1usize..120) {
        let doc = random_tree(&TreeConfig { elements, ..Default::default() }, seed);
        let text = serialize(&doc, &SerializeOptions::canonical());
        let re = parse(&text).unwrap();
        prop_assert!(doc.structurally_equal(&re), "{text}");
        // And pretty-printing parses back to the same document (whitespace
        // dropped by default parse options).
        let pretty = serialize(&doc, &SerializeOptions::pretty());
        let re2 = parse(&pretty).unwrap();
        prop_assert!(doc.structurally_equal(&re2), "{pretty}");
    }

    /// DTD serialize ∘ parse = identity on the loosened laboratory DTD
    /// and scaled instances stay valid.
    #[test]
    fn scaled_laboratory_valid_and_loosenable(projects in 1usize..40, seed in 0u64..100_000) {
        let dtd = parse_dtd(xmlsec::workload::laboratory::LAB_DTD).unwrap();
        let doc = laboratory_scaled(projects, seed);
        prop_assert_eq!(xmlsec::dtd::validate(&dtd, &doc), vec![]);
        let loosened = loosen(&dtd);
        prop_assert_eq!(xmlsec::dtd::validate(&loosened, &doc), vec![]);
        // loosened DTD round-trips through text
        let text = serialize_dtd(&loosened);
        let re = parse_dtd(&text).unwrap();
        prop_assert_eq!(loosened, re);
    }

    /// XACL round-trip on generated authorization sets.
    #[test]
    fn xacl_round_trip(seed in 0u64..1_000_000, count in 0usize..32) {
        let (mut auths, mut schema) = xmlsec::workload::random_auths(
            &xmlsec::workload::AuthConfig { count, ..Default::default() },
            "d.xml", "d.dtd", seed);
        auths.append(&mut schema);
        let text = serialize_xacl(&auths);
        let parsed = parse_xacl(&text).unwrap();
        prop_assert_eq!(parsed.len(), auths.len());
        for (a, b) in auths.iter().zip(&parsed) {
            prop_assert_eq!(&a.subject, &b.subject);
            prop_assert_eq!(&a.object.uri, &b.object.uri);
            prop_assert_eq!(&a.object.path_text, &b.object.path_text);
            prop_assert_eq!(a.sign, b.sign);
            prop_assert_eq!(a.ty, b.ty);
        }
    }

    /// Any view of any scaled laboratory validates against the loosened
    /// DTD (the paper's §6.2 guarantee), for random requesters.
    #[test]
    fn views_validate_against_loosened_dtd(
        projects in 1usize..20,
        doc_seed in 0u64..100_000,
        auth_seed in 0u64..100_000,
    ) {
        use xmlsec::workload::laboratory::*;
        let doc = laboratory_scaled(projects, doc_seed);
        let xml = serialize(&doc, &SerializeOptions::canonical());
        let dir = lab_directory();
        let base = lab_authorization_base();
        let users = ["Tom", "Alice", "Sam", "anonymous"];
        let user = users[(auth_seed as usize) % users.len()];
        let requester = Requester::new(user, "130.89.56.8", "x.bld1.it").unwrap();
        let processor = SecurityProcessor::new(dir, base);
        let out = processor
            .process(
                &AccessRequest { requester, uri: CSLAB_URI.to_string() },
                &DocumentSource { xml: &xml, dtd: Some(LAB_DTD), dtd_uri: Some(LAB_DTD_URI) },
            )
            .unwrap();
        let loosened = parse_dtd(out.loosened_dtd.as_deref().unwrap()).unwrap();
        prop_assert_eq!(xmlsec::dtd::validate(&loosened, &out.view), vec![]);
    }

    /// Subject-hierarchy laws: reflexivity and transitivity of ≤ on
    /// generated subjects.
    #[test]
    fn ash_partial_order_laws(seed in 0u64..1_000_000) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        let dir = xmlsec::workload::random_directory(6, 4, seed);
        let mut subjects = Vec::new();
        for _ in 0..6 {
            let ug = if rng.gen_bool(0.5) {
                format!("g{}", rng.gen_range(0..4))
            } else {
                format!("u{}", rng.gen_range(0..6))
            };
            let ip = ["*", "10.*", "10.1.*", "10.1.2.3"][rng.gen_range(0..4)];
            let sym = ["*", "*.org", "*.dom1.org", "h1.dom1.org"][rng.gen_range(0..4)];
            subjects.push(Subject::new(&ug, ip, sym).unwrap());
        }
        for a in &subjects {
            prop_assert!(a.leq(a, &dir), "reflexivity: {a}");
        }
        for a in &subjects {
            for b in &subjects {
                for c in &subjects {
                    if a.leq(b, &dir) && b.leq(c, &dir) {
                        prop_assert!(a.leq(c, &dir), "transitivity: {a} ≤ {b} ≤ {c}");
                    }
                }
            }
        }
    }
}
