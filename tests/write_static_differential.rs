//! Differential tests for the static write-effect analyzer.
//!
//! The pre-flight's contract is soundness, in both directions:
//!
//! - a **guaranteed-deny** batch verdict means the dynamic write path
//!   ([`apply_updates`]) refuses the batch on *every* DTD-valid
//!   instance — a static 403 never rejects a batch that could commit;
//! - a **guaranteed-allow** verdict means every per-op grant check is
//!   guaranteed to pass, so skipping write-labeling entirely
//!   ([`apply_updates_preauthorized`]) is *byte-identical*: the same
//!   outcome, the same committed document, or the same structural
//!   error — in intra-batch order.
//!
//! These properties generate random authorization sets (read and write
//! actions mixed, instance and schema level, all four types, predicates
//! included) over a non-recursive and a recursive DTD, random
//! conforming instances, and random op batches (good targets, dead
//! paths, wrong-kind targets, undeclared names, bad fragments).

use proptest::prelude::*;
use xmlsec::authz::{Action, AuthType, Authorization, ObjectSpec, Sign};
use xmlsec::core::{
    apply_updates, apply_updates_preauthorized, classify_batch, compile, BatchVerdict,
    EngineOptions, Parallelism, ResourceLimits, UpdateOp, WriteContext,
};
use xmlsec::prelude::*;

/// Subject pool: comparable and incomparable pairs, one location-bound.
const SUBJECTS: [(&str, &str, &str); 5] = [
    ("Staff", "*", "*"),
    ("Public", "*", "*"),
    ("tom", "*", "*"),
    ("All", "*", "*"),
    ("Staff", "10.0.*", "*"),
];

fn directory() -> Directory {
    let mut d = Directory::new();
    for u in ["tom", "ann"] {
        d.add_user(u).expect("fresh user");
    }
    for g in ["Staff", "Public", "All"] {
        d.add_group(g).expect("fresh group");
    }
    d.add_member("tom", "Staff").expect("edge");
    d.add_member("ann", "Public").expect("edge");
    d.add_member("Staff", "All").expect("edge");
    d.add_member("Public", "All").expect("edge");
    d
}

fn requesters() -> Vec<Requester> {
    vec![
        Requester::new("tom", "10.0.1.2", "a.lab.com").expect("requester"),
        Requester::new("ann", "93.10.2.7", "b.pub.org").expect("requester"),
    ]
}

fn policies() -> [PolicyConfig; 3] {
    [
        PolicyConfig::paper_default(),
        PolicyConfig { completeness: CompletenessPolicy::Open, ..Default::default() },
        PolicyConfig {
            conflict: ConflictResolution::PermissionsTakePrecedence,
            ..Default::default()
        },
    ]
}

/// Non-recursive DTD: optional child, starred lists, attributes.
const DOC_DTD: &str = r#"<!ELEMENT doc (meta?, sec*)>
<!ATTLIST doc id CDATA #IMPLIED>
<!ELEMENT meta (#PCDATA)>
<!ELEMENT sec (title, note*)>
<!ATTLIST sec level CDATA #IMPLIED>
<!ELEMENT title (#PCDATA)>
<!ELEMENT note (#PCDATA)>"#;

const DOC_PATHS: [Option<&str>; 8] = [
    None,
    Some("/doc"),
    Some("//sec"),
    Some("//sec/title"),
    Some("//note"),
    Some("/doc/meta"),
    Some(r#"//sec[./@level="1"]"#),
    Some("//sec/@level"),
];

/// Op-target pool for `doc`: live paths, attribute paths, a predicate,
/// and a dead path.
const DOC_TARGETS: [&str; 9] = [
    "/doc",
    "/doc/meta",
    "//sec",
    "//sec/title",
    "//note",
    "//sec/@level",
    "/doc/@id",
    r#"//sec[./@level="1"]"#,
    "/nothing/here",
];

const DOC_NAMES: [&str; 5] = ["meta", "note", "sec", "level", "bogus"];

const DOC_FRAGMENTS: [&str; 4] =
    ["<note>n</note>", "<sec><title>t</title></sec>", "<bogus/>", "not xml <"];

/// Recursive DTD: `part` nests under itself without bound.
const PART_DTD: &str = r#"<!ELEMENT part (label, part*)>
<!ATTLIST part id CDATA #IMPLIED>
<!ELEMENT label (#PCDATA)>"#;

const PART_PATHS: [Option<&str>; 7] = [
    None,
    Some("/part"),
    Some("//part"),
    Some("//label"),
    Some("/part/part"),
    Some(r#"//part[./@id="p"]"#),
    Some("//part/label"),
];

const PART_TARGETS: [&str; 7] =
    ["/part", "//part", "//label", "/part/part", "//part/@id", r#"//part[./@id="p"]"#, "/nope"];

const PART_NAMES: [&str; 4] = ["part", "label", "id", "bogus"];

const PART_FRAGMENTS: [&str; 3] = ["<part><label>l</label></part>", "<label>l</label>", "bad<"];

/// One generated authorization: indices into the pools plus sign, type,
/// and action picks.
type AuthSpec = (usize, usize, usize, bool, usize, bool);

fn build_auths(specs: &[AuthSpec], paths: &[Option<&str>]) -> Vec<Authorization> {
    specs
        .iter()
        .map(|&(si, uri_pick, pi, plus, ti, write)| {
            let (ug, ip, sym) = SUBJECTS[si % SUBJECTS.len()];
            let uri = if uri_pick % 2 == 0 { "d.xml" } else { "d.dtd" };
            let object = match paths[pi % paths.len()] {
                Some(p) => ObjectSpec::with_path(uri, p).expect("pool path parses"),
                None => ObjectSpec::whole(uri),
            };
            let ty = [
                AuthType::Local,
                AuthType::Recursive,
                AuthType::LocalWeak,
                AuthType::RecursiveWeak,
            ][ti % 4];
            let auth = Authorization::new(
                Subject::new(ug, ip, sym).expect("pool subject"),
                object,
                if plus { Sign::Plus } else { Sign::Minus },
                ty,
            );
            if write {
                auth.with_action(Action::Write)
            } else {
                auth
            }
        })
        .collect()
}

/// One generated op: kind plus indices into the target/name/fragment
/// pools.
type OpSpec = (usize, usize, usize, usize);

fn build_ops(
    specs: &[OpSpec],
    targets: &[&str],
    names: &[&str],
    fragments: &[&str],
) -> Vec<UpdateOp> {
    specs
        .iter()
        .map(|&(kind, ti, ni, fi)| {
            let target = targets[ti % targets.len()].to_string();
            let name = names[ni % names.len()].to_string();
            let xml = fragments[fi % fragments.len()].to_string();
            match kind % 6 {
                0 => UpdateOp::SetText { target, text: "w".to_string() },
                1 => UpdateOp::SetAttribute { target, name, value: "v".to_string() },
                2 => UpdateOp::InsertElement { parent: target, name },
                3 => UpdateOp::InsertSubtree { parent: target, xml },
                4 => UpdateOp::ReplaceSubtree { target, xml },
                _ => UpdateOp::Delete { target },
            }
        })
        .collect()
}

/// Builds a DTD-valid `doc` instance from shape bytes.
fn doc_instance(shape: &[u8]) -> String {
    let first = shape.first().copied().unwrap_or(0);
    let mut s = String::from(if first & 2 != 0 { r#"<doc id="d1">"# } else { "<doc>" });
    if first & 1 != 0 {
        s.push_str("<meta>m</meta>");
    }
    for b in shape.iter().skip(1).take(3) {
        match b % 3 {
            1 => s.push_str(r#"<sec level="1">"#),
            2 => s.push_str(r#"<sec level="2">"#),
            _ => s.push_str("<sec>"),
        }
        s.push_str("<title>t</title>");
        for _ in 0..((b >> 2) % 3) {
            s.push_str("<note>n</note>");
        }
        s.push_str("</sec>");
    }
    s.push_str("</doc>");
    s
}

/// Builds a DTD-valid recursive `part` instance from shape bytes.
fn part_instance(shape: &[u8]) -> String {
    fn build(shape: &[u8], pos: &mut usize, depth: usize, out: &mut String) {
        let b = shape.get(*pos).copied().unwrap_or(0);
        *pos += 1;
        out.push_str(if b & 1 != 0 { r#"<part id="p">"# } else { "<part>" });
        out.push_str("<label>x</label>");
        let kids = if depth >= 3 { 0 } else { (b >> 1) % 3 };
        for _ in 0..kids {
            build(shape, pos, depth + 1, out);
        }
        out.push_str("</part>");
    }
    let mut out = String::new();
    build(shape, &mut 0, 0, &mut out);
    out
}

/// Checks one scenario: classify the batch from the compiled write
/// table exactly as the server's pre-flight would, then hold the static
/// verdict against the dynamic write path.
fn check_case(dtd_text: &str, root: &str, xml: &str, auths: &[Authorization], ops: &[UpdateOp]) {
    let dtd = parse_dtd(dtd_text).expect("test DTD parses");
    let doc = parse(xml).expect("generated instance parses");
    let violations = xmlsec::dtd::Validator::new(&dtd).validate(&doc);
    assert!(violations.is_empty(), "generator must emit valid instances: {violations:?}");
    let dir = directory();
    for policy in policies() {
        for requester in requesters() {
            // The server resolves applicability per action; the write
            // path only ever sees the write-action subset.
            let wxml: Vec<&Authorization> = auths
                .iter()
                .filter(|a| {
                    a.object.uri == "d.xml"
                        && a.action == Action::Write
                        && requester.is_covered_by(&a.subject, &dir)
                })
                .collect();
            let wdtd: Vec<&Authorization> = auths
                .iter()
                .filter(|a| {
                    a.object.uri == "d.dtd"
                        && a.action == Action::Write
                        && requester.is_covered_by(&a.subject, &dir)
                })
                .collect();
            let cp = compile(&dtd, root, &wxml, &wdtd, &dir, policy).expect("root is declared");
            let verdict = classify_batch(&dtd, &cp.writes, ops);

            let ctx = WriteContext {
                axml: &wxml,
                adtd: &wdtd,
                dir: &dir,
                policy,
                opts: EngineOptions {
                    limits: ResourceLimits::default_limits().xpath,
                    parallelism: Parallelism::sequential(),
                    decisions: None,
                    compiled: None,
                    cancel: None,
                },
            };
            let mut dynamic_doc = doc.clone();
            let dynamic = apply_updates(&mut dynamic_doc, ops, &ctx);

            match &verdict {
                BatchVerdict::Deny { op, reason } => assert!(
                    dynamic.is_err(),
                    "static deny (op {op}: {reason}) but the dynamic path committed \
                     for {requester} (policy {policy:?}, doc {xml}, ops {ops:?})"
                ),
                BatchVerdict::Allow => {
                    let mut pre_doc = doc.clone();
                    let pre = apply_updates_preauthorized(&mut pre_doc, ops, None);
                    assert_eq!(
                        dynamic, pre,
                        "static allow: fast path diverges from dynamic outcome \
                         for {requester} (policy {policy:?}, doc {xml}, ops {ops:?})"
                    );
                    assert_eq!(
                        serialize(&dynamic_doc, &SerializeOptions::canonical()),
                        serialize(&pre_doc, &SerializeOptions::canonical()),
                        "static allow: fast path committed different bytes \
                         for {requester} (policy {policy:?}, doc {xml}, ops {ops:?})"
                    );
                }
                BatchVerdict::Dynamic => {}
            }
        }
    }
}

/// Pins the two guaranteed verdicts on deterministic policies so the
/// property above cannot silently degenerate into all-`Dynamic` runs.
#[test]
fn deterministic_guaranteed_verdicts() {
    let dtd = parse_dtd(DOC_DTD).expect("test DTD parses");
    let dir = directory();
    let policy = PolicyConfig::paper_default();
    let ops =
        [UpdateOp::SetText { target: "/doc/meta".to_string(), text: "w".to_string() }];

    // No write authorization at all: the table is unwritable, every
    // batch is guaranteed-denied.
    let cp = compile(&dtd, "doc", &[], &[], &dir, policy).expect("root declared");
    assert!(cp.writes.unwritable);
    assert!(matches!(classify_batch(&dtd, &cp.writes, &ops), BatchVerdict::Deny { op: 0, .. }));

    // A whole-document recursive write grant: blanket allow, every
    // batch is guaranteed-allow.
    let blanket = Authorization::new(
        Subject::new("Staff", "*", "*").expect("subject"),
        ObjectSpec::whole("d.dtd"),
        Sign::Plus,
        AuthType::Recursive,
    )
    .with_action(Action::Write);
    let adtd = [&blanket];
    let cp = compile(&dtd, "doc", &[], &adtd, &dir, policy).expect("root declared");
    assert!(cp.writes.blanket_allow);
    assert!(matches!(classify_batch(&dtd, &cp.writes, &ops), BatchVerdict::Allow));

    // And both ends hold against the dynamic path on a concrete doc.
    check_case(DOC_DTD, "doc", "<doc><meta>m</meta></doc>", &[], &ops);
    check_case(DOC_DTD, "doc", "<doc><meta>m</meta></doc>", &[blanket], &ops);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Non-recursive DTD: the static batch verdict is sound against the
    /// dynamic write path on every generated instance, under three
    /// policy configurations.
    #[test]
    fn write_preflight_sound_on_nonrecursive_dtd(
        specs in prop::collection::vec(
            (0..5usize, 0..2usize, 0..DOC_PATHS.len(), any::<bool>(), 0..4usize, any::<bool>()),
            2..=8),
        op_specs in prop::collection::vec(
            (0..6usize, 0..DOC_TARGETS.len(), 0..DOC_NAMES.len(), 0..DOC_FRAGMENTS.len()),
            1..=4),
        shape in prop::collection::vec(0u8..64, 1..=4),
    ) {
        let auths = build_auths(&specs, &DOC_PATHS);
        let ops = build_ops(&op_specs, &DOC_TARGETS, &DOC_NAMES, &DOC_FRAGMENTS);
        check_case(DOC_DTD, "doc", &doc_instance(&shape), &auths, &ops);
    }

    /// Recursive DTD: same property where the write table comes out of a
    /// fixpoint over the cyclic schema graph (and subtree-closure cells
    /// out of a greatest fixpoint).
    #[test]
    fn write_preflight_sound_on_recursive_dtd(
        specs in prop::collection::vec(
            (0..5usize, 0..2usize, 0..PART_PATHS.len(), any::<bool>(), 0..4usize, any::<bool>()),
            2..=8),
        op_specs in prop::collection::vec(
            (0..6usize, 0..PART_TARGETS.len(), 0..PART_NAMES.len(), 0..PART_FRAGMENTS.len()),
            1..=4),
        shape in prop::collection::vec(0u8..64, 1..=8),
    ) {
        let auths = build_auths(&specs, &PART_PATHS);
        let ops = build_ops(&op_specs, &PART_TARGETS, &PART_NAMES, &PART_FRAGMENTS);
        check_case(PART_DTD, "part", &part_instance(&shape), &auths, &ops);
    }
}
