//! Processor-option matrix and statistics accounting: the §7 pipeline's
//! switches (input validation, view verification) across document shapes,
//! and the bookkeeping invariants of `ViewStats`.

use proptest::prelude::*;
use xmlsec::authz::Authorization;
use xmlsec::core::{AccessRequest, DocumentSource, ProcessorOptions, SecurityProcessor};
use xmlsec::prelude::*;
use xmlsec::workload::{laboratory_scaled, random_auths, AuthConfig};

fn processor(validate_input: bool, verify_view: bool) -> SecurityProcessor {
    use xmlsec::workload::laboratory::*;
    SecurityProcessor {
        directory: lab_directory(),
        authorizations: lab_authorization_base(),
        options: ProcessorOptions {
            policy: PolicyConfig::paper_default(),
            validate_input,
            verify_view,
            ..Default::default()
        },
        decisions: None,
        compiled: None,
    }
}

fn request() -> AccessRequest {
    AccessRequest {
        requester: xmlsec::workload::laboratory::tom(),
        uri: xmlsec::workload::laboratory::CSLAB_URI.to_string(),
    }
}

#[test]
fn all_option_combinations_agree_on_the_view() {
    use xmlsec::workload::laboratory::*;
    let source = DocumentSource { xml: CSLAB_XML, dtd: Some(LAB_DTD), dtd_uri: Some(LAB_DTD_URI) };
    let mut views = Vec::new();
    for validate_input in [false, true] {
        for verify_view in [false, true] {
            let out = processor(validate_input, verify_view)
                .process(&request(), &source)
                .expect("valid input passes under every option combination");
            views.push(out.xml);
        }
    }
    assert!(views.windows(2).all(|w| w[0] == w[1]), "options must not change the view");
}

#[test]
fn validation_gates_only_when_enabled() {
    use xmlsec::workload::laboratory::*;
    // A document missing required attributes.
    let invalid = r#"<laboratory><project type="public"><manager><flname>X</flname></manager></project></laboratory>"#;
    let source = DocumentSource { xml: invalid, dtd: Some(LAB_DTD), dtd_uri: Some(LAB_DTD_URI) };
    assert!(processor(true, false).process(&request(), &source).is_err());
    assert!(processor(false, false).process(&request(), &source).is_ok());
}

#[test]
fn stats_identities_on_the_laboratory_corpus() {
    use xmlsec::workload::laboratory::*;
    for projects in [1usize, 5, 25] {
        let doc = laboratory_scaled(projects, 17);
        let xml = serialize(&doc, &SerializeOptions::canonical());
        let source = DocumentSource { xml: &xml, dtd: Some(LAB_DTD), dtd_uri: Some(LAB_DTD_URI) };
        let out = processor(true, true).process(&request(), &source).unwrap();
        let s = out.stats;
        // labeled = every element + attribute of the source.
        let relabeled: usize = doc.preorder(doc.root()).count();
        assert_eq!(s.labeled_nodes, relabeled);
        assert!(s.granted_nodes <= s.labeled_nodes);
        // reachable(view) + pruned = reachable(source), counting text too.
        assert_eq!(out.view.count_reachable() + s.pruned_nodes, doc.count_reachable());
        // Tom's applicable sets are constant for this corpus.
        assert_eq!(s.instance_auths, 2);
        assert_eq!(s.schema_auths, 1);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Stats identities hold for random authorization sets over random
    /// laboratory documents, under both completeness policies.
    #[test]
    fn stats_identities_hold_generally(
        projects in 1usize..12,
        doc_seed in 0u64..100_000,
        auth_seed in 0u64..100_000,
        count in 0usize..12,
        open in any::<bool>(),
    ) {
        let doc = laboratory_scaled(projects, doc_seed);
        let dir = xmlsec::workload::random_directory(4, 3, auth_seed);
        let (inst, _) = random_auths(
            &AuthConfig { count, ..Default::default() }, "d.xml", "d.dtd", auth_seed);
        // Rewrite generated paths onto the laboratory vocabulary where
        // possible; unmatched paths simply select nothing (still a valid
        // stats scenario).
        let ax: Vec<&Authorization> = inst.iter().collect();
        let policy = PolicyConfig {
            completeness: if open { CompletenessPolicy::Open } else { CompletenessPolicy::Closed },
            ..Default::default()
        };
        let (view, stats) = compute_view(&doc, &ax, &[], &dir, policy);
        prop_assert_eq!(stats.labeled_nodes, doc.preorder(doc.root()).count());
        prop_assert!(stats.granted_nodes <= stats.labeled_nodes);
        prop_assert_eq!(
            view.count_reachable() + stats.pruned_nodes,
            doc.count_reachable()
        );
        prop_assert_eq!(stats.instance_auths, ax.len());
        prop_assert_eq!(stats.schema_auths, 0);
    }
}

#[test]
fn verify_view_accepts_every_policy() {
    use xmlsec::workload::laboratory::*;
    // verify_view re-validates the pruned view against the loosened DTD
    // (debug assertion); exercise it across the full policy matrix.
    let source = DocumentSource { xml: CSLAB_XML, dtd: Some(LAB_DTD), dtd_uri: Some(LAB_DTD_URI) };
    for conflict in [
        ConflictResolution::MostSpecificThenDenials,
        ConflictResolution::MostSpecificThenPermissions,
        ConflictResolution::DenialsTakePrecedence,
        ConflictResolution::PermissionsTakePrecedence,
        ConflictResolution::NothingTakesPrecedence,
        ConflictResolution::MajoritySign,
    ] {
        for completeness in [CompletenessPolicy::Closed, CompletenessPolicy::Open] {
            let mut p = processor(true, true);
            p.options.policy = PolicyConfig { conflict, completeness };
            let out = p.process(&request(), &source).expect("pipeline");
            let loosened = parse_dtd(out.loosened_dtd.as_deref().unwrap()).unwrap();
            assert_eq!(
                xmlsec::dtd::validate(&loosened, &out.view),
                vec![],
                "policy {conflict:?}/{completeness:?}"
            );
        }
    }
}
