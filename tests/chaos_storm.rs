//! Randomized chaos soak over real sockets.
//!
//! A seeded [`xmlsec::workload::storm`] population — well-behaved
//! clients, conditional revalidators, impossible deadlines, mid-compute
//! hangups, slow lorises — hammers a live demo server whose request
//! path is additionally salted with probabilistic latency jitter from
//! the fault registry. Afterwards the server-side invariants must hold:
//!
//! - every answered response was well-formed HTTP (no partial/corrupt
//!   bytes ever reach a client);
//! - no worker is stuck and no panic was caught;
//! - the queue-depth gauge and the core-lease gauge drain back to zero
//!   (nothing leaked across hundreds of cancelled/abandoned requests);
//! - the cache stays coherent: a revalidation against the post-storm
//!   entity tag still answers 304, and fresh requests serve the right
//!   bytes.
//!
//! This test owns its binary: fault arming and the telemetry registry
//! are process-global, so the tight equality assertions below are only
//! safe because nothing else runs alongside.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};
use xmlsec::server::faults::{arm_probabilistic, clear, FaultAction};
use xmlsec::server::{AnyDemo, HttpConfig, SecureServer, Transport};
use xmlsec::workload::{run_storm, StormConfig};
use xmlsec_authz::{AuthType, Authorization, AuthorizationBase, ObjectSpec, Sign};
use xmlsec_subjects::{Directory, Subject};

const OK_TARGET: &str = "/doc.xml?user=tom&pass=pw&ip=1.2.3.4&host=h.x.org";

fn storm_server() -> SecureServer {
    let mut dir = Directory::new();
    dir.add_user("tom").expect("add user");
    let mut base = AuthorizationBase::new();
    for uri in ["doc.xml", "beta.xml"] {
        base.add(Authorization::new(
            Subject::new("tom", "*", "*").expect("subject"),
            ObjectSpec::with_path(uri, "/d").expect("object"),
            Sign::Plus,
            AuthType::Recursive,
        ));
    }
    let mut s = SecureServer::new(dir, base);
    s.register_credentials("tom", "pw");
    s.repository_mut().put_document("doc.xml", "<d><pub>hello</pub></d>", None);
    s.repository_mut().put_document("beta.xml", "<d><pub>beta-body</pub></d>", None);
    s
}

/// Raw request returning the whole response buffer.
fn raw_get(demo: &AnyDemo, target: &str, extra_header: Option<&str>) -> String {
    let mut conn = TcpStream::connect(demo.addr()).expect("connect");
    let extra = extra_header.map(|h| format!("{h}\r\n")).unwrap_or_default();
    write!(conn, "GET {target} HTTP/1.0\r\nHost: t\r\n{extra}\r\n").expect("write");
    let mut buf = String::new();
    conn.read_to_string(&mut buf).expect("read");
    buf
}

/// First sample of a metric line starting with `name` (labels allowed
/// in `name`); -1 when the series was never registered.
fn value(metrics: &str, name: &str) -> i64 {
    metrics
        .lines()
        .find(|l| l.starts_with(name) && !l.starts_with('#'))
        .and_then(|l| l.rsplit(' ').next())
        .and_then(|v| v.parse().ok())
        .unwrap_or(-1)
}

#[test]
fn chaos_storm_preserves_server_invariants() {
    clear();
    // The CI soak matrix overrides the seed; the default replays the
    // checked-in scenario. Fault arming derives from the same seed so
    // one number pins the whole run.
    let seed: u64 = std::env::var("XMLSEC_CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xDEAD_BEEF);
    // The CI soak matrix also crosses the seeds with both front ends;
    // the invariants below are transport-independent.
    let transport: Transport = std::env::var("XMLSEC_CHAOS_TRANSPORT")
        .ok()
        .map(|t| t.parse().expect("XMLSEC_CHAOS_TRANSPORT must be pool|epoll"))
        .unwrap_or_default();
    let cfg = HttpConfig {
        workers: 4,
        read_timeout: Duration::from_millis(250),
        request_deadline: Some(Duration::from_secs(5)),
        ..Default::default()
    };
    let demo = AnyDemo::start_with(transport, storm_server(), "127.0.0.1:0", cfg).expect("bind");

    // Salt the pipeline with seeded latency jitter (~35% of requests
    // sleep 0-12 ms right before processing) so deadline races, sojourn
    // spikes and client-gone windows actually occur.
    arm_probabilistic("process.request", FaultAction::JitterMs(0, 12), 350_000, seed ^ 0xC0FF_EE00);

    let storm = StormConfig {
        seed,
        requests: 160,
        concurrency: 4,
        targets: vec![
            OK_TARGET.to_string(),
            "/beta.xml?user=tom&pass=pw&ip=1.2.3.4&host=h.x.org".to_string(),
            format!("{OK_TARGET}&q=%2Fd"),
            // Typed client faults stay typed under chaos too.
            "/missing.xml?user=tom&pass=pw&ip=1.2.3.4&host=h.x.org".to_string(),
        ],
        tiny_deadline: 0.20,
        disconnect: 0.12,
        loris: 0.06,
        conditional: 0.25,
    };
    let report = run_storm(demo.addr(), &storm);
    clear();

    // Written BEFORE the assertions, so a failing CI soak uploads the
    // replay seed and the raw client observations as its artifact.
    if let Ok(path) = std::env::var("XMLSEC_CHAOS_REPORT") {
        let json = format!(
            "{{\n  \"seed\": {seed},\n  \"sent\": {},\n  \"ok\": {},\n  \
             \"not_modified\": {},\n  \"shed\": {},\n  \"client_error\": {},\n  \
             \"server_error\": {},\n  \"aborted\": {},\n  \"malformed\": {}\n}}\n",
            report.sent,
            report.ok,
            report.not_modified,
            report.shed,
            report.client_error,
            report.server_error,
            report.aborted,
            report.malformed,
        );
        std::fs::write(&path, json).expect("write chaos report");
    }

    // Client-side invariants: everything accounted for, nothing corrupt,
    // no untyped 5xx (503 shed/cancel responses are the only 5xx armed).
    assert_eq!(report.sent, storm.requests, "{report:?}");
    assert_eq!(report.malformed, 0, "corrupt response reached a client: {report:?}");
    assert_eq!(report.answered() + report.aborted, report.sent, "{report:?}");
    assert_eq!(report.server_error, 0, "untyped 5xx under chaos: {report:?}");
    assert!(report.ok > 0, "storm never got a successful response: {report:?}");
    assert!(report.client_error > 0, "404 target never answered 4xx: {report:?}");

    // Server-side invariants, once the tail of reaped/abandoned
    // connections drains: gauges back to baseline, nothing leaked.
    let deadline = Instant::now() + Duration::from_secs(5);
    let metrics = loop {
        let m = raw_get(&demo, "/metrics", None);
        let drained = value(&m, "xmlsec_server_queue_depth") == 0
            && value(&m, "xmlsec_par_cores_leased") <= 0;
        if drained || Instant::now() > deadline {
            break m;
        }
        std::thread::sleep(Duration::from_millis(50));
    };
    assert_eq!(value(&metrics, "xmlsec_server_queue_depth"), 0, "{metrics}");
    assert!(value(&metrics, "xmlsec_par_cores_leased") <= 0, "leaked core lease: {metrics}");
    assert!(value(&metrics, "xmlsec_server_panics_caught_total") <= 0, "{metrics}");
    // ~20% of requests declared an unmeetable deadline; at least one
    // must have been cancelled and counted by reason.
    assert!(
        value(&metrics, "xmlsec_server_cancelled_total{reason=\"deadline\"}") >= 1,
        "{metrics}"
    );

    // No stuck worker: a fresh request is served promptly and correctly.
    let fresh = raw_get(&demo, OK_TARGET, None);
    assert!(fresh.starts_with("HTTP/1.0 200"), "{fresh}");
    assert!(fresh.contains("hello"), "{fresh}");

    // Cache coherence survived the storm: the entity tag a client holds
    // now still revalidates, and a mismatched one re-serves full bytes.
    let etag = fresh
        .lines()
        .find_map(|l| l.strip_prefix("ETag: "))
        .expect("200 must carry an entity tag")
        .trim()
        .to_string();
    let revalidated = raw_get(&demo, OK_TARGET, Some(&format!("If-None-Match: {etag}")));
    assert!(revalidated.starts_with("HTTP/1.0 304"), "{revalidated}");
    let mismatched = raw_get(&demo, OK_TARGET, Some("If-None-Match: \"bogus\""));
    assert!(mismatched.starts_with("HTTP/1.0 200"), "{mismatched}");
    assert!(mismatched.contains("hello"), "{mismatched}");
}
