//! Concurrency: the server and its HTTP front end under parallel load —
//! shared caches and audit logs must stay consistent, and every client
//! must get exactly the view its requester is entitled to.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use xmlsec::prelude::*;
use xmlsec::workload::laboratory::*;

fn server() -> SecureServer {
    let mut s = SecureServer::new(lab_directory(), lab_authorization_base());
    s.register_credentials("Tom", "pw");
    s.register_credentials("Alice", "pw");
    s.repository_mut().put_dtd(LAB_DTD_URI, LAB_DTD);
    s.repository_mut().put_document(CSLAB_URI, CSLAB_XML, Some(LAB_DTD_URI));
    s
}

#[test]
fn parallel_handles_share_cache_and_stay_isolated() {
    let s = Arc::new(server());
    let mk = |user: &str, sym: &str| ClientRequest {
        user: Some((user.to_string(), "pw".to_string())),
        ip: "130.100.50.8".into(),
        sym: sym.into(),
        uri: CSLAB_URI.into(),
    };
    let tom_req = mk("Tom", "infosys.bld1.it");
    let alice_req = mk("Alice", "pc.lab.com");

    // Expected views computed once, single-threaded.
    let tom_expected = s.handle(&tom_req).unwrap().xml;
    let alice_expected = s.handle(&alice_req).unwrap().xml;
    assert_ne!(tom_expected, alice_expected);

    let mut handles = Vec::new();
    for i in 0..8 {
        let s = Arc::clone(&s);
        let (req, expected) = if i % 2 == 0 {
            (tom_req.clone(), tom_expected.clone())
        } else {
            (alice_req.clone(), alice_expected.clone())
        };
        handles.push(std::thread::spawn(move || {
            for _ in 0..50 {
                let resp = s.handle(&req).expect("request succeeds");
                assert_eq!(resp.xml, expected, "cross-requester cache contamination");
            }
        }));
    }
    for h in handles {
        h.join().expect("worker thread");
    }
    let (hits, misses) = s.cache_stats();
    assert_eq!(hits + misses, 2 + 8 * 50);
    assert!(hits >= 8 * 50 - 8, "almost everything after warmup should hit");
    assert_eq!(s.audit.len() as u64, hits + misses);
}

#[test]
fn http_demo_under_parallel_clients() {
    let demo = xmlsec::server::HttpDemo::start(server(), "127.0.0.1:0").expect("bind");
    let addr = demo.addr();
    let mut handles = Vec::new();
    for i in 0..6 {
        handles.push(std::thread::spawn(move || {
            for _ in 0..20 {
                let mut conn = TcpStream::connect(addr).expect("connect");
                let target = if i % 2 == 0 {
                    "/CSlab.xml?user=Tom&pass=pw&ip=130.100.50.8&host=infosys.bld1.it"
                } else {
                    "/CSlab.xml?user=Alice&pass=pw&ip=1.2.3.4&host=pc.lab.com"
                };
                write!(conn, "GET {target} HTTP/1.0\r\n\r\n").expect("write");
                let mut buf = String::new();
                conn.read_to_string(&mut buf).expect("read");
                assert!(buf.starts_with("HTTP/1.0 200"), "{buf}");
                if i % 2 == 0 {
                    assert!(buf.contains("Bob Keen"), "Tom's view");
                } else {
                    assert!(!buf.contains("Bob Keen"), "Alice from .com must not see managers");
                }
            }
        }));
    }
    for h in handles {
        h.join().expect("client thread");
    }
}
