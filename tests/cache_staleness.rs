//! End-to-end cache-staleness pinning: the view cache's key is
//! content-addressed (document bytes + DTD bytes, hashed at
//! registration), so mutating repository content **without any
//! invalidation call** must miss the cache and serve the fresh view.
//!
//! These tests fail on the pre-content-addressed key (authorization
//! fingerprint only): there the warm entry still matches after the
//! mutation and the stale — possibly over-permissive — view is served.
//!
//! Only per-instance statistics (`cache_stats`, `cache_stale_rejected`)
//! are asserted here, so the tests are safe to run in parallel threads
//! of this binary.

use xmlsec::core::update::UpdateOp;
use xmlsec::prelude::*;

fn lab_server() -> SecureServer {
    use xmlsec::workload::laboratory::*;
    let mut s = SecureServer::new(lab_directory(), lab_authorization_base());
    s.register_credentials("Tom", "pw-tom");
    s.repository_mut().put_dtd(LAB_DTD_URI, LAB_DTD);
    s.repository_mut().put_document(CSLAB_URI, CSLAB_XML, Some(LAB_DTD_URI));
    s
}

fn tom_request(uri: &str) -> ClientRequest {
    ClientRequest {
        user: Some(("Tom".into(), "pw-tom".into())),
        ip: "130.100.50.8".into(),
        sym: "infosys.bld1.it".into(),
        uri: uri.into(),
    }
}

#[test]
fn document_mutation_without_invalidation_serves_the_fresh_view() {
    use xmlsec::workload::laboratory::*;
    let mut s = lab_server();
    let req = tom_request(CSLAB_URI);
    let first = s.handle(&req).unwrap();
    assert!(!first.cached);
    assert!(s.handle(&req).unwrap().cached, "cache is warm");
    assert!(first.xml.contains("Querying XML"));

    // Mutate the stored bytes directly — deliberately NOT calling any
    // invalidation hook. Drop the public paper from the document.
    let stripped = CSLAB_XML.replace(
        r#"<paper category="public" type="journal"><title>Querying XML</title></paper>"#,
        "",
    );
    assert_ne!(stripped, CSLAB_XML, "the corpus line being stripped must exist");
    s.repository_mut().put_document(CSLAB_URI, &stripped, Some(LAB_DTD_URI));

    let fresh = s.handle(&req).unwrap();
    assert!(!fresh.cached, "new content hash must structurally miss the warm cache");
    assert!(
        !fresh.xml.contains("Querying XML"),
        "the stale view leaked removed content: {}",
        fresh.xml
    );
    assert_ne!(fresh.etag, first.etag, "the entity tag tracks the content identity");
    assert!(s.cache_stale_rejected() >= 1, "the dead entry is swept on the miss");
}

#[test]
fn dtd_replacement_without_invalidation_misses_the_cache() {
    use xmlsec::workload::laboratory::*;
    let mut s = lab_server();
    let req = tom_request(CSLAB_URI);
    let first = s.handle(&req).unwrap();
    assert!(s.handle(&req).unwrap().cached);

    // Replace the DTD text (same elements, different bytes) without
    // invalidating: the combined content identity must move, because
    // the loosened DTD served with the view derives from these bytes.
    let mut dtd2 = String::from("<!-- rev 2 -->\n");
    dtd2.push_str(LAB_DTD);
    s.repository_mut().put_dtd(LAB_DTD_URI, &dtd2);

    let after = s.handle(&req).unwrap();
    assert!(!after.cached, "a DTD change must repoint every conforming document's key");
    assert_ne!(after.etag, first.etag);
}

#[test]
fn committed_update_batch_is_immediately_visible_through_the_cached_path() {
    // The §8 write pipeline: editor commits a batch, and the very next
    // read — through the cache — serves the updated view, then caches
    // *that* and keeps hitting it.
    let mut dir = Directory::new();
    dir.add_user("editor").unwrap();
    dir.add_user("reader").unwrap();
    dir.add_group("Team").unwrap();
    dir.add_member("editor", "Team").unwrap();
    dir.add_member("reader", "Team").unwrap();
    let mut base = AuthorizationBase::new();
    base.add(Authorization::new(
        Subject::new("Team", "*", "*").unwrap(),
        ObjectSpec::with_path("notes.xml", "/notes").unwrap(),
        Sign::Plus,
        AuthType::Recursive,
    ));
    base.add(
        Authorization::new(
            Subject::new("editor", "*", "*").unwrap(),
            ObjectSpec::with_path("notes.xml", "/notes").unwrap(),
            Sign::Plus,
            AuthType::Recursive,
        )
        .with_action(xmlsec::authz::Action::Write),
    );
    let mut s = SecureServer::new(dir, base);
    s.register_credentials("editor", "pw");
    s.register_credentials("reader", "pw");
    s.repository_mut()
        .put_document("notes.xml", "<notes><item>draft</item></notes>", None);
    let req = |user: &str| ClientRequest {
        user: Some((user.to_string(), "pw".to_string())),
        ip: "10.0.0.1".into(),
        sym: "ws.team.org".into(),
        uri: "notes.xml".into(),
    };

    let before = s.handle(&req("reader")).unwrap();
    assert!(s.handle(&req("reader")).unwrap().cached, "reader's view is warm");
    assert!(before.xml.contains("draft"));

    let touched = s
        .update(
            &req("editor"),
            &[
                UpdateOp::SetText { target: "/notes/item".into(), text: "final".into() },
                UpdateOp::InsertElement { parent: "/notes".into(), name: "item".into() },
            ],
        )
        .unwrap();
    assert_eq!(touched, 2);

    let after = s.handle(&req("reader")).unwrap();
    assert!(after.cached, "the commit patched the reader's warm view in place");
    assert!(after.xml.contains("final"), "batch visible at once: {}", after.xml);
    assert!(!after.xml.contains("draft"));
    assert_ne!(after.etag, before.etag, "the entity tag tracks the content identity");
    // The patched view keeps serving as a normal warm hit.
    let again = s.handle(&req("reader")).unwrap();
    assert!(again.cached);
    assert_eq!(again.xml, after.xml);
    assert_eq!(again.etag, after.etag);

    // The patched bytes are identical to a cold recompute: a server
    // with no cache, fed the committed bytes, renders the same view.
    let mut cold = SecureServer::new(
        {
            let mut d = Directory::new();
            d.add_user("editor").unwrap();
            d.add_user("reader").unwrap();
            d.add_group("Team").unwrap();
            d.add_member("editor", "Team").unwrap();
            d.add_member("reader", "Team").unwrap();
            d
        },
        {
            let mut b = AuthorizationBase::new();
            b.add(Authorization::new(
                Subject::new("Team", "*", "*").unwrap(),
                ObjectSpec::with_path("notes.xml", "/notes").unwrap(),
                Sign::Plus,
                AuthType::Recursive,
            ));
            b
        },
    )
    .without_cache();
    cold.register_credentials("reader", "pw");
    let committed = s.repository().document("notes.xml").unwrap().xml.clone();
    cold.repository_mut().put_document("notes.xml", &committed, None);
    let recomputed = cold.handle(&req("reader")).unwrap();
    assert_eq!(recomputed.xml, after.xml, "patched view == full recompute, byte for byte");
}
