//! `xmlsec-cli` — command-line front end to the security processor.
//!
//! ```text
//! xmlsec-cli view     --doc F --uri U --user NAME --ip IP --host H
//!                     [--dtd F --dtd-uri U] [--xacl F]... [--dir F]
//!                     [--open] [--pretty]
//! xmlsec-cli validate --doc F --dtd F
//! xmlsec-cli loosen   --dtd F
//! xmlsec-cli tree     --doc F | --dtd F [--root NAME]
//! xmlsec-cli xpath    --doc F --expr PATH
//! xmlsec-cli xacl     --xacl F            # check & echo an XACL
//! xmlsec-cli serve    --addr 127.0.0.1:8080 --doc F --uri U [--dtd F --dtd-uri U]
//!                     [--xacl F]... [--dir F] [--cred user:pass]...
//!                     [--workers N] [--backlog N] [--read-timeout-ms N]
//!                     [--write-timeout-ms N] [--deadline-ms N] [--shed-adaptive on|off]
//!                     [--shed-target-ms N] [--shed-interval-ms N]
//!                     [--max-input-bytes N] [--max-depth N]
//!                     [--max-nodes N] [--max-entity-expansion N] [--max-node-visits N]
//!                     [--compile on|off]
//! xmlsec-cli compile  <dtd> <xacl> --user NAME --ip IP --host H
//!                     [--doc-uri U] [--dtd-uri U] [--root NAME] [--dir F]
//!                     [--open] [--format human|json]
//! ```
//!
//! The directory file (`--dir`) is line-oriented:
//!
//! ```text
//! user Tom
//! group Foreign
//! member Tom Foreign
//! ```

use std::collections::HashMap;
use std::process::ExitCode;
use xmlsec::prelude::*;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    let opts = match Opts::parse(rest) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    let result = match cmd.as_str() {
        "view" => cmd_view(&opts),
        "update" => cmd_update(&opts),
        "validate" => cmd_validate(&opts),
        "loosen" => cmd_loosen(&opts),
        "tree" => cmd_tree(&opts),
        "xpath" => cmd_xpath(&opts),
        "xacl" => cmd_xacl(&opts),
        "serve" => cmd_serve(&opts),
        "stats" => cmd_stats(&opts),
        "explain" => cmd_explain(&opts),
        "analyze" => cmd_analyze(&opts),
        "compile" => cmd_compile(&opts),
        "lint" => cmd_lint(&opts),
        other => Err(format!("unknown command {other:?}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage: xmlsec-cli <view|validate|loosen|tree|xpath|xacl> [options]
  view:     --doc F --uri U --user NAME --ip IP --host H [--dtd F --dtd-uri U] [--xacl F]... [--dir F] [--open] [--pretty]
  update:   --doc F --uri U --user NAME --ip IP --host H --ops F (or - for stdin)
            [--dtd F --dtd-uri U] [--xacl F]... [--dir F] [--open]
            ops file: one op per line, tab-separated fields —
              settext <path>\\t<text> | setattr <path>\\t<name>\\t<value> | insert <path>\\t<name>
              insertsub <path>\\t<xml> | replacesub <path>\\t<xml> | delete <path>
            prints the committed document to stdout
  validate: --doc F --dtd F [--strict]
  loosen:   --dtd F
  tree:     --doc F | --dtd F [--root NAME]
  xpath:    --doc F --expr PATH
  xacl:     --xacl F
  serve:    --addr A:P (--site DIR | --doc F --uri U [--dtd F --dtd-uri U] [--xacl F]... [--dir F] [--cred user:pass]...)
            transport: [--transport pool|epoll (default pool; epoll is the Linux event loop)]
            pool: [--workers N] [--backlog N] [--read-timeout-ms N] [--write-timeout-ms N]
            robustness: [--deadline-ms N (per-request deadline; 0=off)] [--shed-adaptive on|off]
                        [--shed-target-ms N] [--shed-interval-ms N]
            cache: [--cache-capacity N (bound the view cache; 0=off)]
            limits: [--max-input-bytes N] [--max-depth N] [--max-nodes N] [--max-entity-expansion N] [--max-node-visits N]
            parallel: [--par-threads N (0=auto)] [--par-threshold NODES]
            jit: [--compile on|off (default on: serve guaranteed labels from compiled verdict tables)]
  stats:    --doc F --uri U --user NAME --ip IP --host H [--xacl F]... [--dir F] [--dtd F --dtd-uri U] [--repeat N] [--prometheus]
            parallel: [--par-threads N (0=auto)] [--par-threshold NODES]
  explain:  --doc F --uri U --user NAME --ip IP --host H [--xacl F]... [--dir F]
  analyze:  <dtd> <xacl> | --dtd F --xacl F
            [--root NAME] [--dtd-uri U] [--dir F] [--open]
            [--subjects closure|list] [--subject user[:ip[:host]]]...
            [--format human|json]
            [--writes (write-effect tables: per-node update verdicts instead of read tables)]
  compile:  <dtd> <xacl> | --dtd F --xacl F
            --user NAME --ip IP --host H [--doc-uri U] [--dtd-uri U]
            [--root NAME] [--dir F] [--open] [--format human|json]
  lint:     --xacl F [--dir F]";

/// Parsed command-line options (flag → values; repeatable flags collect;
/// non-`--` arguments are kept as positionals, in order).
struct Opts {
    values: HashMap<String, Vec<String>>,
    flags: Vec<String>,
    positionals: Vec<String>,
}

impl Opts {
    fn parse(args: &[String]) -> Result<Opts, String> {
        let mut values: HashMap<String, Vec<String>> = HashMap::new();
        let mut flags = Vec::new();
        let mut positionals = Vec::new();
        let mut it = args.iter();
        while let Some(a) = it.next() {
            let Some(name) = a.strip_prefix("--") else {
                positionals.push(a.clone());
                continue;
            };
            match name {
                "open" | "pretty" | "strict" | "prometheus" | "writes" => {
                    flags.push(name.to_string())
                }
                _ => {
                    let v = it.next().ok_or_else(|| format!("--{name} needs a value"))?;
                    values.entry(name.to_string()).or_default().push(v.clone());
                }
            }
        }
        Ok(Opts { values, flags, positionals })
    }

    /// The `i`-th positional argument, or the value of `--{fallback}`.
    fn positional_or(&self, i: usize, fallback: &str) -> Result<&str, String> {
        self.positionals
            .get(i)
            .map(String::as_str)
            .or_else(|| self.opt(fallback))
            .ok_or_else(|| format!("missing {fallback} (positional argument or --{fallback})"))
    }

    fn one(&self, name: &str) -> Result<&str, String> {
        self.values
            .get(name)
            .and_then(|v| v.first())
            .map(String::as_str)
            .ok_or_else(|| format!("missing --{name}"))
    }

    fn opt(&self, name: &str) -> Option<&str> {
        self.values.get(name).and_then(|v| v.first()).map(String::as_str)
    }

    fn many(&self, name: &str) -> &[String] {
        self.values.get(name).map(Vec::as_slice).unwrap_or(&[])
    }

    fn flag(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f == name)
    }
}

fn read(path: &str) -> Result<String, String> {
    std::fs::read_to_string(path).map_err(|e| format!("cannot read {path:?}: {e}"))
}

/// Parses the line-oriented directory file.
fn load_directory(path: Option<&str>) -> Result<Directory, String> {
    let mut dir = Directory::new();
    let Some(path) = path else { return Ok(dir) };
    for (i, line) in read(path)?.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let parts: Vec<&str> = line.split_whitespace().collect();
        let err = |e: &dyn std::fmt::Display| format!("{path}:{}: {e}", i + 1);
        match parts.as_slice() {
            ["user", name] => dir.add_user(name).map_err(|e| err(&e))?,
            ["group", name] => dir.add_group(name).map_err(|e| err(&e))?,
            ["member", member, group] => dir.add_member(member, group).map_err(|e| err(&e))?,
            _ => return Err(format!("{path}:{}: unrecognized line {line:?}", i + 1)),
        }
    }
    Ok(dir)
}

fn cmd_view(o: &Opts) -> Result<(), String> {
    let xml = read(o.one("doc")?)?;
    let uri = o.one("uri")?;
    let mut dir = load_directory(o.opt("dir"))?;
    // The requesting user always exists.
    let user = o.one("user")?;
    let _ = dir.add_user(user);

    let mut base = AuthorizationBase::new();
    for xacl_path in o.many("xacl") {
        let auths = parse_xacl(&read(xacl_path)?).map_err(|e| e.to_string())?;
        // Register every subject so coverage checks can resolve groups
        // that the directory file did not mention.
        for a in &auths {
            if dir.kind(&a.subject.user_group).is_none() {
                let _ = dir.add_group(&a.subject.user_group);
            }
        }
        base.extend(auths);
    }

    let dtd_text = o.opt("dtd").map(read).transpose()?;
    let policy = PolicyConfig {
        completeness: if o.flag("open") {
            CompletenessPolicy::Open
        } else {
            CompletenessPolicy::Closed
        },
        ..Default::default()
    };
    let processor = xmlsec::core::SecurityProcessor {
        directory: dir,
        authorizations: base,
        options: xmlsec::core::ProcessorOptions { policy, ..Default::default() },
        decisions: None,
        compiled: None,
    };
    let requester =
        Requester::new(user, o.one("ip")?, o.one("host")?).map_err(|e| e.to_string())?;
    let out = processor
        .process(
            &AccessRequest { requester, uri: uri.to_string() },
            &DocumentSource { xml: &xml, dtd: dtd_text.as_deref(), dtd_uri: o.opt("dtd-uri") },
        )
        .map_err(|e| e.to_string())?;
    if o.flag("pretty") {
        print!("{}", serialize(&out.view, &SerializeOptions::pretty()));
    } else {
        println!("{}", out.xml);
    }
    if let Some(l) = out.loosened_dtd {
        eprintln!("-- loosened DTD --\n{l}");
    }
    Ok(())
}

/// `update` — the §8 write path from the shell: authorize a batch of
/// update operations against the requester's write grants, apply it
/// transactionally (all ops or none, DTD validity preserved), and print
/// the committed document to stdout.
fn cmd_update(o: &Opts) -> Result<(), String> {
    let xml = read(o.one("doc")?)?;
    let uri = o.one("uri")?;
    let user = o.one("user")?;
    let mut dir = load_directory(o.opt("dir"))?;
    let _ = dir.add_user(user);
    let mut base = AuthorizationBase::new();
    for xacl_path in o.many("xacl") {
        let auths = parse_xacl(&read(xacl_path)?).map_err(|e| e.to_string())?;
        for a in &auths {
            if dir.kind(&a.subject.user_group).is_none() {
                let _ = dir.add_group(&a.subject.user_group);
            }
        }
        base.extend(auths);
    }
    let mut server = SecureServer::new(dir, base).without_cache();
    server.register_credentials(user, "-");
    let dtd_uri = o.opt("dtd-uri");
    if let Some(dtd_path) = o.opt("dtd") {
        let duri = dtd_uri.ok_or("--dtd requires --dtd-uri")?;
        server.repository_mut().put_dtd(duri, &read(dtd_path)?);
    }
    server.repository_mut().put_document(uri, &xml, dtd_uri);
    if o.flag("open") {
        server = server.with_policy(PolicyConfig {
            completeness: CompletenessPolicy::Open,
            ..Default::default()
        });
    }
    let ops_path = o.one("ops")?;
    let ops_text = if ops_path == "-" {
        use std::io::Read as _;
        let mut buf = String::new();
        std::io::stdin().read_to_string(&mut buf).map_err(|e| e.to_string())?;
        buf
    } else {
        read(ops_path)?
    };
    let ops = xmlsec::server::parse_update_ops(&ops_text)?;
    let request = ClientRequest {
        user: Some((user.to_string(), "-".to_string())),
        ip: o.one("ip")?.to_string(),
        sym: o.one("host")?.to_string(),
        uri: uri.to_string(),
    };
    let touched = server.update(&request, &ops).map_err(|e| e.to_string())?;
    let repo = server.repository();
    let committed = repo.document(uri).ok_or("document vanished after commit")?;
    println!("{}", committed.xml);
    eprintln!("updated {touched} node(s) in {} op(s)", ops.len());
    Ok(())
}

fn cmd_validate(o: &Opts) -> Result<(), String> {
    let doc = parse(&read(o.one("doc")?)?).map_err(|e| e.to_string())?;
    let dtd = parse_dtd(&read(o.one("dtd")?)?).map_err(|e| e.to_string())?;
    // --strict additionally reports content models violating the XML 1.0
    // determinism rule.
    let validator = xmlsec::dtd::Validator::with_options(
        &dtd,
        xmlsec::dtd::ValidateOptions { check_determinism: o.flag("strict") },
    );
    let errs = validator.validate(&doc);
    if errs.is_empty() {
        println!("valid");
        Ok(())
    } else {
        for e in &errs {
            println!("{e}");
        }
        Err(format!("{} validity violations", errs.len()))
    }
}

fn cmd_loosen(o: &Opts) -> Result<(), String> {
    let dtd = parse_dtd(&read(o.one("dtd")?)?).map_err(|e| e.to_string())?;
    print!("{}", serialize_dtd(&loosen(&dtd)));
    Ok(())
}

fn cmd_tree(o: &Opts) -> Result<(), String> {
    if let Some(doc_path) = o.opt("doc") {
        let doc = parse(&read(doc_path)?).map_err(|e| e.to_string())?;
        print!("{}", render_tree(&doc));
        return Ok(());
    }
    let dtd = parse_dtd(&read(o.one("dtd")?)?).map_err(|e| e.to_string())?;
    let root = match o.opt("root") {
        Some(r) => r.to_string(),
        None => dtd
            .root_candidates()
            .first()
            .ok_or("cannot infer a root element; pass --root")?
            .to_string(),
    };
    let tree = xmlsec::dtd::dtd_tree(&dtd, &root)
        .ok_or_else(|| format!("element {root:?} is not declared"))?;
    print!("{}", xmlsec::dtd::render_dtd_tree(&tree));
    Ok(())
}

fn cmd_xpath(o: &Opts) -> Result<(), String> {
    let doc = parse(&read(o.one("doc")?)?).map_err(|e| e.to_string())?;
    let path = parse_path(o.one("expr")?).map_err(|e| e.to_string())?;
    for n in select(&doc, &path) {
        if doc.is_attribute(n) {
            println!("{}", doc.attr_value(n).unwrap_or_default());
        } else {
            println!("{}", xmlsec::xml::serialize_node(&doc, n));
        }
    }
    Ok(())
}

/// A numeric flag, absent if not given, an error if not a number.
fn parse_num<T: std::str::FromStr>(o: &Opts, name: &str) -> Result<Option<T>, String> {
    match o.opt(name) {
        None => Ok(None),
        Some(v) => v.parse().map(Some).map_err(|_| format!("--{name} must be a number, got {v:?}")),
    }
}

/// Builds the labeling parallelism knob from `--par-threads` /
/// `--par-threshold`. `--par-threads 0` sizes the pool from the machine;
/// the default (flag absent) stays sequential.
fn parallelism_config(o: &Opts) -> Result<xmlsec::core::Parallelism, String> {
    let mut par = match parse_num::<usize>(o, "par-threads")? {
        None => xmlsec::core::Parallelism::sequential(),
        Some(0) => xmlsec::core::Parallelism::auto(),
        Some(n) => xmlsec::core::Parallelism::threads(n),
    };
    if let Some(t) = parse_num(o, "par-threshold")? {
        par = par.with_seq_threshold(t);
    }
    Ok(par)
}

/// Builds the HTTP pool configuration and per-request resource limits
/// for `serve` from the command line, starting from the defaults.
fn serve_config(
    o: &Opts,
) -> Result<(xmlsec::server::HttpConfig, xmlsec::core::ResourceLimits), String> {
    let mut cfg = xmlsec::server::HttpConfig::default();
    if let Some(n) = parse_num(o, "workers")? {
        cfg.workers = n;
    }
    if let Some(n) = parse_num(o, "backlog")? {
        cfg.backlog = n;
    }
    if let Some(ms) = parse_num(o, "read-timeout-ms")? {
        cfg.read_timeout = std::time::Duration::from_millis(ms);
    }
    if let Some(ms) = parse_num(o, "write-timeout-ms")? {
        cfg.write_timeout = std::time::Duration::from_millis(ms);
    }
    // End-to-end deadline per request; 0 turns the server-side deadline
    // off (clients can still send X-Request-Deadline).
    if let Some(ms) = parse_num::<u64>(o, "deadline-ms")? {
        cfg.request_deadline = (ms > 0).then(|| std::time::Duration::from_millis(ms));
    }
    match o.opt("shed-adaptive") {
        None | Some("on") => {}
        Some("off") => cfg.shed_adaptive = false,
        Some(other) => return Err(format!("--shed-adaptive must be on or off, got {other:?}")),
    }
    if let Some(ms) = parse_num(o, "shed-target-ms")? {
        cfg.shed_target = std::time::Duration::from_millis(ms);
    }
    if let Some(ms) = parse_num(o, "shed-interval-ms")? {
        cfg.shed_interval = std::time::Duration::from_millis(ms);
    }
    let mut limits = xmlsec::core::ResourceLimits::default();
    if let Some(n) = parse_num(o, "max-input-bytes")? {
        limits.xml.max_input_bytes = n;
    }
    if let Some(n) = parse_num(o, "max-depth")? {
        limits.xml.max_depth = n;
    }
    if let Some(n) = parse_num(o, "max-nodes")? {
        limits.xml.max_nodes = n;
    }
    if let Some(n) = parse_num(o, "max-entity-expansion")? {
        limits.xml.max_entity_expansion = n;
    }
    if let Some(n) = parse_num(o, "max-node-visits")? {
        limits.xpath.max_node_visits = n;
    }
    Ok((cfg, limits))
}

/// Applies `--cache-capacity N` to a server: `0` disables the view
/// cache entirely (every request recomputes), any other `N` bounds it.
fn apply_cache_capacity(
    server: xmlsec::server::SecureServer,
    o: &Opts,
) -> Result<xmlsec::server::SecureServer, String> {
    Ok(match parse_num(o, "cache-capacity")? {
        Some(0) => server.without_cache(),
        Some(n) => server.with_cache_capacity(n),
        None => server,
    })
}

/// Parses `serve --compile on|off` (policy compilation; default on).
fn compile_flag(o: &Opts) -> Result<bool, String> {
    match o.opt("compile") {
        None | Some("on") => Ok(true),
        Some("off") => Ok(false),
        Some(other) => Err(format!("--compile must be on or off, got {other:?}")),
    }
}

/// Parses `serve --transport pool|epoll` (front-end selection; default
/// is the portable blocking pool).
fn transport_flag(o: &Opts) -> Result<xmlsec::server::Transport, String> {
    match o.opt("transport") {
        None => Ok(xmlsec::server::Transport::default()),
        Some(t) => t.parse(),
    }
}

fn cmd_serve(o: &Opts) -> Result<(), String> {
    let (cfg, limits) = serve_config(o)?;
    let par = parallelism_config(o)?;
    let compile = compile_flag(o)?;
    let transport = transport_flag(o)?;
    // --site DIR loads a whole directory (documents, DTDs, XACLs,
    // _directory.txt, _credentials.txt) in one go.
    if let Some(site) = o.opt("site") {
        let (server, summary) =
            xmlsec::server::load_site(std::path::Path::new(site)).map_err(|e| e.to_string())?;
        let server = apply_cache_capacity(
            server.with_limits(limits).with_parallelism(par).with_compile(compile),
            o,
        )?;
        let addr = o.opt("addr").unwrap_or("127.0.0.1:8080");
        let demo = xmlsec::server::AnyDemo::start_with(transport, server, addr, cfg)
            .map_err(|e| e.to_string())?;
        eprintln!(
            "serving {} document(s), {} DTD(s), {} authorization(s) on http://{}",
            summary.documents.len(),
            summary.dtds.len(),
            summary.authorizations,
            demo.addr()
        );
        loop {
            std::thread::park();
        }
    }
    let mut dir = load_directory(o.opt("dir"))?;
    let mut base = xmlsec::authz::AuthorizationBase::new();
    for xacl_path in o.many("xacl") {
        let auths = parse_xacl(&read(xacl_path)?).map_err(|e| e.to_string())?;
        for a in &auths {
            if dir.kind(&a.subject.user_group).is_none() {
                let _ = dir.add_group(&a.subject.user_group);
            }
        }
        base.extend(auths);
    }
    let mut server = SecureServer::new(dir, base);
    for cred in o.many("cred") {
        let (u, p) = cred
            .split_once(':')
            .ok_or_else(|| format!("--cred must be user:pass, got {cred:?}"))?;
        server.register_credentials(u, p);
    }
    let xml = read(o.one("doc")?)?;
    let dtd_uri = o.opt("dtd-uri");
    if let Some(dtd_path) = o.opt("dtd") {
        let uri = dtd_uri.ok_or("--dtd requires --dtd-uri")?;
        server.repository_mut().put_dtd(uri, &read(dtd_path)?);
    }
    server.repository_mut().put_document(o.one("uri")?, &xml, dtd_uri);
    let server = apply_cache_capacity(
        server.with_limits(limits).with_parallelism(par).with_compile(compile),
        o,
    )?;

    let addr = o.opt("addr").unwrap_or("127.0.0.1:8080");
    let demo = xmlsec::server::AnyDemo::start_with(transport, server, addr, cfg)
        .map_err(|e| e.to_string())?;
    eprintln!(
        "serving on http://{} — try GET /{}?user=U&pass=P&ip=A&host=H (Ctrl-C to stop)",
        demo.addr(),
        o.one("uri")?
    );
    // Park the main thread; the accept loop runs until the process dies.
    loop {
        std::thread::park();
    }
}

/// Runs the pipeline (optionally `--repeat N` times) and dumps the
/// telemetry it produced: the span trace of the runs and a summary of
/// every metric series. `--prometheus` prints the raw exposition text
/// instead of the summary — byte-identical to the server's `/metrics`.
fn cmd_stats(o: &Opts) -> Result<(), String> {
    let xml = read(o.one("doc")?)?;
    let uri = o.one("uri")?;
    let mut dir = load_directory(o.opt("dir"))?;
    let user = o.one("user")?;
    let _ = dir.add_user(user);
    let mut base = AuthorizationBase::new();
    for xacl_path in o.many("xacl") {
        let auths = parse_xacl(&read(xacl_path)?).map_err(|e| e.to_string())?;
        for a in &auths {
            if dir.kind(&a.subject.user_group).is_none() {
                let _ = dir.add_group(&a.subject.user_group);
            }
        }
        base.extend(auths);
    }
    let dtd_text = o.opt("dtd").map(read).transpose()?;
    let policy = PolicyConfig {
        completeness: if o.flag("open") {
            CompletenessPolicy::Open
        } else {
            CompletenessPolicy::Closed
        },
        ..Default::default()
    };
    let par = parallelism_config(o)?;
    let processor = xmlsec::core::SecurityProcessor {
        directory: dir,
        authorizations: base,
        options: xmlsec::core::ProcessorOptions {
            policy,
            parallelism: par,
            compile: true,
            ..Default::default()
        },
        decisions: Some(std::sync::Arc::new(xmlsec::core::DecisionCache::new())),
        compiled: Some(std::sync::Arc::new(xmlsec::core::CompiledCache::new())),
    };
    let requester =
        Requester::new(user, o.one("ip")?, o.one("host")?).map_err(|e| e.to_string())?;
    let repeat: usize = match o.opt("repeat") {
        Some(n) => n.parse().map_err(|_| format!("--repeat must be a number, got {n:?}"))?,
        None => 1,
    };

    xmlsec::telemetry::trace::clear_recent_spans();
    for _ in 0..repeat.max(1) {
        processor
            .process(
                &AccessRequest { requester: requester.clone(), uri: uri.to_string() },
                &DocumentSource { xml: &xml, dtd: dtd_text.as_deref(), dtd_uri: o.opt("dtd-uri") },
            )
            .map_err(|e| e.to_string())?;
    }

    if o.flag("prometheus") {
        print!("{}", xmlsec::telemetry::global().render_prometheus());
        return Ok(());
    }
    println!("-- spans ({} run(s)) --", repeat.max(1));
    print!("{}", xmlsec::telemetry::trace::render_recent_spans());
    println!("-- metrics --");
    for s in xmlsec::telemetry::global().snapshot() {
        let labels = if s.labels.is_empty() {
            String::new()
        } else {
            let pairs: Vec<String> = s.labels.iter().map(|(k, v)| format!("{k}={v}")).collect();
            format!("{{{}}}", pairs.join(","))
        };
        match s.kind {
            "histogram" => {
                let count = s.value;
                let sum = s.sum.unwrap_or(0.0);
                let mean = if count > 0.0 { sum / count } else { 0.0 };
                println!("{}{labels}: count={count} mean={:.9}s total={:.9}s", s.name, mean, sum);
            }
            _ => println!("{}{labels}: {}", s.name, s.value),
        }
    }
    Ok(())
}

/// Prints the labeled tree (per-node final signs) for a requester — the
/// debugging view of the compute-view algorithm.
fn cmd_explain(o: &Opts) -> Result<(), String> {
    let xml = read(o.one("doc")?)?;
    let uri = o.one("uri")?;
    let mut dir = load_directory(o.opt("dir"))?;
    let user = o.one("user")?;
    let _ = dir.add_user(user);
    let mut base = AuthorizationBase::new();
    for xacl_path in o.many("xacl") {
        let auths = parse_xacl(&read(xacl_path)?).map_err(|e| e.to_string())?;
        for a in &auths {
            if dir.kind(&a.subject.user_group).is_none() {
                let _ = dir.add_group(&a.subject.user_group);
            }
        }
        base.extend(auths);
    }
    let requester =
        Requester::new(user, o.one("ip")?, o.one("host")?).map_err(|e| e.to_string())?;
    let doc = parse(&xml).map_err(|e| e.to_string())?;
    let axml = base.applicable(uri, &requester, &dir);
    println!("{} applicable instance-level authorizations:", axml.len());
    for a in &axml {
        println!("  {a}");
    }
    let labeling =
        xmlsec::core::label_document(&doc, &axml, &[], &dir, PolicyConfig::paper_default());
    print!("{}", xmlsec::core::render_labeled(&doc, &labeling));
    Ok(())
}

/// Escapes a string for inclusion in a JSON string literal.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_opt_usize(v: Option<usize>) -> String {
    v.map_or_else(|| "null".to_string(), |n| n.to_string())
}

fn json_opt_str(v: Option<&str>) -> String {
    v.map_or_else(|| "null".to_string(), json_str)
}

/// Parses a `--subject` spec `user[:ip[:host]]` (missing parts default
/// to `*`).
fn parse_subject_spec(spec: &str) -> Result<Subject, String> {
    let mut parts = spec.splitn(3, ':');
    let user = parts.next().unwrap_or("*");
    let ip = parts.next().unwrap_or("*");
    let host = parts.next().unwrap_or("*");
    Subject::new(user, ip, host).map_err(|e| format!("bad --subject {spec:?}: {e}"))
}

/// Whole-policy static analysis: per-authorization schema coverage (with
/// dead-path detection), per-subject decision tables over the DTD graph,
/// and policy-level findings. Exits nonzero when any error-class finding
/// is present.
fn cmd_analyze(o: &Opts) -> Result<(), String> {
    let dtd_path = o.positional_or(0, "dtd")?;
    let xacl_path = o.positional_or(1, "xacl")?;
    let dtd = parse_dtd(&read(dtd_path)?).map_err(|e| e.to_string())?;
    let auths = parse_xacl(&read(xacl_path)?).map_err(|e| e.to_string())?;
    let mut dir = load_directory(o.opt("dir"))?;
    // As in `view`: subjects an XACL names exist, even when no directory
    // file spells them out.
    for a in &auths {
        if dir.kind(&a.subject.user_group).is_none() {
            let _ = dir.add_group(&a.subject.user_group);
        }
    }
    let root = match o.opt("root") {
        Some(r) => r.to_string(),
        None => dtd
            .root_candidates()
            .first()
            .ok_or("cannot infer a root element; pass --root")?
            .to_string(),
    };
    let dtd_uri = o.opt("dtd-uri").map(str::to_string).unwrap_or_else(|| {
        std::path::Path::new(dtd_path)
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_else(|| dtd_path.to_string())
    });
    let policy = PolicyConfig {
        completeness: if o.flag("open") {
            CompletenessPolicy::Open
        } else {
            CompletenessPolicy::Closed
        },
        ..Default::default()
    };
    let subjects: Vec<Subject> = match o.opt("subjects").unwrap_or("closure") {
        "closure" => xmlsec::core::closure_subjects(&auths, &dir),
        "list" => {
            let specs = o.many("subject");
            if specs.is_empty() {
                return Err("--subjects list needs at least one --subject".to_string());
            }
            specs.iter().map(|s| parse_subject_spec(s)).collect::<Result<_, _>>()?
        }
        other => return Err(format!("--subjects must be closure or list, not {other:?}")),
    };

    if o.flag("writes") {
        return cmd_analyze_writes(o, &dtd, &auths, &dir, &root, &dtd_uri, policy, &subjects);
    }

    let coverage = xmlsec::core::analyze_against_schema(&dtd, &root, &auths);
    let mut findings = xmlsec::authz::lint_policy(&auths, &dir);
    findings.extend(xmlsec::core::coverage_findings(&dtd, &root, &auths));
    let report =
        xmlsec::core::analyze_policy(&dtd, &root, &dtd_uri, &auths, &dir, policy, &subjects);
    findings.extend(report.findings.iter().cloned());
    findings.sort_by(|a, b| a.severity.cmp(&b.severity).then_with(|| a.kind.cmp(&b.kind)));
    let (errors, warnings, infos) = xmlsec::authz::severity_counts(&findings);

    match o.opt("format").unwrap_or("human") {
        "human" => {
            println!(
                "policy analysis: root <{root}>, dtd-uri {dtd_uri:?}, {} authorization(s)",
                auths.len()
            );
            if report.skipped_non_read > 0 {
                println!(
                    "({} non-read authorization(s) excluded from decision tables)",
                    report.skipped_non_read
                );
            }
            println!("\ncoverage:");
            for entry in &coverage {
                println!("{}", entry.authorization);
                if entry.covers.is_empty() {
                    println!("    !! DEAD PATH: selects nothing on any instance");
                } else {
                    for c in &entry.covers {
                        println!("    covers {c}");
                    }
                }
            }
            for t in &report.subjects {
                println!("\ndecision table {}:", t.subject);
                let width =
                    t.cells.iter().map(|c| c.node.to_string().chars().count()).max().unwrap_or(0);
                for c in &t.cells {
                    let node = c.node.to_string();
                    let pad = " ".repeat(width.saturating_sub(node.chars().count()));
                    match &c.verdict {
                        xmlsec::core::Verdict::Instance { reason } => {
                            println!(
                                "    {node}{pad}  {:6}  {} ({reason})",
                                c.signs,
                                c.verdict.code()
                            );
                        }
                        v => println!("    {node}{pad}  {:6}  {}", c.signs, v.code()),
                    }
                }
            }
            if !findings.is_empty() {
                println!("\nfindings:");
                for f in &findings {
                    println!("  {f}");
                }
            }
            println!("\nsummary: {errors} error(s), {warnings} warning(s), {infos} info(s)");
        }
        "json" => {
            let mut out = String::from("{\n");
            out.push_str("  \"schema_version\": 1,\n");
            out.push_str(&format!("  \"root\": {},\n", json_str(&root)));
            out.push_str(&format!("  \"dtd_uri\": {},\n", json_str(&dtd_uri)));
            out.push_str(&format!("  \"authorizations\": {},\n", auths.len()));
            out.push_str(&format!("  \"skipped_non_read\": {},\n", report.skipped_non_read));
            out.push_str("  \"coverage\": [\n");
            let cov_rows: Vec<String> = coverage
                .iter()
                .enumerate()
                .map(|(i, entry)| {
                    let covers: Vec<String> =
                        entry.covers.iter().map(|c| json_str(&c.to_string())).collect();
                    format!(
                        "    {{\"auth\": {i}, \"dead\": {}, \"covers\": [{}]}}",
                        entry.covers.is_empty(),
                        covers.join(", ")
                    )
                })
                .collect();
            out.push_str(&cov_rows.join(",\n"));
            out.push_str("\n  ],\n  \"subjects\": [\n");
            let subj_rows: Vec<String> = report
                .subjects
                .iter()
                .map(|t| {
                    let cells: Vec<String> = t
                        .cells
                        .iter()
                        .map(|c| {
                            let reason = match &c.verdict {
                                xmlsec::core::Verdict::Instance { reason } => {
                                    json_str(reason)
                                }
                                _ => "null".to_string(),
                            };
                            format!(
                                "      {{\"node\": {}, \"signs\": {}, \"verdict\": {}, \"reason\": {reason}}}",
                                json_str(&c.node.to_string()),
                                json_str(&c.signs),
                                json_str(c.verdict.code()),
                            )
                        })
                        .collect();
                    format!(
                        "    {{\"subject\": {}, \"cells\": [\n{}\n    ]}}",
                        json_str(&t.subject.to_string()),
                        cells.join(",\n")
                    )
                })
                .collect();
            out.push_str(&subj_rows.join(",\n"));
            out.push_str("\n  ],\n  \"findings\": [\n");
            let finding_rows: Vec<String> = findings
                .iter()
                .map(|f| {
                    format!(
                        "    {{\"severity\": {}, \"kind\": {}, \"auth\": {}, \"other_auth\": {}, \"node\": {}, \"subject\": {}, \"message\": {}}}",
                        json_str(f.severity.as_str()),
                        json_str(&f.kind),
                        json_opt_usize(f.span.auth),
                        json_opt_usize(f.span.other_auth),
                        json_opt_str(f.span.node.as_deref()),
                        json_opt_str(f.span.subject.as_deref()),
                        json_str(&f.message),
                    )
                })
                .collect();
            out.push_str(&finding_rows.join(",\n"));
            out.push_str(&format!(
                "\n  ],\n  \"summary\": {{\"errors\": {errors}, \"warnings\": {warnings}, \"infos\": {infos}}}\n}}"
            ));
            println!("{out}");
        }
        other => return Err(format!("--format must be human or json, not {other:?}")),
    }
    if errors > 0 {
        Err(format!("{errors} error-class finding(s)"))
    } else {
        Ok(())
    }
}

/// `analyze --writes` — the write-effect half of the static analyzer:
/// per-subject write decision tables over the DTD graph (node-level
/// write verdict plus per-update-op verdicts) and whole-policy findings
/// (write-only regions, unwritable documents, patch amplification).
/// Exits nonzero when any error-class finding is present.
#[allow(clippy::too_many_arguments)]
fn cmd_analyze_writes(
    o: &Opts,
    dtd: &xmlsec::dtd::Dtd,
    auths: &[xmlsec::authz::Authorization],
    dir: &Directory,
    root: &str,
    dtd_uri: &str,
    policy: PolicyConfig,
    subjects: &[Subject],
) -> Result<(), String> {
    let report =
        xmlsec::core::analyze_policy_writes(dtd, root, dtd_uri, auths, dir, policy, subjects);
    let mut findings = report.findings.clone();
    findings.sort_by(|a, b| a.severity.cmp(&b.severity).then_with(|| a.kind.cmp(&b.kind)));
    let (errors, warnings, infos) = xmlsec::authz::severity_counts(&findings);

    match o.opt("format").unwrap_or("human") {
        "human" => {
            println!(
                "write-effect analysis: root <{root}>, dtd-uri {dtd_uri:?}, {} authorization(s)",
                auths.len()
            );
            if report.skipped_non_write > 0 {
                println!(
                    "({} non-write authorization(s) excluded from write tables)",
                    report.skipped_non_write
                );
            }
            for t in &report.subjects {
                println!("\nwrite table {}:", t.subject);
                if t.blanket_allow {
                    println!("    blanket allow: every batch is guaranteed-allow on any tree");
                }
                let width =
                    t.cells.iter().map(|c| c.node.to_string().chars().count()).max().unwrap_or(0);
                for c in &t.cells {
                    let node = c.node.to_string();
                    let pad = " ".repeat(width.saturating_sub(node.chars().count()));
                    let ops: Vec<String> =
                        c.ops.iter().map(|(op, v)| format!("{op}={}", v.code())).collect();
                    match &c.write {
                        xmlsec::core::Verdict::Instance { reason } => println!(
                            "    {node}{pad}  {:6}  {}  [{}] ({reason})",
                            c.signs,
                            c.write.code(),
                            ops.join(" "),
                        ),
                        v => println!(
                            "    {node}{pad}  {:6}  {}  [{}]",
                            c.signs,
                            v.code(),
                            ops.join(" "),
                        ),
                    }
                }
            }
            if !findings.is_empty() {
                println!("\nfindings:");
                for f in &findings {
                    println!("  {f}");
                }
            }
            println!("\nsummary: {errors} error(s), {warnings} warning(s), {infos} info(s)");
        }
        "json" => {
            let mut out = String::from("{\n");
            out.push_str("  \"schema_version\": 1,\n");
            out.push_str(&format!("  \"root\": {},\n", json_str(root)));
            out.push_str(&format!("  \"dtd_uri\": {},\n", json_str(dtd_uri)));
            out.push_str(&format!("  \"authorizations\": {},\n", auths.len()));
            out.push_str(&format!("  \"skipped_non_write\": {},\n", report.skipped_non_write));
            out.push_str("  \"subjects\": [\n");
            let subj_rows: Vec<String> = report
                .subjects
                .iter()
                .map(|t| {
                    let cells: Vec<String> = t
                        .cells
                        .iter()
                        .map(|c| {
                            let reason = match &c.write {
                                xmlsec::core::Verdict::Instance { reason } => json_str(reason),
                                _ => "null".to_string(),
                            };
                            let ops: Vec<String> = c
                                .ops
                                .iter()
                                .map(|(op, v)| format!("{}: {}", json_str(op), json_str(v.code())))
                                .collect();
                            format!(
                                "      {{\"node\": {}, \"signs\": {}, \"write\": {}, \"reason\": {reason}, \"ops\": {{{}}}}}",
                                json_str(&c.node.to_string()),
                                json_str(&c.signs),
                                json_str(c.write.code()),
                                ops.join(", "),
                            )
                        })
                        .collect();
                    format!(
                        "    {{\"subject\": {}, \"blanket_allow\": {}, \"cells\": [\n{}\n    ]}}",
                        json_str(&t.subject.to_string()),
                        t.blanket_allow,
                        cells.join(",\n")
                    )
                })
                .collect();
            out.push_str(&subj_rows.join(",\n"));
            out.push_str("\n  ],\n  \"findings\": [\n");
            let finding_rows: Vec<String> = findings
                .iter()
                .map(|f| {
                    format!(
                        "    {{\"severity\": {}, \"kind\": {}, \"auth\": {}, \"other_auth\": {}, \"node\": {}, \"subject\": {}, \"message\": {}}}",
                        json_str(f.severity.as_str()),
                        json_str(&f.kind),
                        json_opt_usize(f.span.auth),
                        json_opt_usize(f.span.other_auth),
                        json_opt_str(f.span.node.as_deref()),
                        json_opt_str(f.span.subject.as_deref()),
                        json_str(&f.message),
                    )
                })
                .collect();
            out.push_str(&finding_rows.join(",\n"));
            out.push_str(&format!(
                "\n  ],\n  \"summary\": {{\"errors\": {errors}, \"warnings\": {warnings}, \"infos\": {infos}}}\n}}"
            ));
            println!("{out}");
        }
        other => return Err(format!("--format must be human or json, not {other:?}")),
    }
    if errors > 0 {
        Err(format!("{errors} error-class finding(s)"))
    } else {
        Ok(())
    }
}

/// Compiles one requester's applicable policy against a DTD into the
/// runtime verdict table (see `xmlsec::core::compile`) and dumps it:
/// per-cell abstract signs and verdict, the statically-known concrete
/// sign when the cell is fast-path eligible, the residual instance
/// checks, and the whole-document fast-path flag.
fn cmd_compile(o: &Opts) -> Result<(), String> {
    let dtd_path = o.positional_or(0, "dtd")?;
    let xacl_path = o.positional_or(1, "xacl")?;
    let dtd = parse_dtd(&read(dtd_path)?).map_err(|e| e.to_string())?;
    let auths = parse_xacl(&read(xacl_path)?).map_err(|e| e.to_string())?;
    let mut dir = load_directory(o.opt("dir"))?;
    for a in &auths {
        if dir.kind(&a.subject.user_group).is_none() {
            let _ = dir.add_group(&a.subject.user_group);
        }
    }
    let user = o.one("user")?;
    let _ = dir.add_user(user);
    let requester =
        Requester::new(user, o.one("ip")?, o.one("host")?).map_err(|e| e.to_string())?;
    let root = match o.opt("root") {
        Some(r) => r.to_string(),
        None => dtd
            .root_candidates()
            .first()
            .ok_or("cannot infer a root element; pass --root")?
            .to_string(),
    };
    let dtd_uri = o.opt("dtd-uri").map(str::to_string).unwrap_or_else(|| {
        std::path::Path::new(dtd_path)
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_else(|| dtd_path.to_string())
    });
    let policy = PolicyConfig {
        completeness: if o.flag("open") {
            CompletenessPolicy::Open
        } else {
            CompletenessPolicy::Closed
        },
        ..Default::default()
    };
    // Resolve the requester's applicable read sets exactly as the
    // processor does: instance-level against --doc-uri (none means no
    // instance authorizations apply), schema-level against the DTD URI.
    let mut base = AuthorizationBase::new();
    base.extend(auths);
    let axml = match o.opt("doc-uri") {
        Some(u) => base.applicable_for_action(u, &requester, &dir, xmlsec::authz::Action::Read),
        None => Vec::new(),
    };
    let adtd = base.applicable_for_action(&dtd_uri, &requester, &dir, xmlsec::authz::Action::Read);
    let cp = xmlsec::core::compile(&dtd, &root, &axml, &adtd, &dir, policy)
        .map_err(|e| e.to_string())?;

    let allow = cp.count_verdict("allow");
    let deny = cp.count_verdict("deny");
    let dependent = cp.count_verdict("instance-dependent");
    // (element, attribute, cell) rows in table order; None attribute =
    // the element's own cell.
    let rows: Vec<(&str, Option<&str>, &xmlsec::core::CompiledCell)> = cp
        .elements
        .iter()
        .map(|(e, c)| (e.as_str(), None, c))
        .chain(
            cp.attributes
                .iter()
                .flat_map(|(e, m)| m.iter().map(move |(a, c)| (e.as_str(), Some(a.as_str()), c))),
        )
        .collect();
    let node_name = |e: &str, a: Option<&str>| match a {
        None => format!("<{e}>"),
        Some(a) => format!("<{e}>/@{a}"),
    };

    match o.opt("format").unwrap_or("human") {
        "human" => {
            println!("compiled policy: root <{root}>, dtd-uri {dtd_uri:?}, requester {requester}",);
            println!(
                "applicable: {} instance-level, {} schema-level authorization(s)",
                axml.len(),
                adtd.len()
            );
            println!(
                "cells: {} = {allow} allow, {deny} deny, {dependent} instance-dependent",
                cp.cell_count()
            );
            println!("fast path: {}", if cp.fast_path { "yes" } else { "no" });
            println!("\nverdict table:");
            let width =
                rows.iter().map(|(e, a, _)| node_name(e, *a).chars().count()).max().unwrap_or(0);
            for (e, a, c) in &rows {
                let node = node_name(e, *a);
                let pad = " ".repeat(width.saturating_sub(node.chars().count()));
                let sign = match c.representative() {
                    Some(s) => format!("  sign={}", s.symbol()),
                    None => String::new(),
                };
                let exact = if c.is_exact() { "  exact" } else { "" };
                match &c.verdict {
                    xmlsec::core::Verdict::Instance { reason } => {
                        println!("    {node}{pad}  {:6}  {} ({reason})", c.signs, c.verdict.code());
                    }
                    v => println!("    {node}{pad}  {:6}  {}{sign}{exact}", c.signs, v.code()),
                }
            }
            if !cp.residual.is_empty() {
                println!("\nresidual instance checks:");
                for r in &cp.residual {
                    println!("    {}: {}", r.node, r.reason);
                }
            }
        }
        "json" => {
            let mut out = String::from("{\n");
            out.push_str("  \"schema_version\": 1,\n");
            out.push_str(&format!("  \"root\": {},\n", json_str(&root)));
            out.push_str(&format!("  \"dtd_uri\": {},\n", json_str(&dtd_uri)));
            out.push_str(&format!("  \"doc_uri\": {},\n", json_opt_str(o.opt("doc-uri"))));
            out.push_str(&format!("  \"requester\": {},\n", json_str(&requester.to_string())));
            out.push_str(&format!("  \"applicable_instance\": {},\n", axml.len()));
            out.push_str(&format!("  \"applicable_schema\": {},\n", adtd.len()));
            out.push_str(&format!("  \"fast_path\": {},\n", cp.fast_path));
            out.push_str(&format!(
                "  \"cells\": {{\"total\": {}, \"allow\": {allow}, \"deny\": {deny}, \"instance_dependent\": {dependent}}},\n",
                cp.cell_count()
            ));
            out.push_str("  \"table\": [\n");
            let cell_rows: Vec<String> = rows
                .iter()
                .map(|(e, a, c)| {
                    let reason = match &c.verdict {
                        xmlsec::core::Verdict::Instance { reason } => json_str(reason),
                        _ => "null".to_string(),
                    };
                    let sign = json_opt_str(
                        c.representative().map(|s| s.symbol().to_string()).as_deref(),
                    );
                    format!(
                        "    {{\"element\": {}, \"attribute\": {}, \"signs\": {}, \"verdict\": {}, \"reason\": {reason}, \"sign\": {sign}, \"exact\": {}}}",
                        json_str(e),
                        json_opt_str(*a),
                        json_str(&c.signs.to_string()),
                        json_str(c.verdict.code()),
                        c.is_exact(),
                    )
                })
                .collect();
            out.push_str(&cell_rows.join(",\n"));
            out.push_str("\n  ],\n  \"residual\": [\n");
            let res_rows: Vec<String> = cp
                .residual
                .iter()
                .map(|r| {
                    format!(
                        "    {{\"node\": {}, \"reason\": {}}}",
                        json_str(&r.node.to_string()),
                        json_str(&r.reason)
                    )
                })
                .collect();
            out.push_str(&res_rows.join(",\n"));
            out.push_str("\n  ]\n}");
            println!("{out}");
        }
        other => return Err(format!("--format must be human or json, not {other:?}")),
    }
    Ok(())
}

/// Administrative consistency checks on an XACL: unknown subjects,
/// duplicates, shadowed authorizations, contradictions.
fn cmd_lint(o: &Opts) -> Result<(), String> {
    let auths = parse_xacl(&read(o.one("xacl")?)?).map_err(|e| e.to_string())?;
    let dir = load_directory(o.opt("dir"))?;
    let findings = xmlsec::authz::lint_policy(&auths, &dir);
    if findings.is_empty() {
        println!("clean: {} authorizations, no findings", auths.len());
        return Ok(());
    }
    for f in &findings {
        println!("{f}");
    }
    Err(format!("{} finding(s)", findings.len()))
}

fn cmd_xacl(o: &Opts) -> Result<(), String> {
    let auths = parse_xacl(&read(o.one("xacl")?)?).map_err(|e| e.to_string())?;
    println!("{} authorizations:", auths.len());
    for a in &auths {
        println!("  {a}");
    }
    Ok(())
}
