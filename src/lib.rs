//! # xmlsec — *Securing XML Documents* (EDBT 2000) in Rust
//!
//! A complete, from-scratch implementation of the access-control model of
//! Damiani, De Capitani di Vimercati, Paraboschi and Samarati, *Securing
//! XML Documents*, EDBT 2000 — including every substrate the paper
//! depends on: an XML 1.0 parser and DOM, a DTD engine with validation
//! and the §6.2 *loosening* transformation, an XPath subset for
//! authorization objects, the authorization-subject hierarchy, XACL
//! authorization markup, the **compute-view** labeling/pruning algorithm,
//! and a server-side security processor.
//!
//! This crate is a facade: each subsystem lives in its own crate and is
//! re-exported here under a short name.
//!
//! ```
//! use xmlsec::prelude::*;
//!
//! // The paper's running example: Tom, a Foreign member connecting from
//! // an .it host, asks for the CSlab document.
//! let dir = xmlsec::workload::laboratory::lab_directory();
//! let base = xmlsec::workload::laboratory::lab_authorization_base();
//! let processor = SecurityProcessor::new(dir, base);
//! let request = AccessRequest {
//!     requester: xmlsec::workload::laboratory::tom(),
//!     uri: xmlsec::workload::laboratory::CSLAB_URI.to_string(),
//! };
//! let source = DocumentSource {
//!     xml: xmlsec::workload::laboratory::CSLAB_XML,
//!     dtd: Some(xmlsec::workload::laboratory::LAB_DTD),
//!     dtd_uri: Some(xmlsec::workload::laboratory::LAB_DTD_URI),
//! };
//! let out = processor.process(&request, &source).unwrap();
//! assert!(out.xml.contains("Querying XML"));        // public paper: visible
//! assert!(!out.xml.contains("Engine Internals"));   // private paper: pruned
//! ```

/// Authorizations: 5-tuples, XACL markup, policies, the base.
pub use xmlsec_authz as authz;
/// The compute-view algorithm and the security processor.
pub use xmlsec_core as core;
/// DTD substrate: parsing, validation, loosening, DTD trees.
pub use xmlsec_dtd as dtd;
/// The secure document server.
pub use xmlsec_server as server;
/// Subjects: users, groups, location patterns, the ASH hierarchy.
pub use xmlsec_subjects as subjects;
/// Tracing + metrics: spans, counters, histograms, /metrics exposition.
pub use xmlsec_telemetry as telemetry;
/// Corpora and generators for tests/benches.
pub use xmlsec_workload as workload;
/// XML 1.0 substrate: tokenizer, parser, DOM, serializer.
pub use xmlsec_xml as xml;
/// XPath subset for authorization objects.
pub use xmlsec_xpath as xpath;

/// The names most programs need.
pub mod prelude {
    pub use xmlsec_authz::{
        parse_xacl, serialize_xacl, AuthType, Authorization, AuthorizationBase, CompletenessPolicy,
        ConflictResolution, ObjectSpec, PolicyConfig, Sign,
    };
    pub use xmlsec_core::{compute_view, AccessRequest, DocumentSource, SecurityProcessor, Sign3};
    pub use xmlsec_dtd::{loosen, parse_dtd, serialize_dtd, Dtd};
    pub use xmlsec_server::{ClientRequest, ConditionalOutcome, SecureServer, ServerError};
    pub use xmlsec_subjects::{Directory, Requester, Subject};
    pub use xmlsec_xml::{parse, render_tree, serialize, Document, SerializeOptions};
    pub use xmlsec_xpath::{parse_path, select};
}
