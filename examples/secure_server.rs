//! The secure document server (paper §7): repository, authentication,
//! per-request view computation, the shared-view cache, and the audit
//! log — serving the bank-statements corpus.
//!
//! Run with: `cargo run --example secure_server`

use xmlsec::prelude::*;
use xmlsec::workload::financial::*;

fn main() {
    // Stand the server up.
    let mut server = SecureServer::new(bank_directory(), bank_authorization_base());
    server.register_credentials("tina", "teller-pw");
    server.register_credentials("axel", "auditor-pw");
    server.register_credentials("fred", "fraud-pw");
    server.repository_mut().put_dtd(BANK_DTD_URI, BANK_DTD);
    server
        .repository_mut()
        .put_document(STATEMENTS_URI, STATEMENTS_XML, Some(BANK_DTD_URI));

    let req = |user: Option<(&str, &str)>, ip: &str, sym: &str| ClientRequest {
        user: user.map(|(u, p)| (u.to_string(), p.to_string())),
        ip: ip.to_string(),
        sym: sym.to_string(),
        uri: STATEMENTS_URI.to_string(),
    };

    // A teller at a branch, the same teller at home, an auditor, the
    // fraud desk, a bad login, and a repeat request that hits the cache.
    let calls: Vec<(&str, ClientRequest)> = vec![
        ("tina@branch", req(Some(("tina", "teller-pw")), "10.1.4.20", "t1.branch.bank.com")),
        ("tina@home", req(Some(("tina", "teller-pw")), "89.12.3.4", "dsl.example.net")),
        ("axel (auditor)", req(Some(("axel", "auditor-pw")), "10.9.9.9", "hq.bank.com")),
        ("fred (fraud desk)", req(Some(("fred", "fraud-pw")), "172.16.0.3", "desk.bank.com")),
        ("tina, wrong password", req(Some(("tina", "oops")), "10.1.4.20", "t1.branch.bank.com")),
        ("tina@branch again", req(Some(("tina", "teller-pw")), "10.1.4.21", "t2.branch.bank.com")),
    ];

    for (who, r) in calls {
        match server.handle(&r) {
            Ok(resp) => {
                println!(
                    "-- {who}{}:\n{}\n",
                    if resp.cached { " [cache hit]" } else { "" },
                    resp.xml
                );
            }
            Err(e) => println!("-- {who}: DENIED ({e})\n"),
        }
    }

    let (hits, misses) = server.cache_stats();
    println!("cache: {hits} hits / {misses} misses");
    println!("\naudit log:");
    for r in server.audit.records() {
        println!("  {r}");
    }

    // The second branch request (same applicable set, different host
    // within the pattern) must have hit the cache.
    assert_eq!(hits, 1);
    assert!(server.audit.len() >= 6);
}
