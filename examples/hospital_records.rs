//! Hospital records: role-based views over one ward document — nurses,
//! psychiatrists, general physicians, and administration each see a
//! different projection, driven entirely by schema-level authorizations
//! (every ward document of the hospital inherits them).
//!
//! Run with: `cargo run --example hospital_records`

use xmlsec::prelude::*;
use xmlsec::workload::hospital::*;

fn main() {
    let dir = hospital_directory();
    let base = hospital_authorization_base();
    let doc = parse(WARD_XML).expect("ward document");

    println!("== ward document ==\n{}", render_tree(&doc));
    println!(
        "== protection requirements (XACL) ==\n{}",
        serialize_xacl(&hospital_authorizations())
    );

    for (user, role) in [
        ("nina", "nurse"),
        ("hale", "general physician"),
        ("weiss", "psychiatrist"),
        ("omar", "administration"),
    ] {
        let rq = Requester::new(user, "10.0.0.7", "ws.hospital.org").expect("requester");
        let adtd = base.applicable(HOSPITAL_DTD_URI, &rq, &dir);
        let (view, stats) = compute_view(&doc, &[], &adtd, &dir, PolicyConfig::paper_default());
        println!(
            "---- {user} ({role}): {}/{} nodes visible ----",
            stats.granted_nodes, stats.labeled_nodes
        );
        println!("{}", serialize(&view, &SerializeOptions::pretty()));
    }

    // The invariants the scenario encodes:
    let check = |user: &str| {
        let rq = Requester::new(user, "10.0.0.7", "ws.hospital.org").unwrap();
        let adtd = base.applicable(HOSPITAL_DTD_URI, &rq, &dir);
        let (view, _) = compute_view(&doc, &[], &adtd, &dir, PolicyConfig::paper_default());
        serialize(&view, &SerializeOptions::canonical())
    };
    assert!(!check("nina").contains("Anxiety"), "nurses must not see psychiatric notes");
    assert!(check("weiss").contains("Anxiety"), "psychiatrists must");
    assert!(!check("hale").contains("Anxiety"), "general physicians must not");
    assert!(check("omar").contains("X-ray"), "administration sees billing");
    assert!(!check("nina").contains("X-ray"), "clinical staff do not");
    println!("all role invariants hold ✓");
}
