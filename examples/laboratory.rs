//! The paper's running example, end to end: Figure 1's DTD, Figure 3's
//! CSlab document, Example 1's authorizations, and Example 2's requester
//! Tom — printing each artifact the way the paper draws it.
//!
//! Run with: `cargo run --example laboratory`

use xmlsec::prelude::*;
use xmlsec::workload::laboratory::*;

fn main() {
    // --- Figure 1: the DTD and its tree --------------------------------
    let dtd = parse_dtd(LAB_DTD).expect("Figure 1(a) DTD");
    println!("== Figure 1(a): laboratory DTD ==\n{}", serialize_dtd(&dtd));
    let tree = xmlsec::dtd::dtd_tree(&dtd, "laboratory").expect("declared root");
    println!("== Figure 1(b): DTD tree ==\n{}", xmlsec::dtd::render_dtd_tree(&tree));

    // --- Figure 3(a): the document --------------------------------------
    let doc = parse(CSLAB_XML).expect("CSlab.xml");
    println!("== Figure 3(a): CSlab.xml tree ==\n{}", render_tree(&doc));

    // --- Example 1: the authorizations ----------------------------------
    println!("== Example 1: access authorizations ==");
    for a in example1_authorizations() {
        println!("  {a}");
    }

    // --- Example 2: Tom's request ---------------------------------------
    let requester = tom();
    println!("\n== Example 2: requester {requester} ==");

    let dir = lab_directory();
    let base = lab_authorization_base();
    let axml = base.applicable(CSLAB_URI, &requester, &dir);
    let adtd = base.applicable(LAB_DTD_URI, &requester, &dir);
    println!("applicable: {} instance-level, {} schema-level", axml.len(), adtd.len());

    // The labeling (the signs Figure 3(b) visualizes)…
    let labeling =
        xmlsec::core::label_document(&doc, &axml, &adtd, &dir, PolicyConfig::paper_default());
    println!(
        "\n== labeled tree (final signs) ==\n{}",
        xmlsec::core::render_labeled(&doc, &labeling)
    );

    // …and the full processor pipeline.
    let processor = SecurityProcessor::new(dir, base);
    let out = processor
        .process(
            &AccessRequest { requester, uri: CSLAB_URI.to_string() },
            &DocumentSource { xml: CSLAB_XML, dtd: Some(LAB_DTD), dtd_uri: Some(LAB_DTD_URI) },
        )
        .expect("pipeline");

    println!("== Figure 3(b): Tom's view ==\n{}", render_tree(&out.view));
    println!("== unparsed view ==\n{}", out.xml);
    println!("== loosened DTD shipped with it ==\n{}", out.loosened_dtd.as_deref().unwrap());

    let expected = parse(TOM_VIEW_XML).unwrap();
    assert!(out.view.structurally_equal(&expected), "must match the reproduced Figure 3(b)");
    println!("view matches the reproduced Figure 3(b) ✓");
}
