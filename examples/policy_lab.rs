//! Policy laboratory: the same document and conflicting authorization
//! set evaluated under every §5 conflict-resolution policy and both §6.2
//! completeness policies — a 6×2 matrix of outcomes.
//!
//! Run with: `cargo run --example policy_lab`

use xmlsec::authz::Authorization;
use xmlsec::prelude::*;

fn main() {
    let doc = parse(
        r#"<dossier>
             <public>open data</public>
             <internal>working notes</internal>
             <secret>codeword material</secret>
           </dossier>"#,
    )
    .expect("well-formed");

    let mut dir = Directory::new();
    dir.add_user("kim").unwrap();
    for g in ["Analysts", "Contractors"] {
        dir.add_group(g).unwrap();
    }
    dir.add_member("kim", "Analysts").unwrap();
    dir.add_member("kim", "Contractors").unwrap();

    // kim is in two incomparable groups with conflicting opinions about
    // the dossier, plus a user-specific carve-in on <public> and an
    // explicit denial on <secret>.
    let auths = vec![
        Authorization::new(
            Subject::new("Analysts", "*", "*").unwrap(),
            ObjectSpec::with_path("dossier.xml", "/dossier").unwrap(),
            Sign::Plus,
            AuthType::Recursive,
        ),
        Authorization::new(
            Subject::new("Contractors", "*", "*").unwrap(),
            ObjectSpec::with_path("dossier.xml", "/dossier").unwrap(),
            Sign::Minus,
            AuthType::Recursive,
        ),
        Authorization::new(
            Subject::new("kim", "*", "*").unwrap(),
            ObjectSpec::with_path("dossier.xml", "/dossier/public").unwrap(),
            Sign::Plus,
            AuthType::Recursive,
        ),
        Authorization::new(
            Subject::new("Analysts", "*", "*").unwrap(),
            ObjectSpec::with_path("dossier.xml", "/dossier/secret").unwrap(),
            Sign::Minus,
            AuthType::Recursive,
        ),
    ];
    let refs: Vec<&Authorization> = auths.iter().collect();

    println!("authorizations:");
    for a in &auths {
        println!("  {a}");
    }
    println!();

    let conflicts = [
        (
            "most-specific, then denials (paper default)",
            ConflictResolution::MostSpecificThenDenials,
        ),
        ("most-specific, then permissions", ConflictResolution::MostSpecificThenPermissions),
        ("denials take precedence", ConflictResolution::DenialsTakePrecedence),
        ("permissions take precedence", ConflictResolution::PermissionsTakePrecedence),
        ("nothing takes precedence", ConflictResolution::NothingTakesPrecedence),
        ("majority sign", ConflictResolution::MajoritySign),
    ];
    let completions = [("closed", CompletenessPolicy::Closed), ("open", CompletenessPolicy::Open)];

    for (cname, conflict) in conflicts {
        for (oname, completeness) in completions {
            let policy = PolicyConfig { conflict, completeness };
            let (view, _) = compute_view(&doc, &refs, &[], &dir, policy);
            println!(
                "{cname:45} | {oname:6} | {}",
                serialize(&view, &SerializeOptions::canonical())
            );
        }
    }

    // Spot checks on the matrix corners.
    let v = |conflict, completeness| {
        let (view, _) =
            compute_view(&doc, &refs, &[], &dir, PolicyConfig { conflict, completeness });
        serialize(&view, &SerializeOptions::canonical())
    };
    // kim's node-specific grant survives every policy: sign policies
    // resolve conflicts *among authorizations on the same node*; the
    // most-specific-object override of propagation always applies.
    assert!(v(ConflictResolution::MostSpecificThenDenials, CompletenessPolicy::Closed)
        .contains("open data"));
    assert!(v(ConflictResolution::DenialsTakePrecedence, CompletenessPolicy::Closed)
        .contains("open data"));
    // The root-level group conflict hides <internal> whenever denials can
    // win it, and reveals it whenever permissions do.
    assert!(!v(ConflictResolution::MostSpecificThenDenials, CompletenessPolicy::Closed)
        .contains("working notes"));
    assert!(v(ConflictResolution::PermissionsTakePrecedence, CompletenessPolicy::Closed)
        .contains("working notes"));
    // <secret> never survives a policy that respects specificity.
    assert!(!v(ConflictResolution::MostSpecificThenPermissions, CompletenessPolicy::Open)
        .contains("codeword"));
    println!("\nmatrix corner checks hold ✓");
}
