//! Quickstart: protect one document with two authorizations and compute
//! a requester's view.
//!
//! Run with: `cargo run --example quickstart`

use xmlsec::prelude::*;

fn main() {
    // 1. A document to protect.
    let doc = parse(
        r#"<memo importance="high">
             <to>staff</to>
             <body>All-hands on Friday.</body>
             <salary-data><row>alice: 1000</row></salary-data>
           </memo>"#,
    )
    .expect("well-formed XML");

    // 2. Who exists: users and groups at the server.
    let mut dir = Directory::new();
    dir.add_user("alice").unwrap();
    dir.add_group("Staff").unwrap();
    dir.add_member("alice", "Staff").unwrap();

    // 3. What they may see: grant the memo to Staff, carve out the
    //    salary table with a denial (an exception under the recursive
    //    grant — the paper's §5 pattern).
    let grant = Authorization::new(
        Subject::new("Staff", "*", "*").unwrap(),
        ObjectSpec::with_path("memo.xml", "/memo").unwrap(),
        Sign::Plus,
        AuthType::Recursive,
    );
    let carve_out = Authorization::new(
        Subject::new("Staff", "*", "*").unwrap(),
        ObjectSpec::with_path("memo.xml", "/memo/salary-data").unwrap(),
        Sign::Minus,
        AuthType::Recursive,
    );

    // 4. Compute the view.
    let (view, stats) =
        compute_view(&doc, &[&grant, &carve_out], &[], &dir, PolicyConfig::paper_default());

    println!("alice's view:\n{}", serialize(&view, &SerializeOptions::pretty()));
    println!(
        "{} of {} nodes granted, {} pruned",
        stats.granted_nodes, stats.labeled_nodes, stats.pruned_nodes
    );

    assert!(serialize(&view, &SerializeOptions::canonical()).contains("All-hands"));
    assert!(!serialize(&view, &SerializeOptions::canonical()).contains("salary"));
}
