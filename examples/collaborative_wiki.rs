//! The paper's §8 extensions in action: a team wiki where read views,
//! secure queries, and write/update operations are all gated by the same
//! authorization model.
//!
//! Run with: `cargo run --example collaborative_wiki`

use xmlsec::authz::Action;
use xmlsec::core::update::UpdateOp;
use xmlsec::prelude::*;

fn main() {
    // Directory: readers and editors, editors ⊆ readers.
    let mut dir = Directory::new();
    dir.add_user("rae").unwrap();
    dir.add_user("eli").unwrap();
    dir.add_group("Readers").unwrap();
    dir.add_group("Editors").unwrap();
    dir.add_member("Editors", "Readers").unwrap();
    dir.add_member("rae", "Readers").unwrap();
    dir.add_member("eli", "Editors").unwrap();

    // Authorizations: Readers read everything but drafts; Editors also
    // read drafts and may write pages and drafts.
    let mut base = AuthorizationBase::new();
    base.add(Authorization::new(
        Subject::new("Readers", "*", "*").unwrap(),
        ObjectSpec::with_path("wiki.xml", "/wiki").unwrap(),
        Sign::Plus,
        AuthType::Recursive,
    ));
    base.add(Authorization::new(
        Subject::new("Readers", "*", "*").unwrap(),
        ObjectSpec::with_path("wiki.xml", "/wiki/drafts").unwrap(),
        Sign::Minus,
        AuthType::Recursive,
    ));
    base.add(Authorization::new(
        Subject::new("Editors", "*", "*").unwrap(),
        ObjectSpec::with_path("wiki.xml", "/wiki/drafts").unwrap(),
        Sign::Plus,
        AuthType::Recursive,
    ));
    for section in ["/wiki/pages", "/wiki/drafts"] {
        base.add(
            Authorization::new(
                Subject::new("Editors", "*", "*").unwrap(),
                ObjectSpec::with_path("wiki.xml", section).unwrap(),
                Sign::Plus,
                AuthType::Recursive,
            )
            .with_action(Action::Write),
        );
    }

    let mut server = SecureServer::new(dir, base);
    server.register_credentials("rae", "pw");
    server.register_credentials("eli", "pw");
    server.repository_mut().put_document(
        "wiki.xml",
        r#"<wiki><pages><page title="Home">Welcome!</page></pages><drafts><page title="Roadmap">v2 plans…</page></drafts></wiki>"#,
        None,
    );

    let req = |user: &str| ClientRequest {
        user: Some((user.to_string(), "pw".to_string())),
        ip: "10.0.0.5".into(),
        sym: "dev.team.org".into(),
        uri: "wiki.xml".into(),
    };

    // Reads: rae can't see drafts, eli can.
    println!("rae reads:\n  {}", server.handle(&req("rae")).unwrap().xml);
    println!("eli reads:\n  {}", server.handle(&req("eli")).unwrap().xml);

    // Queries run against the requester's view.
    let rae_titles = server.query(&req("rae"), "//page/@title").unwrap();
    let eli_titles = server.query(&req("eli"), "//page/@title").unwrap();
    println!("\nrae queries //page/@title -> {:?}", rae_titles.matches);
    println!("eli queries //page/@title -> {:?}", eli_titles.matches);
    assert_eq!(rae_titles.matches, vec!["Home"]);
    assert_eq!(eli_titles.matches, vec!["Home", "Roadmap"]);

    // Updates: eli promotes the draft into pages (insert + set + delete),
    // rae's attempt to edit is refused.
    let denied = server.update(
        &req("rae"),
        &[UpdateOp::SetText { target: r#"//page[@title="Home"]"#.into(), text: "defaced".into() }],
    );
    println!("\nrae tries to edit Home -> {denied:?}");
    assert!(denied.is_err());

    // Update batches are atomic and resolved against the pre-update
    // document, so the freshly inserted page is addressed in a second
    // call.
    server
        .update(
            &req("eli"),
            &[UpdateOp::InsertElement { parent: "/wiki/pages".into(), name: "page".into() }],
        )
        .expect("eli may insert pages");
    server
        .update(
            &req("eli"),
            &[
                UpdateOp::SetAttribute {
                    target: "/wiki/pages/page[2]".into(),
                    name: "title".into(),
                    value: "Roadmap".into(),
                },
                UpdateOp::SetText {
                    target: "/wiki/pages/page[2]".into(),
                    text: "v2 plans…".into(),
                },
                UpdateOp::Delete { target: r#"/wiki/drafts/page[@title="Roadmap"]"#.into() },
            ],
        )
        .expect("eli may edit pages and drafts");

    println!("\nafter eli publishes the roadmap:");
    println!("rae reads:\n  {}", server.handle(&req("rae")).unwrap().xml);
    let rae_after = server.query(&req("rae"), "//page/@title").unwrap();
    println!("rae queries //page/@title -> {:?}", rae_after.matches);
    assert_eq!(rae_after.matches, vec!["Home", "Roadmap"]);

    println!("\naudit log:");
    for r in server.audit.records() {
        println!("  {r}");
    }
}
