//! Static auditing of an authorization base before deployment: lint the
//! XACL against the directory, then check every path's coverage against
//! the DTD — dead paths and shadowed rules are caught without touching a
//! single document.
//!
//! Run with: `cargo run --example static_audit`

use xmlsec::authz::{lint_policy, Authorization};
use xmlsec::core::analyze_against_schema;
use xmlsec::prelude::*;
use xmlsec::workload::laboratory::{lab_directory, LAB_DTD};

fn main() {
    let dtd = parse_dtd(LAB_DTD).expect("laboratory DTD");
    let dir = lab_directory();

    // A deliberately messy XACL: one good rule, one duplicate, one rule
    // for an unknown group, one dead path (typo), one shadowed rule, and
    // one same-subject contradiction.
    let mk = |ug: &str, path: &str, sign: Sign| {
        Authorization::new(
            Subject::new(ug, "*", "*").expect("subject"),
            ObjectSpec::with_path("lab.dtd", path).expect("path"),
            sign,
            AuthType::Recursive,
        )
    };
    let auths = vec![
        mk("Public", r#"//paper[./@category="public"]"#, Sign::Plus),
        mk("Public", r#"//paper[./@category="public"]"#, Sign::Plus), // duplicate
        mk("Contractors", "//fund", Sign::Minus),                     // unknown group
        mk("Public", "//papre", Sign::Plus),                          // dead path (typo)
        mk("Tom", "//member", Sign::Plus),                            // shadowed by the next
        mk("Public", "//member", Sign::Plus),
        mk("Foreign", "//fund", Sign::Plus), // contradiction pair
        mk("Foreign", "//fund", Sign::Minus),
    ];

    println!("== lint against the directory ==");
    let findings = lint_policy(&auths, &dir);
    for f in &findings {
        println!("  {f}");
    }
    assert!(findings.iter().any(|f| f.kind == "duplicate"));
    assert!(findings.iter().any(|f| f.kind == "unknown-subject"));
    assert!(findings.iter().any(|f| f.kind == "shadowed"));
    assert!(findings.iter().any(|f| f.kind == "contradiction"));

    println!("\n== schema coverage (dead-path analysis) ==");
    let mut dead = 0;
    for entry in analyze_against_schema(&dtd, "laboratory", &auths) {
        if entry.covers.is_empty() {
            println!("  DEAD  {}", entry.authorization);
            dead += 1;
        } else {
            let covers: Vec<String> = entry.covers.iter().map(|c| c.to_string()).collect();
            println!("  ok    {} -> {}", entry.authorization, covers.join(", "));
        }
    }
    assert_eq!(dead, 1, "exactly the typo path is dead");
    println!("\naudit caught every seeded mistake ✓");
}
