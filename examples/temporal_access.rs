//! Time-based restrictions (the paper's §8 extension): the same
//! requester gets different views at different instants — embargoed
//! content opens at a release time, and contractor access is limited to
//! office hours.
//!
//! Run with: `cargo run --example temporal_access`

use xmlsec::authz::{in_force_at, TimedAuthorization, Validity};
use xmlsec::prelude::*;

const RELEASE: u64 = 1_000_000; // the embargo lifts at this instant

fn main() {
    let doc = parse(
        r#"<newsroom>
             <published><story id="s1">Old news</story></published>
             <embargoed><story id="s2">Big scoop</story></embargoed>
           </newsroom>"#,
    )
    .expect("well-formed");

    let mut dir = Directory::new();
    dir.add_user("casey").unwrap();
    dir.add_group("Contractors").unwrap();
    dir.add_member("casey", "Contractors").unwrap();

    // Contractors read published stories — during office hours only —
    // and the embargoed section opens to them at RELEASE.
    let timed = vec![
        TimedAuthorization::new(
            Authorization::new(
                Subject::new("Contractors", "*", "*").unwrap(),
                ObjectSpec::with_path("news.xml", "/newsroom/published").unwrap(),
                Sign::Plus,
                AuthType::Recursive,
            ),
            Validity::daily(9 * 60, 17 * 60),
        ),
        TimedAuthorization::new(
            Authorization::new(
                Subject::new("Contractors", "*", "*").unwrap(),
                ObjectSpec::with_path("news.xml", "/newsroom/embargoed").unwrap(),
                Sign::Plus,
                AuthType::Recursive,
            ),
            Validity { not_before: Some(RELEASE), not_after: None, daily: Some((9 * 60, 17 * 60)) },
        ),
    ];

    let view_at = |t: u64| {
        let in_force = in_force_at(&timed, t);
        let (view, _) = compute_view(&doc, &in_force, &[], &dir, PolicyConfig::paper_default());
        serialize(&view, &SerializeOptions::canonical())
    };

    let day = 86_400u64;
    let at = |days: u64, hour: u64| days * day + hour * 3600;

    let samples = [
        ("day 3, 03:00 (outside office hours)", at(3, 3)),
        ("day 3, 11:00 (office hours, before release)", at(3, 11)),
        ("day 14, 11:00 (office hours, after release)", at(14, 11)),
        ("day 14, 22:00 (after release, but off hours)", at(14, 22)),
    ];
    for (label, t) in samples {
        println!("{label}:\n  {}\n", view_at(t));
    }

    assert_eq!(view_at(at(3, 3)), "<newsroom/>");
    assert!(view_at(at(3, 11)).contains("Old news"));
    assert!(!view_at(at(3, 11)).contains("Big scoop"));
    assert!(view_at(at(14, 11)).contains("Big scoop"));
    assert_eq!(view_at(at(14, 22)), "<newsroom/>");
    println!("temporal gates behave as declared ✓");
}
