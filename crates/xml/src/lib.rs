//! # xmlsec-xml — XML substrate for the *Securing XML Documents* system
//!
//! A from-scratch XML 1.0 processor covering exactly what the paper's
//! security processor needs (its §7 pipeline):
//!
//! - a [`tokenizer`] producing a lexical event stream with entity and
//!   character-reference resolution;
//! - a well-formedness [`parser`] building an arena [`dom::Document`]
//!   (DOM Level 1-style object tree: elements, attributes-as-nodes, text,
//!   comments, PIs, captured DOCTYPE);
//! - a [`mod@serialize`] module ("unparsing") with canonical and pretty modes;
//! - a [`render`] module drawing trees in the style of the paper's figures.
//!
//! DTD parsing/validation lives in `xmlsec-dtd`; path expressions in
//! `xmlsec-xpath`.
//!
//! ```
//! use xmlsec_xml::{parse, serialize, SerializeOptions};
//!
//! let doc = parse(r#"<laboratory><project name="Access Models"/></laboratory>"#).unwrap();
//! let project = doc.child_elements(doc.root()).next().unwrap();
//! assert_eq!(doc.attribute(project, "name"), Some("Access Models"));
//! assert_eq!(
//!     serialize(&doc, &SerializeOptions::canonical()),
//!     r#"<laboratory><project name="Access Models"/></laboratory>"#
//! );
//! ```

#![warn(missing_docs)]

pub mod cancel;
pub mod dom;
pub mod error;
pub mod escape;
pub mod limits;
pub mod name;
pub mod parser;
pub mod render;
pub mod serialize;
pub mod tokenizer;

pub use cancel::{CancelReason, CancelToken, Cancelled};
pub use dom::{Doctype, Document, Node, NodeData, NodeId};
pub use error::{Pos, XmlError, XmlErrorKind};
pub use limits::{LimitKind, Limits};
pub use parser::{parse, parse_cancellable, parse_with, parse_with_limits, ParseOptions};
pub use render::render_tree;
pub use serialize::{serialize, serialize_node, SerializeOptions};

/// Bumps the shared `xmlsec_limits_rejected_total{kind=...}` counter.
///
/// One metric family spans every layer that enforces a resource cap (XML
/// parsing here, path evaluation in `xmlsec-xpath`, request framing in
/// `xmlsec-server`); each layer reports its violations under its own
/// `kind` label. The registry deduplicates by name+labels, so calling
/// this on the (cold) rejection path is fine.
pub fn limit_rejected(kind: &'static str) {
    xmlsec_telemetry::global()
        .counter(
            "xmlsec_limits_rejected_total",
            "Inputs rejected because a resource limit was exceeded, by limit kind.",
            &[("kind", kind)],
        )
        .inc();
}
