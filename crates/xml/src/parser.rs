//! Tree-building parser (the "parsing" step of the paper's §7 pipeline).
//!
//! Consumes the token stream and enforces well-formedness: properly nested
//! tags, a single document element, no content outside it. Whitespace-only
//! text between elements is preserved or dropped according to
//! [`ParseOptions::keep_whitespace_text`] — the security processor drops it
//! so that pruned documents serialize cleanly, tests that need exact
//! round-trips keep it.

use crate::cancel::CancelToken;
use crate::dom::{Document, NodeId};
use crate::error::{Pos, Result, XmlError, XmlErrorKind};
use crate::limits::{LimitKind, Limits};
use crate::tokenizer::{Token, Tokenizer};
use std::sync::{Arc, OnceLock};
use xmlsec_telemetry as telemetry;

struct ParserMetrics {
    documents: Arc<telemetry::Counter>,
    bytes: Arc<telemetry::Counter>,
    nodes: Arc<telemetry::Counter>,
    errors: Arc<telemetry::Counter>,
}

fn parser_metrics() -> &'static ParserMetrics {
    static METRICS: OnceLock<ParserMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let reg = telemetry::global();
        ParserMetrics {
            documents: reg.counter(
                "xmlsec_xml_parse_documents_total",
                "Documents parsed successfully.",
                &[],
            ),
            bytes: reg.counter(
                "xmlsec_xml_parse_bytes_total",
                "Input bytes consumed by successful parses.",
                &[],
            ),
            nodes: reg.counter(
                "xmlsec_xml_parse_nodes_total",
                "DOM nodes produced by successful parses.",
                &[],
            ),
            errors: reg.counter(
                "xmlsec_xml_parse_errors_total",
                "Parses rejected as not well-formed.",
                &[],
            ),
        }
    })
}

/// Parser configuration.
#[derive(Debug, Clone, Copy)]
pub struct ParseOptions {
    /// Keep text nodes that consist only of whitespace. Default `false`.
    pub keep_whitespace_text: bool,
    /// Keep comment nodes. Default `true`.
    pub keep_comments: bool,
}

impl Default for ParseOptions {
    fn default() -> Self {
        ParseOptions { keep_whitespace_text: false, keep_comments: true }
    }
}

/// Parses `input` with default options and the default [`Limits`].
pub fn parse(input: &str) -> Result<Document> {
    parse_with(input, ParseOptions::default())
}

/// Parses `input` with explicit options and the default [`Limits`].
pub fn parse_with(input: &str, opts: ParseOptions) -> Result<Document> {
    parse_with_limits(input, opts, &Limits::default())
}

/// Parses `input` with explicit options and resource limits. Limit
/// violations surface as [`XmlErrorKind::LimitExceeded`] — typed and
/// recoverable, never a panic or unbounded allocation.
pub fn parse_with_limits(input: &str, opts: ParseOptions, limits: &Limits) -> Result<Document> {
    parse_cancellable(input, opts, limits, None)
}

/// Like [`parse_with_limits`], but also polls a request-scoped
/// [`CancelToken`] once per token in the node loop: a cancelled request
/// (deadline passed, client gone) unwinds with
/// [`XmlErrorKind::Cancelled`] instead of finishing a parse nobody will
/// consume. The poll amortizes its wall-clock check, so the uncancelled
/// path costs one relaxed atomic load per token.
pub fn parse_cancellable(
    input: &str,
    opts: ParseOptions,
    limits: &Limits,
    cancel: Option<&CancelToken>,
) -> Result<Document> {
    let result = parse_inner(input, opts, limits, cancel);
    let m = parser_metrics();
    match &result {
        Ok(d) => {
            m.documents.inc();
            m.bytes.add(input.len() as u64);
            m.nodes.add(d.arena_len() as u64);
        }
        Err(e) => {
            m.errors.inc();
            if let XmlErrorKind::LimitExceeded(kind) = e.kind {
                crate::limit_rejected(kind.as_str());
            }
        }
    }
    result
}

/// Source position of any token (every variant carries one).
fn tok_pos(t: &Token) -> Pos {
    match t {
        Token::XmlDecl { pos, .. }
        | Token::Doctype { pos, .. }
        | Token::StartTag { pos, .. }
        | Token::EndTag { pos, .. }
        | Token::Text { pos, .. }
        | Token::Comment { pos, .. }
        | Token::Pi { pos, .. } => *pos,
    }
}

fn parse_inner(
    input: &str,
    opts: ParseOptions,
    limits: &Limits,
    cancel: Option<&CancelToken>,
) -> Result<Document> {
    if input.len() > limits.max_input_bytes {
        return Err(XmlError::new(XmlErrorKind::LimitExceeded(LimitKind::InputBytes), Pos::START));
    }
    let mut tk = Tokenizer::with_limits(input, limits);
    let mut doc: Option<Document> = None;
    let mut doctype = None;
    // Stack of open elements; empty both before the root opens and after
    // it closes.
    let mut stack: Vec<(NodeId, String, Pos)> = Vec::new();
    let mut root_seen = false;

    while let Some(tok) = tk.next_token()? {
        if let Some(t) = cancel {
            if let Err(c) = t.poll() {
                let pos = tok_pos(&tok);
                return Err(XmlError::new(XmlErrorKind::Cancelled(c.reason), pos));
            }
        }
        match tok {
            Token::XmlDecl { .. } => {}
            Token::Doctype { decl, pos } => {
                if root_seen || doc.is_some() {
                    return Err(XmlError::new(XmlErrorKind::MalformedDoctype, pos));
                }
                doctype = Some(decl);
            }
            Token::StartTag { name, attrs, self_closing, pos } => {
                let el = if let Some(d) = doc.as_mut() {
                    match stack.last() {
                        Some(&(parent, ..)) => d.append_element(parent, &name),
                        None => return Err(XmlError::new(XmlErrorKind::MultipleRootElements, pos)),
                    }
                } else {
                    if root_seen {
                        return Err(XmlError::new(XmlErrorKind::MultipleRootElements, pos));
                    }
                    root_seen = true;
                    let d = Document::new(&name);
                    let r = d.root();
                    doc = Some(d);
                    r
                };
                let d = doc.as_mut().expect("document exists after root open");
                for (an, av) in attrs {
                    d.set_attribute(el, &an, &av)?;
                }
                if d.arena_len() > limits.max_nodes {
                    return Err(XmlError::new(XmlErrorKind::LimitExceeded(LimitKind::Nodes), pos));
                }
                if !self_closing {
                    if stack.len() >= limits.max_depth {
                        return Err(XmlError::new(
                            XmlErrorKind::LimitExceeded(LimitKind::Depth),
                            pos,
                        ));
                    }
                    stack.push((el, name, pos));
                }
            }
            Token::EndTag { name, pos } => match stack.pop() {
                Some((_, open_name, _)) if open_name == name => {}
                Some((_, open_name, _)) => {
                    return Err(XmlError::new(
                        XmlErrorKind::MismatchedTag { expected: open_name, found: name },
                        pos,
                    ));
                }
                None => return Err(XmlError::new(XmlErrorKind::UnbalancedEndTag(name), pos)),
            },
            Token::Text { value, pos } => {
                let blank = value.chars().all(|c| c.is_whitespace());
                match stack.last() {
                    Some(&(parent, ..)) => {
                        if !blank || opts.keep_whitespace_text {
                            let d = doc.as_mut().expect("open element implies document");
                            d.append_text(parent, &value);
                            if d.arena_len() > limits.max_nodes {
                                return Err(XmlError::new(
                                    XmlErrorKind::LimitExceeded(LimitKind::Nodes),
                                    pos,
                                ));
                            }
                        }
                    }
                    None => {
                        if !blank {
                            return Err(XmlError::new(XmlErrorKind::ContentOutsideRoot, pos));
                        }
                    }
                }
            }
            Token::Comment { value, pos } => {
                if let Some(&(parent, ..)) = stack.last() {
                    if opts.keep_comments {
                        let d = doc.as_mut().expect("open element implies document");
                        d.append_comment(parent, &value);
                        if d.arena_len() > limits.max_nodes {
                            return Err(XmlError::new(
                                XmlErrorKind::LimitExceeded(LimitKind::Nodes),
                                pos,
                            ));
                        }
                    }
                }
                // Comments outside the root are legal and dropped.
            }
            Token::Pi { target, data, pos } => {
                if let Some(&(parent, ..)) = stack.last() {
                    let d = doc.as_mut().expect("open element implies document");
                    d.append_pi(parent, &target, &data);
                    if d.arena_len() > limits.max_nodes {
                        return Err(XmlError::new(
                            XmlErrorKind::LimitExceeded(LimitKind::Nodes),
                            pos,
                        ));
                    }
                }
                // PIs outside the root are legal and dropped.
            }
        }
    }

    if let Some((_, name, pos)) = stack.pop() {
        return Err(XmlError::new(XmlErrorKind::UnclosedElement(name), pos));
    }
    match doc {
        Some(mut d) => {
            d.doctype = doctype;
            Ok(d)
        }
        None => Err(XmlError::new(XmlErrorKind::NoRootElement, Pos::START)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dom::NodeData;

    #[test]
    fn parse_nested() {
        let d = parse("<lab><project name=\"p\"><paper/>text</project></lab>").unwrap();
        assert_eq!(d.element_name(d.root()), Some("lab"));
        let p = d.child_elements(d.root()).next().unwrap();
        assert_eq!(d.attribute(p, "name"), Some("p"));
        assert_eq!(d.text_value(p), "text");
    }

    #[test]
    fn mismatched_tags() {
        let e = parse("<a><b></a></b>").unwrap_err();
        assert!(matches!(e.kind, XmlErrorKind::MismatchedTag { .. }));
    }

    #[test]
    fn unclosed_element() {
        let e = parse("<a><b>").unwrap_err();
        assert!(matches!(e.kind, XmlErrorKind::UnclosedElement(ref n) if n == "b"));
    }

    #[test]
    fn unbalanced_end_tag() {
        let e = parse("<a/></a>").unwrap_err();
        assert!(matches!(e.kind, XmlErrorKind::UnbalancedEndTag(_)));
    }

    #[test]
    fn multiple_roots_rejected() {
        let e = parse("<a/><b/>").unwrap_err();
        assert!(matches!(e.kind, XmlErrorKind::MultipleRootElements));
    }

    #[test]
    fn empty_input_rejected() {
        let e = parse("   ").unwrap_err();
        assert!(matches!(e.kind, XmlErrorKind::NoRootElement));
    }

    #[test]
    fn text_outside_root_rejected() {
        let e = parse("<a/>junk").unwrap_err();
        assert!(matches!(e.kind, XmlErrorKind::ContentOutsideRoot));
    }

    #[test]
    fn whitespace_between_elements_dropped_by_default() {
        let d = parse("<a>\n  <b/>\n</a>").unwrap();
        assert_eq!(d.children(d.root()).len(), 1);
        let d2 = parse_with(
            "<a>\n  <b/>\n</a>",
            ParseOptions { keep_whitespace_text: true, ..Default::default() },
        )
        .unwrap();
        assert_eq!(d2.children(d2.root()).len(), 3);
    }

    #[test]
    fn doctype_captured() {
        let d = parse("<!DOCTYPE lab SYSTEM \"lab.dtd\"><lab/>").unwrap();
        let dt = d.doctype.as_ref().unwrap();
        assert_eq!(dt.name, "lab");
        assert_eq!(dt.system_id.as_deref(), Some("lab.dtd"));
    }

    #[test]
    fn doctype_after_root_rejected() {
        assert!(parse("<lab/><!DOCTYPE lab>").is_err());
    }

    #[test]
    fn comments_kept_and_droppable() {
        let d = parse("<a><!--x--></a>").unwrap();
        assert_eq!(d.children(d.root()).len(), 1);
        assert!(matches!(d.node(d.children(d.root())[0]).data, NodeData::Comment(_)));
        let d2 = parse_with(
            "<a><!--x--></a>",
            ParseOptions { keep_comments: false, ..Default::default() },
        )
        .unwrap();
        assert_eq!(d2.children(d2.root()).len(), 0);
    }

    #[test]
    fn prolog_comment_and_pi_allowed() {
        let d = parse("<?xml version=\"1.0\"?><!--hdr--><?style x?><a/>").unwrap();
        assert_eq!(d.element_name(d.root()), Some("a"));
    }

    #[test]
    fn deep_nesting() {
        let mut s = String::new();
        for i in 0..200 {
            s.push_str(&format!("<n{i}>"));
        }
        for i in (0..200).rev() {
            s.push_str(&format!("</n{i}>"));
        }
        let d = parse(&s).unwrap();
        assert_eq!(d.count_reachable(), 200);
    }

    fn nested(depth: usize) -> String {
        let mut s = String::with_capacity(depth * 7);
        for _ in 0..depth {
            s.push_str("<n>");
        }
        for _ in 0..depth {
            s.push_str("</n>");
        }
        s
    }

    #[test]
    fn depth_limit_is_typed_error() {
        let limits = Limits { max_depth: 16, ..Limits::default() };
        let e = parse_with_limits(&nested(17), ParseOptions::default(), &limits).unwrap_err();
        assert_eq!(e.kind, XmlErrorKind::LimitExceeded(LimitKind::Depth));
        // Exactly at the cap still parses.
        assert!(parse_with_limits(&nested(16), ParseOptions::default(), &limits).is_ok());
    }

    #[test]
    fn depth_bomb_rejected_by_default_limits() {
        let e = parse(&nested(Limits::default().max_depth + 1)).unwrap_err();
        assert_eq!(e.kind, XmlErrorKind::LimitExceeded(LimitKind::Depth));
    }

    #[test]
    fn node_limit_is_typed_error() {
        let mut s = String::from("<r>");
        for _ in 0..50 {
            s.push_str("<x/>");
        }
        s.push_str("</r>");
        let limits = Limits { max_nodes: 20, ..Limits::default() };
        let e = parse_with_limits(&s, ParseOptions::default(), &limits).unwrap_err();
        assert_eq!(e.kind, XmlErrorKind::LimitExceeded(LimitKind::Nodes));
        assert!(parse(&s).is_ok());
    }

    #[test]
    fn attribute_flood_counts_toward_node_limit() {
        let mut s = String::from("<r");
        for i in 0..50 {
            s.push_str(&format!(" a{i}=\"v\""));
        }
        s.push_str("/>");
        let limits = Limits { max_nodes: 10, ..Limits::default() };
        let e = parse_with_limits(&s, ParseOptions::default(), &limits).unwrap_err();
        assert_eq!(e.kind, XmlErrorKind::LimitExceeded(LimitKind::Nodes));
    }

    #[test]
    fn input_size_limit_is_typed_error() {
        let limits = Limits { max_input_bytes: 8, ..Limits::default() };
        let e = parse_with_limits("<a>123456</a>", ParseOptions::default(), &limits).unwrap_err();
        assert_eq!(e.kind, XmlErrorKind::LimitExceeded(LimitKind::InputBytes));
    }

    #[test]
    fn cancelled_token_aborts_the_node_loop_with_a_typed_error() {
        use crate::cancel::{CancelReason, CancelToken};
        let mut s = String::from("<r>");
        for _ in 0..500 {
            s.push_str("<x/>");
        }
        s.push_str("</r>");
        // A pre-tripped token stops at the first loop checkpoint.
        let t = CancelToken::never();
        t.cancel();
        let e = parse_cancellable(&s, ParseOptions::default(), &Limits::default(), Some(&t))
            .unwrap_err();
        assert_eq!(e.kind, XmlErrorKind::Cancelled(CancelReason::Explicit));
        // Tripping mid-stream aborts partway (poll k lands inside the loop).
        let mid = CancelToken::cancel_after_polls(100);
        let e2 = parse_cancellable(&s, ParseOptions::default(), &Limits::default(), Some(&mid))
            .unwrap_err();
        assert!(matches!(e2.kind, XmlErrorKind::Cancelled(_)));
        assert!(e2.pos.offset > 0, "cancellation surfaced mid-document: {:?}", e2.pos);
        // An untripped token changes nothing.
        let ok = parse_cancellable(
            &s,
            ParseOptions::default(),
            &Limits::default(),
            Some(&CancelToken::never()),
        )
        .unwrap();
        assert_eq!(ok.count_reachable(), 501);
    }

    #[test]
    fn unlimited_parses_very_deep_documents_iteratively() {
        // The parser keeps its own stack (no recursion), so even absurd
        // depth must not overflow when the caller opts out of limits.
        let d = parse_with_limits(&nested(50_000), ParseOptions::default(), &Limits::unlimited())
            .unwrap();
        assert_eq!(d.count_reachable(), 50_000);
    }
}
