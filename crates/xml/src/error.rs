//! Error types for XML lexing and parsing.
//!
//! Every error carries a [`Pos`] (line/column, 1-based) pointing at the
//! offending input so that callers can produce actionable diagnostics.

use crate::limits::LimitKind;
use std::fmt;

/// A position in the source text, tracked by the tokenizer.
///
/// Lines and columns are 1-based; `offset` is the 0-based byte offset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pos {
    /// 1-based line number.
    pub line: u32,
    /// 1-based column number (in bytes within the line).
    pub col: u32,
    /// 0-based byte offset from the start of the input.
    pub offset: usize,
}

impl Pos {
    /// The start-of-input position.
    pub const START: Pos = Pos { line: 1, col: 1, offset: 0 };
}

impl fmt::Display for Pos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// The kinds of well-formedness violation the parser reports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XmlErrorKind {
    /// Input ended in the middle of a construct.
    UnexpectedEof,
    /// A character that cannot start or continue the current construct.
    UnexpectedChar(char),
    /// A tag, attribute, PI target, or entity name that is not a valid XML Name.
    InvalidName(String),
    /// `</b>` closing `<a>`.
    MismatchedTag {
        /// The open element's name.
        expected: String,
        /// The end tag actually found.
        found: String,
    },
    /// An end tag with no corresponding open element.
    UnbalancedEndTag(String),
    /// An element left open at end of input.
    UnclosedElement(String),
    /// The same attribute appears twice on one start tag.
    DuplicateAttribute(String),
    /// A reference to an entity the processor does not know.
    UnknownEntity(String),
    /// A numeric character reference that is not a legal XML character.
    InvalidCharRef(String),
    /// Text or markup outside the single document element.
    ContentOutsideRoot,
    /// The document has no element at all.
    NoRootElement,
    /// More than one top-level element.
    MultipleRootElements,
    /// `--` inside a comment, or a comment left unterminated.
    MalformedComment,
    /// A processing instruction that is unterminated or targets `xml`.
    MalformedPi,
    /// A malformed `<!DOCTYPE ...>` declaration.
    MalformedDoctype,
    /// A malformed CDATA section.
    MalformedCdata,
    /// A raw `<` in attribute value, or an unterminated attribute value.
    MalformedAttribute(String),
    /// A configured resource limit was exceeded (see
    /// [`crate::limits::Limits`]); recoverable, never a panic.
    LimitExceeded(LimitKind),
    /// The request's cancellation token tripped mid-parse (deadline
    /// passed, client gone, or explicit cancel — see [`crate::cancel`]);
    /// recoverable, partial work discarded.
    Cancelled(crate::cancel::CancelReason),
}

impl fmt::Display for XmlErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use XmlErrorKind::*;
        match self {
            UnexpectedEof => write!(f, "unexpected end of input"),
            UnexpectedChar(c) => write!(f, "unexpected character {c:?}"),
            InvalidName(n) => write!(f, "invalid XML name {n:?}"),
            MismatchedTag { expected, found } => {
                write!(f, "mismatched end tag: expected </{expected}>, found </{found}>")
            }
            UnbalancedEndTag(n) => write!(f, "end tag </{n}> with no open element"),
            UnclosedElement(n) => write!(f, "element <{n}> is never closed"),
            DuplicateAttribute(n) => write!(f, "duplicate attribute {n:?}"),
            UnknownEntity(n) => write!(f, "reference to unknown entity &{n};"),
            InvalidCharRef(s) => write!(f, "invalid character reference &#{s};"),
            ContentOutsideRoot => write!(f, "content outside the document element"),
            NoRootElement => write!(f, "document has no root element"),
            MultipleRootElements => write!(f, "document has more than one root element"),
            MalformedComment => write!(f, "malformed comment"),
            MalformedPi => write!(f, "malformed processing instruction"),
            MalformedDoctype => write!(f, "malformed DOCTYPE declaration"),
            MalformedCdata => write!(f, "malformed CDATA section"),
            MalformedAttribute(n) => write!(f, "malformed attribute {n:?}"),
            LimitExceeded(k) => write!(f, "resource limit exceeded: {k}"),
            Cancelled(r) => write!(f, "parse cancelled: {r}"),
        }
    }
}

/// A well-formedness error with its source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XmlError {
    /// What went wrong.
    pub kind: XmlErrorKind,
    /// Where it went wrong.
    pub pos: Pos,
}

impl XmlError {
    /// Builds an error at `pos`.
    pub fn new(kind: XmlErrorKind, pos: Pos) -> Self {
        XmlError { kind, pos }
    }
}

impl fmt::Display for XmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "XML error at {}: {}", self.pos, self.kind)
    }
}

impl std::error::Error for XmlError {}

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, XmlError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pos_display() {
        let p = Pos { line: 3, col: 17, offset: 40 };
        assert_eq!(p.to_string(), "3:17");
    }

    #[test]
    fn error_display_mentions_position_and_kind() {
        let e = XmlError::new(
            XmlErrorKind::MismatchedTag { expected: "a".into(), found: "b".into() },
            Pos { line: 2, col: 5, offset: 10 },
        );
        let s = e.to_string();
        assert!(s.contains("2:5"), "{s}");
        assert!(s.contains("</a>"), "{s}");
        assert!(s.contains("</b>"), "{s}");
    }

    #[test]
    fn start_pos_is_line1_col1() {
        assert_eq!(Pos::START.line, 1);
        assert_eq!(Pos::START.col, 1);
        assert_eq!(Pos::START.offset, 0);
    }
}
