//! Pull tokenizer for XML 1.0 documents.
//!
//! Produces a flat token stream (start tags with attributes, end tags,
//! character data with references resolved, comments, PIs, DOCTYPE) that
//! the tree-building parser consumes. Entity references are resolved here
//! so downstream code only ever sees plain text.

use crate::dom::Doctype;
use crate::error::{Pos, Result, XmlError, XmlErrorKind};
use crate::escape::resolve_reference;
use crate::limits::{LimitKind, Limits};
use crate::name::{is_name_char, is_name_start_char, is_xml_whitespace};

/// One lexical event in the document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Token {
    /// XML declaration `<?xml version=... ?>` (captured, not interpreted).
    XmlDecl {
        /// Raw content between `<?xml` and `?>`.
        raw: String,
        /// Position of `<`.
        pos: Pos,
    },
    /// `<!DOCTYPE ...>`.
    Doctype {
        /// Parsed declaration.
        decl: Doctype,
        /// Position of `<`.
        pos: Pos,
    },
    /// `<name a="v" ...>` or `<name ... />`.
    StartTag {
        /// Element name.
        name: String,
        /// Attributes, in source order, values unescaped.
        attrs: Vec<(String, String)>,
        /// Whether the tag ended with `/>`.
        self_closing: bool,
        /// Position of `<`.
        pos: Pos,
    },
    /// `</name>`.
    EndTag {
        /// Element name.
        name: String,
        /// Position of `<`.
        pos: Pos,
    },
    /// Character data (including CDATA sections), references resolved.
    Text {
        /// The text.
        value: String,
        /// Position of the first character.
        pos: Pos,
    },
    /// `<!-- ... -->`.
    Comment {
        /// Comment body.
        value: String,
        /// Position of `<`.
        pos: Pos,
    },
    /// `<?target data?>`.
    Pi {
        /// PI target (not `xml`).
        target: String,
        /// PI data, possibly empty.
        data: String,
        /// Position of `<`.
        pos: Pos,
    },
}

/// Character cursor with line/column tracking.
struct Cursor<'a> {
    input: &'a str,
    /// Byte offset of the next char.
    offset: usize,
    line: u32,
    col: u32,
    /// Characters produced by reference resolution so far.
    expanded: usize,
    /// Cap on `expanded` (the billion-laughs guard).
    max_expansion: usize,
}

impl<'a> Cursor<'a> {
    fn new(input: &'a str, max_expansion: usize) -> Self {
        Cursor { input, offset: 0, line: 1, col: 1, expanded: 0, max_expansion }
    }

    fn pos(&self) -> Pos {
        Pos { line: self.line, col: self.col, offset: self.offset }
    }

    fn peek(&self) -> Option<char> {
        self.input[self.offset..].chars().next()
    }

    fn starts_with(&self, s: &str) -> bool {
        self.input[self.offset..].starts_with(s)
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.offset += c.len_utf8();
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn bump_n(&mut self, n: usize) {
        for _ in 0..n {
            self.bump();
        }
    }

    fn eat(&mut self, s: &str) -> bool {
        if self.starts_with(s) {
            self.bump_n(s.chars().count());
            true
        } else {
            false
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(c) if is_xml_whitespace(c)) {
            self.bump();
        }
    }

    fn at_eof(&self) -> bool {
        self.offset >= self.input.len()
    }

    fn err(&self, kind: XmlErrorKind) -> XmlError {
        XmlError::new(kind, self.pos())
    }

    fn read_name(&mut self) -> Result<String> {
        let start = self.pos();
        match self.peek() {
            Some(c) if is_name_start_char(c) => {}
            Some(c) => return Err(XmlError::new(XmlErrorKind::UnexpectedChar(c), start)),
            None => return Err(XmlError::new(XmlErrorKind::UnexpectedEof, start)),
        }
        let begin = self.offset;
        while matches!(self.peek(), Some(c) if is_name_char(c)) {
            self.bump();
        }
        Ok(self.input[begin..self.offset].to_string())
    }

    /// Reads text until `stop`, resolving `&...;` references. `stop` chars
    /// terminate without being consumed. When `forbid_lt` is set, a raw `<`
    /// is a well-formedness error (attribute-value context).
    fn read_text_until(&mut self, stop: char, forbid_lt: bool) -> Result<String> {
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Ok(out),
                Some(c) if c == stop => return Ok(out),
                Some('<') if forbid_lt => {
                    return Err(self.err(XmlErrorKind::UnexpectedChar('<')));
                }
                Some('&') => {
                    let pos = self.pos();
                    self.bump();
                    let mut body = String::new();
                    loop {
                        match self.bump() {
                            Some(';') => break,
                            Some(c) if body.len() < 16 => body.push(c),
                            _ => return Err(XmlError::new(XmlErrorKind::UnknownEntity(body), pos)),
                        }
                    }
                    let c = resolve_reference(&body, pos)?;
                    self.expanded += 1;
                    if self.expanded > self.max_expansion {
                        return Err(XmlError::new(
                            XmlErrorKind::LimitExceeded(LimitKind::EntityExpansion),
                            pos,
                        ));
                    }
                    out.push(c);
                }
                Some(_) => out.push(self.bump().unwrap()),
            }
        }
    }
}

/// The tokenizer: call [`Tokenizer::next_token`] until it returns `None`.
pub struct Tokenizer<'a> {
    cur: Cursor<'a>,
}

impl<'a> Tokenizer<'a> {
    /// Creates a tokenizer over `input` with the default [`Limits`].
    pub fn new(input: &'a str) -> Self {
        Tokenizer::with_limits(input, &Limits::default())
    }

    /// Creates a tokenizer enforcing the reference-expansion cap from
    /// `limits` (the structural caps — depth, node count — live in the
    /// parser, which owns the tree).
    pub fn with_limits(input: &'a str, limits: &Limits) -> Self {
        Tokenizer { cur: Cursor::new(input, limits.max_entity_expansion) }
    }

    /// Returns the next token, or `Ok(None)` at end of input.
    pub fn next_token(&mut self) -> Result<Option<Token>> {
        if self.cur.at_eof() {
            return Ok(None);
        }
        if self.cur.peek() == Some('<') {
            self.read_markup().map(Some)
        } else {
            let pos = self.cur.pos();
            let value = self.cur.read_text_until('<', false)?;
            Ok(Some(Token::Text { value, pos }))
        }
    }

    /// Collects all tokens (convenience for tests and the DTD scanner).
    pub fn tokenize_all(mut self) -> Result<Vec<Token>> {
        let mut out = Vec::new();
        while let Some(t) = self.next_token()? {
            out.push(t);
        }
        Ok(out)
    }

    fn read_markup(&mut self) -> Result<Token> {
        let pos = self.cur.pos();
        debug_assert_eq!(self.cur.peek(), Some('<'));
        if self.cur.starts_with("<!--") {
            return self.read_comment(pos);
        }
        if self.cur.starts_with("<![CDATA[") {
            return self.read_cdata(pos);
        }
        if self.cur.starts_with("<!DOCTYPE") {
            return self.read_doctype(pos);
        }
        if self.cur.starts_with("<?") {
            return self.read_pi(pos);
        }
        if self.cur.starts_with("</") {
            self.cur.bump_n(2);
            let name = self.cur.read_name()?;
            self.cur.skip_ws();
            if !self.cur.eat(">") {
                return Err(self.cur.err(XmlErrorKind::UnexpectedEof));
            }
            return Ok(Token::EndTag { name, pos });
        }
        // Start tag.
        self.cur.bump(); // consume '<'
        let name = self.cur.read_name()?;
        let mut attrs = Vec::new();
        loop {
            self.cur.skip_ws();
            match self.cur.peek() {
                Some('>') => {
                    self.cur.bump();
                    return Ok(Token::StartTag { name, attrs, self_closing: false, pos });
                }
                Some('/') => {
                    self.cur.bump();
                    if !self.cur.eat(">") {
                        return Err(self.cur.err(XmlErrorKind::UnexpectedChar('/')));
                    }
                    return Ok(Token::StartTag { name, attrs, self_closing: true, pos });
                }
                Some(c) if is_name_start_char(c) => {
                    let (an, av) = self.read_attribute()?;
                    if attrs.iter().any(|(n, _)| *n == an) {
                        return Err(self.cur.err(XmlErrorKind::DuplicateAttribute(an)));
                    }
                    attrs.push((an, av));
                }
                Some(c) => return Err(self.cur.err(XmlErrorKind::UnexpectedChar(c))),
                None => return Err(self.cur.err(XmlErrorKind::UnexpectedEof)),
            }
        }
    }

    fn read_attribute(&mut self) -> Result<(String, String)> {
        let name = self.cur.read_name()?;
        self.cur.skip_ws();
        if !self.cur.eat("=") {
            return Err(self.cur.err(XmlErrorKind::MalformedAttribute(name)));
        }
        self.cur.skip_ws();
        let quote = match self.cur.bump() {
            Some(q @ ('"' | '\'')) => q,
            _ => return Err(self.cur.err(XmlErrorKind::MalformedAttribute(name))),
        };
        let value = self.cur.read_text_until(quote, true)?;
        if !self.cur.eat(&quote.to_string()) {
            return Err(self.cur.err(XmlErrorKind::MalformedAttribute(name)));
        }
        Ok((name, value))
    }

    fn read_comment(&mut self, pos: Pos) -> Result<Token> {
        self.cur.bump_n(4); // <!--
        let begin = self.cur.offset;
        loop {
            if self.cur.at_eof() {
                return Err(XmlError::new(XmlErrorKind::MalformedComment, pos));
            }
            if self.cur.starts_with("--") {
                let value = self.cur.input[begin..self.cur.offset].to_string();
                self.cur.bump_n(2);
                if !self.cur.eat(">") {
                    // '--' inside comment body is forbidden by XML 1.0.
                    return Err(XmlError::new(XmlErrorKind::MalformedComment, pos));
                }
                return Ok(Token::Comment { value, pos });
            }
            self.cur.bump();
        }
    }

    fn read_cdata(&mut self, pos: Pos) -> Result<Token> {
        self.cur.bump_n(9); // <![CDATA[
        let begin = self.cur.offset;
        loop {
            if self.cur.at_eof() {
                return Err(XmlError::new(XmlErrorKind::MalformedCdata, pos));
            }
            if self.cur.starts_with("]]>") {
                let value = self.cur.input[begin..self.cur.offset].to_string();
                self.cur.bump_n(3);
                return Ok(Token::Text { value, pos });
            }
            self.cur.bump();
        }
    }

    fn read_pi(&mut self, pos: Pos) -> Result<Token> {
        self.cur.bump_n(2); // <?
        let target = self.cur.read_name()?;
        self.cur.skip_ws();
        let begin = self.cur.offset;
        loop {
            if self.cur.at_eof() {
                return Err(XmlError::new(XmlErrorKind::MalformedPi, pos));
            }
            if self.cur.starts_with("?>") {
                let data = self.cur.input[begin..self.cur.offset].trim_end().to_string();
                self.cur.bump_n(2);
                if target.eq_ignore_ascii_case("xml") {
                    if target == "xml" {
                        return Ok(Token::XmlDecl { raw: data, pos });
                    }
                    return Err(XmlError::new(XmlErrorKind::MalformedPi, pos));
                }
                return Ok(Token::Pi { target, data, pos });
            }
            self.cur.bump();
        }
    }

    fn read_doctype(&mut self, pos: Pos) -> Result<Token> {
        self.cur.bump_n(9); // <!DOCTYPE
        self.cur.skip_ws();
        let name = self.cur.read_name()?;
        let mut decl = Doctype { name, ..Doctype::default() };
        self.cur.skip_ws();
        if self.cur.eat("SYSTEM") {
            self.cur.skip_ws();
            decl.system_id = Some(self.read_quoted(pos)?);
        } else if self.cur.eat("PUBLIC") {
            self.cur.skip_ws();
            decl.public_id = Some(self.read_quoted(pos)?);
            self.cur.skip_ws();
            decl.system_id = Some(self.read_quoted(pos)?);
        }
        self.cur.skip_ws();
        if self.cur.peek() == Some('[') {
            self.cur.bump();
            let begin = self.cur.offset;
            // The internal subset may contain quoted strings with ']'.
            let mut depth = 1usize;
            loop {
                match self.cur.peek() {
                    None => return Err(XmlError::new(XmlErrorKind::MalformedDoctype, pos)),
                    Some('[') => {
                        depth += 1;
                        self.cur.bump();
                    }
                    Some(']') => {
                        depth -= 1;
                        if depth == 0 {
                            decl.internal_subset =
                                Some(self.cur.input[begin..self.cur.offset].to_string());
                            self.cur.bump();
                            break;
                        }
                        self.cur.bump();
                    }
                    Some(q @ ('"' | '\'')) => {
                        self.cur.bump();
                        loop {
                            match self.cur.bump() {
                                None => {
                                    return Err(XmlError::new(XmlErrorKind::MalformedDoctype, pos))
                                }
                                Some(c) if c == q => break,
                                Some(_) => {}
                            }
                        }
                    }
                    Some(_) => {
                        self.cur.bump();
                    }
                }
            }
        }
        self.cur.skip_ws();
        if !self.cur.eat(">") {
            return Err(XmlError::new(XmlErrorKind::MalformedDoctype, pos));
        }
        Ok(Token::Doctype { decl, pos })
    }

    fn read_quoted(&mut self, pos: Pos) -> Result<String> {
        let quote = match self.cur.bump() {
            Some(q @ ('"' | '\'')) => q,
            _ => return Err(XmlError::new(XmlErrorKind::MalformedDoctype, pos)),
        };
        let begin = self.cur.offset;
        loop {
            match self.cur.peek() {
                None => return Err(XmlError::new(XmlErrorKind::MalformedDoctype, pos)),
                Some(c) if c == quote => {
                    let s = self.cur.input[begin..self.cur.offset].to_string();
                    self.cur.bump();
                    return Ok(s);
                }
                Some(_) => {
                    self.cur.bump();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(s: &str) -> Vec<Token> {
        Tokenizer::new(s).tokenize_all().unwrap()
    }

    #[test]
    fn simple_element() {
        let t = toks("<a>hi</a>");
        assert_eq!(t.len(), 3);
        assert!(matches!(&t[0], Token::StartTag { name, self_closing: false, .. } if name == "a"));
        assert!(matches!(&t[1], Token::Text { value, .. } if value == "hi"));
        assert!(matches!(&t[2], Token::EndTag { name, .. } if name == "a"));
    }

    #[test]
    fn self_closing_with_attrs() {
        let t = toks(r#"<paper type="internal" n='5'/>"#);
        match &t[0] {
            Token::StartTag { name, attrs, self_closing, .. } => {
                assert_eq!(name, "paper");
                assert!(*self_closing);
                assert_eq!(attrs[0], ("type".to_string(), "internal".to_string()));
                assert_eq!(attrs[1], ("n".to_string(), "5".to_string()));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn attribute_refs_resolved() {
        let t = toks(r#"<a t="x &amp; y &#33;"/>"#);
        match &t[0] {
            Token::StartTag { attrs, .. } => assert_eq!(attrs[0].1, "x & y !"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn duplicate_attribute_rejected() {
        let e = Tokenizer::new(r#"<a x="1" x="2"/>"#).tokenize_all().unwrap_err();
        assert!(matches!(e.kind, XmlErrorKind::DuplicateAttribute(ref n) if n == "x"));
    }

    #[test]
    fn text_entity_resolution() {
        let t = toks("<a>&lt;tag&gt; &amp; &#65;</a>");
        assert!(matches!(&t[1], Token::Text { value, .. } if value == "<tag> & A"));
    }

    #[test]
    fn comments_and_pis() {
        let t = toks("<a><!-- note --><?app do it?></a>");
        assert!(matches!(&t[1], Token::Comment { value, .. } if value == " note "));
        assert!(
            matches!(&t[2], Token::Pi { target, data, .. } if target == "app" && data == "do it")
        );
    }

    #[test]
    fn double_hyphen_in_comment_rejected() {
        assert!(Tokenizer::new("<a><!-- a -- b --></a>").tokenize_all().is_err());
    }

    #[test]
    fn cdata_is_text() {
        let t = toks("<a><![CDATA[<raw> & stuff]]></a>");
        assert!(matches!(&t[1], Token::Text { value, .. } if value == "<raw> & stuff"));
    }

    #[test]
    fn xml_decl_captured() {
        let t = toks("<?xml version=\"1.0\"?><a/>");
        assert!(matches!(&t[0], Token::XmlDecl { raw, .. } if raw.contains("version")));
    }

    #[test]
    fn doctype_system_and_subset() {
        let t = toks(
            r#"<!DOCTYPE laboratory SYSTEM "laboratory.dtd" [<!ELEMENT x (#PCDATA)>]><laboratory/>"#,
        );
        match &t[0] {
            Token::Doctype { decl, .. } => {
                assert_eq!(decl.name, "laboratory");
                assert_eq!(decl.system_id.as_deref(), Some("laboratory.dtd"));
                assert!(decl.internal_subset.as_deref().unwrap().contains("<!ELEMENT x"));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn doctype_public() {
        let t = toks(r#"<!DOCTYPE html PUBLIC "-//W3C//DTD" "http://x/dtd"><html/>"#);
        match &t[0] {
            Token::Doctype { decl, .. } => {
                assert_eq!(decl.public_id.as_deref(), Some("-//W3C//DTD"));
                assert_eq!(decl.system_id.as_deref(), Some("http://x/dtd"));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn position_tracking() {
        let mut tk = Tokenizer::new("<a>\n  <b/>\n</a>");
        tk.next_token().unwrap(); // <a>
        tk.next_token().unwrap(); // text
        match tk.next_token().unwrap().unwrap() {
            Token::StartTag { pos, .. } => {
                assert_eq!(pos.line, 2);
                assert_eq!(pos.col, 3);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn raw_lt_in_attribute_rejected() {
        assert!(Tokenizer::new("<a x=\"a<b\"/>").tokenize_all().is_err());
    }

    #[test]
    fn unterminated_tag_is_eof_error() {
        let e = Tokenizer::new("<a ").tokenize_all().unwrap_err();
        assert_eq!(e.kind, XmlErrorKind::UnexpectedEof);
    }

    #[test]
    fn entity_expansion_cap_enforced() {
        let doc = format!("<a>{}</a>", "&amp;".repeat(50));
        let small = Limits { max_entity_expansion: 10, ..Limits::default() };
        let e = Tokenizer::with_limits(&doc, &small).tokenize_all().unwrap_err();
        assert_eq!(e.kind, XmlErrorKind::LimitExceeded(LimitKind::EntityExpansion));
        // The default cap is far above 50 characters.
        assert!(Tokenizer::new(&doc).tokenize_all().is_ok());
    }

    #[test]
    fn expansion_cap_counts_attribute_values_too() {
        let doc = format!("<a x=\"{}\"/>", "&#65;".repeat(20));
        let small = Limits { max_entity_expansion: 5, ..Limits::default() };
        let e = Tokenizer::with_limits(&doc, &small).tokenize_all().unwrap_err();
        assert_eq!(e.kind, XmlErrorKind::LimitExceeded(LimitKind::EntityExpansion));
    }
}
