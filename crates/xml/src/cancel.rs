//! Request-scoped deadlines and cooperative cancellation.
//!
//! A [`CancelToken`] is the time-domain analogue of the byte/node caps in
//! [`crate::limits`]: it bounds *when* a computation must stop rather
//! than *how much* it may consume. One token is minted per request and
//! threaded through every layer — the parser's node loop, the XPath
//! evaluator's budget checkpoints, the labeling frontier and its fan-out
//! workers, the compiled fast path — each of which polls it at loop
//! granularity and unwinds with a typed [`Cancelled`] error the moment
//! it trips. Nothing is killed from outside: cancellation is always
//! cooperative, so every layer's cleanup (core leases, budget permits,
//! cache gauges) runs on the normal drop path.
//!
//! A token trips for one of three [`CancelReason`]s:
//!
//! - **`Explicit`** — somebody called [`CancelToken::cancel`] (tests,
//!   admin action, or the soak harness);
//! - **`DeadlineExceeded`** — the wall-clock deadline the token was
//!   built with has passed;
//! - **`ClientGone`** — the server observed the client disconnect and
//!   called [`CancelToken::cancel_with`], so the remaining compute would
//!   be thrown away anyway.
//!
//! Polling cost: an explicit cancel is a single relaxed atomic load.
//! The deadline comparison needs `Instant::now()`, so it is amortized —
//! consulted once every [`DEADLINE_STRIDE`] polls — keeping the
//! uncancelled hot path within the <5% overhead budget the benches gate
//! (B16). The worst-case detection lag this introduces is
//! `DEADLINE_STRIDE` loop iterations, far inside the 10 ms
//! cancellation-latency target.

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How many polls may pass between wall-clock deadline consultations.
/// Powers of two keep the stride check a mask.
pub const DEADLINE_STRIDE: u64 = 64;

/// Why a token tripped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CancelReason {
    /// [`CancelToken::cancel`] was called.
    Explicit,
    /// The request's deadline passed.
    DeadlineExceeded,
    /// The client hung up; the result has no recipient.
    ClientGone,
}

impl CancelReason {
    /// Stable snake_case name (metric label value).
    pub fn as_str(&self) -> &'static str {
        match self {
            CancelReason::Explicit => "explicit",
            CancelReason::DeadlineExceeded => "deadline",
            CancelReason::ClientGone => "client_gone",
        }
    }
}

impl fmt::Display for CancelReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CancelReason::Explicit => write!(f, "cancelled"),
            CancelReason::DeadlineExceeded => write!(f, "deadline exceeded"),
            CancelReason::ClientGone => write!(f, "client disconnected"),
        }
    }
}

/// The typed error a cancelled computation unwinds with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cancelled {
    /// Why the token tripped.
    pub reason: CancelReason,
}

impl fmt::Display for Cancelled {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "request cancelled: {}", self.reason)
    }
}

impl std::error::Error for Cancelled {}

// Reason encoding for the atomic (0 = not cancelled).
const R_NONE: u8 = 0;
const R_EXPLICIT: u8 = 1;
const R_DEADLINE: u8 = 2;
const R_CLIENT_GONE: u8 = 3;

#[derive(Debug)]
struct Inner {
    /// Fast flag every poll reads; set by `cancel*` and by the first
    /// poll that observes the deadline passed.
    cancelled: AtomicBool,
    /// `R_*` code of the first reason that tripped (first writer wins).
    reason: AtomicU8,
    /// Absolute deadline, when the token has one.
    deadline: Option<Instant>,
    /// Poll counter for amortizing the `Instant::now()` deadline check.
    polls: AtomicU64,
    /// Test/soak hook: trip with `Explicit` once `polls` reaches this.
    /// `u64::MAX` = never. Gives differential tests a *deterministic*
    /// "cancel at the k-th checkpoint" knob, independent of wall time.
    trip_at_poll: AtomicU64,
}

/// A cloneable, thread-safe cancellation token with an optional
/// wall-clock deadline. Clones share state: cancelling one cancels all.
#[derive(Debug, Clone)]
pub struct CancelToken {
    inner: Arc<Inner>,
}

impl Default for CancelToken {
    fn default() -> CancelToken {
        CancelToken::never()
    }
}

impl CancelToken {
    fn with_deadline_opt(deadline: Option<Instant>) -> CancelToken {
        CancelToken {
            inner: Arc::new(Inner {
                cancelled: AtomicBool::new(false),
                reason: AtomicU8::new(R_NONE),
                deadline,
                polls: AtomicU64::new(0),
                trip_at_poll: AtomicU64::new(u64::MAX),
            }),
        }
    }

    /// A token that only trips when [`CancelToken::cancel`] is called.
    pub fn never() -> CancelToken {
        CancelToken::with_deadline_opt(None)
    }

    /// A token that trips once `deadline` passes (or on explicit cancel,
    /// whichever comes first).
    pub fn with_deadline(deadline: Instant) -> CancelToken {
        CancelToken::with_deadline_opt(Some(deadline))
    }

    /// A token that trips `budget` from now.
    pub fn with_timeout(budget: Duration) -> CancelToken {
        CancelToken::with_deadline(Instant::now() + budget)
    }

    /// A token that trips with [`CancelReason::Explicit`] at the `n`-th
    /// poll (0 trips on the first poll). Deterministic-cancellation hook
    /// for the differential tests and the chaos harness: "cancel at a
    /// random point" becomes "cancel at poll k", reproducible per seed.
    pub fn cancel_after_polls(n: u64) -> CancelToken {
        let t = CancelToken::never();
        t.inner.trip_at_poll.store(n, Ordering::Relaxed);
        t
    }

    /// Trips the token (idempotent; the first reason sticks).
    pub fn cancel(&self) {
        self.cancel_with(CancelReason::Explicit);
    }

    /// Trips the token with an explicit reason (idempotent).
    pub fn cancel_with(&self, reason: CancelReason) {
        let code = match reason {
            CancelReason::Explicit => R_EXPLICIT,
            CancelReason::DeadlineExceeded => R_DEADLINE,
            CancelReason::ClientGone => R_CLIENT_GONE,
        };
        let _ =
            self.inner
                .reason
                .compare_exchange(R_NONE, code, Ordering::AcqRel, Ordering::Acquire);
        self.inner.cancelled.store(true, Ordering::Release);
    }

    /// The reason the token tripped, if it has.
    pub fn reason(&self) -> Option<CancelReason> {
        match self.inner.reason.load(Ordering::Acquire) {
            R_EXPLICIT => Some(CancelReason::Explicit),
            R_DEADLINE => Some(CancelReason::DeadlineExceeded),
            R_CLIENT_GONE => Some(CancelReason::ClientGone),
            _ => None,
        }
    }

    /// The absolute deadline, when the token carries one.
    pub fn deadline(&self) -> Option<Instant> {
        self.inner.deadline
    }

    /// Time left before the deadline (`None` when the token has no
    /// deadline; zero once it has passed).
    pub fn remaining(&self) -> Option<Duration> {
        self.inner.deadline.map(|d| d.saturating_duration_since(Instant::now()))
    }

    /// `true` once the token has tripped. Checks the fast flag only —
    /// use [`CancelToken::poll`] on hot loops so deadlines are observed.
    pub fn is_cancelled(&self) -> bool {
        self.inner.cancelled.load(Ordering::Acquire)
    }

    /// The hot-loop checkpoint: returns `Err(Cancelled)` once the token
    /// has tripped. An explicit cancel is observed immediately (one
    /// relaxed load); the wall-clock deadline is consulted every
    /// [`DEADLINE_STRIDE`] polls to keep the uncancelled path cheap.
    #[inline]
    pub fn poll(&self) -> Result<(), Cancelled> {
        if self.inner.cancelled.load(Ordering::Relaxed) {
            return Err(self.as_error());
        }
        let n = self.inner.polls.fetch_add(1, Ordering::Relaxed);
        if n >= self.inner.trip_at_poll.load(Ordering::Relaxed) {
            self.cancel_with(CancelReason::Explicit);
            return Err(self.as_error());
        }
        if n % DEADLINE_STRIDE == 0 {
            return self.check_deadline();
        }
        Ok(())
    }

    /// A boundary checkpoint (stage transitions, task handoffs): always
    /// consults the wall clock, never amortized.
    pub fn check(&self) -> Result<(), Cancelled> {
        if self.inner.cancelled.load(Ordering::Acquire) {
            return Err(self.as_error());
        }
        self.check_deadline()
    }

    fn check_deadline(&self) -> Result<(), Cancelled> {
        if let Some(d) = self.inner.deadline {
            if Instant::now() >= d {
                self.cancel_with(CancelReason::DeadlineExceeded);
                return Err(self.as_error());
            }
        }
        Ok(())
    }

    /// The [`Cancelled`] error for the current (tripped) state.
    fn as_error(&self) -> Cancelled {
        Cancelled { reason: self.reason().unwrap_or(CancelReason::Explicit) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn never_token_never_trips() {
        let t = CancelToken::never();
        for _ in 0..10_000 {
            assert!(t.poll().is_ok());
        }
        assert!(t.check().is_ok());
        assert!(!t.is_cancelled());
        assert_eq!(t.reason(), None);
        assert_eq!(t.remaining(), None);
    }

    #[test]
    fn explicit_cancel_is_observed_immediately_and_shared_by_clones() {
        let t = CancelToken::never();
        let c = t.clone();
        t.cancel();
        assert!(c.is_cancelled());
        let e = c.poll().unwrap_err();
        assert_eq!(e.reason, CancelReason::Explicit);
        assert_eq!(c.check().unwrap_err().reason, CancelReason::Explicit);
    }

    #[test]
    fn first_reason_sticks() {
        let t = CancelToken::never();
        t.cancel_with(CancelReason::ClientGone);
        t.cancel();
        assert_eq!(t.reason(), Some(CancelReason::ClientGone));
        assert_eq!(t.poll().unwrap_err().reason, CancelReason::ClientGone);
    }

    #[test]
    fn expired_deadline_trips_within_a_stride() {
        let t = CancelToken::with_deadline(Instant::now() - Duration::from_millis(1));
        let mut tripped = 0u64;
        for i in 0..=DEADLINE_STRIDE {
            if t.poll().is_err() {
                tripped = i + 1;
                break;
            }
        }
        assert!(tripped > 0 && tripped <= DEADLINE_STRIDE + 1, "tripped after {tripped} polls");
        assert_eq!(t.reason(), Some(CancelReason::DeadlineExceeded));
        assert_eq!(t.remaining(), Some(Duration::ZERO));
    }

    #[test]
    fn check_observes_deadline_without_amortization() {
        let t = CancelToken::with_timeout(Duration::ZERO);
        assert_eq!(t.check().unwrap_err().reason, CancelReason::DeadlineExceeded);
    }

    #[test]
    fn future_deadline_does_not_trip() {
        let t = CancelToken::with_timeout(Duration::from_secs(3600));
        for _ in 0..1_000 {
            assert!(t.poll().is_ok());
        }
        assert!(t.remaining().unwrap() > Duration::from_secs(3000));
    }

    #[test]
    fn cancel_after_polls_is_deterministic() {
        for k in [0u64, 1, 7, 100] {
            let t = CancelToken::cancel_after_polls(k);
            let mut survived = 0u64;
            for _ in 0..=k + 1 {
                if t.poll().is_err() {
                    break;
                }
                survived += 1;
            }
            assert_eq!(survived, k, "token must trip exactly at poll {k}");
        }
    }

    #[test]
    fn display_names_reason() {
        let e = Cancelled { reason: CancelReason::DeadlineExceeded };
        assert!(e.to_string().contains("deadline"));
        assert_eq!(CancelReason::ClientGone.as_str(), "client_gone");
        assert_eq!(CancelReason::Explicit.as_str(), "explicit");
        assert_eq!(CancelReason::DeadlineExceeded.as_str(), "deadline");
    }
}
