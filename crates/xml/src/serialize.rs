//! Serialization — the "unparsing" step of the paper's §7 pipeline.
//!
//! Turns a (possibly pruned) DOM tree back into XML text. Two styles:
//! compact (canonical, no inserted whitespace — used by tests that compare
//! documents textually) and pretty-printed (indented — used by the
//! `figures` binary and examples).

use crate::dom::{Doctype, Document, NodeData, NodeId};
use crate::escape::{escape_attr, escape_text};

/// Serializer configuration.
#[derive(Debug, Clone)]
pub struct SerializeOptions {
    /// Indent width; `None` means compact output.
    pub indent: Option<usize>,
    /// Emit `<?xml version="1.0"?>`.
    pub xml_decl: bool,
    /// Emit the document's `<!DOCTYPE ...>` if present.
    pub doctype: bool,
}

impl Default for SerializeOptions {
    fn default() -> Self {
        SerializeOptions { indent: None, xml_decl: false, doctype: true }
    }
}

impl SerializeOptions {
    /// Pretty-printing with 2-space indent, declaration and doctype.
    pub fn pretty() -> Self {
        SerializeOptions { indent: Some(2), xml_decl: true, doctype: true }
    }

    /// Compact output without prolog, for textual comparisons.
    pub fn canonical() -> Self {
        SerializeOptions { indent: None, xml_decl: false, doctype: false }
    }
}

/// Serializes the whole document with `opts`.
pub fn serialize(doc: &Document, opts: &SerializeOptions) -> String {
    let mut out = String::new();
    if opts.xml_decl {
        out.push_str("<?xml version=\"1.0\" encoding=\"UTF-8\"?>");
        if opts.indent.is_some() {
            out.push('\n');
        }
    }
    if opts.doctype {
        if let Some(dt) = &doc.doctype {
            write_doctype(dt, &mut out);
            if opts.indent.is_some() {
                out.push('\n');
            }
        }
    }
    write_node(doc, doc.root(), opts, 0, &mut out);
    if opts.indent.is_some() {
        out.push('\n');
    }
    out
}

/// Serializes a single subtree compactly (no prolog).
pub fn serialize_node(doc: &Document, id: NodeId) -> String {
    let mut out = String::new();
    write_node(doc, id, &SerializeOptions::canonical(), 0, &mut out);
    out
}

fn write_doctype(dt: &Doctype, out: &mut String) {
    out.push_str("<!DOCTYPE ");
    out.push_str(&dt.name);
    match (&dt.public_id, &dt.system_id) {
        (Some(p), Some(s)) => {
            out.push_str(&format!(" PUBLIC \"{p}\" \"{s}\""));
        }
        (None, Some(s)) => {
            out.push_str(&format!(" SYSTEM \"{s}\""));
        }
        _ => {}
    }
    if let Some(subset) = &dt.internal_subset {
        out.push_str(" [");
        out.push_str(subset);
        out.push(']');
    }
    out.push('>');
}

fn write_node(doc: &Document, id: NodeId, opts: &SerializeOptions, depth: usize, out: &mut String) {
    match &doc.node(id).data {
        NodeData::Element { name, .. } => {
            indent(opts, depth, out);
            out.push('<');
            out.push_str(name);
            for &a in doc.attributes(id) {
                if let NodeData::Attr { name, value } = &doc.node(a).data {
                    out.push(' ');
                    out.push_str(name);
                    out.push_str("=\"");
                    out.push_str(&escape_attr(value));
                    out.push('"');
                }
            }
            let children = doc.children(id);
            if children.is_empty() {
                out.push_str("/>");
                return;
            }
            out.push('>');
            // Mixed content (any text child) is serialized inline to keep
            // the text exact; element-only content may be indented.
            let mixed = children.iter().any(|&c| doc.is_text(c));
            if mixed || opts.indent.is_none() {
                for &c in children {
                    write_inline(doc, c, out);
                }
            } else {
                for &c in children {
                    newline(opts, out);
                    write_node(doc, c, opts, depth + 1, out);
                }
                newline(opts, out);
                indent(opts, depth, out);
            }
            out.push_str("</");
            out.push_str(name);
            out.push('>');
        }
        _ => write_inline(doc, id, out),
    }
}

fn write_inline(doc: &Document, id: NodeId, out: &mut String) {
    match &doc.node(id).data {
        NodeData::Element { .. } => write_node(doc, id, &SerializeOptions::canonical(), 0, out),
        NodeData::Text(t) => out.push_str(&escape_text(t)),
        NodeData::Comment(t) => {
            out.push_str("<!--");
            out.push_str(t);
            out.push_str("-->");
        }
        NodeData::Pi { target, data } => {
            out.push_str("<?");
            out.push_str(target);
            if !data.is_empty() {
                out.push(' ');
                out.push_str(data);
            }
            out.push_str("?>");
        }
        NodeData::Attr { .. } => {}
    }
}

fn indent(opts: &SerializeOptions, depth: usize, out: &mut String) {
    if let Some(w) = opts.indent {
        for _ in 0..depth * w {
            out.push(' ');
        }
    }
}

fn newline(opts: &SerializeOptions, out: &mut String) {
    if opts.indent.is_some() {
        out.push('\n');
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    #[test]
    fn compact_round_trip() {
        let src = r#"<lab><project name="p &amp; q"><paper/>text &lt;here&gt;</project></lab>"#;
        let d = parse(src).unwrap();
        let out = serialize(&d, &SerializeOptions::canonical());
        assert_eq!(out, src);
    }

    #[test]
    fn empty_element_self_closes() {
        let d = parse("<a><b></b></a>").unwrap();
        assert_eq!(serialize(&d, &SerializeOptions::canonical()), "<a><b/></a>");
    }

    #[test]
    fn pretty_print_indents_element_content() {
        let d = parse("<a><b><c/></b></a>").unwrap();
        let out = serialize(&d, &SerializeOptions::pretty());
        assert!(out.contains("<?xml"), "{out}");
        assert!(out.contains("\n  <b>"), "{out}");
        assert!(out.contains("\n    <c/>"), "{out}");
    }

    #[test]
    fn mixed_content_stays_inline() {
        let src = "<p>hello <b>world</b> again</p>";
        let d = parse(src).unwrap();
        let pretty = serialize(&d, &SerializeOptions::pretty());
        assert!(pretty.contains("hello <b>world</b> again"), "{pretty}");
    }

    #[test]
    fn doctype_emitted() {
        let d = parse("<!DOCTYPE lab SYSTEM \"lab.dtd\"><lab/>").unwrap();
        let out = serialize(&d, &SerializeOptions::default());
        assert_eq!(out, "<!DOCTYPE lab SYSTEM \"lab.dtd\"><lab/>");
    }

    #[test]
    fn attribute_escaping() {
        let mut d = Document::new("a");
        d.set_attribute(d.root(), "t", "a\"b<c>&d").unwrap();
        let out = serialize(&d, &SerializeOptions::canonical());
        assert_eq!(out, "<a t=\"a&quot;b&lt;c&gt;&amp;d\"/>");
        // And it parses back to the same value.
        let d2 = parse(&out).unwrap();
        assert_eq!(d2.attribute(d2.root(), "t"), Some("a\"b<c>&d"));
    }

    #[test]
    fn serialize_single_node() {
        let d = parse("<a><b x=\"1\">t</b><c/></a>").unwrap();
        let b = d.child_elements(d.root()).next().unwrap();
        assert_eq!(serialize_node(&d, b), "<b x=\"1\">t</b>");
    }

    #[test]
    fn comments_and_pis_round_trip() {
        let src = "<a><!--note--><?app data?></a>";
        let d = parse(src).unwrap();
        assert_eq!(serialize(&d, &SerializeOptions::canonical()), src);
    }
}
