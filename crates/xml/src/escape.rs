//! Escaping and entity/character-reference resolution.
//!
//! The processor resolves the five predefined entities (`&lt;`, `&gt;`,
//! `&amp;`, `&apos;`, `&quot;`) and decimal/hexadecimal character
//! references. General entities declared in a DTD are outside the scope of
//! the paper (its §2 explicitly restricts the model to the logical
//! structure) and are reported as [`XmlErrorKind::UnknownEntity`].

use crate::error::{Pos, Result, XmlError, XmlErrorKind};
use crate::name::is_xml_char;

/// Escapes `s` for use as element character data.
///
/// `<`, `&` must be escaped; we also escape `>` for symmetry with common
/// serializers (and to protect `]]>`).
pub fn escape_text(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '&' => out.push_str("&amp;"),
            _ => out.push(c),
        }
    }
    out
}

/// Escapes `s` for use inside a double-quoted attribute value.
pub fn escape_attr(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '&' => out.push_str("&amp;"),
            '"' => out.push_str("&quot;"),
            '\n' => out.push_str("&#10;"),
            '\t' => out.push_str("&#9;"),
            '\r' => out.push_str("&#13;"),
            _ => out.push(c),
        }
    }
    out
}

/// Resolves a single entity or character reference body (the text between
/// `&` and `;`). Returns the replacement character(s).
pub fn resolve_reference(body: &str, pos: Pos) -> Result<char> {
    match body {
        "lt" => Ok('<'),
        "gt" => Ok('>'),
        "amp" => Ok('&'),
        "apos" => Ok('\''),
        "quot" => Ok('"'),
        _ => {
            if let Some(num) = body.strip_prefix('#') {
                let code =
                    if let Some(hex) = num.strip_prefix('x').or_else(|| num.strip_prefix('X')) {
                        u32::from_str_radix(hex, 16)
                    } else {
                        num.parse::<u32>()
                    };
                let code = code.map_err(|_| {
                    XmlError::new(XmlErrorKind::InvalidCharRef(num.to_string()), pos)
                })?;
                let c = char::from_u32(code).ok_or_else(|| {
                    XmlError::new(XmlErrorKind::InvalidCharRef(num.to_string()), pos)
                })?;
                if !is_xml_char(c) {
                    return Err(XmlError::new(XmlErrorKind::InvalidCharRef(num.to_string()), pos));
                }
                Ok(c)
            } else {
                Err(XmlError::new(XmlErrorKind::UnknownEntity(body.to_string()), pos))
            }
        }
    }
}

/// Unescapes a string that may contain entity and character references.
///
/// Used for attribute values captured by the tokenizer and by the DTD
/// parser for default values.
pub fn unescape(s: &str, pos: Pos) -> Result<String> {
    if !s.contains('&') {
        return Ok(s.to_string());
    }
    let mut out = String::with_capacity(s.len());
    let mut chars = s.char_indices();
    while let Some((_, c)) = chars.next() {
        if c != '&' {
            out.push(c);
            continue;
        }
        let mut body = String::new();
        let mut terminated = false;
        for (_, c2) in chars.by_ref() {
            if c2 == ';' {
                terminated = true;
                break;
            }
            body.push(c2);
        }
        if !terminated {
            return Err(XmlError::new(XmlErrorKind::UnknownEntity(body), pos));
        }
        out.push(resolve_reference(&body, pos)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_escaping_round_trip() {
        let raw = "a < b && c > d";
        let esc = escape_text(raw);
        assert_eq!(esc, "a &lt; b &amp;&amp; c &gt; d");
        assert_eq!(unescape(&esc, Pos::START).unwrap(), raw);
    }

    #[test]
    fn attr_escaping_quotes_and_newlines() {
        assert_eq!(escape_attr("say \"hi\"\n"), "say &quot;hi&quot;&#10;");
    }

    #[test]
    fn char_refs_decimal_and_hex() {
        assert_eq!(unescape("&#65;&#x42;&#x63;", Pos::START).unwrap(), "ABc");
    }

    #[test]
    fn predefined_entities() {
        assert_eq!(unescape("&lt;&gt;&amp;&apos;&quot;", Pos::START).unwrap(), "<>&'\"");
    }

    #[test]
    fn unknown_entity_is_error() {
        let e = unescape("&nbsp;", Pos::START).unwrap_err();
        assert!(matches!(e.kind, XmlErrorKind::UnknownEntity(ref n) if n == "nbsp"));
    }

    #[test]
    fn unterminated_reference_is_error() {
        assert!(unescape("&lt", Pos::START).is_err());
    }

    #[test]
    fn invalid_char_ref_rejected() {
        assert!(unescape("&#0;", Pos::START).is_err());
        assert!(unescape("&#x110000;", Pos::START).is_err());
        assert!(unescape("&#xZZ;", Pos::START).is_err());
    }
}
