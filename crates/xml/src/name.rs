//! XML Name validation (XML 1.0 production 5, simplified to the common case).
//!
//! The paper's documents use plain ASCII names; we additionally accept any
//! non-ASCII alphabetic character so that realistic international documents
//! parse, without dragging in the full Unicode tables of the REC.

/// Returns `true` if `c` may start an XML Name.
#[inline]
pub fn is_name_start_char(c: char) -> bool {
    c.is_ascii_alphabetic() || c == '_' || c == ':' || (!c.is_ascii() && c.is_alphabetic())
}

/// Returns `true` if `c` may continue an XML Name.
#[inline]
pub fn is_name_char(c: char) -> bool {
    is_name_start_char(c) || c.is_ascii_digit() || c == '-' || c == '.'
}

/// Returns `true` if `s` is a valid XML Name.
pub fn is_valid_name(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if is_name_start_char(c) => chars.all(is_name_char),
        _ => false,
    }
}

/// Returns `true` if `s` is a valid XML Nmtoken (every char a name char).
pub fn is_valid_nmtoken(s: &str) -> bool {
    !s.is_empty() && s.chars().all(is_name_char)
}

/// Returns `true` if `c` is XML whitespace (production 3: `S`).
#[inline]
pub fn is_xml_whitespace(c: char) -> bool {
    matches!(c, ' ' | '\t' | '\r' | '\n')
}

/// Returns `true` if `c` is a legal XML 1.0 character (production 2).
#[inline]
pub fn is_xml_char(c: char) -> bool {
    matches!(c,
        '\u{9}' | '\u{A}' | '\u{D}'
        | '\u{20}'..='\u{D7FF}'
        | '\u{E000}'..='\u{FFFD}'
        | '\u{10000}'..='\u{10FFFF}')
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_names() {
        for n in ["laboratory", "project", "_x", "a-b.c", "ns:tag", "f1name", "é"] {
            assert!(is_valid_name(n), "{n} should be valid");
        }
    }

    #[test]
    fn invalid_names() {
        for n in ["", "1abc", "-a", ".a", "a b", "a<b", "a&b"] {
            assert!(!is_valid_name(n), "{n} should be invalid");
        }
    }

    #[test]
    fn nmtoken_allows_leading_digit() {
        assert!(is_valid_nmtoken("123"));
        assert!(is_valid_nmtoken("1a-b"));
        assert!(!is_valid_nmtoken(""));
        assert!(!is_valid_nmtoken("a b"));
    }

    #[test]
    fn whitespace_set() {
        assert!(is_xml_whitespace(' '));
        assert!(is_xml_whitespace('\t'));
        assert!(is_xml_whitespace('\n'));
        assert!(is_xml_whitespace('\r'));
        assert!(!is_xml_whitespace('\u{A0}'));
    }

    #[test]
    fn xml_char_excludes_controls() {
        assert!(!is_xml_char('\u{0}'));
        assert!(!is_xml_char('\u{B}'));
        assert!(is_xml_char('\t'));
        assert!(is_xml_char('A'));
        assert!(is_xml_char('\u{10FFFF}'));
    }
}
