//! ASCII tree rendering of documents, in the style of the paper's
//! Figure 1(b) and Figure 3: elements as `(name)` circles, attributes as
//! `[name]` squares, values as quoted leaves.

use crate::dom::{Document, NodeData, NodeId};

/// Renders the tree rooted at the document element.
pub fn render_tree(doc: &Document) -> String {
    let mut out = String::new();
    render_node(doc, doc.root(), "", true, &mut out);
    out
}

fn render_node(doc: &Document, id: NodeId, prefix: &str, is_last: bool, out: &mut String) {
    let connector = if prefix.is_empty() {
        ""
    } else if is_last {
        "`-- "
    } else {
        "|-- "
    };
    let label = match &doc.node(id).data {
        NodeData::Element { name, .. } => format!("({name})"),
        NodeData::Attr { name, value } => format!("[{name}] = {value:?}"),
        NodeData::Text(t) => format!("{:?}", truncate(t, 40)),
        NodeData::Comment(t) => format!("<!--{}-->", truncate(t, 30)),
        NodeData::Pi { target, .. } => format!("<?{target}?>"),
    };
    out.push_str(prefix);
    out.push_str(connector);
    out.push_str(&label);
    out.push('\n');

    let child_prefix = if prefix.is_empty() {
        String::new()
    } else if is_last {
        format!("{prefix}    ")
    } else {
        format!("{prefix}|   ")
    };
    let attrs = doc.attributes(id);
    let children = doc.children(id);
    let total = attrs.len() + children.len();
    let mut i = 0usize;
    for &a in attrs {
        i += 1;
        render_node(doc, a, &next_prefix(prefix, &child_prefix), i == total, out);
    }
    for &c in children {
        i += 1;
        render_node(doc, c, &next_prefix(prefix, &child_prefix), i == total, out);
    }
}

fn next_prefix(prefix: &str, child_prefix: &str) -> String {
    if prefix.is_empty() {
        "  ".to_string()
    } else {
        child_prefix.to_string()
    }
}

fn truncate(s: &str, n: usize) -> String {
    if s.chars().count() <= n {
        s.to_string()
    } else {
        let cut: String = s.chars().take(n).collect();
        format!("{cut}…")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    #[test]
    fn renders_elements_attrs_and_text() {
        let d = parse(r#"<lab><project name="Access Models">text</project></lab>"#).unwrap();
        let t = render_tree(&d);
        assert!(t.contains("(lab)"), "{t}");
        assert!(t.contains("(project)"), "{t}");
        assert!(t.contains("[name] = \"Access Models\""), "{t}");
        assert!(t.contains("\"text\""), "{t}");
    }

    #[test]
    fn long_text_truncated() {
        let long = "x".repeat(100);
        let d = parse(&format!("<a>{long}</a>")).unwrap();
        let t = render_tree(&d);
        assert!(t.contains('…'), "{t}");
    }
}
