//! Arena-based DOM.
//!
//! The paper's security processor (its §7) represents documents as DOM
//! Level 1 object trees. We use a **generational-index arena**: a
//! [`Document`] owns a single `Vec` of slots, every link is a [`NodeId`]
//! carrying both the slot index and the slot's generation, and freed
//! slots go on a free list for reuse. This matches the paper's tree
//! model exactly — elements are internal nodes, attributes and text
//! values are leaves attached to their element — while keeping
//! traversals allocation-free and cache-friendly.
//!
//! The generation in each id is what makes in-place *updates* safe: when
//! a subtree is removed ([`Document::remove_subtree`]) its slots are
//! recycled with a bumped generation, so any id that survived from
//! before the removal can never silently alias a new node occupying the
//! same index (the classic ABA hazard of plain index arenas). Accessing
//! a node through a stale id panics instead of reading the wrong node.
//!
//! Attributes are first-class nodes (the paper's Figure 1(b) draws them as
//! squares in the tree) because the labeling algorithm assigns them their
//! own authorization 6-tuples and XPath can address them.

use crate::error::{Pos, Result, XmlError, XmlErrorKind};
use crate::name::is_valid_name;
use std::fmt;

/// Handle to a node within its [`Document`] arena: slot index plus the
/// slot generation current when the node was allocated.
///
/// Ordering is index-major (generation is a tie-break that never fires
/// for ids live in the same document), so for parser-built documents a
/// plain sort of ids is still a document-order sort — the contract the
/// XPath evaluator relies on via [`Document::ids_preordered`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId {
    idx: u32,
    gen: u32,
}

impl NodeId {
    /// Builds an id from raw parts. Normal code receives ids from the
    /// [`Document`] mutation API; this is for tests and tools that
    /// reconstruct ids (pair it with [`Document::node_id_at`]).
    #[inline]
    pub fn new(index: u32, generation: u32) -> Self {
        NodeId { idx: index, gen: generation }
    }

    /// The arena slot index as a `usize`.
    #[inline]
    pub fn index(self) -> usize {
        self.idx as usize
    }

    /// The generation of the slot this id points into.
    #[inline]
    pub fn generation(self) -> u32 {
        self.gen
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.gen == 0 {
            write!(f, "#{}", self.idx)
        } else {
            write!(f, "#{}.g{}", self.idx, self.gen)
        }
    }
}

/// The payload of a node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodeData {
    /// An element: `<name attr...>children</name>`.
    Element {
        /// Tag name.
        name: String,
        /// Attribute nodes, in document order. Each is a `NodeData::Attr`.
        attrs: Vec<NodeId>,
        /// Child nodes (elements, text, comments, PIs), in document order.
        children: Vec<NodeId>,
    },
    /// An attribute `name="value"` of its parent element.
    Attr {
        /// Attribute name.
        name: String,
        /// Attribute value, already unescaped.
        value: String,
    },
    /// Character data (entity references already resolved).
    Text(String),
    /// A comment `<!-- ... -->`.
    Comment(String),
    /// A processing instruction `<?target data?>`.
    Pi {
        /// PI target.
        target: String,
        /// PI data (may be empty).
        data: String,
    },
}

/// A node in the arena: payload plus a parent link.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Node {
    /// Parent node; `None` only for the document element.
    pub parent: Option<NodeId>,
    /// Payload.
    pub data: NodeData,
}

/// One arena slot: the current generation plus the occupying node, if
/// any. A vacant slot's index is on the free list; its generation has
/// already been bumped past every id ever handed out for it.
#[derive(Debug, Clone)]
struct Slot {
    gen: u32,
    node: Option<Node>,
}

/// Captured `<!DOCTYPE ...>` information.
///
/// The processor needs the DTD hook (name + external id + internal subset
/// text) so that schema-level authorizations and the loosening
/// transformation can find the schema; the DTD itself is parsed by
/// `xmlsec-dtd`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Doctype {
    /// The declared document-element name.
    pub name: String,
    /// `SYSTEM` identifier, if present.
    pub system_id: Option<String>,
    /// `PUBLIC` identifier, if present.
    pub public_id: Option<String>,
    /// Raw text of the internal subset (between `[` and `]`), if present.
    pub internal_subset: Option<String>,
}

/// An XML document as a generational arena of nodes.
///
/// Invariants maintained by the mutation API:
/// - `root` is an `Element` with `parent == None`;
/// - every other reachable node's `parent` is the node that lists it in
///   `attrs`/`children`;
/// - attribute names are unique per element;
/// - a live [`NodeId`]'s generation matches its slot's generation, and a
///   freed slot's generation exceeds every id ever issued for it.
///
/// Detached nodes may linger in the arena after pruning (the processor's
/// per-request documents are short-lived); long-lived documents mutated
/// by the update path instead call [`Document::remove_subtree`], which
/// recycles the slots through the free list.
#[derive(Debug, Clone)]
pub struct Document {
    slots: Vec<Slot>,
    free: Vec<u32>,
    root: NodeId,
    /// DOCTYPE declaration, if the source had one.
    pub doctype: Option<Doctype>,
    /// Most recently allocated node (order-invariant tracking).
    last_alloc: NodeId,
    /// Whether arena ids are still a preorder of the tree (attributes
    /// before children). Parser-built documents keep this `true`; callers
    /// that mutate out of order flip it, and consumers (the XPath
    /// evaluator) fall back to a structural document-order sort.
    ids_preordered: bool,
}

#[cold]
#[inline(never)]
fn stale_node_id(id: NodeId, slot_gen: u32, vacant: bool) -> ! {
    if vacant {
        panic!("stale NodeId {id}: slot is vacant (generation now {slot_gen})");
    }
    panic!("stale NodeId {id}: slot was recycled (generation now {slot_gen})");
}

impl Document {
    /// Creates a document whose root element is named `root_name`.
    ///
    /// # Panics
    /// Panics if `root_name` is not a valid XML name.
    pub fn new(root_name: &str) -> Self {
        assert!(is_valid_name(root_name), "invalid root element name {root_name:?}");
        let root = Node {
            parent: None,
            data: NodeData::Element {
                name: root_name.to_string(),
                attrs: Vec::new(),
                children: Vec::new(),
            },
        };
        Document {
            slots: vec![Slot { gen: 0, node: Some(root) }],
            free: Vec::new(),
            root: NodeId::new(0, 0),
            doctype: None,
            last_alloc: NodeId::new(0, 0),
            ids_preordered: true,
        }
    }

    /// `true` while arena ids enumerate the tree in document order
    /// (attributes of an element before its children). Guaranteed for
    /// parser-built documents; appending anywhere except "after
    /// everything so far" — or allocating into a recycled slot — clears
    /// it.
    #[inline]
    pub fn ids_preordered(&self) -> bool {
        self.ids_preordered
    }

    /// Does appending a child under `parent` keep arena ids preordered?
    /// Yes iff `parent` is the last allocated node or one of its
    /// ancestors (the new node then follows everything allocated so far).
    fn append_keeps_preorder(&self, parent: NodeId) -> bool {
        if parent == self.last_alloc {
            return true;
        }
        let mut cur = self.parent(self.last_alloc);
        while let Some(p) = cur {
            if p == parent {
                return true;
            }
            cur = self.parent(p);
        }
        false
    }

    /// The document element.
    #[inline]
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Total number of arena slots (live, detached, and vacant).
    #[inline]
    pub fn arena_len(&self) -> usize {
        self.slots.len()
    }

    /// Number of vacant (recycled, reusable) slots.
    #[inline]
    pub fn free_len(&self) -> usize {
        self.free.len()
    }

    /// Whether `id` is live in this arena: its slot is occupied and the
    /// generations match. Detached-but-not-freed nodes are live.
    pub fn contains(&self, id: NodeId) -> bool {
        self.slots
            .get(id.index())
            .is_some_and(|s| s.gen == id.generation() && s.node.is_some())
    }

    /// The live id occupying slot `index`, if any. The inverse of
    /// [`NodeId::index`] for tools that enumerate the arena.
    pub fn node_id_at(&self, index: usize) -> Option<NodeId> {
        let slot = self.slots.get(index)?;
        slot.node.as_ref()?;
        Some(NodeId::new(index as u32, slot.gen))
    }

    /// The generation currently stored in slot `index` (whether or not
    /// the slot is occupied); `None` past the end of the arena.
    pub fn slot_generation(&self, index: usize) -> Option<u32> {
        self.slots.get(index).map(|s| s.gen)
    }

    /// Immutable access to a node.
    ///
    /// # Panics
    /// Panics if `id` is stale: its slot was freed (and possibly
    /// recycled) since the id was issued.
    #[inline]
    pub fn node(&self, id: NodeId) -> &Node {
        let slot = &self.slots[id.index()];
        match &slot.node {
            Some(n) if slot.gen == id.generation() => n,
            other => stale_node_id(id, slot.gen, other.is_none()),
        }
    }

    /// Mutable access to a node.
    ///
    /// # Panics
    /// Panics if `id` is stale (see [`Document::node`]).
    #[inline]
    pub fn node_mut(&mut self, id: NodeId) -> &mut Node {
        let slot = &mut self.slots[id.index()];
        if slot.gen != id.generation() || slot.node.is_none() {
            let vacant = slot.node.is_none();
            stale_node_id(id, slot.gen, vacant);
        }
        slot.node.as_mut().expect("occupancy checked above")
    }

    fn alloc(&mut self, node: Node) -> NodeId {
        let id = match self.free.pop() {
            Some(idx) => {
                // A recycled (low) index can never extend a preorder.
                self.ids_preordered = false;
                let slot = &mut self.slots[idx as usize];
                debug_assert!(slot.node.is_none(), "free list held an occupied slot");
                slot.node = Some(node);
                NodeId::new(idx, slot.gen)
            }
            None => {
                let idx = u32::try_from(self.slots.len()).expect("arena overflow");
                self.slots.push(Slot { gen: 0, node: Some(node) });
                NodeId::new(idx, 0)
            }
        };
        self.last_alloc = id;
        id
    }

    // ------------------------------------------------------------------
    // Construction
    // ------------------------------------------------------------------

    /// Creates a new element named `name` and appends it to `parent`'s children.
    pub fn append_element(&mut self, parent: NodeId, name: &str) -> NodeId {
        debug_assert!(is_valid_name(name), "invalid element name {name:?}");
        self.ids_preordered &= self.append_keeps_preorder(parent);
        let id = self.alloc(Node {
            parent: Some(parent),
            data: NodeData::Element {
                name: name.to_string(),
                attrs: Vec::new(),
                children: Vec::new(),
            },
        });
        self.children_mut(parent).push(id);
        id
    }

    /// Appends a text node to `parent`.
    pub fn append_text(&mut self, parent: NodeId, text: &str) -> NodeId {
        self.ids_preordered &= self.append_keeps_preorder(parent);
        let id = self.alloc(Node { parent: Some(parent), data: NodeData::Text(text.to_string()) });
        self.children_mut(parent).push(id);
        id
    }

    /// Appends a comment node to `parent`.
    pub fn append_comment(&mut self, parent: NodeId, text: &str) -> NodeId {
        self.ids_preordered &= self.append_keeps_preorder(parent);
        let id =
            self.alloc(Node { parent: Some(parent), data: NodeData::Comment(text.to_string()) });
        self.children_mut(parent).push(id);
        id
    }

    /// Appends a processing instruction to `parent`.
    pub fn append_pi(&mut self, parent: NodeId, target: &str, data: &str) -> NodeId {
        self.ids_preordered &= self.append_keeps_preorder(parent);
        let id = self.alloc(Node {
            parent: Some(parent),
            data: NodeData::Pi { target: target.to_string(), data: data.to_string() },
        });
        self.children_mut(parent).push(id);
        id
    }

    /// Sets (or replaces) attribute `name` on `element`, returning the
    /// attribute node id.
    ///
    /// Returns an error if `element` is not an element.
    pub fn set_attribute(&mut self, element: NodeId, name: &str, value: &str) -> Result<NodeId> {
        debug_assert!(is_valid_name(name), "invalid attribute name {name:?}");
        if let Some(existing) = self.attribute_node(element, name) {
            if let NodeData::Attr { value: v, .. } = &mut self.node_mut(existing).data {
                *v = value.to_string();
            }
            return Ok(existing);
        }
        // A new attribute keeps preorder while its element has no
        // children yet and is still "current": either it was the most
        // recent allocation or the most recent allocation was one of its
        // own attributes (attributes sort before children in document
        // order).
        self.ids_preordered &= self.children(element).is_empty()
            && (element == self.last_alloc
                || (self.parent(self.last_alloc) == Some(element)
                    && self.is_attribute(self.last_alloc)));
        let id = self.alloc(Node {
            parent: Some(element),
            data: NodeData::Attr { name: name.to_string(), value: value.to_string() },
        });
        match &mut self.node_mut(element).data {
            NodeData::Element { attrs, .. } => {
                attrs.push(id);
                Ok(id)
            }
            _ => Err(XmlError::new(XmlErrorKind::MalformedAttribute(name.to_string()), Pos::START)),
        }
    }

    fn children_mut(&mut self, id: NodeId) -> &mut Vec<NodeId> {
        match &mut self.node_mut(id).data {
            NodeData::Element { children, .. } => children,
            other => panic!("cannot append children to non-element node: {other:?}"),
        }
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// Element/tag name, or `None` for non-elements.
    pub fn element_name(&self, id: NodeId) -> Option<&str> {
        match &self.node(id).data {
            NodeData::Element { name, .. } => Some(name),
            _ => None,
        }
    }

    /// The name of a node usable in path expressions: the tag name for
    /// elements, the attribute name for attributes, `None` otherwise.
    pub fn node_name(&self, id: NodeId) -> Option<&str> {
        match &self.node(id).data {
            NodeData::Element { name, .. } | NodeData::Attr { name, .. } => Some(name),
            _ => None,
        }
    }

    /// Returns `true` if `id` is an element.
    #[inline]
    pub fn is_element(&self, id: NodeId) -> bool {
        matches!(self.node(id).data, NodeData::Element { .. })
    }

    /// Returns `true` if `id` is an attribute node.
    #[inline]
    pub fn is_attribute(&self, id: NodeId) -> bool {
        matches!(self.node(id).data, NodeData::Attr { .. })
    }

    /// Returns `true` if `id` is a text node.
    #[inline]
    pub fn is_text(&self, id: NodeId) -> bool {
        matches!(self.node(id).data, NodeData::Text(_))
    }

    /// Child nodes of an element (empty slice otherwise).
    pub fn children(&self, id: NodeId) -> &[NodeId] {
        match &self.node(id).data {
            NodeData::Element { children, .. } => children,
            _ => &[],
        }
    }

    /// Attribute nodes of an element (empty slice otherwise).
    pub fn attributes(&self, id: NodeId) -> &[NodeId] {
        match &self.node(id).data {
            NodeData::Element { attrs, .. } => attrs,
            _ => &[],
        }
    }

    /// Element children of an element, skipping text/comment/PI nodes.
    pub fn child_elements<'a>(&'a self, id: NodeId) -> impl Iterator<Item = NodeId> + 'a {
        self.children(id).iter().copied().filter(|&c| self.is_element(c))
    }

    /// Parent of `id`.
    #[inline]
    pub fn parent(&self, id: NodeId) -> Option<NodeId> {
        self.node(id).parent
    }

    /// The attribute node named `name` on `element`, if any.
    pub fn attribute_node(&self, element: NodeId, name: &str) -> Option<NodeId> {
        self.attributes(element).iter().copied().find(|&a| match &self.node(a).data {
            NodeData::Attr { name: n, .. } => n == name,
            _ => false,
        })
    }

    /// The value of attribute `name` on `element`, if present.
    pub fn attribute(&self, element: NodeId, name: &str) -> Option<&str> {
        self.attribute_node(element, name).and_then(|a| match &self.node(a).data {
            NodeData::Attr { value, .. } => Some(value.as_str()),
            _ => None,
        })
    }

    /// The value of an attribute node.
    pub fn attr_value(&self, attr: NodeId) -> Option<&str> {
        match &self.node(attr).data {
            NodeData::Attr { value, .. } => Some(value.as_str()),
            _ => None,
        }
    }

    /// Concatenated text of all descendant text nodes (XPath's
    /// string-value of an element), or the value for attribute/text nodes.
    pub fn text_value(&self, id: NodeId) -> String {
        match &self.node(id).data {
            NodeData::Attr { value, .. } => value.clone(),
            NodeData::Text(t) => t.clone(),
            NodeData::Comment(_) | NodeData::Pi { .. } => String::new(),
            NodeData::Element { .. } => {
                let mut out = String::new();
                self.collect_text(id, &mut out);
                out
            }
        }
    }

    fn collect_text(&self, id: NodeId, out: &mut String) {
        for &c in self.children(id) {
            match &self.node(c).data {
                NodeData::Text(t) => out.push_str(t),
                NodeData::Element { .. } => self.collect_text(c, out),
                _ => {}
            }
        }
    }

    // ------------------------------------------------------------------
    // Traversal
    // ------------------------------------------------------------------

    /// Preorder (document-order) traversal of elements and their
    /// attributes, starting at `start`. Attributes of an element are
    /// visited right after the element itself, before its children — the
    /// order the labeling algorithm needs.
    pub fn preorder(&self, start: NodeId) -> Preorder<'_> {
        Preorder { doc: self, stack: vec![start] }
    }

    /// All descendant elements of `id` (not including `id`), in document order.
    pub fn descendant_elements(&self, id: NodeId) -> Vec<NodeId> {
        let mut out = Vec::new();
        let mut stack: Vec<NodeId> = self.child_elements(id).collect();
        stack.reverse();
        while let Some(n) = stack.pop() {
            out.push(n);
            let mut kids: Vec<NodeId> = self.child_elements(n).collect();
            kids.reverse();
            stack.extend(kids);
        }
        out
    }

    /// Ancestors of `id`, nearest first (excludes `id` itself).
    pub fn ancestors<'a>(&'a self, id: NodeId) -> impl Iterator<Item = NodeId> + 'a {
        std::iter::successors(self.parent(id), move |&n| self.parent(n))
    }

    /// Depth of `id` (root is 0; an attribute is one deeper than its element).
    pub fn depth(&self, id: NodeId) -> usize {
        self.ancestors(id).count()
    }

    /// Position key of `id` under its parent: attributes sort before
    /// child nodes (they are written inside the start tag), each by
    /// slot index.
    fn sibling_key(&self, id: NodeId) -> (u8, usize) {
        let Some(p) = self.parent(id) else { return (0, 0) };
        if self.is_attribute(id) {
            (0, self.attributes(p).iter().position(|&a| a == id).unwrap_or(usize::MAX))
        } else {
            (1, self.children(p).iter().position(|&c| c == id).unwrap_or(usize::MAX))
        }
    }

    /// True document-order comparison of two reachable nodes.
    ///
    /// Arena ids follow document order for freshly parsed documents, but
    /// mutation (updates inserting elements, late `set_attribute` calls)
    /// can break that correspondence; this comparator is always correct.
    /// Ancestors precede their descendants; an element's attributes
    /// precede its children. Allocation-free: the nodes are lifted to a
    /// common depth, walked up to their lowest common ancestor, and
    /// compared by sibling position there.
    pub fn document_order(&self, a: NodeId, b: NodeId) -> std::cmp::Ordering {
        use std::cmp::Ordering;
        if a == b {
            return Ordering::Equal;
        }
        let (da, db) = (self.depth(a), self.depth(b));
        let (mut x, mut y) = (a, b);
        // Lift the deeper node; if it reaches the other, that other is an
        // ancestor and precedes it.
        for _ in db..da {
            x = self.parent(x).expect("depth accounted for");
        }
        if x == b {
            return Ordering::Greater; // b is an ancestor of a
        }
        for _ in da..db {
            y = self.parent(y).expect("depth accounted for");
        }
        if y == a {
            return Ordering::Less; // a is an ancestor of b
        }
        // Walk both up until just below the common ancestor.
        while self.parent(x) != self.parent(y) {
            x = self.parent(x).expect("nodes share a root");
            y = self.parent(y).expect("nodes share a root");
        }
        self.sibling_key(x).cmp(&self.sibling_key(y))
    }

    /// Number of reachable nodes (elements + attributes + text + other),
    /// computed by traversal — detached arena slots are not counted.
    pub fn count_reachable(&self) -> usize {
        let mut n = 0usize;
        let mut stack = vec![self.root];
        while let Some(id) = stack.pop() {
            n += 1;
            n += self.attributes(id).len();
            for &c in self.children(id) {
                if self.is_element(c) {
                    stack.push(c);
                } else {
                    n += 1;
                }
            }
        }
        n
    }

    // ------------------------------------------------------------------
    // Mutation (pruning and update support)
    // ------------------------------------------------------------------

    /// Detaches `id` from its parent (it stays in the arena, unreachable,
    /// and its id remains valid).
    ///
    /// Detaching the root is not allowed and is a no-op returning `false`.
    pub fn detach(&mut self, id: NodeId) -> bool {
        let Some(p) = self.node(id).parent else { return false };
        let is_attr = self.is_attribute(id);
        match &mut self.node_mut(p).data {
            NodeData::Element { attrs, children, .. } => {
                if is_attr {
                    attrs.retain(|&a| a != id);
                } else {
                    children.retain(|&c| c != id);
                }
            }
            _ => return false,
        }
        self.node_mut(id).parent = None;
        true
    }

    /// Detaches `id` from its parent and frees its whole subtree
    /// (including attribute nodes): the slots are vacated, their
    /// generations bumped, and their indices recycled through the free
    /// list. Every id into the subtree becomes stale. Returns the number
    /// of nodes freed; removing the root is refused (returns 0).
    ///
    /// This is the update path's deletion primitive — unlike
    /// [`Document::detach`], the arena does not grow monotonically under
    /// churn.
    pub fn remove_subtree(&mut self, id: NodeId) -> usize {
        if id == self.root {
            return 0;
        }
        self.detach(id);
        let mut freed = 0usize;
        let mut stack = vec![id];
        while let Some(n) = stack.pop() {
            if let NodeData::Element { attrs, children, .. } = &self.node(n).data {
                stack.extend(attrs.iter().copied());
                stack.extend(children.iter().copied());
            }
            self.free_slot(n);
            freed += 1;
        }
        freed
    }

    /// Vacates one slot: bumps its generation (staling every outstanding
    /// id for it) and recycles the index.
    fn free_slot(&mut self, id: NodeId) {
        let slot = &mut self.slots[id.index()];
        assert!(
            slot.gen == id.generation() && slot.node.is_some(),
            "freeing through a stale NodeId {id}"
        );
        slot.node = None;
        slot.gen = slot.gen.wrapping_add(1);
        self.free.push(id.index() as u32);
        // `last_alloc` must always be live (preorder bookkeeping walks
        // its ancestor chain); fall back to the root, which is sound:
        // after a free the free list is non-empty, so the next alloc
        // recycles a slot and clears `ids_preordered` anyway.
        if self.last_alloc == id {
            self.last_alloc = self.root;
        }
    }

    /// Deep-copies the subtree rooted at `src_id` in `src` into `self`,
    /// appending it under `parent`. Returns the new root of the copy.
    pub fn import_subtree(&mut self, parent: NodeId, src: &Document, src_id: NodeId) -> NodeId {
        match &src.node(src_id).data {
            NodeData::Element { name, .. } => {
                let name = name.clone();
                let new_el = self.append_element(parent, &name);
                for &a in src.attributes(src_id) {
                    if let NodeData::Attr { name, value } = &src.node(a).data {
                        let (n, v) = (name.clone(), value.clone());
                        self.set_attribute(new_el, &n, &v).expect("new node is an element");
                    }
                }
                for &c in src.children(src_id) {
                    self.import_subtree(new_el, src, c);
                }
                new_el
            }
            NodeData::Text(t) => {
                let t = t.clone();
                self.append_text(parent, &t)
            }
            NodeData::Comment(t) => {
                let t = t.clone();
                self.append_comment(parent, &t)
            }
            NodeData::Pi { target, data } => {
                let (t, d) = (target.clone(), data.clone());
                self.append_pi(parent, &t, &d)
            }
            NodeData::Attr { .. } => panic!("cannot import an attribute as a subtree"),
        }
    }

    /// Replaces the subtree rooted at `target` with a deep copy of
    /// `src_id` from `src`, splicing the copy into `target`'s former
    /// position among its parent's children. The old subtree's slots are
    /// freed and recycled. Returns the id of the new subtree root, or
    /// `None` if `target` is the document root (which cannot be
    /// replaced).
    pub fn replace_with_subtree(
        &mut self,
        target: NodeId,
        src: &Document,
        src_id: NodeId,
    ) -> Option<NodeId> {
        let parent = self.parent(target)?;
        let pos = self.children(parent).iter().position(|&c| c == target)?;
        self.remove_subtree(target);
        let new_id = self.import_subtree(parent, src, src_id);
        let children = self.children_mut(parent);
        let last = children.pop().expect("import_subtree appended the new root");
        debug_assert_eq!(last, new_id);
        children.insert(pos, new_id);
        Some(new_id)
    }

    /// Structural equality of two documents (names, attributes in order,
    /// children in order, text). Doctype is ignored.
    pub fn structurally_equal(&self, other: &Document) -> bool {
        fn eq(a: &Document, an: NodeId, b: &Document, bn: NodeId) -> bool {
            match (&a.node(an).data, &b.node(bn).data) {
                (NodeData::Element { name: n1, .. }, NodeData::Element { name: n2, .. }) => {
                    if n1 != n2 {
                        return false;
                    }
                    let (aa, ba) = (a.attributes(an), b.attributes(bn));
                    if aa.len() != ba.len() {
                        return false;
                    }
                    for (&x, &y) in aa.iter().zip(ba) {
                        if a.node(x).data != b.node(y).data {
                            return false;
                        }
                    }
                    let (ac, bc) = (a.children(an), b.children(bn));
                    if ac.len() != bc.len() {
                        return false;
                    }
                    ac.iter().zip(bc).all(|(&x, &y)| eq(a, x, b, y))
                }
                (x, y) => x == y,
            }
        }
        eq(self, self.root, other, other.root)
    }
}

/// Preorder iterator yielding elements and attributes in document order.
pub struct Preorder<'a> {
    doc: &'a Document,
    stack: Vec<NodeId>,
}

impl<'a> Iterator for Preorder<'a> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        let id = self.stack.pop()?;
        if self.doc.is_element(id) {
            // Push children reversed so they pop in document order; then
            // attributes reversed so they come before children.
            let children = self.doc.children(id);
            for &c in children.iter().rev() {
                if self.doc.is_element(c) {
                    self.stack.push(c);
                }
            }
            for &a in self.doc.attributes(id).iter().rev() {
                self.stack.push(a);
            }
        }
        Some(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Document {
        // <lab><project name="p1"><paper/>text</project><project name="p2"/></lab>
        let mut d = Document::new("lab");
        let p1 = d.append_element(d.root(), "project");
        d.set_attribute(p1, "name", "p1").unwrap();
        d.append_element(p1, "paper");
        d.append_text(p1, "text");
        let p2 = d.append_element(d.root(), "project");
        d.set_attribute(p2, "name", "p2").unwrap();
        d
    }

    #[test]
    fn construction_and_navigation() {
        let d = sample();
        let root = d.root();
        assert_eq!(d.element_name(root), Some("lab"));
        let kids: Vec<_> = d.child_elements(root).collect();
        assert_eq!(kids.len(), 2);
        assert_eq!(d.attribute(kids[0], "name"), Some("p1"));
        assert_eq!(d.attribute(kids[1], "name"), Some("p2"));
        assert_eq!(d.parent(kids[0]), Some(root));
    }

    #[test]
    fn set_attribute_replaces_value_in_place() {
        let mut d = Document::new("a");
        let id1 = d.set_attribute(d.root(), "k", "v1").unwrap();
        let id2 = d.set_attribute(d.root(), "k", "v2").unwrap();
        assert_eq!(id1, id2);
        assert_eq!(d.attribute(d.root(), "k"), Some("v2"));
        assert_eq!(d.attributes(d.root()).len(), 1);
    }

    #[test]
    fn text_value_concatenates_descendants() {
        let mut d = Document::new("a");
        let b = d.append_element(d.root(), "b");
        d.append_text(b, "hello ");
        let c = d.append_element(b, "c");
        d.append_text(c, "world");
        assert_eq!(d.text_value(d.root()), "hello world");
        assert_eq!(d.text_value(b), "hello world");
    }

    #[test]
    fn preorder_visits_attrs_before_children() {
        let d = sample();
        let names: Vec<String> = d
            .preorder(d.root())
            .map(|id| match &d.node(id).data {
                NodeData::Element { name, .. } => format!("<{name}>"),
                NodeData::Attr { name, .. } => format!("@{name}"),
                _ => "?".into(),
            })
            .collect();
        assert_eq!(names, vec!["<lab>", "<project>", "@name", "<paper>", "<project>", "@name"]);
    }

    #[test]
    fn ancestors_and_depth() {
        let d = sample();
        let p1 = d.child_elements(d.root()).next().unwrap();
        let paper = d.child_elements(p1).next().unwrap();
        let anc: Vec<_> = d.ancestors(paper).collect();
        assert_eq!(anc, vec![p1, d.root()]);
        assert_eq!(d.depth(paper), 2);
        assert_eq!(d.depth(d.root()), 0);
    }

    #[test]
    fn detach_removes_from_parent() {
        let mut d = sample();
        let p1 = d.child_elements(d.root()).next().unwrap();
        assert!(d.detach(p1));
        assert_eq!(d.child_elements(d.root()).count(), 1);
        assert_eq!(d.parent(p1), None);
        // Detaching the root is refused.
        let r = d.root();
        assert!(!d.detach(r));
    }

    #[test]
    fn detach_attribute() {
        let mut d = sample();
        let p1 = d.child_elements(d.root()).next().unwrap();
        let a = d.attribute_node(p1, "name").unwrap();
        assert!(d.detach(a));
        assert_eq!(d.attribute(p1, "name"), None);
    }

    #[test]
    fn import_subtree_deep_copies() {
        let src = sample();
        let mut dst = Document::new("copy");
        let p1 = src.child_elements(src.root()).next().unwrap();
        let new_root = dst.import_subtree(dst.root(), &src, p1);
        assert_eq!(dst.element_name(new_root), Some("project"));
        assert_eq!(dst.attribute(new_root, "name"), Some("p1"));
        assert_eq!(dst.text_value(new_root), "text");
    }

    #[test]
    fn structural_equality() {
        let a = sample();
        let b = sample();
        assert!(a.structurally_equal(&b));
        let mut c = sample();
        let p1 = c.child_elements(c.root()).next().unwrap();
        c.set_attribute(p1, "name", "other").unwrap();
        assert!(!a.structurally_equal(&c));
    }

    #[test]
    fn count_reachable_ignores_detached() {
        let mut d = sample();
        let before = d.count_reachable();
        let p1 = d.child_elements(d.root()).next().unwrap();
        d.detach(p1);
        // p1 subtree: project + @name + paper + text = 4 nodes
        assert_eq!(d.count_reachable(), before - 4);
    }

    #[test]
    fn descendant_elements_in_document_order() {
        let d = sample();
        let names: Vec<_> = d
            .descendant_elements(d.root())
            .into_iter()
            .map(|id| d.element_name(id).unwrap().to_string())
            .collect();
        assert_eq!(names, vec!["project", "paper", "project"]);
    }

    // ---- generational-arena behaviors ------------------------------------

    #[test]
    fn remove_subtree_frees_and_recycles_slots() {
        let mut d = sample();
        let len_before = d.arena_len();
        let p1 = d.child_elements(d.root()).next().unwrap();
        // p1 subtree: project + @name + paper + text = 4 nodes
        assert_eq!(d.remove_subtree(p1), 4);
        assert_eq!(d.free_len(), 4);
        assert!(!d.contains(p1));
        // New allocations reuse the vacated slots instead of growing.
        let e = d.append_element(d.root(), "fresh");
        assert_eq!(d.arena_len(), len_before);
        assert!(d.contains(e));
        assert_eq!(d.free_len(), 3);
    }

    #[test]
    fn recycled_slot_gets_new_generation() {
        let mut d = sample();
        let p1 = d.child_elements(d.root()).next().unwrap();
        d.remove_subtree(p1);
        // Allocate until p1's slot is reused.
        let mut reused = None;
        for k in 0..8 {
            let e = d.append_element(d.root(), "n");
            if e.index() == p1.index() {
                reused = Some(e);
                break;
            }
            let _ = k;
        }
        let e = reused.expect("free list must hand back the vacated slot");
        assert_ne!(e, p1, "same index must carry a different generation");
        assert_eq!(e.generation(), p1.generation() + 1);
        // The live id works; the stale one is detectably dead.
        assert_eq!(d.element_name(e), Some("n"));
        assert!(!d.contains(p1));
        assert_eq!(d.node_id_at(p1.index()), Some(e));
    }

    #[test]
    #[should_panic(expected = "stale NodeId")]
    fn stale_id_access_panics() {
        let mut d = sample();
        let p1 = d.child_elements(d.root()).next().unwrap();
        d.remove_subtree(p1);
        let _ = d.node(p1); // ABA protection: must not read a recycled slot
    }

    #[test]
    fn alloc_from_free_list_clears_preorder() {
        let mut d = sample();
        assert!(d.ids_preordered());
        let p1 = d.child_elements(d.root()).next().unwrap();
        d.remove_subtree(p1);
        // Removal alone keeps the (subsequence) preorder…
        assert!(d.ids_preordered());
        // …but a recycled low index cannot extend it.
        d.append_element(d.root(), "late");
        assert!(!d.ids_preordered());
    }

    #[test]
    fn remove_last_alloc_keeps_document_usable() {
        let mut d = Document::new("a");
        let b = d.append_element(d.root(), "b");
        d.remove_subtree(b); // frees the tracked last_alloc
        let c = d.append_element(d.root(), "c");
        assert!(d.contains(c));
        assert_eq!(d.child_elements(d.root()).count(), 1);
    }

    #[test]
    fn replace_with_subtree_preserves_position() {
        let mut d = sample();
        let kids: Vec<_> = d.child_elements(d.root()).collect();
        let (p1, p2) = (kids[0], kids[1]);
        let mut src = Document::new("swap");
        let repl = src.append_element(src.root(), "replacement");
        src.set_attribute(repl, "name", "r").unwrap();
        let new_id = d.replace_with_subtree(p1, &src, repl).unwrap();
        let kids_after: Vec<_> = d.child_elements(d.root()).collect();
        assert_eq!(kids_after, vec![new_id, p2], "splice keeps the sibling position");
        assert_eq!(d.element_name(new_id), Some("replacement"));
        assert!(!d.contains(p1));
        // Replacing the root is refused.
        let r = d.root();
        assert!(d.replace_with_subtree(r, &src, repl).is_none());
    }

    #[test]
    fn node_id_roundtrip_through_raw_parts() {
        let d = sample();
        for n in d.preorder(d.root()) {
            let rebuilt = NodeId::new(n.index() as u32, n.generation());
            assert_eq!(rebuilt, n);
            assert_eq!(d.node_id_at(n.index()), Some(n));
        }
        assert_eq!(d.node_id_at(d.arena_len()), None);
    }
}
