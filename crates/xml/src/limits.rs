//! Resource limits for parsing untrusted input.
//!
//! The paper's §7 server faces arbitrary requesters, and the documents it
//! stores may come from arbitrary authors; a parser that happily builds a
//! million-node DOM from a depth bomb turns one hostile upload into a
//! denial of service. [`Limits`] caps the resources one parse may consume.
//! Every violation is a *typed, recoverable* [`crate::XmlError`] with kind
//! [`crate::XmlErrorKind::LimitExceeded`] — never a panic, stack overflow,
//! or OOM.
//!
//! The defaults are deliberately generous: every document a reasonable
//! client produces (including the whole example corpus and the synthetic
//! benchmark workloads) parses unchanged, while the pathological shapes —
//! deeply nested element chains, entity/character-reference floods,
//! node-count bombs — are rejected early with a precise error.
//!
//! On general entities: this processor follows the paper's §2 restriction
//! to the logical document structure and **never expands DTD-declared
//! general entities** (references to them are `UnknownEntity` errors), so
//! the classic billion-laughs amplification cannot occur structurally.
//! [`Limits::max_entity_expansion`] additionally caps the total output of
//! the references that *are* resolved (the five predefined entities and
//! character references), bounding flood-style inputs and any future
//! entity support.

/// Which limit a rejected input exceeded.
///
/// The variant names double as the `kind` label on the
/// `xmlsec_limits_rejected_total` telemetry counter (see
/// [`LimitKind::as_str`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LimitKind {
    /// The raw input text is larger than [`Limits::max_input_bytes`].
    InputBytes,
    /// Element nesting exceeded [`Limits::max_depth`].
    Depth,
    /// The DOM grew past [`Limits::max_nodes`] arena slots.
    Nodes,
    /// Entity/character-reference resolution produced more than
    /// [`Limits::max_entity_expansion`] characters.
    EntityExpansion,
}

impl LimitKind {
    /// Stable snake_case name, used as a metric label value.
    pub fn as_str(self) -> &'static str {
        match self {
            LimitKind::InputBytes => "input_bytes",
            LimitKind::Depth => "depth",
            LimitKind::Nodes => "nodes",
            LimitKind::EntityExpansion => "entity_expansion",
        }
    }
}

impl std::fmt::Display for LimitKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Caps applied while tokenizing and parsing one document.
///
/// Thread a `Limits` through [`crate::parser::parse_with_limits`] (the
/// plain [`crate::parse`] applies [`Limits::default`]); use
/// [`Limits::unlimited`] to opt out for trusted, test-generated input.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Limits {
    /// Maximum input size in bytes, checked before tokenization.
    pub max_input_bytes: usize,
    /// Maximum element nesting depth (open elements on the parser stack).
    pub max_depth: usize,
    /// Maximum total DOM arena slots (elements, attributes, text,
    /// comments, PIs) one document may allocate.
    pub max_nodes: usize,
    /// Maximum total characters produced by resolving entity and
    /// character references across the document.
    pub max_entity_expansion: usize,
}

impl Limits {
    /// The default caps: 64 MiB input, depth 1024, 4 M nodes, 1 M
    /// characters of reference expansion. Generous for real documents,
    /// far below what a hostile input needs to hurt.
    pub const fn default_limits() -> Limits {
        Limits {
            max_input_bytes: 64 << 20,
            max_depth: 1024,
            max_nodes: 4_000_000,
            max_entity_expansion: 1 << 20,
        }
    }

    /// No caps at all (every field `usize::MAX`). For trusted input only.
    pub const fn unlimited() -> Limits {
        Limits {
            max_input_bytes: usize::MAX,
            max_depth: usize::MAX,
            max_nodes: usize::MAX,
            max_entity_expansion: usize::MAX,
        }
    }
}

impl Default for Limits {
    fn default() -> Limits {
        Limits::default_limits()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_names_are_stable() {
        assert_eq!(LimitKind::InputBytes.as_str(), "input_bytes");
        assert_eq!(LimitKind::Depth.as_str(), "depth");
        assert_eq!(LimitKind::Nodes.as_str(), "nodes");
        assert_eq!(LimitKind::EntityExpansion.as_str(), "entity_expansion");
        assert_eq!(LimitKind::Depth.to_string(), "depth");
    }

    #[test]
    fn defaults_are_generous_and_unlimited_is_max() {
        let d = Limits::default();
        assert!(d.max_depth >= 1024);
        assert!(d.max_input_bytes >= 1 << 20);
        let u = Limits::unlimited();
        assert_eq!(u.max_nodes, usize::MAX);
        assert_eq!(u.max_depth, usize::MAX);
    }
}
