//! Robustness: the tokenizer and parser must never panic — arbitrary
//! input yields `Ok` or a positioned error, and mutated valid documents
//! are handled gracefully.

use proptest::prelude::*;
use xmlsec_xml::{parse, serialize, SerializeOptions};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary strings never panic the parser.
    #[test]
    fn parse_never_panics_on_arbitrary_input(s in ".{0,300}") {
        let _ = parse(&s);
    }

    /// Strings biased toward XML-ish characters never panic the parser.
    #[test]
    fn parse_never_panics_on_markup_soup(s in "[<>/=&;'\"a-z0-9 \\-\\[\\]!?]{0,300}") {
        let _ = parse(&s);
    }

    /// Truncating a valid document at any byte boundary never panics and,
    /// if it parses, re-serializes.
    #[test]
    fn truncation_is_graceful(cut in 0usize..200) {
        let src = r#"<?xml version="1.0"?><!DOCTYPE lab SYSTEM "l.dtd"><lab name="x"><p a="1">t &amp; u</p><!--c--><![CDATA[raw]]></lab>"#;
        let cut = cut.min(src.len());
        if src.is_char_boundary(cut) {
            if let Ok(doc) = parse(&src[..cut]) {
                let _ = serialize(&doc, &SerializeOptions::canonical());
            }
        }
    }

    /// Splicing random bytes into a valid document never panics.
    #[test]
    fn mutation_is_graceful(pos in 0usize..100, noise in "[\\x00-\\xff]{1,8}") {
        let src = r#"<lab><p a="1">text</p><q/></lab>"#;
        let pos = pos.min(src.len());
        if src.is_char_boundary(pos) {
            let mutated = format!("{}{}{}", &src[..pos], noise, &src[pos..]);
            let _ = parse(&mutated);
        }
    }

    /// Error positions always lie within the input.
    #[test]
    fn error_positions_in_bounds(s in "[<>/=a-z \"]{0,120}") {
        if let Err(e) = parse(&s) {
            prop_assert!(e.pos.offset <= s.len(), "{e}");
        }
    }
}
