//! Robustness: the tokenizer and parser must never panic — arbitrary
//! input yields `Ok` or a positioned error, mutated valid documents are
//! handled gracefully, and resource limits degrade hostile inputs into
//! typed `LimitExceeded` errors rather than stack overflows or OOM.

use proptest::prelude::*;
use xmlsec_xml::{
    parse, parse_with_limits, serialize, LimitKind, Limits, ParseOptions, SerializeOptions,
    XmlErrorKind,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary strings never panic the parser.
    #[test]
    fn parse_never_panics_on_arbitrary_input(s in ".{0,300}") {
        let _ = parse(&s);
    }

    /// Strings biased toward XML-ish characters never panic the parser.
    #[test]
    fn parse_never_panics_on_markup_soup(s in "[<>/=&;'\"a-z0-9 \\-\\[\\]!?]{0,300}") {
        let _ = parse(&s);
    }

    /// Truncating a valid document at any byte boundary never panics and,
    /// if it parses, re-serializes.
    #[test]
    fn truncation_is_graceful(cut in 0usize..200) {
        let src = r#"<?xml version="1.0"?><!DOCTYPE lab SYSTEM "l.dtd"><lab name="x"><p a="1">t &amp; u</p><!--c--><![CDATA[raw]]></lab>"#;
        let cut = cut.min(src.len());
        if src.is_char_boundary(cut) {
            if let Ok(doc) = parse(&src[..cut]) {
                let _ = serialize(&doc, &SerializeOptions::canonical());
            }
        }
    }

    /// Splicing random bytes into a valid document never panics.
    #[test]
    fn mutation_is_graceful(pos in 0usize..100, noise in "[\\x00-\\xff]{1,8}") {
        let src = r#"<lab><p a="1">text</p><q/></lab>"#;
        let pos = pos.min(src.len());
        if src.is_char_boundary(pos) {
            let mutated = format!("{}{}{}", &src[..pos], noise, &src[pos..]);
            let _ = parse(&mutated);
        }
    }

    /// Error positions always lie within the input.
    #[test]
    fn error_positions_in_bounds(s in "[<>/=a-z \"]{0,120}") {
        if let Err(e) = parse(&s) {
            prop_assert!(e.pos.offset <= s.len(), "{e}");
        }
    }

    /// Documents nested deeper than `max_depth` always come back as a
    /// typed `LimitExceeded(Depth)` — never a panic or stack overflow —
    /// across a matrix of caps and bomb depths.
    #[test]
    fn nesting_beyond_cap_is_typed_depth_error(cap in 1usize..64, excess in 1usize..512) {
        let depth = cap + excess;
        let mut bomb = String::with_capacity(depth * 7);
        for _ in 0..depth { bomb.push_str("<d>"); }
        for _ in 0..depth { bomb.push_str("</d>"); }
        let limits = Limits { max_depth: cap, ..Limits::default() };
        let e = parse_with_limits(&bomb, ParseOptions::default(), &limits)
            .expect_err("over the cap");
        prop_assert_eq!(e.kind, XmlErrorKind::LimitExceeded(LimitKind::Depth));
        // Exactly at the cap, the same document shape is accepted.
        let mut ok = String::new();
        for _ in 0..cap { ok.push_str("<d>"); }
        for _ in 0..cap { ok.push_str("</d>"); }
        prop_assert!(parse_with_limits(&ok, ParseOptions::default(), &limits).is_ok());
    }

    /// Entity-amplified documents beyond the expansion cap are a typed
    /// `LimitExceeded(EntityExpansion)` under any cap in the matrix.
    #[test]
    fn entity_amplification_beyond_cap_is_typed_error(cap in 1usize..32, refs in 40usize..200) {
        let mut bomb = String::from("<d>");
        for _ in 0..refs { bomb.push_str("&amp;"); }
        bomb.push_str("</d>");
        let limits = Limits { max_entity_expansion: cap, ..Limits::default() };
        let e = parse_with_limits(&bomb, ParseOptions::default(), &limits)
            .expect_err("over the cap");
        prop_assert_eq!(e.kind, XmlErrorKind::LimitExceeded(LimitKind::EntityExpansion));
    }

    /// Node-count and input-size caps likewise reject flat floods with
    /// the right typed error, whatever the cap.
    #[test]
    fn floods_beyond_caps_are_typed_errors(cap in 1usize..40, n in 50usize..300) {
        let mut flood = String::from("<d>");
        for _ in 0..n { flood.push_str("<x/>"); }
        flood.push_str("</d>");
        let by_nodes = Limits { max_nodes: cap, ..Limits::default() };
        let e = parse_with_limits(&flood, ParseOptions::default(), &by_nodes)
            .expect_err("over the node cap");
        prop_assert_eq!(e.kind, XmlErrorKind::LimitExceeded(LimitKind::Nodes));
        let by_bytes = Limits { max_input_bytes: cap, ..Limits::default() };
        let e2 = parse_with_limits(&flood, ParseOptions::default(), &by_bytes)
            .expect_err("over the byte cap");
        prop_assert_eq!(e2.kind, XmlErrorKind::LimitExceeded(LimitKind::InputBytes));
    }

    /// Default limits never reject documents of ordinary shape: the caps
    /// only bite on pathological input.
    #[test]
    fn default_limits_accept_ordinary_documents(depth in 1usize..40, fanout in 1usize..20) {
        let mut doc = String::new();
        for _ in 0..depth { doc.push_str("<d>"); }
        for _ in 0..fanout { doc.push_str("<leaf a=\"v\">t</leaf>"); }
        for _ in 0..depth { doc.push_str("</d>"); }
        prop_assert!(parse(&doc).is_ok(), "default limits rejected an ordinary document");
    }
}
