//! Document-order comparison, including after mutations that break the
//! arena-id ≈ document-order correspondence.

use std::cmp::Ordering;
use xmlsec_xml::{parse, Document};

#[test]
fn parsed_documents_follow_arena_order() {
    let d = parse(r#"<a x="1"><b>t</b><c y="2"/></a>"#).unwrap();
    let mut all: Vec<_> = d.preorder(d.root()).collect();
    let sorted = {
        let mut v = all.clone();
        v.sort_by(|&p, &q| d.document_order(p, q));
        v
    };
    assert_eq!(all, sorted);
    all.reverse();
    all.sort_by(|&p, &q| d.document_order(p, q));
    assert_eq!(all, {
        let mut v: Vec<_> = d.preorder(d.root()).collect();
        v.sort_by(|&p, &q| d.document_order(p, q));
        v
    });
}

#[test]
fn late_mutations_are_ordered_by_position_not_id() {
    // Build <a><b/><c/></a>, then add an attribute to <b>: the attribute
    // has the highest arena id but precedes <c> (and even <b>'s children)
    // in document order.
    let mut d = Document::new("a");
    let b = d.append_element(d.root(), "b");
    let c = d.append_element(d.root(), "c");
    let battr = d.set_attribute(b, "late", "1").unwrap();
    assert!(battr.index() > c.index(), "arena id really is later");
    assert_eq!(d.document_order(battr, c), Ordering::Less);
    assert_eq!(d.document_order(c, battr), Ordering::Greater);
    assert_eq!(d.document_order(b, battr), Ordering::Less, "element before its attribute");
}

#[test]
fn ancestors_precede_descendants() {
    let d = parse("<a><b><c/></b></a>").unwrap();
    let b = d.child_elements(d.root()).next().unwrap();
    let c = d.child_elements(b).next().unwrap();
    assert_eq!(d.document_order(d.root(), c), Ordering::Less);
    assert_eq!(d.document_order(b, c), Ordering::Less);
    assert_eq!(d.document_order(c, d.root()), Ordering::Greater);
    assert_eq!(d.document_order(b, b), Ordering::Equal);
}
