//! Serializer and tokenizer edge cases: unusual but legal documents must
//! survive canonical round-trips byte-exactly where the format allows.

use xmlsec_xml::{parse, parse_with, serialize, ParseOptions, SerializeOptions};

fn round_trip(src: &str) -> String {
    let doc = parse(src).expect("parses");
    serialize(&doc, &SerializeOptions::canonical())
}

#[test]
fn unicode_content_and_names() {
    let src = "<données clé=\"valeur\">texte — αβγ — 日本語</données>";
    assert_eq!(round_trip(src), src);
}

#[test]
fn numeric_references_resolve_and_reescape_minimally() {
    // &#65; is just 'A' after parsing; it serializes as the plain char.
    let doc = parse("<a>&#65;&#x42;</a>").unwrap();
    assert_eq!(serialize(&doc, &SerializeOptions::canonical()), "<a>AB</a>");
}

#[test]
fn special_chars_in_text_reescape() {
    let doc = parse("<a>&amp;&lt;&gt;</a>").unwrap();
    assert_eq!(serialize(&doc, &SerializeOptions::canonical()), "<a>&amp;&lt;&gt;</a>");
}

#[test]
fn cdata_becomes_escaped_text() {
    let doc = parse("<a><![CDATA[<b>&</b>]]></a>").unwrap();
    let out = serialize(&doc, &SerializeOptions::canonical());
    assert_eq!(out, "<a>&lt;b&gt;&amp;&lt;/b&gt;</a>");
    // and re-parses to the same string value
    let re = parse(&out).unwrap();
    assert_eq!(re.text_value(re.root()), "<b>&</b>");
}

#[test]
fn attribute_order_is_preserved() {
    let src = r#"<a zeta="1" alpha="2" mid="3"/>"#;
    assert_eq!(round_trip(src), src);
}

#[test]
fn deeply_mixed_content_inline() {
    let src = "<p>a<b>b<i>c</i>d</b>e</p>";
    assert_eq!(round_trip(src), src);
    // Pretty-printing keeps mixed content inline too.
    let doc = parse(src).unwrap();
    let pretty = serialize(&doc, &SerializeOptions::pretty());
    assert!(pretty.contains("a<b>b<i>c</i>d</b>e"), "{pretty}");
}

#[test]
fn doctype_with_internal_subset_round_trips() {
    let src =
        r#"<!DOCTYPE a SYSTEM "a.dtd" [<!ELEMENT a (#PCDATA)> <!ATTLIST a x CDATA "d">]><a>t</a>"#;
    let doc = parse(src).unwrap();
    let out = serialize(&doc, &SerializeOptions::default());
    let re = parse(&out).unwrap();
    assert_eq!(doc.doctype, re.doctype);
    assert!(doc.structurally_equal(&re));
}

#[test]
fn pi_with_question_marks_in_data() {
    let src = "<a><?q is this ok? almost?></a>";
    let doc = parse(src).unwrap();
    let out = serialize(&doc, &SerializeOptions::canonical());
    // The PI data must be preserved verbatim up to the final `?>`.
    assert_eq!(out, "<a><?q is this ok? almost?></a>");
}

#[test]
fn comment_with_single_hyphens() {
    let src = "<a><!-- one - two - three --></a>";
    assert_eq!(round_trip(src), src);
}

#[test]
fn whitespace_only_text_preserved_when_asked() {
    let src = "<a> <b/> </a>";
    let doc =
        parse_with(src, ParseOptions { keep_whitespace_text: true, ..Default::default() }).unwrap();
    assert_eq!(serialize(&doc, &SerializeOptions::canonical()), src);
}

#[test]
fn crlf_and_tab_in_attributes_survive() {
    let mut doc = xmlsec_xml::Document::new("a");
    doc.set_attribute(doc.root(), "v", "line1\nline2\tend\r").unwrap();
    let out = serialize(&doc, &SerializeOptions::canonical());
    assert_eq!(out, "<a v=\"line1&#10;line2&#9;end&#13;\"/>");
    let re = parse(&out).unwrap();
    assert_eq!(re.attribute(re.root(), "v"), Some("line1\nline2\tend\r"));
}

#[test]
fn empty_attribute_values() {
    let src = r#"<a empty=""/>"#;
    assert_eq!(round_trip(src), src);
}

#[test]
fn very_long_text_node() {
    let body = "x".repeat(200_000);
    let src = format!("<a>{body}</a>");
    let doc = parse(&src).unwrap();
    assert_eq!(doc.text_value(doc.root()).len(), 200_000);
    assert_eq!(serialize(&doc, &SerializeOptions::canonical()), src);
}

#[test]
fn surrogate_range_char_refs_rejected() {
    assert!(parse("<a>&#xD800;</a>").is_err());
    assert!(parse("<a>&#xDFFF;</a>").is_err());
    assert!(parse("<a>&#xFFFE;</a>").is_err()); // Char stops at FFFD
    assert!(parse("<a>&#xFFFD;</a>").is_ok());
}
