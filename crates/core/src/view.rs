//! The **compute-view** algorithm (paper §6, Figure 2): document tree
//! labeling followed by pruning.
//!
//! Semantics implemented (from the paper's §6.1 prose):
//!
//! - Each node gets an initial 6-tuple from the authorizations whose
//!   object contains it, one sign per type class, with the "most specific
//!   subject takes precedence, then denials" resolution (pluggable).
//! - Preorder propagation: for an element `n` with parent `p`,
//!   `R_n`/`RW_n` keep their values if *either* is non-null (an instance
//!   authorization on the node, of either strength, overrides the whole
//!   instance-recursive propagation), otherwise both are inherited from
//!   `p`; `RD_n` is inherited when null. The final sign is
//!   `first_def(L, R, LD, RD, LW, RW)`.
//! - Attributes (always leaves): `R/RW/RD` are structurally null;
//!   authorizations *Local on the parent* propagate to the attribute. The
//!   final sign is `first_def(L_a, strong_p, LD_a, schema_p, LW_a,
//!   weak_p)` where `strong_p = first_def(L_p, R_p)`,
//!   `schema_p = first_def(LD_p, RD_p)`, `weak_p = first_def(LW_p, RW_p)`
//!   over the parent's *component* signs.
//! - Pruning (postorder): remove every subtree containing no node with a
//!   positive final sign; start/end tags of elements with a negative or
//!   undefined label survive when a descendant is visible (structure
//!   preservation, §6.2). Text/comment/PI content is visible only when
//!   its parent element's final sign grants access.
//!
//! DTD-level (`Adtd`) authorizations of weak type are folded into their
//! strong counterparts: the paper notes weak/strong is meaningless at the
//! schema level ("both Local Weak and Recursive Weak for the DTD is
//! missing").
//!
//! ## The engine
//!
//! [`compute_view_engine`] / [`label_document_engine`] add two
//! orthogonal accelerations on top of the plain algorithm, both
//! semantics-preserving (the differential suite pins them against
//! [`crate::naive::compute_view_naive`] and the sequential path):
//!
//! - **Parallelism** ([`Parallelism`]): authorization-object path
//!   evaluations fan out across threads, and — because propagation into a
//!   child depends only on the parent's label — subtree labeling below a
//!   sequentially-labeled frontier fans out too. The node-visit budget
//!   becomes one *request-wide* [`SharedBudget`] drawn atomically and
//!   exactly by every evaluation on any thread, so whether the budget
//!   trips depends only on the request's total work, never on thread
//!   scheduling.
//! - **Decision memoization** ([`DecisionCache`]): two nodes selected by
//!   the same subset of applicable authorizations get the same initial
//!   label, so the engine keys the resolved label by match-bitmask (when
//!   the applicable sets fit 128 bits) in a per-worker memo, backed by an
//!   optional cross-request cache keyed additionally by
//!   [`crate::decision::policy_fingerprint`].

use crate::compile::{record_cell_hits, CompiledPolicy};
use crate::decision::{
    policy_fingerprint, record_mask_bypass, record_traffic, DecisionCache, DecisionKey,
};
use crate::label::{first_def, Label, Sign3};
use crate::par::{self, Parallelism};
use std::collections::HashMap;
use xmlsec_authz::{
    policy::resolve_sign, AuthType, Authorization, CompletenessPolicy, PolicyConfig,
};
use xmlsec_subjects::Directory;
use xmlsec_xml::cancel::{CancelToken, Cancelled};
use xmlsec_xml::{Document, NodeData, NodeId};
use xmlsec_xpath::{eval_path_shared, EvalError, EvalLimits, SharedBudget};

/// Counters the processor reports alongside a computed view.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ViewStats {
    /// Instance-level authorizations applicable to the requester.
    pub instance_auths: usize,
    /// Schema-level authorizations applicable to the requester.
    pub schema_auths: usize,
    /// Nodes (elements + attributes) labeled.
    pub labeled_nodes: usize,
    /// Nodes with a positive final sign.
    pub granted_nodes: usize,
    /// Nodes removed by pruning (elements, attributes, text, other).
    pub pruned_nodes: usize,
}

/// The outcome of the labeling pass: one [`Label`] per arena slot.
#[derive(Debug, Clone)]
pub struct Labeling {
    labels: Vec<Label>,
    /// Statistics accumulated during labeling.
    pub stats: ViewStats,
    /// Reuse state captured by [`label_document_incremental`]: per-slot
    /// match masks and arena generations, plus the policy fingerprint
    /// they were computed under. `None` for plain engine runs (no
    /// capture overhead on the read path), the compiled fast path, and
    /// runs whose applicable sets exceed the 128-bit mask.
    incremental: Option<IncrementalState>,
}

/// What [`label_document_incremental`] needs to decide, next time, which
/// nodes can keep their previous label: a node's label is a pure
/// function of its match mask and its parent's (already propagated)
/// label, so `(generation, mask, parent label)` unchanged ⇒ label
/// unchanged.
#[derive(Debug, Clone)]
struct IncrementalState {
    /// Per-slot match mask (bit `i` ⇔ the `i`-th canonical applicable
    /// authorization selects the node; instance low, schema above).
    masks: Vec<u128>,
    /// Arena slot generations at labeling time — a bumped generation
    /// means the slot was recycled and its previous label is about a
    /// different node.
    gens: Vec<u32>,
    /// [`policy_fingerprint`] of the applicable sets + policy + subject
    /// closure the masks were computed under.
    fingerprint: u64,
}

impl Labeling {
    /// The label of `n`.
    pub fn label(&self, n: NodeId) -> &Label {
        &self.labels[n.index()]
    }

    /// The final sign of `n`.
    pub fn final_sign(&self, n: NodeId) -> Sign3 {
        self.labels[n.index()].final_sign
    }

    /// Whether this labeling carries the reuse state a later
    /// [`label_document_incremental`] call can compare against.
    pub fn supports_incremental(&self) -> bool {
        self.incremental.is_some()
    }
}

/// How the engine evaluates: path-evaluation limits, thread knob, and
/// the optional cross-request decision memo.
#[derive(Debug, Clone, Copy)]
pub struct EngineOptions<'a> {
    /// Path-evaluation caps. `max_node_visits` is a **request-wide
    /// pool**: one [`SharedBudget`] shared by every authorization-object
    /// evaluation of the run, on any thread.
    pub limits: EvalLimits,
    /// Thread knob (default: sequential).
    pub parallelism: Parallelism,
    /// Cross-request decision memo, normally owned by the server.
    pub decisions: Option<&'a DecisionCache>,
    /// A policy compiled for this run's applicable sets (see
    /// [`mod@crate::compile`]). Guaranteed cells are served straight from
    /// its verdict table; when every cell is guaranteed the whole
    /// labeling pass is table lookups. Ignored unless its fingerprint
    /// matches the run. Sound only for documents conforming to the DTD
    /// it was compiled from — the caller owns that obligation (the
    /// processor validates before attaching one).
    pub compiled: Option<&'a CompiledPolicy>,
    /// Request-scoped cancellation. When set, the engine polls it
    /// cooperatively — at the labeling frontier, inside every fan-out
    /// worker's subtree walk, on the compiled fast path, and (via
    /// [`SharedBudget::with_cancel`]) at every node-visit budget draw —
    /// and unwinds with [`EvalError::Cancelled`], partial work discarded
    /// on the normal drop path.
    pub cancel: Option<&'a CancelToken>,
}

impl<'a> EngineOptions<'a> {
    /// Sequential evaluation with `limits`, no cross-request memo —
    /// the behavior of the plain `*_limited` entry points.
    pub fn sequential(limits: EvalLimits) -> EngineOptions<'static> {
        EngineOptions {
            limits,
            parallelism: Parallelism::sequential(),
            decisions: None,
            compiled: None,
            cancel: None,
        }
    }

    /// The same options with a cancellation token attached.
    pub fn with_cancel(self, cancel: &'a CancelToken) -> EngineOptions<'a> {
        EngineOptions { cancel: Some(cancel), ..self }
    }
}

/// One matching authorization, pre-evaluated: which nodes its object
/// selects, and which type class it contributes to.
struct MatchedAuth<'a> {
    auth: &'a Authorization,
    /// Bitset over arena slots: nodes selected by the object's path
    /// expression (the root element for whole-document objects).
    selected: Vec<u64>,
}

impl MatchedAuth<'_> {
    #[inline]
    fn contains(&self, n: NodeId) -> bool {
        let i = n.index();
        (self.selected[i / 64] >> (i % 64)) & 1 == 1
    }
}

fn evaluate_auths<'a>(
    doc: &Document,
    auths: &[&'a Authorization],
    limits: &EvalLimits,
    pool: &SharedBudget,
    threads: usize,
) -> Result<Vec<MatchedAuth<'a>>, EvalError> {
    let words = doc.arena_len().div_ceil(64);
    let eval_one = |a: &&'a Authorization| -> Result<MatchedAuth<'a>, EvalError> {
        let mut selected = vec![0u64; words];
        match &a.object.path {
            Some(p) => {
                for n in eval_path_shared(doc, doc.root(), p, limits, pool)? {
                    selected[n.index() / 64] |= 1 << (n.index() % 64);
                }
            }
            None => {
                // A whole-document object is an authorization on the
                // document element.
                let r = doc.root().index();
                selected[r / 64] |= 1 << (r % 64);
            }
        }
        Ok(MatchedAuth { auth: a, selected })
    };
    if threads > 1 && auths.len() > 1 {
        par::run_tasks(threads, auths.to_vec(), eval_one).into_iter().collect()
    } else {
        auths.iter().map(eval_one).collect()
    }
}

/// The four instance type classes, in the tuple's order.
const INSTANCE_CLASSES: [AuthType; 4] =
    [AuthType::Local, AuthType::Recursive, AuthType::LocalWeak, AuthType::RecursiveWeak];

/// Computes the labeling of `doc` for the given applicable authorization
/// sets (`axml` = instance level, `adtd` = schema level — steps 1–2 of
/// the algorithm happen in the caller, which owns the authorization base).
pub fn label_document(
    doc: &Document,
    axml: &[&Authorization],
    adtd: &[&Authorization],
    dir: &Directory,
    policy: PolicyConfig,
) -> Labeling {
    label_document_limited(doc, axml, adtd, dir, policy, &EvalLimits::unlimited())
        .expect("unlimited evaluation cannot exhaust a budget")
}

/// Like [`label_document`], but bounds the path evaluations of the
/// authorization objects: a pathological object expression yields a typed
/// [`EvalError`] instead of pinning the server. The node-visit budget is
/// one request-wide pool shared by all object evaluations.
pub fn label_document_limited(
    doc: &Document,
    axml: &[&Authorization],
    adtd: &[&Authorization],
    dir: &Directory,
    policy: PolicyConfig,
    limits: &EvalLimits,
) -> Result<Labeling, EvalError> {
    label_document_engine(doc, axml, adtd, dir, policy, &EngineOptions::sequential(*limits))
}

/// A per-run (per-worker, under parallel labeling) memo of resolved
/// initial labels, keyed by `(is_attribute, match mask)`. Hit/miss
/// counts are aggregated here and flushed to telemetry once per run.
#[derive(Default)]
struct Memo {
    local: HashMap<(bool, u128), Label>,
    hits: u64,
    misses: u64,
    /// Compiled-table traffic (mixed mode): nodes served from an exact
    /// cell, by allowed-ness, and nodes that fell back to interpretation.
    cell_allow: u64,
    cell_deny: u64,
    cell_dep: u64,
}

/// The full engine entry point for labeling. `label_document_limited`
/// is this with [`EngineOptions::sequential`].
pub fn label_document_engine(
    doc: &Document,
    axml: &[&Authorization],
    adtd: &[&Authorization],
    dir: &Directory,
    policy: PolicyConfig,
    opts: &EngineOptions<'_>,
) -> Result<Labeling, EvalError> {
    // Fingerprint of the applicable sets: keys the cross-request decision
    // cache and guards the compiled table — a compiled policy built for
    // different applicable sets (stale, or misrouted by the caller) is
    // ignored, degrading to the interpreted path instead of corrupting
    // the view. Order-independent, so computing it before the canonical
    // reordering below is fine.
    let fingerprint = if opts.decisions.is_some() || opts.compiled.is_some() {
        policy_fingerprint(axml, adtd, dir, policy)
    } else {
        0
    };
    let compiled = opts.compiled.filter(|cp| cp.fingerprint == fingerprint);

    // Boundary checkpoint before any work: a request that arrives with
    // its deadline already blown (or its client already gone) does not
    // label a single node.
    if let Some(t) = opts.cancel {
        t.check().map_err(|c| EvalError::Cancelled(c.reason))?;
    }

    // Whole-document fast path: every verdict-table cell carries a
    // plus-exact sign, so labeling is one table lookup per node — no
    // authorization object is ever evaluated (in particular the
    // node-visit budget cannot trip here). Bails to the interpreted
    // path on any element/attribute type absent from the table (a
    // document that does not conform to the compiled schema); a tripped
    // token is a typed error, never a silent fallback to the slow path.
    if let Some(cp) = compiled {
        if cp.fast_path {
            if let Some(labeling) =
                label_fast_path(doc, cp, axml.len(), adtd.len(), policy, opts.cancel)
                    .map_err(|c| EvalError::Cancelled(c.reason))?
            {
                return Ok(labeling);
            }
        }
    }

    // Resolve the thread count once: a lease from the global core budget
    // (held for the whole run), skipped entirely for sequential knobs and
    // small documents. An `oversubscribe` knob runs exactly the asked-for
    // worker count — the lease is still taken so the gauge stays honest.
    let mut _lease = None;
    let threads =
        if !opts.parallelism.is_sequential() && doc.arena_len() >= opts.parallelism.seq_threshold {
            let want = opts.parallelism.want_threads();
            let lease = par::lease(want);
            let t = if opts.parallelism.oversubscribe { want.max(1) } else { lease.threads() };
            _lease = Some(lease);
            t
        } else {
            1
        };

    // When a cross-request cache is attached, canonicalize the slice
    // order first: [`DecisionKey::mask`] assigns bit `i` to the `i`-th
    // applicable authorization while [`policy_fingerprint`] is
    // order-independent, so the same set presented in a different order
    // must map bits identically or a hit would resolve under a permuted
    // bit-to-authorization mapping. Sorting by the rendered form works
    // because it covers every field the resolution reads (subject,
    // object, action, sign, type) — equal renderings resolve equally.
    fn canonical<'x>(set: &[&'x Authorization]) -> Vec<&'x Authorization> {
        let mut v = set.to_vec();
        v.sort_by_cached_key(|a| a.to_string());
        v
    }
    let (axml_canon, adtd_canon);
    let (axml, adtd): (&[&Authorization], &[&Authorization]) = if opts.decisions.is_some() {
        axml_canon = canonical(axml);
        adtd_canon = canonical(adtd);
        (&axml_canon, &adtd_canon)
    } else {
        (axml, adtd)
    };

    // Past the mask cap every initial label is resolved from scratch:
    // surface the silent degradation (counter + one-time warning).
    if axml.len() + adtd.len() > 128 {
        record_mask_bypass(axml.len() + adtd.len());
    }

    // With a token attached, every budget draw in every evaluation —
    // on any thread — doubles as a cancellation checkpoint.
    let pool = match opts.cancel {
        Some(t) => SharedBudget::with_cancel(opts.limits.max_node_visits, t.clone()),
        None => SharedBudget::new(opts.limits.max_node_visits),
    };
    let xml_matched = evaluate_auths(doc, axml, &opts.limits, &pool, threads)?;
    let dtd_matched = evaluate_auths(doc, adtd, &opts.limits, &pool, threads)?;

    let ctx = LabelCtx {
        doc,
        xml: &xml_matched,
        dtd: &dtd_matched,
        dir,
        policy,
        fingerprint,
        decisions: opts.decisions,
        compiled,
        cancel: opts.cancel,
    };

    let mut labels = vec![Label::default(); doc.arena_len()];
    let mut memo = Memo::default();

    // Root: initial label, final sign straight from its own components
    // (propagating against the virtual all-ε parent is the identity, so
    // a compiled exact cell applies to the root as-is).
    let root = doc.root();
    let root_label = ctx.compiled_element(root, &mut memo).unwrap_or_else(|| {
        let mut lab = ctx.initial_label(root, false, &mut memo);
        lab.final_sign = lab.collapse();
        lab
    });
    labels[root.index()] = root_label;
    for &a in doc.attributes(root) {
        labels[a.index()] = ctx.label_attribute(a, root, &root_label, &mut memo);
    }

    // Frontier: unlabeled elements whose parent's label is known.
    let mut frontier: Vec<(NodeId, Label)> =
        doc.child_elements(root).map(|c| (c, root_label)).collect();

    if threads > 1 {
        // Widen the frontier sequentially until there is enough fan-out
        // to keep every worker busy (each step descends one level).
        let target = threads * 4;
        while !frontier.is_empty() && frontier.len() < target {
            if let Some(t) = ctx.cancel {
                t.check().map_err(|c| EvalError::Cancelled(c.reason))?;
            }
            let mut next = Vec::new();
            for (n, parent) in frontier.drain(..) {
                let lab = ctx.label_element(n, &parent, &mut memo);
                labels[n.index()] = lab;
                for &a in doc.attributes(n) {
                    labels[a.index()] = ctx.label_attribute(a, n, &lab, &mut memo);
                }
                next.extend(doc.child_elements(n).map(|c| (c, lab)));
            }
            frontier = next;
        }
    }

    if threads > 1 && frontier.len() > 1 {
        // Fan the remaining subtrees out; each worker keeps one memo for
        // all the subtrees it labels (per task it reports the hit/miss
        // delta) and returns its slot writes, merged here — no shared
        // mutable label state. Cancellation is observed both between
        // tasks (the pool's handoff check) and inside each subtree walk
        // (`label_subtree` polls); a tripped run discards every partial
        // buffer on the normal drop path.
        let results = par::run_tasks_cancellable(
            threads,
            frontier,
            ctx.cancel,
            Memo::default,
            |memo, &(n, parent)| {
                let (h0, m0) = (memo.hits, memo.misses);
                let (a0, d0, p0) = (memo.cell_allow, memo.cell_deny, memo.cell_dep);
                let mut out: Vec<(usize, Label)> = Vec::new();
                let walked = label_subtree(&ctx, n, parent, memo, &mut |i, lab| out.push((i, lab)));
                walked.map(|()| {
                    (
                        out,
                        [
                            memo.hits - h0,
                            memo.misses - m0,
                            memo.cell_allow - a0,
                            memo.cell_deny - d0,
                            memo.cell_dep - p0,
                        ],
                    )
                })
            },
        )
        .map_err(|c| EvalError::Cancelled(c.reason))?;
        for task in results {
            let (out, [h, m, ca, cd, cp]) = task.map_err(|c| EvalError::Cancelled(c.reason))?;
            memo.hits += h;
            memo.misses += m;
            memo.cell_allow += ca;
            memo.cell_deny += cd;
            memo.cell_dep += cp;
            for (i, lab) in out {
                labels[i] = lab;
            }
        }
    } else {
        for (n, parent) in frontier {
            let slots = &mut labels;
            let mut emit = |i: usize, lab: Label| slots[i] = lab;
            label_subtree(&ctx, n, parent, &mut memo, &mut emit)
                .map_err(|c| EvalError::Cancelled(c.reason))?;
        }
    }
    record_traffic(memo.hits, memo.misses);
    record_cell_hits(memo.cell_allow, memo.cell_deny, memo.cell_dep);

    // Statistics.
    let mut labeling = Labeling {
        labels,
        stats: ViewStats {
            instance_auths: axml.len(),
            schema_auths: adtd.len(),
            ..Default::default()
        },
        incremental: None,
    };
    let mut labeled = 0usize;
    let mut granted = 0usize;
    for n in doc.preorder(doc.root()) {
        labeled += 1;
        if labeling.labels[n.index()].final_sign == Sign3::Plus {
            granted += 1;
        }
    }
    labeling.stats.labeled_nodes = labeled;
    labeling.stats.granted_nodes = granted;
    Ok(labeling)
}

struct LabelCtx<'a> {
    doc: &'a Document,
    xml: &'a [MatchedAuth<'a>],
    dtd: &'a [MatchedAuth<'a>],
    dir: &'a Directory,
    policy: PolicyConfig,
    /// [`policy_fingerprint`] when a cross-request cache is attached.
    fingerprint: u64,
    decisions: Option<&'a DecisionCache>,
    /// Fingerprint-verified compiled policy (mixed mode: exact cells
    /// short-circuit labeling per node type, the rest interprets).
    compiled: Option<&'a CompiledPolicy>,
    /// Request-scoped cancellation, polled in the subtree walks.
    cancel: Option<&'a CancelToken>,
}

impl LabelCtx<'_> {
    /// Decision memoization applies only while the combined applicable
    /// sets fit the 128-bit match mask.
    fn maskable(&self) -> bool {
        self.xml.len() + self.dtd.len() <= 128
    }

    /// The completeness rule pruning applies — used only to classify
    /// compiled-cell hits for telemetry.
    fn is_allowed(&self, s: Sign3) -> bool {
        s == Sign3::Plus
            || (self.policy.completeness == CompletenessPolicy::Open && s == Sign3::Eps)
    }

    /// The compiled exact label for element `n`, when the verdict table
    /// carries one (every post-fixpoint component a singleton — then the
    /// concrete propagated label is pinned on conforming instances).
    fn compiled_element(&self, n: NodeId, memo: &mut Memo) -> Option<Label> {
        let cp = self.compiled?;
        let exact = self.doc.element_name(n).and_then(|e| cp.elements.get(e)).and_then(|c| c.exact);
        match exact {
            Some(lab) => {
                if self.is_allowed(lab.final_sign) {
                    memo.cell_allow += 1;
                } else {
                    memo.cell_deny += 1;
                }
                Some(lab)
            }
            None => {
                memo.cell_dep += 1;
                None
            }
        }
    }

    /// The compiled exact label for attribute `a` of element `parent_el`.
    fn compiled_attribute(&self, a: NodeId, parent_el: NodeId, memo: &mut Memo) -> Option<Label> {
        let cp = self.compiled?;
        let NodeData::Attr { name: attr, .. } = &self.doc.node(a).data else { return None };
        let exact = self
            .doc
            .element_name(parent_el)
            .and_then(|e| cp.attributes.get(e))
            .and_then(|m| m.get(attr.as_str()))
            .and_then(|c| c.exact);
        match exact {
            Some(lab) => {
                if self.is_allowed(lab.final_sign) {
                    memo.cell_allow += 1;
                } else {
                    memo.cell_deny += 1;
                }
                Some(lab)
            }
            None => {
                memo.cell_dep += 1;
                None
            }
        }
    }

    /// Bit `i` ⇔ the `i`-th applicable authorization selects `n`
    /// (instance auths low, schema auths above them).
    fn mask_of(&self, n: NodeId) -> u128 {
        let mut mask = 0u128;
        for (i, m) in self.xml.iter().enumerate() {
            if m.contains(n) {
                mask |= 1 << i;
            }
        }
        let off = self.xml.len();
        for (i, m) in self.dtd.iter().enumerate() {
            if m.contains(n) {
                mask |= 1 << (off + i);
            }
        }
        mask
    }

    /// The paper's `initial_label(n)`: per-class sign from the matching
    /// authorizations, with most-specific-subject filtering (steps 1–2),
    /// memoized through `memo` (and the cross-request cache) by match
    /// mask.
    ///
    /// For attribute nodes, recursive-type authorizations selecting the
    /// attribute fold into the corresponding local class (`R → L`,
    /// `RW → LW`): recursion is meaningless on a leaf.
    fn initial_label(&self, n: NodeId, is_attribute: bool, memo: &mut Memo) -> Label {
        if !self.maskable() {
            return self.resolve_with(
                is_attribute,
                |i| self.xml[i].contains(n),
                |i| self.dtd[i].contains(n),
            );
        }
        let mask = self.mask_of(n);
        if let Some(lab) = memo.local.get(&(is_attribute, mask)) {
            memo.hits += 1;
            return *lab;
        }
        let key = DecisionKey { fingerprint: self.fingerprint, is_attribute, mask };
        if let Some(shared) = self.decisions {
            if let Some(lab) = shared.get(&key) {
                memo.hits += 1;
                memo.local.insert((is_attribute, mask), lab);
                return lab;
            }
        }
        memo.misses += 1;
        let off = self.xml.len();
        let lab = self.resolve_with(
            is_attribute,
            |i| (mask >> i) & 1 == 1,
            |i| (mask >> (off + i)) & 1 == 1,
        );
        memo.local.insert((is_attribute, mask), lab);
        if let Some(shared) = self.decisions {
            shared.put(key, lab);
        }
        lab
    }

    /// One shared resolution body for both the direct and the mask-keyed
    /// paths (so they cannot diverge): `xml_sel`/`dtd_sel` say which
    /// applicable authorizations select the node.
    fn resolve_with(
        &self,
        is_attribute: bool,
        xml_sel: impl Fn(usize) -> bool,
        dtd_sel: impl Fn(usize) -> bool,
    ) -> Label {
        let mut lab = Label::default();
        let mut bucket: Vec<&Authorization> = Vec::new();

        for class in INSTANCE_CLASSES {
            bucket.clear();
            for (i, m) in self.xml.iter().enumerate() {
                if !xml_sel(i) {
                    continue;
                }
                let ty = m.auth.ty;
                let effective = if is_attribute {
                    match ty {
                        AuthType::Recursive => AuthType::Local,
                        AuthType::RecursiveWeak => AuthType::LocalWeak,
                        t => t,
                    }
                } else {
                    ty
                };
                if effective == class {
                    bucket.push(m.auth);
                }
            }
            let sign: Sign3 = resolve_sign(&bucket, self.dir, self.policy.conflict).into();
            match class {
                AuthType::Local => lab.l = sign,
                AuthType::Recursive => lab.r = sign,
                AuthType::LocalWeak => lab.lw = sign,
                AuthType::RecursiveWeak => lab.rw = sign,
            }
        }

        // Schema level: weak folds into strong, recursive folds into
        // local for attributes.
        for local in [true, false] {
            bucket.clear();
            for (i, m) in self.dtd.iter().enumerate() {
                if !dtd_sel(i) {
                    continue;
                }
                let recursive = m.auth.ty.is_recursive() && !is_attribute;
                if local != recursive {
                    bucket.push(m.auth);
                }
            }
            let sign: Sign3 = resolve_sign(&bucket, self.dir, self.policy.conflict).into();
            if local {
                lab.ld = sign;
            } else {
                lab.rd = sign;
            }
        }
        lab
    }

    /// Labels an attribute from its own initial label and the parent
    /// element's component signs (`parent_el` is the owning element, so
    /// compiled cells can be looked up by type).
    fn label_attribute(
        &self,
        a: NodeId,
        parent_el: NodeId,
        parent: &Label,
        memo: &mut Memo,
    ) -> Label {
        if let Some(lab) = self.compiled_attribute(a, parent_el, memo) {
            return lab;
        }
        let mut lab = self.initial_label(a, true, memo);
        // Structural nulls for leaves.
        lab.r = Sign3::Eps;
        lab.rw = Sign3::Eps;
        lab.rd = Sign3::Eps;
        let strong_p = first_def([parent.l, parent.r]);
        let schema_p = first_def([parent.ld, parent.rd]);
        let weak_p = first_def([parent.lw, parent.rw]);
        lab.final_sign = first_def([lab.l, strong_p, lab.ld, schema_p, lab.lw, weak_p]);
        lab
    }

    /// Propagation step for an element with parent label `parent`.
    fn label_element(&self, n: NodeId, parent: &Label, memo: &mut Memo) -> Label {
        if let Some(lab) = self.compiled_element(n, memo) {
            return lab;
        }
        let mut lab = self.initial_label(n, false, memo);
        // Most specific overrides: an instance recursive authorization on
        // the node (strong or weak) stops the parent's instance
        // propagation entirely; otherwise both propagate.
        if !lab.r.is_def() && !lab.rw.is_def() {
            lab.r = parent.r;
            lab.rw = parent.rw;
        }
        lab.rd = first_def([lab.rd, parent.rd]);
        lab.final_sign = lab.collapse();
        lab
    }
}

/// Labels the subtree rooted at `n` given its parent's (already decided)
/// label, emitting `(arena slot, label)` pairs — directly into the label
/// vector on the sequential path, into a per-worker buffer under
/// parallel fan-out. Polls the request token once per element (amortized
/// inside [`CancelToken::poll`]), unwinding through the recursion with
/// the partial emit buffer discarded by the caller.
fn label_subtree(
    ctx: &LabelCtx<'_>,
    n: NodeId,
    parent: Label,
    memo: &mut Memo,
    emit: &mut impl FnMut(usize, Label),
) -> Result<(), Cancelled> {
    if let Some(t) = ctx.cancel {
        t.poll()?;
    }
    let lab = ctx.label_element(n, &parent, memo);
    emit(n.index(), lab);
    for &a in ctx.doc.attributes(n) {
        emit(a.index(), ctx.label_attribute(a, n, &lab, memo));
    }
    for c in ctx.doc.child_elements(n) {
        label_subtree(ctx, c, lab, memo, emit)?;
    }
    Ok(())
}

/// Whole-document fast path over a fully-guaranteed verdict table: one
/// lookup per element/attribute, writing only the representative final
/// sign (pruning and the statistics read nothing else — components stay
/// at their defaults). Returns `Ok(None)` when the document mentions an
/// element or attribute type the table has no cell for, i.e. it cannot
/// conform to the compiled schema; the caller then falls back to the
/// interpreted path. A tripped cancellation token is `Err` — even the
/// table-lookup path stays responsive on huge documents, and a cancelled
/// request never silently degrades to the interpreted engine.
fn label_fast_path(
    doc: &Document,
    cp: &CompiledPolicy,
    instance_auths: usize,
    schema_auths: usize,
    policy: PolicyConfig,
    cancel: Option<&CancelToken>,
) -> Result<Option<Labeling>, Cancelled> {
    if doc.element_name(doc.root()) != Some(cp.root.as_str()) {
        return Ok(None);
    }
    let open = policy.completeness == CompletenessPolicy::Open;
    let mut labels = vec![Label::default(); doc.arena_len()];
    let (mut allow, mut deny) = (0u64, 0u64);
    let mut stack = vec![doc.root()];
    while let Some(n) = stack.pop() {
        if let Some(t) = cancel {
            t.poll()?;
        }
        let Some(name) = doc.element_name(n) else { return Ok(None) };
        let Some(rep) = cp.elements.get(name).and_then(|c| c.representative) else {
            return Ok(None);
        };
        labels[n.index()].final_sign = rep;
        if rep == Sign3::Plus || (open && rep == Sign3::Eps) {
            allow += 1;
        } else {
            deny += 1;
        }
        let attr_cells = cp.attributes.get(name);
        for &a in doc.attributes(n) {
            let NodeData::Attr { name: attr, .. } = &doc.node(a).data else { continue };
            let Some(rep) =
                attr_cells.and_then(|m| m.get(attr.as_str())).and_then(|c| c.representative)
            else {
                return Ok(None);
            };
            labels[a.index()].final_sign = rep;
            if rep == Sign3::Plus || (open && rep == Sign3::Eps) {
                allow += 1;
            } else {
                deny += 1;
            }
        }
        stack.extend(doc.child_elements(n));
    }
    let mut stats = ViewStats { instance_auths, schema_auths, ..Default::default() };
    for n in doc.preorder(doc.root()) {
        stats.labeled_nodes += 1;
        if labels[n.index()].final_sign == Sign3::Plus {
            stats.granted_nodes += 1;
        }
    }
    record_cell_hits(allow, deny, 0);
    Ok(Some(Labeling { labels, stats, incremental: None }))
}

/// Flushes incremental-relabel traffic to telemetry: how many nodes kept
/// their previous label vs. were resolved from scratch.
fn record_relabel(reused: u64, resolved: u64) {
    use std::sync::OnceLock;
    use xmlsec_telemetry as telemetry;
    static REUSED: OnceLock<std::sync::Arc<telemetry::Counter>> = OnceLock::new();
    static RESOLVED: OnceLock<std::sync::Arc<telemetry::Counter>> = OnceLock::new();
    REUSED
        .get_or_init(|| {
            telemetry::global().counter(
                "xmlsec_relabel_nodes_total",
                "Nodes whose label was reused across an incremental relabel.",
                &[("kind", "reused")],
            )
        })
        .add(reused);
    RESOLVED
        .get_or_init(|| {
            telemetry::global().counter(
                "xmlsec_relabel_nodes_total",
                "Nodes whose label was reused across an incremental relabel.",
                &[("kind", "resolved")],
            )
        })
        .add(resolved);
}

/// Labels `doc` like [`label_document_engine`], but captures per-slot
/// reuse state in the returned [`Labeling`] and — when `prev` carries
/// compatible state from an earlier call — **relabels only the dirty
/// region**: the nodes whose match mask changed, the slots recycled by
/// the update, and the descendants of any node whose propagated label
/// changed. Everything else keeps its previous label without touching
/// the resolution machinery.
///
/// Soundness: a node's label is a pure function of `(its match mask,
/// its parent's label)` — [`LabelCtx::label_element`] /
/// [`LabelCtx::label_attribute`] read nothing else — and a compiled
/// verdict cell is keyed by the node's type alone, which cannot change
/// while the slot generation is unchanged. Authorization objects are
/// re-evaluated globally every call (an XPath predicate may read content
/// anywhere in the document), so changed masks are always observed; the
/// walk then descends only where `(generation, mask, parent label)`
/// differs from the previous run, which makes the result identical — not
/// just equivalent — to a cold [`label_document_engine`] run.
///
/// `prev` is ignored (full relabel, state still captured) when it has no
/// reuse state or was computed under a different policy fingerprint.
/// Applicable sets past the 128-bit mask cap fall back to the plain
/// engine and return a labeling without reuse state.
pub fn label_document_incremental(
    doc: &Document,
    axml: &[&Authorization],
    adtd: &[&Authorization],
    dir: &Directory,
    policy: PolicyConfig,
    opts: &EngineOptions<'_>,
    prev: Option<&Labeling>,
) -> Result<Labeling, EvalError> {
    if axml.len() + adtd.len() > 128 {
        return label_document_engine(doc, axml, adtd, dir, policy, opts);
    }
    // Always canonicalize: mask bit `i` must mean the same authorization
    // in the run that captured the state and in the run that compares
    // against it, independent of presentation order (and of whether a
    // decision cache happens to be attached).
    fn canonical<'x>(set: &[&'x Authorization]) -> Vec<&'x Authorization> {
        let mut v = set.to_vec();
        v.sort_by_cached_key(|a| a.to_string());
        v
    }
    let axml = canonical(axml);
    let adtd = canonical(adtd);
    let fingerprint = policy_fingerprint(&axml, &adtd, dir, policy);
    let compiled = opts.compiled.filter(|cp| cp.fingerprint == fingerprint);

    if let Some(t) = opts.cancel {
        t.check().map_err(|c| EvalError::Cancelled(c.reason))?;
    }

    // Global re-evaluation of the applicable objects (predicates may read
    // mutated content anywhere); the budget pool and cancellation
    // contract match the plain engine.
    let pool = match opts.cancel {
        Some(t) => SharedBudget::with_cancel(opts.limits.max_node_visits, t.clone()),
        None => SharedBudget::new(opts.limits.max_node_visits),
    };
    let xml_matched = evaluate_auths(doc, &axml, &opts.limits, &pool, 1)?;
    let dtd_matched = evaluate_auths(doc, &adtd, &opts.limits, &pool, 1)?;

    let ctx = LabelCtx {
        doc,
        xml: &xml_matched,
        dtd: &dtd_matched,
        dir,
        policy,
        fingerprint,
        decisions: opts.decisions,
        compiled,
        cancel: opts.cancel,
    };

    let len = doc.arena_len();
    let mut masks = vec![0u128; len];
    for n in doc.preorder(doc.root()) {
        masks[n.index()] = ctx.mask_of(n);
    }
    let gens: Vec<u32> = (0..len).map(|i| doc.slot_generation(i).unwrap_or(0)).collect();

    let reusable = prev.and_then(|p| p.incremental.as_ref()).filter(|s| {
        s.fingerprint == fingerprint
    });

    // `clean[i]`: slot i held the same node (generation) with the same
    // match mask last run — its previous label can be reused as long as
    // its parent's label also comes out unchanged.
    let mut clean = vec![false; len];
    let mut prev_labels: &[Label] = &[];
    if let Some(state) = reusable {
        let p = prev.expect("reusable implies prev");
        prev_labels = &p.labels;
        let overlap = len.min(state.masks.len());
        for (i, c) in clean.iter_mut().enumerate().take(overlap) {
            *c = state.gens[i] == gens[i] && state.masks[i] == masks[i];
        }
    }
    // `hot[i]`: the subtree below slot i contains a non-clean node, so
    // the walk must descend through i even when i itself is reusable.
    let mut hot = vec![false; len];
    for n in doc.preorder(doc.root()) {
        let i = n.index();
        if !clean[i] && !hot[i] {
            let mut cur = doc.parent(n);
            while let Some(a) = cur {
                let ai = a.index();
                if hot[ai] {
                    break;
                }
                hot[ai] = true;
                cur = doc.parent(a);
            }
        }
    }

    let mut labels = vec![Label::default(); len];
    let mut memo = Memo::default();
    let (mut reused, mut resolved) = (0u64, 0u64);

    // Copies the previous labels of the whole (clean) subtree under `n`.
    fn copy_subtree(
        doc: &Document,
        n: NodeId,
        prev_labels: &[Label],
        labels: &mut [Label],
        reused: &mut u64,
    ) {
        for m in doc.preorder(n) {
            labels[m.index()] = prev_labels[m.index()];
            *reused += 1;
        }
    }

    // Relabels top-down, descending only where something changed.
    // `parent_same`: the parent's new label equals its previous one, so
    // a clean child's previous label is still valid.
    #[allow(clippy::too_many_arguments)]
    fn walk(
        ctx: &LabelCtx<'_>,
        n: NodeId,
        parent: &Label,
        parent_same: bool,
        clean: &[bool],
        hot: &[bool],
        prev_labels: &[Label],
        labels: &mut [Label],
        memo: &mut Memo,
        reused: &mut u64,
        resolved: &mut u64,
    ) -> Result<(), Cancelled> {
        if let Some(t) = ctx.cancel {
            t.poll()?;
        }
        let i = n.index();
        if parent_same && clean[i] && !hot[i] {
            copy_subtree(ctx.doc, n, prev_labels, labels, reused);
            return Ok(());
        }
        let lab = if parent_same && clean[i] {
            *reused += 1;
            prev_labels[i]
        } else {
            *resolved += 1;
            ctx.label_element(n, parent, memo)
        };
        labels[i] = lab;
        let same = parent_same && clean[i] && lab == prev_labels[i];
        for &a in ctx.doc.attributes(n) {
            let ai = a.index();
            if same && clean[ai] {
                labels[ai] = prev_labels[ai];
                *reused += 1;
            } else {
                labels[ai] = ctx.label_attribute(a, n, &lab, memo);
                *resolved += 1;
            }
        }
        for c in ctx.doc.child_elements(n) {
            walk(ctx, c, &lab, same, clean, hot, prev_labels, labels, memo, reused, resolved)?;
        }
        Ok(())
    }

    // Root: no parent propagation, so "parent unchanged" is vacuously
    // true and the root reuses its previous label whenever it is clean.
    let root = doc.root();
    let ri = root.index();
    if clean[ri] && !hot[ri] {
        copy_subtree(doc, root, prev_labels, &mut labels, &mut reused);
    } else {
        let root_label = if clean[ri] {
            reused += 1;
            prev_labels[ri]
        } else {
            resolved += 1;
            ctx.compiled_element(root, &mut memo).unwrap_or_else(|| {
                let mut lab = ctx.initial_label(root, false, &mut memo);
                lab.final_sign = lab.collapse();
                lab
            })
        };
        labels[ri] = root_label;
        let same = clean[ri] && root_label == prev_labels[ri];
        for &a in doc.attributes(root) {
            let ai = a.index();
            if same && clean[ai] {
                labels[ai] = prev_labels[ai];
                reused += 1;
            } else {
                labels[ai] = ctx.label_attribute(a, root, &root_label, &mut memo);
                resolved += 1;
            }
        }
        for c in doc.child_elements(root) {
            walk(
                &ctx,
                c,
                &root_label,
                same,
                &clean,
                &hot,
                prev_labels,
                &mut labels,
                &mut memo,
                &mut reused,
                &mut resolved,
            )
            .map_err(|c| EvalError::Cancelled(c.reason))?;
        }
    }
    record_traffic(memo.hits, memo.misses);
    record_cell_hits(memo.cell_allow, memo.cell_deny, memo.cell_dep);
    record_relabel(reused, resolved);

    let mut labeling = Labeling {
        labels,
        stats: ViewStats {
            instance_auths: axml.len(),
            schema_auths: adtd.len(),
            ..Default::default()
        },
        incremental: Some(IncrementalState { masks, gens, fingerprint }),
    };
    let mut labeled = 0usize;
    let mut granted = 0usize;
    for n in doc.preorder(doc.root()) {
        labeled += 1;
        if labeling.labels[n.index()].final_sign == Sign3::Plus {
            granted += 1;
        }
    }
    labeling.stats.labeled_nodes = labeled;
    labeling.stats.granted_nodes = granted;
    Ok(labeling)
}

/// The paper's `prune(T, n)` (postorder): removes from `doc` every node
/// whose subtree contains no granted node. Returns the number of nodes
/// removed. The root element always survives (its start/end tags frame
/// the view).
pub fn prune_document(doc: &mut Document, labeling: &Labeling, policy: PolicyConfig) -> usize {
    let open = policy.completeness == CompletenessPolicy::Open;
    let allowed = |s: Sign3| s == Sign3::Plus || (open && s == Sign3::Eps);
    let mut removed = 0usize;
    let root = doc.root();
    prune_rec(doc, root, labeling, allowed, &mut removed);
    removed
}

/// Returns `true` when the subtree rooted at `n` survived.
fn prune_rec(
    doc: &mut Document,
    n: NodeId,
    labeling: &Labeling,
    allowed: impl Fn(Sign3) -> bool + Copy,
    removed: &mut usize,
) -> bool {
    let self_allowed = allowed(labeling.final_sign(n));

    // Attributes: kept iff their own final sign grants access.
    let attrs: Vec<NodeId> = doc.attributes(n).to_vec();
    let mut kept_any_attr = false;
    for a in attrs {
        if allowed(labeling.final_sign(a)) {
            kept_any_attr = true;
        } else {
            doc.detach(a);
            *removed += 1;
        }
    }

    // Children: elements recurse; text/comments/PIs follow the element's
    // own sign (content of a structure-only element is hidden).
    let children: Vec<NodeId> = doc.children(n).to_vec();
    let mut kept_any_child = false;
    for c in children {
        let keep = match &doc.node(c).data {
            NodeData::Element { .. } => prune_rec(doc, c, labeling, allowed, removed),
            _ => self_allowed,
        };
        if keep {
            kept_any_child = true;
        } else if !doc.is_element(c) {
            doc.detach(c);
            *removed += 1;
        }
    }

    let keep = self_allowed || kept_any_attr || kept_any_child;
    let is_root = doc.parent(n).is_none();
    if !keep && !is_root {
        doc.detach(n);
        *removed += 1;
    }
    // The root element always survives; report it as kept.
    keep || is_root
}

/// Convenience: label `doc` and prune a *copy*, leaving the original
/// untouched. Returns the view document and the statistics.
pub fn compute_view(
    doc: &Document,
    axml: &[&Authorization],
    adtd: &[&Authorization],
    dir: &Directory,
    policy: PolicyConfig,
) -> (Document, ViewStats) {
    compute_view_limited(doc, axml, adtd, dir, policy, &EvalLimits::unlimited())
        .expect("unlimited evaluation cannot exhaust a budget")
}

/// Like [`compute_view`], but bounds the authorization path evaluations
/// with `limits` (see [`label_document_limited`]).
pub fn compute_view_limited(
    doc: &Document,
    axml: &[&Authorization],
    adtd: &[&Authorization],
    dir: &Directory,
    policy: PolicyConfig,
    limits: &EvalLimits,
) -> Result<(Document, ViewStats), EvalError> {
    compute_view_engine(doc, axml, adtd, dir, policy, &EngineOptions::sequential(*limits))
}

/// The full engine entry point: [`label_document_engine`] on `doc`, then
/// pruning on a copy. Sequential callers get exactly the historical
/// [`compute_view_limited`] behavior; parallel callers get the same
/// bytes (differential-tested) faster.
pub fn compute_view_engine(
    doc: &Document,
    axml: &[&Authorization],
    adtd: &[&Authorization],
    dir: &Directory,
    policy: PolicyConfig,
    opts: &EngineOptions<'_>,
) -> Result<(Document, ViewStats), EvalError> {
    let labeling = {
        let _s = crate::stages::label();
        label_document_engine(doc, axml, adtd, dir, policy, opts)?
    };
    let _s = crate::stages::prune();
    let mut view = doc.clone();
    let removed = prune_document(&mut view, &labeling, policy);
    let mut stats = labeling.stats;
    stats.pruned_nodes = removed;
    Ok((view, stats))
}

/// Renders the labeled tree with per-node signs (diagnostics, and the
/// basis for the Figure 3 reproduction).
pub fn render_labeled(doc: &Document, labeling: &Labeling) -> String {
    let mut out = String::new();
    render_rec(doc, doc.root(), labeling, 0, &mut out);
    out
}

fn render_rec(doc: &Document, n: NodeId, labeling: &Labeling, depth: usize, out: &mut String) {
    let lab = labeling.label(n);
    let pad = "  ".repeat(depth);
    match &doc.node(n).data {
        NodeData::Element { name, .. } => {
            out.push_str(&format!("{pad}({name}) [{}]\n", lab.final_sign.symbol()));
            for &a in doc.attributes(n) {
                render_rec(doc, a, labeling, depth + 1, out);
            }
            for &c in doc.children(n) {
                render_rec(doc, c, labeling, depth + 1, out);
            }
        }
        NodeData::Attr { name, value } => {
            out.push_str(&format!("{pad}[{name}={value:?}] [{}]\n", lab.final_sign.symbol()));
        }
        NodeData::Text(t) => {
            out.push_str(&format!("{pad}{:?}\n", t));
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmlsec_authz::{AuthType, Authorization, ObjectSpec, Sign};
    use xmlsec_subjects::Subject;
    use xmlsec_xml::{parse, serialize, SerializeOptions};

    fn dir() -> Directory {
        let mut d = Directory::new();
        d.add_user("u").unwrap();
        d.add_group("G").unwrap();
        d.add_member("u", "G").unwrap();
        d
    }

    fn auth(spec: &str, sign: Sign, ty: AuthType) -> Authorization {
        Authorization::new(
            Subject::new("u", "*", "*").unwrap(),
            ObjectSpec::parse(spec).unwrap(),
            sign,
            ty,
        )
    }

    fn view_str(doc_text: &str, axml: &[Authorization], adtd: &[Authorization]) -> String {
        let doc = parse(doc_text).unwrap();
        let ax: Vec<&Authorization> = axml.iter().collect();
        let ad: Vec<&Authorization> = adtd.iter().collect();
        let (view, _) = compute_view(&doc, &ax, &ad, &dir(), PolicyConfig::paper_default());
        serialize(&view, &SerializeOptions::canonical())
    }

    #[test]
    fn closed_policy_hides_everything_without_authorizations() {
        let v = view_str("<a><b>t</b></a>", &[], &[]);
        assert_eq!(v, "<a/>");
    }

    #[test]
    fn recursive_permission_reveals_subtree() {
        let v = view_str(
            r#"<a><b x="1">t</b><c/></a>"#,
            &[auth("d.xml:/a", Sign::Plus, AuthType::Recursive)],
            &[],
        );
        assert_eq!(v, r#"<a><b x="1">t</b><c/></a>"#);
    }

    #[test]
    fn local_permission_covers_element_and_attributes_only() {
        let v = view_str(
            r#"<a x="1"><b y="2">t</b></a>"#,
            &[auth("d.xml:/a", Sign::Plus, AuthType::Local)],
            &[],
        );
        // a and @x visible; b (no auth, closed) pruned. a's text would be
        // visible but a has none.
        assert_eq!(v, r#"<a x="1"/>"#);
    }

    #[test]
    fn exception_overrides_recursive_grant() {
        // "the whole content but a specific element can be read"
        let v = view_str(
            r#"<a><b>keep</b><secret>no</secret></a>"#,
            &[
                auth("d.xml:/a", Sign::Plus, AuthType::Recursive),
                auth("d.xml:/a/secret", Sign::Minus, AuthType::Recursive),
            ],
            &[],
        );
        assert_eq!(v, "<a><b>keep</b></a>");
    }

    #[test]
    fn structure_preserved_for_visible_descendants() {
        // grant only on the deep node: ancestors' tags survive, their
        // text/attrs don't.
        let v = view_str(
            r#"<a x="1">atext<b y="2">btext<c z="3">ctext</c></b></a>"#,
            &[auth("d.xml:/a/b/c", Sign::Plus, AuthType::Recursive)],
            &[],
        );
        assert_eq!(v, r#"<a><b><c z="3">ctext</c></b></a>"#);
    }

    #[test]
    fn most_specific_object_wins_on_path_overlap() {
        // deny all papers recursively, but allow the public one locally
        let v = view_str(
            r#"<lab><paper category="private">p1</paper><paper category="public">p2</paper></lab>"#,
            &[
                auth("d.xml:/lab", Sign::Plus, AuthType::Recursive),
                auth("d.xml:/lab/paper", Sign::Minus, AuthType::Recursive),
                auth(r#"d.xml:/lab/paper[./@category="public"]"#, Sign::Plus, AuthType::Local),
            ],
            &[],
        );
        assert_eq!(v, r#"<lab><paper category="public">p2</paper></lab>"#);
    }

    #[test]
    fn schema_beats_weak_instance() {
        let axml = [auth("d.xml:/a/b", Sign::Plus, AuthType::RecursiveWeak)];
        let adtd = [auth("s.dtd://b", Sign::Minus, AuthType::Recursive)];
        let v = view_str("<a><b>t</b></a>", &axml, &adtd);
        assert_eq!(v, "<a/>");
        // flip: strong instance beats schema
        let axml2 = [auth("d.xml:/a/b", Sign::Plus, AuthType::Recursive)];
        let v2 = view_str("<a><b>t</b></a>", &axml2, &adtd);
        assert_eq!(v2, "<a><b>t</b></a>");
    }

    #[test]
    fn schema_recursive_propagates_through_instances() {
        let adtd = [auth("s.dtd:/a", Sign::Plus, AuthType::Recursive)];
        let v = view_str(r#"<a><b><c x="1">deep</c></b></a>"#, &[], &adtd);
        assert_eq!(v, r#"<a><b><c x="1">deep</c></b></a>"#);
    }

    #[test]
    fn weak_recursive_yields_to_schema_deep_down() {
        // weak + on root, schema - on deep node: schema wins there.
        let axml = [auth("d.xml:/a", Sign::Plus, AuthType::RecursiveWeak)];
        let adtd = [auth("s.dtd://c", Sign::Minus, AuthType::Local)];
        let v = view_str("<a><b>keep</b><c>drop</c></a>", &axml, &adtd);
        assert_eq!(v, "<a><b>keep</b></a>");
    }

    #[test]
    fn attribute_denial_is_honored() {
        let v = view_str(
            r#"<a x="1" y="2">t</a>"#,
            &[
                auth("d.xml:/a", Sign::Plus, AuthType::Recursive),
                auth("d.xml:/a/@y", Sign::Minus, AuthType::Local),
            ],
            &[],
        );
        assert_eq!(v, r#"<a x="1">t</a>"#);
    }

    #[test]
    fn attribute_grant_alone_keeps_element_shell() {
        let v =
            view_str(r#"<a x="1">t</a>"#, &[auth("d.xml:/a/@x", Sign::Plus, AuthType::Local)], &[]);
        // @x visible, element text not (element itself unlabeled).
        assert_eq!(v, r#"<a x="1"/>"#);
    }

    #[test]
    fn local_on_parent_propagates_to_attributes_not_subelements() {
        let v = view_str(
            r#"<a x="1"><b y="2"/></a>"#,
            &[auth("d.xml:/a", Sign::Plus, AuthType::Local)],
            &[],
        );
        assert_eq!(v, r#"<a x="1"/>"#);
    }

    #[test]
    fn open_policy_reveals_unlabeled_nodes() {
        let doc = parse("<a><b>t</b></a>").unwrap();
        let policy = PolicyConfig {
            completeness: CompletenessPolicy::Open,
            ..PolicyConfig::paper_default()
        };
        let (view, _) = compute_view(&doc, &[], &[], &dir(), policy);
        assert_eq!(serialize(&view, &SerializeOptions::canonical()), "<a><b>t</b></a>");
        // explicit denial still hides under open policy
        let a = auth("d.xml:/a/b", Sign::Minus, AuthType::Recursive);
        let (view2, _) = compute_view(&doc, &[&a], &[], &dir(), policy);
        assert_eq!(serialize(&view2, &SerializeOptions::canonical()), "<a/>");
    }

    #[test]
    fn group_authorization_applies_through_membership() {
        let d = dir();
        let doc = parse("<a>t</a>").unwrap();
        let g = Authorization::new(
            Subject::new("G", "*", "*").unwrap(),
            ObjectSpec::parse("d.xml:/a").unwrap(),
            Sign::Plus,
            AuthType::Recursive,
        );
        // The caller (store) filters by requester coverage; here the auth
        // is already applicable, so labeling just uses it.
        let (view, stats) = compute_view(&doc, &[&g], &[], &d, PolicyConfig::paper_default());
        assert_eq!(serialize(&view, &SerializeOptions::canonical()), "<a>t</a>");
        assert_eq!(stats.instance_auths, 1);
    }

    #[test]
    fn stats_are_reported() {
        let doc = parse(r#"<a x="1"><b/><c/></a>"#).unwrap();
        let a = auth("d.xml:/a/b", Sign::Plus, AuthType::Recursive);
        let (_, stats) = compute_view(&doc, &[&a], &[], &dir(), PolicyConfig::paper_default());
        assert_eq!(stats.labeled_nodes, 4); // a, @x, b, c
        assert_eq!(stats.granted_nodes, 1); // b
        assert!(stats.pruned_nodes >= 2); // @x and c at least
    }

    #[test]
    fn conditional_authorization_follows_content() {
        let v = view_str(
            r#"<lab><p t="x"><s>1</s></p><p t="y"><s>2</s></p></lab>"#,
            &[auth(r#"d.xml:/lab/p[./@t="x"]"#, Sign::Plus, AuthType::Recursive)],
            &[],
        );
        assert_eq!(v, r#"<lab><p t="x"><s>1</s></p></lab>"#);
    }

    #[test]
    fn labeled_render_shows_signs() {
        let doc = parse("<a><b/></a>").unwrap();
        let a = auth("d.xml:/a/b", Sign::Plus, AuthType::Recursive);
        let labeling = label_document(&doc, &[&a], &[], &dir(), PolicyConfig::paper_default());
        let s = render_labeled(&doc, &labeling);
        assert!(s.contains("(a) [ε]"), "{s}");
        assert!(s.contains("(b) [+]"), "{s}");
    }

    #[test]
    fn weak_local_overridden_by_dtd_local_on_same_node() {
        let axml = [auth("d.xml:/a", Sign::Minus, AuthType::LocalWeak)];
        let adtd = [auth("s.dtd:/a", Sign::Plus, AuthType::Local)];
        let v = view_str("<a>t</a>", &axml, &adtd);
        assert_eq!(v, "<a>t</a>");
    }

    #[test]
    fn instance_recursive_on_node_stops_parent_propagation_even_if_weak() {
        // Parent grants recursively (strong); node has weak recursive
        // denial. Per the propagation rule, the node's weak recursive stops
        // the parent's strong propagation, so at the node the sequence is
        // [L=ε, R=ε, LD=ε, RD=ε, LW=ε, RW=-] → '-'.
        let axml = [
            auth("d.xml:/a", Sign::Plus, AuthType::Recursive),
            auth("d.xml:/a/b", Sign::Minus, AuthType::RecursiveWeak),
        ];
        let v = view_str("<a><b>t</b>sibling</a>", &axml, &[]);
        assert_eq!(v, "<a>sibling</a>");
    }

    // ---- engine: parallelism + decision cache ----

    /// A repetitive multi-level document big enough to exercise frontier
    /// expansion and fan-out.
    fn wide_doc_text() -> String {
        let mut s = String::from("<lab>");
        for i in 0..40 {
            s.push_str(&format!(
                r#"<project id="{i}" kind="{}">"#,
                if i % 3 == 0 { "open" } else { "internal" }
            ));
            for j in 0..6 {
                s.push_str(&format!(
                    r#"<paper n="{j}"><title>t{i}-{j}</title><body>text</body></paper>"#
                ));
            }
            s.push_str("</project>");
        }
        s.push_str("</lab>");
        s
    }

    fn engine_auths() -> Vec<Authorization> {
        vec![
            auth("d.xml:/lab", Sign::Plus, AuthType::Recursive),
            auth(r#"d.xml://project[./@kind="internal"]"#, Sign::Minus, AuthType::Recursive),
            auth(
                r#"d.xml://project[./@kind="internal"]/paper[./@n="1"]"#,
                Sign::Plus,
                AuthType::Local,
            ),
            auth("d.xml://body", Sign::Minus, AuthType::LocalWeak),
        ]
    }

    #[test]
    fn parallel_engine_matches_sequential_bytes_and_stats() {
        let doc = parse(&wide_doc_text()).unwrap();
        let auths = engine_auths();
        let ax: Vec<&Authorization> = auths.iter().collect();
        let policy = PolicyConfig::paper_default();
        let d = dir();
        let seq = EngineOptions::sequential(EvalLimits::default_limits());
        let (view_seq, stats_seq) = compute_view_engine(&doc, &ax, &[], &d, policy, &seq).unwrap();
        for threads in [2usize, 4, 8] {
            let par_opts = EngineOptions {
                limits: EvalLimits::default_limits(),
                parallelism: Parallelism::threads(threads).with_seq_threshold(0).exact(),
                decisions: None,
                compiled: None,
                cancel: None,
            };
            let (view_par, stats_par) =
                compute_view_engine(&doc, &ax, &[], &d, policy, &par_opts).unwrap();
            assert_eq!(
                serialize(&view_par, &SerializeOptions::canonical()),
                serialize(&view_seq, &SerializeOptions::canonical()),
                "parallel view must be byte-identical ({threads} threads)"
            );
            assert_eq!(stats_par, stats_seq);
        }
    }

    #[test]
    fn decision_cache_is_populated_and_preserves_output() {
        let doc = parse(&wide_doc_text()).unwrap();
        let auths = engine_auths();
        let ax: Vec<&Authorization> = auths.iter().collect();
        let policy = PolicyConfig::paper_default();
        let d = dir();
        let plain = EngineOptions::sequential(EvalLimits::default_limits());
        let (view_plain, _) = compute_view_engine(&doc, &ax, &[], &d, policy, &plain).unwrap();

        let cache = DecisionCache::new();
        let cached = EngineOptions { decisions: Some(&cache), ..plain };
        let (v1, _) = compute_view_engine(&doc, &ax, &[], &d, policy, &cached).unwrap();
        assert!(!cache.is_empty(), "engine must memoize decisions");
        let warm = cache.len();
        let (v2, _) = compute_view_engine(&doc, &ax, &[], &d, policy, &cached).unwrap();
        assert_eq!(cache.len(), warm, "second run adds no new decisions");
        let want = serialize(&view_plain, &SerializeOptions::canonical());
        assert_eq!(serialize(&v1, &SerializeOptions::canonical()), want);
        assert_eq!(serialize(&v2, &SerializeOptions::canonical()), want);
    }

    #[test]
    fn decision_cache_keys_are_canonical_under_permuted_auth_order() {
        // DecisionKey.mask assigns bit i to the i-th applicable
        // authorization; the fingerprint is order-independent. The engine
        // therefore canonicalizes the slice order when a cache is
        // attached — otherwise a request presenting the same set in a
        // different order would hit entries keyed under a permuted
        // bit-to-authorization mapping and resolve wrong labels.
        let doc = parse(&wide_doc_text()).unwrap();
        let auths = engine_auths();
        let ax: Vec<&Authorization> = auths.iter().collect();
        let mut reversed = ax.clone();
        reversed.reverse();
        let d = dir();
        let policy = PolicyConfig::paper_default();
        let plain = EngineOptions::sequential(EvalLimits::default_limits());
        let (view, _) = compute_view_engine(&doc, &ax, &[], &d, policy, &plain).unwrap();
        let want = serialize(&view, &SerializeOptions::canonical());

        let cache = DecisionCache::new();
        let cached = EngineOptions { decisions: Some(&cache), ..plain };
        let (v1, _) = compute_view_engine(&doc, &ax, &[], &d, policy, &cached).unwrap();
        let warm = cache.len();
        let (v2, _) = compute_view_engine(&doc, &reversed, &[], &d, policy, &cached).unwrap();
        assert_eq!(cache.len(), warm, "permuted presentation shares the warm entries");
        assert_eq!(serialize(&v1, &SerializeOptions::canonical()), want);
        assert_eq!(
            serialize(&v2, &SerializeOptions::canonical()),
            want,
            "a warm cache must not leak labels across a permuted bit mapping"
        );
    }

    // ---- engine: compiled policies ----

    const LAB_DTD: &str = r#"
        <!ELEMENT lab (project*)>
        <!ELEMENT project (paper*)>
        <!ATTLIST project name CDATA #IMPLIED>
        <!ELEMENT paper (#PCDATA)>
    "#;

    const LAB_DOC: &str = concat!(
        r#"<lab><project name="p1"><paper>P</paper></project>"#,
        r#"<project><paper>Q</paper></project></lab>"#
    );

    fn compiled_for(
        axml: &[&Authorization],
        adtd: &[&Authorization],
        policy: PolicyConfig,
    ) -> crate::compile::CompiledPolicy {
        let dtd = xmlsec_dtd::parse_dtd(LAB_DTD).unwrap();
        crate::compile::compile(&dtd, "lab", axml, adtd, &dir(), policy).unwrap()
    }

    #[test]
    fn compiled_fast_path_matches_interpreted_bytes_and_stats() {
        let doc = parse(LAB_DOC).unwrap();
        let adtd = [auth("s.dtd://project", Sign::Plus, AuthType::Recursive)];
        let ad: Vec<&Authorization> = adtd.iter().collect();
        let d = dir();
        let policy = PolicyConfig::paper_default();
        let cp = compiled_for(&[], &ad, policy);
        assert!(cp.fast_path, "{cp:?}");
        let plain = EngineOptions::sequential(EvalLimits::default_limits());
        let (want, stats_want) = compute_view_engine(&doc, &[], &ad, &d, policy, &plain).unwrap();
        let opts = EngineOptions { compiled: Some(&cp), ..plain };
        let (got, stats_got) = compute_view_engine(&doc, &[], &ad, &d, policy, &opts).unwrap();
        assert_eq!(
            serialize(&got, &SerializeOptions::canonical()),
            serialize(&want, &SerializeOptions::canonical()),
        );
        assert_eq!(stats_got, stats_want);
        // The fast path never evaluates an object, so even a zero budget
        // succeeds where the interpreted path trips.
        let tiny = EngineOptions {
            limits: EvalLimits { max_node_visits: 1, ..EvalLimits::default_limits() },
            ..opts
        };
        assert!(compute_view_engine(&doc, &[], &ad, &d, policy, &tiny).is_ok());
    }

    #[test]
    fn compiled_mixed_mode_matches_interpreted() {
        let doc = parse(LAB_DOC).unwrap();
        let axml = [auth(r#"d.xml://project[./@name="p1"]"#, Sign::Minus, AuthType::Recursive)];
        let adtd = [auth("s.dtd://project", Sign::Plus, AuthType::Recursive)];
        let ax: Vec<&Authorization> = axml.iter().collect();
        let ad: Vec<&Authorization> = adtd.iter().collect();
        let d = dir();
        let policy = PolicyConfig::paper_default();
        let cp = compiled_for(&ax, &ad, policy);
        assert!(!cp.fast_path, "predicate must force mixed mode: {cp:?}");
        let plain = EngineOptions::sequential(EvalLimits::default_limits());
        let (want, stats_want) = compute_view_engine(&doc, &ax, &ad, &d, policy, &plain).unwrap();
        let opts = EngineOptions { compiled: Some(&cp), ..plain };
        let (got, stats_got) = compute_view_engine(&doc, &ax, &ad, &d, policy, &opts).unwrap();
        assert_eq!(
            serialize(&got, &SerializeOptions::canonical()),
            serialize(&want, &SerializeOptions::canonical()),
        );
        assert_eq!(stats_got, stats_want);
    }

    #[test]
    fn stale_compiled_policy_is_ignored() {
        // Compiled for a different applicable set: the fingerprint check
        // must route the run to the interpreted path, not mislabel.
        let doc = parse(LAB_DOC).unwrap();
        let adtd = [auth("s.dtd://project", Sign::Plus, AuthType::Recursive)];
        let other = [auth("s.dtd://paper", Sign::Minus, AuthType::Recursive)];
        let ad: Vec<&Authorization> = adtd.iter().collect();
        let ot: Vec<&Authorization> = other.iter().collect();
        let d = dir();
        let policy = PolicyConfig::paper_default();
        let stale = compiled_for(&[], &ot, policy);
        let plain = EngineOptions::sequential(EvalLimits::default_limits());
        let (want, _) = compute_view_engine(&doc, &[], &ad, &d, policy, &plain).unwrap();
        let opts = EngineOptions { compiled: Some(&stale), ..plain };
        let (got, _) = compute_view_engine(&doc, &[], &ad, &d, policy, &opts).unwrap();
        assert_eq!(
            serialize(&got, &SerializeOptions::canonical()),
            serialize(&want, &SerializeOptions::canonical()),
        );
    }

    #[test]
    fn nonconforming_document_falls_back_to_interpreted() {
        // <intruder> has no verdict cell: the fast path must bail and the
        // interpreted engine label the document instead.
        let doc = parse("<lab><intruder>x</intruder></lab>").unwrap();
        let adtd = [auth("s.dtd://project", Sign::Plus, AuthType::Recursive)];
        let ad: Vec<&Authorization> = adtd.iter().collect();
        let d = dir();
        let policy = PolicyConfig::paper_default();
        let cp = compiled_for(&[], &ad, policy);
        assert!(cp.fast_path);
        let plain = EngineOptions::sequential(EvalLimits::default_limits());
        let (want, stats_want) = compute_view_engine(&doc, &[], &ad, &d, policy, &plain).unwrap();
        let opts = EngineOptions { compiled: Some(&cp), ..plain };
        let (got, stats_got) = compute_view_engine(&doc, &[], &ad, &d, policy, &opts).unwrap();
        assert_eq!(
            serialize(&got, &SerializeOptions::canonical()),
            serialize(&want, &SerializeOptions::canonical()),
        );
        assert_eq!(stats_got, stats_want);
    }

    #[test]
    fn oversized_auth_sets_bypass_the_decision_cache_and_count() {
        // 129 applicable authorizations exceed the 128-bit mask: the
        // engine must resolve from scratch (cache stays empty), produce
        // the same bytes, and surface the bypass in telemetry.
        let bypass = xmlsec_telemetry::global().counter(
            "xmlsec_decision_mask_bypass_total",
            "Labeling runs whose applicable sets exceeded the 128-bit \
             match-mask cap and bypassed decision memoization entirely.",
            &[],
        );
        let before = bypass.get();
        let doc = parse(r#"<a x="1"><b>t</b><c/></a>"#).unwrap();
        let mut auths = vec![auth("d.xml:/a/b", Sign::Plus, AuthType::Recursive)];
        auths.extend((0..128).map(|_| auth("d.xml:/a/c", Sign::Minus, AuthType::Local)));
        let ax: Vec<&Authorization> = auths.iter().collect();
        let d = dir();
        let policy = PolicyConfig::paper_default();
        let plain = EngineOptions::sequential(EvalLimits::default_limits());
        let (want, _) = compute_view_engine(&doc, &ax, &[], &d, policy, &plain).unwrap();
        let cache = DecisionCache::new();
        let cached = EngineOptions { decisions: Some(&cache), ..plain };
        let (got, _) = compute_view_engine(&doc, &ax, &[], &d, policy, &cached).unwrap();
        assert!(cache.is_empty(), "mask-capped runs must not populate the cache");
        assert_eq!(
            serialize(&got, &SerializeOptions::canonical()),
            serialize(&want, &SerializeOptions::canonical()),
        );
        assert!(bypass.get() >= before + 2, "both oversized runs must count");
    }

    #[test]
    fn node_budget_pools_across_authorization_objects() {
        let doc = parse(&wide_doc_text()).unwrap();
        let one = [auth("d.xml://paper", Sign::Plus, AuthType::Recursive)];
        let two = [
            auth("d.xml://paper", Sign::Plus, AuthType::Recursive),
            auth("d.xml://paper", Sign::Minus, AuthType::Local),
        ];
        let d = dir();
        let policy = PolicyConfig::paper_default();
        let run = |auths: &[Authorization], budget: u64| {
            let ax: Vec<&Authorization> = auths.iter().collect();
            let limits = EvalLimits { max_node_visits: budget, ..EvalLimits::default_limits() };
            label_document_limited(&doc, &ax, &[], &d, policy, &limits).map(|_| ())
        };
        // Smallest budget that covers one object evaluation...
        let mut cost = None;
        for k in 1..100_000u64 {
            if run(&one, k).is_ok() {
                cost = Some(k);
                break;
            }
        }
        let cost = cost.expect("some budget covers a single evaluation");
        // ...does not cover two: the pool is request-wide, not per-object.
        assert_eq!(run(&two, cost), Err(EvalError::NodeBudget { limit: cost }));
        assert!(run(&two, 2 * cost).is_ok());
    }
}
