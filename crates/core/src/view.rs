//! The **compute-view** algorithm (paper §6, Figure 2): document tree
//! labeling followed by pruning.
//!
//! Semantics implemented (from the paper's §6.1 prose):
//!
//! - Each node gets an initial 6-tuple from the authorizations whose
//!   object contains it, one sign per type class, with the "most specific
//!   subject takes precedence, then denials" resolution (pluggable).
//! - Preorder propagation: for an element `n` with parent `p`,
//!   `R_n`/`RW_n` keep their values if *either* is non-null (an instance
//!   authorization on the node, of either strength, overrides the whole
//!   instance-recursive propagation), otherwise both are inherited from
//!   `p`; `RD_n` is inherited when null. The final sign is
//!   `first_def(L, R, LD, RD, LW, RW)`.
//! - Attributes (always leaves): `R/RW/RD` are structurally null;
//!   authorizations *Local on the parent* propagate to the attribute. The
//!   final sign is `first_def(L_a, strong_p, LD_a, schema_p, LW_a,
//!   weak_p)` where `strong_p = first_def(L_p, R_p)`,
//!   `schema_p = first_def(LD_p, RD_p)`, `weak_p = first_def(LW_p, RW_p)`
//!   over the parent's *component* signs.
//! - Pruning (postorder): remove every subtree containing no node with a
//!   positive final sign; start/end tags of elements with a negative or
//!   undefined label survive when a descendant is visible (structure
//!   preservation, §6.2). Text/comment/PI content is visible only when
//!   its parent element's final sign grants access.
//!
//! DTD-level (`Adtd`) authorizations of weak type are folded into their
//! strong counterparts: the paper notes weak/strong is meaningless at the
//! schema level ("both Local Weak and Recursive Weak for the DTD is
//! missing").

use crate::label::{first_def, Label, Sign3};
use xmlsec_authz::{
    policy::resolve_sign, AuthType, Authorization, CompletenessPolicy, PolicyConfig,
};
use xmlsec_subjects::Directory;
use xmlsec_xml::{Document, NodeData, NodeId};
use xmlsec_xpath::{eval_path_limited, EvalError, EvalLimits};

/// Counters the processor reports alongside a computed view.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ViewStats {
    /// Instance-level authorizations applicable to the requester.
    pub instance_auths: usize,
    /// Schema-level authorizations applicable to the requester.
    pub schema_auths: usize,
    /// Nodes (elements + attributes) labeled.
    pub labeled_nodes: usize,
    /// Nodes with a positive final sign.
    pub granted_nodes: usize,
    /// Nodes removed by pruning (elements, attributes, text, other).
    pub pruned_nodes: usize,
}

/// The outcome of the labeling pass: one [`Label`] per arena slot.
#[derive(Debug, Clone)]
pub struct Labeling {
    labels: Vec<Label>,
    /// Statistics accumulated during labeling.
    pub stats: ViewStats,
}

impl Labeling {
    /// The label of `n`.
    pub fn label(&self, n: NodeId) -> &Label {
        &self.labels[n.index()]
    }

    /// The final sign of `n`.
    pub fn final_sign(&self, n: NodeId) -> Sign3 {
        self.labels[n.index()].final_sign
    }
}

/// One matching authorization, pre-evaluated: which nodes its object
/// selects, and which type class it contributes to.
struct MatchedAuth<'a> {
    auth: &'a Authorization,
    /// Bitset over arena slots: nodes selected by the object's path
    /// expression (the root element for whole-document objects).
    selected: Vec<u64>,
}

impl MatchedAuth<'_> {
    #[inline]
    fn contains(&self, n: NodeId) -> bool {
        let i = n.index();
        (self.selected[i / 64] >> (i % 64)) & 1 == 1
    }
}

fn evaluate_auths<'a>(
    doc: &Document,
    auths: &[&'a Authorization],
    limits: &EvalLimits,
) -> Result<Vec<MatchedAuth<'a>>, EvalError> {
    let words = doc.arena_len().div_ceil(64);
    auths
        .iter()
        .map(|a| {
            let mut selected = vec![0u64; words];
            match &a.object.path {
                Some(p) => {
                    for n in eval_path_limited(doc, doc.root(), p, limits)? {
                        selected[n.index() / 64] |= 1 << (n.index() % 64);
                    }
                }
                None => {
                    // A whole-document object is an authorization on the
                    // document element.
                    let r = doc.root().index();
                    selected[r / 64] |= 1 << (r % 64);
                }
            }
            Ok(MatchedAuth { auth: a, selected })
        })
        .collect()
}

/// The four instance type classes, in the tuple's order.
const INSTANCE_CLASSES: [AuthType; 4] =
    [AuthType::Local, AuthType::Recursive, AuthType::LocalWeak, AuthType::RecursiveWeak];

/// Computes the labeling of `doc` for the given applicable authorization
/// sets (`axml` = instance level, `adtd` = schema level — steps 1–2 of
/// the algorithm happen in the caller, which owns the authorization base).
pub fn label_document(
    doc: &Document,
    axml: &[&Authorization],
    adtd: &[&Authorization],
    dir: &Directory,
    policy: PolicyConfig,
) -> Labeling {
    label_document_limited(doc, axml, adtd, dir, policy, &EvalLimits::unlimited())
        .expect("unlimited evaluation cannot exhaust a budget")
}

/// Like [`label_document`], but bounds the path evaluations of the
/// authorization objects: a pathological object expression yields a typed
/// [`EvalError`] instead of pinning the server.
pub fn label_document_limited(
    doc: &Document,
    axml: &[&Authorization],
    adtd: &[&Authorization],
    dir: &Directory,
    policy: PolicyConfig,
    limits: &EvalLimits,
) -> Result<Labeling, EvalError> {
    let mut labeling = Labeling {
        labels: vec![Label::default(); doc.arena_len()],
        stats: ViewStats {
            instance_auths: axml.len(),
            schema_auths: adtd.len(),
            ..Default::default()
        },
    };
    let xml_matched = evaluate_auths(doc, axml, limits)?;
    let dtd_matched = evaluate_auths(doc, adtd, limits)?;

    let ctx = LabelCtx { doc, xml: &xml_matched, dtd: &dtd_matched, dir, policy };

    // Root: initial label, final sign straight from its own components.
    let root = doc.root();
    let mut root_label = ctx.initial_label(root, false);
    root_label.final_sign = root_label.collapse();
    labeling.labels[root.index()] = root_label;

    // Attributes of the root, then recursive descent.
    for &a in doc.attributes(root) {
        let lab = ctx.label_attribute(a, &labeling.labels[root.index()]);
        labeling.labels[a.index()] = lab;
    }
    let children: Vec<NodeId> = doc.child_elements(root).collect();
    for c in children {
        label_rec(&ctx, c, root, &mut labeling.labels);
    }

    // Statistics.
    let mut labeled = 0usize;
    let mut granted = 0usize;
    for n in doc.preorder(doc.root()) {
        labeled += 1;
        if labeling.labels[n.index()].final_sign == Sign3::Plus {
            granted += 1;
        }
    }
    labeling.stats.labeled_nodes = labeled;
    labeling.stats.granted_nodes = granted;
    Ok(labeling)
}

struct LabelCtx<'a> {
    doc: &'a Document,
    xml: &'a [MatchedAuth<'a>],
    dtd: &'a [MatchedAuth<'a>],
    dir: &'a Directory,
    policy: PolicyConfig,
}

impl LabelCtx<'_> {
    /// The paper's `initial_label(n)`: per-class sign from the matching
    /// authorizations, with most-specific-subject filtering (steps 1–2).
    ///
    /// For attribute nodes, recursive-type authorizations selecting the
    /// attribute fold into the corresponding local class (`R → L`,
    /// `RW → LW`): recursion is meaningless on a leaf.
    fn initial_label(&self, n: NodeId, is_attribute: bool) -> Label {
        let mut lab = Label::default();
        let mut bucket: Vec<&Authorization> = Vec::new();

        for class in INSTANCE_CLASSES {
            bucket.clear();
            for m in self.xml {
                if !m.contains(n) {
                    continue;
                }
                let ty = m.auth.ty;
                let effective = if is_attribute {
                    match ty {
                        AuthType::Recursive => AuthType::Local,
                        AuthType::RecursiveWeak => AuthType::LocalWeak,
                        t => t,
                    }
                } else {
                    ty
                };
                if effective == class {
                    bucket.push(m.auth);
                }
            }
            let sign: Sign3 = resolve_sign(&bucket, self.dir, self.policy.conflict).into();
            match class {
                AuthType::Local => lab.l = sign,
                AuthType::Recursive => lab.r = sign,
                AuthType::LocalWeak => lab.lw = sign,
                AuthType::RecursiveWeak => lab.rw = sign,
            }
        }

        // Schema level: weak folds into strong, recursive folds into
        // local for attributes.
        for local in [true, false] {
            bucket.clear();
            for m in self.dtd {
                if !m.contains(n) {
                    continue;
                }
                let recursive = m.auth.ty.is_recursive() && !is_attribute;
                if local != recursive {
                    bucket.push(m.auth);
                }
            }
            let sign: Sign3 = resolve_sign(&bucket, self.dir, self.policy.conflict).into();
            if local {
                lab.ld = sign;
            } else {
                lab.rd = sign;
            }
        }
        lab
    }

    /// Labels an attribute from its own initial label and the parent
    /// element's component signs.
    fn label_attribute(&self, a: NodeId, parent: &Label) -> Label {
        let mut lab = self.initial_label(a, true);
        // Structural nulls for leaves.
        lab.r = Sign3::Eps;
        lab.rw = Sign3::Eps;
        lab.rd = Sign3::Eps;
        let strong_p = first_def([parent.l, parent.r]);
        let schema_p = first_def([parent.ld, parent.rd]);
        let weak_p = first_def([parent.lw, parent.rw]);
        lab.final_sign = first_def([lab.l, strong_p, lab.ld, schema_p, lab.lw, weak_p]);
        lab
    }

    /// Propagation step for an element with parent label `parent`.
    fn label_element(&self, n: NodeId, parent: &Label) -> Label {
        let mut lab = self.initial_label(n, false);
        // Most specific overrides: an instance recursive authorization on
        // the node (strong or weak) stops the parent's instance
        // propagation entirely; otherwise both propagate.
        if !lab.r.is_def() && !lab.rw.is_def() {
            lab.r = parent.r;
            lab.rw = parent.rw;
        }
        lab.rd = first_def([lab.rd, parent.rd]);
        lab.final_sign = lab.collapse();
        lab
    }
}

fn label_rec(ctx: &LabelCtx<'_>, n: NodeId, parent: NodeId, labels: &mut Vec<Label>) {
    let parent_label = labels[parent.index()];
    let lab = ctx.label_element(n, &parent_label);
    labels[n.index()] = lab;
    for &a in ctx.doc.attributes(n) {
        labels[a.index()] = ctx.label_attribute(a, &lab);
    }
    let children: Vec<NodeId> = ctx.doc.child_elements(n).collect();
    for c in children {
        label_rec(ctx, c, n, labels);
    }
}

/// The paper's `prune(T, n)` (postorder): removes from `doc` every node
/// whose subtree contains no granted node. Returns the number of nodes
/// removed. The root element always survives (its start/end tags frame
/// the view).
pub fn prune_document(doc: &mut Document, labeling: &Labeling, policy: PolicyConfig) -> usize {
    let open = policy.completeness == CompletenessPolicy::Open;
    let allowed = |s: Sign3| s == Sign3::Plus || (open && s == Sign3::Eps);
    let mut removed = 0usize;
    let root = doc.root();
    prune_rec(doc, root, labeling, allowed, &mut removed);
    removed
}

/// Returns `true` when the subtree rooted at `n` survived.
fn prune_rec(
    doc: &mut Document,
    n: NodeId,
    labeling: &Labeling,
    allowed: impl Fn(Sign3) -> bool + Copy,
    removed: &mut usize,
) -> bool {
    let self_allowed = allowed(labeling.final_sign(n));

    // Attributes: kept iff their own final sign grants access.
    let attrs: Vec<NodeId> = doc.attributes(n).to_vec();
    let mut kept_any_attr = false;
    for a in attrs {
        if allowed(labeling.final_sign(a)) {
            kept_any_attr = true;
        } else {
            doc.detach(a);
            *removed += 1;
        }
    }

    // Children: elements recurse; text/comments/PIs follow the element's
    // own sign (content of a structure-only element is hidden).
    let children: Vec<NodeId> = doc.children(n).to_vec();
    let mut kept_any_child = false;
    for c in children {
        let keep = match &doc.node(c).data {
            NodeData::Element { .. } => prune_rec(doc, c, labeling, allowed, removed),
            _ => self_allowed,
        };
        if keep {
            kept_any_child = true;
        } else if !doc.is_element(c) {
            doc.detach(c);
            *removed += 1;
        }
    }

    let keep = self_allowed || kept_any_attr || kept_any_child;
    let is_root = doc.parent(n).is_none();
    if !keep && !is_root {
        doc.detach(n);
        *removed += 1;
    }
    // The root element always survives; report it as kept.
    keep || is_root
}

/// Convenience: label `doc` and prune a *copy*, leaving the original
/// untouched. Returns the view document and the statistics.
pub fn compute_view(
    doc: &Document,
    axml: &[&Authorization],
    adtd: &[&Authorization],
    dir: &Directory,
    policy: PolicyConfig,
) -> (Document, ViewStats) {
    compute_view_limited(doc, axml, adtd, dir, policy, &EvalLimits::unlimited())
        .expect("unlimited evaluation cannot exhaust a budget")
}

/// Like [`compute_view`], but bounds the authorization path evaluations
/// with `limits` (see [`label_document_limited`]).
pub fn compute_view_limited(
    doc: &Document,
    axml: &[&Authorization],
    adtd: &[&Authorization],
    dir: &Directory,
    policy: PolicyConfig,
    limits: &EvalLimits,
) -> Result<(Document, ViewStats), EvalError> {
    let labeling = {
        let _s = crate::stages::label();
        label_document_limited(doc, axml, adtd, dir, policy, limits)?
    };
    let _s = crate::stages::prune();
    let mut view = doc.clone();
    let removed = prune_document(&mut view, &labeling, policy);
    let mut stats = labeling.stats;
    stats.pruned_nodes = removed;
    Ok((view, stats))
}

/// Renders the labeled tree with per-node signs (diagnostics, and the
/// basis for the Figure 3 reproduction).
pub fn render_labeled(doc: &Document, labeling: &Labeling) -> String {
    let mut out = String::new();
    render_rec(doc, doc.root(), labeling, 0, &mut out);
    out
}

fn render_rec(doc: &Document, n: NodeId, labeling: &Labeling, depth: usize, out: &mut String) {
    let lab = labeling.label(n);
    let pad = "  ".repeat(depth);
    match &doc.node(n).data {
        NodeData::Element { name, .. } => {
            out.push_str(&format!("{pad}({name}) [{}]\n", lab.final_sign.symbol()));
            for &a in doc.attributes(n) {
                render_rec(doc, a, labeling, depth + 1, out);
            }
            for &c in doc.children(n) {
                render_rec(doc, c, labeling, depth + 1, out);
            }
        }
        NodeData::Attr { name, value } => {
            out.push_str(&format!("{pad}[{name}={value:?}] [{}]\n", lab.final_sign.symbol()));
        }
        NodeData::Text(t) => {
            out.push_str(&format!("{pad}{:?}\n", t));
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmlsec_authz::{AuthType, Authorization, ObjectSpec, Sign};
    use xmlsec_subjects::Subject;
    use xmlsec_xml::{parse, serialize, SerializeOptions};

    fn dir() -> Directory {
        let mut d = Directory::new();
        d.add_user("u").unwrap();
        d.add_group("G").unwrap();
        d.add_member("u", "G").unwrap();
        d
    }

    fn auth(spec: &str, sign: Sign, ty: AuthType) -> Authorization {
        Authorization::new(
            Subject::new("u", "*", "*").unwrap(),
            ObjectSpec::parse(spec).unwrap(),
            sign,
            ty,
        )
    }

    fn view_str(doc_text: &str, axml: &[Authorization], adtd: &[Authorization]) -> String {
        let doc = parse(doc_text).unwrap();
        let ax: Vec<&Authorization> = axml.iter().collect();
        let ad: Vec<&Authorization> = adtd.iter().collect();
        let (view, _) = compute_view(&doc, &ax, &ad, &dir(), PolicyConfig::paper_default());
        serialize(&view, &SerializeOptions::canonical())
    }

    #[test]
    fn closed_policy_hides_everything_without_authorizations() {
        let v = view_str("<a><b>t</b></a>", &[], &[]);
        assert_eq!(v, "<a/>");
    }

    #[test]
    fn recursive_permission_reveals_subtree() {
        let v = view_str(
            r#"<a><b x="1">t</b><c/></a>"#,
            &[auth("d.xml:/a", Sign::Plus, AuthType::Recursive)],
            &[],
        );
        assert_eq!(v, r#"<a><b x="1">t</b><c/></a>"#);
    }

    #[test]
    fn local_permission_covers_element_and_attributes_only() {
        let v = view_str(
            r#"<a x="1"><b y="2">t</b></a>"#,
            &[auth("d.xml:/a", Sign::Plus, AuthType::Local)],
            &[],
        );
        // a and @x visible; b (no auth, closed) pruned. a's text would be
        // visible but a has none.
        assert_eq!(v, r#"<a x="1"/>"#);
    }

    #[test]
    fn exception_overrides_recursive_grant() {
        // "the whole content but a specific element can be read"
        let v = view_str(
            r#"<a><b>keep</b><secret>no</secret></a>"#,
            &[
                auth("d.xml:/a", Sign::Plus, AuthType::Recursive),
                auth("d.xml:/a/secret", Sign::Minus, AuthType::Recursive),
            ],
            &[],
        );
        assert_eq!(v, "<a><b>keep</b></a>");
    }

    #[test]
    fn structure_preserved_for_visible_descendants() {
        // grant only on the deep node: ancestors' tags survive, their
        // text/attrs don't.
        let v = view_str(
            r#"<a x="1">atext<b y="2">btext<c z="3">ctext</c></b></a>"#,
            &[auth("d.xml:/a/b/c", Sign::Plus, AuthType::Recursive)],
            &[],
        );
        assert_eq!(v, r#"<a><b><c z="3">ctext</c></b></a>"#);
    }

    #[test]
    fn most_specific_object_wins_on_path_overlap() {
        // deny all papers recursively, but allow the public one locally
        let v = view_str(
            r#"<lab><paper category="private">p1</paper><paper category="public">p2</paper></lab>"#,
            &[
                auth("d.xml:/lab", Sign::Plus, AuthType::Recursive),
                auth("d.xml:/lab/paper", Sign::Minus, AuthType::Recursive),
                auth(r#"d.xml:/lab/paper[./@category="public"]"#, Sign::Plus, AuthType::Local),
            ],
            &[],
        );
        assert_eq!(v, r#"<lab><paper category="public">p2</paper></lab>"#);
    }

    #[test]
    fn schema_beats_weak_instance() {
        let axml = [auth("d.xml:/a/b", Sign::Plus, AuthType::RecursiveWeak)];
        let adtd = [auth("s.dtd://b", Sign::Minus, AuthType::Recursive)];
        let v = view_str("<a><b>t</b></a>", &axml, &adtd);
        assert_eq!(v, "<a/>");
        // flip: strong instance beats schema
        let axml2 = [auth("d.xml:/a/b", Sign::Plus, AuthType::Recursive)];
        let v2 = view_str("<a><b>t</b></a>", &axml2, &adtd);
        assert_eq!(v2, "<a><b>t</b></a>");
    }

    #[test]
    fn schema_recursive_propagates_through_instances() {
        let adtd = [auth("s.dtd:/a", Sign::Plus, AuthType::Recursive)];
        let v = view_str(r#"<a><b><c x="1">deep</c></b></a>"#, &[], &adtd);
        assert_eq!(v, r#"<a><b><c x="1">deep</c></b></a>"#);
    }

    #[test]
    fn weak_recursive_yields_to_schema_deep_down() {
        // weak + on root, schema - on deep node: schema wins there.
        let axml = [auth("d.xml:/a", Sign::Plus, AuthType::RecursiveWeak)];
        let adtd = [auth("s.dtd://c", Sign::Minus, AuthType::Local)];
        let v = view_str("<a><b>keep</b><c>drop</c></a>", &axml, &adtd);
        assert_eq!(v, "<a><b>keep</b></a>");
    }

    #[test]
    fn attribute_denial_is_honored() {
        let v = view_str(
            r#"<a x="1" y="2">t</a>"#,
            &[
                auth("d.xml:/a", Sign::Plus, AuthType::Recursive),
                auth("d.xml:/a/@y", Sign::Minus, AuthType::Local),
            ],
            &[],
        );
        assert_eq!(v, r#"<a x="1">t</a>"#);
    }

    #[test]
    fn attribute_grant_alone_keeps_element_shell() {
        let v =
            view_str(r#"<a x="1">t</a>"#, &[auth("d.xml:/a/@x", Sign::Plus, AuthType::Local)], &[]);
        // @x visible, element text not (element itself unlabeled).
        assert_eq!(v, r#"<a x="1"/>"#);
    }

    #[test]
    fn local_on_parent_propagates_to_attributes_not_subelements() {
        let v = view_str(
            r#"<a x="1"><b y="2"/></a>"#,
            &[auth("d.xml:/a", Sign::Plus, AuthType::Local)],
            &[],
        );
        assert_eq!(v, r#"<a x="1"/>"#);
    }

    #[test]
    fn open_policy_reveals_unlabeled_nodes() {
        let doc = parse("<a><b>t</b></a>").unwrap();
        let policy = PolicyConfig {
            completeness: CompletenessPolicy::Open,
            ..PolicyConfig::paper_default()
        };
        let (view, _) = compute_view(&doc, &[], &[], &dir(), policy);
        assert_eq!(serialize(&view, &SerializeOptions::canonical()), "<a><b>t</b></a>");
        // explicit denial still hides under open policy
        let a = auth("d.xml:/a/b", Sign::Minus, AuthType::Recursive);
        let (view2, _) = compute_view(&doc, &[&a], &[], &dir(), policy);
        assert_eq!(serialize(&view2, &SerializeOptions::canonical()), "<a/>");
    }

    #[test]
    fn group_authorization_applies_through_membership() {
        let d = dir();
        let doc = parse("<a>t</a>").unwrap();
        let g = Authorization::new(
            Subject::new("G", "*", "*").unwrap(),
            ObjectSpec::parse("d.xml:/a").unwrap(),
            Sign::Plus,
            AuthType::Recursive,
        );
        // The caller (store) filters by requester coverage; here the auth
        // is already applicable, so labeling just uses it.
        let (view, stats) = compute_view(&doc, &[&g], &[], &d, PolicyConfig::paper_default());
        assert_eq!(serialize(&view, &SerializeOptions::canonical()), "<a>t</a>");
        assert_eq!(stats.instance_auths, 1);
    }

    #[test]
    fn stats_are_reported() {
        let doc = parse(r#"<a x="1"><b/><c/></a>"#).unwrap();
        let a = auth("d.xml:/a/b", Sign::Plus, AuthType::Recursive);
        let (_, stats) = compute_view(&doc, &[&a], &[], &dir(), PolicyConfig::paper_default());
        assert_eq!(stats.labeled_nodes, 4); // a, @x, b, c
        assert_eq!(stats.granted_nodes, 1); // b
        assert!(stats.pruned_nodes >= 2); // @x and c at least
    }

    #[test]
    fn conditional_authorization_follows_content() {
        let v = view_str(
            r#"<lab><p t="x"><s>1</s></p><p t="y"><s>2</s></p></lab>"#,
            &[auth(r#"d.xml:/lab/p[./@t="x"]"#, Sign::Plus, AuthType::Recursive)],
            &[],
        );
        assert_eq!(v, r#"<lab><p t="x"><s>1</s></p></lab>"#);
    }

    #[test]
    fn labeled_render_shows_signs() {
        let doc = parse("<a><b/></a>").unwrap();
        let a = auth("d.xml:/a/b", Sign::Plus, AuthType::Recursive);
        let labeling = label_document(&doc, &[&a], &[], &dir(), PolicyConfig::paper_default());
        let s = render_labeled(&doc, &labeling);
        assert!(s.contains("(a) [ε]"), "{s}");
        assert!(s.contains("(b) [+]"), "{s}");
    }

    #[test]
    fn weak_local_overridden_by_dtd_local_on_same_node() {
        let axml = [auth("d.xml:/a", Sign::Minus, AuthType::LocalWeak)];
        let adtd = [auth("s.dtd:/a", Sign::Plus, AuthType::Local)];
        let v = view_str("<a>t</a>", &axml, &adtd);
        assert_eq!(v, "<a>t</a>");
    }

    #[test]
    fn instance_recursive_on_node_stops_parent_propagation_even_if_weak() {
        // Parent grants recursively (strong); node has weak recursive
        // denial. Per the propagation rule, the node's weak recursive stops
        // the parent's strong propagation, so at the node the sequence is
        // [L=ε, R=ε, LD=ε, RD=ε, LW=ε, RW=-] → '-'.
        let axml = [
            auth("d.xml:/a", Sign::Plus, AuthType::Recursive),
            auth("d.xml:/a/b", Sign::Minus, AuthType::RecursiveWeak),
        ];
        let v = view_str("<a><b>t</b>sibling</a>", &axml, &[]);
        assert_eq!(v, "<a>sibling</a>");
    }
}
