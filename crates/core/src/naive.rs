//! A naive reference evaluator: the declarative semantics of §6 restated
//! without the recursive propagation pass.
//!
//! For each node *independently*, it determines the final sign by scanning
//! the node's ancestor chain for the nearest applicable authorization of
//! each priority class. It is quadratic in tree depth and re-filters
//! authorizations per node — obviously correct, deliberately unoptimized.
//! It serves two purposes:
//!
//! 1. **differential-testing oracle** — property tests assert
//!    `compute_view ≡ naive` on random documents/authorizations;
//! 2. **benchmark baseline** — the paper claims its recursive propagation
//!    gives "fast on-line computation" of views; the `baseline` bench
//!    quantifies the claim against this per-node evaluation.

use crate::label::{first_def, Sign3};
use crate::view::ViewStats;
use xmlsec_authz::{
    policy::resolve_sign, AuthType, Authorization, CompletenessPolicy, PolicyConfig,
};
use xmlsec_subjects::Directory;
use xmlsec_xml::{Document, NodeData, NodeId};
use xmlsec_xpath::eval_path;

/// Computes the view document exactly like [`crate::view::compute_view`],
/// using the naive per-node semantics.
pub fn compute_view_naive(
    doc: &Document,
    axml: &[&Authorization],
    adtd: &[&Authorization],
    dir: &Directory,
    policy: PolicyConfig,
) -> (Document, ViewStats) {
    let n = NaiveEval::new(doc, axml, adtd, dir, policy);
    let mut signs: Vec<Sign3> = vec![Sign3::Eps; doc.arena_len()];
    let mut granted = 0usize;
    let mut labeled = 0usize;
    for node in doc.preorder(doc.root()) {
        let s = n.final_sign(node);
        signs[node.index()] = s;
        labeled += 1;
        if s == Sign3::Plus {
            granted += 1;
        }
    }
    let mut view = doc.clone();
    let open = policy.completeness == CompletenessPolicy::Open;
    let allowed = |s: Sign3| s == Sign3::Plus || (open && s == Sign3::Eps);
    let mut removed = 0usize;
    let root = view.root();
    prune_by_signs(&mut view, root, &signs, allowed, &mut removed);
    (
        view,
        ViewStats {
            instance_auths: axml.len(),
            schema_auths: adtd.len(),
            labeled_nodes: labeled,
            granted_nodes: granted,
            pruned_nodes: removed,
        },
    )
}

/// The final sign of a single node under the naive semantics
/// (exposed so differential tests can compare label-by-label).
pub fn naive_final_sign(
    doc: &Document,
    node: NodeId,
    axml: &[&Authorization],
    adtd: &[&Authorization],
    dir: &Directory,
    policy: PolicyConfig,
) -> Sign3 {
    NaiveEval::new(doc, axml, adtd, dir, policy).final_sign(node)
}

struct NaiveEval<'a> {
    doc: &'a Document,
    /// Per instance-authorization selected node lists.
    xml_sel: Vec<(&'a Authorization, Vec<NodeId>)>,
    dtd_sel: Vec<(&'a Authorization, Vec<NodeId>)>,
    dir: &'a Directory,
    policy: PolicyConfig,
}

impl<'a> NaiveEval<'a> {
    fn new(
        doc: &'a Document,
        axml: &[&'a Authorization],
        adtd: &[&'a Authorization],
        dir: &'a Directory,
        policy: PolicyConfig,
    ) -> Self {
        let sel = |auths: &[&'a Authorization]| {
            auths
                .iter()
                .map(|a| {
                    let nodes = match &a.object.path {
                        Some(p) => eval_path(doc, doc.root(), p),
                        None => vec![doc.root()],
                    };
                    (*a, nodes)
                })
                .collect()
        };
        NaiveEval { doc, xml_sel: sel(axml), dtd_sel: sel(adtd), dir, policy }
    }

    /// Sign of one type class at one node (instance level).
    fn class_sign(&self, node: NodeId, class: AuthType) -> Sign3 {
        let is_attr = self.doc.is_attribute(node);
        let bucket: Vec<&Authorization> = self
            .xml_sel
            .iter()
            .filter(|(a, nodes)| {
                let eff = if is_attr {
                    match a.ty {
                        AuthType::Recursive => AuthType::Local,
                        AuthType::RecursiveWeak => AuthType::LocalWeak,
                        t => t,
                    }
                } else {
                    a.ty
                };
                eff == class && nodes.contains(&node)
            })
            .map(|(a, _)| *a)
            .collect();
        resolve_sign(&bucket, self.dir, self.policy.conflict).into()
    }

    /// Sign of the schema-level local or recursive class at one node.
    fn schema_sign(&self, node: NodeId, local: bool) -> Sign3 {
        let is_attr = self.doc.is_attribute(node);
        let bucket: Vec<&Authorization> = self
            .dtd_sel
            .iter()
            .filter(|(a, nodes)| {
                let recursive = a.ty.is_recursive() && !is_attr;
                local != recursive && nodes.contains(&node)
            })
            .map(|(a, _)| *a)
            .collect();
        resolve_sign(&bucket, self.dir, self.policy.conflict).into()
    }

    /// The instance-recursive pair (`R`, `RW`) in force at an element:
    /// the values at the nearest ancestor-or-self where either is defined.
    fn recursive_pair(&self, element: NodeId) -> (Sign3, Sign3) {
        let mut cur = Some(element);
        while let Some(m) = cur {
            let r = self.class_sign(m, AuthType::Recursive);
            let rw = self.class_sign(m, AuthType::RecursiveWeak);
            if r.is_def() || rw.is_def() {
                return (r, rw);
            }
            cur = self.doc.parent(m);
        }
        (Sign3::Eps, Sign3::Eps)
    }

    /// The schema-recursive sign in force at an element: the value at the
    /// nearest ancestor-or-self where it is defined.
    fn schema_recursive(&self, element: NodeId) -> Sign3 {
        let mut cur = Some(element);
        while let Some(m) = cur {
            let rd = self.schema_sign(m, false);
            if rd.is_def() {
                return rd;
            }
            cur = self.doc.parent(m);
        }
        Sign3::Eps
    }

    fn final_sign(&self, node: NodeId) -> Sign3 {
        match &self.doc.node(node).data {
            NodeData::Element { .. } => {
                let l = self.class_sign(node, AuthType::Local);
                let (r, rw) = self.recursive_pair(node);
                let ld = self.schema_sign(node, true);
                let rd = self.schema_recursive(node);
                let lw = self.class_sign(node, AuthType::LocalWeak);
                first_def([l, r, ld, rd, lw, rw])
            }
            NodeData::Attr { .. } => {
                let p = self.doc.parent(node).expect("attributes have a parent element");
                let l = self.class_sign(node, AuthType::Local);
                let strong_p =
                    first_def([self.class_sign(p, AuthType::Local), self.recursive_pair(p).0]);
                let ld = self.schema_sign(node, true);
                let schema_p = first_def([self.schema_sign(p, true), self.schema_recursive(p)]);
                let lw = self.class_sign(node, AuthType::LocalWeak);
                let weak_p =
                    first_def([self.class_sign(p, AuthType::LocalWeak), self.recursive_pair(p).1]);
                first_def([l, strong_p, ld, schema_p, lw, weak_p])
            }
            _ => Sign3::Eps,
        }
    }
}

fn prune_by_signs(
    doc: &mut Document,
    n: NodeId,
    signs: &[Sign3],
    allowed: impl Fn(Sign3) -> bool + Copy,
    removed: &mut usize,
) -> bool {
    let self_allowed = allowed(signs[n.index()]);
    let attrs: Vec<NodeId> = doc.attributes(n).to_vec();
    let mut kept_any = false;
    for a in attrs {
        if allowed(signs[a.index()]) {
            kept_any = true;
        } else {
            doc.detach(a);
            *removed += 1;
        }
    }
    let children: Vec<NodeId> = doc.children(n).to_vec();
    for c in children {
        let keep = match &doc.node(c).data {
            NodeData::Element { .. } => prune_by_signs(doc, c, signs, allowed, removed),
            _ => self_allowed,
        };
        if keep {
            kept_any = true;
        } else if !doc.is_element(c) {
            doc.detach(c);
            *removed += 1;
        }
    }
    let keep = self_allowed || kept_any;
    let is_root = doc.parent(n).is_none();
    if !keep && !is_root {
        doc.detach(n);
        *removed += 1;
    }
    // The root element always survives; report it as kept.
    keep || is_root
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::view::compute_view;
    use xmlsec_authz::{ObjectSpec, Sign};
    use xmlsec_subjects::Subject;
    use xmlsec_xml::{parse, serialize, SerializeOptions};

    fn dir() -> Directory {
        Directory::new()
    }

    fn auth(spec: &str, sign: Sign, ty: AuthType) -> Authorization {
        Authorization::new(
            Subject::new("u", "*", "*").unwrap(),
            ObjectSpec::parse(spec).unwrap(),
            sign,
            ty,
        )
    }

    /// Both engines must produce identical views on a hand-picked set of
    /// tricky cases (the property test in `tests/` covers random ones).
    #[test]
    fn agrees_with_propagation_engine() {
        let cases: Vec<(&str, Vec<Authorization>, Vec<Authorization>)> = vec![
            ("<a><b>t</b></a>", vec![], vec![]),
            (
                "<a><b>t</b><c><d/></c></a>",
                vec![auth("d:/a", Sign::Plus, AuthType::Recursive)],
                vec![],
            ),
            (
                "<a><b>t</b><c><d/></c></a>",
                vec![
                    auth("d:/a", Sign::Plus, AuthType::Recursive),
                    auth("d:/a/c", Sign::Minus, AuthType::RecursiveWeak),
                ],
                vec![auth("s://d", Sign::Plus, AuthType::Recursive)],
            ),
            (
                r#"<a x="1"><b y="2">t</b></a>"#,
                vec![
                    auth("d:/a", Sign::Plus, AuthType::Local),
                    auth("d:/a/b/@y", Sign::Minus, AuthType::Local),
                ],
                vec![auth("s:/a/b", Sign::Plus, AuthType::Local)],
            ),
            (
                "<a><b><c><d>deep</d></c></b></a>",
                vec![
                    auth("d:/a", Sign::Minus, AuthType::Recursive),
                    auth("d://c", Sign::Plus, AuthType::RecursiveWeak),
                ],
                vec![auth("s://b", Sign::Plus, AuthType::Recursive)],
            ),
        ];
        let d = dir();
        for (text, axml, adtd) in cases {
            let doc = parse(text).unwrap();
            let ax: Vec<&Authorization> = axml.iter().collect();
            let ad: Vec<&Authorization> = adtd.iter().collect();
            let (fast, _) = compute_view(&doc, &ax, &ad, &d, PolicyConfig::paper_default());
            let (slow, _) = compute_view_naive(&doc, &ax, &ad, &d, PolicyConfig::paper_default());
            assert_eq!(
                serialize(&fast, &SerializeOptions::canonical()),
                serialize(&slow, &SerializeOptions::canonical()),
                "divergence on {text} with {axml:?} / {adtd:?}"
            );
        }
    }

    #[test]
    fn per_node_signs_match_engine_labels() {
        let doc = parse(r#"<a x="1"><b><c y="2">t</c></b><e/></a>"#).unwrap();
        let axml = [
            auth("d:/a", Sign::Plus, AuthType::Recursive),
            auth("d:/a/b", Sign::Minus, AuthType::RecursiveWeak),
            auth("d://c/@y", Sign::Plus, AuthType::Local),
        ];
        let adtd = [auth("s://c", Sign::Plus, AuthType::Local)];
        let ax: Vec<&Authorization> = axml.iter().collect();
        let ad: Vec<&Authorization> = adtd.iter().collect();
        let d = dir();
        let labeling =
            crate::view::label_document(&doc, &ax, &ad, &d, PolicyConfig::paper_default());
        for n in doc.preorder(doc.root()) {
            let naive = naive_final_sign(&doc, n, &ax, &ad, &d, PolicyConfig::paper_default());
            assert_eq!(
                labeling.final_sign(n),
                naive,
                "node {n} ({})",
                xmlsec_xpath::describe_node(&doc, n)
            );
        }
    }

    #[test]
    fn open_policy_agreement() {
        let doc = parse("<a><b/><c>t</c></a>").unwrap();
        let axml = [auth("d:/a/b", Sign::Minus, AuthType::Recursive)];
        let ax: Vec<&Authorization> = axml.iter().collect();
        let policy = PolicyConfig {
            completeness: CompletenessPolicy::Open,
            ..PolicyConfig::paper_default()
        };
        let d = dir();
        let (fast, _) = compute_view(&doc, &ax, &[], &d, policy);
        let (slow, _) = compute_view_naive(&doc, &ax, &[], &d, policy);
        assert!(fast.structurally_equal(&slow));
        assert_eq!(serialize(&fast, &SerializeOptions::canonical()), "<a><c>t</c></a>");
    }
}
