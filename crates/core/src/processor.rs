//! The security processor (paper §7): the four-step on-line
//! transformation of a requested document into the requester's view.
//!
//! 1. **parsing** — syntax check of the document (and its DTD) and
//!    compilation into a DOM tree;
//! 2. **tree labeling** — recursive labeling from the instance- and
//!    schema-level XACLs (§6.1);
//! 3. **transformation** — pruning of the labeled tree (§6.2), valid
//!    w.r.t. the loosened DTD;
//! 4. **unparsing** — generation of the resulting XML text.
//!
//! The output carries the view document, its text, and the loosened DTD
//! text, ready to be "transmitted to the user who requested access".

use crate::compile::{CompiledCache, CompiledPolicy};
use crate::decision::DecisionCache;
use crate::limits::ResourceLimits;
use crate::par::Parallelism;
use crate::stages;
use crate::view::{compute_view_engine, EngineOptions, ViewStats};
use std::fmt;
use std::sync::Arc;
use xmlsec_authz::{AuthorizationBase, PolicyConfig};
use xmlsec_dtd::{loosen, normalize, parse_dtd, serialize_dtd, Dtd, Validator, ValidityError};
use xmlsec_subjects::{Directory, Requester};
use xmlsec_telemetry as telemetry;
use xmlsec_xml::cancel::{CancelReason, CancelToken};
use xmlsec_xml::{parse_cancellable, serialize, Document, ParseOptions, SerializeOptions};

/// Counts every full pipeline execution. Cache hits and HTTP 304
/// short-circuits never reach [`SecurityProcessor::process`], so the
/// delta of this counter is the ground truth for "did we recompute".
fn pipeline_runs() -> &'static Arc<telemetry::Counter> {
    static C: std::sync::OnceLock<Arc<telemetry::Counter>> = std::sync::OnceLock::new();
    C.get_or_init(|| {
        telemetry::global().counter(
            "xmlsec_pipeline_runs_total",
            "Full security-pipeline executions (cache hits excluded).",
            &[],
        )
    })
}

/// Errors raised by the processor pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum ProcessError {
    /// The requested document is not well-formed.
    Xml(xmlsec_xml::XmlError),
    /// The associated DTD does not parse.
    Dtd(xmlsec_dtd::DtdError),
    /// The document is not valid against its DTD (only when validation is
    /// requested); carries all violations.
    Invalid(Vec<ValidityError>),
    /// An authorization path evaluation exceeded the configured budget
    /// (see [`ResourceLimits::xpath`]).
    XpathLimit(xmlsec_xpath::EvalError),
    /// The request's cancellation token tripped (deadline passed, client
    /// gone, or explicit cancel) at a stage boundary or inside a hot
    /// loop; partial work was discarded on the normal drop path.
    Cancelled(CancelReason),
}

impl ProcessError {
    /// Whether this failure is a resource-limit rejection (as opposed to
    /// malformed/invalid input). Servers map these to "request too
    /// expensive" responses rather than generic parse failures.
    pub fn is_resource_limit(&self) -> bool {
        match self {
            ProcessError::XpathLimit(e) => !e.is_cancelled(),
            ProcessError::Xml(e) => {
                matches!(e.kind, xmlsec_xml::XmlErrorKind::LimitExceeded(_))
            }
            _ => false,
        }
    }

    /// Whether this failure is a cancellation — the request was
    /// abandoned, not malformed or over budget. Servers map these to
    /// 503-style responses (or drop the connection for a gone client).
    pub fn is_cancelled(&self) -> bool {
        matches!(self, ProcessError::Cancelled(_))
    }
}

impl fmt::Display for ProcessError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProcessError::Xml(e) => write!(f, "parse step failed: {e}"),
            ProcessError::Dtd(e) => write!(f, "DTD parsing failed: {e}"),
            ProcessError::Invalid(errs) => {
                write!(f, "document invalid against its DTD ({} violations)", errs.len())
            }
            ProcessError::XpathLimit(e) => write!(f, "labeling step over budget: {e}"),
            ProcessError::Cancelled(r) => write!(f, "request cancelled: {r}"),
        }
    }
}

impl std::error::Error for ProcessError {}

impl From<xmlsec_xpath::EvalError> for ProcessError {
    fn from(e: xmlsec_xpath::EvalError) -> Self {
        match e {
            xmlsec_xpath::EvalError::Cancelled(r) => ProcessError::Cancelled(r),
            other => ProcessError::XpathLimit(other),
        }
    }
}

impl From<xmlsec_xml::XmlError> for ProcessError {
    fn from(e: xmlsec_xml::XmlError) -> Self {
        match e.kind {
            xmlsec_xml::XmlErrorKind::Cancelled(r) => ProcessError::Cancelled(r),
            _ => ProcessError::Xml(e),
        }
    }
}

impl From<xmlsec_dtd::DtdError> for ProcessError {
    fn from(e: xmlsec_dtd::DtdError) -> Self {
        ProcessError::Dtd(e)
    }
}

/// Processor configuration.
///
/// No longer `Copy` (the cancellation token is shared state); clone it
/// to build per-request variants.
#[derive(Debug, Clone, Default)]
pub struct ProcessorOptions {
    /// The per-document access-control policy.
    pub policy: PolicyConfig,
    /// Check input validity against the DTD before labeling (the paper's
    /// step 1 takes valid documents; turn off to process well-formed-only
    /// documents).
    pub validate_input: bool,
    /// Double-check that the pruned view is valid against the loosened
    /// DTD (cheap insurance; on in debug-style deployments).
    pub verify_view: bool,
    /// Resource caps for parsing and labeling; defaults are generous
    /// enough that only pathological inputs are rejected.
    pub limits: ResourceLimits,
    /// Thread knob for the compute-view engine (default: sequential).
    /// Extra threads are leased from the process-wide core budget, so
    /// this composes with the server's worker pool.
    pub parallelism: Parallelism,
    /// Compile the applicable policy against the DTD and serve
    /// guaranteed verdict-table cells (or, when every cell is
    /// guaranteed, the whole labeling) from the table (see
    /// [`mod@crate::compile`]). Needs a [`SecurityProcessor::compiled`]
    /// cache attached and a document that validates against its DTD —
    /// otherwise the request silently takes the interpreted path.
    pub compile: bool,
    /// Request-scoped deadline/cancellation token, checked at every
    /// stage boundary and polled cooperatively inside the parser's node
    /// loop, the evaluator's budget checkpoints, and the labeling
    /// walks. The default ([`CancelToken::never`]) never trips; servers
    /// mint one per request ([`CancelToken::with_deadline`]) and clones
    /// of it cancel the in-flight compute when the client disconnects.
    pub cancel: CancelToken,
}

/// A request: who wants which document.
#[derive(Debug, Clone)]
pub struct AccessRequest {
    /// The authenticated requester triple.
    pub requester: Requester,
    /// URI of the requested document.
    pub uri: String,
}

/// Everything the processor needs to know about a stored document.
#[derive(Debug, Clone)]
pub struct DocumentSource<'a> {
    /// The document text.
    pub xml: &'a str,
    /// The DTD text, if the document has a schema.
    pub dtd: Option<&'a str>,
    /// URI under which schema-level authorizations are registered
    /// (`dtd(URI)` in the algorithm).
    pub dtd_uri: Option<&'a str>,
}

/// The processor's output: the view and its transmitted artifacts.
#[derive(Debug, Clone)]
pub struct ProcessOutput {
    /// The pruned view as a DOM.
    pub view: Document,
    /// The unparsed view (step 4).
    pub xml: String,
    /// The loosened DTD text, when the source had a DTD.
    pub loosened_dtd: Option<String>,
    /// Labeling/pruning statistics.
    pub stats: ViewStats,
}

/// The server-side security processor: owns the directory, the
/// authorization base, and the policy, and turns requests into views.
#[derive(Debug, Clone, Default)]
pub struct SecurityProcessor {
    /// The user/group directory used for subject matching.
    pub directory: Directory,
    /// The server's authorization base (instance and schema XACLs).
    pub authorizations: AuthorizationBase,
    /// Pipeline options.
    pub options: ProcessorOptions,
    /// Optional cross-request label-decision memo (shared via `Arc` so a
    /// server can hand the same cache to every per-request processor).
    pub decisions: Option<Arc<DecisionCache>>,
    /// Optional cross-request compiled-policy cache, consulted when
    /// [`ProcessorOptions::compile`] is on.
    pub compiled: Option<Arc<CompiledCache>>,
}

impl SecurityProcessor {
    /// Creates a processor with the paper's default policy.
    pub fn new(directory: Directory, authorizations: AuthorizationBase) -> Self {
        SecurityProcessor {
            directory,
            authorizations,
            options: ProcessorOptions::default(),
            decisions: None,
            compiled: None,
        }
    }

    /// Attaches a shared label-decision cache (see
    /// [`crate::decision::DecisionCache`]).
    pub fn with_decision_cache(mut self, cache: Arc<DecisionCache>) -> Self {
        self.decisions = Some(cache);
        self
    }

    /// Attaches a shared compiled-policy cache and turns
    /// [`ProcessorOptions::compile`] on (see [`mod@crate::compile`]).
    pub fn with_compiled_cache(mut self, cache: Arc<CompiledCache>) -> Self {
        self.compiled = Some(cache);
        self.options.compile = true;
        self
    }

    /// A stage-boundary cancellation checkpoint: always consults the
    /// wall clock, so a blown deadline is observed between stages even
    /// when no hot loop ran long enough to poll.
    fn checkpoint(&self) -> Result<(), ProcessError> {
        self.options.cancel.check().map_err(|c| ProcessError::Cancelled(c.reason))
    }

    /// Runs the four-step execution cycle for one request against one
    /// document source.
    pub fn process(
        &self,
        request: &AccessRequest,
        source: &DocumentSource<'_>,
    ) -> Result<ProcessOutput, ProcessError> {
        let _process_span = telemetry::trace::span("processor.process");
        pipeline_runs().inc();
        self.checkpoint()?;

        // Step 1: parsing (document, then DTD). When no external DTD is
        // supplied, a DOCTYPE internal subset in the document serves as
        // the schema.
        let mut doc = {
            let _s = stages::parse();
            parse_cancellable(
                source.xml,
                ParseOptions::default(),
                &self.options.limits.xml,
                Some(&self.options.cancel),
            )?
        };
        let dtd: Option<Dtd> = {
            let _s = stages::dtd_parse();
            self.checkpoint()?;
            match source.dtd {
                Some(text) => Some(parse_dtd(text)?),
                None => doc
                    .doctype
                    .as_ref()
                    .and_then(|dt| dt.internal_subset.clone())
                    .map(|subset| parse_dtd(&subset))
                    .transpose()?,
            }
        };
        let mut validated = false;
        if let Some(d) = &dtd {
            self.checkpoint()?;
            // Normalize first so authorizations conditioned on defaulted
            // attributes behave uniformly; then (optionally) validate.
            {
                let _s = stages::normalize();
                normalize(d, &mut doc);
            }
            if self.options.validate_input {
                let _s = stages::validate();
                let errs = Validator::new(d).validate(&doc);
                if !errs.is_empty() {
                    return Err(ProcessError::Invalid(errs));
                }
                validated = true;
            }
        }

        // Steps 1–2 of compute-view: the applicable *read* authorization
        // sets (write authorizations drive `update`, not views).
        self.checkpoint()?;
        let _authz_span = stages::authz();
        let axml = self.authorizations.applicable_for_action(
            &request.uri,
            &request.requester,
            &self.directory,
            xmlsec_authz::Action::Read,
        );
        let adtd = match source.dtd_uri {
            Some(u) => self.authorizations.applicable_for_action(
                u,
                &request.requester,
                &self.directory,
                xmlsec_authz::Action::Read,
            ),
            None => Vec::new(),
        };
        drop(_authz_span);

        // Policy compilation: guaranteed verdict-table cells — or, when
        // every cell is guaranteed, the whole labeling pass — are served
        // from a table compiled once per (applicable set, schema) and
        // cached. The table's guarantees quantify over *conforming*
        // documents only, so when input validation is off the document
        // is validated here purely to gate the compiled path; a
        // non-conforming document silently takes the interpreted route.
        let mut compiled: Option<Arc<CompiledPolicy>> = None;
        if self.options.compile {
            if let (Some(cache), Some(d)) = (&self.compiled, &dtd) {
                let _s = stages::compile();
                self.checkpoint()?;
                if validated || Validator::new(d).validate(&doc).is_empty() {
                    if let Some(root) = doc.element_name(doc.root()) {
                        compiled = cache
                            .get_or_compile(
                                d,
                                root,
                                &axml,
                                &adtd,
                                &self.directory,
                                self.options.policy,
                            )
                            .ok();
                    }
                }
            }
        }

        // Step 2–3: labeling and pruning (stage spans open inside
        // compute_view, where the two halves are distinguishable).
        let engine = EngineOptions {
            limits: self.options.limits.xpath,
            parallelism: self.options.parallelism,
            decisions: self.decisions.as_deref(),
            compiled: compiled.as_deref(),
            cancel: Some(&self.options.cancel),
        };
        let (view, stats) =
            compute_view_engine(&doc, &axml, &adtd, &self.directory, self.options.policy, &engine)?;

        // Loosening, so the view stays valid without revealing what was
        // hidden.
        self.checkpoint()?;
        let loosened = {
            let _s = stages::loosen();
            dtd.as_ref().map(loosen)
        };
        if self.options.verify_view {
            if let Some(l) = &loosened {
                let _s = stages::verify();
                let errs = Validator::new(l).validate(&view);
                debug_assert!(
                    errs.is_empty(),
                    "pruned view must validate against the loosened DTD: {errs:?}"
                );
            }
        }

        // Step 4: unparsing. The last checkpoint before bytes are
        // rendered: past this point the response is cheap to finish.
        self.checkpoint()?;
        let xml = {
            let _s = stages::serialize();
            serialize(&view, &SerializeOptions::canonical())
        };
        Ok(ProcessOutput { view, xml, loosened_dtd: loosened.as_ref().map(serialize_dtd), stats })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmlsec_authz::{AuthType, Authorization, ObjectSpec, Sign};
    use xmlsec_subjects::Subject;

    const DTD: &str = r#"
        <!ELEMENT lab (project+)>
        <!ELEMENT project (manager, paper*)>
        <!ATTLIST project name CDATA #REQUIRED>
        <!ELEMENT manager (#PCDATA)>
        <!ELEMENT paper (#PCDATA)>
    "#;
    const XML: &str =
        r#"<lab><project name="p1"><manager>Sam</manager><paper>P</paper></project></lab>"#;

    fn processor() -> SecurityProcessor {
        let mut dir = Directory::new();
        dir.add_user("Tom").unwrap();
        dir.add_group("Staff").unwrap();
        dir.add_member("Tom", "Staff").unwrap();
        let mut base = AuthorizationBase::new();
        base.add(Authorization::new(
            Subject::new("Staff", "*", "*").unwrap(),
            ObjectSpec::parse("lab.xml:/lab").unwrap(),
            Sign::Plus,
            AuthType::Recursive,
        ));
        base.add(Authorization::new(
            Subject::new("Staff", "*", "*").unwrap(),
            ObjectSpec::parse("lab.xml://manager").unwrap(),
            Sign::Minus,
            AuthType::Recursive,
        ));
        base.add(Authorization::new(
            Subject::new("Tom", "*", "*").unwrap(),
            ObjectSpec::parse("lab.dtd://paper").unwrap(),
            Sign::Plus,
            AuthType::Recursive,
        ));
        SecurityProcessor::new(dir, base)
    }

    fn request(user: &str) -> AccessRequest {
        AccessRequest {
            requester: Requester::new(user, "1.2.3.4", "h.lab.com").unwrap(),
            uri: "lab.xml".to_string(),
        }
    }

    fn source() -> DocumentSource<'static> {
        DocumentSource { xml: XML, dtd: Some(DTD), dtd_uri: Some("lab.dtd") }
    }

    #[test]
    fn full_pipeline_produces_pruned_view() {
        let mut p = processor();
        p.options.validate_input = true;
        p.options.verify_view = true;
        let out = p.process(&request("Tom"), &source()).unwrap();
        assert_eq!(out.xml, r#"<lab><project name="p1"><paper>P</paper></project></lab>"#);
        assert!(out.loosened_dtd.as_deref().unwrap().contains("(manager?,paper*)?"));
        assert_eq!(out.stats.instance_auths, 2);
        assert_eq!(out.stats.schema_auths, 1);
    }

    #[test]
    fn unknown_requester_sees_nothing() {
        let mut p = processor();
        p.directory.add_user("Eve").unwrap();
        let out = p.process(&request("Eve"), &source()).unwrap();
        assert_eq!(out.xml, "<lab/>");
        assert_eq!(out.stats.instance_auths, 0);
    }

    #[test]
    fn malformed_document_is_a_parse_error() {
        let p = processor();
        let bad = DocumentSource { xml: "<lab><open>", dtd: None, dtd_uri: None };
        assert!(matches!(p.process(&request("Tom"), &bad), Err(ProcessError::Xml(_))));
    }

    #[test]
    fn invalid_document_rejected_when_validation_on() {
        let mut p = processor();
        p.options.validate_input = true;
        // project missing required @name
        let bad_xml = "<lab><project><manager>S</manager></project></lab>";
        let src = DocumentSource { xml: bad_xml, dtd: Some(DTD), dtd_uri: Some("lab.dtd") };
        match p.process(&request("Tom"), &src) {
            Err(ProcessError::Invalid(errs)) => assert!(!errs.is_empty()),
            other => panic!("expected validity failure, got {other:?}"),
        }
        // with validation off it flows through
        p.options.validate_input = false;
        assert!(p.process(&request("Tom"), &src).is_ok());
    }

    #[test]
    fn bad_dtd_is_a_dtd_error() {
        let p = processor();
        let src = DocumentSource { xml: XML, dtd: Some("<!ELEMENT"), dtd_uri: None };
        assert!(matches!(p.process(&request("Tom"), &src), Err(ProcessError::Dtd(_))));
    }

    #[test]
    fn view_validates_against_loosened_dtd() {
        let mut p = processor();
        p.options.verify_view = true; // debug_assert inside
        let out = p.process(&request("Tom"), &source()).unwrap();
        let loosened = parse_dtd(out.loosened_dtd.as_deref().unwrap()).unwrap();
        assert!(xmlsec_dtd::validate(&loosened, &out.view).is_empty());
    }

    #[test]
    fn depth_bomb_is_a_typed_limit_error() {
        let mut p = processor();
        p.options.limits.xml.max_depth = 8;
        let mut bomb = String::new();
        for _ in 0..50 {
            bomb.push_str("<lab>");
        }
        for _ in 0..50 {
            bomb.push_str("</lab>");
        }
        let src = DocumentSource { xml: &bomb, dtd: None, dtd_uri: None };
        let err = p.process(&request("Tom"), &src).unwrap_err();
        assert!(err.is_resource_limit(), "{err}");
        assert!(matches!(
            err,
            ProcessError::Xml(xmlsec_xml::XmlError {
                kind: xmlsec_xml::XmlErrorKind::LimitExceeded(_),
                ..
            })
        ));
        // A malformed document is NOT a resource-limit failure.
        let bad = DocumentSource { xml: "<lab><open>", dtd: None, dtd_uri: None };
        assert!(!p.process(&request("Tom"), &bad).unwrap_err().is_resource_limit());
    }

    #[test]
    fn xpath_budget_applies_to_authorization_objects() {
        let mut p = processor();
        p.options.limits.xpath.max_node_visits = 1;
        let err = p.process(&request("Tom"), &source()).unwrap_err();
        assert!(matches!(err, ProcessError::XpathLimit(_)), "{err:?}");
        assert!(err.is_resource_limit());
        // Defaults are generous enough for the same request.
        p.options.limits = ResourceLimits::default();
        assert!(p.process(&request("Tom"), &source()).is_ok());
    }

    #[test]
    fn parallel_options_and_decision_cache_match_sequential() {
        let seq = processor().process(&request("Tom"), &source()).unwrap();
        let mut p = processor();
        p.options.parallelism = Parallelism::threads(4).with_seq_threshold(0).exact();
        let p = p.with_decision_cache(Arc::new(DecisionCache::new()));
        let out = p.process(&request("Tom"), &source()).unwrap();
        assert_eq!(out.xml, seq.xml);
        assert_eq!(out.stats, seq.stats);
        let cache = p.decisions.as_ref().unwrap();
        assert!(!cache.is_empty(), "processing must memoize label decisions");
        // A second request is answered with the memo warm; same bytes.
        let again = p.process(&request("Tom"), &source()).unwrap();
        assert_eq!(again.xml, seq.xml);
    }

    #[test]
    fn compiled_pipeline_matches_interpreted_and_caches() {
        let want = processor().process(&request("Tom"), &source()).unwrap();
        let p = processor().with_compiled_cache(Arc::new(CompiledCache::new()));
        let out = p.process(&request("Tom"), &source()).unwrap();
        assert_eq!(out.xml, want.xml);
        assert_eq!(out.stats, want.stats);
        let cache = p.compiled.as_ref().unwrap();
        assert_eq!(cache.len(), 1, "first request compiles and caches the policy");
        let again = p.process(&request("Tom"), &source()).unwrap();
        assert_eq!(again.xml, want.xml);
        assert_eq!(cache.len(), 1, "second request reuses the compiled policy");
        // A different requester resolves a different applicable set and
        // compiles its own table.
        let mut p2 = p.clone();
        p2.directory.add_user("Eve").unwrap();
        let eve = p2.process(&request("Eve"), &source()).unwrap();
        assert_eq!(eve.xml, "<lab/>");
        assert_eq!(p2.compiled.as_ref().unwrap().len(), 2);
    }

    #[test]
    fn compiled_path_is_gated_on_conformance() {
        // validate_input off + invalid document: the compiled path must
        // be skipped (its guarantees only cover conforming instances),
        // and the interpreted result served instead.
        let bad_xml = "<lab><project><manager>S</manager></project></lab>";
        let src = DocumentSource { xml: bad_xml, dtd: Some(DTD), dtd_uri: Some("lab.dtd") };
        let want = processor().process(&request("Tom"), &src).unwrap();
        let p = processor().with_compiled_cache(Arc::new(CompiledCache::new()));
        let out = p.process(&request("Tom"), &src).unwrap();
        assert_eq!(out.xml, want.xml);
        assert_eq!(out.stats, want.stats);
        assert!(
            p.compiled.as_ref().unwrap().is_empty(),
            "a non-conforming document must not trigger compilation"
        );
    }

    #[test]
    fn compile_flag_without_cache_is_inert() {
        let want = processor().process(&request("Tom"), &source()).unwrap();
        let mut p = processor();
        p.options.compile = true; // no cache attached
        let out = p.process(&request("Tom"), &source()).unwrap();
        assert_eq!(out.xml, want.xml);
        assert_eq!(out.stats, want.stats);
    }

    #[test]
    fn pre_cancelled_request_unwinds_before_any_stage() {
        let mut p = processor();
        p.options.cancel = CancelToken::never();
        p.options.cancel.cancel_with(CancelReason::ClientGone);
        let err = p.process(&request("Tom"), &source()).unwrap_err();
        assert_eq!(err, ProcessError::Cancelled(CancelReason::ClientGone));
        assert!(err.is_cancelled());
        assert!(!err.is_resource_limit(), "cancellation is not a limit rejection");
    }

    #[test]
    fn expired_deadline_is_a_typed_cancellation() {
        let mut p = processor();
        p.options.cancel = CancelToken::with_timeout(std::time::Duration::ZERO);
        let err = p.process(&request("Tom"), &source()).unwrap_err();
        assert_eq!(err, ProcessError::Cancelled(CancelReason::DeadlineExceeded));
    }

    #[test]
    fn cancellation_mid_pipeline_is_typed_and_restartable() {
        // Trip at each of the first few checkpoints: every outcome is the
        // typed Cancelled error, and a fresh token then computes the full
        // view — no poisoned shared state survives a cancelled run.
        let want = processor().process(&request("Tom"), &source()).unwrap();
        for k in [0u64, 1, 3, 10, 50] {
            let mut p = processor();
            p.options.cancel = CancelToken::cancel_after_polls(k);
            match p.process(&request("Tom"), &source()) {
                Err(ProcessError::Cancelled(CancelReason::Explicit)) => {}
                Ok(out) => assert_eq!(out.xml, want.xml, "poll budget {k} outlived the run"),
                other => panic!("expected Cancelled or a full view at poll {k}, got {other:?}"),
            }
            p.options.cancel = CancelToken::never();
            let again = p.process(&request("Tom"), &source()).unwrap();
            assert_eq!(again.xml, want.xml);
        }
    }

    #[test]
    fn schema_level_auths_are_keyed_by_dtd_uri() {
        let p = processor();
        // Same document, but without a DTD URI: Tom loses the schema grant
        // (papers were only granted at the schema level to Tom... they are
        // covered by /lab R+ anyway; check stats instead).
        let src = DocumentSource { xml: XML, dtd: Some(DTD), dtd_uri: None };
        let out = p.process(&request("Tom"), &src).unwrap();
        assert_eq!(out.stats.schema_auths, 0);
    }
}
