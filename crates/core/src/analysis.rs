//! Static analysis of authorizations against a DTD.
//!
//! The paper's objects are path expressions; at the schema level they are
//! meant to range over *every instance* of a DTD. Administrators
//! therefore want to know, before any instance exists: *which element and
//! attribute declarations can this authorization ever cover?* This module
//! evaluates a path expression over the DTD graph (the tree of Figure
//! 1(b), with recursion folded into a graph):
//!
//! - predicates are ignored — they can only *shrink* instance-level
//!   selection, so the result is a sound over-approximation;
//! - `//`, `ancestor::`, sibling axes etc. are interpreted over the
//!   element-containment relation induced by content models;
//! - an authorization whose coverage is empty is *dead*: no instance of
//!   the DTD has a node it could ever select (usually a typo in the
//!   path).

use std::collections::{BTreeMap, BTreeSet};
use xmlsec_authz::Authorization;
use xmlsec_dtd::{ContentSpec, Dtd};
use xmlsec_xpath::{Axis, NodeTest, PathExpr};

/// A schema-level node a path can select.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum SchemaNode {
    /// An element declaration.
    Element(String),
    /// An attribute declaration, qualified by its element.
    Attribute {
        /// Owning element name.
        element: String,
        /// Attribute name.
        attribute: String,
    },
}

impl std::fmt::Display for SchemaNode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SchemaNode::Element(e) => write!(f, "<{e}>"),
            SchemaNode::Attribute { element, attribute } => write!(f, "<{element}>/@{attribute}"),
        }
    }
}

/// The element-containment graph of a DTD.
pub(crate) struct SchemaGraph<'d> {
    pub(crate) dtd: &'d Dtd,
    /// element → child element names (from its content model).
    pub(crate) children: BTreeMap<&'d str, BTreeSet<&'d str>>,
    /// element → parent element names.
    pub(crate) parents: BTreeMap<&'d str, BTreeSet<&'d str>>,
    pub(crate) root: &'d str,
}

impl<'d> SchemaGraph<'d> {
    pub(crate) fn new(dtd: &'d Dtd, root: &'d str) -> Self {
        let mut children: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
        let mut parents: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
        for (name, decl) in &dtd.elements {
            let kids: BTreeSet<&str> = match &decl.content {
                ContentSpec::Children(p) => p.names().into_iter().collect(),
                ContentSpec::Mixed(ns) => ns.iter().map(String::as_str).collect(),
                _ => BTreeSet::new(),
            };
            for k in &kids {
                parents.entry(k).or_default().insert(name.as_str());
            }
            children.insert(name.as_str(), kids);
        }
        SchemaGraph { dtd, children, parents, root }
    }

    pub(crate) fn kids(&self, e: &str) -> impl Iterator<Item = &'d str> + '_ {
        self.children.get(e).into_iter().flatten().copied()
    }

    pub(crate) fn pars(&self, e: &str) -> impl Iterator<Item = &'d str> + '_ {
        self.parents.get(e).into_iter().flatten().copied()
    }

    pub(crate) fn descendants(&self, e: &str) -> BTreeSet<&'d str> {
        let mut out = BTreeSet::new();
        let mut stack: Vec<&str> = self.kids(e).collect();
        while let Some(x) = stack.pop() {
            if out.insert(x) {
                stack.extend(self.kids(x));
            }
        }
        out
    }

    pub(crate) fn ancestors(&self, e: &str) -> BTreeSet<&'d str> {
        let mut out = BTreeSet::new();
        let mut stack: Vec<&str> = self.pars(e).collect();
        while let Some(x) = stack.pop() {
            if out.insert(x) {
                stack.extend(self.pars(x));
            }
        }
        out
    }
}

/// Context of schema evaluation: the virtual root or an element type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Ctx<'d> {
    Root,
    El(&'d str),
}

/// Computes the set of schema nodes `path` can select on instances of
/// `dtd` rooted at `root_element`. Sound over-approximation (predicates
/// ignored).
pub fn schema_coverage(dtd: &Dtd, root_element: &str, path: &PathExpr) -> BTreeSet<SchemaNode> {
    let Some(root) = dtd.elements.get_key_value(root_element).map(|(k, _)| k.as_str()) else {
        return BTreeSet::new();
    };
    let g = SchemaGraph::new(dtd, root);
    let mut current: BTreeSet<Ctx<'_>> =
        if path.absolute { [Ctx::Root].into() } else { [Ctx::El(g.root)].into() };
    let mut attrs: BTreeSet<SchemaNode> = BTreeSet::new();

    for step in &path.steps {
        let mut next: BTreeSet<Ctx<'_>> = BTreeSet::new();
        attrs.clear(); // attributes are terminal; only the last step's survive
        for &ctx in &current {
            match step.axis {
                Axis::Child => match ctx {
                    Ctx::Root => {
                        if name_matches(&step.test, g.root) {
                            next.insert(Ctx::El(g.root));
                        }
                    }
                    Ctx::El(e) => {
                        for k in g.kids(e) {
                            if name_matches(&step.test, k) {
                                next.insert(Ctx::El(k));
                            }
                        }
                    }
                },
                Axis::Descendant | Axis::DescendantOrSelf => {
                    let mut set: BTreeSet<&str> = match ctx {
                        Ctx::Root => {
                            let mut s = g.descendants(g.root);
                            s.insert(g.root);
                            s
                        }
                        Ctx::El(e) => g.descendants(e),
                    };
                    if step.axis == Axis::DescendantOrSelf {
                        if let Ctx::El(e) = ctx {
                            set.insert(e);
                        }
                    }
                    for d in set {
                        if name_matches(&step.test, d) {
                            next.insert(Ctx::El(d));
                        }
                    }
                    if matches!(step.test, NodeTest::AnyNode) && ctx == Ctx::Root {
                        next.insert(Ctx::Root);
                    }
                }
                Axis::Parent => {
                    if let Ctx::El(e) = ctx {
                        if e == g.root && matches!(step.test, NodeTest::AnyNode) {
                            next.insert(Ctx::Root);
                        }
                        for p in g.pars(e) {
                            if name_matches(&step.test, p) {
                                next.insert(Ctx::El(p));
                            }
                        }
                    }
                }
                Axis::Ancestor | Axis::AncestorOrSelf => match ctx {
                    Ctx::Root => {
                        // The virtual document root has no ancestors; it is
                        // its own ancestor-or-self.
                        if step.axis == Axis::AncestorOrSelf
                            && matches!(step.test, NodeTest::AnyNode)
                        {
                            next.insert(Ctx::Root);
                        }
                    }
                    Ctx::El(e) => {
                        let mut set = g.ancestors(e);
                        if step.axis == Axis::AncestorOrSelf {
                            set.insert(e);
                        }
                        for a in set {
                            if name_matches(&step.test, a) {
                                next.insert(Ctx::El(a));
                            }
                        }
                        // The document root is an ancestor of every element
                        // node; dropping it made downstream `/rootname`
                        // steps falsely dead.
                        if matches!(step.test, NodeTest::AnyNode) {
                            next.insert(Ctx::Root);
                        }
                    }
                },
                Axis::SelfAxis => match ctx {
                    Ctx::Root => {
                        if matches!(step.test, NodeTest::AnyNode) {
                            next.insert(Ctx::Root);
                        }
                    }
                    Ctx::El(e) => {
                        if name_matches(&step.test, e) {
                            next.insert(Ctx::El(e));
                        }
                    }
                },
                Axis::FollowingSibling | Axis::PrecedingSibling => {
                    if let Ctx::El(e) = ctx {
                        // Approximation: siblings = other children of any
                        // of e's parents.
                        for p in g.pars(e) {
                            for s in g.kids(p) {
                                if name_matches(&step.test, s) {
                                    next.insert(Ctx::El(s));
                                }
                            }
                        }
                    }
                }
                Axis::Attribute => {
                    if let Ctx::El(e) = ctx {
                        for def in g.dtd.attributes(e) {
                            let matches = match &step.test {
                                NodeTest::Name(n) => n == &def.name,
                                NodeTest::Wildcard | NodeTest::AnyNode => true,
                                NodeTest::Text => false,
                            };
                            if matches {
                                attrs.insert(SchemaNode::Attribute {
                                    element: e.to_string(),
                                    attribute: def.name.clone(),
                                });
                            }
                        }
                    }
                }
            }
        }
        current = next;
        if current.is_empty() && attrs.is_empty() {
            break;
        }
    }

    let mut out = attrs;
    for ctx in current {
        if let Ctx::El(e) = ctx {
            out.insert(SchemaNode::Element(e.to_string()));
        }
    }
    out
}

pub(crate) fn name_matches(test: &NodeTest, name: &str) -> bool {
    match test {
        NodeTest::Name(n) => n == name,
        NodeTest::Wildcard | NodeTest::AnyNode => true,
        NodeTest::Text => false,
    }
}

/// One authorization's analysis result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuthCoverage {
    /// Display form of the authorization.
    pub authorization: String,
    /// Declarations the object path can select (empty = dead path).
    pub covers: BTreeSet<SchemaNode>,
}

/// Analyzes a set of (typically schema-level) authorizations against a
/// DTD: which declarations each can cover, flagging dead paths.
pub fn analyze_against_schema(
    dtd: &Dtd,
    root_element: &str,
    auths: &[Authorization],
) -> Vec<AuthCoverage> {
    auths
        .iter()
        .map(|a| {
            let covers = match &a.object.path {
                Some(p) => schema_coverage(dtd, root_element, p),
                None => {
                    // Whole-document object = the root element.
                    let mut s = BTreeSet::new();
                    if dtd.element(root_element).is_some() {
                        s.insert(SchemaNode::Element(root_element.to_string()));
                    }
                    s
                }
            };
            AuthCoverage { authorization: a.to_string(), covers }
        })
        .collect()
}

/// Schema-coverage findings on the shared [`xmlsec_authz::Finding`] model: one
/// `dead-path` error per authorization whose object can never select a
/// declaration of the DTD.
pub fn coverage_findings(
    dtd: &Dtd,
    root_element: &str,
    auths: &[Authorization],
) -> Vec<xmlsec_authz::Finding> {
    analyze_against_schema(dtd, root_element, auths)
        .iter()
        .enumerate()
        .filter(|(_, c)| c.covers.is_empty())
        .map(|(i, c)| {
            xmlsec_authz::Finding::new(
                xmlsec_authz::Severity::Error,
                "dead-path",
                format!(
                    "object path of `{}` selects nothing on any instance of the DTD",
                    c.authorization
                ),
            )
            .with_auth(i)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmlsec_dtd::parse_dtd;
    use xmlsec_xpath::parse_path;

    const LAB: &str = r#"
        <!ELEMENT laboratory (project+)>
        <!ATTLIST laboratory name CDATA #REQUIRED>
        <!ELEMENT project (manager, member*, fund*, paper*)>
        <!ATTLIST project name CDATA #REQUIRED type (internal|public) #REQUIRED>
        <!ELEMENT manager (flname, email?)>
        <!ELEMENT member (flname, email?)>
        <!ELEMENT flname (#PCDATA)>
        <!ELEMENT email (#PCDATA)>
        <!ELEMENT fund (sponsor, amount?)>
        <!ELEMENT sponsor (#PCDATA)>
        <!ELEMENT amount (#PCDATA)>
        <!ELEMENT paper (title, authors?)>
        <!ATTLIST paper category (private|public) #REQUIRED>
        <!ELEMENT title (#PCDATA)>
        <!ELEMENT authors (#PCDATA)>
    "#;

    fn cover(path: &str) -> Vec<String> {
        let dtd = parse_dtd(LAB).unwrap();
        let p = parse_path(path).unwrap();
        schema_coverage(&dtd, "laboratory", &p)
            .into_iter()
            .map(|n| n.to_string())
            .collect()
    }

    #[test]
    fn rooted_paths() {
        assert_eq!(cover("/laboratory/project"), vec!["<project>"]);
        assert_eq!(cover("/laboratory/project/manager"), vec!["<manager>"]);
        assert_eq!(cover("/wrongroot/project"), Vec::<String>::new());
    }

    #[test]
    fn descendant_paths() {
        assert_eq!(cover("//flname"), vec!["<flname>"]);
        // predicates are ignored: coverage is the paper element
        assert_eq!(cover(r#"//paper[./@category="private"]"#), vec!["<paper>"]);
    }

    #[test]
    fn attribute_paths() {
        assert_eq!(cover("/laboratory/project/@name"), vec!["<project>/@name"]);
        let all = cover("//@*");
        assert!(all.contains(&"<project>/@type".to_string()), "{all:?}");
        assert!(all.contains(&"<laboratory>/@name".to_string()), "{all:?}");
        assert!(all.contains(&"<paper>/@category".to_string()), "{all:?}");
    }

    #[test]
    fn relative_paths_start_at_root_element() {
        assert_eq!(cover(r#"project"#), vec!["<project>"]);
        assert_eq!(cover("project/manager"), vec!["<manager>"]);
    }

    #[test]
    fn ancestor_and_parent() {
        assert_eq!(cover("//fund/ancestor::project"), vec!["<project>"]);
        assert_eq!(cover("//flname/.."), vec!["<manager>", "<member>"]);
    }

    #[test]
    fn wildcard_and_multi_coverage() {
        let c = cover("/laboratory/project/*");
        assert_eq!(c, vec!["<fund>", "<manager>", "<member>", "<paper>"]);
    }

    #[test]
    fn dead_paths_detected() {
        assert_eq!(cover("//budget"), Vec::<String>::new());
        assert_eq!(cover("/laboratory/manager"), Vec::<String>::new()); // manager is not a child of laboratory
        assert_eq!(cover("//paper/@nosuch"), Vec::<String>::new());
    }

    #[test]
    fn recursive_dtds_terminate() {
        let dtd = parse_dtd("<!ELEMENT part (part*, label?)><!ELEMENT label (#PCDATA)>").unwrap();
        let p = parse_path("//label").unwrap();
        let c = schema_coverage(&dtd, "part", &p);
        assert_eq!(c.len(), 1);
        let p2 = parse_path("//part/part/part").unwrap();
        assert_eq!(schema_coverage(&dtd, "part", &p2).len(), 1);
    }

    #[test]
    fn ancestor_axis_reaches_document_root() {
        // Regression: `ancestor::node()` dropped the document root, so a
        // downstream step naming the root element was falsely dead —
        // concretely, `//label/ancestor::node()/doc` selects <doc> on
        // every instance that has a label.
        let dtd = parse_dtd(
            "<!ELEMENT doc (sec)><!ELEMENT sec (sec*, label?)><!ELEMENT label (#PCDATA)>",
        )
        .unwrap();
        let p = parse_path("//label/ancestor::node()/doc").unwrap();
        let c = schema_coverage(&dtd, "doc", &p);
        assert_eq!(c.into_iter().map(|n| n.to_string()).collect::<Vec<_>>(), vec!["<doc>"]);
        // ancestor-or-self keeps the root context too.
        let p2 =
            parse_path("//label/ancestor-or-self::node()/ancestor-or-self::node()/doc").unwrap();
        assert_eq!(schema_coverage(&dtd, "doc", &p2).len(), 1);
        // A named ancestor test must NOT smuggle in the virtual root.
        let p3 = parse_path("//label/ancestor::doc/doc").unwrap();
        assert!(schema_coverage(&dtd, "doc", &p3).is_empty());
    }

    #[test]
    fn recursive_cycles_terminate_on_upward_axes() {
        // Self-recursive content model: ancestor/`..` chains cycle in the
        // schema graph; the visited sets must terminate and the coverage
        // stays exact.
        let dtd = parse_dtd("<!ELEMENT part (part*, label?)><!ELEMENT label (#PCDATA)>").unwrap();
        for path in ["//label/ancestor::part", "//label/../../..", "//part/ancestor-or-self::part"]
        {
            let p = parse_path(path).unwrap();
            let c = schema_coverage(&dtd, "part", &p);
            assert_eq!(
                c.into_iter().map(|n| n.to_string()).collect::<Vec<_>>(),
                vec!["<part>"],
                "{path}"
            );
        }
        // Round trip through the cycle and back down.
        let p = parse_path("//label/ancestor::node()/part/label").unwrap();
        assert_eq!(schema_coverage(&dtd, "part", &p).len(), 1);
    }

    #[test]
    fn coverage_findings_flag_dead_paths_only() {
        use xmlsec_authz::{AuthType, ObjectSpec, Severity, Sign};
        use xmlsec_subjects::Subject;
        let dtd = parse_dtd(LAB).unwrap();
        let auths = vec![
            Authorization::new(
                Subject::new("Public", "*", "*").unwrap(),
                ObjectSpec::with_path("lab.dtd", "//paper").unwrap(),
                Sign::Plus,
                AuthType::Recursive,
            ),
            Authorization::new(
                Subject::new("Public", "*", "*").unwrap(),
                ObjectSpec::with_path("lab.dtd", "//papre").unwrap(),
                Sign::Plus,
                AuthType::Recursive,
            ),
        ];
        let fs = coverage_findings(&dtd, "laboratory", &auths);
        assert_eq!(fs.len(), 1);
        assert_eq!(fs[0].kind, "dead-path");
        assert_eq!(fs[0].severity, Severity::Error);
        assert_eq!(fs[0].span.auth, Some(1));
    }

    #[test]
    fn analyze_example1_against_laboratory() {
        use xmlsec_authz::{AuthType, ObjectSpec, Sign};
        use xmlsec_subjects::Subject;
        let dtd = parse_dtd(LAB).unwrap();
        let auths = vec![
            Authorization::new(
                Subject::new("Foreign", "*", "*").unwrap(),
                ObjectSpec::with_path("lab.dtd", r#"/laboratory//paper[./@category="private"]"#)
                    .unwrap(),
                Sign::Minus,
                AuthType::Recursive,
            ),
            Authorization::new(
                Subject::new("Public", "*", "*").unwrap(),
                ObjectSpec::with_path("lab.dtd", "//typo-element").unwrap(),
                Sign::Plus,
                AuthType::Recursive,
            ),
        ];
        let report = analyze_against_schema(&dtd, "laboratory", &auths);
        assert_eq!(report[0].covers.len(), 1);
        assert!(report[1].covers.is_empty(), "dead path must be flagged");
    }
}
