//! Policy compilation: the static analyzer as a runtime JIT.
//!
//! The whole-policy analyzer ([`crate::static_analysis`]) proves most
//! SchemaNode × subject decision-table cells **guaranteed** before any
//! instance is seen. Following Cheney's static-enforceability line of
//! work, [`compile`] turns those proofs into a policy-resident artifact
//! consulted at labeling time:
//!
//! - a per-element-type × per-attribute **verdict table**
//!   (guaranteed-allow / guaranteed-deny / instance-dependent, with the
//!   dependency source retained for diagnostics);
//! - a **residual list** of instance checks for the dependent cells;
//! - a whole-document **fast-path flag** when every cell is guaranteed —
//!   in that case labeling is a type-table lookup per node and requests
//!   skip `initial_label`/`first_def` entirely.
//!
//! Even without the fast path, cells whose post-fixpoint abstract label
//! is a singleton on every component carry an *exact* concrete
//! [`Label`]; the engine serves those nodes from the table and runs the
//! interpreted machinery only for the residue (see
//! [`crate::view::EngineOptions::compiled`]).
//!
//! ## Soundness contract
//!
//! The analyzer's guarantees quantify over **conforming** instances
//! only, so a [`CompiledPolicy`] may be consulted exclusively for
//! documents known valid against the DTD it was compiled from. The
//! processor enforces this (it validates before taking the compiled
//! path); direct [`crate::label_document_engine`] callers carry the
//! obligation themselves. The engine additionally ignores a compiled
//! policy whose fingerprint does not match the applicable sets of the
//! run, so a stale or misrouted artifact degrades to the interpreted
//! path instead of corrupting views.
//!
//! Compiled artifacts are cached in a [`CompiledCache`] keyed by
//! `(policy fingerprint, schema hash)` — the same fingerprint the
//! [`crate::decision::DecisionCache`] uses, so server-side invalidation
//! on `grant`/`revoke` clears both together.

use crate::analysis::SchemaNode;
use crate::decision::policy_fingerprint;
use crate::label::{first_def, Label, Sign3};
use crate::static_analysis::absdom::{AbsLabel, SignSet};
use crate::static_analysis::{analyze_applicable, Verdict};
use std::collections::hash_map::DefaultHasher;
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::{Arc, Mutex, OnceLock};
use xmlsec_authz::{Authorization, PolicyConfig};
use xmlsec_dtd::{serialize_dtd, Dtd};
use xmlsec_subjects::Directory;
use xmlsec_telemetry as telemetry;

/// Why compilation failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompileError {
    /// The root element is not declared in the DTD.
    UnknownRoot(String),
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::UnknownRoot(r) => {
                write!(f, "root element {r:?} is not declared in the DTD")
            }
        }
    }
}

impl std::error::Error for CompileError {}

/// One compiled verdict-table cell.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompiledCell {
    /// The analyzer's verdict for every node of this declaration.
    pub verdict: Verdict,
    /// The abstract sign set behind the verdict.
    pub signs: SignSet,
    /// The concrete final sign every node of this declaration receives,
    /// when one sign is *plus-exact*: either the set is a singleton, or
    /// it contains no `+` (then any denied member stands in — pruning
    /// and the granted-node count cannot tell them apart). `None` makes
    /// the cell ineligible for the whole-document fast path.
    pub(crate) representative: Option<Sign3>,
    /// The full concrete label, when every component of the cell's
    /// post-fixpoint abstract label is a singleton (for attributes:
    /// every own component, with an exact parent). Lets the engine skip
    /// `initial_label` + propagation for this node type even when the
    /// document as a whole has residual cells.
    pub(crate) exact: Option<Label>,
}

/// One residual instance check: a cell the analyzer could not decide.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResidualCheck {
    /// The schema node whose decision stays instance-dependent.
    pub node: SchemaNode,
    /// The dependency source (predicate, optional content, …).
    pub reason: String,
}

/// A policy compiled against one DTD for one applicable authorization
/// set: the verdict table, the residual checks, and the fast-path flag.
#[derive(Debug, Clone)]
pub struct CompiledPolicy {
    /// [`policy_fingerprint`] of the applicable sets compiled for; the
    /// engine verifies it before consulting the table.
    pub(crate) fingerprint: u64,
    /// The root element the schema graph was rooted at.
    pub root: String,
    /// The policy configuration compiled against.
    pub policy: PolicyConfig,
    /// Verdict cells per element type.
    pub elements: BTreeMap<String, CompiledCell>,
    /// Verdict cells per element type, then attribute name.
    pub attributes: BTreeMap<String, BTreeMap<String, CompiledCell>>,
    /// The instance checks left for the interpreted engine.
    pub residual: Vec<ResidualCheck>,
    /// Write-effect verdicts for the update pre-flight, derived from the
    /// `write`-action subset of the same applicable sets (the one place
    /// the compiler filters by action itself).
    pub writes: crate::static_analysis::write::WriteTable,
    /// `true` when **every** cell carries a plus-exact sign: labeling a
    /// conforming document is then one table lookup per node.
    pub fast_path: bool,
}

impl CompiledCell {
    /// The concrete final sign every node of this declaration receives,
    /// when one is plus-exact. `None` means the cell is ineligible for
    /// the whole-document fast path.
    pub fn representative(&self) -> Option<Sign3> {
        self.representative
    }

    /// Whether the full six-component label is known statically, letting
    /// the engine skip `initial_label` and propagation for this node
    /// type even when other cells stay instance-dependent.
    pub fn is_exact(&self) -> bool {
        self.exact.is_some()
    }
}

impl CompiledPolicy {
    /// Total number of verdict cells (elements + attributes).
    pub fn cell_count(&self) -> usize {
        self.elements.len() + self.attributes.values().map(|m| m.len()).sum::<usize>()
    }

    /// Cells with the given verdict code (`allow`, `deny`,
    /// `instance-dependent`).
    pub fn count_verdict(&self, code: &str) -> usize {
        self.elements
            .values()
            .chain(self.attributes.values().flat_map(|m| m.values()))
            .filter(|c| c.verdict.code() == code)
            .count()
    }
}

struct CompileMetrics {
    compiles: Arc<telemetry::Counter>,
    wall: Arc<telemetry::Histogram>,
    hits_allow: Arc<telemetry::Counter>,
    hits_deny: Arc<telemetry::Counter>,
    hits_dependent: Arc<telemetry::Counter>,
}

fn compile_metrics() -> &'static CompileMetrics {
    static METRICS: OnceLock<CompileMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let reg = telemetry::global();
        let hits = |verdict: &str| {
            reg.counter(
                "xmlsec_compiled_cell_hits_total",
                "Labeling decisions by compiled-table outcome: allow/deny \
                 served from the table, instance-dependent fell back to the \
                 interpreted path.",
                &[("verdict", verdict)],
            )
        };
        CompileMetrics {
            compiles: reg.counter(
                "xmlsec_compile_total",
                "Policy compilations performed (cache hits excluded).",
                &[],
            ),
            wall: reg.histogram(
                "xmlsec_compile_duration_seconds",
                "Wall time of one policy compilation.",
                &[],
                telemetry::Buckets::duration_default(),
            ),
            hits_allow: hits("allow"),
            hits_deny: hits("deny"),
            hits_dependent: hits("instance-dependent"),
        }
    })
}

/// Flushes a labeling run's aggregated compiled-cell traffic (the engine
/// batches per run instead of incrementing per node).
pub(crate) fn record_cell_hits(allow: u64, deny: u64, dependent: u64) {
    let m = compile_metrics();
    if allow > 0 {
        m.hits_allow.add(allow);
    }
    if deny > 0 {
        m.hits_deny.add(deny);
    }
    if dependent > 0 {
        m.hits_dependent.add(dependent);
    }
}

/// The plus-exact concrete sign of a cell, when one exists: a singleton
/// set is its own witness; a guaranteed set without `+` may pick any
/// denied member (pruning reads only allowed-ness, statistics read only
/// `+`-ness, and both are constant across the set). A guaranteed set
/// *containing* `+` alongside other signs (e.g. `{+, ε}` under the open
/// policy) is allow-constant but `+`-ambiguous, so it gets `None`.
fn representative(signs: SignSet, verdict: &Verdict) -> Option<Sign3> {
    if !verdict.is_guaranteed() {
        return None;
    }
    if let Some(s) = signs.as_singleton() {
        return Some(s);
    }
    if signs.contains(Sign3::Plus) {
        return None;
    }
    Some(if signs.contains(Sign3::Minus) { Sign3::Minus } else { Sign3::Eps })
}

/// The exact concrete element label, when every post-fixpoint component
/// is a singleton. Sound because each abstract component over-
/// approximates its concrete counterpart on every conforming instance:
/// a singleton pins the concrete value. At the root this matches the
/// un-propagated label too, since propagation against the virtual all-ε
/// parent is the identity.
fn exact_element_label(post: &AbsLabel) -> Option<Label> {
    let l = post.l.as_singleton()?;
    let r = post.r.as_singleton()?;
    let ld = post.ld.as_singleton()?;
    let rd = post.rd.as_singleton()?;
    let lw = post.lw.as_singleton()?;
    let rw = post.rw.as_singleton()?;
    Some(Label { l, r, ld, rd, lw, rw, final_sign: first_def([l, r, ld, rd, lw, rw]) })
}

/// The exact concrete attribute label: own `l`/`lw`/`ld` singletons
/// combined with the parent element's exact components exactly as
/// `label_attribute` does (`r`/`rw`/`rd` are structural `ε` on leaves).
fn exact_attribute_label(own: &AbsLabel, parent: &Label) -> Option<Label> {
    let l = own.l.as_singleton()?;
    let lw = own.lw.as_singleton()?;
    let ld = own.ld.as_singleton()?;
    let strong_p = first_def([parent.l, parent.r]);
    let schema_p = first_def([parent.ld, parent.rd]);
    let weak_p = first_def([parent.lw, parent.rw]);
    Some(Label {
        l,
        lw,
        ld,
        r: Sign3::Eps,
        rw: Sign3::Eps,
        rd: Sign3::Eps,
        final_sign: first_def([l, strong_p, ld, schema_p, lw, weak_p]),
    })
}

/// Compiles the applicable authorization sets of one requester against
/// `dtd` into a [`CompiledPolicy`].
///
/// `axml`/`adtd` are the instance- and schema-level applicable sets —
/// exactly what [`crate::label_document_engine`] receives, after subject
/// resolution and action filtering by the caller. The compiled table
/// models whatever is passed; it performs no filtering of its own.
pub fn compile(
    dtd: &Dtd,
    root_element: &str,
    axml: &[&Authorization],
    adtd: &[&Authorization],
    dir: &Directory,
    policy: PolicyConfig,
) -> Result<CompiledPolicy, CompileError> {
    let started = std::time::Instant::now();
    let mut auths: Vec<(&Authorization, bool)> = Vec::with_capacity(axml.len() + adtd.len());
    auths.extend(axml.iter().map(|&a| (a, false)));
    auths.extend(adtd.iter().map(|&a| (a, true)));

    let analysis = analyze_applicable(dtd, root_element, &auths, dir, policy)
        .ok_or_else(|| CompileError::UnknownRoot(root_element.to_string()))?;

    let mut elements: BTreeMap<String, CompiledCell> = BTreeMap::new();
    let mut attributes: BTreeMap<String, BTreeMap<String, CompiledCell>> = BTreeMap::new();
    let mut residual = Vec::new();
    let mut fast_path = true;

    // Elements first: attribute exactness needs the parent's exact label.
    for (node, cell) in &analysis.cells {
        let SchemaNode::Element(e) = node else { continue };
        let rep = representative(cell.signs, &cell.verdict);
        let exact = analysis.element_post.get(e).and_then(exact_element_label);
        fast_path &= rep.is_some();
        if let Verdict::Instance { reason } = &cell.verdict {
            residual.push(ResidualCheck { node: node.clone(), reason: reason.clone() });
        }
        elements.insert(
            e.clone(),
            CompiledCell {
                verdict: cell.verdict.clone(),
                signs: cell.signs,
                representative: rep,
                exact,
            },
        );
    }
    for (node, cell) in &analysis.cells {
        let SchemaNode::Attribute { element, attribute } = node else { continue };
        let rep = representative(cell.signs, &cell.verdict);
        let parent_exact = elements.get(element).and_then(|c| c.exact);
        let exact = match (
            analysis.attribute_own.get(&(element.clone(), attribute.clone())),
            &parent_exact,
        ) {
            (Some(own), Some(p)) => exact_attribute_label(own, p),
            _ => None,
        };
        fast_path &= rep.is_some();
        if let Verdict::Instance { reason } = &cell.verdict {
            residual.push(ResidualCheck { node: node.clone(), reason: reason.clone() });
        }
        attributes.entry(element.clone()).or_default().insert(
            attribute.clone(),
            CompiledCell {
                verdict: cell.verdict.clone(),
                signs: cell.signs,
                representative: rep,
                exact,
            },
        );
    }

    let compiled = CompiledPolicy {
        fingerprint: policy_fingerprint(axml, adtd, dir, policy),
        root: root_element.to_string(),
        policy,
        elements,
        attributes,
        residual,
        writes: crate::static_analysis::write::write_table(dtd, root_element, &auths, dir, policy),
        fast_path,
    };
    let m = compile_metrics();
    m.compiles.inc();
    m.wall.observe_duration(started.elapsed());
    Ok(compiled)
}

/// Content hash of a DTD + root pair, separating compiled policies of
/// different schemas inside one [`CompiledCache`] (the policy
/// fingerprint alone hashes only authorizations/policy/directory).
pub fn schema_hash(dtd: &Dtd, root_element: &str) -> u64 {
    let mut h = DefaultHasher::new();
    serialize_dtd(dtd).hash(&mut h);
    root_element.hash(&mut h);
    h.finish()
}

/// Default [`CompiledCache`] capacity (one entry per distinct
/// (applicable set, schema) pair — requester-resolved sets collapse
/// heavily in practice).
pub const DEFAULT_COMPILED_CAPACITY: usize = 256;

/// Thread-safe cross-request cache of compiled policies, FIFO-bounded,
/// keyed by `(policy fingerprint, schema hash)`.
///
/// Owned by the server next to the [`crate::decision::DecisionCache`]
/// and cleared together with it on `grant`/`revoke` — fingerprints
/// already prevent stale hits; clearing reclaims the space.
#[derive(Debug)]
pub struct CompiledCache {
    inner: Mutex<CompiledInner>,
    capacity: usize,
}

#[derive(Debug, Default)]
struct CompiledInner {
    map: HashMap<(u64, u64), Arc<CompiledPolicy>>,
    order: VecDeque<(u64, u64)>,
}

impl CompiledCache {
    /// A cache bounded to [`DEFAULT_COMPILED_CAPACITY`] policies.
    pub fn new() -> CompiledCache {
        CompiledCache::with_capacity(DEFAULT_COMPILED_CAPACITY)
    }

    /// A cache bounded to `capacity` policies (FIFO eviction).
    pub fn with_capacity(capacity: usize) -> CompiledCache {
        CompiledCache { inner: Mutex::new(CompiledInner::default()), capacity: capacity.max(1) }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, CompiledInner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Looks up a compiled policy by fingerprint and schema hash.
    pub fn get(&self, fingerprint: u64, schema: u64) -> Option<Arc<CompiledPolicy>> {
        self.lock().map.get(&(fingerprint, schema)).cloned()
    }

    /// Caches a compiled policy, evicting oldest-first past capacity.
    pub fn put(&self, schema: u64, policy: Arc<CompiledPolicy>) {
        let key = (policy.fingerprint, schema);
        let mut inner = self.lock();
        if inner.map.insert(key, policy).is_none() {
            inner.order.push_back(key);
        }
        while inner.map.len() > self.capacity {
            let Some(victim) = inner.order.pop_front() else { break };
            inner.map.remove(&victim);
        }
    }

    /// Returns the cached compiled policy for these inputs, compiling
    /// and caching on miss.
    pub fn get_or_compile(
        &self,
        dtd: &Dtd,
        root_element: &str,
        axml: &[&Authorization],
        adtd: &[&Authorization],
        dir: &Directory,
        policy: PolicyConfig,
    ) -> Result<Arc<CompiledPolicy>, CompileError> {
        let schema = schema_hash(dtd, root_element);
        let fingerprint = policy_fingerprint(axml, adtd, dir, policy);
        if let Some(hit) = self.get(fingerprint, schema) {
            return Ok(hit);
        }
        let compiled = Arc::new(compile(dtd, root_element, axml, adtd, dir, policy)?);
        self.put(schema, Arc::clone(&compiled));
        Ok(compiled)
    }

    /// Drops every cached compiled policy.
    pub fn clear(&self) {
        let mut inner = self.lock();
        inner.map.clear();
        inner.order.clear();
    }

    /// Number of cached compiled policies.
    pub fn len(&self) -> usize {
        self.lock().map.len()
    }

    /// `true` when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Default for CompiledCache {
    fn default() -> CompiledCache {
        CompiledCache::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmlsec_authz::{AuthType, ObjectSpec, Sign};
    use xmlsec_dtd::parse_dtd;
    use xmlsec_subjects::Subject;

    const LAB: &str = r#"
        <!ELEMENT laboratory (project+)>
        <!ELEMENT project (manager, paper*)>
        <!ELEMENT manager (#PCDATA)>
        <!ELEMENT paper (title)>
        <!ATTLIST paper category CDATA #REQUIRED>
        <!ELEMENT title (#PCDATA)>
    "#;

    fn auth(path: &str, sign: Sign, ty: AuthType) -> Authorization {
        Authorization::new(
            Subject::new("u", "*", "*").unwrap(),
            ObjectSpec::with_path("lab.dtd", path).unwrap(),
            sign,
            ty,
        )
    }

    fn dir() -> Directory {
        let mut d = Directory::new();
        d.add_user("u").unwrap();
        d
    }

    #[test]
    fn guaranteed_policy_compiles_to_fast_path() {
        let dtd = parse_dtd(LAB).unwrap();
        let a = auth("/laboratory", Sign::Plus, AuthType::Recursive);
        let cp =
            compile(&dtd, "laboratory", &[], &[&a], &dir(), PolicyConfig::paper_default()).unwrap();
        assert!(cp.fast_path, "{cp:?}");
        assert!(cp.residual.is_empty());
        assert_eq!(cp.elements["manager"].representative, Some(Sign3::Plus));
        assert_eq!(cp.attributes["paper"]["category"].representative, Some(Sign3::Plus));
        assert_eq!(cp.count_verdict("allow"), cp.cell_count());
    }

    #[test]
    fn predicate_produces_residual_and_disables_fast_path() {
        let dtd = parse_dtd(LAB).unwrap();
        let grant = auth("/laboratory", Sign::Plus, AuthType::Recursive);
        let deny = auth(r#"//paper[./@category="private"]"#, Sign::Minus, AuthType::Recursive);
        let cp = compile(
            &dtd,
            "laboratory",
            &[],
            &[&grant, &deny],
            &dir(),
            PolicyConfig::paper_default(),
        )
        .unwrap();
        assert!(!cp.fast_path);
        assert!(!cp.residual.is_empty());
        assert!(cp.residual.iter().any(|r| r.node.to_string() == "<paper>"));
        assert!(cp.residual.iter().all(|r| !r.reason.is_empty()));
        // Unaffected cells keep exact labels for the mixed path.
        assert!(cp.elements["laboratory"].exact.is_some());
        assert!(cp.elements["manager"].exact.is_some());
        assert!(cp.elements["paper"].exact.is_none());
    }

    #[test]
    fn unknown_root_is_an_error() {
        let dtd = parse_dtd(LAB).unwrap();
        let err =
            compile(&dtd, "nosuch", &[], &[], &dir(), PolicyConfig::paper_default()).unwrap_err();
        assert_eq!(err, CompileError::UnknownRoot("nosuch".into()));
        assert!(err.to_string().contains("nosuch"));
    }

    #[test]
    fn cache_roundtrip_and_invalidation() {
        let dtd = parse_dtd(LAB).unwrap();
        let a = auth("/laboratory", Sign::Plus, AuthType::Recursive);
        let d = dir();
        let cache = CompiledCache::new();
        let p = PolicyConfig::paper_default();
        let c1 = cache.get_or_compile(&dtd, "laboratory", &[], &[&a], &d, p).unwrap();
        let c2 = cache.get_or_compile(&dtd, "laboratory", &[], &[&a], &d, p).unwrap();
        assert!(Arc::ptr_eq(&c1, &c2), "second call must hit the cache");
        assert_eq!(cache.len(), 1);
        // A different applicable set compiles separately.
        let b = auth("//manager", Sign::Minus, AuthType::Local);
        let c3 = cache.get_or_compile(&dtd, "laboratory", &[], &[&a, &b], &d, p).unwrap();
        assert!(!Arc::ptr_eq(&c1, &c3));
        assert_eq!(cache.len(), 2);
        cache.clear();
        assert!(cache.is_empty());
    }

    #[test]
    fn cache_capacity_is_fifo_bounded() {
        let dtd = parse_dtd(LAB).unwrap();
        let d = dir();
        let p = PolicyConfig::paper_default();
        let cache = CompiledCache::with_capacity(1);
        let a = auth("/laboratory", Sign::Plus, AuthType::Recursive);
        let b = auth("//manager", Sign::Minus, AuthType::Local);
        cache.get_or_compile(&dtd, "laboratory", &[], &[&a], &d, p).unwrap();
        cache.get_or_compile(&dtd, "laboratory", &[], &[&b], &d, p).unwrap();
        assert_eq!(cache.len(), 1, "oldest entry evicted");
    }

    #[test]
    fn schema_hash_separates_dtds_and_roots() {
        let lab = parse_dtd(LAB).unwrap();
        let other = parse_dtd("<!ELEMENT a (#PCDATA)>").unwrap();
        assert_ne!(schema_hash(&lab, "laboratory"), schema_hash(&other, "a"));
        assert_ne!(schema_hash(&lab, "laboratory"), schema_hash(&lab, "project"));
    }

    #[test]
    fn open_policy_epsilon_cells_stay_fast_path_eligible() {
        // Under the open policy an all-ε cell is guaranteed-allow with a
        // plus-exact ε sign; mixing a grant in makes {+, ε} cells, which
        // are allow-constant but +-ambiguous and must disable the fast
        // path (the granted-node count would drift).
        let dtd = parse_dtd(LAB).unwrap();
        let open = PolicyConfig {
            completeness: xmlsec_authz::CompletenessPolicy::Open,
            ..PolicyConfig::paper_default()
        };
        let cp = compile(&dtd, "laboratory", &[], &[], &dir(), open).unwrap();
        assert!(cp.fast_path);
        assert_eq!(cp.elements["manager"].representative, Some(Sign3::Eps));
        assert_eq!(cp.count_verdict("allow"), cp.cell_count());
    }
}
