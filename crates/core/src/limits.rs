//! Combined resource limits for the security-processor pipeline.
//!
//! One [`ResourceLimits`] bundles the caps of every layer the processor
//! drives: XML parsing ([`xmlsec_xml::Limits`]) and path evaluation
//! ([`xmlsec_xpath::EvalLimits`]). The server threads a single value from
//! its configuration down through [`crate::ProcessorOptions`], so there is
//! exactly one place to tune how much work one request may cost.

use xmlsec_xml::Limits;
use xmlsec_xpath::EvalLimits;

/// Caps for one end-to-end request through the processor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResourceLimits {
    /// Parsing caps (input size, depth, nodes, entity expansion).
    pub xml: Limits,
    /// Path-evaluation caps (node-visit budget, inner-path nesting).
    pub xpath: EvalLimits,
}

impl ResourceLimits {
    /// Both layers at their generous defaults.
    pub const fn default_limits() -> ResourceLimits {
        ResourceLimits { xml: Limits::default_limits(), xpath: EvalLimits::default_limits() }
    }

    /// No caps anywhere. For trusted, program-generated input only.
    pub const fn unlimited() -> ResourceLimits {
        ResourceLimits { xml: Limits::unlimited(), xpath: EvalLimits::unlimited() }
    }
}

impl Default for ResourceLimits {
    fn default() -> ResourceLimits {
        ResourceLimits::default_limits()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_bundles_layer_defaults() {
        let r = ResourceLimits::default();
        assert_eq!(r.xml, Limits::default());
        assert_eq!(r.xpath, EvalLimits::default());
        assert_eq!(ResourceLimits::unlimited().xml.max_depth, usize::MAX);
    }
}
