//! # xmlsec-core — the *Securing XML Documents* access-control engine
//!
//! The paper's primary contribution, built on the substrate crates:
//!
//! - [`label`] — per-node 6-tuples `⟨L, R, LD, RD, LW, RW⟩` over
//!   `{+, −, ε}` and the `first_def` priority rule (§6.1);
//! - [`view`] — the **compute-view** algorithm (Figure 2): initial
//!   labeling from applicable authorizations, preorder propagation with
//!   most-specific-object overriding, postorder pruning with structure
//!   preservation (§6.2);
//! - [`naive`] — an independent declarative evaluator used as a
//!   differential-testing oracle and benchmark baseline;
//! - [`processor`] — the four-step server-side security processor
//!   (parse → label → prune → unparse) with DTD loosening (§7).
//!
//! ```
//! use xmlsec_core::{compute_view, PolicyConfig};
//! use xmlsec_authz::{Authorization, ObjectSpec, Sign, AuthType};
//! use xmlsec_subjects::{Directory, Subject};
//!
//! let doc = xmlsec_xml::parse("<lab><pub>yes</pub><priv>no</priv></lab>").unwrap();
//! let grant = Authorization::new(
//!     Subject::new("Public", "*", "*").unwrap(),
//!     ObjectSpec::parse("lab.xml:/lab/pub").unwrap(),
//!     Sign::Plus,
//!     AuthType::Recursive,
//! );
//! let (view, _stats) = compute_view(
//!     &doc, &[&grant], &[], &Directory::new(), PolicyConfig::paper_default());
//! assert_eq!(
//!     xmlsec_xml::serialize(&view, &xmlsec_xml::SerializeOptions::canonical()),
//!     "<lab><pub>yes</pub></lab>");
//! ```

#![warn(missing_docs)]

pub mod analysis;
pub mod compile;
pub mod decision;
pub mod label;
pub mod limits;
pub mod naive;
pub mod par;
pub mod processor;
pub mod stages;
pub mod static_analysis;
pub mod update;
pub mod view;

pub use analysis::{
    analyze_against_schema, coverage_findings, schema_coverage, AuthCoverage, SchemaNode,
};
pub use compile::{
    compile, schema_hash, CompileError, CompiledCache, CompiledCell, CompiledPolicy, ResidualCheck,
};
pub use decision::{policy_fingerprint, DecisionCache, DecisionKey};
pub use label::{first_def, Label, Sign3};
pub use limits::ResourceLimits;
pub use naive::{compute_view_naive, naive_final_sign};
pub use par::Parallelism;
pub use processor::{
    AccessRequest, DocumentSource, ProcessError, ProcessOutput, ProcessorOptions, SecurityProcessor,
};
pub use static_analysis::write::{
    analyze_policy_writes, classify_batch, BatchVerdict, SubjectWriteTable, WriteAttributeCell,
    WriteCell, WriteElementCell, WriteOps, WriteReport, WriteTable,
};
pub use static_analysis::{
    analyze_policy, closure_subjects, Cell, PolicyReport, SubjectTable, Verdict,
};
pub use update::{
    apply_updates, apply_updates_preauthorized, label_for_write, label_for_write_engine,
    UpdateError, UpdateOp, UpdateOutcome, WriteContext,
};
pub use view::{
    compute_view, compute_view_engine, compute_view_limited, label_document, label_document_engine,
    label_document_incremental, label_document_limited, prune_document, render_labeled,
    EngineOptions, Labeling, ViewStats,
};
pub use xmlsec_xml::cancel::{CancelReason, CancelToken, Cancelled};

// Re-export the policy types users need at this level.
pub use xmlsec_authz::{CompletenessPolicy, ConflictResolution, PolicyConfig};
