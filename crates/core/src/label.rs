//! Node labels for the compute-view algorithm (paper §6.1).
//!
//! Each node carries a 6-tuple `⟨L, R, LD, RD, LW, RW⟩` over
//! `{+, −, ε}`: the signs of the Local, Recursive, Local-DTD,
//! Recursive-DTD, Local-Weak and Recursive-Weak authorizations holding
//! for it. Unlike the paper's in-place trick (which overwrites `L_n` with
//! the winning sign), we keep the components intact and store the final
//! sign separately — attribute labeling needs the parent's original
//! components, and the explicit field makes the invariants testable.

use xmlsec_authz::Sign;

/// Three-valued sign: `+`, `−`, or `ε` (no authorization).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Sign3 {
    /// Permission.
    Plus,
    /// Denial.
    Minus,
    /// No authorization.
    #[default]
    Eps,
}

impl Sign3 {
    /// `true` for `+` or `−`.
    #[inline]
    pub fn is_def(self) -> bool {
        !matches!(self, Sign3::Eps)
    }

    /// The character used in diagnostics.
    pub fn symbol(self) -> char {
        match self {
            Sign3::Plus => '+',
            Sign3::Minus => '-',
            Sign3::Eps => 'ε',
        }
    }
}

impl From<Sign> for Sign3 {
    fn from(s: Sign) -> Sign3 {
        match s {
            Sign::Plus => Sign3::Plus,
            Sign::Minus => Sign3::Minus,
        }
    }
}

impl From<Option<Sign>> for Sign3 {
    fn from(s: Option<Sign>) -> Sign3 {
        match s {
            Some(s) => s.into(),
            None => Sign3::Eps,
        }
    }
}

/// The paper's `first_def`: the first value in the sequence different
/// from `ε` (or `ε` if none is).
#[inline]
pub fn first_def<const N: usize>(seq: [Sign3; N]) -> Sign3 {
    for s in seq {
        if s.is_def() {
            return s;
        }
    }
    Sign3::Eps
}

/// The 6-tuple label of one node, plus its computed final sign.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Label {
    /// Local instance sign (`L_n`).
    pub l: Sign3,
    /// Recursive instance sign (`R_n`), after propagation.
    pub r: Sign3,
    /// Local schema (DTD) sign (`LD_n`).
    pub ld: Sign3,
    /// Recursive schema sign (`RD_n`), after propagation.
    pub rd: Sign3,
    /// Local weak sign (`LW_n`).
    pub lw: Sign3,
    /// Recursive weak sign (`RW_n`), after propagation.
    pub rw: Sign3,
    /// The winning sign for the node (the paper stores this back into
    /// `L_n`; we keep it separate).
    pub final_sign: Sign3,
}

impl Label {
    /// The final sign an element derives from its own components
    /// (priority: `L, R, LD, RD, LW, RW` — strong instance, then schema,
    /// then weak instance).
    pub fn collapse(&self) -> Sign3 {
        first_def([self.l, self.r, self.ld, self.rd, self.lw, self.rw])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_def_picks_first_non_eps() {
        use Sign3::*;
        assert_eq!(first_def([Eps, Minus, Plus]), Minus);
        assert_eq!(first_def([Plus, Minus]), Plus);
        assert_eq!(first_def([Eps, Eps]), Eps);
        assert_eq!(first_def([] as [Sign3; 0]), Eps);
    }

    #[test]
    fn sign_conversions() {
        assert_eq!(Sign3::from(Sign::Plus), Sign3::Plus);
        assert_eq!(Sign3::from(Sign::Minus), Sign3::Minus);
        assert_eq!(Sign3::from(None), Sign3::Eps);
        assert_eq!(Sign3::from(Some(Sign::Minus)), Sign3::Minus);
    }

    #[test]
    fn collapse_priority_order() {
        use Sign3::*;
        // weak loses to schema, schema loses to strong instance
        let lab = Label { l: Eps, r: Eps, ld: Eps, rd: Plus, lw: Minus, rw: Eps, final_sign: Eps };
        assert_eq!(lab.collapse(), Plus);
        let lab2 = Label { l: Eps, r: Minus, ld: Plus, ..Default::default() };
        assert_eq!(lab2.collapse(), Minus);
        let lab3 = Label::default();
        assert_eq!(lab3.collapse(), Eps);
    }

    #[test]
    fn symbols() {
        assert_eq!(Sign3::Plus.symbol(), '+');
        assert_eq!(Sign3::Minus.symbol(), '-');
        assert_eq!(Sign3::Eps.symbol(), 'ε');
    }
}
