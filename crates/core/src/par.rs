//! Scoped worker pool for the parallel compute-view engine.
//!
//! The paper's Figure 2 labels the tree top-down: once a node's label is
//! decided, every subtree below it can be labeled independently — the
//! propagation into a child depends only on the parent's label. This
//! module provides the (zero-dependency) machinery the engine fans that
//! work out with:
//!
//! - [`Parallelism`] — the knob threaded from `ProcessorOptions`, the
//!   server, and `xmlsec-cli serve`/`stats` down to the engine;
//! - a **global core budget** ([`lease`]) so per-request parallelism
//!   composes with the HTTP worker pool: N workers × M threads never
//!   oversubscribes the machine, because extra threads beyond the one a
//!   request already owns are leased from one process-wide pool sized by
//!   [`std::thread::available_parallelism`];
//! - [`run_tasks`] — a scoped fork-join pool over a `Mutex<VecDeque>`
//!   work queue (std threads only, per the repo's no-new-deps policy).
//!
//! Telemetry: `xmlsec_par_tasks_total` counts executed tasks,
//! `xmlsec_par_fanouts_total` counts parallel fan-out operations, and the
//! `xmlsec_par_queue_depth` / `xmlsec_par_cores_leased` gauges expose the
//! pool state. See `docs/PARALLELISM.md` for the design discussion.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicIsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::thread;
use xmlsec_telemetry as telemetry;
use xmlsec_xml::cancel::{CancelReason, CancelToken, Cancelled};

/// How much parallelism one view computation may use.
///
/// `Copy` so it rides inside `ProcessorOptions`; the default is
/// sequential — parallelism is opt-in per processor/server/CLI.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Parallelism {
    /// Upper bound on threads for one computation. `1` means sequential;
    /// `0` means "auto": as many as the machine has, subject to the
    /// global core budget.
    pub max_threads: usize,
    /// Documents with fewer arena slots than this are always labeled
    /// sequentially — fan-out overhead (thread spawn + queue traffic)
    /// swamps the win on small trees.
    pub seq_threshold: usize,
    /// Spawn exactly `max_threads` workers even when the global core
    /// budget would grant fewer. `available_parallelism` is conservative
    /// under cgroup CPU quotas, and the thread-scaling bench and the
    /// parallel/sequential differential tests must exercise real
    /// multi-worker execution regardless of what the host reports; leave
    /// this `false` (the default) on serving paths so N HTTP workers ×
    /// M threads stays bounded by the machine.
    pub oversubscribe: bool,
}

/// Default [`Parallelism::seq_threshold`]: arena slots below which the
/// engine does not bother spawning workers.
pub const DEFAULT_SEQ_THRESHOLD: usize = 256;

impl Parallelism {
    /// Sequential evaluation (the default; identical to the pre-parallel
    /// engine).
    pub const fn sequential() -> Parallelism {
        Parallelism { max_threads: 1, seq_threshold: DEFAULT_SEQ_THRESHOLD, oversubscribe: false }
    }

    /// Use every core the global budget will lease.
    pub const fn auto() -> Parallelism {
        Parallelism { max_threads: 0, seq_threshold: DEFAULT_SEQ_THRESHOLD, oversubscribe: false }
    }

    /// At most `n` threads (`0` = auto, `1` = sequential).
    pub const fn threads(n: usize) -> Parallelism {
        Parallelism { max_threads: n, seq_threshold: DEFAULT_SEQ_THRESHOLD, oversubscribe: false }
    }

    /// The same knob with a different sequential-fallback threshold.
    pub const fn with_seq_threshold(mut self, nodes: usize) -> Parallelism {
        self.seq_threshold = nodes;
        self
    }

    /// The same knob with [`Parallelism::oversubscribe`] set: exactly
    /// `max_threads` workers, global core budget notwithstanding.
    pub const fn exact(mut self) -> Parallelism {
        self.oversubscribe = true;
        self
    }

    /// `true` when this configuration can never spawn a worker.
    pub fn is_sequential(&self) -> bool {
        self.max_threads == 1
    }

    /// The thread count this knob *asks* for (before leasing):
    /// `max_threads`, or the machine's parallelism for `0`.
    pub fn want_threads(&self) -> usize {
        match self.max_threads {
            0 => available_cores(),
            n => n,
        }
    }
}

impl Default for Parallelism {
    fn default() -> Parallelism {
        Parallelism::sequential()
    }
}

/// Cached `available_parallelism` (the value never changes for the
/// process; the syscall is not free).
pub fn available_cores() -> usize {
    static CORES: OnceLock<usize> = OnceLock::new();
    *CORES.get_or_init(|| thread::available_parallelism().map(|n| n.get()).unwrap_or(1))
}

/// The process-wide pool of *extra* cores. Every computation implicitly
/// owns the thread it runs on; only threads beyond that are leased here,
/// so the pool holds `available_cores() - 1` permits.
fn extra_permits() -> &'static AtomicIsize {
    static PERMITS: OnceLock<AtomicIsize> = OnceLock::new();
    PERMITS.get_or_init(|| AtomicIsize::new(available_cores() as isize - 1))
}

struct ParMetrics {
    tasks: Arc<telemetry::Counter>,
    fanouts: Arc<telemetry::Counter>,
    queue_depth: Arc<telemetry::Gauge>,
    cores_leased: Arc<telemetry::Gauge>,
}

fn par_metrics() -> &'static ParMetrics {
    static METRICS: OnceLock<ParMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let reg = telemetry::global();
        ParMetrics {
            tasks: reg.counter(
                "xmlsec_par_tasks_total",
                "Tasks executed by the compute-view worker pool.",
                &[],
            ),
            fanouts: reg.counter(
                "xmlsec_par_fanouts_total",
                "Parallel fan-out operations (task batches run on >1 thread).",
                &[],
            ),
            queue_depth: reg.gauge(
                "xmlsec_par_queue_depth",
                "Tasks currently waiting in the compute-view work queue.",
                &[],
            ),
            cores_leased: reg.gauge(
                "xmlsec_par_cores_leased",
                "Extra cores currently leased from the global core budget.",
                &[],
            ),
        }
    })
}

/// A lease of extra cores from the global budget. Returned by [`lease`];
/// the permits go back to the pool on drop.
#[derive(Debug)]
pub struct CoreLease {
    extra: usize,
}

impl CoreLease {
    /// Total threads this lease allows: the caller's own thread plus the
    /// leased extras.
    pub fn threads(&self) -> usize {
        1 + self.extra
    }
}

impl Drop for CoreLease {
    fn drop(&mut self) {
        if self.extra > 0 {
            extra_permits().fetch_add(self.extra as isize, Ordering::AcqRel);
            par_metrics().cores_leased.add(-(self.extra as i64));
        }
    }
}

/// Leases up to `want_threads - 1` extra cores from the global budget
/// (the caller's own thread is free). Under contention — e.g. every HTTP
/// worker fanning out at once — a lease may grant fewer threads than
/// asked, down to `threads() == 1` (sequential). Never blocks.
pub fn lease(want_threads: usize) -> CoreLease {
    // Clamp before the isize cast below: an absurd request (e.g. a huge
    // `--par-threads`) must not wrap negative, which would *add* permits
    // in the CAS and corrupt the global budget. More than the machine's
    // cores is never useful anyway.
    let want_extra = want_threads.saturating_sub(1).min(available_cores());
    if want_extra == 0 {
        return CoreLease { extra: 0 };
    }
    let pool = extra_permits();
    let mut granted = 0usize;
    let mut cur = pool.load(Ordering::Acquire);
    while cur > 0 {
        let take = cur.min(want_extra as isize);
        match pool.compare_exchange_weak(cur, cur - take, Ordering::AcqRel, Ordering::Acquire) {
            Ok(_) => {
                granted = take as usize;
                break;
            }
            Err(now) => cur = now,
        }
    }
    if granted > 0 {
        par_metrics().cores_leased.add(granted as i64);
    }
    CoreLease { extra: granted }
}

/// Runs `f` over every task on up to `threads` threads (scoped; the
/// calling thread works too) and returns the results **in task order**.
///
/// With `threads <= 1` or fewer than two tasks everything runs inline on
/// the caller — the closure is still invoked through the same code path,
/// so sequential and parallel execution differ only in scheduling.
///
/// A panicking task propagates the panic to the caller once the scope
/// joins (no detached threads, no poisoned global state).
pub fn run_tasks<T, R, F>(threads: usize, tasks: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    run_tasks_state(threads, tasks, || (), |(), t| f(t))
}

/// Like [`run_tasks`], but each worker owns a state value built by
/// `init` — once per worker under fan-out, once total on the inline path
/// — handed to `f` with every task that worker executes. The engine uses
/// this to keep one decision memo per *worker* (not per task), so memo
/// hits accumulate across all the subtrees a worker labels.
pub fn run_tasks_state<T, R, S, I, F>(threads: usize, tasks: Vec<T>, init: I, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, &T) -> R + Sync,
{
    match run_tasks_cancellable(threads, tasks, None, init, f) {
        Ok(out) => out,
        // Without a token the pool has nothing to trip on.
        Err(c) => unreachable!("uncancellable pool reported cancellation: {c}"),
    }
}

/// Like [`run_tasks_state`], but cooperatively cancellable: every worker
/// consults `cancel` at each task handoff (a boundary
/// [`CancelToken::check`], so deadlines are observed unamortized) and
/// stops pulling work once the token trips. The remaining queue is
/// drained, the queue-depth gauge returns to zero, and the call returns
/// `Err(`[`Cancelled`]`)` with all partial results discarded on the
/// normal drop path — core leases, worker state, and budget permits all
/// release as usual.
///
/// # Cancellation-safety contract for workers
///
/// `f` is **never interrupted mid-task** — cancellation is only observed
/// between tasks, and in-flight tasks run to completion before the scope
/// joins. A worker closure may therefore hold locks, allocate, and emit
/// telemetry freely, but it must keep any *cross-task* invariant (e.g.
/// "every reserved slot gets filled", gauge increments) either
/// established per task or restored by `Drop`, because the pool
/// guarantees only that after it returns no worker is running and the
/// queue is empty. A panicking task still propagates at scope join,
/// exactly as in [`run_tasks`].
pub fn run_tasks_cancellable<T, R, S, I, F>(
    threads: usize,
    tasks: Vec<T>,
    cancel: Option<&CancelToken>,
    init: I,
    f: F,
) -> Result<Vec<R>, Cancelled>
where
    T: Send,
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, &T) -> R + Sync,
{
    let m = par_metrics();
    if threads <= 1 || tasks.len() < 2 {
        let mut state = init();
        let mut out = Vec::with_capacity(tasks.len());
        for t in &tasks {
            if let Some(tok) = cancel {
                tok.check()?;
            }
            m.tasks.inc();
            out.push(f(&mut state, t));
        }
        return Ok(out);
    }

    let n = tasks.len();
    m.fanouts.inc();
    m.queue_depth.set(n as i64);
    let queue: Mutex<VecDeque<(usize, T)>> = Mutex::new(tasks.into_iter().enumerate().collect());
    let results: Mutex<Vec<Option<R>>> = Mutex::new((0..n).map(|_| None).collect());

    let worker = |queue: &Mutex<VecDeque<(usize, T)>>, results: &Mutex<Vec<Option<R>>>| {
        let mut state = init();
        loop {
            if let Some(tok) = cancel {
                if tok.check().is_err() {
                    // Drain so sibling workers stop at their next handoff
                    // too and the depth gauge reads zero afterwards.
                    let mut q = queue.lock().unwrap_or_else(|e| e.into_inner());
                    q.clear();
                    m.queue_depth.set(0);
                    break;
                }
            }
            let item = {
                let mut q = queue.lock().unwrap_or_else(|e| e.into_inner());
                let item = q.pop_front();
                m.queue_depth.set(q.len() as i64);
                item
            };
            let Some((i, task)) = item else { break };
            m.tasks.inc();
            let r = f(&mut state, &task);
            results.lock().unwrap_or_else(|e| e.into_inner())[i] = Some(r);
        }
    };

    let workers = threads.min(n);
    thread::scope(|s| {
        for _ in 1..workers {
            s.spawn(|| worker(&queue, &results));
        }
        worker(&queue, &results);
    });

    let slots = results.into_inner().unwrap_or_else(|e| e.into_inner());
    if slots.iter().any(|r| r.is_none()) {
        let reason = cancel.and_then(|t| t.reason()).unwrap_or(CancelReason::Explicit);
        return Err(Cancelled { reason });
    }
    Ok(slots.into_iter().map(|r| r.expect("all slots verified Some above")).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_keep_task_order() {
        let tasks: Vec<usize> = (0..64).collect();
        let out = run_tasks(4, tasks, |&i| i * 2);
        assert_eq!(out, (0..64).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn sequential_path_matches_parallel() {
        let tasks: Vec<u64> = (0..33).collect();
        let seq = run_tasks(1, tasks.clone(), |&i| i * i + 1);
        let par = run_tasks(8, tasks, |&i| i * i + 1);
        assert_eq!(seq, par);
    }

    #[test]
    fn empty_and_singleton_task_lists() {
        let none: Vec<u8> = Vec::new();
        assert!(run_tasks(4, none, |_| 0).is_empty());
        assert_eq!(run_tasks(4, vec![7u8], |&x| x as u32), vec![7]);
    }

    #[test]
    fn lease_never_exceeds_budget_and_returns_permits() {
        // Other tests may hold leases concurrently, so assert only the
        // invariants: each lease owns one free thread, and the extras of
        // all concurrent leases never exceed `cores - 1`.
        let cores = available_cores();
        let a = lease(1024);
        let b = lease(1024);
        assert!(a.threads() <= cores);
        assert!(a.threads() + b.threads() <= cores + 1);
        drop(b);
        drop(a);
        let c = lease(2);
        assert!(c.threads() <= 2);
        assert!(c.threads() >= 1);
    }

    #[test]
    fn absurd_thread_requests_cannot_corrupt_the_budget() {
        // want_threads beyond isize::MAX must clamp, not wrap negative in
        // the CAS (which would mint permits). Repeat so a corrupted pool
        // would compound visibly.
        let cores = available_cores();
        for _ in 0..3 {
            let a = lease(usize::MAX);
            assert!(a.threads() <= cores.max(1) + 1);
        }
        let b = lease(2);
        assert!(b.threads() <= 2);
    }

    #[test]
    fn worker_state_is_reused_across_tasks() {
        // Inline path: a single state sees every task.
        let out = run_tasks_state(
            1,
            (0..10).collect(),
            || 0usize,
            |seen, &i: &usize| {
                *seen += 1;
                (i, *seen)
            },
        );
        assert_eq!(out.len(), 10);
        assert_eq!(out.iter().map(|&(_, s)| s).max(), Some(10), "one state saw all tasks");
        // Fan-out: per-worker states, results still in task order.
        let out = run_tasks_state(
            4,
            (0..64).collect(),
            || 0u64,
            |seen, &i: &u64| {
                *seen += 1;
                i * 2
            },
        );
        assert_eq!(out, (0..64).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn cancelled_pool_discards_partial_work_and_resets_the_gauge() {
        // Pre-tripped token: the inline path refuses the first task.
        let t = CancelToken::never();
        t.cancel_with(CancelReason::ClientGone);
        let e =
            run_tasks_cancellable(1, vec![1, 2, 3], Some(&t), || (), |(), &x: &i32| x).unwrap_err();
        assert_eq!(e.reason, CancelReason::ClientGone);

        // Fan-out path: a task side effect trips the token, so sibling
        // workers stop at their next handoff, the queue drains, and the
        // call reports Err with the depth gauge back at zero.
        let t = CancelToken::never();
        let tok = t.clone();
        let r = run_tasks_cancellable(
            4,
            (0..256).collect(),
            Some(&t),
            || (),
            move |(), &i: &u64| {
                if i == 0 {
                    tok.cancel();
                }
                thread::sleep(std::time::Duration::from_micros(500));
                i
            },
        );
        // Workers observe the trip at their next handoff; in the (wildly
        // unlikely) schedule where every task already drained, a complete
        // Ok is the only other legal outcome — never a partial Ok.
        match r {
            Err(e) => assert_eq!(e.reason, CancelReason::Explicit),
            Ok(v) => assert_eq!(v.len(), 256),
        }
    }

    #[test]
    fn untripped_token_changes_nothing() {
        let t = CancelToken::never();
        let out =
            run_tasks_cancellable(4, (0..64).collect(), Some(&t), || (), |(), &i: &u64| i * 2)
                .unwrap();
        assert_eq!(out, (0..64).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn parallelism_knob_semantics() {
        assert!(Parallelism::sequential().is_sequential());
        assert!(Parallelism::default().is_sequential());
        assert!(!Parallelism::auto().is_sequential());
        assert_eq!(Parallelism::threads(3).want_threads(), 3);
        assert_eq!(Parallelism::auto().want_threads(), available_cores());
        let p = Parallelism::threads(2).with_seq_threshold(9);
        assert_eq!(p.seq_threshold, 9);
        assert!(!p.oversubscribe);
        assert!(p.exact().oversubscribe);
    }
}
