//! Write and update operations — the paper's §8 extension ("the support
//! for write and update operations on the documents").
//!
//! The read model carries over wholesale: write authorizations are the
//! same 5-tuples with `action = write`, labeled by the same compute-view
//! machinery. What is new is the *enforcement rule* for each update
//! operation, which the paper leaves open; we adopt the strict reading:
//!
//! - **SetText / SetAttribute** on a node require a positive write label
//!   on that node (for attributes: on the attribute node itself, which
//!   inherits from parent-local grants as in the read model);
//! - **InsertElement** under a parent requires a positive write label on
//!   the parent (you may add to what you can write);
//! - **Delete** requires a positive write label on *every* node of the
//!   deleted subtree — deleting content you could not even write to is
//!   never allowed, no matter how permissive the root of the subtree is.
//!
//! Updates are transactional: the operation list is checked first and
//! applied only if every operation is authorized, so a failed batch
//! leaves the document untouched.

use crate::label::Sign3;
use crate::view::{label_document, Labeling};
use std::fmt;
use xmlsec_authz::{Action, Authorization, PolicyConfig};
use xmlsec_subjects::Directory;
use xmlsec_xml::{Document, NodeId};
use xmlsec_xpath::{parse_path, select, XPathError};

/// One update operation, with targets given as path expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum UpdateOp {
    /// Replace the text content of the selected element(s).
    SetText {
        /// Path selecting the target element(s).
        target: String,
        /// The new text.
        text: String,
    },
    /// Set (or add) an attribute on the selected element(s).
    SetAttribute {
        /// Path selecting the target element(s).
        target: String,
        /// Attribute name.
        name: String,
        /// Attribute value.
        value: String,
    },
    /// Append a new empty element under the selected parent(s).
    InsertElement {
        /// Path selecting the parent element(s).
        parent: String,
        /// Name of the new element.
        name: String,
    },
    /// Delete the selected node(s) (elements or attributes).
    Delete {
        /// Path selecting the nodes to remove.
        target: String,
    },
}

/// Why an update was refused.
#[derive(Debug, Clone, PartialEq)]
pub enum UpdateError {
    /// The target path does not parse.
    BadPath(XPathError),
    /// The path selected no nodes.
    NoSuchNode(String),
    /// A selected node (described) lacks write permission.
    NotAuthorized(String),
    /// The operation does not apply to the selected node kind.
    WrongNodeKind(String),
}

impl fmt::Display for UpdateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UpdateError::BadPath(e) => write!(f, "bad update path: {e}"),
            UpdateError::NoSuchNode(p) => write!(f, "no node matches {p:?}"),
            UpdateError::NotAuthorized(n) => write!(f, "write access denied on {n}"),
            UpdateError::WrongNodeKind(n) => write!(f, "operation not applicable to {n}"),
        }
    }
}

impl std::error::Error for UpdateError {}

impl From<XPathError> for UpdateError {
    fn from(e: XPathError) -> Self {
        UpdateError::BadPath(e)
    }
}

/// Computes the **write labeling** of `doc`: identical to read labeling
/// but fed only `action = write` authorizations.
pub fn label_for_write(
    doc: &Document,
    axml: &[&Authorization],
    adtd: &[&Authorization],
    dir: &Directory,
    policy: PolicyConfig,
) -> Labeling {
    let wx: Vec<&Authorization> =
        axml.iter().copied().filter(|a| a.action == Action::Write).collect();
    let wd: Vec<&Authorization> =
        adtd.iter().copied().filter(|a| a.action == Action::Write).collect();
    label_document(doc, &wx, &wd, dir, policy)
}

/// Checks and applies a batch of updates atomically. On success, returns
/// the number of nodes touched; on failure the document is unchanged.
pub fn apply_updates(
    doc: &mut Document,
    ops: &[UpdateOp],
    write_labels: &Labeling,
) -> Result<usize, UpdateError> {
    // Phase 1: resolve and authorize everything against the *current*
    // document, collecting concrete actions.
    enum Planned {
        SetText(NodeId, String),
        SetAttr(NodeId, String, String),
        Insert(NodeId, String),
        Delete(NodeId),
    }
    let granted = |n: NodeId| write_labels.final_sign(n) == Sign3::Plus;
    let describe = |doc: &Document, n: NodeId| xmlsec_xpath::describe_node(doc, n);

    let mut plan: Vec<Planned> = Vec::new();
    for op in ops {
        match op {
            UpdateOp::SetText { target, text } => {
                let nodes = resolve(doc, target)?;
                for n in nodes {
                    if !doc.is_element(n) {
                        return Err(UpdateError::WrongNodeKind(describe(doc, n)));
                    }
                    if !granted(n) {
                        return Err(UpdateError::NotAuthorized(describe(doc, n)));
                    }
                    plan.push(Planned::SetText(n, text.clone()));
                }
            }
            UpdateOp::SetAttribute { target, name, value } => {
                let nodes = resolve(doc, target)?;
                for n in nodes {
                    if !doc.is_element(n) {
                        return Err(UpdateError::WrongNodeKind(describe(doc, n)));
                    }
                    // Authorization point: the existing attribute node if
                    // present (it has its own label), else the element.
                    let auth_node = doc.attribute_node(n, name).unwrap_or(n);
                    if !granted(auth_node) {
                        return Err(UpdateError::NotAuthorized(describe(doc, auth_node)));
                    }
                    plan.push(Planned::SetAttr(n, name.clone(), value.clone()));
                }
            }
            UpdateOp::InsertElement { parent, name } => {
                let nodes = resolve(doc, parent)?;
                for n in nodes {
                    if !doc.is_element(n) {
                        return Err(UpdateError::WrongNodeKind(describe(doc, n)));
                    }
                    if !granted(n) {
                        return Err(UpdateError::NotAuthorized(describe(doc, n)));
                    }
                    plan.push(Planned::Insert(n, name.clone()));
                }
            }
            UpdateOp::Delete { target } => {
                let nodes = resolve(doc, target)?;
                for n in nodes {
                    // Strict rule: the whole subtree must be writable.
                    let mut stack = vec![n];
                    while let Some(m) = stack.pop() {
                        if (doc.is_element(m) || doc.is_attribute(m)) && !granted(m) {
                            return Err(UpdateError::NotAuthorized(describe(doc, m)));
                        }
                        for &a in doc.attributes(m) {
                            stack.push(a);
                        }
                        for &c in doc.children(m) {
                            if doc.is_element(c) {
                                stack.push(c);
                            }
                        }
                    }
                    if doc.parent(n).is_none() {
                        return Err(UpdateError::WrongNodeKind("the document element".into()));
                    }
                    plan.push(Planned::Delete(n));
                }
            }
        }
    }

    // Phase 2: apply.
    let touched = plan.len();
    for p in plan {
        match p {
            Planned::SetText(n, text) => {
                for c in doc.children(n).to_vec() {
                    if doc.is_text(c) {
                        doc.detach(c);
                    }
                }
                doc.append_text(n, &text);
            }
            Planned::SetAttr(n, name, value) => {
                doc.set_attribute(n, &name, &value).expect("target checked to be an element");
            }
            Planned::Insert(n, name) => {
                doc.append_element(n, &name);
            }
            Planned::Delete(n) => {
                doc.detach(n);
            }
        }
    }
    Ok(touched)
}

fn resolve(doc: &Document, path: &str) -> Result<Vec<NodeId>, UpdateError> {
    let p = parse_path(path)?;
    let nodes = select(doc, &p);
    if nodes.is_empty() {
        return Err(UpdateError::NoSuchNode(path.to_string()));
    }
    Ok(nodes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmlsec_authz::{AuthType, ObjectSpec, Sign};
    use xmlsec_subjects::Subject;
    use xmlsec_xml::{parse, serialize, SerializeOptions};

    const DOC: &str = r#"<doc><notes author="kim">old</notes><locked>keep</locked></doc>"#;

    fn write_auth(path: &str, sign: Sign) -> Authorization {
        Authorization::new(
            Subject::new("kim", "*", "*").unwrap(),
            ObjectSpec::with_path("d.xml", path).unwrap(),
            sign,
            AuthType::Recursive,
        )
        .with_action(Action::Write)
    }

    fn labeled(doc: &Document, auths: &[Authorization]) -> Labeling {
        let refs: Vec<&Authorization> = auths.iter().collect();
        label_for_write(doc, &refs, &[], &Directory::new(), PolicyConfig::paper_default())
    }

    #[test]
    fn set_text_with_grant() {
        let mut doc = parse(DOC).unwrap();
        let auths = [write_auth("/doc/notes", Sign::Plus)];
        let labels = labeled(&doc, &auths);
        let n = apply_updates(
            &mut doc,
            &[UpdateOp::SetText { target: "/doc/notes".into(), text: "new".into() }],
            &labels,
        )
        .unwrap();
        assert_eq!(n, 1);
        let out = serialize(&doc, &SerializeOptions::canonical());
        assert!(out.contains("<notes author=\"kim\">new</notes>"), "{out}");
    }

    #[test]
    fn set_text_without_grant_denied() {
        let mut doc = parse(DOC).unwrap();
        let auths = [write_auth("/doc/notes", Sign::Plus)];
        let labels = labeled(&doc, &auths);
        let e = apply_updates(
            &mut doc,
            &[UpdateOp::SetText { target: "/doc/locked".into(), text: "hack".into() }],
            &labels,
        )
        .unwrap_err();
        assert!(matches!(e, UpdateError::NotAuthorized(_)));
        // untouched
        assert!(serialize(&doc, &SerializeOptions::canonical()).contains("keep"));
    }

    #[test]
    fn read_grants_do_not_authorize_writes() {
        let mut doc = parse(DOC).unwrap();
        // Same path, but a *read* authorization.
        let read_only = [Authorization::new(
            Subject::new("kim", "*", "*").unwrap(),
            ObjectSpec::with_path("d.xml", "/doc/notes").unwrap(),
            Sign::Plus,
            AuthType::Recursive,
        )];
        let labels = labeled(&doc, &read_only);
        let e = apply_updates(
            &mut doc,
            &[UpdateOp::SetText { target: "/doc/notes".into(), text: "x".into() }],
            &labels,
        )
        .unwrap_err();
        assert!(matches!(e, UpdateError::NotAuthorized(_)));
    }

    #[test]
    fn attribute_update_uses_attribute_label() {
        let mut doc = parse(DOC).unwrap();
        // Grant on the element: local write also covers its attributes.
        let auths =
            [write_auth("/doc/notes", Sign::Plus), write_auth("/doc/notes/@author", Sign::Minus)];
        let labels = labeled(&doc, &auths);
        // @author explicitly denied
        let e = apply_updates(
            &mut doc,
            &[UpdateOp::SetAttribute {
                target: "/doc/notes".into(),
                name: "author".into(),
                value: "eve".into(),
            }],
            &labels,
        )
        .unwrap_err();
        assert!(matches!(e, UpdateError::NotAuthorized(_)));
        // a *new* attribute falls back to the element's grant
        apply_updates(
            &mut doc,
            &[UpdateOp::SetAttribute {
                target: "/doc/notes".into(),
                name: "reviewed".into(),
                value: "yes".into(),
            }],
            &labels,
        )
        .unwrap();
        assert_eq!(
            doc.attribute(doc.child_elements(doc.root()).next().unwrap(), "reviewed"),
            Some("yes")
        );
    }

    #[test]
    fn insert_requires_parent_grant() {
        let mut doc = parse(DOC).unwrap();
        let auths = [write_auth("/doc/notes", Sign::Plus)];
        let labels = labeled(&doc, &auths);
        apply_updates(
            &mut doc,
            &[UpdateOp::InsertElement { parent: "/doc/notes".into(), name: "draft".into() }],
            &labels,
        )
        .unwrap();
        assert!(serialize(&doc, &SerializeOptions::canonical()).contains("<draft/>"));
        let e = apply_updates(
            &mut doc,
            &[UpdateOp::InsertElement { parent: "/doc".into(), name: "evil".into() }],
            &labels,
        )
        .unwrap_err();
        assert!(matches!(e, UpdateError::NotAuthorized(_)));
    }

    #[test]
    fn delete_requires_whole_subtree_writable() {
        let mut doc = parse(r#"<doc><folder><a>1</a><b locked="x">2</b></folder></doc>"#).unwrap();
        // folder and <a> writable; <b> carved out.
        let auths =
            [write_auth("/doc/folder", Sign::Plus), write_auth("/doc/folder/b", Sign::Minus)];
        let labels = labeled(&doc, &auths);
        let e =
            apply_updates(&mut doc, &[UpdateOp::Delete { target: "/doc/folder".into() }], &labels)
                .unwrap_err();
        assert!(matches!(e, UpdateError::NotAuthorized(_)));
        // Deleting just <a> is fine.
        apply_updates(&mut doc, &[UpdateOp::Delete { target: "/doc/folder/a".into() }], &labels)
            .unwrap();
        let out = serialize(&doc, &SerializeOptions::canonical());
        assert!(!out.contains("<a>"), "{out}");
        assert!(out.contains("<b"), "{out}");
    }

    #[test]
    fn batch_is_atomic() {
        let mut doc = parse(DOC).unwrap();
        let auths = [write_auth("/doc/notes", Sign::Plus)];
        let labels = labeled(&doc, &auths);
        let before = serialize(&doc, &SerializeOptions::canonical());
        let e = apply_updates(
            &mut doc,
            &[
                UpdateOp::SetText { target: "/doc/notes".into(), text: "new".into() },
                UpdateOp::SetText { target: "/doc/locked".into(), text: "hack".into() },
            ],
            &labels,
        )
        .unwrap_err();
        assert!(matches!(e, UpdateError::NotAuthorized(_)));
        assert_eq!(serialize(&doc, &SerializeOptions::canonical()), before);
    }

    #[test]
    fn missing_target_and_bad_path() {
        let mut doc = parse(DOC).unwrap();
        let labels = labeled(&doc, &[]);
        assert!(matches!(
            apply_updates(&mut doc, &[UpdateOp::Delete { target: "/doc/ghost".into() }], &labels),
            Err(UpdateError::NoSuchNode(_))
        ));
        assert!(matches!(
            apply_updates(&mut doc, &[UpdateOp::Delete { target: "///".into() }], &labels),
            Err(UpdateError::BadPath(_))
        ));
    }

    #[test]
    fn cannot_delete_document_element() {
        let mut doc = parse(DOC).unwrap();
        let auths = [write_auth("/doc", Sign::Plus)];
        let labels = labeled(&doc, &auths);
        let e = apply_updates(&mut doc, &[UpdateOp::Delete { target: "/doc".into() }], &labels)
            .unwrap_err();
        assert!(matches!(e, UpdateError::WrongNodeKind(_)));
    }
}
