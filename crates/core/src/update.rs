//! Write and update operations — the paper's §8 extension ("the support
//! for write and update operations on the documents").
//!
//! The read model carries over wholesale: write authorizations are the
//! same 5-tuples with `action = write`, labeled by the same compute-view
//! machinery. What is new is the *enforcement rule* for each update
//! operation, which the paper leaves open; we adopt the strict reading:
//!
//! - **SetText / SetAttribute** on a node require a positive write label
//!   on that node (for attributes: on the attribute node itself, which
//!   inherits from parent-local grants as in the read model);
//! - **InsertElement / InsertSubtree** under a parent require a positive
//!   write label on the parent (you may add to what you can write);
//! - **Delete** requires a positive write label on *every* node of the
//!   deleted subtree — deleting content you could not even write to is
//!   never allowed, no matter how permissive the root of the subtree is;
//! - **ReplaceSubtree** composes both: the whole outgoing subtree must be
//!   writable (the delete half) *and* the parent must grant the insert
//!   half.
//!
//! Ops in a batch apply **sequentially**, and the write labeling is
//! recomputed after every op that changes the document: op *k+1* is
//! authorized against labels that account for everything ops *1..k* did.
//! In particular `[InsertElement, SetText on the inserted node]` is legal
//! when the parent's grant propagates to the new child — the batch is
//! not authorized against a stale pre-batch labeling.
//!
//! Updates are transactional: all ops apply to a private clone which
//! replaces the document only after the whole batch succeeds, so a
//! denial, a tripped evaluation budget, or a cancellation mid-batch
//! leaves the caller's document untouched.

use crate::label::Sign3;
use crate::view::{label_document, label_document_engine, EngineOptions, Labeling};
use std::fmt;
use xmlsec_authz::{Action, Authorization, PolicyConfig};
use xmlsec_subjects::Directory;
use xmlsec_xml::cancel::CancelReason;
use xmlsec_xml::{Document, NodeId};
use xmlsec_xpath::{parse_path, select, EvalError, XPathError};

/// One update operation, with targets given as path expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum UpdateOp {
    /// Replace the text content of the selected element(s).
    SetText {
        /// Path selecting the target element(s).
        target: String,
        /// The new text.
        text: String,
    },
    /// Set (or add) an attribute on the selected element(s).
    SetAttribute {
        /// Path selecting the target element(s).
        target: String,
        /// Attribute name.
        name: String,
        /// Attribute value.
        value: String,
    },
    /// Append a new empty element under the selected parent(s).
    InsertElement {
        /// Path selecting the parent element(s).
        parent: String,
        /// Name of the new element.
        name: String,
    },
    /// Parse `xml` as a document fragment and append a deep copy of it
    /// under the selected parent(s).
    InsertSubtree {
        /// Path selecting the parent element(s).
        parent: String,
        /// A well-formed XML fragment (one root element).
        xml: String,
    },
    /// Replace the selected element(s) — subtree and all — with a parsed
    /// copy of `xml`, spliced into the same child position.
    ReplaceSubtree {
        /// Path selecting the element(s) to replace.
        target: String,
        /// A well-formed XML fragment (one root element).
        xml: String,
    },
    /// Delete the selected node(s) (elements or attributes).
    Delete {
        /// Path selecting the nodes to remove.
        target: String,
    },
}

/// Why an update was refused.
#[derive(Debug, Clone, PartialEq)]
pub enum UpdateError {
    /// The target path does not parse.
    BadPath(XPathError),
    /// A subtree payload is not well-formed XML.
    BadFragment(String),
    /// The path selected no nodes.
    NoSuchNode(String),
    /// A selected node (described) lacks write permission.
    NotAuthorized(String),
    /// The operation does not apply to the selected node kind.
    WrongNodeKind(String),
    /// Write labeling exhausted an evaluation budget mid-batch.
    Engine(EvalError),
    /// The request was cancelled mid-batch (deadline, client gone, or
    /// explicit); the document is untouched.
    Cancelled(CancelReason),
}

impl fmt::Display for UpdateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UpdateError::BadPath(e) => write!(f, "bad update path: {e}"),
            UpdateError::BadFragment(e) => write!(f, "bad subtree payload: {e}"),
            UpdateError::NoSuchNode(p) => write!(f, "no node matches {p:?}"),
            UpdateError::NotAuthorized(n) => write!(f, "write access denied on {n}"),
            UpdateError::WrongNodeKind(n) => write!(f, "operation not applicable to {n}"),
            UpdateError::Engine(e) => write!(f, "write labeling exceeded limits: {e}"),
            UpdateError::Cancelled(r) => write!(f, "update cancelled: {r}"),
        }
    }
}

impl std::error::Error for UpdateError {}

impl From<XPathError> for UpdateError {
    fn from(e: XPathError) -> Self {
        UpdateError::BadPath(e)
    }
}

impl From<EvalError> for UpdateError {
    fn from(e: EvalError) -> Self {
        match e {
            EvalError::Cancelled(r) => UpdateError::Cancelled(r),
            other => UpdateError::Engine(other),
        }
    }
}

/// Everything an update batch needs to re-derive write labels as it
/// mutates the document: the applicable authorization sets (filtered to
/// `action = write` internally), the subject directory, the policy, and
/// the engine options carrying evaluation limits and the request's
/// [`CancelToken`](xmlsec_xml::cancel::CancelToken).
#[derive(Clone, Copy)]
pub struct WriteContext<'a> {
    /// Applicable instance-level authorizations (any action; write ones
    /// are selected internally).
    pub axml: &'a [&'a Authorization],
    /// Applicable schema-level authorizations.
    pub adtd: &'a [&'a Authorization],
    /// Subject directory for membership closure.
    pub dir: &'a Directory,
    /// Conflict/completeness policy.
    pub policy: PolicyConfig,
    /// Evaluation limits, parallelism, memo, and cancellation. Each
    /// relabel inside the batch draws a fresh node-visit pool from
    /// `opts.limits`.
    pub opts: EngineOptions<'a>,
}

/// What a successful batch did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UpdateOutcome {
    /// Number of concrete node-level operations applied.
    pub touched: usize,
    /// Roots of the subtrees whose content changed, in the *committed*
    /// document: targets of text/attribute writes, roots of inserted or
    /// replacing subtrees, and parents of deletions. A later op in the
    /// same batch may have since removed a recorded node — consumers
    /// (incremental rehashers) must skip ids for which
    /// [`Document::contains`] is false.
    pub dirty: Vec<NodeId>,
}

/// Computes the **write labeling** of `doc`: identical to read labeling
/// but fed only `action = write` authorizations. Unlimited and
/// uncancellable — prefer [`label_for_write_engine`] on a server path.
pub fn label_for_write(
    doc: &Document,
    axml: &[&Authorization],
    adtd: &[&Authorization],
    dir: &Directory,
    policy: PolicyConfig,
) -> Labeling {
    let wx: Vec<&Authorization> =
        axml.iter().copied().filter(|a| a.action == Action::Write).collect();
    let wd: Vec<&Authorization> =
        adtd.iter().copied().filter(|a| a.action == Action::Write).collect();
    label_document(doc, &wx, &wd, dir, policy)
}

/// [`label_for_write`] through the full engine: evaluation limits and
/// the request's cancellation token apply, so a pathological write-auth
/// object or a blown deadline yields a typed error instead of pinning
/// the worker.
pub fn label_for_write_engine(
    doc: &Document,
    axml: &[&Authorization],
    adtd: &[&Authorization],
    dir: &Directory,
    policy: PolicyConfig,
    opts: &EngineOptions<'_>,
) -> Result<Labeling, EvalError> {
    let wx: Vec<&Authorization> =
        axml.iter().copied().filter(|a| a.action == Action::Write).collect();
    let wd: Vec<&Authorization> =
        adtd.iter().copied().filter(|a| a.action == Action::Write).collect();
    label_document_engine(doc, &wx, &wd, dir, policy, opts)
}

/// Checks and applies a batch of updates atomically.
///
/// Ops run sequentially against a private clone; after every op that
/// changes the clone the write labeling is recomputed (from
/// `ctx`'s authorization sets, under its limits and cancellation token),
/// so each op is authorized against the document state its predecessors
/// produced. On success the clone replaces `doc` and the outcome reports
/// the touched count plus the dirty subtree roots; on any error —
/// denial, bad path, tripped budget, cancellation — `doc` is unchanged.
pub fn apply_updates(
    doc: &mut Document,
    ops: &[UpdateOp],
    ctx: &WriteContext<'_>,
) -> Result<UpdateOutcome, UpdateError> {
    let mut work = doc.clone();
    let mut outcome = UpdateOutcome { touched: 0, dirty: Vec::new() };
    let mut labels: Option<Labeling> = None;
    for op in ops {
        if let Some(t) = ctx.opts.cancel {
            t.check().map_err(|c| UpdateError::Cancelled(c.reason))?;
        }
        // Lazily (re)derive labels: the previous op's mutations can
        // change any label in the document (write-auth objects may carry
        // predicates over the mutated content), so a changed clone drops
        // the labeling and the next op pays for a fresh one.
        let current = match &labels {
            Some(l) => l,
            None => labels.insert(label_for_write_engine(
                &work, ctx.axml, ctx.adtd, ctx.dir, ctx.policy, &ctx.opts,
            )?),
        };
        let granted = |n: NodeId| current.final_sign(n) == Sign3::Plus;
        if apply_one(&mut work, op, &granted, &mut outcome)? {
            labels = None;
        }
    }
    *doc = work;
    Ok(outcome)
}

/// Applies a batch that a static pre-flight has already proven
/// authorized on every reachable document state (see
/// [`crate::static_analysis::write`]): the same resolve/check/apply code
/// as [`apply_updates`] with every grant check satisfied, so bad paths,
/// missing targets, wrong node kinds and malformed fragments fail
/// byte-identically to the dynamic path — only the per-op write-labeling
/// is skipped. The caller carries the soundness obligation (a
/// guaranteed-allow [`crate::static_analysis::write::BatchVerdict`]).
pub fn apply_updates_preauthorized(
    doc: &mut Document,
    ops: &[UpdateOp],
    cancel: Option<&xmlsec_xml::cancel::CancelToken>,
) -> Result<UpdateOutcome, UpdateError> {
    let mut work = doc.clone();
    let mut outcome = UpdateOutcome { touched: 0, dirty: Vec::new() };
    let granted = |_: NodeId| true;
    for op in ops {
        if let Some(t) = cancel {
            t.check().map_err(|c| UpdateError::Cancelled(c.reason))?;
        }
        apply_one(&mut work, op, &granted, &mut outcome)?;
    }
    *doc = work;
    Ok(outcome)
}

/// Resolves, authorizes, and applies a single op against the working
/// document. Returns whether the document changed.
fn apply_one(
    work: &mut Document,
    op: &UpdateOp,
    granted: &impl Fn(NodeId) -> bool,
    outcome: &mut UpdateOutcome,
) -> Result<bool, UpdateError> {
    let describe = |doc: &Document, n: NodeId| xmlsec_xpath::describe_node(doc, n);

    // Resolve and authorize every target of this op first, then apply:
    // one op either happens in full or not at all, and its own mutations
    // cannot skew the selection or the checks.
    let mut changed = false;
    match op {
        UpdateOp::SetText { target, text } => {
            let nodes = resolve(work, target)?;
            for &n in &nodes {
                if !work.is_element(n) {
                    return Err(UpdateError::WrongNodeKind(describe(work, n)));
                }
                if !granted(n) {
                    return Err(UpdateError::NotAuthorized(describe(work, n)));
                }
            }
            for n in nodes {
                for c in work.children(n).to_vec() {
                    if work.is_text(c) {
                        work.remove_subtree(c);
                    }
                }
                work.append_text(n, text);
                outcome.dirty.push(n);
                outcome.touched += 1;
                changed = true;
            }
        }
        UpdateOp::SetAttribute { target, name, value } => {
            let nodes = resolve(work, target)?;
            for &n in &nodes {
                if !work.is_element(n) {
                    return Err(UpdateError::WrongNodeKind(describe(work, n)));
                }
                // Authorization point: the existing attribute node if
                // present (it has its own label), else the element.
                let auth_node = work.attribute_node(n, name).unwrap_or(n);
                if !granted(auth_node) {
                    return Err(UpdateError::NotAuthorized(describe(work, auth_node)));
                }
            }
            for n in nodes {
                work.set_attribute(n, name, value).expect("target checked to be an element");
                outcome.dirty.push(n);
                outcome.touched += 1;
                changed = true;
            }
        }
        UpdateOp::InsertElement { parent, name } => {
            let nodes = resolve(work, parent)?;
            for &n in &nodes {
                check_insert_parent(work, n, &granted)?;
            }
            for n in nodes {
                let new = work.append_element(n, name);
                outcome.dirty.push(new);
                outcome.touched += 1;
                changed = true;
            }
        }
        UpdateOp::InsertSubtree { parent, xml } => {
            let frag = parse_fragment(xml)?;
            let nodes = resolve(work, parent)?;
            for &n in &nodes {
                check_insert_parent(work, n, &granted)?;
            }
            for n in nodes {
                let new = work.import_subtree(n, &frag, frag.root());
                outcome.dirty.push(new);
                outcome.touched += 1;
                changed = true;
            }
        }
        UpdateOp::ReplaceSubtree { target, xml } => {
            let frag = parse_fragment(xml)?;
            let nodes = resolve(work, target)?;
            for &n in &nodes {
                if !work.is_element(n) {
                    return Err(UpdateError::WrongNodeKind(describe(work, n)));
                }
                let Some(p) = work.parent(n) else {
                    return Err(UpdateError::WrongNodeKind("the document element".into()));
                };
                // The delete half: the whole outgoing subtree must be
                // writable. The insert half: the parent must grant.
                check_subtree_writable(work, n, &granted)?;
                if !granted(p) {
                    return Err(UpdateError::NotAuthorized(describe(work, p)));
                }
            }
            for n in nodes {
                if !work.contains(n) {
                    continue; // removed with an earlier target's subtree
                }
                let new = work
                    .replace_with_subtree(n, &frag, frag.root())
                    .expect("non-root target checked above");
                outcome.dirty.push(new);
                outcome.touched += 1;
                changed = true;
            }
        }
        UpdateOp::Delete { target } => {
            let nodes = resolve(work, target)?;
            for &n in &nodes {
                check_subtree_writable(work, n, &granted)?;
                if work.parent(n).is_none() {
                    return Err(UpdateError::WrongNodeKind("the document element".into()));
                }
            }
            for n in nodes {
                if !work.contains(n) {
                    continue; // nested inside an earlier target's subtree
                }
                let parent = work.parent(n).expect("non-root checked above");
                work.remove_subtree(n);
                outcome.dirty.push(parent);
                outcome.touched += 1;
                changed = true;
            }
        }
    }
    Ok(changed)
}

fn check_insert_parent(
    work: &Document,
    n: NodeId,
    granted: &impl Fn(NodeId) -> bool,
) -> Result<(), UpdateError> {
    if !work.is_element(n) {
        return Err(UpdateError::WrongNodeKind(xmlsec_xpath::describe_node(work, n)));
    }
    if !granted(n) {
        return Err(UpdateError::NotAuthorized(xmlsec_xpath::describe_node(work, n)));
    }
    Ok(())
}

/// Strict deletion rule: every element and attribute of the subtree must
/// carry a positive write label.
fn check_subtree_writable(
    work: &Document,
    n: NodeId,
    granted: &impl Fn(NodeId) -> bool,
) -> Result<(), UpdateError> {
    let mut stack = vec![n];
    while let Some(m) = stack.pop() {
        if (work.is_element(m) || work.is_attribute(m)) && !granted(m) {
            return Err(UpdateError::NotAuthorized(xmlsec_xpath::describe_node(work, m)));
        }
        for &a in work.attributes(m) {
            stack.push(a);
        }
        for &c in work.children(m) {
            if work.is_element(c) {
                stack.push(c);
            }
        }
    }
    Ok(())
}

fn parse_fragment(xml: &str) -> Result<Document, UpdateError> {
    xmlsec_xml::parse(xml).map_err(|e| UpdateError::BadFragment(e.to_string()))
}

fn resolve(doc: &Document, path: &str) -> Result<Vec<NodeId>, UpdateError> {
    let p = parse_path(path)?;
    let nodes = select(doc, &p);
    if nodes.is_empty() {
        return Err(UpdateError::NoSuchNode(path.to_string()));
    }
    Ok(nodes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmlsec_authz::{AuthType, ObjectSpec, Sign};
    use xmlsec_subjects::Subject;
    use xmlsec_xml::cancel::CancelToken;
    use xmlsec_xml::{parse, serialize, SerializeOptions};
    use xmlsec_xpath::EvalLimits;

    const DOC: &str = r#"<doc><notes author="kim">old</notes><locked>keep</locked></doc>"#;

    fn write_auth(path: &str, sign: Sign) -> Authorization {
        Authorization::new(
            Subject::new("kim", "*", "*").unwrap(),
            ObjectSpec::with_path("d.xml", path).unwrap(),
            sign,
            AuthType::Recursive,
        )
        .with_action(Action::Write)
    }

    fn apply(
        doc: &mut Document,
        auths: &[Authorization],
        ops: &[UpdateOp],
    ) -> Result<UpdateOutcome, UpdateError> {
        apply_with_opts(doc, auths, ops, EngineOptions::sequential(EvalLimits::unlimited()))
    }

    fn apply_with_opts(
        doc: &mut Document,
        auths: &[Authorization],
        ops: &[UpdateOp],
        opts: EngineOptions<'_>,
    ) -> Result<UpdateOutcome, UpdateError> {
        let dir = Directory::new();
        let refs: Vec<&Authorization> = auths.iter().collect();
        let ctx = WriteContext {
            axml: &refs,
            adtd: &[],
            dir: &dir,
            policy: PolicyConfig::paper_default(),
            opts,
        };
        apply_updates(doc, ops, &ctx)
    }

    fn canon(doc: &Document) -> String {
        serialize(doc, &SerializeOptions::canonical())
    }

    #[test]
    fn set_text_with_grant() {
        let mut doc = parse(DOC).unwrap();
        let auths = [write_auth("/doc/notes", Sign::Plus)];
        let out = apply(
            &mut doc,
            &auths,
            &[UpdateOp::SetText { target: "/doc/notes".into(), text: "new".into() }],
        )
        .unwrap();
        assert_eq!(out.touched, 1);
        assert_eq!(out.dirty.len(), 1);
        assert!(doc.contains(out.dirty[0]));
        assert!(canon(&doc).contains("<notes author=\"kim\">new</notes>"), "{}", canon(&doc));
    }

    #[test]
    fn set_text_without_grant_denied() {
        let mut doc = parse(DOC).unwrap();
        let auths = [write_auth("/doc/notes", Sign::Plus)];
        let e = apply(
            &mut doc,
            &auths,
            &[UpdateOp::SetText { target: "/doc/locked".into(), text: "hack".into() }],
        )
        .unwrap_err();
        assert!(matches!(e, UpdateError::NotAuthorized(_)));
        // untouched
        assert!(canon(&doc).contains("keep"));
    }

    #[test]
    fn read_grants_do_not_authorize_writes() {
        let mut doc = parse(DOC).unwrap();
        // Same path, but a *read* authorization.
        let read_only = [Authorization::new(
            Subject::new("kim", "*", "*").unwrap(),
            ObjectSpec::with_path("d.xml", "/doc/notes").unwrap(),
            Sign::Plus,
            AuthType::Recursive,
        )];
        let e = apply(
            &mut doc,
            &read_only,
            &[UpdateOp::SetText { target: "/doc/notes".into(), text: "x".into() }],
        )
        .unwrap_err();
        assert!(matches!(e, UpdateError::NotAuthorized(_)));
    }

    #[test]
    fn attribute_update_uses_attribute_label() {
        let mut doc = parse(DOC).unwrap();
        // Grant on the element: local write also covers its attributes.
        let auths =
            [write_auth("/doc/notes", Sign::Plus), write_auth("/doc/notes/@author", Sign::Minus)];
        // @author explicitly denied
        let e = apply(
            &mut doc,
            &auths,
            &[UpdateOp::SetAttribute {
                target: "/doc/notes".into(),
                name: "author".into(),
                value: "eve".into(),
            }],
        )
        .unwrap_err();
        assert!(matches!(e, UpdateError::NotAuthorized(_)));
        // a *new* attribute falls back to the element's grant
        apply(
            &mut doc,
            &auths,
            &[UpdateOp::SetAttribute {
                target: "/doc/notes".into(),
                name: "reviewed".into(),
                value: "yes".into(),
            }],
        )
        .unwrap();
        assert_eq!(
            doc.attribute(doc.child_elements(doc.root()).next().unwrap(), "reviewed"),
            Some("yes")
        );
    }

    #[test]
    fn insert_requires_parent_grant() {
        let mut doc = parse(DOC).unwrap();
        let auths = [write_auth("/doc/notes", Sign::Plus)];
        apply(
            &mut doc,
            &auths,
            &[UpdateOp::InsertElement { parent: "/doc/notes".into(), name: "draft".into() }],
        )
        .unwrap();
        assert!(canon(&doc).contains("<draft/>"));
        let e = apply(
            &mut doc,
            &auths,
            &[UpdateOp::InsertElement { parent: "/doc".into(), name: "evil".into() }],
        )
        .unwrap_err();
        assert!(matches!(e, UpdateError::NotAuthorized(_)));
    }

    #[test]
    fn delete_requires_whole_subtree_writable() {
        let mut doc = parse(r#"<doc><folder><a>1</a><b locked="x">2</b></folder></doc>"#).unwrap();
        // folder and <a> writable; <b> carved out.
        let auths =
            [write_auth("/doc/folder", Sign::Plus), write_auth("/doc/folder/b", Sign::Minus)];
        let e = apply(&mut doc, &auths, &[UpdateOp::Delete { target: "/doc/folder".into() }])
            .unwrap_err();
        assert!(matches!(e, UpdateError::NotAuthorized(_)));
        // Deleting just <a> is fine.
        apply(&mut doc, &auths, &[UpdateOp::Delete { target: "/doc/folder/a".into() }]).unwrap();
        let out = canon(&doc);
        assert!(!out.contains("<a>"), "{out}");
        assert!(out.contains("<b"), "{out}");
    }

    #[test]
    fn delete_frees_arena_slots() {
        let mut doc = parse(r#"<doc><folder><a>1</a></folder></doc>"#).unwrap();
        let auths = [write_auth("/doc/folder", Sign::Plus)];
        assert_eq!(doc.free_len(), 0);
        apply(&mut doc, &auths, &[UpdateOp::Delete { target: "/doc/folder/a".into() }]).unwrap();
        // <a> and its text child were freed, not just detached.
        assert_eq!(doc.free_len(), 2);
    }

    #[test]
    fn batch_is_atomic() {
        let mut doc = parse(DOC).unwrap();
        let auths = [write_auth("/doc/notes", Sign::Plus)];
        let before = canon(&doc);
        let e = apply(
            &mut doc,
            &auths,
            &[
                UpdateOp::SetText { target: "/doc/notes".into(), text: "new".into() },
                UpdateOp::SetText { target: "/doc/locked".into(), text: "hack".into() },
            ],
        )
        .unwrap_err();
        assert!(matches!(e, UpdateError::NotAuthorized(_)));
        assert_eq!(canon(&doc), before);
    }

    #[test]
    fn missing_target_and_bad_path() {
        let mut doc = parse(DOC).unwrap();
        assert!(matches!(
            apply(&mut doc, &[], &[UpdateOp::Delete { target: "/doc/ghost".into() }]),
            Err(UpdateError::NoSuchNode(_))
        ));
        assert!(matches!(
            apply(&mut doc, &[], &[UpdateOp::Delete { target: "///".into() }]),
            Err(UpdateError::BadPath(_))
        ));
    }

    #[test]
    fn cannot_delete_document_element() {
        let mut doc = parse(DOC).unwrap();
        let auths = [write_auth("/doc", Sign::Plus)];
        let e = apply(&mut doc, &auths, &[UpdateOp::Delete { target: "/doc".into() }]).unwrap_err();
        assert!(matches!(e, UpdateError::WrongNodeKind(_)));
    }

    // ---- intra-batch ordering (labels must track the evolving doc) ----

    #[test]
    fn insert_then_set_text_on_inserted_node() {
        // The second op targets a node the first op creates: it must be
        // authorized against labels that account for the insertion (the
        // recursive grant on /doc/notes propagates to the new child).
        let mut doc = parse(DOC).unwrap();
        let auths = [write_auth("/doc/notes", Sign::Plus)];
        let out = apply(
            &mut doc,
            &auths,
            &[
                UpdateOp::InsertElement { parent: "/doc/notes".into(), name: "draft".into() },
                UpdateOp::SetText { target: "/doc/notes/draft".into(), text: "hi".into() },
            ],
        )
        .unwrap();
        assert_eq!(out.touched, 2);
        assert!(canon(&doc).contains("<draft>hi</draft>"), "{}", canon(&doc));
    }

    #[test]
    fn intra_batch_relabel_respects_denials() {
        // The carve-out on the (future) child must bind the moment the
        // child exists: insert succeeds, the dependent SetText is denied,
        // and atomicity rolls the whole batch back.
        let mut doc = parse(DOC).unwrap();
        let auths =
            [write_auth("/doc/notes", Sign::Plus), write_auth("/doc/notes/draft", Sign::Minus)];
        let before = canon(&doc);
        let e = apply(
            &mut doc,
            &auths,
            &[
                UpdateOp::InsertElement { parent: "/doc/notes".into(), name: "draft".into() },
                UpdateOp::SetText { target: "/doc/notes/draft".into(), text: "hi".into() },
            ],
        )
        .unwrap_err();
        assert!(matches!(e, UpdateError::NotAuthorized(_)));
        assert_eq!(canon(&doc), before);
    }

    #[test]
    fn delete_then_reinsert_same_path() {
        // Sequential semantics: op 2 resolves against the doc op 1 left.
        let mut doc = parse(DOC).unwrap();
        let auths = [write_auth("/doc", Sign::Plus)];
        let out = apply(
            &mut doc,
            &auths,
            &[
                UpdateOp::Delete { target: "/doc/locked".into() },
                UpdateOp::InsertElement { parent: "/doc".into(), name: "locked".into() },
                UpdateOp::SetText { target: "/doc/locked".into(), text: "fresh".into() },
            ],
        )
        .unwrap();
        assert_eq!(out.touched, 3);
        assert!(canon(&doc).contains("<locked>fresh</locked>"), "{}", canon(&doc));
    }

    // ---- subtree ops ----

    #[test]
    fn insert_subtree_imports_fragment() {
        let mut doc = parse(DOC).unwrap();
        let auths = [write_auth("/doc/notes", Sign::Plus)];
        let out = apply(
            &mut doc,
            &auths,
            &[UpdateOp::InsertSubtree {
                parent: "/doc/notes".into(),
                xml: r#"<draft status="new">text</draft>"#.into(),
            }],
        )
        .unwrap();
        assert_eq!(out.touched, 1);
        assert!(doc.is_element(out.dirty[0]));
        assert!(canon(&doc).contains(r#"<draft status="new">text</draft>"#), "{}", canon(&doc));
    }

    #[test]
    fn insert_subtree_rejects_bad_fragment() {
        let mut doc = parse(DOC).unwrap();
        let auths = [write_auth("/doc/notes", Sign::Plus)];
        let before = canon(&doc);
        let e = apply(
            &mut doc,
            &auths,
            &[UpdateOp::InsertSubtree { parent: "/doc/notes".into(), xml: "<a><b".into() }],
        )
        .unwrap_err();
        assert!(matches!(e, UpdateError::BadFragment(_)));
        assert_eq!(canon(&doc), before);
    }

    #[test]
    fn replace_subtree_preserves_position() {
        let mut doc = parse(r#"<doc><folder><a>1</a><b>2</b></folder></doc>"#).unwrap();
        let auths = [write_auth("/doc/folder", Sign::Plus)];
        let out = apply(
            &mut doc,
            &auths,
            &[UpdateOp::ReplaceSubtree {
                target: "/doc/folder/a".into(),
                xml: "<a2>new</a2>".into(),
            }],
        )
        .unwrap();
        assert_eq!(out.touched, 1);
        // Spliced into <a>'s former slot, before <b>.
        assert!(canon(&doc).contains("<folder><a2>new</a2><b>2</b></folder>"), "{}", canon(&doc));
    }

    #[test]
    fn replace_subtree_requires_old_subtree_writable() {
        let mut doc = parse(r#"<doc><folder><a>1</a><b locked="x">2</b></folder></doc>"#).unwrap();
        let auths =
            [write_auth("/doc/folder", Sign::Plus), write_auth("/doc/folder/b", Sign::Minus)];
        let before = canon(&doc);
        let e = apply(
            &mut doc,
            &auths,
            &[UpdateOp::ReplaceSubtree { target: "/doc/folder/b".into(), xml: "<b/>".into() }],
        )
        .unwrap_err();
        assert!(matches!(e, UpdateError::NotAuthorized(_)));
        assert_eq!(canon(&doc), before);
    }

    #[test]
    fn cannot_replace_document_element() {
        let mut doc = parse(DOC).unwrap();
        let auths = [write_auth("/doc", Sign::Plus)];
        let e = apply(
            &mut doc,
            &auths,
            &[UpdateOp::ReplaceSubtree { target: "/doc".into(), xml: "<doc2/>".into() }],
        )
        .unwrap_err();
        assert!(matches!(e, UpdateError::WrongNodeKind(_)));
    }

    // ---- cancellation and limits (PR 7 contract) ----

    #[test]
    fn precancelled_token_stops_before_any_work() {
        let mut doc = parse(DOC).unwrap();
        let auths = [write_auth("/doc/notes", Sign::Plus)];
        let token = CancelToken::never();
        token.cancel();
        let before = canon(&doc);
        let e = apply_with_opts(
            &mut doc,
            &auths,
            &[UpdateOp::SetText { target: "/doc/notes".into(), text: "new".into() }],
            EngineOptions::sequential(EvalLimits::unlimited()).with_cancel(&token),
        )
        .unwrap_err();
        assert!(matches!(e, UpdateError::Cancelled(CancelReason::Explicit)));
        assert_eq!(canon(&doc), before);
    }

    #[test]
    fn write_labeling_polls_the_token() {
        // The token must be threaded all the way into the labeling
        // engine, not just checked at op boundaries: a token that trips
        // at the very first evaluator poll cancels the labeling itself.
        let doc = parse(DOC).unwrap();
        let auths = [write_auth("/doc/notes", Sign::Plus)];
        let refs: Vec<&Authorization> = auths.iter().collect();
        let token = CancelToken::cancel_after_polls(0);
        let e = label_for_write_engine(
            &doc,
            &refs,
            &[],
            &Directory::new(),
            PolicyConfig::paper_default(),
            &EngineOptions::sequential(EvalLimits::default_limits()).with_cancel(&token),
        )
        .unwrap_err();
        assert!(matches!(e, EvalError::Cancelled(CancelReason::Explicit)));
    }

    #[test]
    fn cancelled_batch_leaves_document_untouched() {
        // Sweep the deterministic trip point across the whole batch: no
        // matter where cancellation lands — before the batch, inside the
        // first labeling, between ops, inside a mid-batch relabel — an
        // interrupted batch never leaks partial writes into the caller's
        // document.
        let ops = [
            UpdateOp::SetText { target: "/doc/notes".into(), text: "one".into() },
            UpdateOp::InsertElement { parent: "/doc/notes".into(), name: "draft".into() },
            UpdateOp::SetText { target: "/doc/notes/draft".into(), text: "two".into() },
        ];
        let auths = [write_auth("/doc/notes", Sign::Plus)];
        let pristine = canon(&parse(DOC).unwrap());
        let mut cancelled_runs = 0u32;
        let mut completed_runs = 0u32;
        for k in 0..400 {
            let mut doc = parse(DOC).unwrap();
            let token = CancelToken::cancel_after_polls(k);
            let opts =
                EngineOptions::sequential(EvalLimits::default_limits()).with_cancel(&token);
            match apply_with_opts(&mut doc, &auths, &ops, opts) {
                Ok(out) => {
                    assert_eq!(out.touched, 3);
                    assert!(canon(&doc).contains("<draft>two</draft>"));
                    completed_runs += 1;
                }
                Err(UpdateError::Cancelled(CancelReason::Explicit)) => {
                    assert_eq!(canon(&doc), pristine, "partial write leaked at poll {k}");
                    cancelled_runs += 1;
                }
                Err(e) => panic!("unexpected error at poll {k}: {e}"),
            }
        }
        assert!(cancelled_runs > 0, "the sweep never hit a cancellation point");
        assert!(completed_runs > 0, "the sweep never let the batch finish");
    }

    #[test]
    fn exhausted_budget_is_typed_and_atomic() {
        let mut doc = parse(DOC).unwrap();
        let auths = [write_auth("/doc/notes", Sign::Plus)];
        let before = canon(&doc);
        let e = apply_with_opts(
            &mut doc,
            &auths,
            &[UpdateOp::SetText { target: "/doc/notes".into(), text: "new".into() }],
            EngineOptions::sequential(EvalLimits { max_node_visits: 1, max_eval_depth: 64 }),
        )
        .unwrap_err();
        assert!(matches!(e, UpdateError::Engine(EvalError::NodeBudget { .. })), "{e}");
        assert_eq!(canon(&doc), before);
    }
}
