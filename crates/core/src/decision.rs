//! Label-decision cache for the compute-view engine.
//!
//! Mahfoud & Imine observe that per-(subject, element-type) access
//! decisions can be precomputed and reused across queries. The same holds
//! here at a finer grain: during labeling, the expensive step per node is
//! the "most specific subject takes precedence, then denials" resolution
//! ([`xmlsec_authz::policy::resolve_sign`]) over the authorizations whose
//! objects select the node. Two nodes selected by the *same subset* of
//! applicable authorizations get the *same* initial label, so the engine
//! keys decisions by the match bitmask plus a **policy fingerprint** and
//! memoizes the resolved [`Label`] — within one run (a per-worker memo)
//! and across requests (a shared [`DecisionCache`] owned by the server).
//!
//! The fingerprint hashes the *content* of the applicable authorizations
//! (sorted, so list order is irrelevant), the policy configuration, and
//! the directory's membership relation — everything `resolve_sign`
//! reads. Because the fingerprint is order-independent while the mask
//! assigns bit `i` to the `i`-th applicable authorization, the engine
//! **canonicalizes** the applicable sets (sorts them by their rendered
//! form) before building either whenever a cache is attached — so bit
//! `i` refers to the same authorization no matter what order a request
//! presents the set in. Mutating any authorization, policy knob, or
//! group edge changes the fingerprint, so stale entries can never be
//! returned; they simply age out of the FIFO. Traffic is mirrored to the telemetry registry as
//! `xmlsec_decision_cache_{hits,misses}_total` and the
//! `xmlsec_decision_cache_entries` gauge.

use std::collections::hash_map::DefaultHasher;
use std::collections::{HashMap, VecDeque};
use std::hash::{Hash, Hasher};
use std::sync::{Arc, Mutex, OnceLock};
use xmlsec_authz::{Authorization, PolicyConfig};
use xmlsec_subjects::Directory;
use xmlsec_telemetry as telemetry;

use crate::label::Label;

/// One memoized decision's key: which policy universe, whether the node
/// is an attribute (recursive classes fold into local on leaves), and
/// which applicable authorizations matched the node (instance auths in
/// the low bits, schema auths above them).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DecisionKey {
    /// [`policy_fingerprint`] of the applicable sets + policy + directory.
    pub fingerprint: u64,
    /// Attribute nodes resolve differently from elements.
    pub is_attribute: bool,
    /// Bit `i` set ⇔ the `i`-th applicable authorization selects the
    /// node, with the sets in **canonical order** (sorted by rendered
    /// form — the engine sorts before building masks so the bit mapping
    /// is a function of content, matching the order-independent
    /// fingerprint). The engine only uses the cache when the combined
    /// applicable sets fit in 128 bits.
    pub mask: u128,
}

/// Content fingerprint of everything the initial-label resolution reads:
/// the applicable authorization sets (order-independent — hashed
/// sorted), the policy configuration, and the directory membership
/// relation. Cache keys built on this survive any in-place mutation of
/// an authorization: the mutated content hashes differently, so the old
/// entries miss.
pub fn policy_fingerprint(
    axml: &[&Authorization],
    adtd: &[&Authorization],
    dir: &Directory,
    policy: PolicyConfig,
) -> u64 {
    let mut h = DefaultHasher::new();
    // Policy knobs (discriminants via Debug, stable within a process).
    format!("{policy:?}").hash(&mut h);
    for (tag, set) in [(0u8, axml), (1u8, adtd)] {
        tag.hash(&mut h);
        let mut rendered: Vec<String> = set.iter().map(|a| a.to_string()).collect();
        rendered.sort();
        rendered.hash(&mut h);
    }
    // The subject-domination relation: principals and their transitive
    // group sets (BTree iteration is already sorted).
    for (name, kind) in dir.principals() {
        name.hash(&mut h);
        matches!(kind, xmlsec_subjects::PrincipalKind::Group).hash(&mut h);
        for g in dir.groups_of(name) {
            g.hash(&mut h);
        }
        0xfeu8.hash(&mut h); // per-principal separator
    }
    h.finish()
}

struct DecisionMetrics {
    hits: Arc<telemetry::Counter>,
    misses: Arc<telemetry::Counter>,
    entries: Arc<telemetry::Gauge>,
    mask_bypass: Arc<telemetry::Counter>,
}

fn decision_metrics() -> &'static DecisionMetrics {
    static METRICS: OnceLock<DecisionMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let reg = telemetry::global();
        DecisionMetrics {
            hits: reg.counter(
                "xmlsec_decision_cache_hits_total",
                "Initial-label resolutions answered from a memoized decision.",
                &[],
            ),
            misses: reg.counter(
                "xmlsec_decision_cache_misses_total",
                "Initial-label resolutions computed from scratch.",
                &[],
            ),
            entries: reg.gauge(
                "xmlsec_decision_cache_entries",
                "Decisions currently held in the shared cache.",
                &[],
            ),
            mask_bypass: reg.counter(
                "xmlsec_decision_mask_bypass_total",
                "Labeling runs whose applicable sets exceeded the 128-bit \
                 match-mask cap and bypassed decision memoization entirely.",
                &[],
            ),
        }
    })
}

/// Records a labeling run whose combined applicable sets exceed the
/// 128-bit match-mask cap: every initial label is resolved from scratch
/// (no per-run memo, no shared cache), which is quadratic-ish in the
/// authorization count. Warns once per process so operators notice the
/// silent degradation without log spam.
pub(crate) fn record_mask_bypass(auth_count: usize) {
    decision_metrics().mask_bypass.inc();
    static WARNED: std::sync::Once = std::sync::Once::new();
    WARNED.call_once(|| {
        eprintln!(
            "xmlsec: warning: {auth_count} applicable authorizations exceed the \
             128-auth decision-cache mask cap; label memoization is bypassed for \
             such requests (counter: xmlsec_decision_mask_bypass_total)"
        );
    });
}

/// Flushes a run's aggregated hit/miss counts to the registry (the
/// engine batches per worker instead of incrementing per node).
pub(crate) fn record_traffic(hits: u64, misses: u64) {
    let m = decision_metrics();
    if hits > 0 {
        m.hits.add(hits);
    }
    if misses > 0 {
        m.misses.add(misses);
    }
}

/// Default [`DecisionCache`] capacity (entries are ~50 bytes).
pub const DEFAULT_DECISION_CAPACITY: usize = 65_536;

/// Thread-safe cross-request memo of resolved initial labels, FIFO-bounded.
///
/// Owned by the server (one per [`crate::SecurityProcessor`] family via
/// `Arc`); repeated requests against an unchanged policy skip conflict
/// resolution entirely. Safe to share between policies — the fingerprint
/// in every key separates them.
#[derive(Debug)]
pub struct DecisionCache {
    inner: Mutex<DecisionInner>,
    capacity: usize,
}

#[derive(Debug, Default)]
struct DecisionInner {
    map: HashMap<DecisionKey, Label>,
    order: VecDeque<DecisionKey>,
}

impl DecisionCache {
    /// A cache bounded to [`DEFAULT_DECISION_CAPACITY`] decisions.
    pub fn new() -> DecisionCache {
        DecisionCache::with_capacity(DEFAULT_DECISION_CAPACITY)
    }

    /// A cache bounded to `capacity` decisions (FIFO eviction).
    pub fn with_capacity(capacity: usize) -> DecisionCache {
        DecisionCache { inner: Mutex::new(DecisionInner::default()), capacity: capacity.max(1) }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, DecisionInner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Looks up a memoized decision. Traffic counters are the *engine's*
    /// job (it batches per run); this is a plain map probe.
    pub fn get(&self, key: &DecisionKey) -> Option<Label> {
        self.lock().map.get(key).copied()
    }

    /// Memoizes a decision, evicting oldest-first past capacity.
    pub fn put(&self, key: DecisionKey, label: Label) {
        let mut inner = self.lock();
        if inner.map.insert(key, label).is_none() {
            inner.order.push_back(key);
        }
        while inner.map.len() > self.capacity {
            let Some(victim) = inner.order.pop_front() else { break };
            inner.map.remove(&victim);
        }
        decision_metrics().entries.set(inner.map.len() as i64);
    }

    /// Drops every memoized decision (e.g. on grant/revoke — fingerprints
    /// already prevent stale hits, clearing just reclaims the space).
    pub fn clear(&self) {
        let mut inner = self.lock();
        inner.map.clear();
        inner.order.clear();
        decision_metrics().entries.set(0);
    }

    /// Number of memoized decisions.
    pub fn len(&self) -> usize {
        self.lock().map.len()
    }

    /// `true` when nothing is memoized.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Default for DecisionCache {
    fn default() -> DecisionCache {
        DecisionCache::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::label::Sign3;
    use xmlsec_authz::{AuthType, ObjectSpec, Sign};
    use xmlsec_subjects::Subject;

    fn auth(spec: &str, sign: Sign) -> Authorization {
        Authorization::new(
            Subject::new("u", "*", "*").unwrap(),
            ObjectSpec::parse(spec).unwrap(),
            sign,
            AuthType::Recursive,
        )
    }

    fn key(fp: u64, mask: u128) -> DecisionKey {
        DecisionKey { fingerprint: fp, is_attribute: false, mask }
    }

    #[test]
    fn put_get_clear() {
        let c = DecisionCache::new();
        let lab = Label { final_sign: Sign3::Plus, ..Label::default() };
        assert!(c.get(&key(1, 0b01)).is_none());
        c.put(key(1, 0b01), lab);
        assert_eq!(c.get(&key(1, 0b01)).unwrap().final_sign, Sign3::Plus);
        assert!(c.get(&key(2, 0b01)).is_none(), "fingerprint separates policies");
        assert!(c.get(&key(1, 0b10)).is_none(), "mask separates node classes");
        c.clear();
        assert!(c.is_empty());
    }

    #[test]
    fn capacity_bounds_entries_fifo() {
        let c = DecisionCache::with_capacity(2);
        c.put(key(0, 1), Label::default());
        c.put(key(0, 2), Label::default());
        c.put(key(0, 3), Label::default());
        assert_eq!(c.len(), 2);
        assert!(c.get(&key(0, 1)).is_none(), "oldest evicted first");
        assert!(c.get(&key(0, 3)).is_some());
    }

    #[test]
    fn fingerprint_is_order_independent_but_content_sensitive() {
        let a = auth("d.xml:/a", Sign::Plus);
        let b = auth("d.xml:/a/b", Sign::Minus);
        let dir = Directory::new();
        let p = PolicyConfig::paper_default();
        let fp_ab = policy_fingerprint(&[&a, &b], &[], &dir, p);
        let fp_ba = policy_fingerprint(&[&b, &a], &[], &dir, p);
        assert_eq!(fp_ab, fp_ba, "applicable-set order is not identity");
        // Moving an auth between instance and schema sets matters.
        assert_ne!(fp_ab, policy_fingerprint(&[&a], &[&b], &dir, p));
    }

    #[test]
    fn mutating_one_authorization_changes_the_fingerprint() {
        let a = auth("d.xml:/a", Sign::Plus);
        let b = auth("d.xml:/a/b", Sign::Minus);
        let dir = Directory::new();
        let p = PolicyConfig::paper_default();
        let before = policy_fingerprint(&[&a, &b], &[], &dir, p);
        let mut b2 = b.clone();
        b2.sign = Sign::Plus; // in-place policy mutation
        let after = policy_fingerprint(&[&a, &b2], &[], &dir, p);
        assert_ne!(before, after, "a mutated authorization must miss the cache");
    }

    #[test]
    fn directory_and_policy_feed_the_fingerprint() {
        let a = auth("d.xml:/a", Sign::Plus);
        let p = PolicyConfig::paper_default();
        let empty = Directory::new();
        let mut with_group = Directory::new();
        with_group.add_user("u").unwrap();
        with_group.add_group("G").unwrap();
        with_group.add_member("u", "G").unwrap();
        assert_ne!(
            policy_fingerprint(&[&a], &[], &empty, p),
            policy_fingerprint(&[&a], &[], &with_group, p),
            "membership edges change subject domination"
        );
        let open = PolicyConfig {
            completeness: xmlsec_authz::CompletenessPolicy::Open,
            ..PolicyConfig::paper_default()
        };
        assert_ne!(
            policy_fingerprint(&[&a], &[], &empty, p),
            policy_fingerprint(&[&a], &[], &empty, open),
            "policy knobs change the fingerprint"
        );
    }
}
