//! Per-stage pipeline telemetry.
//!
//! Every stage of the security processor reports its wall time into the
//! `xmlsec_pipeline_stage_duration_seconds{stage="..."}` histogram
//! family, one series per stage, and opens a `processor.<stage>` span so
//! traces show the request as a tree. Handles are cached in statics so
//! the per-request cost is a pointer load, not a registry lookup.

use std::sync::{Arc, OnceLock};
use xmlsec_telemetry as telemetry;

/// Stage names, in pipeline order (the `stage` label values).
pub const STAGES: &[&str] = &[
    "parse",
    "dtd_parse",
    "normalize",
    "validate",
    "authz",
    "compile",
    "label",
    "prune",
    "loosen",
    "verify",
    "serialize",
];

fn histogram_for(stage: &'static str) -> Arc<telemetry::Histogram> {
    telemetry::global().histogram(
        "xmlsec_pipeline_stage_duration_seconds",
        "Wall time of one security-processor pipeline stage.",
        &[("stage", stage)],
        telemetry::Buckets::duration_default(),
    )
}

macro_rules! stage_spans {
    ($($fn_name:ident => $stage:literal),+ $(,)?) => {
        $(
            /// Opens a timed span for this pipeline stage.
            pub fn $fn_name() -> telemetry::SpanGuard {
                static H: OnceLock<Arc<telemetry::Histogram>> = OnceLock::new();
                let h = H.get_or_init(|| histogram_for($stage));
                telemetry::trace::span_timed(
                    concat!("processor.", $stage),
                    Arc::clone(h),
                )
            }
        )+
    };
}

stage_spans! {
    parse => "parse",
    dtd_parse => "dtd_parse",
    normalize => "normalize",
    validate => "validate",
    authz => "authz",
    compile => "compile",
    label => "label",
    prune => "prune",
    loosen => "loosen",
    verify => "verify",
    serialize => "serialize",
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_spans_feed_labeled_histograms() {
        {
            let _s = parse();
        }
        {
            let _s = label();
        }
        let text = telemetry::global().render_prometheus();
        assert!(text.contains(r#"xmlsec_pipeline_stage_duration_seconds_count{stage="parse"}"#));
        assert!(text.contains(r#"xmlsec_pipeline_stage_duration_seconds_count{stage="label"}"#));
    }
}
