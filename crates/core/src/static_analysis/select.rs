//! Must/may selection of schema nodes by authorization object paths.
//!
//! [`schema_coverage`](crate::analysis::schema_coverage) answers *which
//! declarations can this path select on some instance* (the may set).
//! The analyzer additionally needs the **must** direction: which
//! declarations are selected *in every conforming instance, at every
//! node of that type*. Precisely, `must(d)` here means: on every
//! instance, **every** existing node of declaration `d` is selected by
//! the path. (This quantifies over existing nodes — it is vacuously true
//! on instances with no `d` node, which is exactly the strength the
//! decision table needs, since table cells also quantify over existing
//! nodes.)
//!
//! May stays an over-approximation, must an under-approximation; both
//! err toward the middle verdict "instance-dependent", never toward a
//! false guarantee.

use crate::analysis::{name_matches, SchemaGraph};
use std::collections::{BTreeMap, BTreeSet};
use xmlsec_xpath::{Axis, NodeTest, PathExpr};

/// Why a path's may and must sets differ (the instance-dependence
/// source named in decision-table cells).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DependencySource {
    /// A step carries a predicate — selection depends on instance data.
    Predicate,
    /// Selection depends on instance structure: optional or branching
    /// content, upward (`..`/`ancestor::`) or sibling axes.
    Structure,
}

impl DependencySource {
    /// Human phrase used in cell reasons.
    pub fn describe(self) -> &'static str {
        match self {
            DependencySource::Predicate => "a predicate on its object path",
            DependencySource::Structure => {
                "instance structure (optional content or an upward/sibling axis)"
            }
        }
    }
}

/// The selection of one object path over the schema graph.
#[derive(Debug, Clone, Default)]
pub struct Selection {
    /// Element declarations the path may select → whether it must select
    /// every node of that type.
    pub elements: BTreeMap<String, bool>,
    /// Attribute declarations `(element, attribute)` the path may select
    /// → must flag.
    pub attributes: BTreeMap<(String, String), bool>,
    /// Why some may-selected node is not must-selected (`None` when
    /// every may is a must).
    pub dependency: Option<DependencySource>,
}

impl Selection {
    /// `true` when the path selects no declaration on any instance.
    pub fn is_dead(&self) -> bool {
        self.elements.is_empty() && self.attributes.is_empty()
    }
}

/// Evaluation context: the virtual document root or an element type,
/// with a must flag.
#[derive(Debug, Clone, Default)]
struct CtxSet<'d> {
    els: BTreeMap<&'d str, bool>,
    root_may: bool,
    root_must: bool,
}

impl<'d> CtxSet<'d> {
    fn add_el(&mut self, e: &'d str, must: bool) {
        let m = self.els.entry(e).or_insert(false);
        *m = *m || must;
    }

    fn add_root(&mut self, must: bool) {
        self.root_may = true;
        self.root_must = self.root_must || must;
    }

    fn must_els(&self) -> BTreeSet<&'d str> {
        self.els.iter().filter(|(_, &m)| m).map(|(&e, _)| e).collect()
    }

    fn is_empty(&self) -> bool {
        self.els.is_empty() && !self.root_may
    }

    fn clear_musts(&mut self) {
        for m in self.els.values_mut() {
            *m = false;
        }
        self.root_must = false;
    }
}

/// `true` when `target` is reachable from the graph root walking child
/// edges while avoiding the vertices in `avoid` (the root itself
/// included: if the root is avoided and is not the target, nothing is
/// reachable).
fn reachable_avoiding(g: &SchemaGraph<'_>, target: &str, avoid: &BTreeSet<&str>) -> bool {
    if avoid.contains(g.root) {
        return g.root == target;
    }
    let mut seen: BTreeSet<&str> = [g.root].into();
    let mut stack = vec![g.root];
    while let Some(x) = stack.pop() {
        if x == target {
            return true;
        }
        for k in g.kids(x) {
            if !avoid.contains(k) && seen.insert(k) {
                stack.push(k);
            }
        }
    }
    false
}

/// Must-selection for a `descendant::` step: every `d`-node is a proper
/// descendant of a must-selected node iff every schema path from the
/// root to `d` passes through one of `must_sources` strictly before
/// first reaching `d` — a vertex-cut check.
fn descendant_must(g: &SchemaGraph<'_>, d: &str, must_sources: &BTreeSet<&str>) -> bool {
    let mut avoid = must_sources.clone();
    avoid.remove(d);
    !reachable_avoiding(g, d, &avoid)
}

/// Evaluates `path` (or the whole-document object when `None`) over the
/// schema graph, returning may/must selection. Mirrors the concrete
/// evaluator: absolute paths start at the virtual document root,
/// relative paths at the document element.
pub(crate) fn select(g: &SchemaGraph<'_>, path: Option<&PathExpr>) -> Selection {
    let mut sel = Selection::default();
    let Some(path) = path else {
        // Whole-document object: exactly the document element node. All
        // root-typed nodes are selected only when the type cannot nest.
        let must = g.pars(g.root).next().is_none();
        sel.elements.insert(g.root.to_string(), must);
        if !must {
            sel.dependency = Some(DependencySource::Structure);
        }
        return sel;
    };

    let mut current = CtxSet::default();
    if path.absolute {
        current.add_root(true);
    } else {
        // The context is the document element; every root-typed node is
        // that element only when the type cannot nest.
        current.add_el(g.root, g.pars(g.root).next().is_none());
    }
    let mut attrs: BTreeMap<(String, String), bool> = BTreeMap::new();
    let mut dependency: Option<DependencySource> = None;
    let note = |d: DependencySource, dep: &mut Option<DependencySource>| {
        if *dep != Some(DependencySource::Predicate) {
            *dep = Some(d);
        }
    };

    for step in &path.steps {
        let mut next = CtxSet::default();
        attrs.clear(); // attributes are terminal; only the last step's survive
        let cur_must = current.must_els();

        match step.axis {
            Axis::Child => {
                let mut may: BTreeSet<&str> = BTreeSet::new();
                if current.root_may && name_matches(&step.test, g.root) {
                    may.insert(g.root);
                }
                for &e in current.els.keys() {
                    for k in g.kids(e) {
                        if name_matches(&step.test, k) {
                            may.insert(k);
                        }
                    }
                }
                for k in may {
                    // Every k-node's parent must be selected: all element
                    // parents of k, and the document root when k is the
                    // root type (the document element's parent).
                    let el_parents_must = g.pars(k).all(|p| cur_must.contains(p));
                    let root_parent_must = k != g.root || current.root_must;
                    next.add_el(k, el_parents_must && root_parent_must);
                }
            }
            Axis::Descendant | Axis::DescendantOrSelf => {
                let mut may: BTreeSet<&str> = BTreeSet::new();
                if current.root_may {
                    may.extend(g.descendants(g.root));
                    may.insert(g.root);
                    if matches!(step.test, NodeTest::AnyNode) {
                        // Over-approximation kept from `schema_coverage`:
                        // the root context survives; it is a must only
                        // for the or-self reading.
                        next.add_root(step.axis == Axis::DescendantOrSelf && current.root_must);
                    }
                }
                for &e in current.els.keys() {
                    may.extend(g.descendants(e));
                    if step.axis == Axis::DescendantOrSelf {
                        may.insert(e);
                    }
                }
                for d in may {
                    if !name_matches(&step.test, d) {
                        continue;
                    }
                    let must = if current.root_must {
                        // Every element node descends from the document
                        // root; or-self needs no extra care for elements.
                        true
                    } else {
                        (step.axis == Axis::DescendantOrSelf && cur_must.contains(d))
                            || descendant_must(g, d, &cur_must)
                    };
                    next.add_el(d, must);
                }
            }
            Axis::Parent => {
                for &e in current.els.keys() {
                    if e == g.root && matches!(step.test, NodeTest::AnyNode) {
                        // The document element's parent is the document
                        // root — selected for sure when every root-typed
                        // node is (the document element always exists).
                        next.add_root(cur_must.contains(g.root));
                    }
                    for p in g.pars(e) {
                        if name_matches(&step.test, p) {
                            // Only p-nodes that *have* an e-child are
                            // selected: never a must.
                            next.add_el(p, false);
                        }
                    }
                }
            }
            Axis::Ancestor | Axis::AncestorOrSelf => {
                if current.root_may
                    && step.axis == Axis::AncestorOrSelf
                    && matches!(step.test, NodeTest::AnyNode)
                {
                    next.add_root(current.root_must);
                }
                for &e in current.els.keys() {
                    let mut set = g.ancestors(e);
                    if step.axis == Axis::AncestorOrSelf {
                        set.insert(e);
                    }
                    for a in set {
                        if name_matches(&step.test, a) {
                            // Ancestors of selected nodes: a must only
                            // for the or-self part (selection of all
                            // a-nodes is otherwise existential).
                            let must =
                                step.axis == Axis::AncestorOrSelf && a == e && cur_must.contains(e);
                            next.add_el(a, must);
                        }
                    }
                    if matches!(step.test, NodeTest::AnyNode) {
                        // The document root is an ancestor of every
                        // element; never a must (the source node may not
                        // exist on a given instance).
                        next.add_root(false);
                    }
                }
            }
            Axis::SelfAxis => {
                if current.root_may && matches!(step.test, NodeTest::AnyNode) {
                    next.add_root(current.root_must);
                }
                for (&e, &m) in &current.els {
                    if name_matches(&step.test, e) {
                        next.add_el(e, m);
                    }
                }
            }
            Axis::FollowingSibling | Axis::PrecedingSibling => {
                for &e in current.els.keys() {
                    for p in g.pars(e) {
                        for s in g.kids(p) {
                            if name_matches(&step.test, s) {
                                next.add_el(s, false);
                            }
                        }
                    }
                }
            }
            Axis::Attribute => {
                for (&e, &m) in &current.els {
                    for def in g.dtd.attributes(e) {
                        let matches = match &step.test {
                            NodeTest::Name(n) => n == &def.name,
                            NodeTest::Wildcard | NodeTest::AnyNode => true,
                            NodeTest::Text => false,
                        };
                        if matches {
                            // Attribute nodes of must-selected elements
                            // are all selected (quantifying over the
                            // attributes that exist).
                            attrs.insert((e.to_string(), def.name.clone()), m);
                        }
                    }
                }
            }
        }

        if !step.predicates.is_empty() {
            // A predicate can drop any subset of the selected nodes.
            next.clear_musts();
            for m in attrs.values_mut() {
                *m = false;
            }
            note(DependencySource::Predicate, &mut dependency);
        }

        current = next;
        if current.is_empty() && attrs.is_empty() {
            break;
        }
    }

    for (e, m) in &current.els {
        sel.elements.insert((*e).to_string(), *m);
        if !*m {
            note(DependencySource::Structure, &mut dependency);
        }
    }
    for ((e, a), m) in &attrs {
        sel.attributes.insert((e.clone(), a.clone()), *m);
        if !*m {
            note(DependencySource::Structure, &mut dependency);
        }
    }
    sel.dependency = dependency;
    sel
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmlsec_dtd::parse_dtd;
    use xmlsec_xpath::parse_path;

    fn selection(dtd_src: &str, root: &str, path: &str) -> Selection {
        let dtd = parse_dtd(dtd_src).unwrap();
        let g = SchemaGraph::new(&dtd, root);
        let sel = select(&g, Some(&parse_path(path).unwrap()));
        // must ⊆ may by construction; sanity-check the may side against
        // the original coverage pass.
        let cov = crate::analysis::schema_coverage(&dtd, root, &parse_path(path).unwrap());
        let may: usize = sel.elements.len() + sel.attributes.len();
        assert_eq!(may, cov.len(), "{path}: may side must agree with schema_coverage");
        sel
    }

    const LAB: &str = r#"
        <!ELEMENT laboratory (project+)>
        <!ELEMENT project (manager, member*, paper*)>
        <!ELEMENT manager (#PCDATA)>
        <!ELEMENT member (#PCDATA)>
        <!ELEMENT paper (title)>
        <!ATTLIST paper category CDATA #REQUIRED>
        <!ELEMENT title (#PCDATA)>
    "#;

    #[test]
    fn rooted_chains_are_musts() {
        let s = selection(LAB, "laboratory", "/laboratory/project/paper");
        assert_eq!(s.elements.get("paper"), Some(&true));
        assert!(s.dependency.is_none());
        // Descendant from the absolute root: every node of the type.
        let s2 = selection(LAB, "laboratory", "//paper");
        assert_eq!(s2.elements.get("paper"), Some(&true));
        let s3 = selection(LAB, "laboratory", "//paper/@category");
        assert_eq!(s3.attributes.get(&("paper".into(), "category".into())), Some(&true));
    }

    #[test]
    fn predicates_demote_to_may() {
        let s = selection(LAB, "laboratory", r#"//paper[./@category="public"]"#);
        assert_eq!(s.elements.get("paper"), Some(&false));
        assert_eq!(s.dependency, Some(DependencySource::Predicate));
    }

    #[test]
    fn relative_start_and_parent_axis() {
        // Relative paths start at the document element, which is every
        // laboratory node (the type cannot nest).
        let s = selection(LAB, "laboratory", "project");
        assert_eq!(s.elements.get("project"), Some(&true));
        // Parent axis: only projects *with* a paper are selected.
        let s2 = selection(LAB, "laboratory", "//paper/..");
        assert_eq!(s2.elements.get("project"), Some(&false));
        assert_eq!(s2.dependency, Some(DependencySource::Structure));
    }

    #[test]
    fn descendant_must_uses_vertex_cut() {
        // Two routes to <shared>: via a and via b. Selecting all <a>
        // does not guarantee selecting all <shared>.
        let dtd = r#"
            <!ELEMENT doc (a, b)>
            <!ELEMENT a (shared?)>
            <!ELEMENT b (shared?)>
            <!ELEMENT shared (#PCDATA)>
        "#;
        let s = selection(dtd, "doc", "/doc/a//shared");
        assert_eq!(s.elements.get("shared"), Some(&false));
        // But every route to <only> passes through <a>.
        let dtd2 = r#"
            <!ELEMENT doc (a, b)>
            <!ELEMENT a (only?)>
            <!ELEMENT b (#PCDATA)>
            <!ELEMENT only (#PCDATA)>
        "#;
        let s2 = selection(dtd2, "doc", "/doc/a//only");
        assert_eq!(s2.elements.get("only"), Some(&true));
    }

    #[test]
    fn recursive_types_are_never_blanket_musts_from_one_level() {
        let dtd = "<!ELEMENT part (part*, label?)><!ELEMENT label (#PCDATA)>";
        // /part selects only the document element, not nested parts.
        let s = selection(dtd, "part", "/part");
        assert_eq!(s.elements.get("part"), Some(&false));
        // //part selects every part node.
        let s2 = selection(dtd, "part", "//part");
        assert_eq!(s2.elements.get("part"), Some(&true));
        // //label is every label (all routes pass through part... but the
        // absolute root guarantees it directly).
        let s3 = selection(dtd, "part", "//label");
        assert_eq!(s3.elements.get("label"), Some(&true));
    }

    #[test]
    fn whole_document_objects_select_the_document_element() {
        let dtd = parse_dtd(LAB).unwrap();
        let g = SchemaGraph::new(&dtd, "laboratory");
        let s = select(&g, None);
        assert_eq!(s.elements.get("laboratory"), Some(&true));
        let rec = parse_dtd("<!ELEMENT part (part*)>").unwrap();
        let g2 = SchemaGraph::new(&rec, "part");
        let s2 = select(&g2, None);
        assert_eq!(s2.elements.get("part"), Some(&false), "nested parts are not the document");
    }

    #[test]
    fn upward_axes_and_siblings_stay_may() {
        let s = selection(LAB, "laboratory", "//title/ancestor::paper");
        assert_eq!(s.elements.get("paper"), Some(&false));
        let s2 = selection(LAB, "laboratory", "//manager/following-sibling::member");
        assert_eq!(s2.elements.get("member"), Some(&false));
        // ancestor-or-self keeps the self part's must.
        let s3 = selection(LAB, "laboratory", "//paper/ancestor-or-self::paper");
        assert_eq!(s3.elements.get("paper"), Some(&true));
    }
}
