//! Static write-effect analysis: the abstract interpreter of the parent
//! module applied to the **update language** of [`crate::update`].
//!
//! Reads and writes share the labeling stack but not the grant rule: an
//! update op commits only on nodes whose final write sign is `+`
//! (completeness `ε`-openness never applies to writes), so verdicts here
//! are derived strictly — **guaranteed-writable** iff every possible
//! final sign is `+`, **guaranteed-denied** iff `+` is impossible,
//! **instance-dependent** otherwise.
//!
//! From the per-node cells, [`WriteTable`] derives one verdict per
//! `UpdateOp` *kind* at each schema node (set-text, set-attribute,
//! insert, delete, replace) by folding the op's dynamic check set —
//! e.g. a delete is guaranteed-writable only when the whole schema
//! subtree closure is, because `apply_updates` walks the concrete
//! subtree checking every element and attribute.
//!
//! [`classify_batch`] lifts this to whole op batches for the serving
//! tier's `POST /update` pre-flight. Soundness of a batch verdict rests
//! on two invariants of the document the batch will run against:
//! every element is declared with parent→child pairs that are schema
//! edges, and every attribute is declared — both implied by DTD
//! validity, which the server checks before trusting a verdict (the
//! [`WriteTable::blanket_allow`] short-circuit is the one verdict that
//! holds on *any* tree). A guaranteed-deny means the batch can never
//! commit; a guaranteed-allow means every authorization check passes, so
//! running the batch without write-labeling
//! ([`crate::update::apply_updates_preauthorized`]) behaves
//! byte-identically to the dynamic path.
//!
//! [`analyze_policy_writes`] is the whole-policy surface
//! (`xmlsec-cli analyze --writes`): per-subject write decision tables
//! plus findings — `write-only-region` (blind writes: writable but
//! unreadable), `unwritable-document` (no analyzed subject can ever
//! commit), `patch-amplification` (writes under a recursive element
//! statically force ancestor-chain relabels of every warm view).

use std::collections::{BTreeMap, BTreeSet};

use xmlsec_authz::{Action, AuthType, Authorization, Finding, PolicyConfig, Severity, Sign};
use xmlsec_dtd::Dtd;
use xmlsec_subjects::{Directory, Subject};

use super::absdom::SignSet;
use super::select::select;
use super::{applied_raw, cell_reason, verdict_of, AuthInfo, Verdict};
use crate::analysis::{SchemaGraph, SchemaNode};
use crate::label::Sign3;
use crate::update::UpdateOp;

/// Write verdicts for each update-op kind at one element declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WriteOps {
    /// `settext` targeting this element.
    pub set_text: Verdict,
    /// `insert`/`insertsub` with this element as the parent.
    pub insert: Verdict,
    /// `delete` targeting this element (folds the subtree closure).
    pub delete: Verdict,
    /// `replacesub` targeting this element (subtree closure + parents).
    pub replace: Verdict,
}

/// The write cell of one element declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WriteElementCell {
    /// Possible final write signs of nodes of this declaration.
    pub signs: SignSet,
    /// Node-level verdict: is a node of this declaration writable?
    pub node: Verdict,
    /// Per-op-kind verdicts derived from the node cells.
    pub ops: WriteOps,
}

/// The write cell of one attribute declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WriteAttributeCell {
    /// Possible final write signs of attributes of this declaration.
    pub signs: SignSet,
    /// Node-level verdict for the attribute itself.
    pub node: Verdict,
    /// `setattr` verdict: folds the attribute cell with its element's
    /// (the dynamic check authorizes the attribute node when present,
    /// else the element).
    pub set_attribute: Verdict,
}

/// The compiled write-effect table of one applicable authorization set.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WriteTable {
    /// Root element the schema graph was rooted at.
    pub root: String,
    /// One cell per reachable element declaration.
    pub elements: BTreeMap<String, WriteElementCell>,
    /// One cell per declared attribute of a reachable element, keyed
    /// `(element, attribute)`.
    pub attributes: BTreeMap<(String, String), WriteAttributeCell>,
    /// Every final write sign is `+` everywhere **and** a non-weak
    /// recursive whole-document authorization anchors the propagation:
    /// every batch is guaranteed-allow on any tree, valid or not.
    pub blanket_allow: bool,
    /// Every cell is guaranteed-denied: no batch by this requester can
    /// ever commit on a conforming document.
    pub unwritable: bool,
}

/// The pre-flight classification of one op batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BatchVerdict {
    /// Op `op` (0-based) is guaranteed to fail on every conforming
    /// instance — the batch can never commit. Reject without labeling.
    Deny {
        /// Index of the guaranteed-failing op.
        op: usize,
        /// Why the op is guaranteed to fail.
        reason: String,
    },
    /// Every authorization check of every op is guaranteed to pass:
    /// the batch may run without write-labeling, byte-identically.
    Allow,
    /// Neither guarantee holds; run the dynamic path.
    Dynamic,
}

impl BatchVerdict {
    /// Stable identifier used in telemetry labels.
    pub fn code(&self) -> &'static str {
        match self {
            BatchVerdict::Deny { .. } => "deny",
            BatchVerdict::Allow => "allow",
            BatchVerdict::Dynamic => "dynamic",
        }
    }
}

/// Strict write grant rule: a node is writable iff its final sign is
/// `+` — the completeness policy's `ε`-openness applies to reads only
/// (mirrors `apply_updates`' `final_sign(n) == Plus` check).
fn write_verdict(signs: SignSet, reason: impl FnOnce() -> String) -> Verdict {
    if signs == SignSet::singleton(Sign3::Plus) {
        Verdict::Allow
    } else if !signs.contains(Sign3::Plus) {
        Verdict::Deny
    } else {
        Verdict::Instance { reason: reason() }
    }
}

/// Builds the write-effect table for one applicable authorization set
/// (the same `(auth, is_schema_level)` pairs [`super::analyze_applicable`]
/// takes; non-`write` authorizations are filtered out here). Returns an
/// empty table when `root_element` is not declared.
pub(crate) fn write_table(
    dtd: &Dtd,
    root_element: &str,
    auths: &[(&Authorization, bool)],
    dir: &Directory,
    policy: PolicyConfig,
) -> WriteTable {
    let mut out = WriteTable { root: root_element.to_string(), ..WriteTable::default() };
    let Some(root) = dtd.elements.get_key_value(root_element).map(|(k, _)| k.as_str()) else {
        return out;
    };
    let g = SchemaGraph::new(dtd, root);
    let mut reachable: Vec<&str> = vec![g.root];
    reachable.extend(g.descendants(g.root));
    reachable.sort_unstable();
    reachable.dedup();

    let writes: Vec<(&Authorization, bool)> =
        auths.iter().copied().filter(|(a, _)| a.action == Action::Write).collect();
    let infos: Vec<AuthInfo<'_>> = writes
        .iter()
        .enumerate()
        .map(|(idx, &(auth, schema))| AuthInfo {
            idx,
            auth,
            schema,
            sel: select(&g, auth.object.path.as_ref()),
        })
        .collect();
    let raw = applied_raw(&g, &reachable, infos.iter().collect(), dir, policy);

    // Node-level verdicts first; op-level folds read them back.
    let node_verdict = |node: &SchemaNode| {
        let signs = raw.table[node];
        (signs, write_verdict(signs, || cell_reason(&g, &infos, None, dir, node)))
    };
    let mut el_nodes: BTreeMap<&str, Verdict> = BTreeMap::new();
    let mut at_nodes: BTreeMap<(&str, &str), Verdict> = BTreeMap::new();
    for &e in &reachable {
        el_nodes.insert(e, node_verdict(&SchemaNode::Element(e.to_string())).1);
        for def in dtd.attributes(e) {
            let node =
                SchemaNode::Attribute { element: e.to_string(), attribute: def.name.clone() };
            at_nodes.insert((e, def.name.as_str()), node_verdict(&node).1);
        }
    }

    // Greatest fixpoint: `closure_ok[e]` ⇔ every element of the schema
    // subtree closure {e} ∪ descendants(e) is guaranteed-writable along
    // with all its declared attributes — the precondition for a delete's
    // `check_subtree_writable` walk to be guaranteed to pass.
    let mut closure_ok: BTreeMap<&str, bool> = reachable
        .iter()
        .map(|&e| {
            let own = el_nodes[e] == Verdict::Allow
                && dtd.attributes(e).iter().all(|d| at_nodes[&(e, d.name.as_str())] == Verdict::Allow);
            (e, own)
        })
        .collect();
    loop {
        let mut changed = false;
        for &e in &reachable {
            if closure_ok[e] && g.kids(e).any(|k| !closure_ok.get(k).copied().unwrap_or(false)) {
                closure_ok.insert(e, false);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    for &e in &reachable {
        let node = SchemaNode::Element(e.to_string());
        let (signs, nv) = node_verdict(&node);
        let delete = if e == g.root {
            Verdict::Deny // the document element cannot be deleted
        } else if closure_ok[e] {
            Verdict::Allow
        } else if nv == Verdict::Deny {
            Verdict::Deny // the walk hits the denied target itself first
        } else {
            Verdict::Instance {
                reason: "the subtree closure contains cells that are not guaranteed-writable"
                    .to_string(),
            }
        };
        let replace = if e == g.root {
            Verdict::Deny // the document element cannot be replaced
        } else if closure_ok[e]
            && g.pars(e).all(|p| {
                // A declared-but-unreachable parent never occurs in a
                // conforming instance: vacuously writable.
                el_nodes.get(p).map_or(true, |v| *v == Verdict::Allow)
            })
        {
            Verdict::Allow
        } else if nv == Verdict::Deny {
            Verdict::Deny
        } else {
            Verdict::Instance {
                reason: "the subtree closure or a possible parent is not guaranteed-writable"
                    .to_string(),
            }
        };
        out.elements.insert(
            e.to_string(),
            WriteElementCell {
                signs,
                node: nv.clone(),
                ops: WriteOps { set_text: nv.clone(), insert: nv, delete, replace },
            },
        );
        for def in dtd.attributes(e) {
            let anode =
                SchemaNode::Attribute { element: e.to_string(), attribute: def.name.clone() };
            let (asigns, av) = node_verdict(&anode);
            let ev = &el_nodes[e];
            let set_attribute = match (&av, ev) {
                (Verdict::Allow, Verdict::Allow) => Verdict::Allow,
                (Verdict::Deny, Verdict::Deny) => Verdict::Deny,
                _ => Verdict::Instance {
                    reason: format!(
                        "the check point depends on whether the attribute exists (attribute cell {}, element cell {})",
                        av.code(),
                        ev.code()
                    ),
                },
            };
            out.attributes.insert(
                (e.to_string(), def.name.clone()),
                WriteAttributeCell { signs: asigns, node: av, set_attribute },
            );
        }
    }

    // Blanket allow: every possible sign everywhere is `+`, and a
    // non-weak recursive whole-document (no-path) write authorization
    // anchors it — on *any* tree, valid or not, the root gets `+` and
    // recursion carries it to every node, and no applicable write
    // authorization can introduce another sign.
    let all_plus = !out.elements.is_empty()
        && out
            .elements
            .values()
            .map(|c| c.signs)
            .chain(out.attributes.values().map(|c| c.signs))
            .all(|s| s == SignSet::singleton(Sign3::Plus));
    out.blanket_allow = all_plus
        && writes.iter().any(|(a, _)| {
            a.object.path.is_none() && a.ty == AuthType::Recursive && a.sign == Sign::Plus
        });
    out.unwritable = !out.elements.is_empty()
        && out.elements.values().all(|c| c.node == Verdict::Deny)
        && out.attributes.values().all(|c| c.node == Verdict::Deny);
    out
}

/// Folds may-selected cell verdicts into an op verdict.
struct Fold {
    any: bool,
    all_allow: bool,
    all_deny: bool,
    deny_at: Option<String>,
}

impl Fold {
    fn new() -> Self {
        Fold { any: false, all_allow: true, all_deny: true, deny_at: None }
    }

    fn add(&mut self, at: &str, v: &Verdict) {
        self.any = true;
        match v {
            Verdict::Allow => self.all_deny = false,
            Verdict::Deny => {
                self.all_allow = false;
                if self.deny_at.is_none() {
                    self.deny_at = Some(at.to_string());
                }
            }
            Verdict::Instance { .. } => {
                self.all_allow = false;
                self.all_deny = false;
            }
        }
    }
}

/// One op's contribution to the batch scan.
enum OpV {
    Allow,
    Deny(String),
    Unknown,
}

/// Classifies an op batch against a compiled write table in O(ops ×
/// schema). **Soundness contract:** except for the
/// [`WriteTable::blanket_allow`] short-circuit, verdicts assume the
/// target document is valid against `dtd` (the caller checks) — validity
/// is what confines instance nodes to the schema cells the table
/// abstracts. Ops that can de-conform the tree (subtree insert/replace,
/// undeclared attributes) end the guaranteed scan at the following op.
pub fn classify_batch(dtd: &Dtd, table: &WriteTable, ops: &[UpdateOp]) -> BatchVerdict {
    if table.blanket_allow {
        return BatchVerdict::Allow;
    }
    if ops.is_empty() || table.elements.is_empty() {
        return BatchVerdict::Dynamic;
    }
    let Some(root) = dtd.elements.get_key_value(&table.root).map(|(k, _)| k.as_str()) else {
        return BatchVerdict::Dynamic;
    };
    let g = SchemaGraph::new(dtd, root);

    // Conformance flag: while true, the document the op runs against is
    // known to satisfy the two invariants the cells assume (declared
    // elements on schema edges, declared attributes) whenever the
    // preceding ops succeeded. An earlier op failing also aborts the
    // batch, so a later guaranteed-deny stays sound either way.
    let mut conformant = true;
    let mut all_allow = true;
    for (i, op) in ops.iter().enumerate() {
        if !conformant {
            return BatchVerdict::Dynamic;
        }
        let (v, keeps) = op_verdict(&g, dtd, table, op);
        match v {
            OpV::Deny(reason) => return BatchVerdict::Deny { op: i, reason },
            OpV::Allow => {}
            OpV::Unknown => all_allow = false,
        }
        conformant = keeps;
    }
    if all_allow {
        BatchVerdict::Allow
    } else {
        BatchVerdict::Dynamic
    }
}

/// Classifies one op. Returns the verdict and whether a *successful*
/// run of the op is guaranteed to preserve the conformance invariants.
fn op_verdict(
    g: &SchemaGraph<'_>,
    dtd: &Dtd,
    table: &WriteTable,
    op: &UpdateOp,
) -> (OpV, bool) {
    let path = match op {
        UpdateOp::SetText { target, .. }
        | UpdateOp::SetAttribute { target, .. }
        | UpdateOp::ReplaceSubtree { target, .. }
        | UpdateOp::Delete { target } => target,
        UpdateOp::InsertElement { parent, .. } | UpdateOp::InsertSubtree { parent, .. } => parent,
    };
    let parsed = match xmlsec_xpath::parse_path(path) {
        Ok(p) => p,
        Err(e) => return (OpV::Deny(format!("bad path {path:?}: {e}")), true),
    };
    let sel = select(g, Some(&parsed));
    if sel.is_dead() {
        // No conforming instance has such a node: guaranteed NoSuchNode.
        return (
            OpV::Deny(format!("path {path:?} selects no node of any document valid against the DTD")),
            true,
        );
    }

    // Fold the may-selected cells relevant to this op kind. Targets of
    // the wrong node kind (e.g. an attribute under `settext`) fail with
    // the same label-independent error on both paths, so they count
    // toward deny (guaranteed error) and are vacuous for allow.
    let mut fold = Fold::new();
    let may_els = || sel.elements.keys();
    let may_attrs = || sel.attributes.keys();
    let cell = |e: &String| table.elements.get(e);
    let (v, keeps) = match op {
        UpdateOp::SetText { .. } => {
            for e in may_els() {
                if let Some(c) = cell(e) {
                    fold.add(e, &c.ops.set_text);
                }
            }
            let wrong_kind_only = !fold.any && may_attrs().next().is_some();
            (finish(fold, wrong_kind_only), true)
        }
        UpdateOp::SetAttribute { name, .. } => {
            let mut keeps = true;
            for e in may_els() {
                let declared = dtd.attributes(e).iter().any(|d| &d.name == name);
                if !declared {
                    // A successful set creates an undeclared attribute;
                    // the check point is the element (none can exist).
                    keeps = false;
                    if let Some(c) = cell(e) {
                        fold.add(e, &c.node);
                    }
                } else if let Some(c) = table.attributes.get(&(e.clone(), name.clone())) {
                    fold.add(e, &c.set_attribute);
                }
            }
            let wrong_kind_only = !fold.any && may_attrs().next().is_some();
            (finish(fold, wrong_kind_only), keeps)
        }
        UpdateOp::InsertElement { name, .. } => {
            let mut keeps = true;
            for e in may_els() {
                if !dtd.elements.contains_key(name) || !g.kids(e).any(|k| k == name.as_str()) {
                    keeps = false; // inserts off the schema edges
                }
                if let Some(c) = cell(e) {
                    fold.add(e, &c.ops.insert);
                }
            }
            let wrong_kind_only = !fold.any && may_attrs().next().is_some();
            (finish(fold, wrong_kind_only), keeps)
        }
        UpdateOp::InsertSubtree { .. } => {
            for e in may_els() {
                if let Some(c) = cell(e) {
                    fold.add(e, &c.ops.insert);
                }
            }
            let wrong_kind_only = !fold.any && may_attrs().next().is_some();
            (finish(fold, wrong_kind_only), false)
        }
        UpdateOp::ReplaceSubtree { .. } => {
            for e in may_els() {
                if let Some(c) = cell(e) {
                    fold.add(e, &c.ops.replace);
                }
            }
            let wrong_kind_only = !fold.any && may_attrs().next().is_some();
            (finish(fold, wrong_kind_only), false)
        }
        UpdateOp::Delete { .. } => {
            for e in may_els() {
                if let Some(c) = cell(e) {
                    fold.add(e, &c.ops.delete);
                }
            }
            for (e, a) in may_attrs() {
                if let Some(c) = table.attributes.get(&(e.clone(), a.clone())) {
                    fold.add(&format!("{e}/@{a}"), &c.node);
                }
            }
            (finish(fold, false), true)
        }
    };
    (v, keeps)
}

/// Turns a fold into an op verdict. `wrong_kind_only` marks selections
/// whose every possible target fails a kind check before any grant
/// check — a guaranteed, label-independent error.
fn finish(fold: Fold, wrong_kind_only: bool) -> OpV {
    if !fold.any {
        if wrong_kind_only {
            return OpV::Deny("every possible target has the wrong node kind for this op".into());
        }
        // Selection touches cells outside the table (unreachable
        // declarations): no conforming instance has them.
        return OpV::Deny("the path selects no reachable declaration".into());
    }
    if fold.all_deny {
        let at = fold.deny_at.unwrap_or_default();
        OpV::Deny(format!("every node the path can select is guaranteed write-denied (e.g. at <{at}>)"))
    } else if fold.all_allow {
        OpV::Allow
    } else {
        OpV::Unknown
    }
}

/// One cell of a subject's write decision table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WriteCell {
    /// The schema node the cell decides.
    pub node: SchemaNode,
    /// Possible final write signs (display form).
    pub signs: String,
    /// Node-level write verdict.
    pub write: Verdict,
    /// Per-op-kind verdicts, as `(op name, verdict)` rows.
    pub ops: Vec<(&'static str, Verdict)>,
}

/// The write decision table of one subject.
#[derive(Debug, Clone)]
pub struct SubjectWriteTable {
    /// The subject analyzed.
    pub subject: Subject,
    /// Whether every batch by this subject is guaranteed-allow.
    pub blanket_allow: bool,
    /// One cell per reachable schema node, in [`SchemaNode`] order.
    pub cells: Vec<WriteCell>,
}

/// The result of a whole-policy write-effect analysis.
#[derive(Debug, Clone)]
pub struct WriteReport {
    /// Root element the schema graph was rooted at.
    pub root: String,
    /// One write table per analyzed subject.
    pub subjects: Vec<SubjectWriteTable>,
    /// Whole-policy findings (write-only-region, unwritable-document,
    /// patch-amplification).
    pub findings: Vec<Finding>,
    /// Non-`write` authorizations excluded from the tables.
    pub skipped_non_write: usize,
}

/// Runs the whole-policy write-effect analysis: per-subject write
/// decision tables plus findings. `dtd_uri` classifies schema-level
/// authorizations exactly as [`super::analyze_policy`] does.
pub fn analyze_policy_writes(
    dtd: &Dtd,
    root_element: &str,
    dtd_uri: &str,
    auths: &[Authorization],
    dir: &Directory,
    policy: PolicyConfig,
    subjects: &[Subject],
) -> WriteReport {
    let mut report = WriteReport {
        root: root_element.to_string(),
        subjects: Vec::new(),
        findings: Vec::new(),
        skipped_non_write: auths.iter().filter(|a| a.action != Action::Write).count(),
    };
    let Some(root) = dtd.elements.get_key_value(root_element).map(|(k, _)| k.as_str()) else {
        report.findings.push(Finding::new(
            Severity::Error,
            "unknown-root",
            format!("root element {root_element:?} is not declared in the DTD"),
        ));
        return report;
    };
    let g = SchemaGraph::new(dtd, root);
    let mut reachable: Vec<&str> = vec![g.root];
    reachable.extend(g.descendants(g.root));
    reachable.sort_unstable();
    reachable.dedup();

    let pairs: Vec<(&Authorization, bool)> = auths
        .iter()
        .map(|a| (a, a.object.uri == dtd_uri || a.object.uri.ends_with(".dtd")))
        .collect();

    // Read-side sign tables (for write-only-region): the parent module's
    // machinery over the read-filtered authorizations.
    let read_infos: Vec<AuthInfo<'_>> = pairs
        .iter()
        .enumerate()
        .filter(|(_, (a, _))| a.action == Action::Read)
        .map(|(idx, &(auth, schema))| AuthInfo {
            idx,
            auth,
            schema,
            sel: select(&g, auth.object.path.as_ref()),
        })
        .collect();

    // Elements lying under (or at) a recursive declaration: a write
    // there dirties a subtree whose ancestor chain every warm view must
    // relabel, and recursion makes the amplified region unbounded.
    let cyclic: BTreeSet<&str> =
        reachable.iter().copied().filter(|&e| g.descendants(e).contains(e)).collect();

    for s in subjects {
        let applicable: Vec<(&Authorization, bool)> =
            pairs.iter().copied().filter(|(a, _)| s.leq(&a.subject, dir)).collect();
        let table = write_table(dtd, root_element, &applicable, dir, policy);

        let read_applicable: Vec<&AuthInfo<'_>> =
            read_infos.iter().filter(|i| s.leq(&i.auth.subject, dir)).collect();
        let read_raw = applied_raw(&g, &reachable, read_applicable, dir, policy);

        let mut cells: BTreeMap<SchemaNode, WriteCell> = BTreeMap::new();
        for (e, c) in &table.elements {
            let node = SchemaNode::Element(e.clone());
            cells.insert(
                node.clone(),
                WriteCell {
                    node,
                    signs: c.signs.to_string(),
                    write: c.node.clone(),
                    ops: vec![
                        ("settext", c.ops.set_text.clone()),
                        ("insert", c.ops.insert.clone()),
                        ("delete", c.ops.delete.clone()),
                        ("replace", c.ops.replace.clone()),
                    ],
                },
            );
        }
        for ((e, a), c) in &table.attributes {
            let node = SchemaNode::Attribute { element: e.clone(), attribute: a.clone() };
            cells.insert(
                node.clone(),
                WriteCell {
                    node,
                    signs: c.signs.to_string(),
                    write: c.node.clone(),
                    ops: vec![
                        ("setattr", c.set_attribute.clone()),
                        ("delete", c.node.clone()),
                    ],
                },
            );
        }

        // Finding: write-only-region — guaranteed-writable nodes the
        // subject is guaranteed *not* to read (blind writes).
        for (node, cell) in &cells {
            if cell.write != Verdict::Allow {
                continue;
            }
            let read_signs = read_raw.table[node];
            if verdict_of(policy, read_signs, String::new) == Verdict::Deny {
                report.findings.push(
                    Finding::new(
                        Severity::Warning,
                        "write-only-region",
                        "guaranteed-writable but guaranteed-unreadable: the subject can blind-write nodes it can never see in its view",
                    )
                    .with_node(node.to_string())
                    .with_subject(s.to_string()),
                );
            }
        }

        // Finding: patch-amplification — writable nodes on or under a
        // recursive declaration.
        let amplified: Vec<&str> = table
            .elements
            .iter()
            .filter(|(e, c)| {
                c.node != Verdict::Deny
                    && (cyclic.contains(e.as_str())
                        || g.ancestors(e).iter().any(|a| cyclic.contains(a)))
            })
            .map(|(e, _)| e.as_str())
            .collect();
        if let Some(&first) = amplified.first() {
            let shown: Vec<&str> = amplified.iter().copied().take(3).collect();
            report.findings.push(
                Finding::new(
                    Severity::Info,
                    "patch-amplification",
                    format!(
                        "{} writable element declaration(s) sit on or under a recursive cycle ({}): every committed write there relabels an unbounded ancestor chain in each warm cached view",
                        amplified.len(),
                        shown.join(", "),
                    ),
                )
                .with_node(SchemaNode::Element(first.to_string()).to_string())
                .with_subject(s.to_string()),
            );
        }

        report.subjects.push(SubjectWriteTable {
            subject: s.clone(),
            blanket_allow: table.blanket_allow,
            cells: cells.into_values().collect(),
        });
    }

    // Finding: unwritable-document — no analyzed subject can ever
    // commit any batch.
    if !report.subjects.is_empty()
        && report
            .subjects
            .iter()
            .all(|t| !t.cells.is_empty() && t.cells.iter().all(|c| c.write == Verdict::Deny))
    {
        report.findings.push(Finding::new(
            Severity::Warning,
            "unwritable-document",
            "every write cell of every analyzed subject is guaranteed-deny: no update batch can ever commit on documents of this DTD",
        ));
    }

    report.findings.sort_by_key(|f| f.severity);
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmlsec_authz::ObjectSpec;

    fn dtd(src: &str) -> Dtd {
        xmlsec_dtd::parse_dtd(src).expect("test DTD parses")
    }

    fn auth(sub: &str, uri: &str, path: Option<&str>, sign: Sign, ty: AuthType) -> Authorization {
        let spec = match path {
            Some(p) => format!("{uri}:{p}"),
            None => uri.to_string(),
        };
        Authorization::new(
            Subject::new(sub, "*", "*").unwrap(),
            ObjectSpec::parse(&spec).unwrap(),
            sign,
            ty,
        )
        .with_action(Action::Write)
    }

    const DTD: &str = r#"
        <!ELEMENT doc (meta, sec*)>
        <!ELEMENT meta (#PCDATA)>
        <!ATTLIST meta owner CDATA #IMPLIED>
        <!ELEMENT sec (title, sec*)>
        <!ELEMENT title (#PCDATA)>
    "#;

    fn table_for(auths: &[Authorization]) -> WriteTable {
        let d = dtd(DTD);
        let dir = Directory::default();
        let pairs: Vec<(&Authorization, bool)> = auths.iter().map(|a| (a, false)).collect();
        write_table(&d, "doc", &pairs, &dir, PolicyConfig::default())
    }

    #[test]
    fn whole_doc_recursive_plus_is_blanket_allow() {
        let auths = vec![auth("tom", "d.xml", None, Sign::Plus, AuthType::Recursive)];
        let t = table_for(&auths);
        assert!(t.blanket_allow);
        assert!(!t.unwritable);
        assert!(t.elements.values().all(|c| c.node == Verdict::Allow));
        let d = dtd(DTD);
        let ops = vec![UpdateOp::Delete { target: "/doc".into() }];
        assert_eq!(classify_batch(&d, &t, &ops), BatchVerdict::Allow);
    }

    #[test]
    fn no_write_auths_is_unwritable() {
        let t = table_for(&[]);
        assert!(t.unwritable);
        assert!(!t.blanket_allow);
        let d = dtd(DTD);
        let ops = vec![UpdateOp::SetText { target: "/doc/meta".into(), text: "x".into() }];
        match classify_batch(&d, &t, &ops) {
            BatchVerdict::Deny { op: 0, .. } => {}
            v => panic!("expected deny, got {v:?}"),
        }
    }

    /// A declaration that is unreachable from the chosen root may still
    /// name reachable elements as children; the replace verdict's
    /// possible-parent walk must skip it, not panic on a missing cell.
    #[test]
    fn unreachable_parent_declaration_does_not_panic() {
        const ORPHAN_DTD: &str = r#"
            <!ELEMENT doc (meta)>
            <!ELEMENT meta (#PCDATA)>
            <!ELEMENT orphan (meta)>
        "#;
        let auths = vec![auth("tom", "d.xml", None, Sign::Plus, AuthType::Recursive)];
        let d = dtd(ORPHAN_DTD);
        let dir = Directory::default();
        let pairs: Vec<(&Authorization, bool)> = auths.iter().map(|a| (a, false)).collect();
        let t = write_table(&d, "doc", &pairs, &dir, PolicyConfig::default());
        assert!(!t.elements.contains_key("orphan"));
        assert_eq!(t.elements["meta"].ops.replace, Verdict::Allow);
    }

    /// Like [`DTD`] but without the recursive `sec` cycle, so a path
    /// grant on `/doc/sec` is a must-selection of every `sec`.
    const FLAT_DTD: &str = r#"
        <!ELEMENT doc (meta, sec*)>
        <!ELEMENT meta (#PCDATA)>
        <!ATTLIST meta owner CDATA #IMPLIED>
        <!ELEMENT sec (title)>
        <!ELEMENT title (#PCDATA)>
    "#;

    #[test]
    fn subtree_grant_allows_inside_denies_outside() {
        // Writes granted recursively under sec; nothing else.
        let auths = vec![auth("tom", "d.xml", Some("/doc/sec"), Sign::Plus, AuthType::Recursive)];
        let d = dtd(FLAT_DTD);
        let dir = Directory::default();
        let pairs: Vec<(&Authorization, bool)> = auths.iter().map(|a| (a, false)).collect();
        let t = write_table(&d, "doc", &pairs, &dir, PolicyConfig::default());
        assert!(!t.blanket_allow);
        // meta is untouched by the grant: guaranteed deny.
        let deny = vec![UpdateOp::SetText { target: "/doc/meta".into(), text: "x".into() }];
        match classify_batch(&d, &t, &deny) {
            BatchVerdict::Deny { op: 0, .. } => {}
            v => panic!("expected deny, got {v:?}"),
        }
        // title under the grant: guaranteed allow.
        let allow = vec![UpdateOp::SetText { target: "/doc/sec/title".into(), text: "x".into() }];
        assert_eq!(classify_batch(&d, &t, &allow), BatchVerdict::Allow);
        // Deleting sec needs the whole closure: sec/title are writable,
        // so the closure folds to allow.
        let del = vec![UpdateOp::Delete { target: "/doc/sec".into() }];
        assert_eq!(classify_batch(&d, &t, &del), BatchVerdict::Allow);
        // Replacing sec needs the parent (doc), which is not granted:
        // the doc cell is ε (deny), so replace is instance-or-deny, and
        // the batch stays off the guaranteed paths.
        let rep = vec![UpdateOp::ReplaceSubtree {
            target: "/doc/sec".into(),
            xml: "<sec><title>t</title></sec>".into(),
        }];
        assert_ne!(classify_batch(&d, &t, &rep), BatchVerdict::Allow);
    }

    #[test]
    fn recursive_may_selection_stays_off_the_guaranteed_paths() {
        // Under the recursive DTD, `/doc/sec` may-selects the nested
        // `sec` declarations: the abstraction must not promise allow.
        let auths = vec![auth("tom", "d.xml", Some("/doc/sec"), Sign::Plus, AuthType::Recursive)];
        let t = table_for(&auths);
        let d = dtd(DTD);
        let ops = vec![UpdateOp::SetText { target: "/doc/sec/title".into(), text: "x".into() }];
        assert_eq!(classify_batch(&d, &t, &ops), BatchVerdict::Dynamic);
    }

    #[test]
    fn root_delete_is_denied() {
        let auths = vec![auth("tom", "d.xml", Some("/doc"), Sign::Plus, AuthType::Recursive)];
        let t = table_for(&auths);
        assert_eq!(t.elements["doc"].ops.delete, Verdict::Deny);
        let d = dtd(DTD);
        let ops = vec![UpdateOp::Delete { target: "/doc".into() }];
        match classify_batch(&d, &t, &ops) {
            BatchVerdict::Deny { op: 0, .. } => {}
            v => panic!("expected deny, got {v:?}"),
        }
    }

    #[test]
    fn bad_and_dead_paths_are_guaranteed_denies() {
        let auths = vec![auth("tom", "d.xml", None, Sign::Plus, AuthType::Local)];
        let t = table_for(&auths);
        let d = dtd(DTD);
        let bad = vec![UpdateOp::SetText { target: "/doc//".into(), text: "x".into() }];
        assert!(matches!(classify_batch(&d, &t, &bad), BatchVerdict::Deny { op: 0, .. }));
        let dead = vec![UpdateOp::SetText { target: "/doc/nosuch".into(), text: "x".into() }];
        assert!(matches!(classify_batch(&d, &t, &dead), BatchVerdict::Deny { op: 0, .. }));
    }

    #[test]
    fn deconforming_op_ends_the_guaranteed_scan() {
        let auths = vec![auth("tom", "d.xml", None, Sign::Plus, AuthType::Recursive)];
        let mut t = table_for(&auths);
        t.blanket_allow = false; // force the per-op scan
        let d = dtd(DTD);
        // insertsub can take the tree anywhere; the op after it cannot
        // be judged.
        let ops = vec![
            UpdateOp::InsertSubtree { parent: "/doc/sec".into(), xml: "<weird/>".into() },
            UpdateOp::SetText { target: "/doc/meta".into(), text: "x".into() },
        ];
        assert_eq!(classify_batch(&d, &t, &ops), BatchVerdict::Dynamic);
        // ...but the de-conforming op itself still folds.
        let one = vec![UpdateOp::InsertSubtree { parent: "/doc/sec".into(), xml: "<weird/>".into() }];
        assert_eq!(classify_batch(&d, &t, &one), BatchVerdict::Allow);
    }

    #[test]
    fn undeclared_setattr_checks_the_element_and_deconforms() {
        let auths = vec![auth("tom", "d.xml", None, Sign::Plus, AuthType::Recursive)];
        let mut t = table_for(&auths);
        t.blanket_allow = false;
        let d = dtd(DTD);
        let ops = vec![
            UpdateOp::SetAttribute { target: "/doc/meta".into(), name: "nope".into(), value: "v".into() },
            UpdateOp::SetText { target: "/doc/meta".into(), text: "x".into() },
        ];
        // First op is allow (element cell +), but the follow-up cannot
        // be judged once an undeclared attribute may exist.
        assert_eq!(classify_batch(&d, &t, &ops), BatchVerdict::Dynamic);
        assert_eq!(classify_batch(&d, &t, &ops[..1]), BatchVerdict::Allow);
    }

    #[test]
    fn policy_writes_report_finds_blind_writes_and_amplification() {
        let d = dtd(DTD);
        let dir = Directory::default();
        // tom: write everywhere, read nowhere.
        let auths = vec![auth("tom", "d.xml", None, Sign::Plus, AuthType::Recursive)];
        let subjects = vec![Subject::new("tom", "*", "*").unwrap()];
        let r = analyze_policy_writes(
            &d,
            "doc",
            "d.dtd",
            &auths,
            &dir,
            PolicyConfig::default(),
            &subjects,
        );
        assert_eq!(r.skipped_non_write, 0);
        assert!(r.findings.iter().any(|f| f.kind == "write-only-region"));
        // sec is recursive: the amplification finding fires.
        assert!(r.findings.iter().any(|f| f.kind == "patch-amplification"));
        assert!(r.subjects[0].blanket_allow);
    }

    #[test]
    fn unwritable_document_finding_fires_without_write_auths() {
        let d = dtd(DTD);
        let dir = Directory::default();
        let mut read = auth("tom", "d.xml", None, Sign::Plus, AuthType::Recursive);
        read.action = Action::Read;
        let subjects = vec![Subject::new("tom", "*", "*").unwrap()];
        let r = analyze_policy_writes(
            &d,
            "doc",
            "d.dtd",
            &[read],
            &dir,
            PolicyConfig::default(),
            &subjects,
        );
        assert_eq!(r.skipped_non_write, 1);
        assert!(r.findings.iter().any(|f| f.kind == "unwritable-document"));
    }
}
