//! Whole-policy static analyzer: abstract interpretation of
//! `compute-view` over the DTD graph (no document required).
//!
//! For every schema node (element or attribute declaration) × every
//! analyzed subject, the analyzer runs the paper's full labeling stack —
//! initial 6-tuple from applicable authorizations, conflict resolution,
//! preorder propagation, `first_def` collapse, completeness policy —
//! over *sets of possible signs* ([`absdom::SignSet`]) instead of signs,
//! with may/must selection of schema nodes ([`select`]) in place of
//! per-document path evaluation. Each cell gets a verdict:
//!
//! - **guaranteed-allow** / **guaranteed-deny**: on every conforming
//!   instance, every node of that declaration resolves to that access
//!   decision for the subject;
//! - **instance-dependent**: the decision can differ between instances
//!   (or between nodes of one instance), with the source of the
//!   dependency named (a predicate, optional content, an upward axis).
//!
//! Soundness direction: selection may-sets over-approximate, must-sets
//! under-approximate, and every abstract operator over-approximates its
//! concrete counterpart pointwise — so a *guaranteed* verdict is
//! trustworthy, while "instance-dependent" is conservative. The
//! differential suite pins the guaranteed cells against the real
//! [`crate::view::label_document`] on generated instances.
//!
//! On top of the decision tables, [`analyze_policy`] derives
//! whole-policy findings no per-rule lint can see: empty-view subjects,
//! context-stripped exposure (the §6.3 structure-preservation hazard),
//! rules shadowed by conflict resolution, and conflicts reachable only
//! through overlapping subject patterns.

pub mod absdom;
pub mod select;
pub mod write;

use crate::analysis::SchemaGraph;
use crate::label::Sign3;
use absdom::{afd, AbsLabel, SignSet};
use select::{select, DependencySource, Selection};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use xmlsec_authz::policy::resolve_sign;
use xmlsec_authz::{
    Action, AuthType, Authorization, CompletenessPolicy, Finding, PolicyConfig, Severity,
};
use xmlsec_dtd::Dtd;
use xmlsec_subjects::{Directory, PrincipalKind, Subject};

use crate::analysis::SchemaNode;

/// The verdict of one decision-table cell.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// Access is granted on every conforming instance.
    Allow,
    /// Access is denied on every conforming instance.
    Deny,
    /// The decision varies with the instance; `reason` names the source.
    Instance {
        /// What makes the cell instance-dependent.
        reason: String,
    },
}

impl Verdict {
    /// Stable identifier used in JSON output.
    pub fn code(&self) -> &'static str {
        match self {
            Verdict::Allow => "allow",
            Verdict::Deny => "deny",
            Verdict::Instance { .. } => "instance-dependent",
        }
    }

    /// `true` for the two guaranteed verdicts.
    pub fn is_guaranteed(&self) -> bool {
        !matches!(self, Verdict::Instance { .. })
    }
}

/// One cell of a subject's decision table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cell {
    /// The schema node the cell decides.
    pub node: SchemaNode,
    /// Possible final signs (display form, e.g. `+` or `+|ε`).
    pub signs: String,
    /// The verdict.
    pub verdict: Verdict,
}

/// The full decision table of one subject.
#[derive(Debug, Clone)]
pub struct SubjectTable {
    /// The subject analyzed.
    pub subject: Subject,
    /// One cell per reachable schema node, in [`SchemaNode`] order.
    pub cells: Vec<Cell>,
}

/// The result of a whole-policy analysis.
#[derive(Debug, Clone)]
pub struct PolicyReport {
    /// Root element the schema graph was rooted at.
    pub root: String,
    /// One table per analyzed subject.
    pub subjects: Vec<SubjectTable>,
    /// Whole-policy findings (empty-view, context-stripped,
    /// shadowed-by-resolution, overlap-conflict).
    pub findings: Vec<Finding>,
    /// Non-`read` authorizations excluded from the tables (the view
    /// algorithm is a read-access semantics).
    pub skipped_non_read: usize,
}

/// Above this many optional (may-selected) authorizations in one bucket
/// the analyzer stops enumerating subsets and widens to ⊤.
const MAY_CAP: usize = 10;

/// Cap on [`closure_subjects`] output.
const CLOSURE_CAP: usize = 48;

/// The subjects "relevant closure" of an authorization base: every
/// subject named by an authorization, plus — for each of them — the
/// directory users it dominates, placed at the authorization's location
/// patterns (the concrete requesters the rule can actually cover).
/// Deduplicated, capped at a small bound to keep tables readable.
pub fn closure_subjects(auths: &[Authorization], dir: &Directory) -> Vec<Subject> {
    let mut out: Vec<Subject> = Vec::new();
    let mut seen: BTreeSet<String> = BTreeSet::new();
    let push = |s: Subject, out: &mut Vec<Subject>, seen: &mut BTreeSet<String>| {
        if out.len() < CLOSURE_CAP && seen.insert(s.to_string()) {
            out.push(s);
        }
    };
    for a in auths {
        push(a.subject.clone(), &mut out, &mut seen);
    }
    let users: Vec<String> = dir
        .principals()
        .filter(|(_, k)| *k == PrincipalKind::User)
        .map(|(p, _)| p.to_string())
        .collect();
    for a in auths {
        for u in &users {
            if u != &a.subject.user_group && dir.dominates(u, &a.subject.user_group) {
                let s = Subject {
                    user_group: u.clone(),
                    ip: a.subject.ip.clone(),
                    sym: a.subject.sym.clone(),
                };
                push(s, &mut out, &mut seen);
            }
        }
    }
    out
}

/// One analyzed authorization: its global index, schema/instance
/// classification, and schema-node selection.
struct AuthInfo<'a> {
    /// Index into the caller's slice (used in findings).
    idx: usize,
    auth: &'a Authorization,
    /// `true` for DTD-level authorizations.
    schema: bool,
    sel: Selection,
}

/// Membership of an authorization's selection at one node.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Membership {
    No,
    May,
    Must,
}

impl AuthInfo<'_> {
    fn element_membership(&self, e: &str) -> Membership {
        match self.sel.elements.get(e) {
            None => Membership::No,
            Some(true) => Membership::Must,
            Some(false) => Membership::May,
        }
    }

    fn attribute_membership(&self, e: &str, a: &str) -> Membership {
        match self.sel.attributes.get(&(e.to_string(), a.to_string())) {
            None => Membership::No,
            Some(true) => Membership::Must,
            Some(false) => Membership::May,
        }
    }
}

/// Label-component classes an authorization feeds, mirroring
/// `resolve_with` in the view engine (weak folds into strong at the
/// schema level; recursion folds into local on attributes).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
enum Class {
    L,
    R,
    Lw,
    Rw,
    Ld,
    Rd,
}

fn element_class(info: &AuthInfo<'_>) -> Class {
    if info.schema {
        if info.auth.ty.is_recursive() {
            Class::Rd
        } else {
            Class::Ld
        }
    } else {
        match info.auth.ty {
            AuthType::Local => Class::L,
            AuthType::Recursive => Class::R,
            AuthType::LocalWeak => Class::Lw,
            AuthType::RecursiveWeak => Class::Rw,
        }
    }
}

fn attribute_class(info: &AuthInfo<'_>) -> Class {
    if info.schema {
        Class::Ld
    } else {
        match info.auth.ty {
            AuthType::Local | AuthType::Recursive => Class::L,
            AuthType::LocalWeak | AuthType::RecursiveWeak => Class::Lw,
        }
    }
}

/// Abstract bucket resolution: the set of signs `resolve_sign` can
/// produce when the bucket is the must-set plus any subset of the
/// may-set. Widens to ⊤ past [`MAY_CAP`] optional members.
fn bucket_signs(
    must: &[&Authorization],
    may: &[&Authorization],
    dir: &Directory,
    policy: PolicyConfig,
) -> SignSet {
    if may.is_empty() {
        return SignSet::singleton(resolve_sign(must, dir, policy.conflict).into());
    }
    if may.len() > MAY_CAP {
        return SignSet::TOP;
    }
    let mut out = SignSet::EMPTY;
    let mut bucket: Vec<&Authorization> = Vec::with_capacity(must.len() + may.len());
    for choice in 0u32..(1u32 << may.len()) {
        bucket.clear();
        bucket.extend_from_slice(must);
        for (j, a) in may.iter().enumerate() {
            if (choice >> j) & 1 == 1 {
                bucket.push(a);
            }
        }
        out.insert(resolve_sign(&bucket, dir, policy.conflict).into());
    }
    out
}

/// Per-subject working state: the applicable authorizations and a memo
/// of resolved buckets keyed by `(class, must ids, may ids)`.
struct SubjectCtx<'a, 'b> {
    applicable: Vec<&'b AuthInfo<'a>>,
    dir: &'a Directory,
    policy: PolicyConfig,
    memo: HashMap<(Class, Vec<usize>, Vec<usize>), SignSet>,
}

impl<'a, 'b> SubjectCtx<'a, 'b> {
    fn class_signs(
        &mut self,
        class: Class,
        membership: impl Fn(&AuthInfo<'a>) -> Membership,
        class_of: impl Fn(&AuthInfo<'a>) -> Class,
    ) -> SignSet {
        let mut must_ids = Vec::new();
        let mut may_ids = Vec::new();
        let mut must = Vec::new();
        let mut may = Vec::new();
        for info in &self.applicable {
            if class_of(info) != class {
                continue;
            }
            match membership(info) {
                Membership::No => {}
                Membership::Must => {
                    must_ids.push(info.idx);
                    must.push(info.auth);
                }
                Membership::May => {
                    may_ids.push(info.idx);
                    may.push(info.auth);
                }
            }
        }
        let key = (class, must_ids, may_ids);
        if let Some(&s) = self.memo.get(&key) {
            return s;
        }
        let s = bucket_signs(&must, &may, self.dir, self.policy);
        self.memo.insert(key, s);
        s
    }

    /// The pre-propagation abstract label of element `e`.
    fn own_element_label(&mut self, e: &str) -> AbsLabel {
        let classes = [Class::L, Class::R, Class::Ld, Class::Rd, Class::Lw, Class::Rw];
        let mut lab = AbsLabel::BOTTOM;
        for class in classes {
            let s = self.class_signs(class, |i| i.element_membership(e), element_class);
            match class {
                Class::L => lab.l = s,
                Class::R => lab.r = s,
                Class::Ld => lab.ld = s,
                Class::Rd => lab.rd = s,
                Class::Lw => lab.lw = s,
                Class::Rw => lab.rw = s,
            }
        }
        lab
    }

    /// The own (local) abstract components of attribute `(e, a)`:
    /// `r`/`rw`/`rd` are structurally `ε` on leaves.
    fn own_attribute_label(&mut self, e: &str, a: &str) -> AbsLabel {
        let mut lab = AbsLabel::BOTTOM;
        lab.l = self.class_signs(Class::L, |i| i.attribute_membership(e, a), attribute_class);
        lab.lw = self.class_signs(Class::Lw, |i| i.attribute_membership(e, a), attribute_class);
        lab.ld = self.class_signs(Class::Ld, |i| i.attribute_membership(e, a), attribute_class);
        lab.r = SignSet::EPS;
        lab.rw = SignSet::EPS;
        lab.rd = SignSet::EPS;
        lab
    }
}

/// Abstract `label_element` propagation: `own` components plus the join
/// `j` of all possible parent labels.
fn propagate(own: AbsLabel, j: AbsLabel) -> AbsLabel {
    let keep_r = {
        // Keeping happens when own R or own RW is defined; the kept R is
        // own.r — which can be ε only when own.rw supplied the defined
        // sign.
        let mut s = own.r.def_part();
        if own.r.contains(Sign3::Eps) && own.rw.has_def() {
            s.insert(Sign3::Eps);
        }
        s
    };
    let keep_rw = {
        let mut s = own.rw.def_part();
        if own.rw.contains(Sign3::Eps) && own.r.has_def() {
            s.insert(Sign3::Eps);
        }
        s
    };
    let inherit = own.r.contains(Sign3::Eps) && own.rw.contains(Sign3::Eps);
    AbsLabel {
        l: own.l,
        lw: own.lw,
        ld: own.ld,
        r: if inherit { keep_r.union(j.r) } else { keep_r },
        rw: if inherit { keep_rw.union(j.rw) } else { keep_rw },
        rd: afd(&[own.rd, j.rd]),
    }
}

fn final_signs(post: AbsLabel) -> SignSet {
    afd(&[post.l, post.r, post.ld, post.rd, post.lw, post.rw])
}

fn attribute_final_signs(own: AbsLabel, parent: AbsLabel) -> SignSet {
    let strong_p = afd(&[parent.l, parent.r]);
    let schema_p = afd(&[parent.ld, parent.rd]);
    let weak_p = afd(&[parent.lw, parent.rw]);
    afd(&[own.l, strong_p, own.ld, schema_p, own.lw, weak_p])
}

/// Raw decision data of one subject: final sign-sets per schema node.
type RawTable = BTreeMap<SchemaNode, SignSet>;

/// The output of [`applied_raw`]: the final sign-set table plus the
/// abstract labels it was derived from (which [`analyze_policy`] discards
/// but policy compilation consumes).
struct AppliedRaw {
    /// Final sign-sets per reachable schema node.
    table: RawTable,
    /// Post-fixpoint abstract element labels, by element name.
    element_post: BTreeMap<String, AbsLabel>,
    /// Own (pre-collapse) abstract attribute labels, by
    /// `(element, attribute)`.
    attribute_own: BTreeMap<(String, String), AbsLabel>,
}

/// Runs the abstract labeling stack for one concrete applicable set:
/// own labels, the Kleene propagation fixpoint, and the `first_def`
/// collapse into per-node final sign-sets.
fn applied_raw<'a>(
    g: &SchemaGraph<'_>,
    reachable: &[&str],
    applicable: Vec<&AuthInfo<'a>>,
    dir: &'a Directory,
    policy: PolicyConfig,
) -> AppliedRaw {
    let mut ctx = SubjectCtx { applicable, dir, policy, memo: HashMap::new() };

    // Own labels, then a Kleene fixpoint for the propagated
    // components (terminates: six components of ≤ 3 bits each,
    // growing monotonically).
    let own: BTreeMap<&str, AbsLabel> =
        reachable.iter().map(|&e| (e, ctx.own_element_label(e))).collect();
    let mut post: BTreeMap<&str, AbsLabel> =
        reachable.iter().map(|&e| (e, AbsLabel::BOTTOM)).collect();
    loop {
        let mut changed = false;
        for &e in reachable {
            let mut j = if e == g.root { AbsLabel::EPSILON } else { AbsLabel::BOTTOM };
            for p in g.pars(e) {
                if let Some(&pl) = post.get(p) {
                    j = j.join(pl);
                }
            }
            let new = propagate(own[e], j);
            if new != post[e] {
                post.insert(e, new);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    let mut table = RawTable::new();
    let mut attribute_own = BTreeMap::new();
    for &e in reachable {
        table.insert(SchemaNode::Element(e.to_string()), final_signs(post[e]));
        for def in g.dtd.attributes(e) {
            let own_a = ctx.own_attribute_label(e, &def.name);
            table.insert(
                SchemaNode::Attribute { element: e.to_string(), attribute: def.name.clone() },
                attribute_final_signs(own_a, post[e]),
            );
            attribute_own.insert((e.to_string(), def.name.clone()), own_a);
        }
    }
    AppliedRaw {
        table,
        element_post: post.into_iter().map(|(k, v)| (k.to_string(), v)).collect(),
        attribute_own,
    }
}

/// Computes every subject's raw table over the reachable schema nodes,
/// considering only authorizations whose index satisfies `included`.
fn compute_raw_tables(
    g: &SchemaGraph<'_>,
    reachable: &[&str],
    infos: &[AuthInfo<'_>],
    subjects: &[Subject],
    dir: &Directory,
    policy: PolicyConfig,
    included: impl Fn(usize) -> bool,
) -> Vec<RawTable> {
    subjects
        .iter()
        .map(|s| {
            let applicable: Vec<&AuthInfo<'_>> = infos
                .iter()
                .filter(|i| included(i.idx) && s.leq(&i.auth.subject, dir))
                .collect();
            applied_raw(g, reachable, applicable, dir, policy).table
        })
        .collect()
}

/// One verdict cell of an applied (requester-resolved) analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct AppliedCell {
    /// The possible final signs of nodes of this declaration.
    pub(crate) signs: SignSet,
    /// The verdict those signs induce under the completeness policy.
    pub(crate) verdict: Verdict,
}

/// The abstract analysis of one concrete applicable authorization set
/// (a requester's `axml`/`adtd` after subject resolution), as consumed
/// by policy compilation: verdict cells plus the post-fixpoint abstract
/// labels they were derived from.
#[derive(Debug, Clone)]
pub(crate) struct AppliedAnalysis {
    /// One cell per reachable schema node.
    pub(crate) cells: BTreeMap<SchemaNode, AppliedCell>,
    /// Post-fixpoint abstract element labels, by element name.
    pub(crate) element_post: BTreeMap<String, AbsLabel>,
    /// Own abstract attribute labels, by `(element, attribute)`.
    pub(crate) attribute_own: BTreeMap<(String, String), AbsLabel>,
}

/// Analyzes one concrete applicable set over the DTD graph. Unlike
/// [`analyze_policy`], no subject filtering happens: the caller has
/// already resolved which authorizations apply to the requester, and
/// marks the schema-level ones with `true`. Returns `None` when
/// `root_element` is not declared in the DTD.
pub(crate) fn analyze_applicable(
    dtd: &Dtd,
    root_element: &str,
    auths: &[(&Authorization, bool)],
    dir: &Directory,
    policy: PolicyConfig,
) -> Option<AppliedAnalysis> {
    let root = dtd.elements.get_key_value(root_element).map(|(k, _)| k.as_str())?;
    let g = SchemaGraph::new(dtd, root);
    let mut reachable: Vec<&str> = vec![g.root];
    reachable.extend(g.descendants(g.root));
    reachable.sort_unstable();
    reachable.dedup();

    let infos: Vec<AuthInfo<'_>> = auths
        .iter()
        .enumerate()
        .map(|(idx, &(auth, schema))| AuthInfo {
            idx,
            auth,
            schema,
            sel: select(&g, auth.object.path.as_ref()),
        })
        .collect();

    let raw = applied_raw(&g, &reachable, infos.iter().collect(), dir, policy);
    let cells = raw
        .table
        .iter()
        .map(|(node, &signs)| {
            let verdict = verdict_of(policy, signs, || cell_reason(&g, &infos, None, dir, node));
            (node.clone(), AppliedCell { signs, verdict })
        })
        .collect();
    Some(AppliedAnalysis {
        cells,
        element_post: raw.element_post,
        attribute_own: raw.attribute_own,
    })
}

/// Whether a final sign grants access under the completeness policy.
fn allowed(policy: PolicyConfig, s: Sign3) -> bool {
    s == Sign3::Plus || (policy.completeness == CompletenessPolicy::Open && s == Sign3::Eps)
}

fn verdict_of(policy: PolicyConfig, signs: SignSet, reason: impl FnOnce() -> String) -> Verdict {
    let granted: Vec<bool> = signs.iter().map(|s| allowed(policy, s)).collect();
    if granted.iter().all(|&g| g) {
        Verdict::Allow
    } else if granted.iter().all(|&g| !g) {
        Verdict::Deny
    } else {
        Verdict::Instance { reason: reason() }
    }
}

/// Names the instance-dependence source of a cell: the applicable
/// authorizations whose selection of the node (or of an ancestor type,
/// through propagation) is may-but-not-must. With `subject = None` every
/// info counts as applicable (the applied-analysis path, where the
/// caller resolved applicability already).
fn cell_reason(
    g: &SchemaGraph<'_>,
    infos: &[AuthInfo<'_>],
    subject: Option<&Subject>,
    dir: &Directory,
    node: &SchemaNode,
) -> String {
    let (element, attr) = match node {
        SchemaNode::Element(e) => (e.as_str(), None),
        SchemaNode::Attribute { element, attribute } => {
            (element.as_str(), Some(attribute.as_str()))
        }
    };
    let mut direct: Vec<&AuthInfo<'_>> = Vec::new();
    let mut inherited: Vec<&AuthInfo<'_>> = Vec::new();
    for info in infos {
        if subject.is_some_and(|s| !s.leq(&info.auth.subject, dir)) {
            continue;
        }
        let at_node = match attr {
            Some(a) => info.attribute_membership(element, a),
            None => info.element_membership(element),
        };
        if at_node == Membership::May {
            direct.push(info);
            continue;
        }
        // Propagation: a may-selection on the element itself (for
        // attributes) or on any ancestor type can still swing the cell.
        let mut up: BTreeSet<&str> = g.ancestors(element);
        if attr.is_some() {
            up.insert(element);
        }
        if up.iter().any(|&a| info.element_membership(a) == Membership::May) {
            inherited.push(info);
        }
    }
    let describe = |list: &[&AuthInfo<'_>], how: &str| -> Vec<String> {
        list.iter()
            .take(3)
            .map(|i| {
                let src = i.sel.dependency.unwrap_or(DependencySource::Structure);
                format!("auth #{}{} ({})", i.idx, how, src.describe())
            })
            .collect()
    };
    let mut parts = describe(&direct, "");
    parts.extend(describe(&inherited, " via an ancestor"));
    if parts.is_empty() {
        "depends on how instance authorizations combine along the ancestor chain".to_string()
    } else {
        format!("depends on {}", parts.join("; "))
    }
}

/// Runs the whole-policy analysis.
///
/// `dtd_uri` classifies authorizations: objects with this URI (or any
/// `.dtd` URI) are schema-level, the rest are treated as instance
/// authorizations on documents of this DTD. Non-`read` authorizations
/// are excluded from the tables (and counted in
/// [`PolicyReport::skipped_non_read`]).
pub fn analyze_policy(
    dtd: &Dtd,
    root_element: &str,
    dtd_uri: &str,
    auths: &[Authorization],
    dir: &Directory,
    policy: PolicyConfig,
    subjects: &[Subject],
) -> PolicyReport {
    let mut report = PolicyReport {
        root: root_element.to_string(),
        subjects: Vec::new(),
        findings: Vec::new(),
        skipped_non_read: 0,
    };
    let Some(root) = dtd.elements.get_key_value(root_element).map(|(k, _)| k.as_str()) else {
        report.findings.push(Finding::new(
            Severity::Error,
            "unknown-root",
            format!("root element {root_element:?} is not declared in the DTD"),
        ));
        return report;
    };
    let g = SchemaGraph::new(dtd, root);
    let mut reachable: Vec<&str> = vec![g.root];
    reachable.extend(g.descendants(g.root));
    reachable.sort_unstable();
    reachable.dedup();

    let infos: Vec<AuthInfo<'_>> = auths
        .iter()
        .enumerate()
        .filter(|(_, a)| {
            let read = a.action == Action::Read;
            if !read {
                report.skipped_non_read += 1;
            }
            read
        })
        .map(|(idx, auth)| {
            let schema = auth.object.uri == dtd_uri || auth.object.uri.ends_with(".dtd");
            AuthInfo { idx, auth, schema, sel: select(&g, auth.object.path.as_ref()) }
        })
        .collect();

    let raw = compute_raw_tables(&g, &reachable, &infos, subjects, dir, policy, |_| true);

    // Decision tables with verdicts.
    for (s, table) in subjects.iter().zip(&raw) {
        let cells: Vec<Cell> = table
            .iter()
            .map(|(node, &signs)| Cell {
                node: node.clone(),
                signs: signs.to_string(),
                verdict: verdict_of(policy, signs, || cell_reason(&g, &infos, Some(s), dir, node)),
            })
            .collect();
        report.subjects.push(SubjectTable { subject: s.clone(), cells });
    }

    // Finding: empty-view subjects.
    for t in &report.subjects {
        if !t.cells.is_empty() && t.cells.iter().all(|c| c.verdict == Verdict::Deny) {
            report.findings.push(
                Finding::new(
                    Severity::Warning,
                    "empty-view",
                    "every decision-table cell is guaranteed-deny: these credentials can never see any node of the schema",
                )
                .with_subject(t.subject.to_string()),
            );
        }
    }

    // Finding: context-stripped exposure (§6.3). A guaranteed-visible
    // element all of whose DTD paths to the root pass through a
    // guaranteed-denied ancestor: the view shows it under bare,
    // structure-only ancestor tags.
    for t in &report.subjects {
        let deny_els: BTreeSet<&str> = t
            .cells
            .iter()
            .filter_map(|c| match (&c.node, &c.verdict) {
                (SchemaNode::Element(e), Verdict::Deny) => Some(e.as_str()),
                _ => None,
            })
            .collect();
        for c in &t.cells {
            let (SchemaNode::Element(e), Verdict::Allow) = (&c.node, &c.verdict) else {
                continue;
            };
            let mut avoid = deny_els.clone();
            avoid.remove(e.as_str());
            if !select_reachable(&g, e, &avoid) {
                report.findings.push(
                    Finding::new(
                        Severity::Warning,
                        "context-stripped",
                        "guaranteed-visible, but every DTD path to the root crosses a guaranteed-denied ancestor: it is served inside bare structure-only tags (§6.3 exposure)",
                    )
                    .with_node(c.node.to_string())
                    .with_subject(t.subject.to_string()),
                );
            }
        }
    }

    // Finding: shadowed-by-resolution. Removing the authorization leaves
    // every cell's possible-sign set unchanged — under the analyzer's
    // semantics it contributes nothing to any decision. Restricted to
    // authorizations whose whole coverage is guaranteed (singleton
    // cells) for every subject they apply to: two instance-dependent
    // cells with equal sign *sets* can still differ on concrete
    // instances, so only guaranteed cells make "unchanged" a proof.
    for info in &infos {
        let coverage = effective_coverage(&g, info);
        let all_guaranteed = subjects.iter().zip(&raw).all(|(s, table)| {
            if !s.leq(&info.auth.subject, dir) {
                return true;
            }
            table.iter().all(|(node, signs)| {
                let name = match node {
                    SchemaNode::Element(e) => e.clone(),
                    SchemaNode::Attribute { element, attribute } => {
                        format!("{element}/@{attribute}")
                    }
                };
                !coverage.contains(&name) || signs.as_singleton().is_some()
            })
        });
        if !all_guaranteed {
            continue;
        }
        let without =
            compute_raw_tables(&g, &reachable, &infos, subjects, dir, policy, |i| i != info.idx);
        if without == raw {
            report.findings.push(
                Finding::new(
                    Severity::Warning,
                    "shadowed-by-resolution",
                    "removing this authorization changes no cell of any subject's decision table: it is absorbed by subject resolution and propagation",
                )
                .with_auth(info.idx),
            );
        }
    }

    // Finding: conflict-only-under-overlap. Opposite signs, subjects
    // incomparable in the hierarchy yet satisfiable together (a common
    // user exists and the location patterns intersect), coverage
    // touching common nodes: the conflict fires only for requesters in
    // the overlap, where resolution falls back to the sign policy.
    for (x, a) in infos.iter().enumerate() {
        for b in infos.iter().skip(x + 1) {
            if a.auth.sign == b.auth.sign {
                continue;
            }
            let sa = &a.auth.subject;
            let sb = &b.auth.subject;
            if sa.leq(sb, dir) || sb.leq(sa, dir) {
                continue; // ordinary contradiction, the lint reports it
            }
            if !sa.overlaps(sb, dir) {
                continue;
            }
            if effective_coverage(&g, a).is_disjoint(&effective_coverage(&g, b)) {
                continue;
            }
            report.findings.push(
                Finding::new(
                    Severity::Info,
                    "overlap-conflict",
                    format!(
                        "opposite signs on overlapping coverage; the subjects are incomparable but satisfiable together ({} ∧ {}), so the outcome for requesters in the overlap hinges on the conflict-resolution policy",
                        sa, sb
                    ),
                )
                .with_auth(a.idx)
                .with_other_auth(b.idx),
            );
        }
    }

    report.findings.sort_by_key(|f| f.severity);
    report
}

/// Elements an authorization can influence: its may-selected elements,
/// extended downward for recursive types.
fn effective_coverage<'d>(g: &SchemaGraph<'d>, info: &AuthInfo<'_>) -> BTreeSet<String> {
    let mut out: BTreeSet<String> = info.sel.elements.keys().cloned().collect();
    out.extend(info.sel.attributes.keys().map(|(e, a)| format!("{e}/@{a}")));
    if info.auth.ty.is_recursive() || info.schema {
        let seed: Vec<String> = info.sel.elements.keys().cloned().collect();
        for e in seed {
            for d in g.descendants(&e) {
                out.insert(d.to_string());
            }
        }
    }
    out
}

/// Reachability from the schema root avoiding `avoid` vertices (used by
/// the context-stripped check).
fn select_reachable(g: &SchemaGraph<'_>, target: &str, avoid: &BTreeSet<&str>) -> bool {
    if avoid.contains(g.root) {
        return g.root == target;
    }
    let mut seen: BTreeSet<&str> = [g.root].into();
    let mut stack = vec![g.root];
    while let Some(x) = stack.pop() {
        if x == target {
            return true;
        }
        for k in g.kids(x) {
            if !avoid.contains(k) && seen.insert(k) {
                stack.push(k);
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmlsec_authz::{AuthType, ObjectSpec, Sign};
    use xmlsec_dtd::parse_dtd;

    const LAB: &str = r#"
        <!ELEMENT laboratory (project+)>
        <!ELEMENT project (manager, paper*)>
        <!ELEMENT manager (#PCDATA)>
        <!ELEMENT paper (title)>
        <!ATTLIST paper category CDATA #REQUIRED>
        <!ELEMENT title (#PCDATA)>
    "#;

    fn dir() -> Directory {
        let mut d = Directory::new();
        d.add_user("tom").unwrap();
        d.add_user("ann").unwrap();
        d.add_group("Staff").unwrap();
        d.add_group("Public").unwrap();
        d.add_member("tom", "Staff").unwrap();
        d.add_member("tom", "Public").unwrap();
        d.add_member("ann", "Public").unwrap();
        d
    }

    fn auth(ug: &str, path: &str, sign: Sign, ty: AuthType) -> Authorization {
        Authorization::new(
            Subject::new(ug, "*", "*").unwrap(),
            ObjectSpec::with_path("lab.dtd", path).unwrap(),
            sign,
            ty,
        )
    }

    fn cell<'r>(r: &'r PolicyReport, subject: &str, node: &str) -> &'r Cell {
        let t = r
            .subjects
            .iter()
            .find(|t| t.subject.user_group == subject)
            .unwrap_or_else(|| panic!("no table for {subject}"));
        t.cells
            .iter()
            .find(|c| c.node.to_string() == node)
            .unwrap_or_else(|| panic!("no cell {node}"))
    }

    #[test]
    fn guaranteed_and_dependent_cells() {
        let dtd = parse_dtd(LAB).unwrap();
        let d = dir();
        let auths = vec![
            auth("Staff", "/laboratory", Sign::Plus, AuthType::Recursive),
            auth("Staff", r#"//paper[./@category="private"]"#, Sign::Minus, AuthType::Recursive),
        ];
        let subjects = vec![Subject::new("Staff", "*", "*").unwrap()];
        let r = analyze_policy(
            &dtd,
            "laboratory",
            "lab.dtd",
            &auths,
            &d,
            PolicyConfig::paper_default(),
            &subjects,
        );
        assert_eq!(cell(&r, "Staff", "<manager>").verdict, Verdict::Allow);
        assert_eq!(cell(&r, "Staff", "<laboratory>").verdict, Verdict::Allow);
        // The predicate makes paper (and what hangs under it)
        // instance-dependent.
        let paper = cell(&r, "Staff", "<paper>");
        assert!(
            matches!(&paper.verdict, Verdict::Instance { reason } if reason.contains("predicate")),
            "{paper:?}"
        );
        assert!(matches!(cell(&r, "Staff", "<title>").verdict, Verdict::Instance { .. }));
    }

    #[test]
    fn closed_policy_defaults_to_deny() {
        let dtd = parse_dtd(LAB).unwrap();
        let d = dir();
        let auths = vec![auth("Staff", "//manager", Sign::Plus, AuthType::Local)];
        let subjects = vec![
            Subject::new("Staff", "*", "*").unwrap(),
            Subject::new("Public", "*", "*").unwrap(),
        ];
        let r = analyze_policy(
            &dtd,
            "laboratory",
            "lab.dtd",
            &auths,
            &d,
            PolicyConfig::paper_default(),
            &subjects,
        );
        assert_eq!(cell(&r, "Staff", "<manager>").verdict, Verdict::Allow);
        assert_eq!(cell(&r, "Staff", "<paper>").verdict, Verdict::Deny);
        // Public is covered by nothing: all-deny ⇒ empty-view finding.
        assert_eq!(cell(&r, "Public", "<manager>").verdict, Verdict::Deny);
        let ev: Vec<_> = r.findings.iter().filter(|f| f.kind == "empty-view").collect();
        assert_eq!(ev.len(), 1);
        assert!(ev[0].span.subject.as_deref().unwrap().contains("Public"));
    }

    #[test]
    fn context_stripped_exposure_detected() {
        let dtd = parse_dtd(LAB).unwrap();
        let d = dir();
        // Everything denied recursively, but titles are force-granted:
        // every path from the root to <title> crosses denied context.
        let auths = vec![
            auth("Staff", "/laboratory", Sign::Minus, AuthType::Recursive),
            auth("Staff", "//title", Sign::Plus, AuthType::Local),
        ];
        let subjects = vec![Subject::new("Staff", "*", "*").unwrap()];
        let r = analyze_policy(
            &dtd,
            "laboratory",
            "lab.dtd",
            &auths,
            &d,
            PolicyConfig::paper_default(),
            &subjects,
        );
        assert_eq!(cell(&r, "Staff", "<title>").verdict, Verdict::Allow);
        assert_eq!(cell(&r, "Staff", "<paper>").verdict, Verdict::Deny);
        let cs: Vec<_> = r.findings.iter().filter(|f| f.kind == "context-stripped").collect();
        assert_eq!(cs.len(), 1, "{:?}", r.findings);
        assert_eq!(cs[0].span.node.as_deref(), Some("<title>"));
    }

    #[test]
    fn shadowed_by_resolution_detected() {
        let dtd = parse_dtd(LAB).unwrap();
        let d = dir();
        // tom ≤ Staff with the same sign on a subset of the coverage:
        // the specific rule changes nothing anywhere.
        let auths = vec![
            auth("Staff", "/laboratory", Sign::Plus, AuthType::Recursive),
            auth("tom", "//paper", Sign::Plus, AuthType::Recursive),
        ];
        let subjects = closure_subjects(&auths, &d);
        let r = analyze_policy(
            &dtd,
            "laboratory",
            "lab.dtd",
            &auths,
            &d,
            PolicyConfig::paper_default(),
            &subjects,
        );
        let sh: Vec<_> = r.findings.iter().filter(|f| f.kind == "shadowed-by-resolution").collect();
        assert_eq!(sh.len(), 1, "{:?}", r.findings);
        assert_eq!(sh[0].span.auth, Some(1));
    }

    #[test]
    fn overlap_conflict_gated_on_satisfiability() {
        let dtd = parse_dtd(LAB).unwrap();
        let d = dir();
        // Staff and Public are incomparable but share tom: a conflict
        // reachable only in the overlap.
        let auths = vec![
            auth("Staff", "//paper", Sign::Plus, AuthType::Recursive),
            auth("Public", "//paper", Sign::Minus, AuthType::Recursive),
        ];
        let subjects = vec![Subject::new("tom", "*", "*").unwrap()];
        let r = analyze_policy(
            &dtd,
            "laboratory",
            "lab.dtd",
            &auths,
            &d,
            PolicyConfig::paper_default(),
            &subjects,
        );
        let oc: Vec<_> = r.findings.iter().filter(|f| f.kind == "overlap-conflict").collect();
        assert_eq!(oc.len(), 1, "{:?}", r.findings);
        // Disjoint locations: the same pair stops overlapping.
        let mut a2 = auths.clone();
        a2[0].subject = Subject::new("Staff", "130.*", "*").unwrap();
        a2[1].subject = Subject::new("Public", "140.*", "*").unwrap();
        let r2 = analyze_policy(
            &dtd,
            "laboratory",
            "lab.dtd",
            &a2,
            &d,
            PolicyConfig::paper_default(),
            &subjects,
        );
        assert!(r2.findings.iter().all(|f| f.kind != "overlap-conflict"), "{:?}", r2.findings);
    }

    #[test]
    fn closure_subjects_cover_users_under_groups() {
        let d = dir();
        let auths = vec![auth("Staff", "//paper", Sign::Plus, AuthType::Recursive)];
        let subs = closure_subjects(&auths, &d);
        let names: Vec<String> = subs.iter().map(|s| s.user_group.clone()).collect();
        assert!(names.contains(&"Staff".to_string()));
        assert!(names.contains(&"tom".to_string()));
        assert!(!names.contains(&"ann".to_string()), "ann is not under Staff");
    }

    #[test]
    fn unknown_root_is_an_error_finding() {
        let dtd = parse_dtd(LAB).unwrap();
        let r = analyze_policy(
            &dtd,
            "nosuch",
            "lab.dtd",
            &[],
            &dir(),
            PolicyConfig::paper_default(),
            &[],
        );
        assert_eq!(r.findings[0].kind, "unknown-root");
        assert_eq!(r.findings[0].severity, Severity::Error);
    }
}
