//! The abstract domain of the static policy analyzer: sets of possible
//! signs.
//!
//! The concrete domain of `compute-view` labeling is [`Sign3`]
//! (`+`/`−`/`ε`); the abstract domain is its powerset, a [`SignSet`]
//! meaning "over all instances of the DTD, the concrete value is one of
//! these". Every abstract operator over-approximates its concrete
//! counterpart pointwise, so a singleton at the end of the pipeline is a
//! *guarantee*: the concrete labeling produces exactly that sign on every
//! conforming instance. The converse direction is deliberately lost —
//! a non-singleton only means the analyzer could not prove a constant,
//! which is what makes "instance-dependent" a conservative verdict.

use crate::label::Sign3;
use std::fmt;

const PLUS: u8 = 0b001;
const MINUS: u8 = 0b010;
const EPSBIT: u8 = 0b100;

/// A set of possible [`Sign3`] values (subset of `{+, −, ε}`).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct SignSet(u8);

impl SignSet {
    /// No possible value (unreached fixpoint bottom).
    pub const EMPTY: SignSet = SignSet(0);
    /// Exactly `ε`.
    pub const EPS: SignSet = SignSet(EPSBIT);
    /// Any value: the analyzer knows nothing.
    pub const TOP: SignSet = SignSet(PLUS | MINUS | EPSBIT);

    fn bit(s: Sign3) -> u8 {
        match s {
            Sign3::Plus => PLUS,
            Sign3::Minus => MINUS,
            Sign3::Eps => EPSBIT,
        }
    }

    /// The set containing only `s`.
    pub fn singleton(s: Sign3) -> SignSet {
        SignSet(Self::bit(s))
    }

    /// Adds `s`.
    pub fn insert(&mut self, s: Sign3) {
        self.0 |= Self::bit(s);
    }

    /// Membership.
    pub fn contains(self, s: Sign3) -> bool {
        self.0 & Self::bit(s) != 0
    }

    /// Set union (the abstract join).
    #[must_use]
    pub fn union(self, other: SignSet) -> SignSet {
        SignSet(self.0 | other.0)
    }

    /// `true` when no value is possible.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// `true` when a defined sign (`+` or `−`) is possible.
    pub fn has_def(self) -> bool {
        self.0 & (PLUS | MINUS) != 0
    }

    /// The defined part: the set minus `ε`.
    #[must_use]
    pub fn def_part(self) -> SignSet {
        SignSet(self.0 & (PLUS | MINUS))
    }

    /// `Some(sign)` when exactly one value is possible.
    pub fn as_singleton(self) -> Option<Sign3> {
        match self.0 {
            PLUS => Some(Sign3::Plus),
            MINUS => Some(Sign3::Minus),
            EPSBIT => Some(Sign3::Eps),
            _ => None,
        }
    }

    /// The possible values, in `+`, `−`, `ε` order.
    pub fn iter(self) -> impl Iterator<Item = Sign3> {
        [Sign3::Plus, Sign3::Minus, Sign3::Eps]
            .into_iter()
            .filter(move |&s| self.contains(s))
    }
}

impl fmt::Debug for SignSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for SignSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return f.write_str("∅");
        }
        let mut first = true;
        for s in self.iter() {
            if !first {
                f.write_str("|")?;
            }
            first = false;
            write!(f, "{}", s.symbol())?;
        }
        Ok(())
    }
}

/// Abstract `first_def`: all values `first_def` can produce when each
/// position of the chain independently takes any value of its set.
///
/// Walks the chain keeping a "still reachable" flag — the scenario in
/// which every earlier position chose `ε`. A position's defined values
/// are possible outcomes while that scenario exists; the scenario
/// survives the position only if it can itself be `ε`. If the scenario
/// survives the whole chain, `ε` is a possible outcome.
pub fn afd(chain: &[SignSet]) -> SignSet {
    let mut out = SignSet::EMPTY;
    let mut reachable = true;
    for s in chain {
        if !reachable {
            break;
        }
        out = out.union(s.def_part());
        if !s.contains(Sign3::Eps) {
            reachable = false;
        }
    }
    if reachable {
        out.insert(Sign3::Eps);
    }
    out
}

/// The abstract counterpart of a node's 6-tuple [`crate::label::Label`]:
/// one [`SignSet`] per component.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AbsLabel {
    /// Possible local instance signs.
    pub l: SignSet,
    /// Possible recursive instance signs (after propagation).
    pub r: SignSet,
    /// Possible local schema signs.
    pub ld: SignSet,
    /// Possible recursive schema signs (after propagation).
    pub rd: SignSet,
    /// Possible local weak signs.
    pub lw: SignSet,
    /// Possible recursive weak signs (after propagation).
    pub rw: SignSet,
}

impl AbsLabel {
    /// No possible label at all — the fixpoint's starting point.
    pub const BOTTOM: AbsLabel = AbsLabel {
        l: SignSet::EMPTY,
        r: SignSet::EMPTY,
        ld: SignSet::EMPTY,
        rd: SignSet::EMPTY,
        lw: SignSet::EMPTY,
        rw: SignSet::EMPTY,
    };

    /// The all-`ε` label: the virtual parent of the document root.
    pub const EPSILON: AbsLabel = AbsLabel {
        l: SignSet::EPS,
        r: SignSet::EPS,
        ld: SignSet::EPS,
        rd: SignSet::EPS,
        lw: SignSet::EPS,
        rw: SignSet::EPS,
    };

    /// Component-wise union.
    #[must_use]
    pub fn join(self, other: AbsLabel) -> AbsLabel {
        AbsLabel {
            l: self.l.union(other.l),
            r: self.r.union(other.r),
            ld: self.ld.union(other.ld),
            rd: self.rd.union(other.rd),
            lw: self.lw.union(other.lw),
            rw: self.rw.union(other.rw),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::label::first_def;

    fn set(signs: &[Sign3]) -> SignSet {
        let mut s = SignSet::EMPTY;
        for &x in signs {
            s.insert(x);
        }
        s
    }

    #[test]
    fn afd_matches_concrete_first_def_exhaustively() {
        use Sign3::*;
        // For every chain of three sets, every concrete choice must land
        // inside the abstract result (soundness), and every abstract
        // value must be witnessed by some choice (precision).
        let all_sets: Vec<SignSet> = (0u8..8).map(SignSet).collect();
        let all_signs = [Plus, Minus, Eps];
        for &a in &all_sets {
            for &b in &all_sets {
                for &c in &all_sets {
                    let abstract_out = afd(&[a, b, c]);
                    let mut witnessed = SignSet::EMPTY;
                    for &x in &all_signs {
                        for &y in &all_signs {
                            for &z in &all_signs {
                                if a.contains(x) && b.contains(y) && c.contains(z) {
                                    witnessed.insert(first_def([x, y, z]));
                                }
                            }
                        }
                    }
                    if a.is_empty() || b.is_empty() || c.is_empty() {
                        // Impossible scenario: only require soundness of
                        // what is witnessed (monotonicity keeps the
                        // fixpoint safe).
                        for s in witnessed.iter() {
                            assert!(abstract_out.contains(s), "{a} {b} {c}");
                        }
                    } else {
                        assert_eq!(abstract_out, witnessed, "{a} {b} {c}");
                    }
                }
            }
        }
    }

    #[test]
    fn afd_basics() {
        use Sign3::*;
        assert_eq!(afd(&[]), SignSet::EPS);
        assert_eq!(afd(&[SignSet::singleton(Plus), SignSet::TOP]), SignSet::singleton(Plus));
        assert_eq!(
            afd(&[set(&[Plus, Eps]), SignSet::singleton(Minus)]),
            set(&[Plus, Minus]),
            "ε in the first position falls through to the second"
        );
        assert_eq!(afd(&[SignSet::EPS, SignSet::EPS]), SignSet::EPS);
    }

    #[test]
    fn signset_display_and_singleton() {
        use Sign3::*;
        assert_eq!(SignSet::TOP.to_string(), "+|-|ε");
        assert_eq!(SignSet::EMPTY.to_string(), "∅");
        assert_eq!(set(&[Plus]).as_singleton(), Some(Plus));
        assert_eq!(SignSet::TOP.as_singleton(), None);
    }

    #[test]
    fn join_is_componentwise() {
        let a = AbsLabel { l: SignSet::singleton(Sign3::Plus), ..AbsLabel::BOTTOM };
        let b = AbsLabel { l: SignSet::singleton(Sign3::Minus), ..AbsLabel::EPSILON };
        let j = a.join(b);
        assert_eq!(j.l, set(&[Sign3::Plus, Sign3::Minus]));
        assert_eq!(j.rd, SignSet::EPS);
    }
}
