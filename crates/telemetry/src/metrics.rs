//! Counters, gauges, sharded histograms, and the metric registry.
//!
//! Hot-path operations are single atomic RMWs (plus one relaxed load of
//! the global enable flag). Registration and rendering take a `Mutex`,
//! which only the registration path and `/metrics` scrapes touch.
//! Callers are expected to look a metric up once (an `Arc` handle) and
//! hold it, not to re-resolve names per event.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter {
    v: AtomicU64,
}

impl Counter {
    /// Adds 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if crate::enabled() {
            self.v.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.v.load(Ordering::Relaxed)
    }
}

/// A value that can go up and down.
#[derive(Debug, Default)]
pub struct Gauge {
    v: AtomicI64,
}

impl Gauge {
    /// Sets the value.
    #[inline]
    pub fn set(&self, v: i64) {
        if crate::enabled() {
            self.v.store(v, Ordering::Relaxed);
        }
    }

    /// Adds `n` (may be negative).
    #[inline]
    pub fn add(&self, n: i64) {
        if crate::enabled() {
            self.v.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.v.load(Ordering::Relaxed)
    }
}

/// How a histogram's raw `u64` observations translate for exposition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Unit {
    /// Raw values are nanoseconds; exposed as seconds (Prometheus
    /// convention for `_seconds` histograms).
    Nanoseconds,
    /// Raw values exposed as-is (sizes, counts).
    None,
}

impl Unit {
    /// Converts a raw observation into exposition units.
    pub fn scale(self, raw: f64) -> f64 {
        match self {
            Unit::Nanoseconds => raw / 1e9,
            Unit::None => raw,
        }
    }
}

/// Bucket layout for a histogram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Buckets {
    /// Upper bounds (inclusive), ascending, in raw units. An implicit
    /// `+Inf` bucket follows the last bound.
    pub bounds: Vec<u64>,
    /// Raw-unit interpretation.
    pub unit: Unit,
}

impl Buckets {
    /// The default latency layout: 10 µs … 10 s, roughly 1-2.5-5 per
    /// decade, in nanoseconds.
    pub fn duration_default() -> Self {
        const US: u64 = 1_000;
        const MS: u64 = 1_000_000;
        const S: u64 = 1_000_000_000;
        Buckets {
            bounds: vec![
                10 * US,
                25 * US,
                50 * US,
                100 * US,
                250 * US,
                500 * US,
                MS,
                2_500 * US,
                5 * MS,
                10 * MS,
                25 * MS,
                50 * MS,
                100 * MS,
                250 * MS,
                500 * MS,
                S,
                2_500 * MS,
                5 * S,
                10 * S,
            ],
            unit: Unit::Nanoseconds,
        }
    }

    /// An explicit layout over raw values.
    pub fn custom(bounds: &[u64], unit: Unit) -> Self {
        assert!(bounds.windows(2).all(|w| w[0] < w[1]), "bucket bounds must ascend");
        Buckets { bounds: bounds.to_vec(), unit }
    }
}

/// Number of independently updated shards per histogram. Spreads
/// concurrent `observe` calls over distinct cache lines; merged at
/// render time.
const SHARDS: usize = 8;

struct Shard {
    /// One slot per bound, plus the overflow (`+Inf`) slot.
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    /// Padding to keep shards on separate cache lines.
    _pad: [u64; 5],
}

/// A fixed-bucket histogram with thread-sharded counters.
pub struct Histogram {
    buckets: Buckets,
    shards: Vec<Shard>,
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let (count, sum) = self.totals();
        f.debug_struct("Histogram")
            .field("bounds", &self.buckets.bounds.len())
            .field("count", &count)
            .field("sum", &sum)
            .finish()
    }
}

impl Histogram {
    fn new(buckets: Buckets) -> Self {
        let shards = (0..SHARDS)
            .map(|_| Shard {
                buckets: (0..=buckets.bounds.len()).map(|_| AtomicU64::new(0)).collect(),
                count: AtomicU64::new(0),
                sum: AtomicU64::new(0),
                _pad: [0; 5],
            })
            .collect();
        Histogram { buckets, shards }
    }

    #[inline]
    fn shard(&self) -> &Shard {
        // Cheap per-thread spread: hash the thread id. ThreadId::as_u64 is
        // unstable, so hash the Debug-stable ThreadId value itself.
        use std::hash::{Hash, Hasher};
        thread_local! {
            static SHARD_IDX: usize = {
                let mut h = std::collections::hash_map::DefaultHasher::new();
                std::thread::current().id().hash(&mut h);
                h.finish() as usize % SHARDS
            };
        }
        &self.shards[SHARD_IDX.with(|i| *i)]
    }

    /// Records one raw observation.
    #[inline]
    pub fn observe(&self, raw: u64) {
        if !crate::enabled() {
            return;
        }
        let idx = self.buckets.bounds.partition_point(|&b| b < raw);
        let shard = self.shard();
        shard.buckets[idx].fetch_add(1, Ordering::Relaxed);
        shard.count.fetch_add(1, Ordering::Relaxed);
        shard.sum.fetch_add(raw, Ordering::Relaxed);
    }

    /// Records a duration (histogram must use nanosecond raw units).
    #[inline]
    pub fn observe_duration(&self, d: std::time::Duration) {
        debug_assert_eq!(self.buckets.unit, Unit::Nanoseconds);
        self.observe(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Times `f` and records its wall duration.
    pub fn time<T>(&self, f: impl FnOnce() -> T) -> T {
        if !crate::enabled() {
            return f();
        }
        let t = std::time::Instant::now();
        let out = f();
        self.observe_duration(t.elapsed());
        out
    }

    /// `(count, sum)` over all shards, in raw units.
    pub fn totals(&self) -> (u64, u64) {
        let mut count = 0;
        let mut sum = 0;
        for s in &self.shards {
            count += s.count.load(Ordering::Relaxed);
            sum += s.sum.load(Ordering::Relaxed);
        }
        (count, sum)
    }

    /// Cumulative bucket counts, one per bound plus the final `+Inf`.
    pub fn cumulative_buckets(&self) -> Vec<u64> {
        let n = self.buckets.bounds.len() + 1;
        let mut merged = vec![0u64; n];
        for s in &self.shards {
            for (m, b) in merged.iter_mut().zip(&s.buckets) {
                *m += b.load(Ordering::Relaxed);
            }
        }
        let mut acc = 0;
        for m in merged.iter_mut() {
            acc += *m;
            *m = acc;
        }
        merged
    }
}

enum Handle {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

impl Handle {
    fn type_name(&self) -> &'static str {
        match self {
            Handle::Counter(_) => "counter",
            Handle::Gauge(_) => "gauge",
            Handle::Histogram(_) => "histogram",
        }
    }
}

struct Family {
    help: String,
    by_labels: BTreeMap<Vec<(String, String)>, Handle>,
}

/// A snapshot of one metric series, for programmatic consumers (the
/// figures harness, the CLI summary).
#[derive(Debug, Clone)]
pub struct SeriesSnapshot {
    /// Family name.
    pub name: String,
    /// Label pairs.
    pub labels: Vec<(String, String)>,
    /// `counter`, `gauge`, or `histogram`.
    pub kind: &'static str,
    /// Counter/gauge value; for histograms, the observation count.
    pub value: f64,
    /// Histogram only: sum of observations scaled to exposition units.
    pub sum: Option<f64>,
}

/// A registry of named metrics.
pub struct Registry {
    inner: Mutex<BTreeMap<String, Family>>,
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry { inner: Mutex::new(BTreeMap::new()) }
    }

    fn key_labels(labels: &[(&str, &str)]) -> Vec<(String, String)> {
        let mut v: Vec<(String, String)> =
            labels.iter().map(|(k, val)| (k.to_string(), val.to_string())).collect();
        v.sort();
        v
    }

    /// Gets or creates the counter `name{labels}`.
    ///
    /// # Panics
    /// Panics if `name` already exists with a different metric type.
    pub fn counter(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let family = inner
            .entry(name.to_string())
            .or_insert_with(|| Family { help: help.to_string(), by_labels: BTreeMap::new() });
        let handle = family
            .by_labels
            .entry(Self::key_labels(labels))
            .or_insert_with(|| Handle::Counter(Arc::new(Counter::default())));
        match handle {
            Handle::Counter(c) => Arc::clone(c),
            other => panic!("metric {name} is a {}, not a counter", other.type_name()),
        }
    }

    /// Gets or creates the gauge `name{labels}`.
    ///
    /// # Panics
    /// Panics if `name` already exists with a different metric type.
    pub fn gauge(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let family = inner
            .entry(name.to_string())
            .or_insert_with(|| Family { help: help.to_string(), by_labels: BTreeMap::new() });
        let handle = family
            .by_labels
            .entry(Self::key_labels(labels))
            .or_insert_with(|| Handle::Gauge(Arc::new(Gauge::default())));
        match handle {
            Handle::Gauge(g) => Arc::clone(g),
            other => panic!("metric {name} is a {}, not a gauge", other.type_name()),
        }
    }

    /// Gets or creates the histogram `name{labels}` with `buckets` (the
    /// layout only applies on first creation).
    ///
    /// # Panics
    /// Panics if `name` already exists with a different metric type.
    pub fn histogram(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        buckets: Buckets,
    ) -> Arc<Histogram> {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let family = inner
            .entry(name.to_string())
            .or_insert_with(|| Family { help: help.to_string(), by_labels: BTreeMap::new() });
        let handle = family
            .by_labels
            .entry(Self::key_labels(labels))
            .or_insert_with(|| Handle::Histogram(Arc::new(Histogram::new(buckets))));
        match handle {
            Handle::Histogram(h) => Arc::clone(h),
            other => panic!("metric {name} is a {}, not a histogram", other.type_name()),
        }
    }

    /// Renders every metric in the Prometheus text exposition format
    /// (`text/plain; version=0.0.4`).
    pub fn render_prometheus(&self) -> String {
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let mut out = String::new();
        for (name, family) in inner.iter() {
            let kind = match family.by_labels.values().next() {
                Some(h) => h.type_name(),
                None => continue,
            };
            out.push_str(&format!("# HELP {name} {}\n", family.help));
            out.push_str(&format!("# TYPE {name} {kind}\n"));
            for (labels, handle) in &family.by_labels {
                match handle {
                    Handle::Counter(c) => {
                        out.push_str(&format!(
                            "{name}{} {}\n",
                            render_labels(labels, &[]),
                            c.get()
                        ));
                    }
                    Handle::Gauge(g) => {
                        out.push_str(&format!(
                            "{name}{} {}\n",
                            render_labels(labels, &[]),
                            g.get()
                        ));
                    }
                    Handle::Histogram(h) => {
                        let unit = h.buckets.unit;
                        let cumulative = h.cumulative_buckets();
                        for (i, &bound) in h.buckets.bounds.iter().enumerate() {
                            out.push_str(&format!(
                                "{name}_bucket{} {}\n",
                                render_labels(
                                    labels,
                                    &[("le", &format_float(unit.scale(bound as f64)))]
                                ),
                                cumulative[i]
                            ));
                        }
                        out.push_str(&format!(
                            "{name}_bucket{} {}\n",
                            render_labels(labels, &[("le", "+Inf")]),
                            cumulative[h.buckets.bounds.len()]
                        ));
                        let (count, sum) = h.totals();
                        out.push_str(&format!(
                            "{name}_sum{} {}\n",
                            render_labels(labels, &[]),
                            format_float(unit.scale(sum as f64))
                        ));
                        out.push_str(&format!(
                            "{name}_count{} {count}\n",
                            render_labels(labels, &[])
                        ));
                    }
                }
            }
        }
        out
    }

    /// A point-in-time view of every series, for programmatic consumers.
    pub fn snapshot(&self) -> Vec<SeriesSnapshot> {
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let mut out = Vec::new();
        for (name, family) in inner.iter() {
            for (labels, handle) in &family.by_labels {
                let (kind, value, sum) = match handle {
                    Handle::Counter(c) => ("counter", c.get() as f64, None),
                    Handle::Gauge(g) => ("gauge", g.get() as f64, None),
                    Handle::Histogram(h) => {
                        let (count, raw_sum) = h.totals();
                        ("histogram", count as f64, Some(h.buckets.unit.scale(raw_sum as f64)))
                    }
                };
                out.push(SeriesSnapshot {
                    name: name.clone(),
                    labels: labels.clone(),
                    kind,
                    value,
                    sum,
                });
            }
        }
        out
    }
}

fn format_float(v: f64) -> String {
    // Prometheus accepts any float syntax; trim trailing zeros for
    // readability but keep at least one decimal for non-integers.
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        let s = format!("{v:.9}");
        s.trim_end_matches('0').trim_end_matches('.').to_string()
    }
}

fn render_labels(labels: &[(String, String)], extra: &[(&str, &str)]) -> String {
    if labels.is_empty() && extra.is_empty() {
        return String::new();
    }
    let mut parts: Vec<String> =
        labels.iter().map(|(k, v)| format!("{k}=\"{}\"", escape_label(v))).collect();
    parts.extend(extra.iter().map(|(k, v)| format!("{k}=\"{}\"", escape_label(v))));
    format!("{{{}}}", parts.join(","))
}

fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_roundtrip() {
        let r = Registry::new();
        let c = r.counter("t_total", "help", &[("k", "v")]);
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let g = r.gauge("t_gauge", "help", &[]);
        g.set(7);
        g.add(-2);
        assert_eq!(g.get(), 5);
        // Same (name, labels) → same underlying metric.
        let c2 = r.counter("t_total", "help", &[("k", "v")]);
        c2.inc();
        assert_eq!(c.get(), 6);
        // Different labels → distinct series.
        let c3 = r.counter("t_total", "help", &[("k", "other")]);
        assert_eq!(c3.get(), 0);
    }

    #[test]
    fn histogram_buckets_are_cumulative() {
        let r = Registry::new();
        let h = r.histogram("t_hist", "help", &[], Buckets::custom(&[10, 100, 1000], Unit::None));
        for v in [1, 5, 10, 11, 99, 100, 5000] {
            h.observe(v);
        }
        assert_eq!(h.cumulative_buckets(), vec![3, 6, 6, 7]);
        let (count, sum) = h.totals();
        assert_eq!(count, 7);
        assert_eq!(sum, 1 + 5 + 10 + 11 + 99 + 100 + 5000);
    }

    #[test]
    fn prometheus_rendering() {
        let r = Registry::new();
        r.counter("x_req_total", "Requests.", &[("outcome", "ok")]).add(3);
        r.gauge("x_entries", "Entries.", &[]).set(2);
        let h = r.histogram(
            "x_dur_seconds",
            "Latency.",
            &[("stage", "parse")],
            Buckets::custom(&[1_000_000], Unit::Nanoseconds),
        );
        h.observe(500_000); // 0.5 ms
        let text = r.render_prometheus();
        assert!(text.contains("# TYPE x_req_total counter"), "{text}");
        assert!(text.contains("x_req_total{outcome=\"ok\"} 3"), "{text}");
        assert!(text.contains("x_entries 2"), "{text}");
        assert!(text.contains("x_dur_seconds_bucket{stage=\"parse\",le=\"0.001\"} 1"), "{text}");
        assert!(text.contains("x_dur_seconds_bucket{stage=\"parse\",le=\"+Inf\"} 1"), "{text}");
        assert!(text.contains("x_dur_seconds_sum{stage=\"parse\"} 0.0005"), "{text}");
        assert!(text.contains("x_dur_seconds_count{stage=\"parse\"} 1"), "{text}");
    }

    #[test]
    fn histogram_time_records() {
        let r = Registry::new();
        let h = r.histogram("t_time_seconds", "h", &[], Buckets::duration_default());
        let out = h.time(|| 21 * 2);
        assert_eq!(out, 42);
        assert_eq!(h.totals().0, 1);
    }

    #[test]
    fn snapshot_sees_all_series() {
        let r = Registry::new();
        r.counter("s_total", "h", &[("a", "1")]).add(9);
        r.histogram("s_seconds", "h", &[], Buckets::duration_default()).observe(1);
        let snap = r.snapshot();
        assert_eq!(snap.len(), 2);
        let c = snap.iter().find(|s| s.name == "s_total").unwrap();
        assert_eq!(c.value, 9.0);
        assert_eq!(c.kind, "counter");
        let h = snap.iter().find(|s| s.name == "s_seconds").unwrap();
        assert_eq!(h.kind, "histogram");
        assert_eq!(h.value, 1.0);
    }

    #[test]
    #[should_panic(expected = "not a gauge")]
    fn type_conflicts_panic() {
        let r = Registry::new();
        r.counter("conflict_total", "h", &[]);
        r.gauge("conflict_total", "h", &[]);
    }
}
