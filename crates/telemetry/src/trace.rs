//! Hierarchical spans with monotonic timings.
//!
//! A span is opened with [`span`] (or [`span_timed`] to also feed a
//! histogram) and closed by dropping the guard. Nesting is tracked with a
//! thread-local depth counter, so a trace of one request reads as an
//! indented tree. Finished spans go to a fixed-capacity ring buffer
//! ([`recent_spans`]) and to any registered [`Subscriber`]s — the
//! pluggable hook tests use to capture events.

use crate::metrics::Histogram;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};
use std::time::{Duration, Instant};

/// A finished span: name, wall duration, nesting depth, and sequence.
#[derive(Debug, Clone)]
pub struct FinishedSpan {
    /// Static span name (`crate.stage` convention, e.g.
    /// `processor.label`).
    pub name: &'static str,
    /// Wall-clock duration, from a monotonic clock.
    pub duration: Duration,
    /// Nesting depth at open time (0 = top level on that thread).
    pub depth: usize,
    /// Global close sequence number (monotonic across threads).
    pub seq: u64,
}

/// Receives every finished span. Implementations must be cheap: they run
/// inline in the instrumented thread at span close.
pub trait Subscriber: Send + Sync {
    /// Called once per span, at close.
    fn on_span_close(&self, span: &FinishedSpan);
}

/// Capacity of the recent-span ring buffer.
pub const RING_CAPACITY: usize = 512;

struct TraceState {
    ring: Mutex<VecDeque<FinishedSpan>>,
    subscribers: RwLock<Vec<(u64, Arc<dyn Subscriber>)>>,
    next_subscriber: AtomicU64,
    seq: AtomicU64,
}

fn state() -> &'static TraceState {
    static STATE: OnceLock<TraceState> = OnceLock::new();
    STATE.get_or_init(|| TraceState {
        ring: Mutex::new(VecDeque::with_capacity(RING_CAPACITY)),
        subscribers: RwLock::new(Vec::new()),
        next_subscriber: AtomicU64::new(1),
        seq: AtomicU64::new(0),
    })
}

thread_local! {
    static DEPTH: std::cell::Cell<usize> = const { std::cell::Cell::new(0) };
}

/// Opens a span; drop the guard to close it.
#[must_use = "the span closes when the guard drops"]
pub fn span(name: &'static str) -> SpanGuard {
    SpanGuard::open(name, None)
}

/// Opens a span that also records its duration into `histogram` on close.
#[must_use = "the span closes when the guard drops"]
pub fn span_timed(name: &'static str, histogram: Arc<Histogram>) -> SpanGuard {
    SpanGuard::open(name, Some(histogram))
}

/// An open span. Closing (dropping) stamps the duration and publishes the
/// span to the ring buffer, the subscribers, and the optional histogram.
pub struct SpanGuard {
    name: &'static str,
    start: Option<Instant>,
    depth: usize,
    histogram: Option<Arc<Histogram>>,
}

impl SpanGuard {
    fn open(name: &'static str, histogram: Option<Arc<Histogram>>) -> SpanGuard {
        if !crate::enabled() {
            return SpanGuard { name, start: None, depth: 0, histogram: None };
        }
        let depth = DEPTH.with(|d| {
            let v = d.get();
            d.set(v + 1);
            v
        });
        SpanGuard { name, start: Some(Instant::now()), depth, histogram }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(start) = self.start else { return };
        let duration = start.elapsed();
        DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
        if let Some(h) = &self.histogram {
            h.observe_duration(duration);
        }
        let st = state();
        let finished = FinishedSpan {
            name: self.name,
            duration,
            depth: self.depth,
            seq: st.seq.fetch_add(1, Ordering::Relaxed),
        };
        {
            let mut ring = st.ring.lock().unwrap_or_else(|e| e.into_inner());
            if ring.len() == RING_CAPACITY {
                ring.pop_front();
            }
            ring.push_back(finished.clone());
        }
        let subs = st.subscribers.read().unwrap_or_else(|e| e.into_inner());
        for (_, s) in subs.iter() {
            s.on_span_close(&finished);
        }
    }
}

/// Registers a subscriber; returns a token for [`unregister_subscriber`].
pub fn register_subscriber(sub: Arc<dyn Subscriber>) -> u64 {
    let st = state();
    let id = st.next_subscriber.fetch_add(1, Ordering::Relaxed);
    st.subscribers.write().unwrap_or_else(|e| e.into_inner()).push((id, sub));
    id
}

/// Removes a previously registered subscriber.
pub fn unregister_subscriber(id: u64) {
    state()
        .subscribers
        .write()
        .unwrap_or_else(|e| e.into_inner())
        .retain(|(i, _)| *i != id);
}

/// A snapshot of the most recent finished spans (oldest first).
pub fn recent_spans() -> Vec<FinishedSpan> {
    state().ring.lock().unwrap_or_else(|e| e.into_inner()).iter().cloned().collect()
}

/// Empties the ring buffer (tests and the CLI use this to scope a dump).
pub fn clear_recent_spans() {
    state().ring.lock().unwrap_or_else(|e| e.into_inner()).clear();
}

/// Renders recent spans as an indented tree, newest trace last.
pub fn render_recent_spans() -> String {
    let mut out = String::new();
    for s in recent_spans() {
        out.push_str(&format!("{:>10.3?}  {}{}\n", s.duration, "  ".repeat(s.depth), s.name));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Capture(Mutex<Vec<(&'static str, usize)>>);

    impl Subscriber for Capture {
        fn on_span_close(&self, span: &FinishedSpan) {
            self.0.lock().unwrap().push((span.name, span.depth));
        }
    }

    #[test]
    fn nesting_depths_and_subscriber_capture() {
        let cap = Arc::new(Capture(Mutex::new(Vec::new())));
        let id = register_subscriber(cap.clone());
        {
            let _outer = span("test.outer");
            {
                let _inner = span("test.inner");
            }
        }
        unregister_subscriber(id);
        let seen = cap.0.lock().unwrap().clone();
        // Inner closes first, at depth 1; outer closes second, at depth 0.
        assert_eq!(seen, vec![("test.inner", 1), ("test.outer", 0)]);
    }

    #[test]
    fn ring_keeps_recent_spans() {
        clear_recent_spans();
        {
            let _s = span("test.ring");
        }
        let spans = recent_spans();
        assert!(spans.iter().any(|s| s.name == "test.ring"));
        // Sequence numbers increase.
        let seqs: Vec<u64> = spans.iter().map(|s| s.seq).collect();
        assert!(seqs.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn ring_is_bounded() {
        for _ in 0..RING_CAPACITY + 10 {
            let _s = span("test.flood");
        }
        assert!(recent_spans().len() <= RING_CAPACITY);
    }

    #[test]
    fn span_timed_feeds_histogram() {
        let h = crate::global().histogram(
            "trace_test_seconds",
            "test",
            &[],
            crate::Buckets::duration_default(),
        );
        {
            let _s = span_timed("test.timed", h.clone());
        }
        assert!(h.totals().0 >= 1);
    }
}
