//! # xmlsec-telemetry — observability for the security pipeline
//!
//! The paper's §7 architecture puts the security processor in front of
//! every document request; before any of that can be made faster it has
//! to be *measurable*. This crate is the measurement layer: a
//! zero-dependency tracing + metrics subsystem matching the workspace's
//! from-scratch style.
//!
//! Two facilities:
//!
//! - [`metrics`] — a registry of named [`metrics::Counter`]s,
//!   [`metrics::Gauge`]s and fixed-bucket [`metrics::Histogram`]s, all
//!   lock-free on the hot path (plain atomics; histograms shard their
//!   buckets by thread to dodge contention), rendered in the Prometheus
//!   text exposition format by [`metrics::Registry::render_prometheus`];
//! - [`trace`] — lightweight hierarchical spans with monotonic timings, a
//!   ring buffer of recently finished spans, and pluggable
//!   [`trace::Subscriber`]s so tests can capture events.
//!
//! Everything reports into one process-wide registry ([`global`]) so the
//! `GET /metrics` endpoint, the CLI `stats` command, and the bench
//! harness read from the same source of truth. A single atomic switch
//! ([`set_enabled`]) turns all recording off, which is how the overhead
//! bench measures the cost of instrumentation itself (kept under 5% of
//! pipeline time; see `EXPERIMENTS.md`).
//!
//! ```
//! use xmlsec_telemetry as telemetry;
//!
//! let c = telemetry::global().counter(
//!     "xmlsec_example_total", "Things that happened.", &[("kind", "demo")]);
//! c.inc();
//! {
//!     let _span = telemetry::trace::span("example.stage");
//!     // ... timed work ...
//! }
//! let text = telemetry::global().render_prometheus();
//! assert!(text.contains("xmlsec_example_total{kind=\"demo\"} 1"));
//! ```

#![warn(missing_docs)]

pub mod metrics;
pub mod trace;

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;

pub use metrics::{Buckets, Counter, Gauge, Histogram, Registry, Unit};
pub use trace::{FinishedSpan, SpanGuard, Subscriber};

/// Master switch for all recording (metrics and spans). On by default.
static ENABLED: AtomicBool = AtomicBool::new(true);

/// Turns every recording path on or off. With recording off, counters
/// stop counting and spans become no-ops (no clock reads) — the knob the
/// overhead bench flips to measure instrumentation cost.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether recording is currently on.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// The process-wide registry all instrumented crates report into.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disable_stops_counting() {
        let c = global().counter("xmsec_test_disable_total", "test", &[]);
        c.inc();
        let before = c.get();
        set_enabled(false);
        c.inc();
        c.inc();
        set_enabled(true);
        assert_eq!(c.get(), before);
        c.inc();
        assert_eq!(c.get(), before + 1);
    }
}
