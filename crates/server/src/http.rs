//! A minimal HTTP front end for the secure server — the demonstrator the
//! paper's conclusion promises ("we intend to prepare in a short time a
//! Web site to demonstrate the characteristics of our proposal").
//!
//! Protocol: `GET /<document-uri>?user=U&pass=P&ip=A&host=H[&q=PATH]`
//! over HTTP/1.0. Without `user`, the request is anonymous. With `q`,
//! the response is the secure query result instead of the whole view.
//! When the document has a DTD, its loosened form follows the view in
//! the body behind a `<!-- loosened DTD -->` marker.
//!
//! Writes: `POST /update?doc=<uri>&user=U&pass=P&ip=A&host=H` with a
//! Content-Length framed, line-based op batch as body (see
//! [`parse_update_ops`] for the grammar). A successful batch answers
//! `200 updated <n>`; denials answer 403, and the same deadline,
//! cancellation, and overload contract as reads applies (docs/UPDATES.md).
//!
//! View responses carry a strong `ETag` (derived from the view's
//! content-addressed cache key and exact bytes) and `Cache-Control:
//! private, no-cache` — private because a view is requester-class
//! specific, no-cache so clients revalidate every time. A request whose
//! `If-None-Match` still names the current view is answered `304 Not
//! Modified` without rendering (from a warm cache, without running any
//! pipeline stage); 304s are counted in
//! `xmlsec_http_not_modified_total`.
//!
//! This is a demonstrator, not a production HTTP stack (HTTP/1.0, no
//! TLS — the paper likewise defers transport security to the era's
//! channel mechanisms), but it is a *robust* demonstrator: a bounded
//! worker pool with a backlog queue and 503 load shedding, socket
//! read/write timeouts, caps on the request line and header block
//! (431), panic isolation around request handling, and a graceful
//! shutdown that drains in-flight work up to a deadline. Everything is
//! tunable through [`HttpConfig`].
//!
//! Two further layers of overload robustness ride on top:
//!
//! - **End-to-end deadlines and cancellation.** Every request gets a
//!   [`CancelToken`] whose deadline is the tighter of the server's
//!   [`HttpConfig::request_deadline`] and the client's
//!   `X-Request-Deadline` header (milliseconds). The token is threaded
//!   through every pipeline stage and polled inside the hot loops; a
//!   tripped request unwinds with a typed cancellation (503, computed
//!   `Retry-After`), partial work discarded. A per-request watchdog
//!   polls the socket while the pipeline runs, so a client that hangs
//!   up cancels its own request (`ClientGone`) instead of burning the
//!   worker's remaining budget. Cancellations are counted per reason in
//!   `xmlsec_server_cancelled_total`.
//! - **CoDel-style adaptive admission.** Each queued connection is
//!   stamped on accept; at dequeue the worker feeds the queue *sojourn
//!   time* to an admission controller (target/interval in
//!   [`HttpConfig`]). When sojourn stays above target for a full
//!   interval, the controller sheds requests at an increasing rate
//!   until the queue drains — but shed requests degrade gracefully:
//!   cache hits and `If-None-Match` revalidations are still served from
//!   already-computed state, and only fresh *compute* is refused with
//!   503 and a `Retry-After` derived from the live queue depth and an
//!   EWMA of recent service times.

use crate::server::{ClientRequest, ConditionalOutcome, SecureServer, ServerError, ServerResponse};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use xmlsec_core::update::UpdateOp;
use xmlsec_core::{CancelReason, CancelToken};
use xmlsec_telemetry as telemetry;

#[cfg(feature = "faults")]
use crate::faults;
#[cfg(not(feature = "faults"))]
mod faults {
    // No-op shim: release builds carry no injection hooks.
    pub(crate) fn check(_point: &str) -> bool {
        false
    }
}

/// How often the accept loop re-checks the stop flag while idle, and how
/// often shutdown polls workers for completion.
const ACCEPT_POLL: Duration = Duration::from_millis(2);

/// Largest accepted `POST /update` body. Update batches are small (a
/// few ops, each one line); anything bigger is hostile or broken.
pub(crate) const MAX_UPDATE_BODY: usize = 256 * 1024;

/// Tunable resource bounds for [`HttpDemo`].
///
/// The defaults are generous enough that every legitimate demo workload
/// passes untouched, while still bounding what a hostile or broken
/// client can cost the server.
#[derive(Debug, Clone, Copy)]
pub struct HttpConfig {
    /// Worker threads handling requests (the concurrency bound).
    pub workers: usize,
    /// Accepted connections that may wait for a worker before new
    /// arrivals are shed with 503.
    pub backlog: usize,
    /// Per-connection read timeout; a stalled client (slow loris) gets
    /// a best-effort 408 and is dropped.
    pub read_timeout: Duration,
    /// Per-connection write timeout; a client that stops draining its
    /// response is dropped.
    pub write_timeout: Duration,
    /// Longest accepted request line in bytes (431 beyond this).
    pub max_request_line: usize,
    /// Longest accepted header block in bytes (431 beyond this).
    pub max_header_bytes: usize,
    /// How long shutdown waits for in-flight requests to finish before
    /// detaching the remaining workers.
    pub drain_timeout: Duration,
    /// Server-side ceiling on how long one request may run end to end
    /// (measured from when a worker picks it up). A client's
    /// `X-Request-Deadline: <ms>` header can tighten but never loosen
    /// it. `None` disables the server-side deadline (client deadlines
    /// still apply).
    pub request_deadline: Option<Duration>,
    /// Turns CoDel-style adaptive admission control on (default) or
    /// off. Off, only the hard backlog bound sheds.
    pub shed_adaptive: bool,
    /// Sojourn target for admission control: the queue wait the server
    /// is willing to sustain. Below it nothing is shed.
    pub shed_target: Duration,
    /// How long sojourn must stay above target before shedding starts
    /// (CoDel's interval).
    pub shed_interval: Duration,
}

impl Default for HttpConfig {
    fn default() -> Self {
        HttpConfig {
            workers: 8,
            backlog: 64,
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
            max_request_line: 8 * 1024,
            max_header_bytes: 32 * 1024,
            drain_timeout: Duration::from_secs(5),
            request_deadline: Some(Duration::from_secs(10)),
            shed_adaptive: true,
            shed_target: Duration::from_millis(100),
            shed_interval: Duration::from_secs(1),
        }
    }
}

/// Handle to a running demo server.
pub struct HttpDemo {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    drain_timeout: Duration,
}

pub(crate) fn shed_total() -> Arc<telemetry::Counter> {
    telemetry::global().counter(
        "xmlsec_server_shed_total",
        "Connections rejected with 503 because the request queue was full.",
        &[],
    )
}

pub(crate) fn panics_caught_total() -> Arc<telemetry::Counter> {
    telemetry::global().counter(
        "xmlsec_server_panics_caught_total",
        "Panics caught during request handling and converted to errors.",
        &[],
    )
}

pub(crate) fn not_modified_total() -> Arc<telemetry::Counter> {
    telemetry::global().counter(
        "xmlsec_http_not_modified_total",
        "View requests answered 304 Not Modified via If-None-Match.",
        &[],
    )
}

pub(crate) fn queue_depth() -> Arc<telemetry::Gauge> {
    telemetry::global().gauge(
        "xmlsec_server_queue_depth",
        "Accepted connections waiting in the backlog queue for a worker.",
        &[],
    )
}

pub(crate) fn cancelled_total(reason: &'static str) -> Arc<telemetry::Counter> {
    telemetry::global().counter(
        "xmlsec_server_cancelled_total",
        "Requests cancelled before completion, by reason.",
        &[("reason", reason)],
    )
}

pub(crate) fn adaptive_shed_total() -> Arc<telemetry::Counter> {
    telemetry::global().counter(
        "xmlsec_server_adaptive_shed_total",
        "Requests degraded to cache-only service by the admission controller.",
        &[],
    )
}

pub(crate) fn degraded_hits_total() -> Arc<telemetry::Counter> {
    telemetry::global().counter(
        "xmlsec_server_degraded_hits_total",
        "Requests answered from already-computed state while shedding.",
        &[],
    )
}

pub(crate) fn sojourn_seconds() -> Arc<telemetry::Histogram> {
    telemetry::global().histogram(
        "xmlsec_server_queue_sojourn_seconds",
        "Time accepted connections spent waiting for a worker.",
        &[],
        telemetry::Buckets::duration_default(),
    )
}

/// CoDel-style admission controller plus the service-time estimate that
/// prices `Retry-After`.
///
/// The classic CoDel insight, applied to the worker queue: transient
/// bursts are fine (sojourn spikes that drain within one interval are
/// never shed), but *standing* queues are not — once the sojourn time
/// has exceeded `target` for a full `interval`, the controller starts
/// shedding, and sheds at an increasing rate (`interval / √count`)
/// until the queue drains back under target.
pub(crate) struct Admission {
    enabled: bool,
    target: Duration,
    interval: Duration,
    state: Mutex<ShedState>,
    /// EWMA of admitted requests' service time, in nanoseconds (α=1/8).
    service_ewma_ns: AtomicU64,
}

struct ShedState {
    /// When sojourn first exceeded target (None: currently below).
    above_since: Option<Instant>,
    /// In shedding mode.
    dropping: bool,
    /// Next instant at which a request is shed while in shedding mode.
    drop_next: Instant,
    /// Sheds in the current shedding episode (drives the control law).
    count: u32,
}

impl Admission {
    pub(crate) fn new(cfg: &HttpConfig) -> Admission {
        Admission {
            enabled: cfg.shed_adaptive,
            target: cfg.shed_target,
            interval: cfg.shed_interval.max(Duration::from_millis(1)),
            state: Mutex::new(ShedState {
                above_since: None,
                dropping: false,
                drop_next: Instant::now(),
                count: 0,
            }),
            service_ewma_ns: AtomicU64::new(0),
        }
    }

    /// Decides whether the request dequeued `sojourn` after being
    /// accepted runs the full pipeline (`true`) or degrades to
    /// cache-only service (`false`).
    pub(crate) fn admit(&self, sojourn: Duration, now: Instant) -> bool {
        if !self.enabled {
            return true;
        }
        let Ok(mut st) = self.state.lock() else { return true };
        if sojourn <= self.target {
            st.above_since = None;
            st.dropping = false;
            st.count = 0;
            return true;
        }
        let above_since = *st.above_since.get_or_insert(now);
        if !st.dropping {
            if now.duration_since(above_since) < self.interval {
                return true; // transient burst: give it one interval to drain
            }
            st.dropping = true;
            st.drop_next = now; // sustained: shed starting with this request
        }
        if now >= st.drop_next {
            st.count += 1;
            st.drop_next = now + self.interval.div_f64(f64::from(st.count).sqrt());
            false
        } else {
            true
        }
    }

    /// Folds one admitted request's wall time into the EWMA.
    pub(crate) fn record_service(&self, d: Duration) {
        let ns = d.as_nanos().min(u128::from(u64::MAX)) as u64;
        let prev = self.service_ewma_ns.load(Ordering::Relaxed);
        let next = if prev == 0 { ns } else { prev - prev / 8 + ns / 8 };
        self.service_ewma_ns.store(next, Ordering::Relaxed);
    }

    /// `Retry-After` seconds for a shed response: the live queue depth
    /// priced at the recent per-request service time, clamped to
    /// [1, 30]. An integer per RFC 9110 §10.2.3.
    pub(crate) fn retry_after_secs(&self, depth: i64) -> u64 {
        // 1 ms floor so a cold EWMA still yields a sane hint.
        let ewma = self.service_ewma_ns.load(Ordering::Relaxed).max(1_000_000);
        let waiting = depth.max(0) as u64 + 1;
        waiting.saturating_mul(ewma).div_ceil(1_000_000_000).clamp(1, 30)
    }
}

impl HttpDemo {
    /// Starts serving `server` on `addr` with default limits (use port 0
    /// for an ephemeral port). Runs until [`HttpDemo::shutdown`] or drop.
    pub fn start(server: SecureServer, addr: &str) -> std::io::Result<HttpDemo> {
        HttpDemo::start_with(server, addr, HttpConfig::default())
    }

    /// Starts serving with explicit resource bounds.
    pub fn start_with(
        server: SecureServer,
        addr: &str,
        cfg: HttpConfig,
    ) -> std::io::Result<HttpDemo> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        // Nonblocking accept: a blocking accept would only notice the stop
        // flag after one more connection arrived, so shutdown could hang
        // (e.g. when the bind address is unspecified and no self-connect
        // reaches the listener). Polling sidesteps the race entirely.
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);

        // Bounded handoff: accept → queue → worker. The channel capacity
        // is the backlog; when it is full the accept loop sheds instead
        // of queueing unbounded work. Entries carry their enqueue time
        // so the dequeuing worker can feed sojourn to admission control.
        let (tx, rx) = sync_channel::<(TcpStream, Instant)>(cfg.backlog.max(1));
        let rx = Arc::new(Mutex::new(rx));
        let server = Arc::new(server);
        let depth = queue_depth();
        let admission = Arc::new(Admission::new(&cfg));

        let mut workers = Vec::with_capacity(cfg.workers.max(1));
        for _ in 0..cfg.workers.max(1) {
            let rx = Arc::clone(&rx);
            let server = Arc::clone(&server);
            let depth = Arc::clone(&depth);
            let admission = Arc::clone(&admission);
            workers.push(std::thread::spawn(move || {
                worker_loop(&rx, &server, &cfg, &depth, &admission);
            }));
        }

        let handle = std::thread::spawn(move || {
            while !stop2.load(Ordering::SeqCst) {
                match listener.accept() {
                    Ok((conn, _)) => {
                        // The accepted socket must block; inheritance of
                        // the nonblocking flag is platform-dependent.
                        let _ = conn.set_nonblocking(false);
                        let _ = conn.set_read_timeout(Some(cfg.read_timeout));
                        let _ = conn.set_write_timeout(Some(cfg.write_timeout));
                        // Count before enqueueing: a worker may dequeue
                        // (and decrement) the instant try_send returns,
                        // and the gauge must never read negative.
                        depth.add(1);
                        match tx.try_send((conn, Instant::now())) {
                            Ok(()) => {}
                            Err(TrySendError::Full((conn, _))) => {
                                depth.add(-1);
                                shed(conn, admission.retry_after_secs(depth.get()));
                            }
                            Err(TrySendError::Disconnected(_)) => {
                                depth.add(-1);
                                break;
                            }
                        }
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(ACCEPT_POLL);
                    }
                    Err(_) => std::thread::sleep(ACCEPT_POLL),
                }
            }
            // `tx` drops here; workers drain the queue and then exit.
        });
        Ok(HttpDemo {
            addr: local,
            stop,
            handle: Some(handle),
            workers,
            drain_timeout: cfg.drain_timeout,
        })
    }

    /// Where the demo is listening.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting, then drains: queued and in-flight requests get
    /// up to the configured drain deadline to finish; workers still busy
    /// after that are detached so shutdown always returns.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
        // The accept thread has exited and dropped the sender, so each
        // worker finishes its backlog and returns. Join with a deadline:
        // a request wedged past the drain window must not hang shutdown.
        let deadline = Instant::now() + self.drain_timeout;
        for h in std::mem::take(&mut self.workers) {
            while !h.is_finished() && Instant::now() < deadline {
                std::thread::sleep(ACCEPT_POLL);
            }
            if h.is_finished() {
                let _ = h.join();
            }
            // else: detached by drop.
        }
    }
}

impl Drop for HttpDemo {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Rejects a connection the queue has no room for: 503 plus a computed
/// hint to retry once the burst has passed.
fn shed(mut conn: TcpStream, retry_after: u64) {
    shed_total().inc();
    let _ = conn.write_all(&render_busy(retry_after));
}

/// The 503 bytes written when the request queue has no room: both
/// transports shed with exactly this response.
pub(crate) fn render_busy(retry_after: u64) -> Vec<u8> {
    let body = "server busy, try again shortly\n";
    format!(
        "HTTP/1.0 503 Service Unavailable\r\nRetry-After: {retry_after}\r\nContent-Type: text/plain\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )
    .into_bytes()
}

fn worker_loop(
    rx: &Mutex<Receiver<(TcpStream, Instant)>>,
    server: &SecureServer,
    cfg: &HttpConfig,
    depth: &telemetry::Gauge,
    admission: &Admission,
) {
    loop {
        // A panicking sibling poisons the mutex; treat that as shutdown
        // rather than unwrapping (the pool is already compromised).
        let conn = match rx.lock() {
            Ok(guard) => guard.recv(),
            Err(_) => break,
        };
        let Ok((conn, enqueued)) = conn else { break };
        depth.add(-1);
        let now = Instant::now();
        let sojourn = now.duration_since(enqueued);
        sojourn_seconds().observe_duration(sojourn);
        let admitted = admission.admit(sojourn, now);
        if !admitted {
            adaptive_shed_total().inc();
        }
        let started = Instant::now();
        // Panic isolation: one bad request must not take the worker (and
        // with it a slice of the pool's capacity) down. Handler-level
        // panics around the processor are caught closer in and answered
        // with 500; this is the backstop for everything else.
        if catch_unwind(AssertUnwindSafe(|| {
            handle_connection(server, conn, cfg, admission, !admitted)
        }))
        .is_err()
        {
            panics_caught_total().inc();
        }
        if admitted {
            // Degraded requests skip compute; folding their (tiny) wall
            // time into the EWMA would talk Retry-After down exactly
            // when the queue is at its worst.
            admission.record_service(started.elapsed());
        }
    }
}

/// Outcome of a bounded line read.
enum LineRead {
    /// A complete line (terminator included), or the remainder at EOF.
    Line(String),
    /// The line exceeded the byte cap.
    TooLong,
}

/// Reads one `\n`-terminated line without ever buffering more than `max`
/// bytes, so a hostile client cannot balloon memory by never sending the
/// terminator.
fn read_line_limited(reader: &mut impl BufRead, max: usize) -> std::io::Result<LineRead> {
    let mut buf: Vec<u8> = Vec::new();
    loop {
        let available = reader.fill_buf()?;
        if available.is_empty() {
            return Ok(LineRead::Line(String::from_utf8_lossy(&buf).into_owned()));
        }
        match available.iter().position(|&b| b == b'\n') {
            Some(i) => {
                if buf.len() + i + 1 > max {
                    return Ok(LineRead::TooLong);
                }
                buf.extend_from_slice(&available[..=i]);
                reader.consume(i + 1);
                return Ok(LineRead::Line(String::from_utf8_lossy(&buf).into_owned()));
            }
            None => {
                let n = available.len();
                if buf.len() + n > max {
                    return Ok(LineRead::TooLong);
                }
                buf.extend_from_slice(available);
                reader.consume(n);
            }
        }
    }
}

fn is_timeout(e: &std::io::Error) -> bool {
    matches!(e.kind(), std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut)
}

/// Bounded lingering close after an early rejection: if we close while
/// the client's unread bytes sit in the socket, TCP answers them with a
/// reset and the client may never see our status line. Discard what is
/// already in flight (briefly, and at most a fixed amount) so the close
/// is a clean FIN.
fn drain_before_close(out: &TcpStream, reader: &mut impl std::io::Read) {
    let _ = out.set_read_timeout(Some(Duration::from_millis(200)));
    let mut scratch = [0u8; 8192];
    let mut total = 0usize;
    while total < 256 * 1024 {
        match reader.read(&mut scratch) {
            Ok(0) | Err(_) => break,
            Ok(n) => total += n,
        }
    }
}

/// How often the client-disconnect watchdog polls the socket.
const WATCHDOG_POLL: Duration = Duration::from_millis(10);

/// Watches the client socket while the pipeline runs and trips the
/// request's token with [`CancelReason::ClientGone`] on hangup, so an
/// abandoned request stops burning the worker instead of computing a
/// view nobody will read.
///
/// The watchdog reads a *clone* of the stream nonblockingly. HTTP/1.0
/// GETs carry no body, so any `read` returning 0 after the headers is a
/// client-side close; stray bytes (a pipelined follow-up we will never
/// parse — the demo always answers `Connection: close`) are discarded
/// without poisoning anything. Nonblocking-ness is a property of the
/// shared socket, so [`Watchdog::disarm`] must run — and restore
/// blocking mode — before the response is written.
struct Watchdog {
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl Watchdog {
    fn spawn(conn: &TcpStream, token: &CancelToken) -> Option<Watchdog> {
        let sock = conn.try_clone().ok()?;
        sock.set_nonblocking(true).ok()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let token = token.clone();
        let handle = std::thread::spawn(move || {
            let mut scratch = [0u8; 256];
            while !stop2.load(Ordering::Relaxed) {
                match std::io::Read::read(&mut (&sock), &mut scratch) {
                    Ok(0) => {
                        token.cancel_with(CancelReason::ClientGone);
                        break;
                    }
                    Ok(_) => {} // unread request bytes: discard
                    Err(e) if is_timeout(&e) => std::thread::sleep(WATCHDOG_POLL),
                    Err(_) => {
                        token.cancel_with(CancelReason::ClientGone);
                        break;
                    }
                }
            }
        });
        Some(Watchdog { stop, handle: Some(handle) })
    }

    /// Stops the watchdog and restores blocking mode on `conn` so the
    /// response can be written normally.
    fn disarm(mut self, conn: &TcpStream) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
        let _ = conn.set_nonblocking(false);
    }
}

impl Drop for Watchdog {
    fn drop(&mut self) {
        // Unwind path (disarm not reached): stop the thread so it never
        // outlives the request it was watching.
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

fn handle_connection(
    server: &SecureServer,
    conn: TcpStream,
    cfg: &HttpConfig,
    admission: &Admission,
    degraded: bool,
) -> std::io::Result<()> {
    if faults::check("handle.start") {
        return Ok(()); // injected disconnect: drop without responding
    }
    let peer_ip = conn
        .peer_addr()
        .map(|a| a.ip().to_string())
        .unwrap_or_else(|_| "127.0.0.1".to_string());
    let mut reader = BufReader::new(conn.try_clone()?);
    let mut out = conn;

    let line = match read_line_limited(&mut reader, cfg.max_request_line) {
        Ok(LineRead::Line(l)) => l,
        Ok(LineRead::TooLong) => {
            xmlsec_xml::limit_rejected("request_line");
            respond(
                &mut out,
                431,
                "Request Header Fields Too Large",
                "text/plain",
                "request line too long\n",
            )?;
            drain_before_close(&out, &mut reader);
            return Ok(());
        }
        Err(e) if is_timeout(&e) => {
            // Slow loris: the client held the socket without completing
            // a request. Best-effort 408, then close.
            let _ = respond(&mut out, 408, "Request Timeout", "text/plain", "request timeout\n");
            return Ok(());
        }
        Err(e) => return Err(e),
    };

    // Drain headers under a total byte cap, capturing the two headers
    // the demo honours: If-None-Match (conditional revalidation) and
    // X-Request-Deadline (client-declared deadline, milliseconds).
    let mut header_budget = cfg.max_header_bytes;
    let mut if_none_match: Option<String> = None;
    let mut client_deadline_ms: Option<u64> = None;
    let mut content_length: Option<usize> = None;
    loop {
        match read_line_limited(&mut reader, header_budget) {
            Ok(LineRead::Line(h)) => {
                if h.is_empty() || h == "\r\n" || h == "\n" {
                    break;
                }
                header_budget -= h.len();
                if let Some((name, value)) = h.split_once(':') {
                    let name = name.trim();
                    if name.eq_ignore_ascii_case("if-none-match") {
                        if_none_match = Some(value.trim().to_string());
                    } else if name.eq_ignore_ascii_case("x-request-deadline") {
                        // Unparsable values are ignored, not 400s: the
                        // header is advisory and the server deadline
                        // still bounds the request.
                        client_deadline_ms = value.trim().parse().ok();
                    } else if name.eq_ignore_ascii_case("content-length") {
                        content_length = value.trim().parse().ok();
                    }
                }
            }
            Ok(LineRead::TooLong) => {
                xmlsec_xml::limit_rejected("header_bytes");
                respond(
                    &mut out,
                    431,
                    "Request Header Fields Too Large",
                    "text/plain",
                    "header block too large\n",
                )?;
                drain_before_close(&out, &mut reader);
                return Ok(());
            }
            Err(e) if is_timeout(&e) => {
                let _ =
                    respond(&mut out, 408, "Request Timeout", "text/plain", "request timeout\n");
                return Ok(());
            }
            Err(e) => return Err(e),
        }
    }

    // Observability endpoint, before any document handling: the whole
    // process shares one registry, so this surfaces pipeline, cache and
    // request metrics in the Prometheus text exposition format.
    let target = line.split_whitespace().nth(1).unwrap_or("");
    if target == "/metrics" || target.starts_with("/metrics?") {
        let body = telemetry::global().render_prometheus();
        return respond(&mut out, 200, "OK", "text/plain; version=0.0.4", &body);
    }

    // Writes: `POST /update?doc=…` with a line-based op batch as body.
    if line.starts_with("POST ") {
        return handle_update(
            server,
            &mut out,
            &mut reader,
            &line,
            &peer_ip,
            cfg,
            admission,
            degraded,
            content_length,
            client_deadline_ms,
        );
    }

    let Some(request) = parse_request_line(&line, &peer_ip) else {
        return respond(&mut out, 400, "Bad Request", "text/plain", "malformed request line\n");
    };
    let (client, query) = request;

    // Degraded mode (admission controller is shedding): serve only what
    // is already computed — cache hits and revalidations — and refuse
    // fresh compute with 503 + Retry-After. Queries always recompute
    // selections, so they are always refused while shedding.
    if degraded {
        if query.is_some() {
            return respond_overloaded(&mut out, admission);
        }
        return match server.handle_cache_only(&client, if_none_match.as_deref()) {
            Ok(Some(ConditionalOutcome::NotModified { etag })) => {
                not_modified_total().inc();
                degraded_hits_total().inc();
                respond_not_modified(&mut out, &etag)
            }
            Ok(Some(ConditionalOutcome::Full(resp))) => {
                degraded_hits_total().inc();
                respond_view(&mut out, resp)
            }
            Ok(None) => respond_overloaded(&mut out, admission),
            Err(e) => respond_err(&mut out, &e),
        };
    }

    // Per-request deadline: the tighter of the server's ceiling and the
    // client's declared budget. The watchdog additionally trips the
    // token the moment the client hangs up.
    let deadline = match (cfg.request_deadline, client_deadline_ms.map(Duration::from_millis)) {
        (Some(server_d), Some(client_d)) => Some(server_d.min(client_d)),
        (server_d, client_d) => server_d.or(client_d),
    };
    let token = match deadline {
        Some(d) => CancelToken::with_timeout(d),
        None => CancelToken::never(),
    };
    let watchdog = Watchdog::spawn(&out, &token);

    if let Some(path) = query {
        // The processor runs arbitrary policy evaluation over untrusted
        // input; a panic in it answers 500 and leaves the worker alive.
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            let _ = faults::check("process.request");
            server.query_cancellable(&client, &path, Some(&token))
        }));
        if let Some(w) = watchdog {
            w.disarm(&out);
        }
        return match outcome {
            Ok(Ok(resp)) => {
                let mut body = String::new();
                for m in &resp.matches {
                    body.push_str(m);
                    body.push('\n');
                }
                if faults::check("respond.write") {
                    return Ok(());
                }
                respond(&mut out, 200, "OK", "text/xml", &body)
            }
            Ok(Err(e)) => respond_err_cancellable(&mut out, &e, admission),
            Err(_) => {
                panics_caught_total().inc();
                respond_err(
                    &mut out,
                    &ServerError::Processing("panic during query processing".to_string()),
                )
            }
        };
    }
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        let _ = faults::check("process.request");
        server.handle_cancellable(&client, if_none_match.as_deref(), Some(&token))
    }));
    if let Some(w) = watchdog {
        w.disarm(&out);
    }
    match outcome {
        Ok(Ok(ConditionalOutcome::NotModified { etag })) => {
            not_modified_total().inc();
            if faults::check("respond.write") {
                return Ok(());
            }
            respond_not_modified(&mut out, &etag)
        }
        Ok(Ok(ConditionalOutcome::Full(resp))) => {
            if faults::check("respond.write") {
                return Ok(());
            }
            respond_view(&mut out, resp)
        }
        Ok(Err(e)) => respond_err_cancellable(&mut out, &e, admission),
        Err(_) => {
            panics_caught_total().inc();
            respond_err(
                &mut out,
                &ServerError::Processing("panic during request processing".to_string()),
            )
        }
    }
}

/// Handles one `POST /update?doc=…` request: reads the Content-Length
/// framed body, parses the op batch, and runs the server's incremental
/// update path under the same deadline/cancellation contract as reads.
/// Updates always compute, so while the admission controller is
/// shedding they are refused outright with 503 + Retry-After.
#[allow(clippy::too_many_arguments)]
fn handle_update(
    server: &SecureServer,
    out: &mut TcpStream,
    reader: &mut BufReader<TcpStream>,
    line: &str,
    peer_ip: &str,
    cfg: &HttpConfig,
    admission: &Admission,
    degraded: bool,
    content_length: Option<usize>,
    client_deadline_ms: Option<u64>,
) -> std::io::Result<()> {
    let Some(client) = parse_update_request_line(line, peer_ip) else {
        return respond(out, 400, "Bad Request", "text/plain", "malformed update request\n");
    };
    if degraded {
        return respond_overloaded(out, admission);
    }
    let len = match content_length {
        Some(l) if l <= MAX_UPDATE_BODY => l,
        Some(_) => {
            xmlsec_xml::limit_rejected("update_body");
            return respond(out, 413, "Content Too Large", "text/plain", "update body too large\n");
        }
        None => {
            return respond(out, 411, "Length Required", "text/plain", "Content-Length required\n")
        }
    };
    let mut body = vec![0u8; len];
    if let Err(e) = reader.read_exact(&mut body) {
        if is_timeout(&e) {
            let _ = respond(out, 408, "Request Timeout", "text/plain", "request timeout\n");
            return Ok(());
        }
        return Err(e);
    }
    let body = String::from_utf8_lossy(&body).into_owned();
    let (lines, ops): (Vec<u32>, Vec<UpdateOp>) = match parse_update_ops_with_lines(&body) {
        Ok(ops) => ops.into_iter().unzip(),
        Err(e) => return respond(out, 400, "Bad Request", "text/plain", &format!("{e}\n")),
    };

    let deadline = match (cfg.request_deadline, client_deadline_ms.map(Duration::from_millis)) {
        (Some(server_d), Some(client_d)) => Some(server_d.min(client_d)),
        (server_d, client_d) => server_d.or(client_d),
    };
    let token = match deadline {
        Some(d) => CancelToken::with_timeout(d),
        None => CancelToken::never(),
    };
    // The body is fully consumed, so the watchdog's read-0-means-hangup
    // contract holds for POSTs exactly as for GETs.
    let watchdog = Watchdog::spawn(out, &token);
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        let _ = faults::check("process.request");
        server.update_cancellable(&client, &ops, Some(&token))
    }));
    if let Some(w) = watchdog {
        w.disarm(out);
    }
    match outcome {
        Ok(Ok(touched)) => {
            if faults::check("respond.write") {
                return Ok(());
            }
            respond(out, 200, "OK", "text/plain", &format!("updated {touched}\n"))
        }
        // A static denial points back at the op's source line in the
        // batch the client actually sent, not its post-parse index.
        Ok(Err(ServerError::UpdateDeniedStatic { op, reason })) => {
            let line = lines.get(op).copied().unwrap_or(0);
            respond(
                out,
                403,
                "Forbidden",
                "text/plain",
                &format!("update denied: line {line}: {reason}\n"),
            )
        }
        Ok(Err(e)) => respond_err_cancellable(out, &e, admission),
        Err(_) => {
            panics_caught_total().inc();
            respond_err(
                out,
                &ServerError::Processing("panic during update processing".to_string()),
            )
        }
    }
}

/// Parses `POST /update?doc=..&user=..&pass=..&ip=..&host=.. HTTP/1.x`.
pub(crate) fn parse_update_request_line(line: &str, peer_ip: &str) -> Option<ClientRequest> {
    let mut parts = line.split_whitespace();
    if parts.next()? != "POST" {
        return None;
    }
    let target = parts.next()?;
    let (path, qs) = target.split_once('?').unwrap_or((target, ""));
    if path != "/update" {
        return None;
    }
    let mut doc = None;
    let mut user = None;
    let mut pass = String::new();
    let mut ip = None;
    let mut host = None;
    for pair in qs.split('&').filter(|p| !p.is_empty()) {
        let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
        let v = percent_decode(v);
        match k {
            "doc" => doc = Some(v),
            "user" => user = Some(v),
            "pass" => pass = v,
            "ip" => ip = Some(v),
            "host" => host = Some(v),
            _ => {}
        }
    }
    let uri = doc.filter(|d| !d.is_empty())?;
    Some(ClientRequest {
        user: user.map(|u| (u, pass)),
        ip: ip.unwrap_or_else(|| peer_ip.to_string()),
        sym: host.unwrap_or_else(|| "localhost.localdomain".to_string()),
        uri,
    })
}

/// Parses the line-based update body shared by both transports. One op
/// per line, fields tab-separated; blank lines and `#` comments are
/// skipped:
///
/// ```text
/// settext <path>\t<text>
/// setattr <path>\t<name>\t<value>
/// insert <path>\t<name>
/// insertsub <path>\t<xml-fragment>
/// replacesub <path>\t<xml-fragment>
/// delete <path>
/// ```
pub fn parse_update_ops(body: &str) -> Result<Vec<UpdateOp>, String> {
    Ok(parse_update_ops_with_lines(body)?.into_iter().map(|(_, op)| op).collect())
}

/// [`parse_update_ops`], but each op carries its 1-based source line so
/// transports can point denials and parse errors back at the batch.
///
/// Field arity is strict: ops whose grammar ends in a free-text field
/// (`settext`, `insertsub`, `replacesub`) absorb the rest of the line,
/// but every other field must be exactly one tab-separated token —
/// `setattr a\tb\tc\textra`, `insert <path>\t<name>\tmore`, and
/// `delete <path>\tmore` are rejected with the offending line number
/// instead of silently folding the garbage into a value, name, or
/// path.
pub fn parse_update_ops_with_lines(body: &str) -> Result<Vec<(u32, UpdateOp)>, String> {
    let mut ops = Vec::new();
    for (i, raw) in body.lines().enumerate() {
        let lineno = (i + 1) as u32;
        let line = raw.trim_end_matches('\r');
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (verb, rest) = line.split_once(' ').unwrap_or((line, ""));
        let op = match verb {
            "settext" => {
                let (target, text) = rest
                    .split_once('\t')
                    .ok_or_else(|| format!("line {lineno}: settext wants <path>\\t<text>"))?;
                UpdateOp::SetText { target: target.to_string(), text: text.to_string() }
            }
            "setattr" => {
                let mut it = rest.splitn(3, '\t');
                match (it.next(), it.next(), it.next()) {
                    (Some(t), Some(n), Some(v)) if !t.is_empty() && !n.is_empty() => {
                        if v.contains('\t') {
                            return Err(format!(
                                "line {lineno}: setattr wants exactly \
                                 <path>\\t<name>\\t<value>, got trailing fields"
                            ));
                        }
                        UpdateOp::SetAttribute {
                            target: t.to_string(),
                            name: n.to_string(),
                            value: v.to_string(),
                        }
                    }
                    _ => {
                        return Err(format!(
                            "line {lineno}: setattr wants <path>\\t<name>\\t<value>"
                        ))
                    }
                }
            }
            "insert" => {
                let (parent, name) = rest
                    .split_once('\t')
                    .ok_or_else(|| format!("line {lineno}: insert wants <path>\\t<name>"))?;
                if name.contains('\t') {
                    return Err(format!(
                        "line {lineno}: insert wants exactly <path>\\t<name>, got trailing fields"
                    ));
                }
                UpdateOp::InsertElement { parent: parent.to_string(), name: name.to_string() }
            }
            "insertsub" => {
                let (parent, xml) = rest
                    .split_once('\t')
                    .ok_or_else(|| format!("line {lineno}: insertsub wants <path>\\t<xml>"))?;
                UpdateOp::InsertSubtree { parent: parent.to_string(), xml: xml.to_string() }
            }
            "replacesub" => {
                let (target, xml) = rest
                    .split_once('\t')
                    .ok_or_else(|| format!("line {lineno}: replacesub wants <path>\\t<xml>"))?;
                UpdateOp::ReplaceSubtree { target: target.to_string(), xml: xml.to_string() }
            }
            "delete" => {
                if rest.is_empty() {
                    return Err(format!("line {lineno}: delete wants <path>"));
                }
                if rest.contains('\t') {
                    return Err(format!(
                        "line {lineno}: delete wants exactly <path>, got trailing fields"
                    ));
                }
                UpdateOp::Delete { target: rest.to_string() }
            }
            other => return Err(format!("line {lineno}: unknown op {other:?}")),
        };
        ops.push((lineno, op));
    }
    if ops.is_empty() {
        return Err("empty update batch".to_string());
    }
    Ok(ops)
}

/// Renders a full view response (200 + ETag + cache policy).
pub(crate) fn render_view(resp: ServerResponse, keep_alive: bool) -> Vec<u8> {
    let etag_header = format!("\"{}\"", resp.etag);
    let mut body = resp.xml;
    body.push('\n');
    if let Some(dtd) = resp.loosened_dtd {
        body.push_str("<!-- loosened DTD -->\n");
        body.push_str(&dtd);
    }
    render_response(
        200,
        "OK",
        "text/xml",
        &body,
        &[("ETag", &etag_header), ("Cache-Control", "private, no-cache")],
        keep_alive,
    )
}

/// Writes a full view response (200 + ETag + cache policy).
fn respond_view(out: &mut TcpStream, resp: ServerResponse) -> std::io::Result<()> {
    out.write_all(&render_view(resp, false))?;
    out.flush()
}

/// Renders the 503 for a request refused (or abandoned) under overload,
/// with a `Retry-After` priced from the live queue depth and the
/// service-time EWMA.
pub(crate) fn render_overloaded(admission: &Admission, keep_alive: bool) -> Vec<u8> {
    let retry = admission.retry_after_secs(queue_depth().get()).to_string();
    render_response(
        503,
        "Service Unavailable",
        "text/plain",
        "server overloaded, try again shortly\n",
        &[("Retry-After", &retry)],
        keep_alive,
    )
}

/// 503 for a request refused (or abandoned) under overload, with a
/// `Retry-After` priced from the live queue depth and the service-time
/// EWMA.
fn respond_overloaded(out: &mut TcpStream, admission: &Admission) -> std::io::Result<()> {
    out.write_all(&render_overloaded(admission, false))?;
    out.flush()
}

/// [`respond_err`], except cancellations get their typed treatment: the
/// per-reason counter is bumped, a vanished client gets no bytes at all
/// (there is nobody to read them), and deadline/explicit cancellations
/// answer 503 with a computed `Retry-After` so the client retries when
/// the server expects to have capacity.
fn respond_err_cancellable(
    out: &mut TcpStream,
    e: &ServerError,
    admission: &Admission,
) -> std::io::Result<()> {
    if let ServerError::Cancelled(reason) = e {
        cancelled_total(reason.as_str()).inc();
        return match reason {
            CancelReason::ClientGone => Ok(()),
            CancelReason::DeadlineExceeded | CancelReason::Explicit => {
                respond_overloaded(out, admission)
            }
        };
    }
    respond_err(out, e)
}

/// Parses `GET /uri?user=..&pass=..&ip=..&host=..&q=.. HTTP/1.x`.
pub(crate) fn parse_request_line(
    line: &str,
    peer_ip: &str,
) -> Option<(ClientRequest, Option<String>)> {
    let mut parts = line.split_whitespace();
    if parts.next()? != "GET" {
        return None;
    }
    let target = parts.next()?;
    let (path, qs) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    let uri = percent_decode(path.strip_prefix('/')?);
    if uri.is_empty() {
        return None;
    }
    let mut user = None;
    let mut pass = String::new();
    let mut ip = None;
    let mut host = None;
    let mut query = None;
    for pair in qs.split('&').filter(|p| !p.is_empty()) {
        let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
        let v = percent_decode(v);
        match k {
            "user" => user = Some(v),
            "pass" => pass = v,
            "ip" => ip = Some(v),
            "host" => host = Some(v),
            "q" => query = Some(v),
            _ => {}
        }
    }
    let client = ClientRequest {
        user: user.map(|u| (u, pass)),
        // The demo trusts declared locations (the paper's model assumes
        // the server can establish them); default to the TCP peer.
        ip: ip.unwrap_or_else(|| peer_ip.to_string()),
        sym: host.unwrap_or_else(|| "localhost.localdomain".to_string()),
        uri,
    };
    Some((client, query))
}

fn percent_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' => {
                let hex = bytes.get(i + 1..i + 3).and_then(|h| {
                    std::str::from_utf8(h).ok().and_then(|h| u8::from_str_radix(h, 16).ok())
                });
                match hex {
                    Some(b) => {
                        out.push(b);
                        i += 3;
                    }
                    None => {
                        out.push(b'%');
                        i += 1;
                    }
                }
            }
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// Renders a typed error response (the status mapping shared by both
/// transports).
pub(crate) fn render_err(e: &ServerError, keep_alive: bool) -> Vec<u8> {
    let (code, text) = match e {
        ServerError::AuthenticationFailed => (401, "Unauthorized"),
        ServerError::NotFound(_) => (404, "Not Found"),
        ServerError::BadRequest(_) | ServerError::BadQuery(_) => (400, "Bad Request"),
        ServerError::UpdateDenied(_) | ServerError::UpdateDeniedStatic { .. } => {
            (403, "Forbidden")
        }
        ServerError::Processing(_) => (500, "Internal Server Error"),
        // The request was well-formed but asked for more resources than
        // the server allows — the client's document or query is at
        // fault, not the server.
        ServerError::LimitExceeded(_) => (422, "Unprocessable Entity"),
        // The server gave up on the request (deadline, disconnect,
        // overload) — the client may retry the identical request.
        ServerError::Cancelled(_) => (503, "Service Unavailable"),
    };
    render_response(code, text, "text/plain", &format!("{e}\n"), &[], keep_alive)
}

fn respond_err(out: &mut TcpStream, e: &ServerError) -> std::io::Result<()> {
    out.write_all(&render_err(e, false))?;
    out.flush()
}

fn respond(
    out: &mut TcpStream,
    code: u16,
    text: &str,
    ctype: &str,
    body: &str,
) -> std::io::Result<()> {
    respond_with(out, code, text, ctype, body, &[])
}

fn respond_with(
    out: &mut TcpStream,
    code: u16,
    text: &str,
    ctype: &str,
    body: &str,
    extra_headers: &[(&str, &str)],
) -> std::io::Result<()> {
    out.write_all(&render_response(code, text, ctype, body, extra_headers, false))?;
    out.flush()
}

/// Renders one complete HTTP response. Both transports produce their
/// bytes here, so a given (status, body, headers) triple is answered
/// byte-identically over the blocking pool and the event loop — the
/// only sanctioned difference is the `Connection` header, which
/// advertises `keep-alive` when the event loop will keep the connection
/// open for another request.
pub(crate) fn render_response(
    code: u16,
    text: &str,
    ctype: &str,
    body: &str,
    extra_headers: &[(&str, &str)],
    keep_alive: bool,
) -> Vec<u8> {
    let mut extra = String::new();
    for (name, value) in extra_headers {
        extra.push_str(name);
        extra.push_str(": ");
        extra.push_str(value);
        extra.push_str("\r\n");
    }
    let conn = if keep_alive { "keep-alive" } else { "close" };
    format!(
        "HTTP/1.0 {code} {text}\r\nContent-Type: {ctype}\r\nContent-Length: {}\r\n{extra}Connection: {conn}\r\n\r\n{body}",
        body.len()
    )
    .into_bytes()
}

/// Renders a 304: no body (RFC 9110 §15.4.5); the tag and cache policy
/// ride in the headers so the client can keep validating its copy.
pub(crate) fn render_not_modified(etag: &str, keep_alive: bool) -> Vec<u8> {
    let conn = if keep_alive { "keep-alive" } else { "close" };
    format!(
        "HTTP/1.0 304 Not Modified\r\nETag: \"{etag}\"\r\nCache-Control: private, no-cache\r\nConnection: {conn}\r\n\r\n"
    )
    .into_bytes()
}

/// A 304 carries no body (RFC 9110 §15.4.5); the tag and cache policy
/// ride in the headers so the client can keep validating its copy.
fn respond_not_modified(out: &mut TcpStream, etag: &str) -> std::io::Result<()> {
    out.write_all(&render_not_modified(etag, false))?;
    out.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::SecureServer;
    use std::io::Read;
    use xmlsec_authz::{AuthType, Authorization, AuthorizationBase, ObjectSpec, Sign};
    use xmlsec_subjects::{Directory, Subject};

    fn demo() -> HttpDemo {
        let mut dir = Directory::new();
        dir.add_user("tom").unwrap();
        let mut base = AuthorizationBase::new();
        base.add(Authorization::new(
            Subject::new("tom", "*", "*").unwrap(),
            ObjectSpec::with_path("doc.xml", "/d/pub").unwrap(),
            Sign::Plus,
            AuthType::Recursive,
        ));
        let mut s = SecureServer::new(dir, base);
        s.register_credentials("tom", "pw");
        s.repository_mut()
            .put_document("doc.xml", "<d><pub>hello</pub><priv>no</priv></d>", None);
        HttpDemo::start(s, "127.0.0.1:0").expect("bind ephemeral port")
    }

    fn get(addr: SocketAddr, target: &str) -> (u16, String) {
        let mut conn = TcpStream::connect(addr).expect("connect");
        write!(conn, "GET {target} HTTP/1.0\r\nHost: test\r\n\r\n").expect("write");
        let mut buf = String::new();
        conn.read_to_string(&mut buf).expect("read");
        let code: u16 = buf.split_whitespace().nth(1).and_then(|c| c.parse().ok()).unwrap_or(0);
        let body = buf.split_once("\r\n\r\n").map(|(_, b)| b.to_string()).unwrap_or_default();
        (code, body)
    }

    /// Like [`get`] but sends extra headers and returns the raw header
    /// block alongside the parsed status and body.
    fn get_full(addr: SocketAddr, target: &str, headers: &[(&str, &str)]) -> (u16, String, String) {
        let mut conn = TcpStream::connect(addr).expect("connect");
        let mut req = format!("GET {target} HTTP/1.0\r\nHost: test\r\n");
        for (name, value) in headers {
            req.push_str(&format!("{name}: {value}\r\n"));
        }
        req.push_str("\r\n");
        conn.write_all(req.as_bytes()).expect("write");
        let mut buf = String::new();
        conn.read_to_string(&mut buf).expect("read");
        let code: u16 = buf.split_whitespace().nth(1).and_then(|c| c.parse().ok()).unwrap_or(0);
        let (head, body) = buf.split_once("\r\n\r\n").unwrap_or((buf.as_str(), ""));
        (code, head.to_string(), body.to_string())
    }

    fn etag_of(head: &str) -> String {
        head.lines()
            .find_map(|l| l.strip_prefix("ETag: "))
            .expect("response carries an ETag")
            .trim()
            .to_string()
    }

    #[test]
    fn serves_views_over_http() {
        let demo = demo();
        let (code, body) = get(demo.addr(), "/doc.xml?user=tom&pass=pw&ip=1.2.3.4&host=h.x.org");
        assert_eq!(code, 200);
        assert!(body.contains("hello"), "{body}");
        assert!(!body.contains("no"), "{body}");
    }

    #[test]
    fn wrong_password_is_401() {
        let demo = demo();
        let (code, _) = get(demo.addr(), "/doc.xml?user=tom&pass=oops&ip=1.2.3.4&host=h.x.org");
        assert_eq!(code, 401);
    }

    #[test]
    fn missing_document_is_404() {
        let demo = demo();
        let (code, _) = get(demo.addr(), "/nope.xml?user=tom&pass=pw&ip=1.2.3.4&host=h.x.org");
        assert_eq!(code, 404);
    }

    #[test]
    fn queries_over_http() {
        let demo = demo();
        let (code, body) =
            get(demo.addr(), "/doc.xml?user=tom&pass=pw&ip=1.2.3.4&host=h.x.org&q=%2Fd%2Fpub");
        assert_eq!(code, 200);
        assert_eq!(body.trim(), "<pub>hello</pub>");
        // A malformed query is a 400.
        let (code2, _) =
            get(demo.addr(), "/doc.xml?user=tom&pass=pw&ip=1.2.3.4&host=h.x.org&q=%5B%5B");
        assert_eq!(code2, 400);
    }

    #[test]
    fn anonymous_requests_use_peer_address() {
        let demo = demo();
        // No user, no declared ip/host: defaults kick in; with no grants
        // for anonymous, the view is the bare shell.
        let (code, body) = get(demo.addr(), "/doc.xml");
        assert_eq!(code, 200);
        assert!(body.contains("<d/>"), "{body}");
    }

    #[test]
    fn bad_request_line_is_400() {
        let demo = demo();
        let mut conn = TcpStream::connect(demo.addr()).unwrap();
        write!(conn, "POST / HTTP/1.0\r\n\r\n").unwrap();
        let mut buf = String::new();
        conn.read_to_string(&mut buf).unwrap();
        assert!(buf.starts_with("HTTP/1.0 400"), "{buf}");
    }

    #[test]
    fn percent_decoding() {
        assert_eq!(percent_decode("a%20b+c"), "a b c");
        assert_eq!(percent_decode("%2Fd%2Fpub"), "/d/pub");
        assert_eq!(percent_decode("plain"), "plain");
        assert_eq!(percent_decode("bad%zz"), "bad%zz");
        assert_eq!(percent_decode("trail%2"), "trail%2");
    }

    #[test]
    fn view_responses_carry_etag_and_cache_control() {
        let demo = demo();
        let target = "/doc.xml?user=tom&pass=pw&ip=1.2.3.4&host=h.x.org";
        let (code, head, body) = get_full(demo.addr(), target, &[]);
        assert_eq!(code, 200);
        assert!(body.contains("hello"), "{body}");
        let etag = etag_of(&head);
        assert!(etag.starts_with('"') && etag.ends_with('"'), "strong quoted tag: {etag}");
        assert!(head.contains("Cache-Control: private, no-cache"), "{head}");
        // Error responses carry no tag.
        let (_, head401, _) =
            get_full(demo.addr(), "/doc.xml?user=tom&pass=oops&ip=1.2.3.4&host=h.x.org", &[]);
        assert!(!head401.contains("ETag:"), "{head401}");
    }

    #[test]
    fn if_none_match_revalidates_with_304() {
        let demo = demo();
        let target = "/doc.xml?user=tom&pass=pw&ip=1.2.3.4&host=h.x.org";
        let (_, head, _) = get_full(demo.addr(), target, &[]);
        let etag = etag_of(&head);
        let (code, head304, body304) = get_full(demo.addr(), target, &[("If-None-Match", &etag)]);
        assert_eq!(code, 304);
        assert!(body304.is_empty(), "a 304 has no body: {body304:?}");
        assert_eq!(etag_of(&head304), etag, "the 304 re-states the tag");
        // A stale tag gets the full body again.
        let (code2, _, body2) = get_full(demo.addr(), target, &[("If-None-Match", "\"stale\"")]);
        assert_eq!(code2, 200);
        assert!(body2.contains("hello"), "{body2}");
        // Header-name matching is case-insensitive.
        let (code3, _, _) = get_full(demo.addr(), target, &[("if-none-match", &etag)]);
        assert_eq!(code3, 304);
    }

    #[test]
    fn shutdown_is_idempotent() {
        let mut demo = demo();
        demo.shutdown();
        demo.shutdown();
    }

    #[test]
    fn shutdown_completes_without_any_connection() {
        // The old accept loop blocked until one more connection arrived;
        // shutting down a server nobody ever talked to must still return.
        let mut demo = demo();
        let t = std::time::Instant::now();
        demo.shutdown();
        assert!(t.elapsed() < std::time::Duration::from_secs(5));
    }

    #[test]
    fn metrics_endpoint_renders_prometheus_text() {
        let demo = demo();
        let _ = get(demo.addr(), "/doc.xml?user=tom&pass=pw&ip=1.2.3.4&host=h.x.org");
        let (code, body) = get(demo.addr(), "/metrics");
        assert_eq!(code, 200);
        assert!(body.contains("# TYPE xmlsec_requests_total counter"), "{body}");
        assert!(body.contains("xmlsec_pipeline_stage_duration_seconds_bucket"), "{body}");
    }

    #[test]
    fn oversized_request_line_is_431() {
        let demo = demo();
        let long = "a".repeat(10 * 1024);
        let (code, _) = get(demo.addr(), &format!("/doc.xml?user={long}"));
        assert_eq!(code, 431);
    }

    #[test]
    fn oversized_header_block_is_431() {
        let demo = demo();
        let mut conn = TcpStream::connect(demo.addr()).unwrap();
        write!(conn, "GET /doc.xml HTTP/1.0\r\n").unwrap();
        let filler = "x".repeat(1000);
        for i in 0..40 {
            // The server may answer 431 and close before we finish
            // writing; a failed write just means it already rejected us.
            if write!(conn, "X-Pad-{i}: {filler}\r\n").is_err() {
                break;
            }
        }
        let _ = write!(conn, "\r\n");
        let mut buf = String::new();
        conn.read_to_string(&mut buf).unwrap();
        assert!(buf.starts_with("HTTP/1.0 431"), "{buf}");
    }

    #[test]
    fn read_line_limited_bounds_memory() {
        let data = b"short line\nrest";
        let mut r = BufReader::new(&data[..]);
        match read_line_limited(&mut r, 64).expect("read") {
            LineRead::Line(l) => assert_eq!(l, "short line\n"),
            LineRead::TooLong => panic!("within cap"),
        }
        let mut r2 = BufReader::new(&data[..]);
        assert!(matches!(read_line_limited(&mut r2, 4).expect("read"), LineRead::TooLong));
        // EOF without terminator yields the remainder.
        let mut r3 = BufReader::new(&b"tail"[..]);
        match read_line_limited(&mut r3, 64).expect("read") {
            LineRead::Line(l) => assert_eq!(l, "tail"),
            LineRead::TooLong => panic!("within cap"),
        }
    }

    #[test]
    fn admission_sheds_only_sustained_overload() {
        let cfg = HttpConfig {
            shed_target: Duration::from_millis(10),
            shed_interval: Duration::from_millis(100),
            ..Default::default()
        };
        let adm = Admission::new(&cfg);
        let t0 = Instant::now();
        let above = Duration::from_millis(50);
        let ms = Duration::from_millis;
        // Below target: always admitted.
        assert!(adm.admit(ms(1), t0));
        // A burst above target is tolerated for one interval.
        assert!(adm.admit(above, t0));
        assert!(adm.admit(above, t0 + ms(50)));
        // Sustained a full interval: shedding starts.
        assert!(!adm.admit(above, t0 + ms(150)));
        // Between drop points requests still pass...
        assert!(adm.admit(above, t0 + ms(151)));
        // ...until the next drop point (interval/√count later).
        assert!(!adm.admit(above, t0 + ms(250)));
        // One sojourn back under target resets the episode entirely.
        assert!(adm.admit(ms(1), t0 + ms(260)));
        assert!(adm.admit(above, t0 + ms(261)));
    }

    #[test]
    fn admission_can_be_disabled() {
        let cfg = HttpConfig {
            shed_adaptive: false,
            shed_target: Duration::from_millis(1),
            shed_interval: Duration::from_millis(1),
            ..Default::default()
        };
        let adm = Admission::new(&cfg);
        let t0 = Instant::now();
        for i in 0..100 {
            assert!(adm.admit(Duration::from_secs(5), t0 + Duration::from_millis(i)));
        }
    }

    #[test]
    fn retry_after_is_priced_from_depth_and_service_time() {
        let adm = Admission::new(&HttpConfig::default());
        // Cold EWMA: 1 ms floor → clamps up to 1 second.
        assert_eq!(adm.retry_after_secs(0), 1);
        adm.record_service(Duration::from_millis(500));
        // 10 waiting × ~500 ms each ≈ 5 s.
        let r = adm.retry_after_secs(9);
        assert!((4..=6).contains(&r), "{r}");
        // Clamped to 30 s no matter the backlog.
        assert_eq!(adm.retry_after_secs(1_000_000), 30);
        // Never zero or negative, even on nonsense depth.
        assert_eq!(adm.retry_after_secs(-5), 1);
    }

    #[test]
    fn expired_client_deadline_is_503_with_retry_after() {
        let demo = demo();
        let target = "/doc.xml?user=tom&pass=pw&ip=1.2.3.4&host=h.x.org";
        let (code, head, _) = get_full(demo.addr(), target, &[("X-Request-Deadline", "0")]);
        assert_eq!(code, 503, "{head}");
        let retry = head
            .lines()
            .find_map(|l| l.strip_prefix("Retry-After: "))
            .expect("shed response names a retry hint");
        let secs: u64 = retry.trim().parse().expect("Retry-After is integer seconds");
        assert!((1..=30).contains(&secs), "{secs}");
        // The cancellation is visible per-reason in telemetry.
        let (_, metrics) = get(demo.addr(), "/metrics");
        assert!(
            metrics.contains("xmlsec_server_cancelled_total{reason=\"deadline\"}"),
            "{metrics}"
        );
        // A garbage deadline header is advisory, not a 400 — and the
        // server's own (generous) deadline still applies.
        let (code2, _, body2) = get_full(demo.addr(), target, &[("X-Request-Deadline", "soon")]);
        assert_eq!(code2, 200);
        assert!(body2.contains("hello"), "{body2}");
    }

    #[test]
    fn degraded_mode_serves_warm_cache_and_refuses_compute() {
        let mut dir = Directory::new();
        dir.add_user("tom").unwrap();
        let mut base = AuthorizationBase::new();
        base.add(Authorization::new(
            Subject::new("tom", "*", "*").unwrap(),
            ObjectSpec::with_path("doc.xml", "/d/pub").unwrap(),
            Sign::Plus,
            AuthType::Recursive,
        ));
        let mut s = SecureServer::new(dir, base);
        s.register_credentials("tom", "pw");
        s.repository_mut()
            .put_document("doc.xml", "<d><pub>hello</pub><priv>no</priv></d>", None);
        s.repository_mut().put_document("cold.xml", "<d><pub>brr</pub></d>", None);
        // Warm the cache exactly as the HTTP request below will key it.
        let warm = crate::server::ClientRequest {
            user: Some(("tom".into(), "pw".into())),
            ip: "1.2.3.4".into(),
            sym: "h.x.org".into(),
            uri: "doc.xml".into(),
        };
        let warmed = s.handle(&warm).expect("warm the cache");

        let cfg = HttpConfig::default();
        let adm = Admission::new(&cfg);
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let degraded_get = |target: &str| {
            let t = target.to_string();
            let client = std::thread::spawn(move || {
                let mut c = TcpStream::connect(addr).expect("connect");
                write!(c, "GET {t} HTTP/1.0\r\n\r\n").expect("write");
                let mut buf = String::new();
                c.read_to_string(&mut buf).expect("read");
                buf
            });
            let (conn, _) = listener.accept().expect("accept");
            handle_connection(&s, conn, &cfg, &adm, true).expect("handle");
            client.join().expect("client thread")
        };

        // Warm view: served from cache even while shedding.
        let hit = degraded_get("/doc.xml?user=tom&pass=pw&ip=1.2.3.4&host=h.x.org");
        assert!(hit.starts_with("HTTP/1.0 200"), "{hit}");
        assert!(hit.contains("hello"), "{hit}");
        assert!(hit.contains(&warmed.etag), "degraded hit carries the same tag: {hit}");
        // Cold view: would need the pipeline → refused with a hint.
        let miss = degraded_get("/cold.xml?user=tom&pass=pw&ip=1.2.3.4&host=h.x.org");
        assert!(miss.starts_with("HTTP/1.0 503"), "{miss}");
        assert!(miss.contains("Retry-After: "), "{miss}");
        // Queries always recompute → refused while shedding.
        let q = degraded_get("/doc.xml?user=tom&pass=pw&ip=1.2.3.4&host=h.x.org&q=%2Fd%2Fpub");
        assert!(q.starts_with("HTTP/1.0 503"), "{q}");
    }

    #[test]
    fn backlog_overflow_sheds_with_computed_retry_after() {
        let cfg = HttpConfig {
            workers: 1,
            backlog: 1,
            read_timeout: Duration::from_millis(600),
            ..Default::default()
        };
        let mut dir = Directory::new();
        dir.add_user("tom").unwrap();
        let s = SecureServer::new(dir, AuthorizationBase::new());
        let mut demo = HttpDemo::start_with(s, "127.0.0.1:0", cfg).expect("bind");
        // A slow loris pins the only worker...
        let mut loris = TcpStream::connect(demo.addr()).unwrap();
        write!(loris, "GET /doc").unwrap();
        loris.flush().unwrap();
        std::thread::sleep(Duration::from_millis(100));
        // ...a second connection fills the single backlog slot...
        let queued = TcpStream::connect(demo.addr()).unwrap();
        std::thread::sleep(Duration::from_millis(100));
        // ...and the third is shed with a well-formed Retry-After.
        let mut c = TcpStream::connect(demo.addr()).unwrap();
        let mut buf = String::new();
        c.read_to_string(&mut buf).unwrap();
        assert!(buf.starts_with("HTTP/1.0 503"), "{buf}");
        let retry = buf
            .lines()
            .find_map(|l| l.strip_prefix("Retry-After: "))
            .expect("backlog shed names a retry hint");
        let secs: u64 = retry.trim().parse().expect("integer seconds");
        assert!((1..=30).contains(&secs), "{secs}");
        drop(queued);
        drop(loris);
        demo.shutdown();
    }

    #[test]
    fn slow_request_times_out_with_408() {
        let cfg = HttpConfig { read_timeout: Duration::from_millis(200), ..Default::default() };
        let mut dir = Directory::new();
        dir.add_user("tom").unwrap();
        let s = SecureServer::new(dir, AuthorizationBase::new());
        let mut demo = HttpDemo::start_with(s, "127.0.0.1:0", cfg).expect("bind");
        let mut conn = TcpStream::connect(demo.addr()).unwrap();
        // Send half a request line and stall; the server should answer
        // 408 (or at minimum close) instead of pinning a worker forever.
        write!(conn, "GET /doc").unwrap();
        conn.flush().unwrap();
        let mut buf = String::new();
        let t = Instant::now();
        let _ = conn.read_to_string(&mut buf);
        assert!(t.elapsed() < Duration::from_secs(3), "connection not reaped");
        assert!(buf.is_empty() || buf.starts_with("HTTP/1.0 408"), "{buf}");
        demo.shutdown();
    }

    // --- POST /update ---------------------------------------------------

    fn writable_demo() -> HttpDemo {
        let mut dir = Directory::new();
        dir.add_user("ed").unwrap();
        dir.add_user("ro").unwrap();
        let mut base = AuthorizationBase::new();
        for user in ["ed", "ro"] {
            base.add(Authorization::new(
                Subject::new(user, "*", "*").unwrap(),
                ObjectSpec::with_path("doc.xml", "/d").unwrap(),
                Sign::Plus,
                AuthType::Recursive,
            ));
        }
        base.add(
            Authorization::new(
                Subject::new("ed", "*", "*").unwrap(),
                ObjectSpec::with_path("doc.xml", "/d").unwrap(),
                Sign::Plus,
                AuthType::Recursive,
            )
            .with_action(xmlsec_authz::Action::Write),
        );
        let mut s = SecureServer::new(dir, base);
        s.register_credentials("ed", "pw");
        s.register_credentials("ro", "pw");
        s.repository_mut().put_document("doc.xml", "<d><t>v1</t></d>", None);
        HttpDemo::start(s, "127.0.0.1:0").expect("bind ephemeral port")
    }

    fn post(addr: SocketAddr, target: &str, body: &str) -> (u16, String) {
        let mut conn = TcpStream::connect(addr).expect("connect");
        write!(
            conn,
            "POST {target} HTTP/1.0\r\nHost: test\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        )
        .expect("write");
        let mut buf = String::new();
        conn.read_to_string(&mut buf).expect("read");
        let code: u16 = buf.split_whitespace().nth(1).and_then(|c| c.parse().ok()).unwrap_or(0);
        let resp = buf.split_once("\r\n\r\n").map(|(_, b)| b.to_string()).unwrap_or_default();
        (code, resp)
    }

    const ED_UPDATE: &str = "/update?doc=doc.xml&user=ed&pass=pw&ip=1.2.3.4&host=h.x.org";

    #[test]
    fn updates_over_http() {
        let demo = writable_demo();
        let (code, body) = post(demo.addr(), ED_UPDATE, "settext /d/t\tv2\ninsert /d\tt\n");
        assert_eq!(code, 200, "{body}");
        assert_eq!(body.trim(), "updated 2");
        // The committed batch is visible through the read path at once.
        let (code2, view) = get(demo.addr(), "/doc.xml?user=ro&pass=pw&ip=1.2.3.4&host=h.x.org");
        assert_eq!(code2, 200);
        assert!(view.contains("v2"), "{view}");
        assert!(!view.contains("v1"), "{view}");
    }

    #[test]
    fn update_without_write_grant_is_403() {
        let demo = writable_demo();
        let (code, _) = post(
            demo.addr(),
            "/update?doc=doc.xml&user=ro&pass=pw&ip=1.2.3.4&host=h.x.org",
            "settext /d/t\tdefaced\n",
        );
        assert_eq!(code, 403);
        let (_, view) = get(demo.addr(), "/doc.xml?user=ro&pass=pw&ip=1.2.3.4&host=h.x.org");
        assert!(view.contains("v1"), "nothing committed: {view}");
    }

    #[test]
    fn update_with_wrong_password_is_401() {
        let demo = writable_demo();
        let (code, _) = post(
            demo.addr(),
            "/update?doc=doc.xml&user=ed&pass=oops&ip=1.2.3.4&host=h.x.org",
            "settext /d/t\tx\n",
        );
        assert_eq!(code, 401);
    }

    #[test]
    fn malformed_update_bodies_are_400() {
        let demo = writable_demo();
        // Unknown verb.
        let (code, body) = post(demo.addr(), ED_UPDATE, "frobnicate /d/t\n");
        assert_eq!(code, 400);
        assert!(body.contains("line 1"), "{body}");
        // Missing tab separator.
        let (code2, _) = post(demo.addr(), ED_UPDATE, "settext /d/t v2\n");
        assert_eq!(code2, 400);
        // Empty batch (comments only).
        let (code3, body3) = post(demo.addr(), ED_UPDATE, "# nothing\n\n");
        assert_eq!(code3, 400);
        assert!(body3.contains("empty"), "{body3}");
        // Missing doc parameter.
        let (code4, _) = post(
            demo.addr(),
            "/update?user=ed&pass=pw&ip=1.2.3.4&host=h.x.org",
            "settext /d/t\tx\n",
        );
        assert_eq!(code4, 400);
    }

    #[test]
    fn update_without_content_length_is_411() {
        let demo = writable_demo();
        let mut conn = TcpStream::connect(demo.addr()).unwrap();
        write!(conn, "POST {ED_UPDATE} HTTP/1.0\r\nHost: test\r\n\r\n").unwrap();
        let mut buf = String::new();
        conn.read_to_string(&mut buf).unwrap();
        assert!(buf.starts_with("HTTP/1.0 411"), "{buf}");
    }

    #[test]
    fn oversized_update_body_is_413() {
        let demo = writable_demo();
        let mut conn = TcpStream::connect(demo.addr()).unwrap();
        // Declare a body over the cap; the server must refuse without
        // waiting for the bytes.
        write!(
            conn,
            "POST {ED_UPDATE} HTTP/1.0\r\nHost: test\r\nContent-Length: {}\r\n\r\n",
            MAX_UPDATE_BODY + 1
        )
        .unwrap();
        let mut buf = String::new();
        conn.read_to_string(&mut buf).unwrap();
        assert!(buf.starts_with("HTTP/1.0 413"), "{buf}");
    }

    #[test]
    fn update_with_expired_deadline_is_503_and_commits_nothing() {
        let demo = writable_demo();
        let mut conn = TcpStream::connect(demo.addr()).unwrap();
        let body = "settext /d/t\tx\n";
        write!(
            conn,
            "POST {ED_UPDATE} HTTP/1.0\r\nHost: test\r\nX-Request-Deadline: 0\r\n\
             Content-Length: {}\r\n\r\n{body}",
            body.len()
        )
        .unwrap();
        let mut buf = String::new();
        conn.read_to_string(&mut buf).unwrap();
        assert!(buf.starts_with("HTTP/1.0 503"), "{buf}");
        assert!(buf.contains("Retry-After: "), "{buf}");
        let (_, view) = get(demo.addr(), "/doc.xml?user=ro&pass=pw&ip=1.2.3.4&host=h.x.org");
        assert!(view.contains("v1"), "the expired batch left the document alone: {view}");
    }
}
