//! A minimal HTTP front end for the secure server — the demonstrator the
//! paper's conclusion promises ("we intend to prepare in a short time a
//! Web site to demonstrate the characteristics of our proposal").
//!
//! Protocol: `GET /<document-uri>?user=U&pass=P&ip=A&host=H[&q=PATH]`
//! over HTTP/1.0. Without `user`, the request is anonymous. With `q`,
//! the response is the secure query result instead of the whole view.
//! When the document has a DTD, its loosened form follows the view in
//! the body behind a `<!-- loosened DTD -->` marker.
//!
//! This is a demonstrator, not a production HTTP stack: HTTP/1.0, one
//! thread per connection, no TLS (the paper likewise defers transport
//! security to the era's channel mechanisms).

use crate::server::{ClientRequest, SecureServer, ServerError};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;
use xmlsec_telemetry as telemetry;

/// How often the accept loop re-checks the stop flag while idle.
const ACCEPT_POLL: Duration = Duration::from_millis(2);

/// Handle to a running demo server.
pub struct HttpDemo {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl HttpDemo {
    /// Starts serving `server` on `addr` (use port 0 for an ephemeral
    /// port). Runs until [`HttpDemo::shutdown`] or drop.
    pub fn start(server: SecureServer, addr: &str) -> std::io::Result<HttpDemo> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        // Nonblocking accept: a blocking accept would only notice the stop
        // flag after one more connection arrived, so shutdown could hang
        // (e.g. when the bind address is unspecified and no self-connect
        // reaches the listener). Polling sidesteps the race entirely.
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let handle = std::thread::spawn(move || {
            let server = Arc::new(server);
            while !stop2.load(Ordering::SeqCst) {
                match listener.accept() {
                    Ok((conn, _)) => {
                        // The accepted socket must block; inheritance of
                        // the nonblocking flag is platform-dependent.
                        let _ = conn.set_nonblocking(false);
                        let server = Arc::clone(&server);
                        // One thread per connection keeps the demo simple.
                        std::thread::spawn(move || {
                            let _ = handle_connection(&server, conn);
                        });
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(ACCEPT_POLL);
                    }
                    Err(_) => std::thread::sleep(ACCEPT_POLL),
                }
            }
        });
        Ok(HttpDemo { addr: local, stop, handle: Some(handle) })
    }

    /// Where the demo is listening.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept loop (in-flight connections finish).
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for HttpDemo {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn handle_connection(server: &SecureServer, conn: TcpStream) -> std::io::Result<()> {
    let peer_ip = conn
        .peer_addr()
        .map(|a| a.ip().to_string())
        .unwrap_or_else(|_| "127.0.0.1".to_string());
    let mut reader = BufReader::new(conn.try_clone()?);
    let mut line = String::new();
    reader.read_line(&mut line)?;
    // Drain headers (ignored).
    loop {
        let mut h = String::new();
        if reader.read_line(&mut h)? == 0 || h == "\r\n" || h == "\n" {
            break;
        }
    }
    let mut out = conn;

    // Observability endpoint, before any document handling: the whole
    // process shares one registry, so this surfaces pipeline, cache and
    // request metrics in the Prometheus text exposition format.
    let target = line.split_whitespace().nth(1).unwrap_or("");
    if target == "/metrics" || target.starts_with("/metrics?") {
        let body = telemetry::global().render_prometheus();
        return respond(&mut out, 200, "OK", "text/plain; version=0.0.4", &body);
    }

    let Some(request) = parse_request_line(&line, &peer_ip) else {
        return respond(&mut out, 400, "Bad Request", "text/plain", "malformed request line\n");
    };
    let (client, query) = request;

    if let Some(path) = query {
        return match server.query(&client, &path) {
            Ok(resp) => {
                let mut body = String::new();
                for m in &resp.matches {
                    body.push_str(m);
                    body.push('\n');
                }
                respond(&mut out, 200, "OK", "text/xml", &body)
            }
            Err(e) => respond_err(&mut out, &e),
        };
    }
    match server.handle(&client) {
        Ok(resp) => {
            let mut body = resp.xml;
            body.push('\n');
            if let Some(dtd) = resp.loosened_dtd {
                body.push_str("<!-- loosened DTD -->\n");
                body.push_str(&dtd);
            }
            respond(&mut out, 200, "OK", "text/xml", &body)
        }
        Err(e) => respond_err(&mut out, &e),
    }
}

/// Parses `GET /uri?user=..&pass=..&ip=..&host=..&q=.. HTTP/1.x`.
fn parse_request_line(line: &str, peer_ip: &str) -> Option<(ClientRequest, Option<String>)> {
    let mut parts = line.split_whitespace();
    if parts.next()? != "GET" {
        return None;
    }
    let target = parts.next()?;
    let (path, qs) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    let uri = percent_decode(path.strip_prefix('/')?);
    if uri.is_empty() {
        return None;
    }
    let mut user = None;
    let mut pass = String::new();
    let mut ip = None;
    let mut host = None;
    let mut query = None;
    for pair in qs.split('&').filter(|p| !p.is_empty()) {
        let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
        let v = percent_decode(v);
        match k {
            "user" => user = Some(v),
            "pass" => pass = v,
            "ip" => ip = Some(v),
            "host" => host = Some(v),
            "q" => query = Some(v),
            _ => {}
        }
    }
    let client = ClientRequest {
        user: user.map(|u| (u, pass)),
        // The demo trusts declared locations (the paper's model assumes
        // the server can establish them); default to the TCP peer.
        ip: ip.unwrap_or_else(|| peer_ip.to_string()),
        sym: host.unwrap_or_else(|| "localhost.localdomain".to_string()),
        uri,
    };
    Some((client, query))
}

fn percent_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' => {
                let hex = bytes.get(i + 1..i + 3).and_then(|h| {
                    std::str::from_utf8(h).ok().and_then(|h| u8::from_str_radix(h, 16).ok())
                });
                match hex {
                    Some(b) => {
                        out.push(b);
                        i += 3;
                    }
                    None => {
                        out.push(b'%');
                        i += 1;
                    }
                }
            }
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

fn respond_err(out: &mut TcpStream, e: &ServerError) -> std::io::Result<()> {
    let (code, text) = match e {
        ServerError::AuthenticationFailed => (401, "Unauthorized"),
        ServerError::NotFound(_) => (404, "Not Found"),
        ServerError::BadRequest(_) | ServerError::BadQuery(_) => (400, "Bad Request"),
        ServerError::UpdateDenied(_) => (403, "Forbidden"),
        ServerError::Processing(_) => (500, "Internal Server Error"),
    };
    respond(out, code, text, "text/plain", &format!("{e}\n"))
}

fn respond(
    out: &mut TcpStream,
    code: u16,
    text: &str,
    ctype: &str,
    body: &str,
) -> std::io::Result<()> {
    write!(
        out,
        "HTTP/1.0 {code} {text}\r\nContent-Type: {ctype}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )?;
    out.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::SecureServer;
    use std::io::Read;
    use xmlsec_authz::{AuthType, Authorization, AuthorizationBase, ObjectSpec, Sign};
    use xmlsec_subjects::{Directory, Subject};

    fn demo() -> HttpDemo {
        let mut dir = Directory::new();
        dir.add_user("tom").unwrap();
        let mut base = AuthorizationBase::new();
        base.add(Authorization::new(
            Subject::new("tom", "*", "*").unwrap(),
            ObjectSpec::with_path("doc.xml", "/d/pub").unwrap(),
            Sign::Plus,
            AuthType::Recursive,
        ));
        let mut s = SecureServer::new(dir, base);
        s.register_credentials("tom", "pw");
        s.repository_mut()
            .put_document("doc.xml", "<d><pub>hello</pub><priv>no</priv></d>", None);
        HttpDemo::start(s, "127.0.0.1:0").expect("bind ephemeral port")
    }

    fn get(addr: SocketAddr, target: &str) -> (u16, String) {
        let mut conn = TcpStream::connect(addr).expect("connect");
        write!(conn, "GET {target} HTTP/1.0\r\nHost: test\r\n\r\n").expect("write");
        let mut buf = String::new();
        conn.read_to_string(&mut buf).expect("read");
        let code: u16 = buf.split_whitespace().nth(1).and_then(|c| c.parse().ok()).unwrap_or(0);
        let body = buf.split_once("\r\n\r\n").map(|(_, b)| b.to_string()).unwrap_or_default();
        (code, body)
    }

    #[test]
    fn serves_views_over_http() {
        let demo = demo();
        let (code, body) = get(demo.addr(), "/doc.xml?user=tom&pass=pw&ip=1.2.3.4&host=h.x.org");
        assert_eq!(code, 200);
        assert!(body.contains("hello"), "{body}");
        assert!(!body.contains("no"), "{body}");
    }

    #[test]
    fn wrong_password_is_401() {
        let demo = demo();
        let (code, _) = get(demo.addr(), "/doc.xml?user=tom&pass=oops&ip=1.2.3.4&host=h.x.org");
        assert_eq!(code, 401);
    }

    #[test]
    fn missing_document_is_404() {
        let demo = demo();
        let (code, _) = get(demo.addr(), "/nope.xml?user=tom&pass=pw&ip=1.2.3.4&host=h.x.org");
        assert_eq!(code, 404);
    }

    #[test]
    fn queries_over_http() {
        let demo = demo();
        let (code, body) =
            get(demo.addr(), "/doc.xml?user=tom&pass=pw&ip=1.2.3.4&host=h.x.org&q=%2Fd%2Fpub");
        assert_eq!(code, 200);
        assert_eq!(body.trim(), "<pub>hello</pub>");
        // A malformed query is a 400.
        let (code2, _) =
            get(demo.addr(), "/doc.xml?user=tom&pass=pw&ip=1.2.3.4&host=h.x.org&q=%5B%5B");
        assert_eq!(code2, 400);
    }

    #[test]
    fn anonymous_requests_use_peer_address() {
        let demo = demo();
        // No user, no declared ip/host: defaults kick in; with no grants
        // for anonymous, the view is the bare shell.
        let (code, body) = get(demo.addr(), "/doc.xml");
        assert_eq!(code, 200);
        assert!(body.contains("<d/>"), "{body}");
    }

    #[test]
    fn bad_request_line_is_400() {
        let demo = demo();
        let mut conn = TcpStream::connect(demo.addr()).unwrap();
        write!(conn, "POST / HTTP/1.0\r\n\r\n").unwrap();
        let mut buf = String::new();
        conn.read_to_string(&mut buf).unwrap();
        assert!(buf.starts_with("HTTP/1.0 400"), "{buf}");
    }

    #[test]
    fn percent_decoding() {
        assert_eq!(percent_decode("a%20b+c"), "a b c");
        assert_eq!(percent_decode("%2Fd%2Fpub"), "/d/pub");
        assert_eq!(percent_decode("plain"), "plain");
        assert_eq!(percent_decode("bad%zz"), "bad%zz");
        assert_eq!(percent_decode("trail%2"), "trail%2");
    }

    #[test]
    fn shutdown_is_idempotent() {
        let mut demo = demo();
        demo.shutdown();
        demo.shutdown();
    }

    #[test]
    fn shutdown_completes_without_any_connection() {
        // The old accept loop blocked until one more connection arrived;
        // shutting down a server nobody ever talked to must still return.
        let mut demo = demo();
        let t = std::time::Instant::now();
        demo.shutdown();
        assert!(t.elapsed() < std::time::Duration::from_secs(5));
    }

    #[test]
    fn metrics_endpoint_renders_prometheus_text() {
        let demo = demo();
        let _ = get(demo.addr(), "/doc.xml?user=tom&pass=pw&ip=1.2.3.4&host=h.x.org");
        let (code, body) = get(demo.addr(), "/metrics");
        assert_eq!(code, 200);
        assert!(body.contains("# TYPE xmlsec_requests_total counter"), "{body}");
        assert!(body.contains("xmlsec_pipeline_stage_duration_seconds_bucket"), "{body}");
    }
}
