//! # xmlsec-server — the secure document server (paper §7)
//!
//! The paper's usage scenario as a library: documents and DTDs in a
//! [`Repository`], server-local authentication, the security processor
//! run per request, a [`ViewCache`] keyed by applicable-authorization
//! fingerprint **and repository content hash** (requesters covered by
//! the same authorizations share a view; a content change structurally
//! misses — see `docs/CACHING.md`), and an append-only [`AuditLog`].
//! The same content identity backs HTTP conditional revalidation
//! (`ETag` / `If-None-Match` → 304).
//!
//! Access control is enforced **server side**: the client receives only
//! the computed view and the loosened DTD, so "the accidental transfer to
//! the client of information it is not allowed to see" cannot happen and
//! security checking stays transparent to remote clients.

#![warn(missing_docs)]
#![warn(clippy::unwrap_used)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod audit;
pub mod cache;
pub mod epoll;
#[cfg(feature = "faults")]
pub mod faults;
pub mod http;
pub mod repo;
pub mod server;
pub mod site;

pub use audit::{AuditLog, AuditOutcome, AuditRecord};
pub use cache::{CachedView, ViewCache, ViewKey};
pub use epoll::{AnyDemo, EpollDemo, Transport};
pub use http::{parse_update_ops, parse_update_ops_with_lines, HttpConfig, HttpDemo};
pub use repo::{fnv1a64, Repository, StoredDocument};
pub use server::{
    etag_matches, ClientRequest, ConditionalOutcome, QueryResponse, SecureServer, ServerError,
    ServerResponse,
};
pub use site::{load_site, SiteError, SiteSummary};
