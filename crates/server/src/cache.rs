//! View cache.
//!
//! The processor's output depends only on `(document, DTD, policy,
//! applicable authorization sets)` — not on the requester identity
//! itself. Requesters covered by the same authorizations therefore share
//! a view, and caching by *authorization fingerprint* collapses, e.g.,
//! every anonymous `Public` reader of a popular document into one entry.
//! This is the server-side optimization the paper's on-line scenario
//! invites; the `server` bench measures its effect.
//!
//! Keys are **content-addressed**: alongside the authorization
//! fingerprint, [`ViewKey`] carries the repository's content hash of the
//! document and its DTD ([`crate::repo::Repository::content_hash`]).
//! Any content change — an update batch, a direct `put_document`, a DTD
//! replacement — moves the hash, so lookups for the new content miss
//! *structurally*, whether or not anyone remembered to call
//! [`ViewCache::invalidate_uri`]. Explicit invalidation remains useful
//! as hygiene: it reclaims the space early. Entries left behind by a
//! content change are additionally swept lazily: a miss drops any entry
//! with the same `(uri, fingerprint)` but an outdated content hash and
//! counts it in `xmlsec_view_cache_stale_rejected_total`.
//!
//! Cache traffic is mirrored into the global telemetry registry
//! (`xmlsec_view_cache_{hits,misses,evictions,stale_rejected}_total`
//! and the `xmlsec_view_cache_entries` gauge) so `/metrics` and the CLI
//! `stats` command see it without asking the server for its internal
//! counters. The gauge is maintained by *deltas*, so several live
//! caches sum into it instead of clobbering each other's `set` calls.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::{Arc, Mutex, OnceLock};
use xmlsec_authz::Authorization;
use xmlsec_telemetry as telemetry;

/// Key ingredients for one cached view.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ViewKey {
    /// Document URI.
    pub uri: String,
    /// Content fingerprint of the applicable instance + schema
    /// authorization sets and the policy (see [`fingerprint`]).
    pub fingerprint: u64,
    /// Content hash of the document and its DTD as registered in the
    /// repository (see `Repository::content_hash`). Computed on
    /// registration/update — never per request — and folded in here so
    /// a content change can never be answered with a stale view.
    pub content: u64,
}

/// Builds the fingerprint from the applicable authorizations'
/// **content** (sorted, so list order is irrelevant) and the policy tag.
///
/// Hashing content rather than indices into the per-URI lists means an
/// in-place mutation of an authorization — its sign, type, subject, or
/// object — necessarily changes the fingerprint: a stale view can never
/// be served after a policy edit, even one that bypasses the
/// grant/revoke invalidation hooks.
pub fn fingerprint(instance: &[&Authorization], schema: &[&Authorization], policy_tag: u8) -> u64 {
    fn feed(h: &mut DefaultHasher, set: &[&Authorization]) {
        let mut rendered: Vec<String> = set.iter().map(|a| a.to_string()).collect();
        rendered.sort();
        rendered.hash(h);
    }
    let mut h = DefaultHasher::new();
    policy_tag.hash(&mut h);
    feed(&mut h, instance);
    0xffff_usize.hash(&mut h); // separator
    feed(&mut h, schema);
    h.finish()
}

/// A cached processor output.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CachedView {
    /// The unparsed view.
    pub xml: String,
    /// The loosened DTD, when the document has one.
    pub loosened_dtd: Option<String>,
    /// Strong entity tag over `(key, view bytes)`, precomputed so cache
    /// hits (and 304 short-circuits) never rehash the view.
    pub etag: String,
}

struct CacheMetrics {
    hits: Arc<telemetry::Counter>,
    misses: Arc<telemetry::Counter>,
    evictions: Arc<telemetry::Counter>,
    stale_rejected: Arc<telemetry::Counter>,
    entries: Arc<telemetry::Gauge>,
}

fn cache_metrics() -> &'static CacheMetrics {
    static METRICS: OnceLock<CacheMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let reg = telemetry::global();
        CacheMetrics {
            hits: reg.counter(
                "xmlsec_view_cache_hits_total",
                "View-cache lookups answered from a cached view.",
                &[],
            ),
            misses: reg.counter(
                "xmlsec_view_cache_misses_total",
                "View-cache lookups that required a full pipeline run.",
                &[],
            ),
            evictions: reg.counter(
                "xmlsec_view_cache_evictions_total",
                "Cached views dropped to stay within capacity.",
                &[],
            ),
            stale_rejected: reg.counter(
                "xmlsec_view_cache_stale_rejected_total",
                "Cached views dropped because their content hash no longer \
                 matches the repository (lazily swept on a miss).",
                &[],
            ),
            entries: reg.gauge(
                "xmlsec_view_cache_entries",
                "Views currently held across all live caches.",
                &[],
            ),
        }
    })
}

/// Thread-safe view cache with hit/miss counters.
#[derive(Debug, Default)]
pub struct ViewCache {
    inner: Mutex<CacheInner>,
    /// Maximum entries before insertion evicts (None = unbounded).
    capacity: Option<usize>,
}

#[derive(Debug, Default)]
struct CacheInner {
    map: HashMap<ViewKey, CachedView>,
    /// Insertion order, oldest first, for FIFO eviction. Every removal
    /// path (invalidation, stale sweep, eviction, clear) also drops the
    /// key here, so `order.len() == map.len()` is an invariant — churn
    /// cannot grow it without bound.
    order: Vec<ViewKey>,
    hits: u64,
    misses: u64,
    evictions: u64,
    stale_rejected: u64,
}

impl ViewCache {
    /// An empty, unbounded cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty cache that evicts oldest-inserted views past `capacity`.
    pub fn with_capacity(capacity: usize) -> Self {
        ViewCache { inner: Mutex::new(CacheInner::default()), capacity: Some(capacity) }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, CacheInner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Looks up a view, counting the hit/miss. A miss also sweeps
    /// entries for the same `(uri, fingerprint)` whose content hash
    /// differs — those are views of bytes the repository no longer
    /// holds, unreachable by any future lookup.
    pub fn get(&self, key: &ViewKey) -> Option<CachedView> {
        let mut inner = self.lock();
        match inner.map.get(key).cloned() {
            Some(v) => {
                inner.hits += 1;
                cache_metrics().hits.inc();
                Some(v)
            }
            None => {
                inner.misses += 1;
                cache_metrics().misses.inc();
                let before = inner.map.len();
                inner.map.retain(|k, _| {
                    !(k.uri == key.uri
                        && k.fingerprint == key.fingerprint
                        && k.content != key.content)
                });
                let stale = before - inner.map.len();
                if stale > 0 {
                    inner.stale_rejected += stale as u64;
                    let m = cache_metrics();
                    m.stale_rejected.add(stale as u64);
                    m.entries.add(-(stale as i64));
                    let CacheInner { map, order, .. } = &mut *inner;
                    order.retain(|k| map.contains_key(k));
                }
                None
            }
        }
    }

    /// Stores a view, evicting the oldest entries if over capacity.
    pub fn put(&self, key: ViewKey, view: CachedView) {
        let mut inner = self.lock();
        if inner.map.insert(key.clone(), view).is_none() {
            inner.order.push(key);
            cache_metrics().entries.add(1);
        }
        if let Some(cap) = self.capacity {
            let mut cursor = 0;
            while inner.map.len() > cap && cursor < inner.order.len() {
                let victim = inner.order[cursor].clone();
                cursor += 1;
                if inner.map.remove(&victim).is_some() {
                    inner.evictions += 1;
                    let m = cache_metrics();
                    m.evictions.inc();
                    m.entries.add(-1);
                }
            }
            inner.order.drain(..cursor);
        }
    }

    /// Snapshot of every key currently cached for `uri`, oldest first.
    ///
    /// The update path uses this to enumerate the warm views it must
    /// patch in place after a commit moves the content hash.
    pub fn keys_for_uri(&self, uri: &str) -> Vec<ViewKey> {
        let inner = self.lock();
        inner.order.iter().filter(|k| k.uri == uri).cloned().collect()
    }

    /// `true` when `key` is currently cached. No hit/miss accounting.
    pub fn contains_key(&self, key: &ViewKey) -> bool {
        self.lock().map.contains_key(key)
    }

    /// Replaces the entry at `old` with `(new, view)` **in place**: the
    /// new entry inherits the old one's position in the FIFO eviction
    /// order, so patching a warm view does not reset its age. Returns
    /// `false` (and stores nothing) when `old` is not cached — the
    /// caller should fall back to [`ViewCache::put`] or drop the view.
    pub fn replace(&self, old: &ViewKey, new: ViewKey, view: CachedView) -> bool {
        let mut inner = self.lock();
        if inner.map.remove(old).is_none() {
            return false;
        }
        // Rewrite the key in its existing order slot; entry count is
        // unchanged, so the shared gauge is untouched.
        if let Some(slot) = inner.order.iter_mut().find(|k| *k == old) {
            *slot = new.clone();
        }
        if inner.map.insert(new.clone(), view).is_some() {
            // `new` was independently cached: we just clobbered it, so
            // one of its two order slots must go.
            let mut seen = false;
            inner.order.retain(|k| {
                if *k == new {
                    if seen {
                        return false;
                    }
                    seen = true;
                }
                true
            });
            cache_metrics().entries.add(-1);
        }
        true
    }

    /// Drops one entry. Returns `true` when it was present.
    pub fn remove(&self, key: &ViewKey) -> bool {
        let mut inner = self.lock();
        if inner.map.remove(key).is_some() {
            inner.order.retain(|k| k != key);
            cache_metrics().entries.add(-1);
            true
        } else {
            false
        }
    }

    /// Drops every entry for `uri` (call when a document or its XACL
    /// changes). Returns how many entries were removed.
    pub fn invalidate_uri(&self, uri: &str) -> usize {
        let mut inner = self.lock();
        let before = inner.map.len();
        inner.map.retain(|k, _| k.uri != uri);
        inner.order.retain(|k| k.uri != uri);
        let removed = before - inner.map.len();
        if removed > 0 {
            cache_metrics().entries.add(-(removed as i64));
        }
        removed
    }

    /// Clears the cache entirely.
    pub fn clear(&self) {
        let mut inner = self.lock();
        let removed = inner.map.len();
        inner.map.clear();
        inner.order.clear();
        if removed > 0 {
            cache_metrics().entries.add(-(removed as i64));
        }
    }

    /// `(hits, misses)` so far.
    pub fn stats(&self) -> (u64, u64) {
        let inner = self.lock();
        (inner.hits, inner.misses)
    }

    /// Views evicted for capacity so far.
    pub fn evictions(&self) -> u64 {
        self.lock().evictions
    }

    /// Stale (content-hash-mismatched) views swept on misses so far.
    pub fn stale_rejected(&self) -> u64 {
        self.lock().stale_rejected
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.lock().map.len()
    }

    /// Length of the internal insertion-order list — bounded by
    /// [`ViewCache::len`] at all times; exposed so churn tests can pin
    /// the invariant.
    pub fn order_len(&self) -> usize {
        self.lock().order.len()
    }

    /// `true` when the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Drop for ViewCache {
    /// Returns this cache's entries to the shared gauge so two live
    /// caches (tests, per-shard splits) account independently.
    fn drop(&mut self) {
        let inner = self.inner.get_mut().unwrap_or_else(|e| e.into_inner());
        if !inner.map.is_empty() {
            cache_metrics().entries.add(-(inner.map.len() as i64));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(uri: &str, fp: u64) -> ViewKey {
        key_v(uri, fp, 0)
    }

    fn key_v(uri: &str, fp: u64, content: u64) -> ViewKey {
        ViewKey { uri: uri.to_string(), fingerprint: fp, content }
    }

    fn view(x: &str) -> CachedView {
        CachedView { xml: x.to_string(), loosened_dtd: None, etag: format!("t-{x}") }
    }

    #[test]
    fn hit_and_miss_accounting() {
        let c = ViewCache::new();
        assert!(c.get(&key("a", 1)).is_none());
        c.put(key("a", 1), view("<a/>"));
        assert_eq!(c.get(&key("a", 1)).unwrap().xml, "<a/>");
        assert!(c.get(&key("a", 2)).is_none());
        assert_eq!(c.stats(), (1, 2));
        assert_eq!(c.len(), 1);
    }

    fn auth(spec: &str, sign: xmlsec_authz::Sign) -> Authorization {
        Authorization::new(
            xmlsec_subjects::Subject::new("u", "*", "*").unwrap(),
            xmlsec_authz::ObjectSpec::parse(spec).unwrap(),
            sign,
            xmlsec_authz::AuthType::Recursive,
        )
    }

    #[test]
    fn fingerprint_sensitivity() {
        use xmlsec_authz::Sign;
        let a = auth("d.xml:/a", Sign::Plus);
        let b = auth("d.xml:/a/b", Sign::Minus);
        let c = auth("d.xml:/a/c", Sign::Plus);
        let base = fingerprint(&[&a, &c], &[&b], 0);
        assert_eq!(base, fingerprint(&[&a, &c], &[&b], 0));
        assert_eq!(base, fingerprint(&[&c, &a], &[&b], 0), "set order is not identity");
        assert_ne!(base, fingerprint(&[&a, &b], &[&c], 0)); // split matters
        assert_ne!(base, fingerprint(&[&a, &c], &[&b], 1)); // policy matters
        assert_ne!(base, fingerprint(&[&a], &[&b], 0)); // membership matters
    }

    #[test]
    fn mutating_one_authorization_changes_the_fingerprint() {
        use xmlsec_authz::Sign;
        let a = auth("d.xml:/a", Sign::Plus);
        let b = auth("d.xml:/a/b", Sign::Minus);
        let before = fingerprint(&[&a, &b], &[], 0);
        // Flip the sign of one authorization in place — the content hash
        // must move, so any cached view keyed on `before` misses.
        let mut b2 = b.clone();
        b2.sign = Sign::Plus;
        assert_ne!(before, fingerprint(&[&a, &b2], &[], 0));
        // And so must a changed object path.
        let b3 = auth("d.xml:/a/b2", Sign::Minus);
        assert_ne!(before, fingerprint(&[&a, &b3], &[], 0));
    }

    #[test]
    fn content_hash_is_part_of_the_key() {
        let c = ViewCache::new();
        c.put(key_v("a", 1, 100), view("<a v1/>"));
        // Same URI and fingerprint, new content: structural miss.
        assert!(c.get(&key_v("a", 1, 200)).is_none());
        // The old-content entry is unreachable and was swept on the miss.
        assert_eq!(c.len(), 0);
        assert_eq!(c.stale_rejected(), 1);
        c.put(key_v("a", 1, 200), view("<a v2/>"));
        assert_eq!(c.get(&key_v("a", 1, 200)).unwrap().xml, "<a v2/>");
    }

    #[test]
    fn stale_sweep_spares_other_fingerprints_and_uris() {
        let c = ViewCache::new();
        c.put(key_v("a", 1, 100), view("<a/>"));
        c.put(key_v("a", 2, 100), view("<a2/>"));
        c.put(key_v("b", 1, 100), view("<b/>"));
        // Miss on (a, 1) at new content sweeps only the (a, 1) twin:
        // (a, 2) is a different requester class and is swept on *its*
        // first miss; (b, 1) is a different document.
        assert!(c.get(&key_v("a", 1, 999)).is_none());
        assert_eq!(c.len(), 2);
        assert_eq!(c.stale_rejected(), 1);
        assert!(c.get(&key_v("b", 1, 100)).is_some());
    }

    #[test]
    fn invalidation() {
        let c = ViewCache::new();
        c.put(key("a", 1), view("<a/>"));
        c.put(key("a", 2), view("<a2/>"));
        c.put(key("b", 1), view("<b/>"));
        assert_eq!(c.invalidate_uri("a"), 2);
        assert_eq!(c.len(), 1);
        assert!(c.get(&key("b", 1)).is_some());
        c.clear();
        assert!(c.is_empty());
    }

    #[test]
    fn capacity_evicts_oldest_first() {
        let c = ViewCache::with_capacity(2);
        c.put(key("a", 1), view("<a/>"));
        c.put(key("b", 1), view("<b/>"));
        c.put(key("c", 1), view("<c/>"));
        assert_eq!(c.len(), 2);
        assert_eq!(c.evictions(), 1);
        assert!(c.get(&key("a", 1)).is_none(), "oldest entry should be evicted");
        assert!(c.get(&key("b", 1)).is_some());
        assert!(c.get(&key("c", 1)).is_some());
    }

    #[test]
    fn reinsert_does_not_double_count_order() {
        let c = ViewCache::with_capacity(2);
        c.put(key("a", 1), view("<a/>"));
        c.put(key("a", 1), view("<a v2/>"));
        c.put(key("b", 1), view("<b/>"));
        // Still within capacity: nothing evicted despite two puts of "a".
        assert_eq!(c.len(), 2);
        assert_eq!(c.evictions(), 0);
        assert_eq!(c.get(&key("a", 1)).unwrap().xml, "<a v2/>");
    }

    #[test]
    fn eviction_after_invalidation_stays_consistent() {
        let c = ViewCache::with_capacity(2);
        c.put(key("a", 1), view("<a/>"));
        c.put(key("b", 1), view("<b/>"));
        c.invalidate_uri("a");
        c.put(key("c", 1), view("<c/>"));
        // "a" is already gone; capacity holds without a real eviction.
        assert_eq!(c.len(), 2);
        assert_eq!(c.evictions(), 0);
        assert!(c.get(&key("b", 1)).is_some());
    }

    #[test]
    fn replace_preserves_eviction_position() {
        let c = ViewCache::with_capacity(2);
        c.put(key_v("a", 1, 100), view("<a/>"));
        c.put(key_v("b", 1, 100), view("<b/>"));
        // Patch "a" in place: new content hash, same age.
        assert!(c.replace(&key_v("a", 1, 100), key_v("a", 1, 200), view("<a v2/>")));
        assert_eq!(c.len(), 2);
        // A third insert still evicts the patched "a" — it kept the
        // oldest slot rather than being treated as freshly inserted.
        c.put(key_v("c", 1, 100), view("<c/>"));
        assert!(c.get(&key_v("a", 1, 200)).is_none(), "patched entry keeps its age");
        assert!(c.get(&key_v("b", 1, 100)).is_some());
        assert_eq!(c.order_len(), c.len());
    }

    #[test]
    fn replace_of_absent_key_is_a_noop() {
        let c = ViewCache::new();
        assert!(!c.replace(&key_v("a", 1, 100), key_v("a", 1, 200), view("<a/>")));
        assert!(c.is_empty());
        assert_eq!(c.order_len(), 0);
    }

    #[test]
    fn replace_onto_existing_key_collapses_to_one_entry() {
        let c = ViewCache::new();
        c.put(key_v("a", 1, 100), view("<old/>"));
        c.put(key_v("a", 1, 200), view("<already-new/>"));
        assert!(c.replace(&key_v("a", 1, 100), key_v("a", 1, 200), view("<patched/>")));
        assert_eq!(c.len(), 1);
        assert_eq!(c.order_len(), 1);
        assert_eq!(c.get(&key_v("a", 1, 200)).unwrap().xml, "<patched/>");
    }

    #[test]
    fn keys_for_uri_and_remove() {
        let c = ViewCache::new();
        c.put(key_v("a", 1, 100), view("<a/>"));
        c.put(key_v("a", 2, 100), view("<a2/>"));
        c.put(key_v("b", 1, 100), view("<b/>"));
        let keys = c.keys_for_uri("a");
        assert_eq!(keys.len(), 2);
        assert!(keys.iter().all(|k| k.uri == "a"));
        assert!(c.contains_key(&keys[0]));
        assert!(c.remove(&keys[0]));
        assert!(!c.remove(&keys[0]));
        assert!(!c.contains_key(&keys[0]));
        assert_eq!(c.len(), 2);
        assert_eq!(c.order_len(), 2);
    }

    #[test]
    fn churn_keeps_order_bounded_by_live_entries() {
        // The regression this pins: invalidate/put churn on an
        // unbounded cache used to leave dead keys in `order` forever.
        let c = ViewCache::new();
        for round in 0..100u64 {
            for fp in 0..10u64 {
                c.put(key_v("doc.xml", fp, round), view("<v/>"));
            }
            c.put(key_v("other.xml", 0, round), view("<o/>"));
            c.invalidate_uri("doc.xml");
            assert!(
                c.order_len() <= c.len(),
                "round {round}: order {} > live {}",
                c.order_len(),
                c.len()
            );
        }
        // Only the per-round "other.xml" entries remain.
        assert_eq!(c.len(), 100);
        assert_eq!(c.order_len(), c.len());

        // Content-hash churn (no invalidate calls at all): stale sweep
        // keeps both the map and the order list bounded.
        let c = ViewCache::new();
        for round in 0..100u64 {
            c.put(key_v("d.xml", 7, round), view("<v/>"));
            assert!(c.get(&key_v("d.xml", 7, round + 1)).is_none());
            assert!(c.len() <= 1, "stale twins must not accumulate");
            assert!(c.order_len() <= c.len());
        }
        assert_eq!(c.stale_rejected(), 100);
    }
}
