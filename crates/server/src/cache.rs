//! View cache.
//!
//! The processor's output depends only on `(document, DTD, policy,
//! applicable authorization sets)` — not on the requester identity
//! itself. Requesters covered by the same authorizations therefore share
//! a view, and caching by *authorization fingerprint* collapses, e.g.,
//! every anonymous `Public` reader of a popular document into one entry.
//! This is the server-side optimization the paper's on-line scenario
//! invites; the `server` bench measures its effect.

use parking_lot::Mutex;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};

/// Key ingredients for one cached view.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ViewKey {
    /// Document URI.
    pub uri: String,
    /// Fingerprint of the applicable instance + schema authorization
    /// sets (indices into the per-URI lists) and the policy.
    pub fingerprint: u64,
}

/// Builds the fingerprint from applicable authorization indices.
pub fn fingerprint(instance_idx: &[usize], schema_idx: &[usize], policy_tag: u8) -> u64 {
    let mut h = DefaultHasher::new();
    policy_tag.hash(&mut h);
    instance_idx.hash(&mut h);
    0xffff_usize.hash(&mut h); // separator
    schema_idx.hash(&mut h);
    h.finish()
}

/// A cached processor output.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CachedView {
    /// The unparsed view.
    pub xml: String,
    /// The loosened DTD, when the document has one.
    pub loosened_dtd: Option<String>,
}

/// Thread-safe view cache with hit/miss counters.
#[derive(Debug, Default)]
pub struct ViewCache {
    inner: Mutex<CacheInner>,
}

#[derive(Debug, Default)]
struct CacheInner {
    map: HashMap<ViewKey, CachedView>,
    hits: u64,
    misses: u64,
}

impl ViewCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Looks up a view, counting the hit/miss.
    pub fn get(&self, key: &ViewKey) -> Option<CachedView> {
        let mut inner = self.inner.lock();
        match inner.map.get(key).cloned() {
            Some(v) => {
                inner.hits += 1;
                Some(v)
            }
            None => {
                inner.misses += 1;
                None
            }
        }
    }

    /// Stores a view.
    pub fn put(&self, key: ViewKey, view: CachedView) {
        self.inner.lock().map.insert(key, view);
    }

    /// Drops every entry for `uri` (call when a document or its XACL
    /// changes).
    pub fn invalidate_uri(&self, uri: &str) {
        self.inner.lock().map.retain(|k, _| k.uri != uri);
    }

    /// Clears the cache entirely.
    pub fn clear(&self) {
        self.inner.lock().map.clear();
    }

    /// `(hits, misses)` so far.
    pub fn stats(&self) -> (u64, u64) {
        let inner = self.inner.lock();
        (inner.hits, inner.misses)
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.inner.lock().map.len()
    }

    /// `true` when the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(uri: &str, fp: u64) -> ViewKey {
        ViewKey { uri: uri.to_string(), fingerprint: fp }
    }

    fn view(x: &str) -> CachedView {
        CachedView { xml: x.to_string(), loosened_dtd: None }
    }

    #[test]
    fn hit_and_miss_accounting() {
        let c = ViewCache::new();
        assert!(c.get(&key("a", 1)).is_none());
        c.put(key("a", 1), view("<a/>"));
        assert_eq!(c.get(&key("a", 1)).unwrap().xml, "<a/>");
        assert!(c.get(&key("a", 2)).is_none());
        assert_eq!(c.stats(), (1, 2));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn fingerprint_sensitivity() {
        let base = fingerprint(&[0, 2], &[1], 0);
        assert_eq!(base, fingerprint(&[0, 2], &[1], 0));
        assert_ne!(base, fingerprint(&[0, 1], &[2], 0)); // split matters
        assert_ne!(base, fingerprint(&[0, 2], &[1], 1)); // policy matters
        assert_ne!(base, fingerprint(&[2, 0], &[1], 0)); // order = identity here
    }

    #[test]
    fn invalidation() {
        let c = ViewCache::new();
        c.put(key("a", 1), view("<a/>"));
        c.put(key("a", 2), view("<a2/>"));
        c.put(key("b", 1), view("<b/>"));
        c.invalidate_uri("a");
        assert_eq!(c.len(), 1);
        assert!(c.get(&key("b", 1)).is_some());
        c.clear();
        assert!(c.is_empty());
    }
}
