//! View cache.
//!
//! The processor's output depends only on `(document, DTD, policy,
//! applicable authorization sets)` — not on the requester identity
//! itself. Requesters covered by the same authorizations therefore share
//! a view, and caching by *authorization fingerprint* collapses, e.g.,
//! every anonymous `Public` reader of a popular document into one entry.
//! This is the server-side optimization the paper's on-line scenario
//! invites; the `server` bench measures its effect.
//!
//! Cache traffic is mirrored into the global telemetry registry
//! (`xmlsec_view_cache_{hits,misses,evictions}_total` and the
//! `xmlsec_view_cache_entries` gauge) so `/metrics` and the CLI `stats`
//! command see it without asking the server for its internal counters.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::{Arc, Mutex, OnceLock};
use xmlsec_authz::Authorization;
use xmlsec_telemetry as telemetry;

/// Key ingredients for one cached view.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ViewKey {
    /// Document URI.
    pub uri: String,
    /// Content fingerprint of the applicable instance + schema
    /// authorization sets and the policy (see [`fingerprint`]).
    pub fingerprint: u64,
}

/// Builds the fingerprint from the applicable authorizations'
/// **content** (sorted, so list order is irrelevant) and the policy tag.
///
/// Hashing content rather than indices into the per-URI lists means an
/// in-place mutation of an authorization — its sign, type, subject, or
/// object — necessarily changes the fingerprint: a stale view can never
/// be served after a policy edit, even one that bypasses the
/// grant/revoke invalidation hooks.
pub fn fingerprint(instance: &[&Authorization], schema: &[&Authorization], policy_tag: u8) -> u64 {
    fn feed(h: &mut DefaultHasher, set: &[&Authorization]) {
        let mut rendered: Vec<String> = set.iter().map(|a| a.to_string()).collect();
        rendered.sort();
        rendered.hash(h);
    }
    let mut h = DefaultHasher::new();
    policy_tag.hash(&mut h);
    feed(&mut h, instance);
    0xffff_usize.hash(&mut h); // separator
    feed(&mut h, schema);
    h.finish()
}

/// A cached processor output.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CachedView {
    /// The unparsed view.
    pub xml: String,
    /// The loosened DTD, when the document has one.
    pub loosened_dtd: Option<String>,
}

struct CacheMetrics {
    hits: Arc<telemetry::Counter>,
    misses: Arc<telemetry::Counter>,
    evictions: Arc<telemetry::Counter>,
    entries: Arc<telemetry::Gauge>,
}

fn cache_metrics() -> &'static CacheMetrics {
    static METRICS: OnceLock<CacheMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let reg = telemetry::global();
        CacheMetrics {
            hits: reg.counter(
                "xmlsec_view_cache_hits_total",
                "View-cache lookups answered from a cached view.",
                &[],
            ),
            misses: reg.counter(
                "xmlsec_view_cache_misses_total",
                "View-cache lookups that required a full pipeline run.",
                &[],
            ),
            evictions: reg.counter(
                "xmlsec_view_cache_evictions_total",
                "Cached views dropped to stay within capacity.",
                &[],
            ),
            entries: reg.gauge(
                "xmlsec_view_cache_entries",
                "Views currently held in the cache.",
                &[],
            ),
        }
    })
}

/// Thread-safe view cache with hit/miss counters.
#[derive(Debug, Default)]
pub struct ViewCache {
    inner: Mutex<CacheInner>,
    /// Maximum entries before insertion evicts (None = unbounded).
    capacity: Option<usize>,
}

#[derive(Debug, Default)]
struct CacheInner {
    map: HashMap<ViewKey, CachedView>,
    /// Insertion order, oldest first, for FIFO eviction. May hold stale
    /// keys after invalidation; eviction skips those.
    order: Vec<ViewKey>,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl ViewCache {
    /// An empty, unbounded cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty cache that evicts oldest-inserted views past `capacity`.
    pub fn with_capacity(capacity: usize) -> Self {
        ViewCache { inner: Mutex::new(CacheInner::default()), capacity: Some(capacity) }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, CacheInner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Looks up a view, counting the hit/miss.
    pub fn get(&self, key: &ViewKey) -> Option<CachedView> {
        let mut inner = self.lock();
        match inner.map.get(key).cloned() {
            Some(v) => {
                inner.hits += 1;
                cache_metrics().hits.inc();
                Some(v)
            }
            None => {
                inner.misses += 1;
                cache_metrics().misses.inc();
                None
            }
        }
    }

    /// Stores a view, evicting the oldest entries if over capacity.
    pub fn put(&self, key: ViewKey, view: CachedView) {
        let mut inner = self.lock();
        if inner.map.insert(key.clone(), view).is_none() {
            inner.order.push(key);
        }
        if let Some(cap) = self.capacity {
            let mut cursor = 0;
            while inner.map.len() > cap && cursor < inner.order.len() {
                let victim = inner.order[cursor].clone();
                cursor += 1;
                if inner.map.remove(&victim).is_some() {
                    inner.evictions += 1;
                    cache_metrics().evictions.inc();
                }
            }
            inner.order.drain(..cursor);
        }
        cache_metrics().entries.set(inner.map.len() as i64);
    }

    /// Drops every entry for `uri` (call when a document or its XACL
    /// changes).
    pub fn invalidate_uri(&self, uri: &str) {
        let mut inner = self.lock();
        inner.map.retain(|k, _| k.uri != uri);
        cache_metrics().entries.set(inner.map.len() as i64);
    }

    /// Clears the cache entirely.
    pub fn clear(&self) {
        let mut inner = self.lock();
        inner.map.clear();
        inner.order.clear();
        cache_metrics().entries.set(0);
    }

    /// `(hits, misses)` so far.
    pub fn stats(&self) -> (u64, u64) {
        let inner = self.lock();
        (inner.hits, inner.misses)
    }

    /// Views evicted for capacity so far.
    pub fn evictions(&self) -> u64 {
        self.lock().evictions
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.lock().map.len()
    }

    /// `true` when the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(uri: &str, fp: u64) -> ViewKey {
        ViewKey { uri: uri.to_string(), fingerprint: fp }
    }

    fn view(x: &str) -> CachedView {
        CachedView { xml: x.to_string(), loosened_dtd: None }
    }

    #[test]
    fn hit_and_miss_accounting() {
        let c = ViewCache::new();
        assert!(c.get(&key("a", 1)).is_none());
        c.put(key("a", 1), view("<a/>"));
        assert_eq!(c.get(&key("a", 1)).unwrap().xml, "<a/>");
        assert!(c.get(&key("a", 2)).is_none());
        assert_eq!(c.stats(), (1, 2));
        assert_eq!(c.len(), 1);
    }

    fn auth(spec: &str, sign: xmlsec_authz::Sign) -> Authorization {
        Authorization::new(
            xmlsec_subjects::Subject::new("u", "*", "*").unwrap(),
            xmlsec_authz::ObjectSpec::parse(spec).unwrap(),
            sign,
            xmlsec_authz::AuthType::Recursive,
        )
    }

    #[test]
    fn fingerprint_sensitivity() {
        use xmlsec_authz::Sign;
        let a = auth("d.xml:/a", Sign::Plus);
        let b = auth("d.xml:/a/b", Sign::Minus);
        let c = auth("d.xml:/a/c", Sign::Plus);
        let base = fingerprint(&[&a, &c], &[&b], 0);
        assert_eq!(base, fingerprint(&[&a, &c], &[&b], 0));
        assert_eq!(base, fingerprint(&[&c, &a], &[&b], 0), "set order is not identity");
        assert_ne!(base, fingerprint(&[&a, &b], &[&c], 0)); // split matters
        assert_ne!(base, fingerprint(&[&a, &c], &[&b], 1)); // policy matters
        assert_ne!(base, fingerprint(&[&a], &[&b], 0)); // membership matters
    }

    #[test]
    fn mutating_one_authorization_changes_the_fingerprint() {
        use xmlsec_authz::Sign;
        let a = auth("d.xml:/a", Sign::Plus);
        let b = auth("d.xml:/a/b", Sign::Minus);
        let before = fingerprint(&[&a, &b], &[], 0);
        // Flip the sign of one authorization in place — the content hash
        // must move, so any cached view keyed on `before` misses.
        let mut b2 = b.clone();
        b2.sign = Sign::Plus;
        assert_ne!(before, fingerprint(&[&a, &b2], &[], 0));
        // And so must a changed object path.
        let b3 = auth("d.xml:/a/b2", Sign::Minus);
        assert_ne!(before, fingerprint(&[&a, &b3], &[], 0));
    }

    #[test]
    fn invalidation() {
        let c = ViewCache::new();
        c.put(key("a", 1), view("<a/>"));
        c.put(key("a", 2), view("<a2/>"));
        c.put(key("b", 1), view("<b/>"));
        c.invalidate_uri("a");
        assert_eq!(c.len(), 1);
        assert!(c.get(&key("b", 1)).is_some());
        c.clear();
        assert!(c.is_empty());
    }

    #[test]
    fn capacity_evicts_oldest_first() {
        let c = ViewCache::with_capacity(2);
        c.put(key("a", 1), view("<a/>"));
        c.put(key("b", 1), view("<b/>"));
        c.put(key("c", 1), view("<c/>"));
        assert_eq!(c.len(), 2);
        assert_eq!(c.evictions(), 1);
        assert!(c.get(&key("a", 1)).is_none(), "oldest entry should be evicted");
        assert!(c.get(&key("b", 1)).is_some());
        assert!(c.get(&key("c", 1)).is_some());
    }

    #[test]
    fn reinsert_does_not_double_count_order() {
        let c = ViewCache::with_capacity(2);
        c.put(key("a", 1), view("<a/>"));
        c.put(key("a", 1), view("<a v2/>"));
        c.put(key("b", 1), view("<b/>"));
        // Still within capacity: nothing evicted despite two puts of "a".
        assert_eq!(c.len(), 2);
        assert_eq!(c.evictions(), 0);
        assert_eq!(c.get(&key("a", 1)).unwrap().xml, "<a v2/>");
    }

    #[test]
    fn eviction_skips_invalidated_keys() {
        let c = ViewCache::with_capacity(2);
        c.put(key("a", 1), view("<a/>"));
        c.put(key("b", 1), view("<b/>"));
        c.invalidate_uri("a");
        c.put(key("c", 1), view("<c/>"));
        // "a" is already gone; capacity holds without a real eviction.
        assert_eq!(c.len(), 2);
        assert_eq!(c.evictions(), 0);
        assert!(c.get(&key("b", 1)).is_some());
    }
}
