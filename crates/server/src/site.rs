//! Site loading: populate a [`SecureServer`] from a directory on disk.
//!
//! Layout convention (one flat directory):
//!
//! ```text
//! site/
//!   _directory.txt      # users/groups/members (line-oriented)
//!   _credentials.txt    # "user secret" per line (demo authentication)
//!   laboratory.dtd      # DTDs, by extension
//!   CSlab.xml           # documents, by extension
//!   CSlab.xacl          # instance-level XACL for CSlab.xml
//!   laboratory.dtd.xacl # schema-level XACL for laboratory.dtd
//! ```
//!
//! A document references its DTD through its DOCTYPE `SYSTEM` identifier
//! (resolved against the site directory's file names); XACLs attach to
//! the artifact they are named after. This is the shape the paper's
//! closing "Web site to demonstrate" needs: drop files in a folder,
//! `xmlsec-cli serve --site folder`.

use crate::server::SecureServer;
use std::fmt;
use std::path::Path;
use xmlsec_authz::AuthorizationBase;
use xmlsec_subjects::Directory;

/// Errors raised while loading a site directory.
#[derive(Debug)]
pub enum SiteError {
    /// Filesystem problem.
    Io(std::io::Error),
    /// A file failed to parse; carries the file name and the message.
    Parse {
        /// Offending file name.
        file: String,
        /// Parser message.
        message: String,
    },
}

impl fmt::Display for SiteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SiteError::Io(e) => write!(f, "site I/O error: {e}"),
            SiteError::Parse { file, message } => write!(f, "{file}: {message}"),
        }
    }
}

impl std::error::Error for SiteError {}

impl From<std::io::Error> for SiteError {
    fn from(e: std::io::Error) -> Self {
        SiteError::Io(e)
    }
}

/// What was loaded, for operator feedback.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SiteSummary {
    /// Document URIs served.
    pub documents: Vec<String>,
    /// DTD URIs registered.
    pub dtds: Vec<String>,
    /// Total authorizations loaded from XACL files.
    pub authorizations: usize,
    /// Users with credentials.
    pub credentialed_users: usize,
}

/// Loads a site directory into a ready [`SecureServer`].
pub fn load_site(dir: &Path) -> Result<(SecureServer, SiteSummary), SiteError> {
    let parse_err = |file: &Path, message: String| SiteError::Parse {
        file: file.file_name().map(|n| n.to_string_lossy().into_owned()).unwrap_or_default(),
        message,
    };

    let mut directory = Directory::new();
    let mut base = AuthorizationBase::new();
    let mut summary = SiteSummary::default();

    // Pass 1: the principal directory, so later passes can resolve
    // subjects.
    let dir_file = dir.join("_directory.txt");
    if dir_file.exists() {
        let text = std::fs::read_to_string(&dir_file)?;
        for (i, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let parts: Vec<&str> = line.split_whitespace().collect();
            let res = match parts.as_slice() {
                ["user", name] => directory.add_user(name),
                ["group", name] => directory.add_group(name),
                ["member", m, g] => directory.add_member(m, g),
                _ => {
                    return Err(parse_err(
                        &dir_file,
                        format!("line {}: unrecognized {line:?}", i + 1),
                    ))
                }
            };
            res.map_err(|e| parse_err(&dir_file, format!("line {}: {e}", i + 1)))?;
        }
    }

    // Pass 2: artifacts by extension.
    let mut entries: Vec<_> = std::fs::read_dir(dir)?.collect::<Result<_, _>>()?;
    entries.sort_by_key(|e| e.file_name());
    let mut credentials: Vec<(String, String)> = Vec::new();
    let mut documents: Vec<(String, String)> = Vec::new(); // (uri, text)
    for entry in &entries {
        let path = entry.path();
        let Some(name) = path.file_name().map(|n| n.to_string_lossy().into_owned()) else {
            continue;
        };
        if name == "_credentials.txt" {
            let text = std::fs::read_to_string(&path)?;
            for line in text.lines() {
                let line = line.trim();
                if line.is_empty() || line.starts_with('#') {
                    continue;
                }
                if let Some((u, p)) = line.split_once(char::is_whitespace) {
                    credentials.push((u.to_string(), p.trim().to_string()));
                }
            }
        } else if name.ends_with(".xacl") {
            let text = std::fs::read_to_string(&path)?;
            let auths =
                xmlsec_authz::parse_xacl(&text).map_err(|e| parse_err(&path, e.to_string()))?;
            // Subjects not in the directory get registered as groups so
            // coverage checks resolve; unknown-subject mistakes are the
            // lint tool's job.
            for a in &auths {
                if directory.kind(&a.subject.user_group).is_none() {
                    let _ = directory.add_group(&a.subject.user_group);
                }
            }
            summary.authorizations += auths.len();
            base.extend(auths);
        } else if name.ends_with(".dtd") {
            // Validate that it parses before serving it.
            let text = std::fs::read_to_string(&path)?;
            xmlsec_dtd::parse_dtd(&text).map_err(|e| parse_err(&path, e.to_string()))?;
            summary.dtds.push(name);
        } else if name.ends_with(".xml") {
            let text = std::fs::read_to_string(&path)?;
            xmlsec_xml::parse(&text).map_err(|e| parse_err(&path, e.to_string()))?;
            documents.push((name, text));
        }
    }

    let mut server = SecureServer::new(directory, base);
    for (u, p) in &credentials {
        server.register_credentials(u, p);
        summary.credentialed_users += 1;
    }
    for dtd_name in &summary.dtds {
        let text = std::fs::read_to_string(dir.join(dtd_name))?;
        server.repository_mut().put_dtd(dtd_name, &text);
    }
    for (uri, text) in &documents {
        // The DOCTYPE SYSTEM id names the DTD within the site.
        let doc = xmlsec_xml::parse(text).expect("validated in pass 2");
        let dtd_uri = doc
            .doctype
            .as_ref()
            .and_then(|dt| dt.system_id.clone())
            .filter(|sid| summary.dtds.iter().any(|d| d == sid));
        server.repository_mut().put_document(uri, text, dtd_uri.as_deref());
        summary.documents.push(uri.clone());
    }
    Ok((server, summary))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::ClientRequest;
    use std::path::PathBuf;

    struct TempSite {
        dir: PathBuf,
    }

    impl TempSite {
        fn new(tag: &str) -> TempSite {
            let dir =
                std::env::temp_dir().join(format!("xmlsec-site-{tag}-{}", std::process::id()));
            let _ = std::fs::remove_dir_all(&dir);
            std::fs::create_dir_all(&dir).expect("site dir");
            TempSite { dir }
        }

        fn write(&self, name: &str, content: &str) {
            std::fs::write(self.dir.join(name), content).expect("write");
        }
    }

    impl Drop for TempSite {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.dir);
        }
    }

    fn laboratory_site(tag: &str) -> TempSite {
        use xmlsec_workload::laboratory::*;
        let site = TempSite::new(tag);
        site.write(
            "_directory.txt",
            "user Tom\ngroup Public\ngroup Foreign\nmember Tom Public\nmember Tom Foreign\n",
        );
        site.write("_credentials.txt", "Tom pw\n");
        site.write("laboratory.xml.dtd", LAB_DTD);
        // Rewrite the DOCTYPE so the SYSTEM id matches the site file name.
        let xml = CSLAB_XML.replace("SYSTEM \"laboratory.xml\"", "SYSTEM \"laboratory.xml.dtd\"");
        site.write("CSlab.xml", &xml);
        let auths = example1_authorizations()
            .into_iter()
            .map(|mut a| {
                if a.object.uri == LAB_DTD_URI {
                    a.object.uri = "laboratory.xml.dtd".to_string();
                }
                a
            })
            .collect::<Vec<_>>();
        site.write("site.xacl", &xmlsec_authz::serialize_xacl(&auths));
        site
    }

    #[test]
    fn loads_and_serves_the_laboratory_site() {
        let site = laboratory_site("lab");
        let (server, summary) = load_site(&site.dir).expect("site loads");
        assert_eq!(summary.documents, vec!["CSlab.xml"]);
        assert_eq!(summary.dtds, vec!["laboratory.xml.dtd"]);
        assert_eq!(summary.authorizations, 4);
        assert_eq!(summary.credentialed_users, 1);

        let resp = server
            .handle(&ClientRequest {
                user: Some(("Tom".into(), "pw".into())),
                ip: "130.100.50.8".into(),
                sym: "infosys.bld1.it".into(),
                uri: "CSlab.xml".into(),
            })
            .expect("request served");
        // The site-served view matches the paper reproduction.
        let got = xmlsec_xml::parse(&resp.xml).unwrap();
        let want = xmlsec_xml::parse(xmlsec_workload::laboratory::TOM_VIEW_XML).unwrap();
        assert!(got.structurally_equal(&want), "{}", resp.xml);
        assert!(resp.loosened_dtd.is_some(), "DTD resolved via DOCTYPE");
    }

    #[test]
    fn empty_site_is_fine() {
        let site = TempSite::new("empty");
        let (server, summary) = load_site(&site.dir).unwrap();
        assert_eq!(summary, SiteSummary::default());
        assert!(server.repository().is_empty());
    }

    #[test]
    fn malformed_artifacts_are_reported_with_file_names() {
        let site = TempSite::new("bad");
        site.write("broken.xml", "<a><b>");
        let Err(e) = load_site(&site.dir) else { panic!("must fail") };
        assert!(matches!(&e, SiteError::Parse { file, .. } if file == "broken.xml"), "{e}");

        let site2 = TempSite::new("baddtd");
        site2.write("broken.dtd", "<!ELEMENT");
        assert!(load_site(&site2.dir).is_err());

        let site3 = TempSite::new("baddir");
        site3.write("_directory.txt", "frobnicate X Y\n");
        let Err(e3) = load_site(&site3.dir) else { panic!("must fail") };
        assert!(e3.to_string().contains("_directory.txt"), "{e3}");
    }

    #[test]
    fn documents_without_matching_dtd_have_no_schema() {
        let site = TempSite::new("nodtd");
        site.write("doc.xml", r#"<!DOCTYPE a SYSTEM "missing.dtd"><a>t</a>"#);
        let (server, summary) = load_site(&site.dir).unwrap();
        assert_eq!(summary.documents, vec!["doc.xml"]);
        assert!(summary.dtds.is_empty());
        let repo = server.repository();
        let stored = repo.document("doc.xml").unwrap();
        assert_eq!(stored.dtd_uri, None);
    }
}
