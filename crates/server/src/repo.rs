//! In-memory document repository: the server-side store of XML documents,
//! their DTDs, and the URI association between them (paper §7's usage
//! scenario: "a user requesting a set of XML documents from a remote
//! site").

use std::collections::HashMap;

/// A stored XML document.
#[derive(Debug, Clone)]
pub struct StoredDocument {
    /// The document text as served.
    pub xml: String,
    /// URI of the DTD this document is an instance of, if any.
    pub dtd_uri: Option<String>,
}

/// The repository: documents and DTD texts, keyed by URI.
#[derive(Debug, Clone, Default)]
pub struct Repository {
    documents: HashMap<String, StoredDocument>,
    dtds: HashMap<String, String>,
}

impl Repository {
    /// An empty repository.
    pub fn new() -> Self {
        Self::default()
    }

    /// Stores (or replaces) a document.
    pub fn put_document(&mut self, uri: &str, xml: &str, dtd_uri: Option<&str>) {
        self.documents.insert(
            uri.to_string(),
            StoredDocument { xml: xml.to_string(), dtd_uri: dtd_uri.map(str::to_string) },
        );
    }

    /// Stores (or replaces) a DTD text.
    pub fn put_dtd(&mut self, uri: &str, dtd: &str) {
        self.dtds.insert(uri.to_string(), dtd.to_string());
    }

    /// Fetches a document.
    pub fn document(&self, uri: &str) -> Option<&StoredDocument> {
        self.documents.get(uri)
    }

    /// Fetches a DTD text.
    pub fn dtd(&self, uri: &str) -> Option<&str> {
        self.dtds.get(uri).map(String::as_str)
    }

    /// Number of stored documents.
    pub fn len(&self) -> usize {
        self.documents.len()
    }

    /// `true` when no documents are stored.
    pub fn is_empty(&self) -> bool {
        self.documents.is_empty()
    }

    /// All document URIs.
    pub fn document_uris(&self) -> impl Iterator<Item = &str> {
        self.documents.keys().map(String::as_str)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_and_get() {
        let mut r = Repository::new();
        r.put_dtd("lab.dtd", "<!ELEMENT lab EMPTY>");
        r.put_document("lab.xml", "<lab/>", Some("lab.dtd"));
        assert_eq!(r.len(), 1);
        let d = r.document("lab.xml").unwrap();
        assert_eq!(d.xml, "<lab/>");
        assert_eq!(d.dtd_uri.as_deref(), Some("lab.dtd"));
        assert_eq!(r.dtd("lab.dtd"), Some("<!ELEMENT lab EMPTY>"));
        assert!(r.document("other.xml").is_none());
        assert!(r.dtd("other.dtd").is_none());
    }

    #[test]
    fn replace_overwrites() {
        let mut r = Repository::new();
        r.put_document("a.xml", "<a/>", None);
        r.put_document("a.xml", "<a>v2</a>", None);
        assert_eq!(r.document("a.xml").unwrap().xml, "<a>v2</a>");
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn uris_enumerable() {
        let mut r = Repository::new();
        r.put_document("a.xml", "<a/>", None);
        r.put_document("b.xml", "<b/>", None);
        let mut uris: Vec<_> = r.document_uris().collect();
        uris.sort_unstable();
        assert_eq!(uris, vec!["a.xml", "b.xml"]);
    }
}
